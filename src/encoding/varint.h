// LEB128 variable-byte integers ("variable-byte encoding", Witten et al.,
// Managing Gigabytes) — the paper's Section V representation for serialized
// term-identifier sequences.
#pragma once

#include <cstdint>
#include <string>

#include "util/slice.h"

namespace ngram {

/// Maximum encoded size of a 64-bit varint.
inline constexpr int kMaxVarint64Bytes = 10;
/// Maximum encoded size of a 32-bit varint.
inline constexpr int kMaxVarint32Bytes = 5;

/// Appends `v` to `out` as a little-endian base-128 varint.
inline void PutVarint64(std::string* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

inline void PutVarint32(std::string* out, uint32_t v) {
  PutVarint64(out, v);
}

/// Encodes `v` directly into `dst` (which must have room for
/// kMaxVarint64Bytes). Returns one past the last byte written — the
/// allocation-free variant used by the streaming spill writer.
inline char* EncodeVarint64To(char* dst, uint64_t v) {
  while (v >= 0x80) {
    *dst++ = static_cast<char>((v & 0x7f) | 0x80);
    v >>= 7;
  }
  *dst++ = static_cast<char>(v);
  return dst;
}

/// Number of bytes PutVarint64 would append for `v`.
inline int VarintLength(uint64_t v) {
  int len = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++len;
  }
  return len;
}

/// Parses a varint from the front of `in`, advancing it. Returns false on
/// truncated or overlong input.
inline bool GetVarint64(Slice* in, uint64_t* value) {
  uint64_t result = 0;
  const uint8_t* p = in->udata();
  const uint8_t* limit = p + in->size();
  for (int shift = 0; shift <= 63 && p < limit; shift += 7) {
    const uint64_t byte = *p;
    ++p;
    if (byte & 0x80) {
      result |= (byte & 0x7f) << shift;
    } else {
      result |= byte << shift;
      *value = result;
      in->RemovePrefix(static_cast<size_t>(p - in->udata()));
      return true;
    }
  }
  return false;
}

inline bool GetVarint32(Slice* in, uint32_t* value) {
  uint64_t v64 = 0;
  if (!GetVarint64(in, &v64) || v64 > 0xffffffffULL) {
    return false;
  }
  *value = static_cast<uint32_t>(v64);
  return true;
}

/// ZigZag maps signed to unsigned so small-magnitude negatives stay short.
inline uint64_t ZigZagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}

inline int64_t ZigZagDecode(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

inline void PutVarintSigned64(std::string* out, int64_t v) {
  PutVarint64(out, ZigZagEncode(v));
}

inline bool GetVarintSigned64(Slice* in, int64_t* value) {
  uint64_t u = 0;
  if (!GetVarint64(in, &u)) {
    return false;
  }
  *value = ZigZagDecode(u);
  return true;
}

/// Fixed-width little-endian 32-bit integer (used in spill-file framing
/// where random access matters more than size).
inline void PutFixed32(std::string* out, uint32_t v) {
  char buf[4];
  buf[0] = static_cast<char>(v & 0xff);
  buf[1] = static_cast<char>((v >> 8) & 0xff);
  buf[2] = static_cast<char>((v >> 16) & 0xff);
  buf[3] = static_cast<char>((v >> 24) & 0xff);
  out->append(buf, 4);
}

/// Encodes `v` little-endian directly into `dst` (4 bytes); returns one
/// past the last byte written.
inline char* EncodeFixed32To(char* dst, uint32_t v) {
  dst[0] = static_cast<char>(v & 0xff);
  dst[1] = static_cast<char>((v >> 8) & 0xff);
  dst[2] = static_cast<char>((v >> 16) & 0xff);
  dst[3] = static_cast<char>((v >> 24) & 0xff);
  return dst + 4;
}

inline uint32_t DecodeFixed32(const char* p) {
  const uint8_t* u = reinterpret_cast<const uint8_t*>(p);
  return static_cast<uint32_t>(u[0]) | (static_cast<uint32_t>(u[1]) << 8) |
         (static_cast<uint32_t>(u[2]) << 16) |
         (static_cast<uint32_t>(u[3]) << 24);
}

}  // namespace ngram
