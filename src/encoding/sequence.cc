#include "encoding/sequence.h"

namespace ngram {

std::string SequenceToDebugString(const TermSequence& seq) {
  std::string out = "<";
  for (size_t i = 0; i < seq.size(); ++i) {
    if (i > 0) {
      out += ' ';
    }
    out += std::to_string(seq[i]);
  }
  out += '>';
  return out;
}

}  // namespace ngram
