// TermSequence: the library's representation of an n-gram / document as a
// sequence of integer term identifiers, plus its wire codec.
//
// Term ids are assigned in descending order of collection frequency
// (Section V, "Sequence Encoding"), which keeps frequent terms small and
// their varbyte encodings short.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "encoding/varint.h"
#include "util/slice.h"

namespace ngram {

/// Term identifier. Id 0 is reserved as invalid/padding.
using TermId = uint32_t;

/// A sequence of term ids (a document, sentence fragment, or n-gram).
using TermSequence = std::vector<TermId>;

/// Codec for term sequences: terms are appended back-to-back as varints with
/// NO length prefix — the record framing supplies the byte extent. This
/// makes prefix relationships between encoded sequences cheap to detect and
/// lets raw comparators iterate terms without allocation.
struct SequenceCodec {
  /// Appends the varbyte encoding of `seq` to `out`.
  static void Encode(const TermSequence& seq, std::string* out) {
    for (TermId t : seq) {
      PutVarint32(out, t);
    }
  }

  /// Appends the varbyte encoding of `seq[begin..end)` to `out`.
  static void EncodeRange(const TermSequence& seq, size_t begin, size_t end,
                          std::string* out) {
    for (size_t i = begin; i < end; ++i) {
      PutVarint32(out, seq[i]);
    }
  }

  /// Decodes an entire slice into `seq` (cleared first). Returns false on
  /// malformed input.
  static bool Decode(Slice in, TermSequence* seq) {
    seq->clear();
    while (!in.empty()) {
      TermId t = 0;
      if (!GetVarint32(&in, &t)) {
        return false;
      }
      seq->push_back(t);
    }
    return true;
  }

  /// Encoded size in bytes of `seq`.
  static size_t EncodedSize(const TermSequence& seq) {
    size_t n = 0;
    for (TermId t : seq) {
      n += static_cast<size_t>(VarintLength(t));
    }
    return n;
  }
};

/// Allocation-free cursor over an encoded term sequence.
class SequenceReader {
 public:
  explicit SequenceReader(Slice data) : data_(data) {}

  bool AtEnd() const { return data_.empty(); }

  /// Reads the next term. Returns false at end or on malformed input.
  bool Next(TermId* term) { return GetVarint32(&data_, term); }

 private:
  Slice data_;
};

/// Renders a term-id sequence like "<3 17 4>" for logs and tests.
std::string SequenceToDebugString(const TermSequence& seq);

}  // namespace ngram
