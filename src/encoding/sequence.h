// TermSequence: the library's representation of an n-gram / document as a
// sequence of integer term identifiers, plus its wire codec.
//
// Term ids are assigned in descending order of collection frequency
// (Section V, "Sequence Encoding"), which keeps frequent terms small and
// their varbyte encodings short.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "encoding/varint.h"
#include "util/slice.h"

namespace ngram {

/// Term identifier. Id 0 is reserved as invalid/padding.
using TermId = uint32_t;

/// A sequence of term ids (a document, sentence fragment, or n-gram).
using TermSequence = std::vector<TermId>;

/// Codec for term sequences: terms are appended back-to-back as varints with
/// NO length prefix — the record framing supplies the byte extent. This
/// makes prefix relationships between encoded sequences cheap to detect and
/// lets raw comparators iterate terms without allocation.
struct SequenceCodec {
  /// Appends the varbyte encoding of `seq` to `out`.
  static void Encode(const TermSequence& seq, std::string* out) {
    for (TermId t : seq) {
      PutVarint32(out, t);
    }
  }

  /// Appends the varbyte encoding of `seq[begin..end)` to `out`.
  static void EncodeRange(const TermSequence& seq, size_t begin, size_t end,
                          std::string* out) {
    for (size_t i = begin; i < end; ++i) {
      PutVarint32(out, seq[i]);
    }
  }

  /// Encodes `seq` into `out` (cleared first) and records the byte offset
  /// at which each term starts, plus the total size as a final sentinel —
  /// so offsets has seq.size() + 1 entries and the encoding of
  /// seq[b..e) is the byte range [offsets[b], offsets[e]). Mappers that
  /// emit many contiguous subsequences (suffixes, k-gram windows) encode
  /// once and emit slices of this buffer instead of re-encoding each one.
  static void EncodeWithTermOffsets(const TermSequence& seq, std::string* out,
                                    std::vector<uint32_t>* offsets) {
    out->clear();
    offsets->clear();
    offsets->reserve(seq.size() + 1);
    for (TermId t : seq) {
      offsets->push_back(static_cast<uint32_t>(out->size()));
      PutVarint32(out, t);
    }
    offsets->push_back(static_cast<uint32_t>(out->size()));
  }

  /// Scans an encoded sequence and records each term's starting byte
  /// offset plus the total size as a final sentinel (same layout as
  /// EncodeWithTermOffsets, but over already-encoded bytes): the encoding
  /// of terms [b, e) is the byte range [offsets[b], offsets[e]) of `in`.
  /// Raw mappers over serialized job boundaries use this to re-slice a key
  /// without decoding it. Returns false on malformed input.
  static bool TermOffsets(Slice in, std::vector<uint32_t>* offsets) {
    offsets->clear();
    const char* base = in.data();
    while (!in.empty()) {
      offsets->push_back(static_cast<uint32_t>(in.data() - base));
      TermId t = 0;
      if (!GetVarint32(&in, &t)) {
        return false;
      }
    }
    offsets->push_back(static_cast<uint32_t>(in.data() - base));
    return true;
  }

  /// Decodes an entire slice into `seq` (cleared first). Returns false on
  /// malformed input.
  static bool Decode(Slice in, TermSequence* seq) {
    seq->clear();
    while (!in.empty()) {
      TermId t = 0;
      if (!GetVarint32(&in, &t)) {
        return false;
      }
      seq->push_back(t);
    }
    return true;
  }

  /// Encoded size in bytes of `seq`.
  static size_t EncodedSize(const TermSequence& seq) {
    size_t n = 0;
    for (TermId t : seq) {
      n += static_cast<size_t>(VarintLength(t));
    }
    return n;
  }
};

/// Reusable scratch for the encode-once / emit-sub-slices mapper pattern:
/// encode a sequence once, then hand out the byte range of any contiguous
/// subsequence (a suffix, an n-gram window) as a Slice into the scratch.
/// Slices are valid until the next Encode() call.
class SequenceRangeEncoder {
 public:
  void Encode(const TermSequence& seq) {
    SequenceCodec::EncodeWithTermOffsets(seq, &encoded_, &offsets_);
  }

  /// Byte range of seq[begin..end) within the last encoded sequence.
  Slice Range(size_t begin, size_t end) const {
    return Slice(encoded_.data() + offsets_[begin],
                 offsets_[end] - offsets_[begin]);
  }

 private:
  std::string encoded_;
  std::vector<uint32_t> offsets_;
};

/// Allocation-free cursor over an encoded term sequence.
class SequenceReader {
 public:
  explicit SequenceReader(Slice data) : data_(data) {}

  bool AtEnd() const { return data_.empty(); }

  /// Reads the next term. Returns false at end or on malformed input.
  bool Next(TermId* term) { return GetVarint32(&data_, term); }

 private:
  Slice data_;
};

/// Renders a term-id sequence like "<3 17 4>" for logs and tests.
std::string SequenceToDebugString(const TermSequence& seq);

}  // namespace ngram
