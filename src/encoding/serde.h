// Serde<T>: the (de)serialization trait used for every key and value type
// that crosses the shuffle or is persisted in the KV store.
//
// Contract: Encode appends the wire form of a value to a string; Decode
// consumes exactly one complete value from a slice that contains exactly one
// value (record framing is supplied by the caller). Decode returns false on
// malformed input instead of throwing.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "encoding/sequence.h"
#include "encoding/varint.h"
#include "util/slice.h"

namespace ngram {

template <typename T>
struct Serde;  // Specialize for each wire type.

template <>
struct Serde<uint32_t> {
  static void Encode(const uint32_t& v, std::string* out) {
    PutVarint32(out, v);
  }
  static bool Decode(Slice in, uint32_t* out) {
    return GetVarint32(&in, out) && in.empty();
  }
};

template <>
struct Serde<uint64_t> {
  static void Encode(const uint64_t& v, std::string* out) {
    PutVarint64(out, v);
  }
  static bool Decode(Slice in, uint64_t* out) {
    return GetVarint64(&in, out) && in.empty();
  }
};

template <>
struct Serde<int64_t> {
  static void Encode(const int64_t& v, std::string* out) {
    PutVarintSigned64(out, v);
  }
  static bool Decode(Slice in, int64_t* out) {
    return GetVarintSigned64(&in, out) && in.empty();
  }
};

template <>
struct Serde<std::string> {
  static void Encode(const std::string& v, std::string* out) {
    out->append(v);
  }
  static bool Decode(Slice in, std::string* out) {
    out->assign(in.data(), in.size());
    return true;
  }
};

/// Term sequences are encoded with no length prefix (see SequenceCodec);
/// they are always the sole content of their frame.
template <>
struct Serde<TermSequence> {
  static void Encode(const TermSequence& v, std::string* out) {
    SequenceCodec::Encode(v, out);
  }
  static bool Decode(Slice in, TermSequence* out) {
    return SequenceCodec::Decode(in, out);
  }
};

/// Pairs get an internal length prefix on the first element so the split
/// point is recoverable.
template <typename A, typename B>
struct Serde<std::pair<A, B>> {
  static void Encode(const std::pair<A, B>& v, std::string* out) {
    std::string first;
    Serde<A>::Encode(v.first, &first);
    PutVarint64(out, first.size());
    out->append(first);
    Serde<B>::Encode(v.second, out);
  }
  static bool Decode(Slice in, std::pair<A, B>* out) {
    uint64_t first_len = 0;
    if (!GetVarint64(&in, &first_len) || first_len > in.size()) {
      return false;
    }
    Slice first(in.data(), first_len);
    in.RemovePrefix(first_len);
    return Serde<A>::Decode(first, &out->first) &&
           Serde<B>::Decode(in, &out->second);
  }
};

/// Vectors are encoded as count followed by length-prefixed elements.
template <typename T>
struct Serde<std::vector<T>> {
  static void Encode(const std::vector<T>& v, std::string* out) {
    PutVarint64(out, v.size());
    std::string tmp;
    for (const T& item : v) {
      tmp.clear();
      Serde<T>::Encode(item, &tmp);
      PutVarint64(out, tmp.size());
      out->append(tmp);
    }
  }
  static bool Decode(Slice in, std::vector<T>* out) {
    uint64_t n = 0;
    if (!GetVarint64(&in, &n)) {
      return false;
    }
    out->clear();
    out->reserve(n);
    for (uint64_t i = 0; i < n; ++i) {
      uint64_t len = 0;
      if (!GetVarint64(&in, &len) || len > in.size()) {
        return false;
      }
      T item;
      if (!Serde<T>::Decode(Slice(in.data(), len), &item)) {
        return false;
      }
      in.RemovePrefix(len);
      out->push_back(std::move(item));
    }
    return in.empty();
  }
};

/// Convenience: serializes `v` into a fresh string.
template <typename T>
std::string SerializeToString(const T& v) {
  std::string out;
  Serde<T>::Encode(v, &out);
  return out;
}

/// Convenience: deserializes a complete value from `in`.
template <typename T>
bool DeserializeFromSlice(Slice in, T* out) {
  return Serde<T>::Decode(in, out);
}

}  // namespace ngram
