#include "kvstore/kvstore.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstring>

#include "encoding/varint.h"
#include "util/crc32.h"
#include "util/logging.h"

namespace ngram::kv {

namespace {

constexpr uint8_t kRecordPut = 0;
constexpr uint8_t kRecordDelete = 1;

std::string SegmentFileName(const std::string& dir, uint32_t id) {
  char buf[32];
  snprintf(buf, sizeof(buf), "/seg-%06u.log", id);
  return dir + buf;
}

}  // namespace

struct KVStore::Segment {
  uint32_t id = 0;
  uint64_t cache_file_id = 0;
  int fd = -1;
  uint64_t size = 0;
  std::string path;

  ~Segment() {
    if (fd >= 0) {
      ::close(fd);
    }
  }
};

KVStore::KVStore(std::string dir, KVStoreOptions options)
    : dir_(std::move(dir)), options_(options) {
  cache_ = options_.cache;
  if (cache_ == nullptr) {
    cache_ = std::make_shared<BlockCache>(options_.default_cache_bytes);
  }
}

KVStore::~KVStore() = default;

Result<std::unique_ptr<KVStore>> KVStore::Open(const std::string& dir,
                                               KVStoreOptions options) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::IOError("cannot create KV dir " + dir + ": " +
                           ec.message());
  }
  std::unique_ptr<KVStore> store(new KVStore(dir, options));
  NGRAM_RETURN_NOT_OK(store->OpenSegments());
  return store;
}

Status KVStore::OpenSegments() {
  // Collect existing segment files in id order.
  std::vector<std::filesystem::path> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    if (entry.is_regular_file() &&
        entry.path().filename().string().rfind("seg-", 0) == 0) {
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());

  for (const auto& path : files) {
    auto seg = std::make_unique<Segment>();
    seg->path = path.string();
    unsigned id = 0;
    sscanf(path.filename().string().c_str(), "seg-%06u.log", &id);
    seg->id = static_cast<uint32_t>(id);
    seg->cache_file_id = AllocateCacheFileId();
    seg->fd = ::open(seg->path.c_str(), O_RDWR | O_APPEND, 0644);
    if (seg->fd < 0) {
      return Status::IOError("open " + seg->path + ": " + strerror(errno));
    }
    const off_t sz = ::lseek(seg->fd, 0, SEEK_END);
    seg->size = static_cast<uint64_t>(sz < 0 ? 0 : sz);

    // Replay the segment to rebuild the index, verifying each record's
    // CRC trailer as it goes by — corruption anywhere in a segment fails
    // the open instead of resurrecting damaged state. Segments carry no
    // format version: stores are job-ephemeral (spilled reducer state in
    // a per-job work dir), so there are no cross-build segments to
    // migrate and a pre-CRC-format file can only mean corruption.
    std::string content;
    NGRAM_RETURN_NOT_OK(ReadAt(*seg, 0, seg->size, &content));
    Slice in(content);
    uint64_t pos = 0;
    while (!in.empty()) {
      const size_t before = in.size();
      const uint8_t type = static_cast<uint8_t>(in[0]);
      in.RemovePrefix(1);
      uint64_t klen = 0, vlen = 0;
      // Bounds checked term by term: corrupt near-2^64 varints (read
      // before any CRC has been verified) would wrap a summed check and
      // hand std::string a giant length instead of failing cleanly.
      if (!GetVarint64(&in, &klen) || !GetVarint64(&in, &vlen) ||
          klen > in.size() || vlen > in.size() - klen ||
          in.size() - klen - vlen < 4) {
        return Status::Corruption("truncated record body in " + seg->path +
                                  " at offset " + std::to_string(pos));
      }
      const std::string key(in.data(), klen);
      in.RemovePrefix(klen + vlen);
      const uint64_t covered = (before - in.size());
      const uint32_t expected = DecodeFixed32(in.data());
      in.RemovePrefix(4);
      const uint32_t actual =
          Crc32(0, content.data() + pos, static_cast<size_t>(covered));
      if (actual != expected) {
        return Status::Corruption("record CRC mismatch in " + seg->path +
                                  " at offset " + std::to_string(pos));
      }
      const uint64_t record_size = covered + 4;
      if (type == kRecordPut) {
        index_[key] = Location{seg->id, pos,
                               static_cast<uint32_t>(record_size),
                               static_cast<uint32_t>(vlen)};
      } else {
        index_.erase(key);
      }
      pos += record_size;
    }
    segments_.push_back(std::move(seg));
  }

  if (segments_.empty()) {
    NGRAM_RETURN_NOT_OK(RollSegmentIfNeeded());
  }
  return Status::OK();
}

Status KVStore::RollSegmentIfNeeded() {
  if (!segments_.empty() &&
      segments_.back()->size < options_.max_segment_bytes) {
    return Status::OK();
  }
  auto seg = std::make_unique<Segment>();
  seg->id = segments_.empty() ? 0 : segments_.back()->id + 1;
  seg->cache_file_id = AllocateCacheFileId();
  seg->path = SegmentFileName(dir_, seg->id);
  seg->fd = ::open(seg->path.c_str(), O_RDWR | O_CREAT | O_APPEND, 0644);
  if (seg->fd < 0) {
    return Status::IOError("create " + seg->path + ": " + strerror(errno));
  }
  seg->size = 0;
  segments_.push_back(std::move(seg));
  return Status::OK();
}

Status KVStore::AppendRecord(uint8_t type, Slice key, Slice value,
                             Location* value_loc) {
  NGRAM_RETURN_NOT_OK(RollSegmentIfNeeded());
  Segment& seg = *segments_.back();

  std::string record;
  record.reserve(1 + 2 * kMaxVarint64Bytes + key.size() + value.size() + 4);
  record.push_back(static_cast<char>(type));
  PutVarint64(&record, key.size());
  PutVarint64(&record, value.size());
  record.append(key.data(), key.size());
  record.append(value.data(), value.size());
  // CRC trailer over header + key + value (verified on replay and Get).
  PutFixed32(&record, Crc32(0, record.data(), record.size()));

  size_t written = 0;
  while (written < record.size()) {
    const ssize_t n =
        ::write(seg.fd, record.data() + written, record.size() - written);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return Status::IOError("write " + seg.path + ": " + strerror(errno));
    }
    written += static_cast<size_t>(n);
  }
  if (value_loc != nullptr) {
    *value_loc = Location{seg.id, seg.size,
                          static_cast<uint32_t>(record.size()),
                          static_cast<uint32_t>(value.size())};
  }
  seg.size += record.size();
  stats_.bytes_written += record.size();
  return Status::OK();
}

Status KVStore::Put(Slice key, Slice value) {
  Location loc;
  NGRAM_RETURN_NOT_OK(AppendRecord(kRecordPut, key, value, &loc));
  index_[key.ToString()] = loc;
  ++stats_.puts;
  return Status::OK();
}

Status KVStore::Delete(Slice key) {
  auto it = index_.find(key.ToString());
  if (it == index_.end()) {
    return Status::OK();
  }
  NGRAM_RETURN_NOT_OK(AppendRecord(kRecordDelete, key, Slice(), nullptr));
  index_.erase(it);
  ++stats_.deletes;
  return Status::OK();
}

bool KVStore::Contains(Slice key) const {
  return index_.find(key.ToString()) != index_.end();
}

Status KVStore::Get(Slice key, std::string* value) {
  ++stats_.gets;
  auto it = index_.find(key.ToString());
  if (it == index_.end()) {
    return Status::NotFound("key absent: " + key.ToString());
  }
  const Location& loc = it->second;
  Segment* seg = nullptr;
  for (auto& s : segments_) {
    if (s->id == loc.segment_id) {
      seg = s.get();
      break;
    }
  }
  if (seg == nullptr) {
    return Status::Corruption("segment missing for key " + key.ToString());
  }
  // Read the whole record and verify its CRC trailer, so a flipped byte
  // anywhere — key, value, or header — surfaces as Corruption instead of
  // silently returning damaged state. The extra key/header bytes read
  // come through the block cache like the value bytes always did.
  std::string record;
  NGRAM_RETURN_NOT_OK(ReadAt(*seg, loc.offset, loc.record_size, &record));
  if (record.size() != loc.record_size || loc.record_size < 4 ||
      loc.record_size < 4u + loc.value_size) {
    return Status::Corruption("short record read in " + seg->path);
  }
  const uint32_t expected = DecodeFixed32(record.data() + record.size() - 4);
  const uint32_t actual = Crc32(0, record.data(), record.size() - 4);
  if (actual != expected) {
    return Status::Corruption("record CRC mismatch in " + seg->path +
                              " at offset " + std::to_string(loc.offset));
  }
  value->assign(record.data() + record.size() - 4 - loc.value_size,
                loc.value_size);
  return Status::OK();
}

Status KVStore::ReadAt(Segment& seg, uint64_t offset, size_t n,
                       std::string* out) {
  out->clear();
  if (n == 0) {
    return Status::OK();
  }
  out->reserve(n);
  stats_.bytes_read += n;

  const size_t block_size = options_.block_size;
  const uint64_t first_block = offset / block_size;
  const uint64_t last_block = (offset + n - 1) / block_size;

  for (uint64_t b = first_block; b <= last_block; ++b) {
    const uint64_t block_start = b * block_size;
    // A block may be cached only once fully written (append-only segments
    // never mutate complete blocks).
    const bool cacheable = (block_start + block_size) <= seg.size;

    std::shared_ptr<const std::string> block;
    if (cacheable) {
      block = cache_->Lookup(BlockKey{seg.cache_file_id, b});
      if (block != nullptr) {
        ++stats_.cache_hits;
      } else {
        ++stats_.cache_misses;
      }
    }
    if (block == nullptr) {
      const size_t want = static_cast<size_t>(
          std::min<uint64_t>(block_size, seg.size - block_start));
      auto fresh = std::make_shared<std::string>();
      fresh->resize(want);
      size_t got = 0;
      while (got < want) {
        const ssize_t r = ::pread(seg.fd, fresh->data() + got, want - got,
                                  static_cast<off_t>(block_start + got));
        if (r < 0) {
          if (errno == EINTR) {
            continue;
          }
          return Status::IOError("pread " + seg.path + ": " +
                                 strerror(errno));
        }
        if (r == 0) {
          return Status::Corruption("short read in " + seg.path);
        }
        got += static_cast<size_t>(r);
      }
      if (cacheable) {
        cache_->Insert(BlockKey{seg.cache_file_id, b}, fresh);
      }
      block = std::move(fresh);
    }

    const uint64_t copy_from =
        (b == first_block) ? (offset - block_start) : 0;
    const uint64_t copy_to =
        (b == last_block) ? (offset + n - block_start) : block->size();
    out->append(block->data() + copy_from, copy_to - copy_from);
  }
  return Status::OK();
}

Status KVStore::Scan(const std::function<Status(Slice, Slice)>& fn) {
  std::string value;
  for (const auto& [key, loc] : index_) {
    NGRAM_RETURN_NOT_OK(Get(key, &value));
    NGRAM_RETURN_NOT_OK(fn(Slice(key), Slice(value)));
  }
  return Status::OK();
}

}  // namespace ngram::kv
