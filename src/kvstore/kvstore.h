// A small log-structured disk key-value store: append-only segments, an
// in-memory key index, and an LRU block cache for reads.
//
// This is the repo's stand-in for the paper's use of Berkeley DB JE
// (Section V, "Key-Value Store"): reducer state that outgrows its memory
// budget migrates here and is read back through the cache.
//
// Integrity: every segment record carries a CRC-32 trailer (the same
// checksum the run-file blocks use, util/crc32.h) covering its header,
// key, and value. The CRC is verified when segments are replayed at
// Open() and again on every Get(), so a flipped byte anywhere in a
// segment surfaces as Corruption instead of silently changing reducer
// state.
#pragma once

#include <cstdint>
#include <filesystem>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "kvstore/block_cache.h"
#include "util/macros.h"
#include "util/result.h"
#include "util/slice.h"
#include "util/status.h"

namespace ngram::kv {

/// Tuning knobs for KVStore.
struct KVStoreOptions {
  /// Block size used for cached reads.
  size_t block_size = 64 * 1024;
  /// Segment roll-over threshold.
  uint64_t max_segment_bytes = 256ULL * 1024 * 1024;
  /// Shared cache; a private 8 MiB cache is created when null.
  std::shared_ptr<BlockCache> cache;
  /// Default capacity of the private cache when `cache` is null.
  size_t default_cache_bytes = 8 * 1024 * 1024;
};

/// Operational counters, exposed for tests and ablation benchmarks.
struct KVStoreStats {
  uint64_t puts = 0;
  uint64_t gets = 0;
  uint64_t deletes = 0;
  uint64_t bytes_written = 0;
  uint64_t bytes_read = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
};

/// \brief Disk-resident string->string store.
///
/// Keys live in an in-memory index (Bitcask-style); values live in
/// append-only segment files. Not thread-safe; each reducer owns its own
/// store instance, matching how the paper shards reducer state.
class KVStore {
 public:
  /// Opens (or creates) a store rooted at directory `dir`. Existing
  /// segments are scanned to rebuild the index, so a store can be reopened.
  static Result<std::unique_ptr<KVStore>> Open(const std::string& dir,
                                               KVStoreOptions options = {});

  ~KVStore();
  NGRAM_DISALLOW_COPY_AND_ASSIGN(KVStore);

  /// Inserts or overwrites `key`.
  Status Put(Slice key, Slice value);

  /// Fetches `key` into `*value`. Returns NotFound if absent.
  Status Get(Slice key, std::string* value);

  /// Returns true iff `key` is present (no value materialization).
  bool Contains(Slice key) const;

  /// Removes `key` (logs a tombstone). Removing an absent key is OK.
  Status Delete(Slice key);

  /// Invokes `fn(key, value)` for every live entry, in unspecified order.
  /// Stops early and propagates if `fn` returns a non-OK status.
  Status Scan(const std::function<Status(Slice, Slice)>& fn);

  uint64_t size() const { return index_.size(); }
  const KVStoreStats& stats() const { return stats_; }

 private:
  struct Location {
    uint32_t segment_id;
    uint64_t offset;       // Offset of the whole record within the segment.
    uint32_t record_size;  // Header + key + value + CRC trailer.
    uint32_t value_size;
  };
  struct Segment;

  KVStore(std::string dir, KVStoreOptions options);

  Status OpenSegments();
  Status RollSegmentIfNeeded();
  Status AppendRecord(uint8_t type, Slice key, Slice value,
                      Location* value_loc);
  Status ReadAt(Segment& seg, uint64_t offset, size_t n, std::string* out);

  const std::string dir_;
  KVStoreOptions options_;
  std::shared_ptr<BlockCache> cache_;
  std::vector<std::unique_ptr<Segment>> segments_;
  std::unordered_map<std::string, Location> index_;
  KVStoreStats stats_;
};

}  // namespace ngram::kv
