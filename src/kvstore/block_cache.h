// LRU block cache fronting KV store segment files, in the spirit of the
// caching layer the paper layers over Berkeley DB ("Most main memory is then
// used for caching").
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "util/macros.h"

namespace ngram::kv {

/// Key of a cached block: (file id, block index).
struct BlockKey {
  uint64_t file_id;
  uint64_t block_index;
  bool operator==(const BlockKey& o) const {
    return file_id == o.file_id && block_index == o.block_index;
  }
};

struct BlockKeyHash {
  size_t operator()(const BlockKey& k) const {
    return std::hash<uint64_t>()(k.file_id * 0x9e3779b97f4a7c15ULL ^
                                 k.block_index);
  }
};

/// \brief Sharded-free LRU cache of fixed-size file blocks.
///
/// Thread-safe. Eviction is strict LRU by byte capacity. Blocks are
/// immutable once inserted (segments are append-only and blocks are only
/// cached once full or sealed).
class BlockCache {
 public:
  /// `capacity_bytes` of zero disables caching entirely.
  explicit BlockCache(size_t capacity_bytes)
      : capacity_bytes_(capacity_bytes) {}

  NGRAM_DISALLOW_COPY_AND_ASSIGN(BlockCache);

  /// Returns the cached block or nullptr on miss.
  std::shared_ptr<const std::string> Lookup(const BlockKey& key);

  /// Inserts a block (no-op when capacity is zero). Replaces an existing
  /// entry for the same key.
  void Insert(const BlockKey& key, std::shared_ptr<const std::string> block);

  /// Drops every block belonging to `file_id` (file deleted / truncated).
  void EraseFile(uint64_t file_id);

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  size_t charged_bytes() const { return charged_bytes_; }

 private:
  struct Entry {
    BlockKey key;
    std::shared_ptr<const std::string> block;
  };
  using LruList = std::list<Entry>;

  void EvictIfNeeded();  // Requires mu_ held.

  const size_t capacity_bytes_;
  std::mutex mu_;
  LruList lru_;  // Front = most recently used.
  std::unordered_map<BlockKey, LruList::iterator, BlockKeyHash> index_;
  size_t charged_bytes_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace ngram::kv
