// LRU block cache fronting KV store segment files, in the spirit of the
// caching layer the paper layers over Berkeley DB ("Most main memory is then
// used for caching").
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>

#include "util/macros.h"
#include "util/mutex.h"

namespace ngram::kv {

/// Allocates a process-unique cache file id. Every file that caches blocks
/// under a (possibly shared) BlockCache — KV store segments, serving
/// shards — draws its id here so two subsystems sharing one cache can
/// never collide on a BlockKey.
uint64_t AllocateCacheFileId();

/// Key of a cached block: (file id, block index).
struct BlockKey {
  uint64_t file_id;
  uint64_t block_index;
  bool operator==(const BlockKey& o) const {
    return file_id == o.file_id && block_index == o.block_index;
  }
};

struct BlockKeyHash {
  size_t operator()(const BlockKey& k) const {
    return std::hash<uint64_t>()(k.file_id * 0x9e3779b97f4a7c15ULL ^
                                 k.block_index);
  }
};

/// Point-in-time view of the cache's operational counters, exposed through
/// StatsService::CacheStats so serving benchmarks can report hit ratio
/// alongside latency percentiles.
struct BlockCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t inserts = 0;
  uint64_t evictions = 0;
  size_t charged_bytes = 0;
  size_t capacity_bytes = 0;

  double hit_ratio() const {
    const uint64_t lookups = hits + misses;
    return lookups == 0 ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(lookups);
  }
};

/// \brief Sharded-free LRU cache of fixed-size file blocks.
///
/// Thread-safe. Eviction is strict LRU by byte capacity. Blocks are
/// immutable once inserted (segments are append-only and blocks are only
/// cached once full or sealed). Counters are atomics so concurrent
/// readers (the serving layer polls CacheStats while query threads churn
/// the cache) observe them without taking the LRU mutex.
class BlockCache {
 public:
  /// `capacity_bytes` of zero disables caching entirely.
  explicit BlockCache(size_t capacity_bytes)
      : capacity_bytes_(capacity_bytes) {}

  NGRAM_DISALLOW_COPY_AND_ASSIGN(BlockCache);

  /// Returns the cached block or nullptr on miss.
  std::shared_ptr<const std::string> Lookup(const BlockKey& key)
      NGRAM_EXCLUDES(mu_);

  /// Inserts a block (no-op when capacity is zero). Replaces an existing
  /// entry for the same key.
  void Insert(const BlockKey& key, std::shared_ptr<const std::string> block)
      NGRAM_EXCLUDES(mu_);

  /// Drops every block belonging to `file_id` (file deleted / truncated).
  void EraseFile(uint64_t file_id) NGRAM_EXCLUDES(mu_);

  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  uint64_t inserts() const { return inserts_.load(std::memory_order_relaxed); }
  uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }
  size_t charged_bytes() const {
    return charged_bytes_.load(std::memory_order_relaxed);
  }
  size_t capacity_bytes() const { return capacity_bytes_; }

  /// One consistent-enough sample of every counter (individually atomic;
  /// not a cross-counter snapshot — fine for reporting).
  BlockCacheStats Snapshot() const {
    BlockCacheStats stats;
    stats.hits = hits();
    stats.misses = misses();
    stats.inserts = inserts();
    stats.evictions = evictions();
    stats.charged_bytes = charged_bytes();
    stats.capacity_bytes = capacity_bytes_;
    return stats;
  }

 private:
  struct Entry {
    BlockKey key;
    std::shared_ptr<const std::string> block;
  };
  using LruList = std::list<Entry>;

  void EvictIfNeeded() NGRAM_REQUIRES(mu_);

  const size_t capacity_bytes_;
  Mutex mu_;
  LruList lru_ NGRAM_GUARDED_BY(mu_);  // Front = most recently used.
  std::unordered_map<BlockKey, LruList::iterator, BlockKeyHash> index_
      NGRAM_GUARDED_BY(mu_);
  std::atomic<size_t> charged_bytes_{0};
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> inserts_{0};
  std::atomic<uint64_t> evictions_{0};
};

}  // namespace ngram::kv
