#include "kvstore/block_cache.h"

namespace ngram::kv {

uint64_t AllocateCacheFileId() {
  static std::atomic<uint64_t> source{1};
  return source.fetch_add(1, std::memory_order_relaxed);
}

std::shared_ptr<const std::string> BlockCache::Lookup(const BlockKey& key) {
  MutexLock lock(&mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  // Move to front (most recently used).
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->block;
}

void BlockCache::Insert(const BlockKey& key,
                        std::shared_ptr<const std::string> block) {
  if (capacity_bytes_ == 0 || block == nullptr) {
    return;
  }
  MutexLock lock(&mu_);
  inserts_.fetch_add(1, std::memory_order_relaxed);
  auto it = index_.find(key);
  if (it != index_.end()) {
    charged_bytes_.fetch_sub(it->second->block->size(),
                             std::memory_order_relaxed);
    it->second->block = std::move(block);
    charged_bytes_.fetch_add(it->second->block->size(),
                             std::memory_order_relaxed);
    lru_.splice(lru_.begin(), lru_, it->second);
  } else {
    lru_.push_front(Entry{key, std::move(block)});
    index_[key] = lru_.begin();
    charged_bytes_.fetch_add(lru_.front().block->size(),
                             std::memory_order_relaxed);
  }
  EvictIfNeeded();
}

void BlockCache::EraseFile(uint64_t file_id) {
  MutexLock lock(&mu_);
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->key.file_id == file_id) {
      charged_bytes_.fetch_sub(it->block->size(), std::memory_order_relaxed);
      index_.erase(it->key);
      it = lru_.erase(it);
    } else {
      ++it;
    }
  }
}

void BlockCache::EvictIfNeeded() {
  while (charged_bytes_.load(std::memory_order_relaxed) > capacity_bytes_ &&
         !lru_.empty()) {
    const Entry& victim = lru_.back();
    charged_bytes_.fetch_sub(victim.block->size(), std::memory_order_relaxed);
    index_.erase(victim.key);
    lru_.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace ngram::kv
