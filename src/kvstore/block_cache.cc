#include "kvstore/block_cache.h"

namespace ngram::kv {

std::shared_ptr<const std::string> BlockCache::Lookup(const BlockKey& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  // Move to front (most recently used).
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->block;
}

void BlockCache::Insert(const BlockKey& key,
                        std::shared_ptr<const std::string> block) {
  if (capacity_bytes_ == 0 || block == nullptr) {
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    charged_bytes_ -= it->second->block->size();
    it->second->block = std::move(block);
    charged_bytes_ += it->second->block->size();
    lru_.splice(lru_.begin(), lru_, it->second);
  } else {
    lru_.push_front(Entry{key, std::move(block)});
    index_[key] = lru_.begin();
    charged_bytes_ += lru_.front().block->size();
  }
  EvictIfNeeded();
}

void BlockCache::EraseFile(uint64_t file_id) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->key.file_id == file_id) {
      charged_bytes_ -= it->block->size();
      index_.erase(it->key);
      it = lru_.erase(it);
    } else {
      ++it;
    }
  }
}

void BlockCache::EvictIfNeeded() {
  while (charged_bytes_ > capacity_bytes_ && !lru_.empty()) {
    const Entry& victim = lru_.back();
    charged_bytes_ -= victim.block->size();
    index_.erase(victim.key);
    lru_.pop_back();
  }
}

}  // namespace ngram::kv
