// Memory-budgeted containers that migrate to the disk KV store when full —
// the mechanism the paper prescribes for APRIORI reducers whose buffered
// posting lists or dictionaries exceed main memory (Section V).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "encoding/serde.h"
#include "kvstore/kvstore.h"
#include "util/logging.h"
#include "util/result.h"

namespace ngram::kv {

/// \brief An append-only sequence of T with a memory budget.
///
/// Items are kept in memory until `memory_budget_bytes` of serialized size
/// accumulates; from then on every item (including the already-buffered
/// ones) lives in the KV store under its sequence number. Iteration replays
/// items in insertion order either way, so callers are oblivious to where
/// the data resides.
template <typename T>
class SpillableVector {
 public:
  /// `store_dir` is only touched if a spill actually happens.
  SpillableVector(std::string store_dir, size_t memory_budget_bytes,
                  KVStoreOptions kv_options = {})
      : store_dir_(std::move(store_dir)),
        memory_budget_bytes_(memory_budget_bytes),
        kv_options_(kv_options) {}

  Status Append(const T& item) {
    std::string encoded;
    Serde<T>::Encode(item, &encoded);
    if (store_ == nullptr &&
        memory_bytes_ + encoded.size() <= memory_budget_bytes_) {
      memory_bytes_ += encoded.size();
      in_memory_.push_back(std::move(encoded));
      ++size_;
      return Status::OK();
    }
    NGRAM_RETURN_NOT_OK(EnsureSpilled());
    NGRAM_RETURN_NOT_OK(store_->Put(IndexKey(size_), encoded));
    ++size_;
    return Status::OK();
  }

  uint64_t size() const { return size_; }
  bool spilled() const { return store_ != nullptr; }

  /// Calls `fn(item)` for items [0, size) in insertion order.
  Status ForEach(const std::function<Status(const T&)>& fn) {
    std::string buf;
    T item;
    for (uint64_t i = 0; i < size_; ++i) {
      Slice encoded;
      if (store_ == nullptr) {
        encoded = Slice(in_memory_[i]);
      } else {
        NGRAM_RETURN_NOT_OK(store_->Get(IndexKey(i), &buf));
        encoded = Slice(buf);
      }
      if (!Serde<T>::Decode(encoded, &item)) {
        return Status::Corruption("SpillableVector: undecodable item " +
                                  std::to_string(i));
      }
      NGRAM_RETURN_NOT_OK(fn(item));
    }
    return Status::OK();
  }

  /// Random access; O(1) in memory, one KV read when spilled.
  Status At(uint64_t i, T* out) {
    if (i >= size_) {
      return Status::OutOfRange("index " + std::to_string(i));
    }
    if (store_ == nullptr) {
      if (!Serde<T>::Decode(Slice(in_memory_[i]), out)) {
        return Status::Corruption("SpillableVector: undecodable item");
      }
      return Status::OK();
    }
    std::string buf;
    NGRAM_RETURN_NOT_OK(store_->Get(IndexKey(i), &buf));
    if (!Serde<T>::Decode(Slice(buf), out)) {
      return Status::Corruption("SpillableVector: undecodable item");
    }
    return Status::OK();
  }

  void Clear() {
    in_memory_.clear();
    memory_bytes_ = 0;
    size_ = 0;
    store_.reset();  // Segments are removed with the spill directory.
  }

 private:
  static std::string IndexKey(uint64_t i) {
    // Fixed-width big-endian so keys are unique; order is irrelevant.
    std::string key(8, '\0');
    for (int b = 7; b >= 0; --b) {
      key[b] = static_cast<char>(i & 0xff);
      i >>= 8;
    }
    return key;
  }

  Status EnsureSpilled() {
    if (store_ != nullptr) {
      return Status::OK();
    }
    auto opened = KVStore::Open(store_dir_, kv_options_);
    if (!opened.ok()) {
      return opened.status();
    }
    store_ = std::move(opened).ValueOrDie();
    NGRAM_LOG_DEBUG << "SpillableVector spilling to " << store_dir_ << " ("
                    << in_memory_.size() << " buffered items)";
    for (uint64_t i = 0; i < in_memory_.size(); ++i) {
      NGRAM_RETURN_NOT_OK(store_->Put(IndexKey(i), in_memory_[i]));
    }
    in_memory_.clear();
    memory_bytes_ = 0;
    return Status::OK();
  }

  const std::string store_dir_;
  const size_t memory_budget_bytes_;
  const KVStoreOptions kv_options_;
  std::vector<std::string> in_memory_;  // Serialized items while unspilled.
  size_t memory_bytes_ = 0;
  uint64_t size_ = 0;
  std::unique_ptr<KVStore> store_;
};

}  // namespace ngram::kv
