// The shuffle wire protocol: length-prefixed, CRC-framed request/response
// messages over one Connection (docs/architecture.md section 10).
//
// Frame layout (17-byte header, little-endian, then the payload):
//
//   +----------+-------------+--------+--------------+---------------+=========+
//   | magic u32| payload_len | type   | header crc32 | payload crc32 | payload |
//   | 'NGSF'   | u32         | u8     | u32          | u32           | bytes   |
//   +----------+-------------+--------+--------------+---------------+=========+
//
// The header CRC covers magic + payload_len + type and is checked BEFORE
// the payload read: a damaged length field must fail the frame, not send
// the reader into a blocking read for bytes the peer will never write.
// The payload CRC covers the payload bytes. Any violation is Corruption —
// transports are reliable streams, so a bad frame means injected damage
// or a protocol bug, never reordering.
//
// Conversation: the fetcher publishes a task's run manifest
// (kPublishRequest -> kPublishOk), then pulls one partition segment per
// kFetchRequest -> kFetchData exchange. Server-side failures answer
// kError (a Status code + message) and leave the connection usable for
// the next request.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/transport.h"
#include "util/slice.h"
#include "util/status.h"

namespace ngram::net {

inline constexpr uint32_t kFrameMagic = 0x4653474eu;  // "NGSF" on the wire.
inline constexpr size_t kFrameHeaderBytes = 17;
/// The prefix of the header the header CRC covers: magic, payload_len,
/// and type.
inline constexpr size_t kFrameHeaderCrcBytes = 9;
/// Upper bound on one frame's payload: fetch responses carry whole
/// partition segments, which are bounded by run-file size; a length
/// beyond this is a structural violation, not a large message.
inline constexpr uint32_t kMaxFramePayload = 1u << 30;

enum class MessageType : uint8_t {
  kPublishRequest = 1,  // Fetcher -> server: a task's run manifest.
  kPublishOk = 2,       // Server -> fetcher: manifest installed.
  kFetchRequest = 3,    // Fetcher -> server: one (run, partition) extent.
  kFetchData = 4,       // Server -> fetcher: the segment's raw bytes.
  kError = 5,           // Server -> fetcher: Status code + message.
};

/// One partition's byte extent inside a published run (RunSegment's wire
/// twin — offsets are into the source run file).
struct WireSegment {
  uint64_t offset = 0;
  uint64_t length = 0;
  uint64_t num_records = 0;
};

/// One committed run of a published map task: where its file lives on the
/// serving side, how to decode it, and its per-partition extents.
struct WireRun {
  std::string path;
  bool block_format = false;
  bool has_crc = false;
  uint32_t crc32 = 0;
  std::vector<WireSegment> segments;
};

/// kPublishRequest payload: the manifest of one map task's generation.
struct PublishRequest {
  uint32_t task = 0;
  uint32_t generation = 0;
  std::vector<WireRun> runs;
};

/// kFetchRequest payload: one (task, generation, run, partition) extent.
struct FetchRequest {
  uint32_t task = 0;
  uint32_t generation = 0;
  uint32_t run_index = 0;
  uint32_t partition = 0;
};

/// Writes one frame (header + payload) to `conn`.
Status WriteFrame(Connection* conn, MessageType type, Slice payload);

/// Reads one frame. Validates magic, type, length bound, and payload CRC
/// (Corruption on any violation). With `eof_ok` true, an orderly EOF
/// *before the first header byte* returns OK with `*clean_eof` set — the
/// server's between-requests idle read; EOF anywhere else is Corruption.
Status ReadFrame(Connection* conn, MessageType* type, std::string* payload,
                 bool eof_ok = false, bool* clean_eof = nullptr);

void EncodePublishRequest(const PublishRequest& req, std::string* out);
bool DecodePublishRequest(Slice in, PublishRequest* req);

void EncodeFetchRequest(const FetchRequest& req, std::string* out);
bool DecodeFetchRequest(Slice in, FetchRequest* req);

/// kError payloads carry the Status across the wire: a stable code byte
/// plus the message.
void EncodeError(const Status& status, std::string* out);
/// Reconstructs the Status (Internal for an undecodable payload).
Status DecodeError(Slice in);

}  // namespace ngram::net
