#include "net/wire.h"

#include "encoding/varint.h"
#include "util/crc32.h"

namespace ngram::net {
namespace {

bool KnownType(uint8_t type) {
  return type >= static_cast<uint8_t>(MessageType::kPublishRequest) &&
         type <= static_cast<uint8_t>(MessageType::kError);
}

/// Stable wire codes for Status categories (never reorder: they are a
/// cross-process protocol, unlike the in-memory StatusCode enum).
uint8_t WireCodeOf(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return 0;
    case StatusCode::kInvalidArgument:
      return 1;
    case StatusCode::kIOError:
      return 2;
    case StatusCode::kNotFound:
      return 3;
    case StatusCode::kCorruption:
      return 4;
    case StatusCode::kOutOfRange:
      return 5;
    case StatusCode::kAlreadyExists:
      return 6;
    case StatusCode::kResourceExhausted:
      return 7;
    case StatusCode::kInternal:
      return 8;
    case StatusCode::kCancelled:
      return 9;
    case StatusCode::kNotImplemented:
      return 10;
  }
  return 8;  // Internal.
}

Status StatusFromWire(uint8_t code, std::string msg) {
  switch (code) {
    case 1:
      return Status::InvalidArgument(std::move(msg));
    case 2:
      return Status::IOError(std::move(msg));
    case 3:
      return Status::NotFound(std::move(msg));
    case 4:
      return Status::Corruption(std::move(msg));
    case 5:
      return Status::OutOfRange(std::move(msg));
    case 6:
      return Status::AlreadyExists(std::move(msg));
    case 7:
      return Status::ResourceExhausted(std::move(msg));
    case 9:
      return Status::Cancelled(std::move(msg));
    case 10:
      return Status::NotImplemented(std::move(msg));
    default:
      return Status::Internal(std::move(msg));
  }
}

}  // namespace

Status WriteFrame(Connection* conn, MessageType type, Slice payload) {
  if (payload.size() > kMaxFramePayload) {
    return Status::InvalidArgument("frame payload too large: " +
                                   std::to_string(payload.size()));
  }
  char header[kFrameHeaderBytes];
  char* p = EncodeFixed32To(header, kFrameMagic);
  p = EncodeFixed32To(p, static_cast<uint32_t>(payload.size()));
  *p++ = static_cast<char>(type);
  p = EncodeFixed32To(p, Crc32(0, header, kFrameHeaderCrcBytes));
  EncodeFixed32To(p, Crc32(0, payload.data(), payload.size()));
  Status st = conn->Write(header, sizeof(header));
  if (!st.ok()) {
    return st;
  }
  if (!payload.empty()) {
    st = conn->Write(payload.data(), payload.size());
  }
  return st;
}

Status ReadFrame(Connection* conn, MessageType* type, std::string* payload,
                 bool eof_ok, bool* clean_eof) {
  char header[kFrameHeaderBytes];
  Status st = ReadFull(conn, header, sizeof(header), eof_ok, clean_eof);
  if (!st.ok()) {
    return st.WithContext("reading frame header");
  }
  if (clean_eof != nullptr && *clean_eof) {
    return Status::OK();
  }
  if (DecodeFixed32(header) != kFrameMagic) {
    return Status::Corruption("bad frame magic");
  }
  // Validated before the payload read: a damaged payload_len would
  // otherwise block this reader waiting for bytes the peer never sends.
  if (Crc32(0, header, kFrameHeaderCrcBytes) !=
      DecodeFixed32(header + kFrameHeaderCrcBytes)) {
    return Status::Corruption("frame header CRC mismatch");
  }
  const uint32_t payload_len = DecodeFixed32(header + 4);
  const uint8_t raw_type = static_cast<uint8_t>(header[8]);
  const uint32_t expected_crc = DecodeFixed32(header + 13);
  if (payload_len > kMaxFramePayload) {
    return Status::Corruption("frame payload length out of bounds: " +
                              std::to_string(payload_len));
  }
  if (!KnownType(raw_type)) {
    return Status::Corruption("unknown frame type " +
                              std::to_string(raw_type));
  }
  payload->resize(payload_len);
  if (payload_len > 0) {
    st = ReadFull(conn, &(*payload)[0], payload_len);
    if (!st.ok()) {
      return st.WithContext("reading frame payload");
    }
  }
  const uint32_t actual_crc = Crc32(0, payload->data(), payload->size());
  if (actual_crc != expected_crc) {
    return Status::Corruption("frame payload CRC mismatch");
  }
  *type = static_cast<MessageType>(raw_type);
  return Status::OK();
}

void EncodePublishRequest(const PublishRequest& req, std::string* out) {
  PutVarint64(out, req.task);
  PutVarint64(out, req.generation);
  PutVarint64(out, req.runs.size());
  for (const WireRun& run : req.runs) {
    PutVarint64(out, run.path.size());
    out->append(run.path);
    out->push_back(run.block_format ? 1 : 0);
    out->push_back(run.has_crc ? 1 : 0);
    PutFixed32(out, run.crc32);
    PutVarint64(out, run.segments.size());
    for (const WireSegment& seg : run.segments) {
      PutVarint64(out, seg.offset);
      PutVarint64(out, seg.length);
      PutVarint64(out, seg.num_records);
    }
  }
}

bool DecodePublishRequest(Slice in, PublishRequest* req) {
  uint64_t task = 0;
  uint64_t generation = 0;
  uint64_t num_runs = 0;
  if (!GetVarint64(&in, &task) || !GetVarint64(&in, &generation) ||
      !GetVarint64(&in, &num_runs)) {
    return false;
  }
  // A manifest names at most a task's spill files; an absurd count is a
  // decode gone off the rails, not a big job.
  if (task > 0xffffffffULL || generation > 0xffffffffULL ||
      num_runs > (1u << 20)) {
    return false;
  }
  req->task = static_cast<uint32_t>(task);
  req->generation = static_cast<uint32_t>(generation);
  req->runs.clear();
  req->runs.reserve(num_runs);
  for (uint64_t i = 0; i < num_runs; ++i) {
    WireRun run;
    uint64_t path_len = 0;
    if (!GetVarint64(&in, &path_len) || path_len > in.size()) {
      return false;
    }
    run.path.assign(in.data(), path_len);
    in.RemovePrefix(path_len);
    if (in.size() < 6) {  // flags + fixed32 crc.
      return false;
    }
    run.block_format = in.data()[0] != 0;
    run.has_crc = in.data()[1] != 0;
    run.crc32 = DecodeFixed32(in.data() + 2);
    in.RemovePrefix(6);
    uint64_t num_segments = 0;
    if (!GetVarint64(&in, &num_segments) || num_segments > (1u << 24)) {
      return false;
    }
    run.segments.reserve(num_segments);
    for (uint64_t s = 0; s < num_segments; ++s) {
      WireSegment seg;
      if (!GetVarint64(&in, &seg.offset) || !GetVarint64(&in, &seg.length) ||
          !GetVarint64(&in, &seg.num_records)) {
        return false;
      }
      run.segments.push_back(seg);
    }
    req->runs.push_back(std::move(run));
  }
  return in.empty();
}

void EncodeFetchRequest(const FetchRequest& req, std::string* out) {
  PutVarint64(out, req.task);
  PutVarint64(out, req.generation);
  PutVarint64(out, req.run_index);
  PutVarint64(out, req.partition);
}

bool DecodeFetchRequest(Slice in, FetchRequest* req) {
  uint64_t task = 0;
  uint64_t generation = 0;
  uint64_t run_index = 0;
  uint64_t partition = 0;
  if (!GetVarint64(&in, &task) || !GetVarint64(&in, &generation) ||
      !GetVarint64(&in, &run_index) || !GetVarint64(&in, &partition) ||
      !in.empty()) {
    return false;
  }
  if (task > 0xffffffffULL || generation > 0xffffffffULL ||
      run_index > 0xffffffffULL || partition > 0xffffffffULL) {
    return false;
  }
  req->task = static_cast<uint32_t>(task);
  req->generation = static_cast<uint32_t>(generation);
  req->run_index = static_cast<uint32_t>(run_index);
  req->partition = static_cast<uint32_t>(partition);
  return true;
}

void EncodeError(const Status& status, std::string* out) {
  out->push_back(static_cast<char>(WireCodeOf(status.code())));
  out->append(status.message());
}

Status DecodeError(Slice in) {
  if (in.empty()) {
    return Status::Internal("undecodable error frame (empty payload)");
  }
  const uint8_t code = static_cast<uint8_t>(in.data()[0]);
  return StatusFromWire(code,
                        std::string(in.data() + 1, in.size() - 1));
}

}  // namespace ngram::net
