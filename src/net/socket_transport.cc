// All raw socket syscalls of the tree live in this file (socket lint
// rule); everything above it speaks the Transport interface.
#include "net/socket_transport.h"

#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace ngram::net {
namespace {

Status ErrnoStatus(const std::string& what, int err) {
  const std::string msg = what + ": " + std::strerror(err);
  if (err == ENOENT || err == ECONNREFUSED) {
    return Status::NotFound(msg);
  }
  return Status::IOError(msg);
}

Status FillSockaddr(const std::string& address, sockaddr_un* addr) {
  if (address.empty() || address.size() >= sizeof(addr->sun_path)) {
    return Status::InvalidArgument(
        "unix socket path empty or longer than sun_path: " + address);
  }
  std::memset(addr, 0, sizeof(*addr));
  addr->sun_family = AF_UNIX;
  std::memcpy(addr->sun_path, address.data(), address.size());
  return Status::OK();
}

class SocketConnection final : public Connection {
 public:
  explicit SocketConnection(int fd) : fd_(fd) {}

  ~SocketConnection() override { ::close(fd_); }

  Status Write(const char* data, size_t n) override {
    size_t written = 0;
    while (written < n) {
      // send + MSG_NOSIGNAL, not write: a peer that vanished mid-stream
      // must surface as EPIPE -> IOError, not kill the process.
      const ssize_t rc =
          ::send(fd_, data + written, n - written, MSG_NOSIGNAL);
      if (rc < 0) {
        if (errno == EINTR) {
          continue;
        }
        return ErrnoStatus("socket write", errno);
      }
      written += static_cast<size_t>(rc);
    }
    return Status::OK();
  }

  Status Read(char* dst, size_t n, size_t* read) override {
    while (true) {
      const ssize_t rc = ::read(fd_, dst, n);
      if (rc < 0) {
        if (errno == EINTR) {
          continue;
        }
        return ErrnoStatus("socket read", errno);
      }
      *read = static_cast<size_t>(rc);
      return Status::OK();
    }
  }

  void Abort() override {
    // Leaves fd_ open (the destructor closes it); pending and future
    // reads/writes see EOF / EPIPE-ish failures immediately.
    ::shutdown(fd_, SHUT_RDWR);
  }

 private:
  const int fd_;
};

class SocketListener final : public Listener {
 public:
  SocketListener(int listen_fd, int wake_rd, int wake_wr, std::string address)
      : listen_fd_(listen_fd),
        wake_rd_(wake_rd),
        wake_wr_(wake_wr),
        address_(std::move(address)) {}

  ~SocketListener() override {
    Shutdown();
    ::close(listen_fd_);
    ::close(wake_rd_);
    ::close(wake_wr_);
    ::unlink(address_.c_str());
  }

  Status Accept(std::unique_ptr<Connection>* conn) override {
    while (true) {
      pollfd fds[2];
      fds[0].fd = listen_fd_;
      fds[0].events = POLLIN;
      fds[1].fd = wake_rd_;
      fds[1].events = POLLIN;
      const int rc = ::poll(fds, 2, -1);
      if (rc < 0) {
        if (errno == EINTR) {
          continue;
        }
        return ErrnoStatus("poll on listener", errno);
      }
      if (fds[1].revents != 0) {
        return Status::Cancelled("socket listener shut down");
      }
      if (fds[0].revents == 0) {
        continue;
      }
      const int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd < 0) {
        if (errno == EINTR || errno == ECONNABORTED) {
          continue;
        }
        return ErrnoStatus("accept on " + address_, errno);
      }
      *conn = std::make_unique<SocketConnection>(fd);
      return Status::OK();
    }
  }

  void Shutdown() override {
    // One byte per call is fine: the wake fd is only ever polled, never
    // drained, so any byte keeps every future Accept returning Cancelled.
    const char b = 1;
    while (::write(wake_wr_, &b, 1) < 0 && errno == EINTR) {
    }
  }

  const std::string& address() const override { return address_; }

 private:
  const int listen_fd_;
  const int wake_rd_;  // Self-pipe: readable means "shut down".
  const int wake_wr_;
  const std::string address_;
};

}  // namespace

Status SocketTransport::Listen(const std::string& address,
                               std::unique_ptr<Listener>* listener) {
  sockaddr_un addr;
  Status st = FillSockaddr(address, &addr);
  if (!st.ok()) {
    return st;
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return ErrnoStatus("socket", errno);
  }
  // A stale socket file from a crashed server would make bind fail with
  // EADDRINUSE even though nothing is listening.
  ::unlink(address.c_str());
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const int err = errno;
    ::close(fd);
    return ErrnoStatus("bind " + address, err);
  }
  if (::listen(fd, 64) < 0) {
    const int err = errno;
    ::close(fd);
    ::unlink(address.c_str());
    return ErrnoStatus("listen " + address, err);
  }
  int wake[2];
  if (::pipe2(wake, O_CLOEXEC) < 0) {
    const int err = errno;
    ::close(fd);
    ::unlink(address.c_str());
    return ErrnoStatus("pipe2", err);
  }
  *listener = std::make_unique<SocketListener>(fd, wake[0], wake[1], address);
  return Status::OK();
}

Status SocketTransport::Connect(const std::string& address,
                                std::unique_ptr<Connection>* conn) {
  sockaddr_un addr;
  Status st = FillSockaddr(address, &addr);
  if (!st.ok()) {
    return st;
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return ErrnoStatus("socket", errno);
  }
  while (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr)) < 0) {
    if (errno == EINTR) {
      continue;
    }
    const int err = errno;
    ::close(fd);
    return ErrnoStatus("connect " + address, err);
  }
  *conn = std::make_unique<SocketConnection>(fd);
  return Status::OK();
}

}  // namespace ngram::net
