// Byte-stream transport abstraction for the fetch shuffle (docs §10).
//
// The shuffle's remote half moves committed run-file segment extents from
// the process that ran a map task to the process reducing a partition.
// Everything above this layer — the MapOutputServer, the ShuffleFetcher,
// the wire protocol — speaks only in terms of these three interfaces:
//
//   Transport  — names a byte-stream fabric: Listen() binds an address,
//                Connect() dials one.
//   Listener   — accepts inbound connections until Shutdown().
//   Connection — an ordered, reliable, bidirectional byte stream with
//                Status-returning Read/Write, mirroring ReadableFile /
//                WritableFile (io_env.h) so fault decoration composes the
//                same way FaultEnv composes over IoEnv.
//
// Two implementations ship: InProcTransport (inproc_transport.h) — a
// deterministic, socket-free fabric for tests and same-process loopback —
// and SocketTransport (socket_transport.h) over Unix-domain sockets for
// the two-process mode. FaultTransport (fault_transport.h) decorates
// either with seeded single-shot drop/truncate/bit-flip faults.
//
// Threading: one Connection is used by one requester thread at a time
// (the fetch protocol is strictly request/response), but *different*
// connections of one transport are used concurrently, and Abort() may be
// called from any thread to unblock a pending Read/Write during shutdown.
#pragma once

#include <cstddef>
#include <memory>
#include <string>

#include "util/status.h"

namespace ngram::net {

/// \brief One ordered, reliable byte stream between two endpoints.
class Connection {
 public:
  virtual ~Connection() = default;

  /// Writes exactly `n` bytes, or fails with IOError. A short write is an
  /// error, never a partial success (mirrors WritableFile::Write).
  virtual Status Write(const char* data, size_t n) = 0;

  /// Reads up to `n` bytes into `dst`. On success `*read` holds the byte
  /// count actually read — 0 means the peer closed its write side
  /// (orderly end of stream). Blocks until at least one byte, EOF, or
  /// failure.
  virtual Status Read(char* dst, size_t n, size_t* read) = 0;

  /// Forcibly tears the stream down from any thread: pending and future
  /// Reads/Writes on *either* endpoint fail with IOError. Used by server
  /// shutdown to unblock connection threads parked in Read. Idempotent.
  virtual void Abort() = 0;
};

/// \brief Accepts inbound connections on one bound address.
class Listener {
 public:
  virtual ~Listener() = default;

  /// Blocks until an inbound connection arrives (returns OK), the
  /// listener is Shutdown() (returns Cancelled), or the fabric fails.
  virtual Status Accept(std::unique_ptr<Connection>* conn) = 0;

  /// Unblocks current and future Accept() calls with Cancelled; already
  /// accepted connections are unaffected. Callable from any thread,
  /// idempotent.
  virtual void Shutdown() = 0;

  /// The address this listener is bound to (Connect()-able).
  virtual const std::string& address() const = 0;
};

/// \brief A byte-stream fabric: how shuffle endpoints find each other.
///
/// Listen and Connect are thread-safe; a transport outlives every
/// listener and connection it produced.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Binds `address` and returns a listener. AlreadyExists if the address
  /// is taken, InvalidArgument if the fabric cannot express it.
  virtual Status Listen(const std::string& address,
                        std::unique_ptr<Listener>* listener) = 0;

  /// Dials `address`. NotFound when nothing is listening there.
  virtual Status Connect(const std::string& address,
                         std::unique_ptr<Connection>* conn) = 0;
};

/// Reads exactly `n` bytes. An orderly EOF after at least one byte (or
/// mid-stream, when `eof_ok` is false) is Corruption — a frame was cut
/// short. With `eof_ok` true and EOF before the first byte, returns OK
/// and sets `*clean_eof` (the server's between-requests read).
Status ReadFull(Connection* conn, char* dst, size_t n, bool eof_ok = false,
                bool* clean_eof = nullptr);

}  // namespace ngram::net
