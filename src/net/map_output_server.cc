#include "net/map_output_server.h"

#include <utility>

namespace ngram::net {

MapOutputServer::MapOutputServer(Options options)
    : options_(std::move(options)), env_(mr::ResolveEnv(options_.env)) {}

MapOutputServer::~MapOutputServer() { Stop(); }

Status MapOutputServer::Start() {
  {
    MutexLock lock(&mu_);
    if (started_) {
      return Status::InvalidArgument("MapOutputServer already started");
    }
    started_ = true;
  }
  Status st = options_.transport->Listen(options_.address, &listener_);
  if (!st.ok()) {
    return st.WithContext("starting shuffle server on " + options_.address);
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void MapOutputServer::Stop() {
  {
    MutexLock lock(&mu_);
    if (!started_ || stopping_) {
      return;  // Never started, or a previous Stop already ran.
    }
    stopping_ = true;
  }
  if (listener_ != nullptr) {
    listener_->Shutdown();
  }
  // Unblock connection threads parked in Read between requests.
  {
    MutexLock lock(&mu_);
    for (const auto& slot : conns_) {
      slot->conn->Abort();
    }
  }
  if (accept_thread_.joinable()) {
    accept_thread_.join();
  }
  // After the accept loop exits nothing appends to conns_.
  std::vector<std::unique_ptr<ConnSlot>> slots;
  {
    MutexLock lock(&mu_);
    slots.swap(conns_);
  }
  for (auto& slot : slots) {
    if (slot->thread.joinable()) {
      slot->thread.join();
    }
  }
  listener_.reset();  // SocketListener unlinks its socket file here.
}

uint64_t MapOutputServer::connections_accepted() const {
  MutexLock lock(&mu_);
  return connections_accepted_;
}

uint64_t MapOutputServer::segments_served() const {
  MutexLock lock(&mu_);
  return segments_served_;
}

void MapOutputServer::AcceptLoop() {
  while (true) {
    std::unique_ptr<Connection> conn;
    Status st = listener_->Accept(&conn);
    if (!st.ok()) {
      return;  // Cancelled (shutdown) or a dead fabric: stop accepting.
    }
    auto slot = std::make_unique<ConnSlot>();
    slot->conn = std::move(conn);
    Connection* raw = slot->conn.get();
    MutexLock lock(&mu_);
    if (stopping_) {
      return;  // Drop the just-accepted connection on the floor.
    }
    ++connections_accepted_;
    slot->thread = std::thread([this, raw] { ServeConnection(raw); });
    conns_.push_back(std::move(slot));
  }
}

void MapOutputServer::ServeConnection(Connection* conn) {
  while (true) {
    MessageType type;
    std::string payload;
    bool clean_eof = false;
    Status st = ReadFrame(conn, &type, &payload, /*eof_ok=*/true,
                          &clean_eof);
    if (!st.ok() || clean_eof) {
      // Peer done, aborted, or sent garbage: drop the stream. Abort
      // rather than just stop reading — a fetcher mid-ReadFrame on this
      // stream must get a failure, not block forever on a reply this
      // handler will never write. (No-op after a clean EOF: the peer
      // already closed.)
      conn->Abort();
      return;
    }
    st = HandleRequest(type, payload, conn);
    if (!st.ok()) {
      // Reply could not be delivered; fail the stream so the fetcher's
      // pending read returns and its retry reconnects.
      conn->Abort();
      return;
    }
  }
}

Status MapOutputServer::HandleRequest(MessageType type,
                                      const std::string& payload,
                                      Connection* conn) {
  Status st;
  std::string reply;
  MessageType reply_type = MessageType::kError;
  switch (type) {
    case MessageType::kPublishRequest: {
      PublishRequest req;
      if (!DecodePublishRequest(Slice(payload), &req)) {
        st = Status::Corruption("undecodable publish request");
        break;
      }
      st = HandlePublish(req);
      if (st.ok()) {
        reply_type = MessageType::kPublishOk;
      }
      break;
    }
    case MessageType::kFetchRequest: {
      FetchRequest req;
      if (!DecodeFetchRequest(Slice(payload), &req)) {
        st = Status::Corruption("undecodable fetch request");
        break;
      }
      st = LoadSegment(req, &reply);
      if (st.ok()) {
        reply_type = MessageType::kFetchData;
        MutexLock lock(&mu_);
        ++segments_served_;
      }
      break;
    }
    default:
      st = Status::InvalidArgument("unexpected frame type on server");
      break;
  }
  if (!st.ok()) {
    reply.clear();
    EncodeError(st, &reply);
    return WriteFrame(conn, MessageType::kError, Slice(reply));
  }
  return WriteFrame(conn, reply_type, Slice(reply));
}

Status MapOutputServer::HandlePublish(const PublishRequest& req) {
  MutexLock lock(&mu_);
  TaskEntry& entry = tasks_[req.task];
  if (!entry.runs.empty() || entry.generation > 0) {
    if (req.generation < entry.generation) {
      return Status::OutOfRange(
          "stale publish for task " + std::to_string(req.task) +
          ": generation " + std::to_string(req.generation) + " < " +
          std::to_string(entry.generation));
    }
  }
  entry.generation = req.generation;
  entry.runs = req.runs;
  return Status::OK();
}

Status MapOutputServer::LoadSegment(const FetchRequest& req,
                                    std::string* payload) {
  std::string path;
  WireSegment seg;
  {
    MutexLock lock(&mu_);
    auto it = tasks_.find(req.task);
    if (it == tasks_.end()) {
      return Status::NotFound("no published manifest for task " +
                              std::to_string(req.task));
    }
    if (it->second.generation != req.generation) {
      return Status::OutOfRange(
          "generation mismatch for task " + std::to_string(req.task) +
          ": have " + std::to_string(it->second.generation) +
          ", fetch names " + std::to_string(req.generation));
    }
    if (req.run_index >= it->second.runs.size()) {
      return Status::NotFound("task " + std::to_string(req.task) +
                              " has no run " +
                              std::to_string(req.run_index));
    }
    const WireRun& run = it->second.runs[req.run_index];
    if (req.partition >= run.segments.size()) {
      return Status::NotFound("run " + run.path + " has no partition " +
                              std::to_string(req.partition));
    }
    path = run.path;
    seg = run.segments[req.partition];
  }
  payload->clear();
  if (seg.length == 0) {
    return Status::OK();
  }
  if (seg.length > kMaxFramePayload) {
    return Status::InvalidArgument("segment larger than max frame: " +
                                   std::to_string(seg.length));
  }
  std::unique_ptr<mr::ReadableFile> file;
  const size_t hint =
      seg.length < options_.read_buffer_bytes
          ? static_cast<size_t>(seg.length)
          : options_.read_buffer_bytes;
  Status st = env_->NewReadableFile(path, hint, &file);
  if (!st.ok()) {
    return st.WithContext("opening published run " + path);
  }
  st = file->Seek(seg.offset);
  if (!st.ok()) {
    return st.WithContext("seeking published run " + path);
  }
  payload->resize(seg.length);
  size_t got = 0;
  while (got < seg.length) {
    size_t chunk = 0;
    st = file->Read(&(*payload)[got], seg.length - got, &chunk);
    if (!st.ok()) {
      return st.WithContext("reading published run " + path);
    }
    if (chunk == 0) {
      return Status::Corruption(
          "published run truncated: " + path + " (segment at offset " +
          std::to_string(seg.offset) + " wants " +
          std::to_string(seg.length) + " bytes, file ended after " +
          std::to_string(got) + ")");
    }
    got += chunk;
  }
  return Status::OK();
}

}  // namespace ngram::net
