// In-process Transport: a deterministic byte-stream fabric with no
// sockets, no file descriptors, and no kernel buffering policy — each
// connection is a pair of mutex/condvar-guarded byte queues. This is the
// loopback fabric the fetch shuffle uses inside one process (every
// shuffled byte still crosses a Connection, so the fetch path under test
// is exactly the two-process path minus the kernel), and the substrate
// FaultTransport decorates in the chaos sweep.
//
// Addresses are arbitrary strings scoped to one InProcTransport instance:
// two transports never see each other's listeners, so concurrent jobs in
// one process cannot collide.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "net/transport.h"
#include "util/macros.h"
#include "util/mutex.h"

namespace ngram::net {

namespace internal {
struct InProcListenerState;
}  // namespace internal

class InProcTransport final : public Transport {
 public:
  InProcTransport() = default;
  ~InProcTransport() override;
  NGRAM_DISALLOW_COPY_AND_ASSIGN(InProcTransport);

  Status Listen(const std::string& address,
                std::unique_ptr<Listener>* listener) override
      NGRAM_EXCLUDES(mu_);
  Status Connect(const std::string& address,
                 std::unique_ptr<Connection>* conn) override
      NGRAM_EXCLUDES(mu_);

 private:
  mutable Mutex mu_;
  /// Live listeners by address. Entries whose listener has shut down are
  /// dead (Connect refuses them) and are reclaimed by the next Listen.
  std::map<std::string, std::shared_ptr<internal::InProcListenerState>>
      listeners_ NGRAM_GUARDED_BY(mu_);
};

}  // namespace ngram::net
