// Transport decorator executing one seeded fault against the byte
// stream — the network sibling of FaultEnv (io_env.h). A plan names a
// single fault (connection drop, silent truncation, or a one-bit flip in
// received bytes) and the 1-based Read call at which it fires, counted
// across every connection the decorated transport ever produced — so a
// seed sweep walks the fault through publish frames, fetch frames, and
// payload bytes alike. Exactly one fault fires per plan; an op index past
// the run's Read count never fires (the degenerate dichotomy arm).
//
// Faults are injected on the *fetcher's* side of the stream (the
// connections this transport dials or accepts), which models every
// interesting network failure for a CRC-framed pull protocol: a dropped
// connection (retryable), a stream that ends early (truncated frame), and
// bytes damaged in flight (frame CRC mismatch).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "net/transport.h"
#include "util/macros.h"

namespace ngram::net {

/// \brief One deterministic injected transport fault.
struct TransportFaultPlan {
  enum class Kind : uint8_t {
    kNone = 0,
    kDrop,      // The Nth read call fails with IOError (peer vanished).
    kTruncate,  // The Nth read call returns EOF: the stream ends early.
    kBitFlip,   // One bit of the Nth read's bytes flips *silently*.
  };

  Kind kind = Kind::kNone;
  /// 1-based index of the faulted Read call, counted across connections.
  uint64_t op = 0;
  /// kBitFlip: bit position, taken modulo the read's bit width on fire.
  uint64_t bit = 0;

  /// Derives a plan deterministically from `seed` (SplitMix64, same
  /// expansion FaultPlan::FromSeed uses), so a chaos sweep reproduces
  /// run-to-run from seed lists alone.
  static TransportFaultPlan FromSeed(uint64_t seed);

  /// Human-readable form for chaos-test failure messages.
  std::string ToString() const;

  static const char* KindName(Kind kind);
};

/// \brief Transport decorator executing one TransportFaultPlan.
///
/// Thread-safe: the read counter is atomic and the fault fires exactly
/// once even when connections race past the trigger index.
class FaultTransport final : public Transport {
 public:
  /// `base` must outlive this transport.
  FaultTransport(Transport* base, TransportFaultPlan plan)
      : base_(base), plan_(plan) {}
  NGRAM_DISALLOW_COPY_AND_ASSIGN(FaultTransport);

  Status Listen(const std::string& address,
                std::unique_ptr<Listener>* listener) override;
  Status Connect(const std::string& address,
                 std::unique_ptr<Connection>* conn) override;

  const TransportFaultPlan& plan() const { return plan_; }
  /// True once the planned fault has executed. Tests assert this to prove
  /// a scenario really exercised the injection point.
  bool fault_fired() const { return fired_.load(std::memory_order_acquire); }
  /// Read calls seen so far, for calibrating op-index ranges in sweeps.
  uint64_t reads_seen() const { return reads_.load(); }

 private:
  friend class FaultConnection;

  /// Returns true exactly once: when `count` hits the plan's trigger.
  bool ShouldFire(uint64_t count);

  Transport* const base_;
  const TransportFaultPlan plan_;
  std::atomic<uint64_t> reads_{0};
  std::atomic<bool> fired_{false};
};

}  // namespace ngram::net
