// MapOutputServer: serves committed run-file segment extents over a
// Transport (docs/architecture.md section 10).
//
// The server is a metadata store fed over the wire: a fetcher first
// *publishes* a map task's run manifest (paths, formats, per-partition
// extents, keyed by task + generation), then fetches any (run, partition)
// extent back as raw bytes. Keeping the manifest wire-fed makes the
// loopback arrangement (job publishes to its own server) and the
// two-process arrangement (`ngram_tool serve-shuffle`) the same protocol;
// the only requirement is that the server process can open the published
// paths — run files are shared through the filesystem, bytes move over
// the transport.
//
// All file reads go through the server's IoEnv, so a FaultEnv composes:
// read faults injected under the server surface to the fetcher as kError
// frames, and write-time corruption of the underlying run travels to the
// fetched clone byte-for-byte (per-block run CRCs catch it at reduce
// time, which is exactly the producer re-execution path).
//
// Generations: a publish for a task replaces its manifest iff the new
// generation is >= the stored one; a fetch naming a non-current
// generation is answered with OutOfRange — a stale fetcher must re-plan,
// never silently read a retired generation's extents.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "mapreduce/io_env.h"
#include "net/transport.h"
#include "net/wire.h"
#include "util/macros.h"
#include "util/mutex.h"

namespace ngram::net {

class MapOutputServer {
 public:
  struct Options {
    /// Fabric to listen on. Not owned; must outlive the server.
    Transport* transport = nullptr;
    /// Address to bind (transport-specific: inproc name or socket path).
    std::string address;
    /// Environment run files are read through; nullptr = IoEnv::Default().
    mr::IoEnv* env = nullptr;
    /// Read-buffer hint for segment reads.
    size_t read_buffer_bytes = 256 * 1024;
  };

  explicit MapOutputServer(Options options);
  ~MapOutputServer();
  NGRAM_DISALLOW_COPY_AND_ASSIGN(MapOutputServer);

  /// Binds the address and starts the accept loop. Call once.
  Status Start() NGRAM_EXCLUDES(mu_);

  /// Stops accepting, aborts live connections, joins every thread, and
  /// unbinds. Idempotent; the destructor calls it.
  void Stop() NGRAM_EXCLUDES(mu_);

  /// The bound address (valid after Start()).
  const std::string& address() const { return options_.address; }

  /// Connections accepted so far (tests, serve-shuffle logging).
  uint64_t connections_accepted() const NGRAM_EXCLUDES(mu_);
  /// Fetch requests answered with data so far.
  uint64_t segments_served() const NGRAM_EXCLUDES(mu_);

 private:
  struct TaskEntry {
    uint32_t generation = 0;
    std::vector<WireRun> runs;
  };
  /// One accepted connection and the thread serving it. Slots accumulate
  /// until Stop() joins them — bounded by connections over the server's
  /// lifetime, which the per-Mirror connection discipline keeps small.
  struct ConnSlot {
    std::unique_ptr<Connection> conn;
    std::thread thread;
  };

  void AcceptLoop();
  void ServeConnection(Connection* conn);
  /// Handles one decoded request frame; a returned error was already
  /// answered (or the connection is dead and the caller drops it).
  Status HandleRequest(MessageType type, const std::string& payload,
                       Connection* conn) NGRAM_EXCLUDES(mu_);
  Status HandlePublish(const PublishRequest& req) NGRAM_EXCLUDES(mu_);
  /// Reads the requested extent into `payload` (the kFetchData bytes).
  Status LoadSegment(const FetchRequest& req, std::string* payload)
      NGRAM_EXCLUDES(mu_);

  const Options options_;
  mr::IoEnv* const env_;
  std::unique_ptr<Listener> listener_;
  /// Started by Start(), joined by Stop(); no other thread touches it.
  std::thread accept_thread_;

  mutable Mutex mu_;
  bool started_ NGRAM_GUARDED_BY(mu_) = false;
  bool stopping_ NGRAM_GUARDED_BY(mu_) = false;
  std::unordered_map<uint32_t, TaskEntry> tasks_ NGRAM_GUARDED_BY(mu_);
  std::vector<std::unique_ptr<ConnSlot>> conns_ NGRAM_GUARDED_BY(mu_);
  uint64_t connections_accepted_ NGRAM_GUARDED_BY(mu_) = 0;
  uint64_t segments_served_ NGRAM_GUARDED_BY(mu_) = 0;
};

}  // namespace ngram::net
