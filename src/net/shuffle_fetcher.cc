#include "net/shuffle_fetcher.h"

#include <utility>

#include "util/stopwatch.h"

namespace ngram::net {

ShuffleFetcher::ShuffleFetcher(Options options)
    : options_(std::move(options)), env_(mr::ResolveEnv(options_.env)) {}

Status ShuffleFetcher::DoRequest(std::unique_ptr<Connection>* conn,
                                 MessageType req_type,
                                 const std::string& request,
                                 MessageType want, std::string* response,
                                 mr::TaskCounters* counters) {
  Status st;
  for (uint32_t attempt = 0; attempt <= options_.request_retries;
       ++attempt) {
    if (attempt > 0) {
      // Whatever went wrong, assume the stream is poisoned: reconnect.
      conn->reset();
      counters->Increment(mr::kFetchRetries);
    }
    if (*conn == nullptr) {
      st = options_.transport->Connect(options_.server_address, conn);
      if (!st.ok()) {
        conn->reset();
        continue;
      }
    }
    st = WriteFrame(conn->get(), req_type, Slice(request));
    MessageType got = MessageType::kError;
    if (st.ok()) {
      st = ReadFrame(conn->get(), &got, response);
    }
    if (st.ok()) {
      if (got == MessageType::kError) {
        st = DecodeError(Slice(*response));
      } else if (got != want) {
        st = Status::Corruption("unexpected reply frame type " +
                                std::to_string(static_cast<int>(got)));
      }
    }
    if (st.ok()) {
      return st;
    }
  }
  return st.WithContext("shuffle fetch request to " +
                        options_.server_address + " failed after " +
                        std::to_string(1 + options_.request_retries) +
                        " attempt(s)");
}

Status ShuffleFetcher::Mirror(uint32_t task, uint32_t generation,
                              uint64_t attempt_id,
                              const std::vector<mr::SpillRun>& runs,
                              std::vector<mr::SpillRun>* fetched,
                              mr::TaskCounters* counters) {
  fetched->clear();
  if (runs.empty()) {
    return Status::OK();  // Nothing to publish, nothing to fetch.
  }
  Stopwatch clock;
  Status st = [&]() -> Status {
    PublishRequest publish;
    publish.task = task;
    publish.generation = generation;
    publish.runs.reserve(runs.size());
    for (const mr::SpillRun& run : runs) {
      if (run.in_memory()) {
        // The driver forces file-backed final flushes in fetch mode
        // (SortBuffer::Options::persist_final_flush); an in-memory run
        // here is a driver bug, not a data condition.
        return Status::Internal(
            "fetch shuffle saw an in-memory run for task " +
            std::to_string(task));
      }
      WireRun wire;
      wire.path = run.file_path;
      wire.block_format = run.block_format;
      wire.has_crc = run.has_crc;
      wire.crc32 = run.crc32;
      wire.segments.reserve(run.segments.size());
      for (const mr::RunSegment& seg : run.segments) {
        wire.segments.push_back(
            WireSegment{seg.offset, seg.length, seg.num_records});
      }
      publish.runs.push_back(std::move(wire));
    }
    std::string request;
    EncodePublishRequest(publish, &request);
    std::unique_ptr<Connection> conn;
    std::string response;
    Status rst = DoRequest(&conn, MessageType::kPublishRequest, request,
                           MessageType::kPublishOk, &response, counters);
    if (!rst.ok()) {
      return rst.WithContext("publishing map task " + std::to_string(task));
    }

    for (size_t i = 0; i < runs.size(); ++i) {
      const mr::SpillRun& src = runs[i];
      mr::SpillRun clone;
      clone.file_path = options_.work_dir + "/fetch-" +
                        std::to_string(task) + "-a" +
                        std::to_string(attempt_id) + "-" +
                        std::to_string(i) + ".run";
      mr::SpillWriter::Options wopts;
      wopts.buffer_bytes = options_.buffer_bytes;
      wopts.env = options_.env;
      mr::SpillWriter writer(clone.file_path, wopts);
      rst = writer.Open();
      if (!rst.ok()) {
        return rst.WithContext("staging fetched run " + clone.file_path);
      }
      for (size_t p = 0; p < src.segments.size(); ++p) {
        const mr::RunSegment& seg = src.segments[p];
        if (seg.length == 0) {
          continue;
        }
        if (seg.offset != writer.bytes_written()) {
          // Segments of a run file are back-to-back from offset 0; a
          // hole would make the clone's extents lie about its bytes.
          writer.Abandon();
          return Status::Internal(
              "non-contiguous segment in " + src.file_path +
              ": partition " + std::to_string(p) + " at offset " +
              std::to_string(seg.offset) + ", clone cursor at " +
              std::to_string(writer.bytes_written()));
        }
        FetchRequest fetch;
        fetch.task = task;
        fetch.generation = generation;
        fetch.run_index = static_cast<uint32_t>(i);
        fetch.partition = static_cast<uint32_t>(p);
        request.clear();
        EncodeFetchRequest(fetch, &request);
        rst = DoRequest(&conn, MessageType::kFetchRequest, request,
                        MessageType::kFetchData, &response, counters);
        if (!rst.ok()) {
          writer.Abandon();
          return rst.WithContext("fetching partition " + std::to_string(p) +
                                 " of " + src.file_path);
        }
        if (response.size() != seg.length) {
          writer.Abandon();
          return Status::Corruption(
              "fetched segment size mismatch for " + src.file_path +
              " partition " + std::to_string(p) + ": want " +
              std::to_string(seg.length) + " bytes, got " +
              std::to_string(response.size()));
        }
        rst = writer.AppendRawBytes(response.data(), response.size());
        if (!rst.ok()) {
          return rst.WithContext("writing fetched run " + clone.file_path);
        }
        counters->Increment(mr::kShuffleFetchBytes, response.size());
      }
      rst = writer.Close();
      if (!rst.ok()) {
        return rst.WithContext("committing fetched run " + clone.file_path);
      }
      clone.segments = src.segments;
      clone.crc32 = src.crc32;
      clone.has_crc = src.has_crc;
      clone.block_format = src.block_format;
      fetched->push_back(std::move(clone));
    }
    return Status::OK();
  }();
  counters->Increment(mr::kFetchWaitMs,
                      static_cast<uint64_t>(clock.ElapsedMillis()));
  if (!st.ok()) {
    // Leave nothing behind: clones already committed by this call go too.
    mr::RemoveRunFiles(*fetched, options_.env);
    fetched->clear();
  }
  return st;
}

}  // namespace ngram::net
