#include "net/fault_transport.h"

#include <utility>

namespace ngram::net {
namespace {

// SplitMix64, the same seed expansion FaultPlan::FromSeed uses, so one
// seed list drives both env and transport sweeps reproducibly.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

/// The faulting Connection: every Read ticks the shared transport-wide
/// counter; Writes and Abort pass through untouched.
class FaultConnection final : public Connection {
 public:
  FaultConnection(std::unique_ptr<Connection> base,
                  FaultTransport* transport)
      : base_(std::move(base)), transport_(transport) {}

  Status Write(const char* data, size_t n) override {
    return base_->Write(data, n);
  }

  Status Read(char* dst, size_t n, size_t* read) override;

  void Abort() override { base_->Abort(); }

 private:
  std::unique_ptr<Connection> base_;
  FaultTransport* const transport_;
};

namespace {

/// Wraps accepted connections so server->fetcher bytes fault too.
class FaultListenerImpl final : public Listener {
 public:
  FaultListenerImpl(std::unique_ptr<Listener> base, FaultTransport* transport)
      : base_(std::move(base)), transport_(transport) {}

  Status Accept(std::unique_ptr<Connection>* conn) override {
    std::unique_ptr<Connection> inner;
    Status st = base_->Accept(&inner);
    if (!st.ok()) {
      return st;
    }
    *conn = std::make_unique<FaultConnection>(std::move(inner), transport_);
    return Status::OK();
  }

  void Shutdown() override { base_->Shutdown(); }
  const std::string& address() const override { return base_->address(); }

 private:
  std::unique_ptr<Listener> base_;
  FaultTransport* const transport_;
};

}  // namespace

Status FaultConnection::Read(char* dst, size_t n, size_t* read) {
  const uint64_t count = transport_->reads_.fetch_add(1) + 1;
  const TransportFaultPlan& plan = transport_->plan();
  if (plan.kind != TransportFaultPlan::Kind::kNone &&
      transport_->ShouldFire(count)) {
    switch (plan.kind) {
      case TransportFaultPlan::Kind::kDrop:
        return Status::IOError("injected fault: connection dropped");
      case TransportFaultPlan::Kind::kTruncate:
        // Premature orderly EOF: the stream just ends. A mid-frame
        // truncation surfaces as Corruption in ReadFull; between frames
        // it looks like the peer hung up.
        *read = 0;
        return Status::OK();
      case TransportFaultPlan::Kind::kBitFlip: {
        Status st = base_->Read(dst, n, read);
        if (st.ok() && *read > 0) {
          const uint64_t bit = plan.bit % (*read * 8);
          dst[bit / 8] = static_cast<char>(
              static_cast<unsigned char>(dst[bit / 8]) ^
              (1u << (bit % 8)));
        }
        return st;
      }
      case TransportFaultPlan::Kind::kNone:
        break;
    }
  }
  return base_->Read(dst, n, read);
}

TransportFaultPlan TransportFaultPlan::FromSeed(uint64_t seed) {
  TransportFaultPlan plan;
  const uint64_t r0 = Mix64(seed);
  const uint64_t r1 = Mix64(seed ^ 0xa5a5a5a5a5a5a5a5ULL);
  const uint64_t r2 = Mix64(seed ^ 0x0123456789abcdefULL);
  switch (r0 % 3) {
    case 0:
      plan.kind = Kind::kDrop;
      break;
    case 1:
      plan.kind = Kind::kTruncate;
      break;
    default:
      plan.kind = Kind::kBitFlip;
      break;
  }
  // The fetch protocol issues a handful of Reads per request (frame
  // header + payload chunks) and tens of requests per spill-heavy job;
  // 1..64 lands faults in publish frames, fetch headers, and payload
  // bytes alike, with the tail of the range sometimes never firing (the
  // degenerate dichotomy arm, same calibration style as FaultPlan).
  plan.op = 1 + r1 % 64;
  plan.bit = r2;
  return plan;
}

std::string TransportFaultPlan::ToString() const {
  return std::string("TransportFaultPlan{") + KindName(kind) +
         ", op=" + std::to_string(op) + ", bit=" + std::to_string(bit) + "}";
}

const char* TransportFaultPlan::KindName(Kind kind) {
  switch (kind) {
    case Kind::kNone:
      return "none";
    case Kind::kDrop:
      return "drop";
    case Kind::kTruncate:
      return "truncate";
    case Kind::kBitFlip:
      return "bit-flip";
  }
  return "unknown";
}

bool FaultTransport::ShouldFire(uint64_t count) {
  if (count != plan_.op) {
    return false;
  }
  bool expected = false;
  return fired_.compare_exchange_strong(expected, true,
                                        std::memory_order_acq_rel);
}

Status FaultTransport::Listen(const std::string& address,
                              std::unique_ptr<Listener>* listener) {
  std::unique_ptr<Listener> inner;
  Status st = base_->Listen(address, &inner);
  if (!st.ok()) {
    return st;
  }
  *listener = std::make_unique<FaultListenerImpl>(std::move(inner), this);
  return Status::OK();
}

Status FaultTransport::Connect(const std::string& address,
                               std::unique_ptr<Connection>* conn) {
  std::unique_ptr<Connection> inner;
  Status st = base_->Connect(address, &inner);
  if (!st.ok()) {
    return st;
  }
  *conn = std::make_unique<FaultConnection>(std::move(inner), this);
  return Status::OK();
}

}  // namespace ngram::net
