// ShuffleFetcher: pulls a published map task's output back over the
// transport and reassembles byte-identical local clone run files
// (docs/architecture.md section 10).
//
// Mirror() publishes the task's run manifest to the MapOutputServer,
// then fetches every partition extent of every run and concatenates the
// extents — in partition order, which *is* the source file's byte
// order — into one local clone file per source run through the
// SpillWriter commit protocol (tmp + sync + rename). Block run files
// carry no file-level trailer and spill segments cover the whole file
// back-to-back, so the clone is byte-identical to its source and the
// original segment extents describe it verbatim: merge planning, eager
// substitution, and the source-order tie-break behave exactly as they
// would over the original file. That is the determinism-under-placement
// argument in one sentence.
//
// Failure handling: each request retries over a fresh connection up to
// `request_retries` extra times (FETCH_RETRIES counts them) — that
// absorbs transient transport faults (dropped connections, truncated
// frames). What retries cannot absorb (persistent faults, a corrupt
// frame every time) fails Mirror(), which unlinks every clone it had
// committed; the caller (the map-attempt loop in job.h) treats that as a
// failed map attempt, so persistent fetch failure consumes map attempts,
// never reduce attempts. Corruption that travels *silently* (the origin
// run was damaged on disk before serving — transit CRCs all pass)
// surfaces later at reduce time from the clone's own block CRCs, naming
// the clone path, and the driver's find_producer -> recover_producer
// machinery re-runs the producing map task. Either way the protocol of
// PR 6 holds: fetch failures map onto producer re-execution.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "mapreduce/counters.h"
#include "mapreduce/io_env.h"
#include "mapreduce/sort_buffer.h"
#include "mapreduce/spill_writer.h"
#include "net/transport.h"
#include "net/wire.h"
#include "util/macros.h"

namespace ngram::net {

class ShuffleFetcher {
 public:
  struct Options {
    /// Fabric to dial. Not owned; must outlive the fetcher.
    Transport* transport = nullptr;
    /// The MapOutputServer's address.
    std::string server_address;
    /// Directory clone run files are written into.
    std::string work_dir;
    /// Spill-writer buffer for clone files.
    size_t buffer_bytes = mr::SpillWriter::kDefaultBufferBytes;
    /// Extra attempts per failed request (fresh connection each).
    uint32_t request_retries = 2;
    /// Environment clone files are written through.
    mr::IoEnv* env = nullptr;
  };

  explicit ShuffleFetcher(Options options);
  NGRAM_DISALLOW_COPY_AND_ASSIGN(ShuffleFetcher);

  /// Publishes `runs` (the committed, file-backed output of one map-task
  /// execution) under (task, generation), fetches everything back, and
  /// fills `fetched` with one clone SpillRun per source run — same
  /// segment extents, same format flags, local file paths named by
  /// `attempt_id`. On failure every committed clone is unlinked and
  /// `fetched` is empty. Thread-safe across tasks (each call owns its
  /// connections).
  Status Mirror(uint32_t task, uint32_t generation, uint64_t attempt_id,
                const std::vector<mr::SpillRun>& runs,
                std::vector<mr::SpillRun>* fetched,
                mr::TaskCounters* counters);

 private:
  /// One request/response exchange with per-request reconnect retries.
  /// `*conn` carries the live connection across calls.
  Status DoRequest(std::unique_ptr<Connection>* conn, MessageType req_type,
                   const std::string& request, MessageType want,
                   std::string* response, mr::TaskCounters* counters);

  const Options options_;
  mr::IoEnv* const env_;
};

}  // namespace ngram::net
