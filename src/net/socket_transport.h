// Unix-domain-socket Transport: the two-process shuffle fabric.
//
// Addresses are filesystem paths (AF_UNIX, SOCK_STREAM). Listen unlinks a
// stale socket file before binding (the previous server crashed), Accept
// is unblocked by a self-pipe so Shutdown never races a blocking
// accept(2), and Read/Write retry EINTR. This is the only translation
// unit in the tree allowed to make raw socket syscalls — the `socket`
// ngram_lint rule confines them here (tools/lint/lint_allowlist.txt).
#pragma once

#include <memory>
#include <string>

#include "net/transport.h"
#include "util/macros.h"

namespace ngram::net {

class SocketTransport final : public Transport {
 public:
  SocketTransport() = default;
  NGRAM_DISALLOW_COPY_AND_ASSIGN(SocketTransport);

  /// Binds the socket file at `address` (unlinking a stale one). The
  /// listener unlinks it again on destruction.
  Status Listen(const std::string& address,
                std::unique_ptr<Listener>* listener) override;

  /// Dials the socket file at `address`. NotFound when nothing listens
  /// there (ENOENT/ECONNREFUSED).
  Status Connect(const std::string& address,
                 std::unique_ptr<Connection>* conn) override;
};

}  // namespace ngram::net
