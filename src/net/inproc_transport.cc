#include "net/inproc_transport.h"

#include <algorithm>
#include <deque>
#include <utility>

namespace ngram::net {
namespace internal {

/// One direction of an in-process connection: an unbounded byte queue.
/// The writer appends and signals; the reader drains or blocks. Closing
/// the write side turns an empty queue into EOF; aborting either endpoint
/// poisons both directions.
struct InProcPipe {
  Mutex mu;
  CondVar cv{&mu};
  std::string buffer NGRAM_GUARDED_BY(mu);
  size_t consumed NGRAM_GUARDED_BY(mu) = 0;
  bool write_closed NGRAM_GUARDED_BY(mu) = false;
  bool read_closed NGRAM_GUARDED_BY(mu) = false;
  bool aborted NGRAM_GUARDED_BY(mu) = false;

  Status Write(const char* data, size_t n) NGRAM_EXCLUDES(mu) {
    MutexLock lock(&mu);
    if (aborted) {
      return Status::IOError("inproc connection aborted");
    }
    if (read_closed) {
      return Status::IOError("inproc connection closed by peer");
    }
    buffer.append(data, n);
    cv.SignalAll();
    return Status::OK();
  }

  Status Read(char* dst, size_t n, size_t* read) NGRAM_EXCLUDES(mu) {
    MutexLock lock(&mu);
    while (buffer.size() == consumed && !write_closed && !aborted) {
      cv.Wait();
    }
    if (aborted) {
      return Status::IOError("inproc connection aborted");
    }
    if (buffer.size() == consumed) {  // write_closed: orderly EOF.
      *read = 0;
      return Status::OK();
    }
    const size_t avail = buffer.size() - consumed;
    const size_t take = std::min(n, avail);
    std::copy_n(buffer.data() + consumed, take, dst);
    consumed += take;
    // Compact once the dead prefix dominates, so a long-lived connection
    // does not hold every byte it ever carried.
    if (consumed > 4096 && consumed * 2 >= buffer.size()) {
      buffer.erase(0, consumed);
      consumed = 0;
    }
    *read = take;
    return Status::OK();
  }

  void CloseWrite() NGRAM_EXCLUDES(mu) {
    MutexLock lock(&mu);
    write_closed = true;
    cv.SignalAll();
  }

  void CloseRead() NGRAM_EXCLUDES(mu) {
    MutexLock lock(&mu);
    read_closed = true;
    cv.SignalAll();
  }

  void Abort() NGRAM_EXCLUDES(mu) {
    MutexLock lock(&mu);
    aborted = true;
    cv.SignalAll();
  }
};

/// One endpoint: reads from `in`, writes to `out`. The peer endpoint
/// holds the same two pipes swapped.
class InProcConnection final : public Connection {
 public:
  InProcConnection(std::shared_ptr<InProcPipe> in,
                   std::shared_ptr<InProcPipe> out)
      : in_(std::move(in)), out_(std::move(out)) {}

  ~InProcConnection() override {
    // Orderly close: the peer drains buffered bytes then sees EOF; the
    // peer's further writes toward us fail instead of buffering forever.
    out_->CloseWrite();
    in_->CloseRead();
  }

  Status Write(const char* data, size_t n) override {
    return out_->Write(data, n);
  }
  Status Read(char* dst, size_t n, size_t* read) override {
    return in_->Read(dst, n, read);
  }
  void Abort() override {
    in_->Abort();
    out_->Abort();
  }

 private:
  std::shared_ptr<InProcPipe> in_;
  std::shared_ptr<InProcPipe> out_;
};

/// Shared between a listener handle and the transport's address map —
/// either side may go away first.
struct InProcListenerState {
  std::string address;
  Mutex mu;
  CondVar cv{&mu};
  std::deque<std::unique_ptr<Connection>> pending NGRAM_GUARDED_BY(mu);
  bool shut_down NGRAM_GUARDED_BY(mu) = false;

  bool IsShutDown() NGRAM_EXCLUDES(mu) {
    MutexLock lock(&mu);
    return shut_down;
  }
};

namespace {

class InProcListener final : public Listener {
 public:
  explicit InProcListener(std::shared_ptr<InProcListenerState> state)
      : state_(std::move(state)) {}

  ~InProcListener() override { Shutdown(); }

  Status Accept(std::unique_ptr<Connection>* conn) override {
    MutexLock lock(&state_->mu);
    while (state_->pending.empty() && !state_->shut_down) {
      state_->cv.Wait();
    }
    if (state_->shut_down) {
      return Status::Cancelled("inproc listener shut down");
    }
    *conn = std::move(state_->pending.front());
    state_->pending.pop_front();
    return Status::OK();
  }

  void Shutdown() override {
    MutexLock lock(&state_->mu);
    state_->shut_down = true;
    state_->pending.clear();  // Dialers already hold their endpoint.
    state_->cv.SignalAll();
  }

  const std::string& address() const override { return state_->address; }

 private:
  std::shared_ptr<InProcListenerState> state_;
};

}  // namespace
}  // namespace internal

InProcTransport::~InProcTransport() = default;

Status InProcTransport::Listen(const std::string& address,
                               std::unique_ptr<Listener>* listener) {
  auto state = std::make_shared<internal::InProcListenerState>();
  state->address = address;
  {
    MutexLock lock(&mu_);
    auto it = listeners_.find(address);
    if (it != listeners_.end()) {
      if (!it->second->IsShutDown()) {
        return Status::AlreadyExists("inproc address already bound: " +
                                     address);
      }
      listeners_.erase(it);
    }
    listeners_.emplace(address, state);
  }
  *listener = std::make_unique<internal::InProcListener>(std::move(state));
  return Status::OK();
}

Status InProcTransport::Connect(const std::string& address,
                                std::unique_ptr<Connection>* conn) {
  std::shared_ptr<internal::InProcListenerState> state;
  {
    MutexLock lock(&mu_);
    auto it = listeners_.find(address);
    if (it != listeners_.end()) {
      state = it->second;
    }
  }
  if (state == nullptr) {
    return Status::NotFound("no inproc listener at: " + address);
  }
  auto a_to_b = std::make_shared<internal::InProcPipe>();
  auto b_to_a = std::make_shared<internal::InProcPipe>();
  auto dialer = std::make_unique<internal::InProcConnection>(b_to_a, a_to_b);
  auto accepted =
      std::make_unique<internal::InProcConnection>(a_to_b, b_to_a);
  {
    MutexLock lock(&state->mu);
    if (state->shut_down) {
      return Status::NotFound("no inproc listener at: " + address);
    }
    state->pending.push_back(std::move(accepted));
    state->cv.SignalAll();
  }
  *conn = std::move(dialer);
  return Status::OK();
}

}  // namespace ngram::net
