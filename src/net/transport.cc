#include "net/transport.h"

namespace ngram::net {

Status ReadFull(Connection* conn, char* dst, size_t n, bool eof_ok,
                bool* clean_eof) {
  if (clean_eof != nullptr) {
    *clean_eof = false;
  }
  size_t got = 0;
  while (got < n) {
    size_t chunk = 0;
    Status st = conn->Read(dst + got, n - got, &chunk);
    if (!st.ok()) {
      return st;
    }
    if (chunk == 0) {
      if (got == 0 && eof_ok) {
        if (clean_eof != nullptr) {
          *clean_eof = true;
        }
        return Status::OK();
      }
      return Status::Corruption("unexpected end of stream (got " +
                                std::to_string(got) + " of " +
                                std::to_string(n) + " bytes)");
    }
    got += chunk;
  }
  return Status::OK();
}

}  // namespace ngram::net
