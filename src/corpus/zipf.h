// Zipfian term sampler. Natural-language term frequencies are famously
// Zipf-distributed; both synthetic corpora draw their vocabulary from this
// sampler so term ids (= frequency ranks) match the paper's
// frequency-descending id assignment by construction.
#pragma once

#include <cstdint>
#include <vector>

#include "util/random.h"

namespace ngram {

/// \brief Samples ranks in [1, n] with P(r) proportional to 1 / r^s.
///
/// Uses an exact inverse-CDF table with binary search; construction is
/// O(n), sampling O(log n). Deterministic given the caller's Rng.
class ZipfSampler {
 public:
  ZipfSampler(uint64_t n, double exponent);

  /// Draws one rank in [1, n].
  uint64_t Sample(Rng* rng) const;

  uint64_t n() const { return static_cast<uint64_t>(cdf_.size()); }

 private:
  std::vector<double> cdf_;  // cdf_[i] = P(rank <= i + 1).
};

}  // namespace ngram
