#include "corpus/synthetic.h"

#include <algorithm>
#include <cmath>

#include "corpus/zipf.h"
#include "util/logging.h"
#include "util/random.h"

namespace ngram {

namespace {

/// Lognormal sampler parameterized by target mean / stddev of the
/// *resulting* distribution (not of the underlying normal).
class LognormalSampler {
 public:
  LognormalSampler(double mean, double stddev) {
    const double m2 = mean * mean;
    const double v = stddev * stddev;
    sigma2_ = std::log(1.0 + v / m2);
    mu_ = std::log(mean) - sigma2_ / 2.0;
    sigma_ = std::sqrt(sigma2_);
  }

  double Sample(Rng* rng) const {
    // Box-Muller.
    double u1 = rng->NextDouble();
    double u2 = rng->NextDouble();
    if (u1 < 1e-12) {
      u1 = 1e-12;
    }
    const double z =
        std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
    return std::exp(mu_ + sigma_ * z);
  }

 private:
  double mu_;
  double sigma_;
  double sigma2_;
};

uint64_t SamplePoisson(Rng* rng, double mean) {
  // Knuth's method; means here are small (tens).
  const double limit = std::exp(-mean);
  uint64_t k = 0;
  double p = 1.0;
  do {
    ++k;
    p *= rng->NextDouble();
  } while (p > limit && k < 10000);
  return k - 1;
}

}  // namespace

Corpus GenerateSyntheticCorpus(const SyntheticCorpusOptions& options) {
  Rng rng(options.seed);
  ZipfSampler term_sampler(options.vocabulary_size, options.zipf_exponent);
  LognormalSampler sentence_length(options.sentence_length_mean,
                                   options.sentence_length_stddev);

  // Pre-generate the template phrases of each class. Phrase terms are drawn
  // from the same Zipf distribution, so a phrase's unigrams are typically
  // frequent and document splitting cannot break the phrase apart — exactly
  // the property that makes long n-grams expensive for APRIORI methods.
  struct PhrasePool {
    const PhraseClass* cls;
    std::vector<TermSequence> phrases;
    ZipfSampler popularity;
  };
  std::vector<PhrasePool> pools;
  for (const auto& cls : options.phrase_classes) {
    if (cls.num_phrases == 0 || cls.per_document_probability <= 0) {
      continue;
    }
    PhrasePool pool{&cls, {}, ZipfSampler(cls.num_phrases,
                                          cls.popularity_exponent)};
    pool.phrases.reserve(cls.num_phrases);
    for (uint32_t i = 0; i < cls.num_phrases; ++i) {
      const uint32_t len =
          cls.min_length + static_cast<uint32_t>(rng.Uniform(
                               cls.max_length - cls.min_length + 1));
      TermSequence phrase;
      phrase.reserve(len);
      for (uint32_t j = 0; j < len; ++j) {
        phrase.push_back(static_cast<TermId>(term_sampler.Sample(&rng)));
      }
      pool.phrases.push_back(std::move(phrase));
    }
    pools.push_back(std::move(pool));
  }

  Corpus corpus;
  corpus.docs.reserve(options.num_documents);
  for (uint64_t d = 0; d < options.num_documents; ++d) {
    Document doc;
    doc.id = d + 1;
    if (options.year_min != 0 || options.year_max != 0) {
      doc.year = options.year_min +
                 static_cast<int32_t>(rng.Uniform(
                     static_cast<uint64_t>(options.year_max -
                                           options.year_min + 1)));
    }
    const uint64_t num_sentences =
        1 + SamplePoisson(&rng, std::max(0.0,
                                         options.sentences_per_doc_mean - 1));
    doc.sentences.reserve(num_sentences);
    for (uint64_t s = 0; s < num_sentences; ++s) {
      const double len_d = sentence_length.Sample(&rng);
      const uint64_t len = std::max<uint64_t>(
          1, static_cast<uint64_t>(std::llround(len_d)));
      TermSequence sentence;
      sentence.reserve(len);
      for (uint64_t i = 0; i < len; ++i) {
        sentence.push_back(static_cast<TermId>(term_sampler.Sample(&rng)));
      }
      doc.sentences.push_back(std::move(sentence));
    }
    // Embed template phrases as additional sentences.
    for (auto& pool : pools) {
      if (rng.NextDouble() < pool.cls->per_document_probability) {
        const uint64_t which = pool.popularity.Sample(&rng) - 1;
        doc.sentences.push_back(pool.phrases[which]);
      }
    }
    corpus.docs.push_back(std::move(doc));
  }
  return corpus;
}

SyntheticCorpusOptions NytLikeOptions(uint64_t num_documents, uint64_t seed) {
  SyntheticCorpusOptions o;
  o.name = "NYT-like";
  o.num_documents = num_documents;
  // Vocabulary scales sublinearly with collection size (Heaps' law); the
  // real NYT has 346k distinct terms over 1.8M docs.
  o.vocabulary_size = std::max<uint64_t>(
      2000, static_cast<uint64_t>(1200.0 * std::pow(num_documents, 0.47)));
  o.zipf_exponent = 1.05;
  o.sentence_length_mean = 18.96;   // Table I.
  o.sentence_length_stddev = 14.05; // Table I.
  // Real NYT: ~1049M occurrences / 55.4M sentences over 1.83M docs
  // => ~30 sentences/doc.
  o.sentences_per_doc_mean = 30.0;
  o.year_min = 1987;
  o.year_max = 2007;
  o.seed = seed;

  // Long recurring n-grams observed in NYT (Section VII-C): ingredient
  // lists of recipes and chess openings.
  PhraseClass recipes;
  recipes.name = "recipes";
  recipes.num_phrases = std::max<uint32_t>(10, num_documents / 200);
  recipes.min_length = 30;
  recipes.max_length = 120;
  recipes.per_document_probability = 0.04;
  recipes.popularity_exponent = 1.3;
  o.phrase_classes.push_back(recipes);

  PhraseClass chess;
  chess.name = "chess-openings";
  chess.num_phrases = std::max<uint32_t>(10, num_documents / 2000);
  chess.min_length = 10;
  chess.max_length = 40;
  chess.per_document_probability = 0.005;
  chess.popularity_exponent = 1.2;
  o.phrase_classes.push_back(chess);

  PhraseClass quotes;
  quotes.name = "quotations";
  quotes.num_phrases = std::max<uint32_t>(50, num_documents / 200);
  quotes.min_length = 6;
  quotes.max_length = 20;
  quotes.per_document_probability = 0.05;
  quotes.popularity_exponent = 1.0;
  o.phrase_classes.push_back(quotes);

  return o;
}

SyntheticCorpusOptions ClueWebLikeOptions(uint64_t num_documents,
                                          uint64_t seed) {
  SyntheticCorpusOptions o;
  o.name = "CW-like";
  o.num_documents = num_documents;
  // Real CW09-B: 980k distinct terms over 50M docs; web text is noisier, so
  // a fatter Heaps curve and a slightly flatter Zipf tail.
  o.vocabulary_size = std::max<uint64_t>(
      4000, static_cast<uint64_t>(2500.0 * std::pow(num_documents, 0.47)));
  o.zipf_exponent = 0.95;
  o.sentence_length_mean = 17.02;   // Table I.
  o.sentence_length_stddev = 17.56; // Table I.
  // Real CW09-B: ~21404M occurrences / 1257M sentences over 50.2M docs
  // => ~25 sentences/doc (post-boilerplate-removal).
  o.sentences_per_doc_mean = 25.0;
  o.seed = seed;

  // Long recurring n-grams observed in CW (Section VII-C): web spam,
  // server error messages / stack traces, duplicated boilerplate.
  PhraseClass spam;
  spam.name = "web-spam";
  spam.num_phrases = std::max<uint32_t>(10, num_documents / 1000);
  spam.min_length = 50;
  spam.max_length = 200;
  spam.per_document_probability = 0.04;
  spam.popularity_exponent = 1.2;
  o.phrase_classes.push_back(spam);

  PhraseClass traces;
  traces.name = "stack-traces";
  traces.num_phrases = std::max<uint32_t>(20, num_documents / 1500);
  traces.min_length = 20;
  traces.max_length = 80;
  traces.per_document_probability = 0.02;
  traces.popularity_exponent = 1.0;
  o.phrase_classes.push_back(traces);

  PhraseClass boilerplate;
  boilerplate.name = "boilerplate";
  boilerplate.num_phrases = std::max<uint32_t>(8, num_documents / 5000);
  boilerplate.min_length = 15;
  boilerplate.max_length = 60;
  boilerplate.per_document_probability = 0.10;
  boilerplate.popularity_exponent = 1.0;
  o.phrase_classes.push_back(boilerplate);

  return o;
}

}  // namespace ngram
