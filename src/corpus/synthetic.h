// Synthetic corpus generators standing in for the paper's two datasets.
//
// The New York Times Annotated Corpus and ClueWeb09-B are licensed and
// cannot ship here, so the benchmarks run on generated collections whose
// *cost-relevant characteristics* are calibrated to Table I and Section
// VII-C of the paper:
//   - Zipfian unigram distribution (vocabulary size per dataset),
//   - lognormal sentence lengths (NYT: mean 18.96 / sd 14.05;
//     CW: mean 17.02 / sd 17.56),
//   - long *recurring* n-grams: NYT-like corpora embed recipe-ingredient
//     lists and chess openings; CW-like corpora embed web spam, stack
//     traces, and duplicated boilerplate (Section VII-C observes exactly
//     these as the sources of 100+-term frequent n-grams),
//   - NYT documents carry 1987-2007 timestamps for the time-series
//     extension.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "text/corpus.h"

namespace ngram {

/// A class of long template phrases injected into documents to create
/// long frequent n-grams (quotations, recipes, boilerplate, spam).
struct PhraseClass {
  std::string name;
  /// Number of distinct template phrases in the class.
  uint32_t num_phrases = 0;
  /// Phrase length range (terms).
  uint32_t min_length = 10;
  uint32_t max_length = 40;
  /// Probability that a given document embeds a phrase from this class.
  double per_document_probability = 0.0;
  /// Zipf exponent over phrases within the class (popular quotes repeat
  /// much more often than obscure ones).
  double popularity_exponent = 1.0;
};

struct SyntheticCorpusOptions {
  std::string name = "synthetic";
  uint64_t num_documents = 10000;
  uint64_t vocabulary_size = 50000;
  double zipf_exponent = 1.05;

  /// Sentence length distribution (lognormal, clamped to >= 1).
  double sentence_length_mean = 18.0;
  double sentence_length_stddev = 14.0;

  /// Sentences per document: 1 + Poisson(mean - 1).
  double sentences_per_doc_mean = 28.0;

  /// Document timestamps, uniform in [year_min, year_max]; 0/0 disables.
  int32_t year_min = 0;
  int32_t year_max = 0;

  std::vector<PhraseClass> phrase_classes;

  uint64_t seed = 20130318;  // EDBT 2013 :-)
};

/// Generates a corpus; fully deterministic for fixed options.
Corpus GenerateSyntheticCorpus(const SyntheticCorpusOptions& options);

/// Calibrated options for the NYT-like collection (Section VII-B/C):
/// clean longitudinal news corpus, 1987-2007 timestamps, recipes and chess
/// openings as long recurring n-grams.
SyntheticCorpusOptions NytLikeOptions(uint64_t num_documents, uint64_t seed);

/// Calibrated options for the ClueWeb09-B-like collection: larger noisier
/// vocabulary, shorter but higher-variance sentences, web spam / stack
/// traces / duplicated boilerplate.
SyntheticCorpusOptions ClueWebLikeOptions(uint64_t num_documents,
                                          uint64_t seed);

}  // namespace ngram
