#include "corpus/running_example.h"

#include "util/logging.h"

namespace ngram {

namespace {

TermSequence FromLetters(const char* letters) {
  TermSequence seq;
  for (const char* p = letters; *p != '\0'; ++p) {
    if (*p == ' ') {
      continue;
    }
    seq.push_back(RunningExampleTermId(*p));
  }
  return seq;
}

}  // namespace

TermId RunningExampleTermId(char letter) {
  switch (letter) {
    case 'a':
      return kTermA;
    case 'b':
      return kTermB;
    case 'x':
      return kTermX;
    default:
      NGRAM_CHECK(false) << "unknown running-example letter '" << letter
                         << "'";
      return 0;
  }
}

Corpus RunningExampleCorpus() {
  Corpus corpus;
  Document d1;
  d1.id = 1;
  d1.sentences.push_back(FromLetters("a x b x x"));
  Document d2;
  d2.id = 2;
  d2.sentences.push_back(FromLetters("b a x b x"));
  Document d3;
  d3.id = 3;
  d3.sentences.push_back(FromLetters("x b a x b"));
  corpus.docs = {d1, d2, d3};
  return corpus;
}

std::map<TermSequence, uint64_t> RunningExampleExpectedCounts() {
  return {
      {FromLetters("a"), 3},     {FromLetters("b"), 5},
      {FromLetters("x"), 7},     {FromLetters("a x"), 3},
      {FromLetters("x b"), 4},   {FromLetters("a x b"), 3},
  };
}

std::string RunningExampleDecode(const TermSequence& seq) {
  std::string out;
  for (size_t i = 0; i < seq.size(); ++i) {
    if (i > 0) {
      out += ' ';
    }
    switch (seq[i]) {
      case kTermA:
        out += 'a';
        break;
      case kTermB:
        out += 'b';
        break;
      case kTermX:
        out += 'x';
        break;
      default:
        out += '?';
        break;
    }
  }
  return out;
}

}  // namespace ngram
