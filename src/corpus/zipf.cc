#include "corpus/zipf.h"

#include <algorithm>
#include <cmath>

namespace ngram {

ZipfSampler::ZipfSampler(uint64_t n, double exponent) {
  cdf_.resize(n);
  double total = 0.0;
  for (uint64_t r = 1; r <= n; ++r) {
    total += 1.0 / std::pow(static_cast<double>(r), exponent);
    cdf_[r - 1] = total;
  }
  for (auto& v : cdf_) {
    v /= total;
  }
}

uint64_t ZipfSampler::Sample(Rng* rng) const {
  const double u = rng->NextDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<uint64_t>(it - cdf_.begin()) + 1;
}

}  // namespace ngram
