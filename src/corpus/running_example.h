// The paper's running example (Section III): three documents over the
// vocabulary {a, b, x}. Used throughout the tests and the quickstart.
//
//   d1 = <a x b x x>     with tau = 3, sigma = 3 every method must output:
//   d2 = <b a x b x>       <a>:3 <b>:5 <x>:7  <a x>:3 <x b>:4  <a x b>:3
//   d3 = <x b a x b>
//
// Term ids follow the frequency-descending rule: cf(x)=7 -> id 1,
// cf(b)=5 -> id 2, cf(a)=3 -> id 3.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "text/corpus.h"

namespace ngram {

inline constexpr TermId kTermX = 1;
inline constexpr TermId kTermB = 2;
inline constexpr TermId kTermA = 3;

/// Builds the three-document running-example corpus.
Corpus RunningExampleCorpus();

/// The expected output for tau = 3, sigma = 3, keyed by term-id sequence.
std::map<TermSequence, uint64_t> RunningExampleExpectedCounts();

/// Maps the example's letters to term ids ('a' -> 3, ...). Aborts on other
/// input.
TermId RunningExampleTermId(char letter);

/// Renders an example term-id sequence back to letters ("a x b").
std::string RunningExampleDecode(const TermSequence& seq);

}  // namespace ngram
