// Shard manifest of a serving directory: which segment files exist, which
// byte-ordered key range each one covers, and where every block inside
// them starts — everything a reader needs to route a query to one block
// with zero I/O beyond the block itself.
//
// Serving keys are the varbyte encodings of n-gram term sequences
// (encoding/sequence.h), ordered bytewise. Byte order is safe here
// because the codec is prefix-preserving and varint boundaries are
// self-delimiting, so (a) every stored extension of an encoded prefix P
// is byte-prefixed by P and (b) all keys byte-prefixed by P form one
// contiguous range — which is exactly what the shard router and the
// top-k prefix scans rely on. (Byte order is NOT canonical term-id
// order for multi-byte varints; the builder sorts keys bytewise and
// every reader compares bytewise, so the two orders never mix.)
//
// On-disk format of `MANIFEST`:
//
//   file     := magic "NGSM" payload crc32 fixed32   (CRC over payload)
//   payload  := [total_records varint][total_unigrams varint]
//               [max_order varint][block_bytes varint]
//               [num_shards varint] shard*
//   shard    := [name_len varint][name][file_size varint]
//               [num_records varint][min_key_len varint][min_key]
//               [max_key_len varint][max_key][num_blocks varint] block*
//   block    := [first_key_len varint][first_key]
//               [offset varint][length varint]
//
// Block extents cover the segment file exactly (blocks back to back, no
// trailer), so any bit flip in a segment lands inside some indexed block
// and is caught by that block's CRC-32 when it is decoded. A bit flip in
// the manifest itself is caught by the manifest CRC at Open().
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mapreduce/io_env.h"
#include "util/status.h"

namespace ngram::serve {

/// Name of the manifest file inside a serving directory.
inline constexpr char kManifestFileName[] = "MANIFEST";

/// One block of a shard segment: its first key and byte extent.
struct BlockEntry {
  std::string first_key;  // Encoded key of the block's first record.
  uint64_t offset = 0;    // File offset of the block's length header.
  uint64_t length = 0;    // Header + payload + CRC trailer.
};

/// One shard: a contiguous bytewise key range served by one segment file.
struct ShardEntry {
  std::string file_name;  // Relative to the serving directory.
  uint64_t file_size = 0;
  uint64_t num_records = 0;
  std::string min_key;  // First (smallest) key stored in the shard.
  std::string max_key;  // Last (largest) key stored in the shard.
  std::vector<BlockEntry> blocks;
};

/// The parsed manifest.
struct Manifest {
  uint64_t total_records = 0;
  /// Sum of unigram (order-1) frequencies — the corpus size N the
  /// language model needs for its unigram base case.
  uint64_t total_unigrams = 0;
  /// Longest n-gram stored (the sigma the statistics were computed with).
  uint32_t max_order = 0;
  /// Block payload target the builder used (informational).
  uint64_t block_bytes = 0;
  std::vector<ShardEntry> shards;  // Ordered by min_key.
};

/// Writes `manifest` to `dir`/MANIFEST (CRC-protected).
Status WriteManifest(const Manifest& manifest, const std::string& dir,
                     mr::IoEnv* env = nullptr);

/// Reads and verifies `dir`/MANIFEST. Any mismatch — bad magic, CRC
/// failure, truncation, malformed field — is Corruption naming the path.
Status ReadManifest(const std::string& dir, Manifest* manifest,
                    mr::IoEnv* env = nullptr);

}  // namespace ngram::serve
