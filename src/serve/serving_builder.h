// Builds a serving directory from a computed statistics table: the
// `ngram_tool build-serving` step. Entries are encoded, sorted bytewise,
// split into `num_shards` contiguous key ranges balanced by byte size,
// and written as block run files (runfile.h: front-coded keys, per-block
// CRC-32) plus a MANIFEST recording shard boundaries and block extents.
#pragma once

#include <cstdint>
#include <string>

#include "core/stats.h"
#include "mapreduce/io_env.h"
#include "mapreduce/runfile.h"
#include "util/status.h"

namespace ngram::serve {

struct BuildServingOptions {
  /// Number of key-range shards. Clamped to the entry count (every shard
  /// holds at least one record); 0 is invalid.
  uint32_t num_shards = 1;
  /// Soft payload size at which a block — the unit of read, cache, and
  /// CRC verification — is closed.
  size_t block_bytes = mr::kDefaultBlockBytes;
  /// Entries between restart points inside a block.
  uint32_t restart_interval = mr::kDefaultRestartInterval;
  /// I/O environment for segment and manifest writes (nullptr = default).
  mr::IoEnv* env = nullptr;
};

/// Writes serving shards for `stats` into existing directory `dir`
/// (overwriting any previous MANIFEST and shard files of the same
/// count). `stats` need not be sorted; entries must be distinct n-grams,
/// as every method's output is.
Status BuildServingShards(const NgramStatistics& stats,
                          const std::string& dir,
                          const BuildServingOptions& options = {});

}  // namespace ngram::serve
