#include "serve/serving_builder.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <limits>
#include <utility>
#include <vector>

#include "encoding/sequence.h"
#include "encoding/varint.h"
#include "serve/manifest.h"
#include "util/macros.h"

namespace ngram::serve {

namespace {

std::string ShardFileName(uint32_t shard) {
  char buf[32];
  snprintf(buf, sizeof(buf), "shard-%05u.run", shard);
  return buf;
}

}  // namespace

Status BuildServingShards(const NgramStatistics& stats,
                          const std::string& dir,
                          const BuildServingOptions& options) {
  if (options.num_shards == 0) {
    return Status::InvalidArgument("num_shards must be >= 1");
  }
  if (options.block_bytes == 0) {
    return Status::InvalidArgument("block_bytes must be >= 1");
  }
  mr::IoEnv* env = mr::ResolveEnv(options.env);

  // Encode every entry and sort bytewise — the serving key order (see
  // manifest.h for why byte order is the right order here).
  struct Row {
    std::string key;
    uint64_t count;
  };
  std::vector<Row> rows;
  rows.reserve(stats.entries.size());
  Manifest manifest;
  manifest.block_bytes = options.block_bytes;
  uint64_t total_bytes = 0;
  for (const auto& [seq, cf] : stats.entries) {
    Row row;
    SequenceCodec::Encode(seq, &row.key);
    row.count = cf;
    total_bytes += row.key.size() + kMaxVarint64Bytes;
    if (seq.size() == 1) {
      manifest.total_unigrams += cf;
    }
    manifest.max_order =
        std::max(manifest.max_order, static_cast<uint32_t>(seq.size()));
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.key < b.key; });
  manifest.total_records = rows.size();

  // Remove the previous manifest first, then stale shard files: a build
  // that crashes mid-way leaves a directory with no MANIFEST (Open fails
  // cleanly) rather than one whose old manifest names deleted or
  // half-rewritten shards.
  NGRAM_RETURN_NOT_OK(
      env->Unlink(dir + "/" + kManifestFileName));
  {
    std::error_code ec;
    for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
      const std::string name = entry.path().filename().string();
      if (name.rfind("shard-", 0) == 0) {
        NGRAM_RETURN_NOT_OK(env->Unlink(entry.path().string()));
      }
    }
  }

  // Contiguous shard ranges balanced by encoded bytes, each non-empty.
  const uint32_t num_shards = static_cast<uint32_t>(std::min<uint64_t>(
      options.num_shards, rows.size()));
  size_t next_row = 0;
  uint64_t consumed_bytes = 0;
  for (uint32_t s = 0; s < num_shards; ++s) {
    // Cut when this shard's share of the byte total is reached, but leave
    // at least one row for every shard still to come.
    const uint64_t target =
        total_bytes * (s + 1) / num_shards;  // Cumulative target.
    const size_t min_remaining = num_shards - s - 1;
    const size_t first_row = next_row;
    std::string value;

    ShardEntry shard;
    shard.file_name = ShardFileName(s);
    const std::string path = dir + "/" + shard.file_name;
    mr::RunWriterOptions writer_options;
    writer_options.compress = true;
    // Block boundaries are driven from here (so their extents can be
    // recorded); disable the writer's own size trigger.
    writer_options.block_bytes = std::numeric_limits<size_t>::max();
    writer_options.restart_interval = options.restart_interval;
    writer_options.env = options.env;
    std::unique_ptr<mr::RunWriter> writer =
        mr::NewRunWriter(path, writer_options);
    Status st = writer->Open();

    uint64_t block_start = 0;
    size_t block_payload = 0;  // Raw-size estimate of the open block.
    std::string block_first_key;
    auto finish_block = [&]() {
      if (block_payload == 0) {
        return Status::OK();
      }
      Status fs = writer->FinishSegment();
      if (!fs.ok()) {
        return fs;
      }
      BlockEntry block;
      block.first_key = block_first_key;
      block.offset = block_start;
      block.length = writer->bytes_written() - block_start;
      shard.blocks.push_back(std::move(block));
      block_start = writer->bytes_written();
      block_payload = 0;
      return Status::OK();
    };

    while (st.ok() && next_row < rows.size() &&
           (next_row == first_row ||
            rows.size() - next_row > min_remaining) &&
           (next_row == first_row || consumed_bytes < target ||
            s + 1 == num_shards)) {
      const Row& row = rows[next_row];
      if (block_payload == 0) {
        block_first_key = row.key;
      }
      value.clear();
      PutVarint64(&value, row.count);
      st = writer->Append(row.key, value);
      if (!st.ok()) {
        break;
      }
      consumed_bytes += row.key.size() + kMaxVarint64Bytes;
      block_payload += row.key.size() + value.size() + 2;
      ++next_row;
      if (block_payload >= options.block_bytes) {
        st = finish_block();
      }
    }
    if (st.ok()) {
      st = finish_block();
    }
    if (!st.ok()) {
      writer->Abandon();
      return st;
    }
    st = writer->Close();
    if (!st.ok()) {
      return st;
    }
    shard.file_size = writer->bytes_written();
    shard.num_records = next_row - first_row;
    shard.min_key = rows[first_row].key;
    shard.max_key = rows[next_row - 1].key;
    manifest.shards.push_back(std::move(shard));
  }

  // Manifest last — the commit point: it only appears once every shard
  // it names is fully written.
  return WriteManifest(manifest, dir, options.env);
}

}  // namespace ngram::serve
