// Read-only sharded store over serving segments — the query-side view of
// the statistics a batch run computed.
//
// A store is an immutable snapshot: Open() reads the CRC-verified
// MANIFEST, mmaps every shard segment, and from then on nothing mutates —
// point lookups and range scans touch only const state, so any number of
// threads query one store with no locking. The single synchronization
// point on the read path is the (optional) BlockCache's LRU mutex; with
// caching disabled even that disappears and every query decodes its block
// straight from the mapping.
//
// Read path of Count(key):
//   route:  binary-search the shard table by min_key        (no I/O)
//   block:  binary-search the shard's block index           (no I/O)
//   fetch:  BlockCache hit, or decode the ~16 KiB block from the mmap —
//           CRC-verified, so a flipped bit anywhere in the segment
//           surfaces as Corruption naming the file, never a wrong count —
//           with the block's restart index cached alongside the frames
//   seek:   binary-search the restart anchors (the block format's full-key
//           entries), then scan at most one restart interval of records
//           (bytewise-sorted, early exit)
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "kvstore/block_cache.h"
#include "mapreduce/io_env.h"
#include "serve/manifest.h"
#include "util/macros.h"
#include "util/result.h"
#include "util/slice.h"
#include "util/status.h"

namespace ngram::serve {

/// Tuning knobs for opening a store.
struct ServingOptions {
  /// Shared block cache; a private cache of `cache_bytes` is created when
  /// null. Sharing one cache across stores (and with KV stores) is safe —
  /// cache file ids are process-unique.
  std::shared_ptr<kv::BlockCache> cache;
  /// Capacity of the private cache when `cache` is null; 0 disables
  /// caching (every query decodes its block from the mapping).
  size_t cache_bytes = 64 * 1024 * 1024;
  /// I/O environment for manifest reads and segment mappings.
  mr::IoEnv* env = nullptr;
};

/// \brief Immutable, mmap-backed, sharded (n-gram -> count) store.
///
/// Keys are varbyte-encoded term sequences compared bytewise (see
/// manifest.h). All const methods are safe to call concurrently.
class ShardedStatsStore {
 public:
  /// Opens the serving directory `dir`. The returned store is fully
  /// self-contained (manifest parsed, segments mapped) and immutable.
  static Result<std::shared_ptr<const ShardedStatsStore>> Open(
      const std::string& dir, ServingOptions options = {});

  NGRAM_DISALLOW_COPY_AND_ASSIGN(ShardedStatsStore);

  /// Frequency of the encoded n-gram `key`; sets `*count` to 0 when the
  /// key is absent (absence is not an error — tau cut n-grams off).
  Status Count(Slice key, uint64_t* count) const;

  /// Invokes `fn(key, count)` for every record in the bytewise key range
  /// [lower, upper), in ascending key order, crossing shard boundaries as
  /// needed. An empty `upper` means "to the end of the store" (prefix
  /// scans whose exclusive upper bound has no byte representation — an
  /// all-0xFF prefix — pass this). `fn` returning false stops the scan
  /// early (still OK).
  Status ScanRange(Slice lower, Slice upper,
                   const std::function<bool(Slice, uint64_t)>& fn) const;

  /// Index of the shard whose key range would hold `key` (the router).
  /// Exposed for the router property tests; -1 when the store is empty.
  int ShardOf(Slice key) const;

  const Manifest& manifest() const { return manifest_; }
  size_t num_shards() const { return shards_.size(); }
  uint64_t total_records() const { return manifest_.total_records; }
  const std::string& dir() const { return dir_; }

  /// Counters of the block cache backing this store.
  kv::BlockCacheStats CacheStats() const { return cache_->Snapshot(); }
  const std::shared_ptr<kv::BlockCache>& cache() const { return cache_; }

 private:
  struct Shard {
    std::string path;
    uint64_t cache_file_id = 0;
    std::unique_ptr<mr::MmapFile> mapping;
    const ShardEntry* entry = nullptr;  // Into manifest_.shards.
  };

  ShardedStatsStore() = default;

  /// Fetches (through the cache) or decodes block `block_index` of shard
  /// `shard` as raw frames with the block's restart index appended as a
  /// fixed32 trailer (parsed back with ParseBlockView in the .cc).
  Status GetBlock(const Shard& shard, size_t block_index,
                  std::shared_ptr<const std::string>* framed) const;

  /// Index of the last block of `entry` whose first_key <= key, or -1
  /// when key precedes the first block.
  static int BlockOf(const ShardEntry& entry, Slice key);

  std::string dir_;
  Manifest manifest_;
  std::vector<Shard> shards_;
  std::shared_ptr<kv::BlockCache> cache_;
};

}  // namespace ngram::serve
