#include "serve/manifest.h"

#include <cstring>

#include "encoding/varint.h"
#include "util/crc32.h"
#include "util/macros.h"

namespace ngram::serve {

namespace {

constexpr char kMagic[4] = {'N', 'G', 'S', 'M'};

void PutLengthPrefixed(std::string* out, const std::string& s) {
  PutVarint64(out, s.size());
  out->append(s);
}

bool GetLengthPrefixed(Slice* in, std::string* out) {
  uint64_t len = 0;
  if (!GetVarint64(in, &len) || len > in->size()) {
    return false;
  }
  out->assign(in->data(), static_cast<size_t>(len));
  in->RemovePrefix(static_cast<size_t>(len));
  return true;
}

std::string ManifestPath(const std::string& dir) {
  return dir + "/" + kManifestFileName;
}

}  // namespace

Status WriteManifest(const Manifest& manifest, const std::string& dir,
                     mr::IoEnv* env) {
  std::string payload;
  PutVarint64(&payload, manifest.total_records);
  PutVarint64(&payload, manifest.total_unigrams);
  PutVarint64(&payload, manifest.max_order);
  PutVarint64(&payload, manifest.block_bytes);
  PutVarint64(&payload, manifest.shards.size());
  for (const ShardEntry& shard : manifest.shards) {
    PutLengthPrefixed(&payload, shard.file_name);
    PutVarint64(&payload, shard.file_size);
    PutVarint64(&payload, shard.num_records);
    PutLengthPrefixed(&payload, shard.min_key);
    PutLengthPrefixed(&payload, shard.max_key);
    PutVarint64(&payload, shard.blocks.size());
    for (const BlockEntry& block : shard.blocks) {
      PutLengthPrefixed(&payload, block.first_key);
      PutVarint64(&payload, block.offset);
      PutVarint64(&payload, block.length);
    }
  }

  std::string file(kMagic, sizeof(kMagic));
  file += payload;
  PutFixed32(&file, Crc32(0, payload.data(), payload.size()));

  const std::string path = ManifestPath(dir);
  std::unique_ptr<mr::WritableFile> out;
  mr::IoEnv* e = mr::ResolveEnv(env);
  NGRAM_RETURN_NOT_OK(e->NewWritableFile(path, &out));
  NGRAM_RETURN_NOT_OK(out->Write(file.data(), file.size()));
  NGRAM_RETURN_NOT_OK(out->Sync());
  return out->Close();
}

Status ReadManifest(const std::string& dir, Manifest* manifest,
                    mr::IoEnv* env) {
  const std::string path = ManifestPath(dir);
  auto corrupt = [&](const char* what) {
    return Status::Corruption(path + ": " + what);
  };
  mr::IoEnv* e = mr::ResolveEnv(env);
  uint64_t size = 0;
  NGRAM_RETURN_NOT_OK(e->FileSize(path, &size));
  std::unique_ptr<mr::ReadableFile> in;
  NGRAM_RETURN_NOT_OK(e->NewReadableFile(path, 0, &in));
  std::string content(static_cast<size_t>(size), '\0');
  size_t got = 0;
  while (got < content.size()) {
    size_t n = 0;
    NGRAM_RETURN_NOT_OK(in->Read(content.data() + got,
                                 content.size() - got, &n));
    if (n == 0) {
      return corrupt("truncated manifest");
    }
    got += n;
  }

  if (content.size() < sizeof(kMagic) + 4 ||
      memcmp(content.data(), kMagic, sizeof(kMagic)) != 0) {
    return corrupt("not a serving manifest");
  }
  const Slice payload(content.data() + sizeof(kMagic),
                      content.size() - sizeof(kMagic) - 4);
  const uint32_t expected =
      DecodeFixed32(content.data() + content.size() - 4);
  if (Crc32(0, payload.data(), payload.size()) != expected) {
    return corrupt("manifest CRC mismatch");
  }

  Manifest out;
  Slice cursor = payload;
  uint64_t num_shards = 0;
  uint64_t max_order = 0;
  if (!GetVarint64(&cursor, &out.total_records) ||
      !GetVarint64(&cursor, &out.total_unigrams) ||
      !GetVarint64(&cursor, &max_order) ||
      !GetVarint64(&cursor, &out.block_bytes) ||
      !GetVarint64(&cursor, &num_shards)) {
    return corrupt("malformed manifest header");
  }
  out.max_order = static_cast<uint32_t>(max_order);
  out.shards.reserve(static_cast<size_t>(num_shards));
  for (uint64_t s = 0; s < num_shards; ++s) {
    ShardEntry shard;
    uint64_t num_blocks = 0;
    if (!GetLengthPrefixed(&cursor, &shard.file_name) ||
        !GetVarint64(&cursor, &shard.file_size) ||
        !GetVarint64(&cursor, &shard.num_records) ||
        !GetLengthPrefixed(&cursor, &shard.min_key) ||
        !GetLengthPrefixed(&cursor, &shard.max_key) ||
        !GetVarint64(&cursor, &num_blocks)) {
      return corrupt("malformed shard entry");
    }
    shard.blocks.reserve(static_cast<size_t>(num_blocks));
    for (uint64_t b = 0; b < num_blocks; ++b) {
      BlockEntry block;
      if (!GetLengthPrefixed(&cursor, &block.first_key) ||
          !GetVarint64(&cursor, &block.offset) ||
          !GetVarint64(&cursor, &block.length)) {
        return corrupt("malformed block entry");
      }
      shard.blocks.push_back(std::move(block));
    }
    out.shards.push_back(std::move(shard));
  }
  if (!cursor.empty()) {
    return corrupt("trailing manifest bytes");
  }
  *manifest = std::move(out);
  return Status::OK();
}

}  // namespace ngram::serve
