#include "serve/stats_service.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <utility>

#include "encoding/sequence.h"

namespace ngram::serve {

namespace {

/// Smallest byte string greater than every string prefixed by `prefix`:
/// increment the last byte, dropping trailing 0xFF bytes first. An empty
/// result means no such string exists (all-0xFF prefix) — callers pass it
/// to ScanRange, where empty upper = unbounded.
std::string PrefixSuccessor(const std::string& prefix) {
  std::string successor = prefix;
  while (!successor.empty()) {
    if (static_cast<unsigned char>(successor.back()) != 0xFF) {
      successor.back() = static_cast<char>(
          static_cast<unsigned char>(successor.back()) + 1);
      return successor;
    }
    successor.pop_back();
  }
  return successor;
}

/// Invokes `fn(term, count)` for every stored n-gram extending `prefix` by
/// exactly one term, in ascending term-byte order. The encoded keys in
/// [P, successor(P)) are exactly the keys byte-prefixed by P (the codec is
/// prefix-preserving and varint boundaries self-delimit, see manifest.h);
/// one-term extensions are those whose remainder parses as one varint.
Status ScanContinuations(const ShardedStatsStore& store,
                         const TermSequence& prefix,
                         const std::function<void(TermId, uint64_t)>& fn) {
  std::string lower;
  SequenceCodec::Encode(prefix, &lower);
  const std::string upper = PrefixSuccessor(lower);
  return store.ScanRange(
      Slice(lower), Slice(upper), [&](Slice key, uint64_t count) {
        Slice rest(key.data() + lower.size(), key.size() - lower.size());
        SequenceReader reader(rest);
        TermId term = 0;
        if (reader.Next(&term) && reader.AtEnd()) {
          fn(term, count);
        }
        return true;  // Longer extensions intersperse; keep scanning.
      });
}

/// FrequencySource over an open sharded store — what lets the
/// StupidBackoffModel score interactive queries without ever
/// materializing the statistics table.
class ServedFrequencySource final : public lm::FrequencySource {
 public:
  explicit ServedFrequencySource(
      std::shared_ptr<const ShardedStatsStore> store)
      : store_(std::move(store)) {}

  uint64_t FrequencyOf(const TermSequence& seq,
                       Status* status) const override {
    std::string key;
    SequenceCodec::Encode(seq, &key);
    uint64_t count = 0;
    Status st = store_->Count(Slice(key), &count);
    if (!st.ok()) {
      if (status != nullptr) {
        *status = std::move(st);
      }
      return 0;
    }
    return count;
  }

  Status ForEachContinuation(
      const TermSequence& prefix,
      const std::function<void(TermId, uint64_t)>& fn) const override {
    return ScanContinuations(*store_, prefix, fn);
  }

 private:
  std::shared_ptr<const ShardedStatsStore> store_;
};

}  // namespace

Result<std::shared_ptr<const StatsService::Snapshot>>
StatsService::BuildSnapshot(const std::string& dir,
                            const ServingOptions& options,
                            lm::LanguageModelOptions lm_options) {
  auto snapshot = std::make_shared<Snapshot>();
  NGRAM_ASSIGN_OR_RETURN(snapshot->store,
                         ShardedStatsStore::Open(dir, options));
  const Manifest& manifest = snapshot->store->manifest();
  if (manifest.total_unigrams > 0) {
    lm_options.order = std::min(
        lm_options.order, std::max<uint32_t>(1, manifest.max_order));
    NGRAM_ASSIGN_OR_RETURN(
        lm::StupidBackoffModel model,
        lm::StupidBackoffModel::BuildFromSource(
            std::make_shared<ServedFrequencySource>(snapshot->store),
            lm_options, manifest.total_unigrams));
    snapshot->model =
        std::make_unique<lm::StupidBackoffModel>(std::move(model));
  }
  return std::shared_ptr<const Snapshot>(std::move(snapshot));
}

Result<std::unique_ptr<StatsService>> StatsService::Open(
    const std::string& dir, ServingOptions options,
    lm::LanguageModelOptions lm_options) {
  std::unique_ptr<StatsService> service(
      new StatsService(dir, std::move(options), lm_options));
  NGRAM_ASSIGN_OR_RETURN(
      auto snapshot,
      BuildSnapshot(service->dir_, service->options_, lm_options));
  std::atomic_store_explicit(&service->snapshot_, std::move(snapshot),
                             std::memory_order_release);
  return service;
}

Result<uint64_t> StatsService::Count(const TermSequence& ngram) const {
  if (ngram.empty()) {
    return Status::InvalidArgument("ngram must be non-empty");
  }
  const std::shared_ptr<const Snapshot> snap = snapshot();
  std::string key;
  SequenceCodec::Encode(ngram, &key);
  uint64_t count = 0;
  NGRAM_RETURN_NOT_OK(snap->store->Count(Slice(key), &count));
  return count;
}

Result<std::vector<Completion>> StatsService::TopKCompletions(
    const TermSequence& prefix, size_t k) const {
  const std::shared_ptr<const Snapshot> snap = snapshot();
  std::vector<Completion> completions;
  NGRAM_RETURN_NOT_OK(ScanContinuations(
      *snap->store, prefix, [&](TermId term, uint64_t count) {
        completions.push_back(Completion{term, count});
      }));
  std::sort(completions.begin(), completions.end(),
            [](const Completion& a, const Completion& b) {
              if (a.count != b.count) {
                return a.count > b.count;
              }
              return a.term < b.term;
            });
  if (completions.size() > k) {
    completions.resize(k);
  }
  return completions;
}

Result<double> StatsService::Perplexity(const Corpus& text) const {
  const std::shared_ptr<const Snapshot> snap = snapshot();
  if (snap->model == nullptr) {
    return Status::InvalidArgument(
        "store holds no unigrams; perplexity is undefined");
  }
  Status status;
  const double perplexity = snap->model->Perplexity(text, &status);
  NGRAM_RETURN_NOT_OK(status);
  return perplexity;
}

Result<double> StatsService::SentencePerplexity(
    const TermSequence& sentence) const {
  Corpus corpus;
  corpus.docs.emplace_back();
  corpus.docs.back().sentences.push_back(sentence);
  return Perplexity(corpus);
}

kv::BlockCacheStats StatsService::CacheStats() const {
  return snapshot()->store->CacheStats();
}

Status StatsService::Reload(const std::string& dir) {
  MutexLock lock(&reload_mu_);
  NGRAM_ASSIGN_OR_RETURN(
      auto snapshot,
      BuildSnapshot(dir.empty() ? dir_ : dir, options_, lm_options_));
  std::atomic_store_explicit(&snapshot_, std::move(snapshot),
                             std::memory_order_release);
  return Status::OK();
}

std::shared_ptr<const ShardedStatsStore> StatsService::store() const {
  return snapshot()->store;
}

}  // namespace ngram::serve
