#include "serve/sharded_store.h"

#include <algorithm>

#include "encoding/varint.h"
#include "mapreduce/record.h"
#include "mapreduce/runfile.h"

namespace ngram::serve {

namespace {

/// Count value decode (builder writes one varint64 per record).
Status DecodeCount(Slice value, const std::string& path, uint64_t* count) {
  if (!GetVarint64(&value, count) || !value.empty()) {
    return Status::Corruption("malformed count value in " + path);
  }
  return Status::OK();
}

}  // namespace

Result<std::shared_ptr<const ShardedStatsStore>> ShardedStatsStore::Open(
    const std::string& dir, ServingOptions options) {
  std::shared_ptr<ShardedStatsStore> store(new ShardedStatsStore());
  store->dir_ = dir;
  NGRAM_RETURN_NOT_OK(ReadManifest(dir, &store->manifest_, options.env));

  store->cache_ = options.cache != nullptr
                      ? options.cache
                      : std::make_shared<kv::BlockCache>(options.cache_bytes);

  mr::IoEnv* env = mr::ResolveEnv(options.env);
  store->shards_.reserve(store->manifest_.shards.size());
  for (const ShardEntry& entry : store->manifest_.shards) {
    Shard shard;
    shard.path = dir + "/" + entry.file_name;
    shard.entry = &entry;
    shard.cache_file_id = kv::AllocateCacheFileId();
    NGRAM_RETURN_NOT_OK(env->NewMmapFile(shard.path, &shard.mapping));
    if (shard.mapping->data().size() != entry.file_size) {
      return Status::Corruption(
          shard.path + ": size " +
          std::to_string(shard.mapping->data().size()) +
          " does not match manifest (" + std::to_string(entry.file_size) +
          ")");
    }
    // The manifest CRC already vouches for the index itself; this checks
    // that the index and the segment agree — blocks must tile the file.
    uint64_t expected_offset = 0;
    for (const BlockEntry& block : entry.blocks) {
      if (block.offset != expected_offset || block.length == 0) {
        return Status::Corruption(shard.path +
                                  ": manifest block extents do not tile "
                                  "the segment");
      }
      expected_offset += block.length;
    }
    if (expected_offset != entry.file_size || entry.blocks.empty()) {
      return Status::Corruption(shard.path +
                                ": manifest block extents do not tile "
                                "the segment");
    }
    store->shards_.push_back(std::move(shard));
  }
  return std::shared_ptr<const ShardedStatsStore>(std::move(store));
}

int ShardedStatsStore::ShardOf(Slice key) const {
  if (shards_.empty()) {
    return -1;
  }
  // Last shard whose min_key <= key; keys before every shard route to
  // shard 0 (where they are — correctly — absent).
  auto it = std::upper_bound(
      manifest_.shards.begin(), manifest_.shards.end(), key,
      [](Slice k, const ShardEntry& s) { return k.compare(s.min_key) < 0; });
  if (it == manifest_.shards.begin()) {
    return 0;
  }
  return static_cast<int>(it - manifest_.shards.begin()) - 1;
}

int ShardedStatsStore::BlockOf(const ShardEntry& entry, Slice key) {
  auto it = std::upper_bound(
      entry.blocks.begin(), entry.blocks.end(), key,
      [](Slice k, const BlockEntry& b) { return k.compare(b.first_key) < 0; });
  return static_cast<int>(it - entry.blocks.begin()) - 1;
}

Status ShardedStatsStore::GetBlock(
    const Shard& shard, size_t block_index,
    std::shared_ptr<const std::string>* framed) const {
  const kv::BlockKey cache_key{shard.cache_file_id,
                               static_cast<uint64_t>(block_index)};
  if (auto cached = cache_->Lookup(cache_key)) {
    *framed = std::move(cached);
    return Status::OK();
  }
  const BlockEntry& block = shard.entry->blocks[block_index];
  const Slice file = shard.mapping->data();
  auto decoded = std::make_shared<std::string>();
  uint64_t next_offset = 0;
  NGRAM_RETURN_NOT_OK(
      mr::DecodeBlockAt(file, block.offset, shard.path, decoded.get(),
                        &next_offset));
  if (next_offset != block.offset + block.length) {
    return Status::Corruption(
        "block at offset " + std::to_string(block.offset) + " of " +
        shard.path + " does not match its manifest extent");
  }
  *framed = decoded;
  cache_->Insert(cache_key, std::move(decoded));
  return Status::OK();
}

Status ShardedStatsStore::Count(Slice key, uint64_t* count) const {
  *count = 0;
  if (shards_.empty()) {
    return Status::OK();
  }
  const int s = ShardOf(key);
  const Shard& shard = shards_[static_cast<size_t>(s)];
  const ShardEntry& entry = *shard.entry;
  if (key.compare(entry.min_key) < 0 || key.compare(entry.max_key) > 0) {
    return Status::OK();  // Routed here, but outside the stored range.
  }
  const int b = BlockOf(entry, key);
  if (b < 0) {
    return Status::OK();
  }
  std::shared_ptr<const std::string> framed;
  NGRAM_RETURN_NOT_OK(GetBlock(shard, static_cast<size_t>(b), &framed));
  mr::MemoryRecordReader reader{Slice(*framed)};
  while (reader.Next()) {
    const int cmp = reader.key().compare(key);
    if (cmp == 0) {
      return DecodeCount(reader.value(), shard.path, count);
    }
    if (cmp > 0) {
      break;  // Records are sorted; the key is absent.
    }
  }
  return reader.status();
}

Status ShardedStatsStore::ScanRange(
    Slice lower, Slice upper,
    const std::function<bool(Slice, uint64_t)>& fn) const {
  // Empty `upper` = unbounded (see header).
  const auto before_upper = [&upper](Slice key) {
    return upper.empty() || key.compare(upper) < 0;
  };
  if (shards_.empty() || !before_upper(lower)) {
    return Status::OK();
  }
  const int first_shard = ShardOf(lower);
  for (size_t s = static_cast<size_t>(first_shard); s < shards_.size();
       ++s) {
    const Shard& shard = shards_[s];
    const ShardEntry& entry = *shard.entry;
    if (!before_upper(entry.min_key)) {
      break;  // Every later shard starts past the range.
    }
    const int first_block = std::max(0, BlockOf(entry, lower));
    for (size_t b = static_cast<size_t>(first_block);
         b < entry.blocks.size(); ++b) {
      if (!before_upper(entry.blocks[b].first_key)) {
        return Status::OK();
      }
      std::shared_ptr<const std::string> framed;
      NGRAM_RETURN_NOT_OK(GetBlock(shard, b, &framed));
      mr::MemoryRecordReader reader{Slice(*framed)};
      while (reader.Next()) {
        if (reader.key().compare(lower) < 0) {
          continue;
        }
        if (!before_upper(reader.key())) {
          return Status::OK();
        }
        uint64_t count = 0;
        NGRAM_RETURN_NOT_OK(DecodeCount(reader.value(), shard.path, &count));
        if (!fn(reader.key(), count)) {
          return Status::OK();
        }
      }
      NGRAM_RETURN_NOT_OK(reader.status());
    }
  }
  return Status::OK();
}

}  // namespace ngram::serve
