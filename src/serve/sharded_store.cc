#include "serve/sharded_store.h"

#include <algorithm>

#include "encoding/varint.h"
#include "mapreduce/record.h"
#include "mapreduce/runfile.h"

namespace ngram::serve {

namespace {

/// Count value decode (builder writes one varint64 per record).
Status DecodeCount(Slice value, const std::string& path, uint64_t* count) {
  if (!GetVarint64(&value, count) || !value.empty()) {
    return Status::Corruption("malformed count value in " + path);
  }
  return Status::OK();
}

/// View over a cached block string: the decoded raw frames, plus the
/// restart index GetBlock appended — [fixed32 frame offset per restart
/// anchor][fixed32 num_restarts] — so every cache hit carries the block's
/// seek structure without a second allocation or a cache value-type
/// change.
struct BlockView {
  Slice frames;
  const char* restarts = nullptr;  // num_restarts fixed32 frame offsets.
  uint32_t num_restarts = 0;
};

Status ParseBlockView(const std::string& cached, const std::string& path,
                      BlockView* view) {
  if (cached.size() >= 4) {
    const uint32_t n = DecodeFixed32(cached.data() + cached.size() - 4);
    const uint64_t trailer_bytes = 4ull * (static_cast<uint64_t>(n) + 1);
    if (n != 0 && trailer_bytes <= cached.size()) {
      view->frames = Slice(cached.data(),
                           cached.size() - static_cast<size_t>(trailer_bytes));
      view->restarts = cached.data() + view->frames.size();
      view->num_restarts = n;
      return Status::OK();
    }
  }
  // GetBlock always appends a well-formed trailer, so this is a process
  // bug (e.g. a foreign value under our cache file id), not disk state.
  return Status::Corruption("malformed cached block index for " + path);
}

/// Key of the frame starting at byte `offset` of `frames`. The frames are
/// decoder output (already bounds-checked), so the parse cannot fail.
Slice KeyAt(Slice frames, uint32_t offset) {
  Slice in(frames.data() + offset, frames.size() - offset);
  uint64_t klen = 0;
  uint64_t vlen = 0;
  GetVarint64(&in, &klen);
  GetVarint64(&in, &vlen);
  return Slice(in.data(), static_cast<size_t>(klen));
}

/// Frame offset of the largest restart anchor whose key is <= `key`
/// (anchor 0 when every anchor key exceeds it, which only happens for
/// keys before the block). A scan from here crosses at most one restart
/// interval before the sorted order proves the key absent.
uint32_t SeekAnchor(const BlockView& view, Slice key) {
  uint32_t lo = 0;
  uint32_t hi = view.num_restarts;  // First anchor with key > `key`.
  while (lo < hi) {
    const uint32_t mid = lo + (hi - lo) / 2;
    const uint32_t off = DecodeFixed32(view.restarts + 4ull * mid);
    if (KeyAt(view.frames, off).compare(key) <= 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo == 0 ? 0 : DecodeFixed32(view.restarts + 4ull * (lo - 1));
}

}  // namespace

Result<std::shared_ptr<const ShardedStatsStore>> ShardedStatsStore::Open(
    const std::string& dir, ServingOptions options) {
  std::shared_ptr<ShardedStatsStore> store(new ShardedStatsStore());
  store->dir_ = dir;
  NGRAM_RETURN_NOT_OK(ReadManifest(dir, &store->manifest_, options.env));

  store->cache_ = options.cache != nullptr
                      ? options.cache
                      : std::make_shared<kv::BlockCache>(options.cache_bytes);

  mr::IoEnv* env = mr::ResolveEnv(options.env);
  store->shards_.reserve(store->manifest_.shards.size());
  for (const ShardEntry& entry : store->manifest_.shards) {
    Shard shard;
    shard.path = dir + "/" + entry.file_name;
    shard.entry = &entry;
    shard.cache_file_id = kv::AllocateCacheFileId();
    NGRAM_RETURN_NOT_OK(env->NewMmapFile(shard.path, &shard.mapping));
    if (shard.mapping->data().size() != entry.file_size) {
      return Status::Corruption(
          shard.path + ": size " +
          std::to_string(shard.mapping->data().size()) +
          " does not match manifest (" + std::to_string(entry.file_size) +
          ")");
    }
    // The manifest CRC already vouches for the index itself; this checks
    // that the index and the segment agree — blocks must tile the file.
    uint64_t expected_offset = 0;
    for (const BlockEntry& block : entry.blocks) {
      if (block.offset != expected_offset || block.length == 0) {
        return Status::Corruption(shard.path +
                                  ": manifest block extents do not tile "
                                  "the segment");
      }
      expected_offset += block.length;
    }
    if (expected_offset != entry.file_size || entry.blocks.empty()) {
      return Status::Corruption(shard.path +
                                ": manifest block extents do not tile "
                                "the segment");
    }
    store->shards_.push_back(std::move(shard));
  }
  return std::shared_ptr<const ShardedStatsStore>(std::move(store));
}

int ShardedStatsStore::ShardOf(Slice key) const {
  if (shards_.empty()) {
    return -1;
  }
  // Last shard whose min_key <= key; keys before every shard route to
  // shard 0 (where they are — correctly — absent).
  auto it = std::upper_bound(
      manifest_.shards.begin(), manifest_.shards.end(), key,
      [](Slice k, const ShardEntry& s) { return k.compare(s.min_key) < 0; });
  if (it == manifest_.shards.begin()) {
    return 0;
  }
  return static_cast<int>(it - manifest_.shards.begin()) - 1;
}

int ShardedStatsStore::BlockOf(const ShardEntry& entry, Slice key) {
  auto it = std::upper_bound(
      entry.blocks.begin(), entry.blocks.end(), key,
      [](Slice k, const BlockEntry& b) { return k.compare(b.first_key) < 0; });
  return static_cast<int>(it - entry.blocks.begin()) - 1;
}

Status ShardedStatsStore::GetBlock(
    const Shard& shard, size_t block_index,
    std::shared_ptr<const std::string>* framed) const {
  const kv::BlockKey cache_key{shard.cache_file_id,
                               static_cast<uint64_t>(block_index)};
  if (auto cached = cache_->Lookup(cache_key)) {
    *framed = std::move(cached);
    return Status::OK();
  }
  const BlockEntry& block = shard.entry->blocks[block_index];
  const Slice file = shard.mapping->data();
  auto decoded = std::make_shared<std::string>();
  std::vector<uint32_t> restart_offsets;
  uint64_t next_offset = 0;
  NGRAM_RETURN_NOT_OK(
      mr::DecodeBlockAtIndexed(file, block.offset, shard.path, decoded.get(),
                               &restart_offsets, &next_offset));
  if (next_offset != block.offset + block.length) {
    return Status::Corruption(
        "block at offset " + std::to_string(block.offset) + " of " +
        shard.path + " does not match its manifest extent");
  }
  // Append the restart index as a trailer (see BlockView) so the seek
  // structure is cached alongside the frames it indexes.
  for (const uint32_t off : restart_offsets) {
    PutFixed32(decoded.get(), off);
  }
  PutFixed32(decoded.get(), static_cast<uint32_t>(restart_offsets.size()));
  *framed = decoded;
  cache_->Insert(cache_key, std::move(decoded));
  return Status::OK();
}

Status ShardedStatsStore::Count(Slice key, uint64_t* count) const {
  *count = 0;
  if (shards_.empty()) {
    return Status::OK();
  }
  const int s = ShardOf(key);
  const Shard& shard = shards_[static_cast<size_t>(s)];
  const ShardEntry& entry = *shard.entry;
  if (key.compare(entry.min_key) < 0 || key.compare(entry.max_key) > 0) {
    return Status::OK();  // Routed here, but outside the stored range.
  }
  const int b = BlockOf(entry, key);
  if (b < 0) {
    return Status::OK();
  }
  std::shared_ptr<const std::string> framed;
  NGRAM_RETURN_NOT_OK(GetBlock(shard, static_cast<size_t>(b), &framed));
  BlockView view;
  NGRAM_RETURN_NOT_OK(ParseBlockView(*framed, shard.path, &view));
  // Binary-search the restart anchors, then decode-scan at most one
  // restart interval instead of walking the block from its first record.
  const uint32_t start = SeekAnchor(view, key);
  mr::MemoryRecordReader reader{
      Slice(view.frames.data() + start, view.frames.size() - start)};
  while (reader.Next()) {
    const int cmp = reader.key().compare(key);
    if (cmp == 0) {
      return DecodeCount(reader.value(), shard.path, count);
    }
    if (cmp > 0) {
      break;  // Records are sorted; the key is absent.
    }
  }
  return reader.status();
}

Status ShardedStatsStore::ScanRange(
    Slice lower, Slice upper,
    const std::function<bool(Slice, uint64_t)>& fn) const {
  // Empty `upper` = unbounded (see header).
  const auto before_upper = [&upper](Slice key) {
    return upper.empty() || key.compare(upper) < 0;
  };
  if (shards_.empty() || !before_upper(lower)) {
    return Status::OK();
  }
  const int first_shard = ShardOf(lower);
  for (size_t s = static_cast<size_t>(first_shard); s < shards_.size();
       ++s) {
    const Shard& shard = shards_[s];
    const ShardEntry& entry = *shard.entry;
    if (!before_upper(entry.min_key)) {
      break;  // Every later shard starts past the range.
    }
    const int first_block = std::max(0, BlockOf(entry, lower));
    for (size_t b = static_cast<size_t>(first_block);
         b < entry.blocks.size(); ++b) {
      if (!before_upper(entry.blocks[b].first_key)) {
        return Status::OK();
      }
      std::shared_ptr<const std::string> framed;
      NGRAM_RETURN_NOT_OK(GetBlock(shard, b, &framed));
      BlockView view;
      NGRAM_RETURN_NOT_OK(ParseBlockView(*framed, shard.path, &view));
      Slice scan = view.frames;
      if (b == static_cast<size_t>(first_block)) {
        // Anchor-seek `lower` in the first block of each shard we enter;
        // records between the anchor and `lower` are skipped below.
        const uint32_t start = SeekAnchor(view, lower);
        scan = Slice(view.frames.data() + start, view.frames.size() - start);
      }
      mr::MemoryRecordReader reader{scan};
      while (reader.Next()) {
        if (reader.key().compare(lower) < 0) {
          continue;
        }
        if (!before_upper(reader.key())) {
          return Status::OK();
        }
        uint64_t count = 0;
        NGRAM_RETURN_NOT_OK(DecodeCount(reader.value(), shard.path, &count));
        if (!fn(reader.key(), count)) {
          return Status::OK();
        }
      }
      NGRAM_RETURN_NOT_OK(reader.status());
    }
  }
  return Status::OK();
}

}  // namespace ngram::serve
