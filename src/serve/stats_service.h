// StatsService: the query API the serving layer exposes to concurrent
// callers — Count, TopKCompletions, Perplexity — over one atomic snapshot
// of a ShardedStatsStore.
//
// Concurrency model (the HITgram-style interactive platform shape):
//   * A snapshot (ShardedStatsStore + the StupidBackoffModel scoring
//     through it) is immutable once built.
//   * The service holds one `shared_ptr<const Snapshot>` published with
//     release semantics; every query does one acquire-load and then works
//     exclusively on that snapshot — queries in flight during a Reload()
//     finish against the snapshot they started with, and the old store
//     unmaps only when its last query drops the reference.
//   * No query ever takes a service-level lock. The only mutex anywhere
//     on the read path is the BlockCache's LRU mutex (and a cache of
//     capacity 0 removes even that).
//
// Error contract: a bit flip in a segment or manifest surfaces as
// Corruption naming the file — never as a wrong count, ranking, or
// perplexity.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "kvstore/block_cache.h"
#include "lm/language_model.h"
#include "serve/sharded_store.h"
#include "text/corpus.h"
#include "util/macros.h"
#include "util/mutex.h"
#include "util/result.h"

namespace ngram::serve {

/// One scored completion: the continuation term and its stored frequency.
struct Completion {
  TermId term = 0;
  uint64_t count = 0;
  bool operator==(const Completion& o) const {
    return term == o.term && count == o.count;
  }
};

class StatsService {
 public:
  /// Opens a service over serving directory `dir`. `lm_options` shapes
  /// the Perplexity/backoff scoring; its order is clamped to the stored
  /// max order.
  static Result<std::unique_ptr<StatsService>> Open(
      const std::string& dir, ServingOptions options = {},
      lm::LanguageModelOptions lm_options = {});

  NGRAM_DISALLOW_COPY_AND_ASSIGN(StatsService);

  /// Frequency of `ngram`; 0 when absent (tau cut it off or it never
  /// occurred — indistinguishable by design, as in the batch output).
  Result<uint64_t> Count(const TermSequence& ngram) const;

  /// The stored n-grams extending `prefix` by exactly one term, ordered
  /// by descending count then ascending term id, at most `k`. Unlike the
  /// model's TopContinuations this does not back off — it reports exactly
  /// what the statistics contain, so results are comparable bytewise
  /// across methods and shard counts.
  Result<std::vector<Completion>> TopKCompletions(const TermSequence& prefix,
                                                  size_t k) const;

  /// Stupid-backoff perplexity of `text` under the served statistics.
  Result<double> Perplexity(const Corpus& text) const;

  /// Perplexity of a single sentence (a one-sentence convenience for
  /// interactive callers).
  Result<double> SentencePerplexity(const TermSequence& sentence) const;

  /// Counters of the snapshot's block cache.
  kv::BlockCacheStats CacheStats() const;

  /// Re-opens `dir` (or the original directory when empty) and atomically
  /// swaps the snapshot. Queries already in flight finish on the old one.
  /// Concurrent Reloads are serialized (build-then-publish under
  /// `reload_mu_`), so the published snapshot is always the latest
  /// successful build rather than whichever racing build swapped last.
  Status Reload(const std::string& dir = "") NGRAM_EXCLUDES(reload_mu_);

  /// The current snapshot's store (for inspection and tests).
  std::shared_ptr<const ShardedStatsStore> store() const;

 private:
  struct Snapshot {
    std::shared_ptr<const ShardedStatsStore> store;
    /// Model scoring through `store`; unset when the store holds no
    /// unigrams (Perplexity then returns InvalidArgument).
    std::unique_ptr<lm::StupidBackoffModel> model;
  };

  StatsService(std::string dir, ServingOptions options,
               lm::LanguageModelOptions lm_options)
      : dir_(std::move(dir)),
        options_(std::move(options)),
        lm_options_(lm_options) {}

  static Result<std::shared_ptr<const Snapshot>> BuildSnapshot(
      const std::string& dir, const ServingOptions& options,
      lm::LanguageModelOptions lm_options);

  /// Acquire-loads the current snapshot (the only read-path touch point).
  std::shared_ptr<const Snapshot> snapshot() const {
    return std::atomic_load_explicit(&snapshot_, std::memory_order_acquire);
  }

  const std::string dir_;
  const ServingOptions options_;
  const lm::LanguageModelOptions lm_options_;
  /// Serializes Reload(): held across the snapshot build AND the publish
  /// so two concurrent reloads cannot publish out of build order. Never
  /// touched by queries — the read path stays lock-free.
  Mutex reload_mu_;
  /// The atomic shard table: swapped wholesale by Reload(). Atomic
  /// shared_ptr load/store, not GUARDED_BY(reload_mu_): readers load it
  /// without any lock; reload_mu_ only orders the writers.
  std::shared_ptr<const Snapshot> snapshot_;
};

}  // namespace ngram::serve
