#include "index/posting.h"

namespace ngram {

PostingList JoinAdjacent(const PostingList& left, const PostingList& right) {
  PostingList result;
  size_t i = 0, j = 0;
  while (i < left.postings.size() && j < right.postings.size()) {
    const Posting& l = left.postings[i];
    const Posting& r = right.postings[j];
    if (l.doc_id < r.doc_id) {
      ++i;
    } else if (l.doc_id > r.doc_id) {
      ++j;
    } else {
      Posting joined;
      joined.doc_id = l.doc_id;
      // Two-pointer scan: keep p in l.positions with p + 1 in r.positions.
      size_t a = 0, b = 0;
      while (a < l.positions.size() && b < r.positions.size()) {
        const uint32_t want = l.positions[a] + 1;
        if (r.positions[b] < want) {
          ++b;
        } else if (r.positions[b] > want) {
          ++a;
        } else {
          joined.positions.push_back(l.positions[a]);
          ++a;
          ++b;
        }
      }
      if (!joined.positions.empty()) {
        result.postings.push_back(std::move(joined));
      }
      ++i;
      ++j;
    }
  }
  return result;
}

}  // namespace ngram
