// Positional postings for APRIORI-INDEX: every frequent n-gram carries an
// inverted list of (document, sorted positions). Joining the posting lists
// of a k-gram's two constituent (k-1)-grams (offset by one position) yields
// the k-gram's posting list — the core of Algorithm 3, Reducer #2.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "encoding/serde.h"
#include "encoding/varint.h"
#include "util/slice.h"

namespace ngram {

/// Occurrences of one n-gram within one document.
struct Posting {
  uint64_t doc_id = 0;
  std::vector<uint32_t> positions;  // Start offsets, strictly ascending.

  bool operator==(const Posting& o) const {
    return doc_id == o.doc_id && positions == o.positions;
  }
};

/// A full inverted list, sorted by doc_id.
struct PostingList {
  std::vector<Posting> postings;

  /// Collection frequency represented by this list: total number of
  /// occurrences across documents.
  uint64_t TotalOccurrences() const {
    uint64_t n = 0;
    for (const auto& p : postings) {
      n += p.positions.size();
    }
    return n;
  }

  /// Document frequency: number of documents with >= 1 occurrence.
  uint64_t DocumentFrequency() const { return postings.size(); }

  bool operator==(const PostingList& o) const {
    return postings == o.postings;
  }
};

/// Positional merge-join: occurrences of the k-gram whose first (k-1)-gram
/// is `left` and whose last (k-1)-gram is `right`; i.e. keeps positions p of
/// `left` such that `right` has an occurrence at p + 1.
PostingList JoinAdjacent(const PostingList& left, const PostingList& right);

/// Wire format: doc ids delta-encoded across postings; positions
/// delta-encoded within a posting.
template <>
struct Serde<Posting> {
  static void Encode(const Posting& p, std::string* out) {
    PutVarint64(out, p.doc_id);
    PutVarint64(out, p.positions.size());
    uint32_t prev = 0;
    for (uint32_t pos : p.positions) {
      PutVarint32(out, pos - prev);
      prev = pos;
    }
  }
  static bool Decode(Slice in, Posting* p) {
    p->positions.clear();
    uint64_t n = 0;
    if (!GetVarint64(&in, &p->doc_id) || !GetVarint64(&in, &n)) {
      return false;
    }
    uint32_t prev = 0;
    p->positions.reserve(n);
    for (uint64_t i = 0; i < n; ++i) {
      uint32_t delta = 0;
      if (!GetVarint32(&in, &delta)) {
        return false;
      }
      prev += delta;
      p->positions.push_back(prev);
    }
    return in.empty();
  }
};

template <>
struct Serde<PostingList> {
  static void Encode(const PostingList& list, std::string* out) {
    PutVarint64(out, list.postings.size());
    uint64_t prev_doc = 0;
    for (const auto& p : list.postings) {
      PutVarint64(out, p.doc_id - prev_doc);
      prev_doc = p.doc_id;
      PutVarint64(out, p.positions.size());
      uint32_t prev_pos = 0;
      for (uint32_t pos : p.positions) {
        PutVarint32(out, pos - prev_pos);
        prev_pos = pos;
      }
    }
  }
  static bool Decode(Slice in, PostingList* list) {
    list->postings.clear();
    uint64_t n = 0;
    if (!GetVarint64(&in, &n)) {
      return false;
    }
    list->postings.reserve(n);
    uint64_t prev_doc = 0;
    for (uint64_t i = 0; i < n; ++i) {
      Posting p;
      uint64_t doc_delta = 0, count = 0;
      if (!GetVarint64(&in, &doc_delta) || !GetVarint64(&in, &count)) {
        return false;
      }
      prev_doc += doc_delta;
      p.doc_id = prev_doc;
      p.positions.reserve(count);
      uint32_t prev_pos = 0;
      for (uint64_t j = 0; j < count; ++j) {
        uint32_t delta = 0;
        if (!GetVarint32(&in, &delta)) {
          return false;
        }
        prev_pos += delta;
        p.positions.push_back(prev_pos);
      }
      list->postings.push_back(std::move(p));
    }
    return in.empty();
  }
};

}  // namespace ngram
