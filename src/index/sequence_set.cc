#include "index/sequence_set.h"

#include "encoding/varint.h"
#include "mapreduce/partitioner.h"
#include "util/logging.h"

namespace ngram {

namespace {
constexpr size_t kInitialBuckets = 1024;
constexpr double kMaxLoadFactor = 0.7;

uint64_t HashEncoded(Slice encoded) {
  return mr::HashPartitioner::Hash(encoded);
}
}  // namespace

SequenceSet::SequenceSet(Options options) : options_(std::move(options)) {
  buckets_.assign(kInitialBuckets, 0);
  tags_.assign(kInitialBuckets, 0);
}

SequenceSet::~SequenceSet() = default;

size_t SequenceSet::MemoryBytes() const {
  return arena_.size() + buckets_.size() * sizeof(uint64_t) + tags_.size();
}

bool SequenceSet::FindInMemory(Slice encoded, uint64_t hash,
                               size_t* bucket) const {
  const size_t mask = buckets_.size() - 1;
  const uint8_t tag = Tag(hash);
  size_t b = static_cast<size_t>(hash) & mask;
  for (;;) {
    const uint64_t slot = buckets_[b];
    if (slot == 0) {
      *bucket = b;
      return false;
    }
    // The 1-byte hash tag rejects almost every non-matching occupied
    // bucket without chasing into the arena (the mapper's APRIORI probe
    // is this function's hot caller).
    if (tags_[b] == tag) {
      // Decode the arena entry at offset slot - 1.
      Slice entry(arena_.data() + (slot - 1), arena_.size() - (slot - 1));
      uint64_t len = 0;
      GetVarint64(&entry, &len);
      if (Slice(entry.data(), len) == encoded) {
        *bucket = b;
        return true;
      }
    }
    b = (b + 1) & mask;
  }
}

void SequenceSet::GrowBuckets() {
  std::vector<uint64_t> old = std::move(buckets_);
  buckets_.assign(old.size() * 2, 0);
  tags_.assign(buckets_.size(), 0);
  const size_t mask = buckets_.size() - 1;
  // Rehash by replaying arena entries (offsets in `old` point into arena_).
  for (uint64_t slot : old) {
    if (slot == 0) {
      continue;
    }
    Slice entry(arena_.data() + (slot - 1), arena_.size() - (slot - 1));
    uint64_t len = 0;
    GetVarint64(&entry, &len);
    const uint64_t hash = HashEncoded(Slice(entry.data(), len));
    size_t b = static_cast<size_t>(hash) & mask;
    while (buckets_[b] != 0) {
      b = (b + 1) & mask;
    }
    buckets_[b] = slot;
    tags_[b] = Tag(hash);
  }
}

Status SequenceSet::SpillToStore() {
  auto opened = kv::KVStore::Open(options_.spill_dir);
  if (!opened.ok()) {
    return opened.status();
  }
  store_ = std::move(opened).ValueOrDie();
  NGRAM_LOG_INFO << "SequenceSet spilling " << in_memory_size_
                 << " sequences (" << MemoryBytes() << " bytes) to "
                 << options_.spill_dir;
  // Move every arena entry into the store.
  Slice cursor(arena_);
  while (!cursor.empty()) {
    uint64_t len = 0;
    if (!GetVarint64(&cursor, &len)) {
      return Status::Corruption("SequenceSet arena corrupt");
    }
    NGRAM_RETURN_NOT_OK(store_->Put(Slice(cursor.data(), len), Slice()));
    cursor.RemovePrefix(len);
  }
  arena_.clear();
  arena_.shrink_to_fit();
  buckets_.assign(kInitialBuckets, 0);
  tags_.assign(kInitialBuckets, 0);
  in_memory_size_ = 0;
  return Status::OK();
}

Status SequenceSet::Insert(Slice encoded) {
  if (store_ != nullptr) {
    if (!store_->Contains(encoded)) {
      NGRAM_RETURN_NOT_OK(store_->Put(encoded, Slice()));
      ++size_;
    }
    return Status::OK();
  }
  const uint64_t hash = HashEncoded(encoded);
  size_t bucket = 0;
  if (FindInMemory(encoded, hash, &bucket)) {
    return Status::OK();
  }
  const uint64_t offset = arena_.size();
  PutVarint64(&arena_, encoded.size());
  arena_.append(encoded.data(), encoded.size());
  buckets_[bucket] = offset + 1;
  tags_[bucket] = Tag(hash);
  ++size_;
  ++in_memory_size_;
  if (static_cast<double>(in_memory_size_) >
      kMaxLoadFactor * static_cast<double>(buckets_.size())) {
    GrowBuckets();
  }
  if (MemoryBytes() > options_.memory_budget_bytes) {
    if (options_.spill_dir.empty()) {
      return Status::ResourceExhausted(
          "SequenceSet over budget and no spill_dir configured");
    }
    NGRAM_RETURN_NOT_OK(SpillToStore());
  }
  return Status::OK();
}

Status SequenceSet::InsertSequence(const TermSequence& seq) {
  std::string encoded;
  SequenceCodec::Encode(seq, &encoded);
  return Insert(Slice(encoded));
}

bool SequenceSet::Contains(Slice encoded) const {
  if (store_ != nullptr) {
    return store_->Contains(encoded);
  }
  const uint64_t hash = HashEncoded(encoded);
  size_t bucket = 0;
  return FindInMemory(encoded, hash, &bucket);
}

bool SequenceSet::ContainsRange(const TermSequence& seq, size_t begin,
                                size_t end, std::string* scratch) const {
  scratch->clear();
  SequenceCodec::EncodeRange(seq, begin, end, scratch);
  return Contains(Slice(*scratch));
}

}  // namespace ngram
