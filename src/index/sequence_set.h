// SequenceSet: a compact hash set of encoded term sequences, used as the
// frequent-(k-1)-gram dictionary of APRIORI-SCAN (Algorithm 2's
// `hashset<int[]> dict`).
//
// Entries are stored back-to-back in an arena ([len varint][bytes]) with an
// open-addressing offset table, so the per-entry overhead stays a few bytes
// — the paper notes that "to make lookups in the dictionary efficient,
// significant main memory at cluster nodes is required", and this structure
// is what keeps that footprint measurable and as small as possible. Past a
// configurable budget the set migrates to the disk KV store (the paper's
// Berkeley DB fallback).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "encoding/sequence.h"
#include "kvstore/kvstore.h"
#include "util/macros.h"
#include "util/slice.h"
#include "util/status.h"

namespace ngram {

class SequenceSet {
 public:
  struct Options {
    /// Budget for arena + bucket table before spilling to disk. SIZE_MAX
    /// never spills.
    size_t memory_budget_bytes = SIZE_MAX;
    /// Directory for the spill KV store (required if spilling can happen).
    std::string spill_dir;
  };

  SequenceSet() : SequenceSet(Options{}) {}
  explicit SequenceSet(Options options);
  ~SequenceSet();

  NGRAM_DISALLOW_COPY_AND_ASSIGN(SequenceSet);

  /// Inserts an encoded sequence; duplicates are ignored.
  Status Insert(Slice encoded);

  /// Convenience: encodes and inserts a term sequence.
  Status InsertSequence(const TermSequence& seq);

  /// Membership test on the encoded form.
  bool Contains(Slice encoded) const;

  /// Convenience: encodes `seq[begin..end)` into a caller-provided scratch
  /// buffer and tests membership — the APRIORI-SCAN mapper's hot path,
  /// allocation-free across calls.
  bool ContainsRange(const TermSequence& seq, size_t begin, size_t end,
                     std::string* scratch) const;

  uint64_t size() const { return size_; }
  /// Current main-memory footprint (arena + buckets), for metrics.
  size_t MemoryBytes() const;
  bool spilled() const { return store_ != nullptr; }

 private:
  bool FindInMemory(Slice encoded, uint64_t hash, size_t* bucket) const;
  void GrowBuckets();
  Status SpillToStore();

  /// 1-byte hash tag stored per occupied bucket: probes reject almost all
  /// non-matching buckets on the tag alone, skipping the arena read.
  static uint8_t Tag(uint64_t hash) {
    return static_cast<uint8_t>(hash >> 56);
  }

  Options options_;
  // Arena entries: [len varint][bytes]...
  std::string arena_;
  // Bucket table: offset + 1 into arena_, 0 = empty. Power-of-two size.
  std::vector<uint64_t> buckets_;
  // Hash tags, parallel to buckets_ (meaningful where buckets_[b] != 0).
  std::vector<uint8_t> tags_;
  uint64_t size_ = 0;
  uint64_t in_memory_size_ = 0;
  mutable std::unique_ptr<kv::KVStore> store_;  // Non-null once spilled.
};

}  // namespace ngram
