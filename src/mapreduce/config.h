// Job configuration: the runtime knobs a Hadoop job would set via its
// Configuration / Job object (reducer count, slots, sort buffer size,
// custom partitioner and comparator classes).
//
// Every knob is documented with its pipeline context in
// docs/architecture.md ("JobConfig knobs").
#pragma once

#include <cstdint>
#include <string>

#include "mapreduce/comparator.h"
#include "mapreduce/partitioner.h"
#include "mapreduce/spill_writer.h"

namespace ngram::net {
class Transport;
}  // namespace ngram::net

namespace ngram::mr {

/// Which byte-stream fabric the fetch shuffle runs over.
enum class ShuffleTransport : uint8_t {
  /// Deterministic in-process pipes (no sockets). The loopback default.
  kInProc = 0,
  /// Unix-domain sockets — the two-process fabric (`serve-shuffle`).
  kUnixSocket = 1,
};

struct JobConfig {
  /// Job name, used in logs and metrics.
  std::string name = "job";

  /// Number of reduce tasks (R). Partitioners map keys into [0, R).
  uint32_t num_reducers = 4;

  /// Concurrency limits: how many map / reduce tasks may run at once.
  /// These model the paper's "map/reduce slots" (Section VII-A, VII-H).
  uint32_t map_slots = 4;
  uint32_t reduce_slots = 4;

  /// Number of map tasks (input splits). 0 derives 2 tasks per map slot.
  uint32_t num_map_tasks = 0;

  /// Map-side sort buffer budget; exceeding it spills a sorted run to disk.
  size_t sort_buffer_bytes = 64ULL << 20;

  /// Size of the streaming spill write buffer (per spilling map task).
  size_t spill_buffer_bytes = SpillWriter::kDefaultBufferBytes;

  /// Persist every run — spill runs, map-side final merges, reduce-side
  /// intermediate passes — in the prefix-compressed block format
  /// (runfile.h): front-coded keys with restart points and a CRC-32
  /// trailer per block. Runs are sorted, so adjacent keys share long
  /// prefixes and spill-heavy jobs write far fewer bytes
  /// (RUN_BYTES_WRITTEN vs RUN_BYTES_RAW); block CRCs are verified as
  /// blocks are decoded, so on-disk integrity checking is inherent —
  /// no separate read pass, no `checksum_spills` needed. Off = the raw
  /// [klen][vlen][key][value] framing. The record *stream* is identical
  /// either way: job output is byte-identical with the knob on or off.
  bool compress_runs = true;

  /// Maintain a CRC-32 per *raw-format* spill file (integrity checking
  /// for long jobs with compress_runs off; block-format runs carry
  /// per-block CRCs unconditionally and ignore this knob;
  /// off by default — it costs one table lookup per spilled byte). When
  /// on, every checksummed run is verified once before its first
  /// reduce-side open (and every intermediate merge output before it is
  /// re-read); a mismatch fails the reading task with Corruption, which
  /// flows through the normal task-retry machinery.
  bool checksum_spills = false;

  /// Maximum merge fan-in (Hadoop's `io.sort.factor`). Bounds how many
  /// runs are opened simultaneously anywhere in the pipeline:
  ///   - a map task that finishes with more than `merge_factor` runs
  ///     merges them (bounded-fan-in, re-running the combiner) into one
  ///     partition-segmented run file before the reduce phase;
  ///   - a reduce task merges its sources in consecutive groups of at
  ///     most `merge_factor`, streaming intermediate single-partition
  ///     runs to disk until one final pass of <= `merge_factor` sources
  ///     feeds the reducer.
  /// Group boundaries always cover consecutive source indices, so the
  /// source-order tie-break — and therefore byte-identical deterministic
  /// output — survives multi-pass merging. 0 disables the bound
  /// (unbounded fan-in: every run is opened at once, the pre-bounded
  /// behavior; spill-heavy jobs can exhaust fds). Values < 2 that are
  /// not 0 are treated as 2 (a 1-way "merge" would never converge).
  uint32_t merge_factor = 16;

  /// Early-shuffle worker threads (0 disables, the default). While map
  /// tasks are still running, up to `shuffle_slots` background workers
  /// eagerly run reduce-side intermediate merge passes over the runs of
  /// already-committed map tasks — consecutive in map-task-id order, at
  /// most `merge_factor` file-backed sources per pass — so that when the
  /// map barrier falls each reduce task finds most of its multi-pass
  /// merging already done and its final pass opens pre-merged
  /// intermediates instead of O(maps x spills) runs. Eager merging is
  /// best-effort: a failed eager pass just falls back to the committed
  /// runs, and a producer re-execution invalidates every eager
  /// intermediate built over the retired generation. Output stays
  /// byte-identical with the knob on or off (see docs/architecture.md
  /// section 4c for the determinism argument); merge-accounting counters
  /// become scheduling-dependent. Ignored when merge_factor == 0 —
  /// unbounded fan-in has no intermediate passes to pull forward.
  uint32_t shuffle_slots = 0;

  /// Total order for the shuffle sort (Hadoop: setSortComparatorClass).
  const RawComparator* sort_comparator = BytewiseComparator::Instance();

  /// Grouping comparator for reduce-side grouping (null: use sort
  /// comparator; Hadoop: setGroupingComparatorClass).
  const RawComparator* grouping_comparator = nullptr;

  /// Key->reducer assignment (Hadoop: setPartitionerClass).
  const Partitioner* partitioner = HashPartitioner::Instance();

  /// Directory for spill files. Empty: a private temp dir per job.
  std::string work_dir;

  /// Fixed per-job overhead in milliseconds added to the measured
  /// wallclock, modelling Hadoop's job launch/teardown cost ("administrative
  /// fix cost", Section III). Zero disables. This is what makes multi-job
  /// methods pay per-iteration overhead at simulator scale, as they do on a
  /// real cluster.
  double job_overhead_ms = 0.0;

  /// Task fault tolerance, modelling Hadoop's re-execution of failed task
  /// attempts. A task (map or reduce) is retried with fresh state until it
  /// succeeds or `max_task_attempts` is exhausted; counters from failed
  /// attempts are discarded, so results and metrics are exactly those of a
  /// failure-free run. The same bound caps how many times one map task may
  /// be *re-executed* after a reducer finds its persisted run corrupt
  /// (fetch-failure recovery) — with the default of 1, corruption
  /// discovered downstream is unrecoverable and fails the job.
  uint32_t max_task_attempts = 1;

  /// Milliseconds slept before retrying a failed task attempt, scaled
  /// linearly by the attempt number (attempt k waits k * backoff).
  /// Models Hadoop's retry backoff; zero (the default) retries
  /// immediately, which is right for the in-process runtime's
  /// deterministic tests.
  double task_retry_backoff_ms = 0.0;

  /// I/O environment every run file, intermediate merge output, and
  /// job-boundary table of this job goes through. nullptr (production)
  /// means IoEnv::Default(), the stdio passthrough; tests pass a FaultEnv
  /// to inject read/write/sync/rename faults (io_env.h). Not owned.
  IoEnv* io_env = nullptr;

  /// Fetch shuffle (docs/architecture.md section 10). Off (default):
  /// reduce tasks plan directly over the shared MapOutputRegistry — the
  /// single-process fast path. On: every committed map task's output is
  /// *published* to a MapOutputServer and *fetched* back over a byte
  /// stream into local clone run files, and the reduce side plans only
  /// over the fetched clones — the Hadoop/YTsaurus placement model, where
  /// every shuffled byte crosses a transport. Clones are byte-identical
  /// to their sources with identical segment extents, so job output and
  /// data counters are byte-identical on or off for every merge factor
  /// and slot count; spill/fetch accounting counters differ (final
  /// flushes are forced to disk so they can be served). A fetch that
  /// fails persistently fails its *map* attempt; a clone found corrupt at
  /// reduce time triggers producer re-execution (max_task_attempts
  /// bounds both), consuming no reduce attempt.
  bool fetch_shuffle = false;

  /// Fabric the fetch shuffle uses when the job starts its own loopback
  /// server (ignored when `shuffle_server_address` is set, which always
  /// dials Unix sockets).
  ShuffleTransport shuffle_transport = ShuffleTransport::kInProc;

  /// Non-empty: dial an external `ngram_tool serve-shuffle` server at
  /// this Unix-socket path instead of starting a loopback server — the
  /// two-process mode. Run files are shared through the filesystem (same
  /// host), bytes move over the socket.
  std::string shuffle_server_address;

  /// Test seam: run the fetch shuffle over this transport instead of
  /// constructing one (chaos tests pass a FaultTransport over an
  /// InProcTransport). Not owned. Ignored when fetch_shuffle is off.
  net::Transport* shuffle_transport_override = nullptr;

  const RawComparator* EffectiveGrouping() const {
    return grouping_comparator != nullptr ? grouping_comparator
                                          : sort_comparator;
  }
};

}  // namespace ngram::mr
