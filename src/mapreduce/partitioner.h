// Partitioners: assign serialized keys to reducers. SUFFIX-sigma's
// first-term partitioner lives in core/ (it is algorithm knowledge); this
// header provides the interface and the default hash partitioner.
#pragma once

#include <cstdint>

#include "util/slice.h"

namespace ngram::mr {

/// Interface for key->reducer assignment. Implementations must be
/// stateless/thread-safe.
class Partitioner {
 public:
  virtual ~Partitioner() = default;

  /// Returns the reducer index in [0, num_partitions) for `key`.
  virtual uint32_t Partition(Slice key, uint32_t num_partitions) const = 0;

  virtual const char* Name() const = 0;
};

/// FNV-1a hash over all key bytes — Hadoop's HashPartitioner analog.
class HashPartitioner final : public Partitioner {
 public:
  uint32_t Partition(Slice key, uint32_t num_partitions) const override {
    return Hash(key) % num_partitions;
  }
  const char* Name() const override { return "hash"; }

  static uint64_t Hash(Slice key) {
    uint64_t h = 1469598103934665603ULL;
    for (size_t i = 0; i < key.size(); ++i) {
      h ^= static_cast<uint8_t>(key[i]);
      h *= 1099511628211ULL;
    }
    return h;
  }

  static const HashPartitioner* Instance() {
    static const HashPartitioner kInstance;
    return &kInstance;
  }
};

}  // namespace ngram::mr
