#include "mapreduce/runfile.h"

#include <algorithm>
#include <vector>

#include "encoding/varint.h"
#include "mapreduce/spill_writer.h"
#include "util/crc32.h"

namespace ngram::mr {

namespace {

/// \brief Block-format RunWriter: front-coded entries, restart points,
/// per-block CRC-32 trailer (format spec in runfile.h).
///
/// A SpillWriter is the physical byte sink: it provides the streaming
/// buffer (possibly caller-owned), failure-unlink semantics, and the
/// logical byte offset; this class only builds block payloads.
class BlockRunWriter final : public RunWriter {
 public:
  BlockRunWriter(std::string path, const RunWriterOptions& options)
      : options_(options),
        file_(std::move(path), FileOptions(options)),
        counter_(options.restart_interval) {}  // First entry restarts.

  Status Open() override { return file_.Open(); }

  Status Append(Slice key, Slice value) override {
    raw_bytes_ += static_cast<uint64_t>(VarintLength(key.size())) +
                  VarintLength(value.size()) + key.size() + value.size();
    size_t shared = 0;
    if (counter_ < options_.restart_interval) {
      // Delta-code against the previous key.
      const size_t n = std::min(key.size(), last_key_.size());
      while (shared < n && last_key_[shared] == key[shared]) {
        ++shared;
      }
    } else {
      restarts_.push_back(static_cast<uint32_t>(block_.size()));
      counter_ = 0;
    }
    const size_t non_shared = key.size() - shared;
    // Tag byte: shared / non_shared nibbles, 15 = varint follows.
    const uint8_t shared_nib = shared < 15 ? static_cast<uint8_t>(shared) : 15;
    const uint8_t non_shared_nib =
        non_shared < 15 ? static_cast<uint8_t>(non_shared) : 15;
    block_.push_back(static_cast<char>((shared_nib << 4) | non_shared_nib));
    if (shared_nib == 15) {
      PutVarint64(&block_, shared);
    }
    if (non_shared_nib == 15) {
      PutVarint64(&block_, non_shared);
    }
    PutVarint64(&block_, value.size());
    block_.append(key.data() + shared, non_shared);
    block_.append(value.data(), value.size());
    last_key_.resize(shared);
    last_key_.append(key.data() + shared, non_shared);
    ++counter_;
    ++entries_in_block_;
    ++records_written_;
    if (block_.size() >= options_.block_bytes) {
      return EmitBlock();
    }
    return Status::OK();
  }

  Status FinishSegment() override { return EmitBlock(); }

  Status Close() override {
    Status st = EmitBlock();
    if (!st.ok()) {
      return st;  // EmitBlock already abandoned (unlinked) on failure.
    }
    return file_.Close();
  }

  void Abandon() override { file_.Abandon(); }

  uint64_t bytes_written() const override { return file_.bytes_written(); }
  uint64_t records_written() const override { return records_written_; }
  uint64_t raw_bytes() const override { return raw_bytes_; }
  uint32_t crc32() const override { return 0; }  // Per-block CRCs instead.
  bool block_format() const override { return true; }
  const std::string& path() const override { return file_.path(); }

 private:
  static SpillWriter::Options FileOptions(const RunWriterOptions& options) {
    SpillWriter::Options file_options;
    file_options.buffer_bytes = std::max<size_t>(1, options.buffer_bytes);
    file_options.checksum = false;  // Blocks carry their own CRCs.
    file_options.external_buffer = options.external_buffer;
    file_options.preamble = options.preamble;
    file_options.env = options.env;
    return file_options;
  }

  Status EmitBlock() {
    if (entries_in_block_ == 0) {
      return Status::OK();
    }
    for (uint32_t restart : restarts_) {
      PutFixed32(&block_, restart);
    }
    PutFixed32(&block_, static_cast<uint32_t>(restarts_.size()));
    const uint32_t crc = Crc32(0, block_.data(), block_.size());
    char header[kMaxVarint64Bytes];
    char* header_end = EncodeVarint64To(header, block_.size());
    Status st = file_.AppendRawBytes(
        header, static_cast<size_t>(header_end - header));
    if (st.ok()) {
      st = file_.AppendRawBytes(block_.data(), block_.size());
    }
    if (st.ok()) {
      char trailer[4];
      EncodeFixed32To(trailer, crc);
      st = file_.AppendRawBytes(trailer, 4);
    }
    block_.clear();
    restarts_.clear();
    counter_ = options_.restart_interval;  // Next entry restarts.
    entries_in_block_ = 0;
    last_key_.clear();
    return st;
  }

  const RunWriterOptions options_;
  SpillWriter file_;
  std::string block_;               // Payload under construction.
  std::vector<uint32_t> restarts_;  // Entry offsets with shared == 0.
  uint32_t counter_ = 0;            // Entries since the last restart.
  uint64_t entries_in_block_ = 0;
  std::string last_key_;
  uint64_t records_written_ = 0;
  uint64_t raw_bytes_ = 0;
};

}  // namespace

namespace {

// Shared body of DecodeBlockPayload / the indexed variant. When
// `restart_offsets` is non-null it receives, per restart-array slot, the
// offset within `*framed` of that restart entry's frame — translating the
// writer's payload-offset index into the decoded representation.
Status DecodeBlockPayloadImpl(Slice payload, uint64_t block_offset,
                              const std::string& path, std::string* framed,
                              std::vector<uint32_t>* restart_offsets) {
  auto corrupt = [&](const std::string& what) {
    return Status::Corruption(what + " in block at offset " +
                              std::to_string(block_offset) + " of " + path);
  };
  framed->clear();
  if (restart_offsets != nullptr) {
    restart_offsets->clear();
  }
  if (payload.size() < 4) {
    return corrupt("malformed restart array");
  }
  const uint32_t num_restarts =
      DecodeFixed32(payload.data() + payload.size() - 4);
  // Widen before the +1: num_restarts == 0xffffffff must not wrap to a
  // zero-byte restart array and slip past the bound below.
  const uint64_t restart_bytes =
      4ull * (static_cast<uint64_t>(num_restarts) + 1);
  if (num_restarts == 0 || restart_bytes > payload.size()) {
    return corrupt("malformed restart array");
  }
  const size_t entries_end = payload.size() - static_cast<size_t>(restart_bytes);
  const char* const restart_array = payload.data() + entries_end;
  uint32_t next_restart = 0;  // Restart-array slots consumed so far.

  std::string last_key;
  Slice in(payload.data(), entries_end);
  while (!in.empty()) {
    if (restart_offsets != nullptr && next_restart < num_restarts &&
        DecodeFixed32(restart_array + 4 * next_restart) ==
            static_cast<uint32_t>(in.data() - payload.data())) {
      restart_offsets->push_back(static_cast<uint32_t>(framed->size()));
      ++next_restart;
    }
    // Entry header: tag byte (shared/non_shared nibbles, 15 = varint
    // follows) plus the value length varint.
    const uint8_t tag = static_cast<uint8_t>(in[0]);
    in.RemovePrefix(1);
    uint64_t shared = tag >> 4;
    uint64_t non_shared = tag & 0x0f;
    uint64_t vlen = 0;
    if ((shared == 15 && !GetVarint64(&in, &shared)) ||
        (non_shared == 15 && !GetVarint64(&in, &non_shared)) ||
        !GetVarint64(&in, &vlen)) {
      return corrupt("malformed entry header");
    }
    // Checked term by term: summing corrupt near-2^64 lengths would wrap
    // past the bound and reach the append() below as a giant count.
    if (shared > last_key.size() || non_shared > in.size() ||
        vlen > in.size() - non_shared) {
      return corrupt("entry references out-of-range bytes");
    }
    last_key.resize(static_cast<size_t>(shared));
    last_key.append(in.data(), static_cast<size_t>(non_shared));
    in.RemovePrefix(static_cast<size_t>(non_shared));
    PutVarint64(framed, last_key.size());
    PutVarint64(framed, vlen);
    framed->append(last_key);
    framed->append(in.data(), static_cast<size_t>(vlen));
    in.RemovePrefix(static_cast<size_t>(vlen));
  }
  if (framed->empty()) {
    // The writer never emits an entry-less block; accepting one (a
    // CRC-valid restart-array-only payload) would break readers that use
    // "decoded something" as their progress guarantee.
    return corrupt("block with no entries");
  }
  if (restart_offsets != nullptr && next_restart != num_restarts) {
    // CRC-valid payloads always index real entry starts (the writer emits
    // the array from actual offsets), so a dangling slot is a writer bug
    // — fail loudly rather than hand lookups a short anchor list.
    return corrupt("restart array does not point at entry starts");
  }
  return Status::OK();
}

// Shared body of DecodeBlockAt / the indexed variant.
Status DecodeBlockAtImpl(Slice file, uint64_t offset, const std::string& path,
                         std::string* framed,
                         std::vector<uint32_t>* restart_offsets,
                         uint64_t* next_offset) {
  auto corrupt = [&](const std::string& what) {
    return Status::Corruption(what + " in block at offset " +
                              std::to_string(offset) + " of " + path);
  };
  if (offset >= file.size()) {
    return corrupt("block offset past end of file");
  }
  Slice in(file.data() + offset, file.size() - offset);
  const char* header_start = in.data();
  uint64_t payload_len = 0;
  if (!GetVarint64(&in, &payload_len)) {
    return corrupt("overlong block length varint");
  }
  const uint64_t header_bytes = static_cast<uint64_t>(in.data() - header_start);
  // Compare against the remaining bytes without forming payload_len + 4,
  // which a corrupt near-2^64 varint would wrap past the check.
  if (payload_len < 10 || in.size() < 4 || payload_len > in.size() - 4) {
    return corrupt("implausible block length " + std::to_string(payload_len));
  }
  const Slice payload(in.data(), static_cast<size_t>(payload_len));
  const uint32_t expected = DecodeFixed32(in.data() + payload_len);
  if (Crc32(0, payload.data(), payload.size()) != expected) {
    return corrupt("block CRC mismatch");
  }
  Status st =
      DecodeBlockPayloadImpl(payload, offset, path, framed, restart_offsets);
  if (!st.ok()) {
    return st;
  }
  *next_offset = offset + header_bytes + payload_len + 4;
  return Status::OK();
}

}  // namespace

Status DecodeBlockPayload(Slice payload, uint64_t block_offset,
                          const std::string& path, std::string* framed) {
  return DecodeBlockPayloadImpl(payload, block_offset, path, framed, nullptr);
}

Status DecodeBlockAt(Slice file, uint64_t offset, const std::string& path,
                     std::string* framed, uint64_t* next_offset) {
  return DecodeBlockAtImpl(file, offset, path, framed, nullptr, next_offset);
}

Status DecodeBlockAtIndexed(Slice file, uint64_t offset,
                            const std::string& path, std::string* framed,
                            std::vector<uint32_t>* restart_offsets,
                            uint64_t* next_offset) {
  return DecodeBlockAtImpl(file, offset, path, framed, restart_offsets,
                           next_offset);
}

std::unique_ptr<RunWriter> NewRunWriter(std::string path,
                                        const RunWriterOptions& options) {
  if (!options.compress) {
    SpillWriter::Options file_options;
    file_options.buffer_bytes = std::max<size_t>(1, options.buffer_bytes);
    file_options.checksum = options.checksum;
    file_options.external_buffer = options.external_buffer;
    file_options.preamble = options.preamble;
    file_options.env = options.env;
    return std::make_unique<SpillWriter>(std::move(path), file_options);
  }
  return std::make_unique<BlockRunWriter>(std::move(path), options);
}

}  // namespace ngram::mr
