// Env-style I/O indirection for every persisted byte path of the runtime.
//
// All file I/O performed by the shuffle and job-boundary machinery —
// SpillWriter (and therefore the block run writer), FileRecordReader,
// RecordTable::Save/Load, and spill CRC verification — routes through an
// IoEnv: open-for-read, open-for-write, read, write, sync, rename, unlink,
// file-size. Production uses the stdio passthrough singleton
// (IoEnv::Default()); tests and chaos harnesses substitute a FaultEnv that
// executes a deterministic, seed-derived FaultPlan (EIO on the Nth read,
// ENOSPC / short write on the Nth write, a silent bit flip in the Nth
// written buffer, a failure between write and commit-rename).
//
// Commit protocol: writers stage bytes in "<path>.tmp" and publish with
// Sync() + Rename() on Close() (SpillWriter), so a half-written run is
// never visible under its committed name — a crashed or faulted attempt
// leaves either nothing or a stray .tmp that the writer unlinks itself.
//
// Unlink is deliberately never fault-injected by FaultEnv: cleanup must
// stay reliable or no faulted run could ever satisfy the "clean work_dir"
// half of the chaos dichotomy, and a failed unlink models no interesting
// recovery behavior for this runtime.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "util/macros.h"
#include "util/slice.h"
#include "util/status.h"

namespace ngram::mr {

/// \brief Sequential/positional reader over one file.
class ReadableFile {
 public:
  virtual ~ReadableFile() = default;

  /// Reads up to `n` bytes into `dst`. On success `*read` holds the byte
  /// count actually read — 0 at end of file. A failed read returns
  /// IOError naming the file.
  virtual Status Read(char* dst, size_t n, size_t* read) = 0;

  /// Repositions the next Read() at absolute offset `offset`.
  virtual Status Seek(uint64_t offset) = 0;
};

/// \brief Sequential writer for one file being created.
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  /// Appends exactly `n` bytes, or fails with IOError naming the file.
  /// A short write (disk full) is an error, not a partial success.
  virtual Status Write(const char* data, size_t n) = 0;

  /// Pushes buffered bytes toward the file — the barrier between "data
  /// written" and "commit rename" in the writer commit protocol.
  virtual Status Sync() = 0;

  /// Flushes and closes. Idempotent via the owner (writers call it once).
  virtual Status Close() = 0;
};

/// \brief A whole file mapped read-only into memory.
///
/// The serving layer's segment readers hold one of these per shard: block
/// decoding then works over stable in-memory byte ranges with no per-query
/// read syscalls, and the page cache (not a user-space buffer) backs the
/// cold set. data() stays valid for the object's lifetime.
class MmapFile {
 public:
  virtual ~MmapFile() = default;

  /// The file's entire contents. Empty files map to an empty slice.
  virtual Slice data() const = 0;
};

/// \brief The I/O environment: how the MapReduce runtime touches files.
///
/// All methods are thread-safe (map/reduce tasks on different slots open,
/// read, and write concurrently).
class IoEnv {
 public:
  virtual ~IoEnv() = default;

  /// The production stdio passthrough (process-lifetime singleton).
  static IoEnv* Default();

  /// Opens `path` for reading. `buffer_hint` sizes the stream buffer
  /// (0 = implementation default); readers that issue many tiny reads
  /// (block header varints) pass their budget so physical reads stay
  /// large and sequential.
  virtual Status NewReadableFile(const std::string& path, size_t buffer_hint,
                                 std::unique_ptr<ReadableFile>* file) = 0;

  /// Creates/truncates `path` for writing.
  virtual Status NewWritableFile(const std::string& path,
                                 std::unique_ptr<WritableFile>* file) = 0;

  /// Atomically renames `from` to `to` (the commit step of the
  /// write-to-temp protocol).
  virtual Status Rename(const std::string& from, const std::string& to) = 0;

  /// Removes `path`. Missing files are not an error (cleanup paths unlink
  /// opportunistically).
  virtual Status Unlink(const std::string& path) = 0;

  /// Size of `path` in bytes.
  virtual Status FileSize(const std::string& path, uint64_t* size) = 0;

  /// Maps `path` read-only into memory. The base implementation uses
  /// mmap(2) directly; environments that decorate the byte streams
  /// (FaultEnv) inherit it unchanged — serving reads verify per-block
  /// CRCs anyway, so corruption injected at *write* time still surfaces.
  virtual Status NewMmapFile(const std::string& path,
                             std::unique_ptr<MmapFile>* file);
};

/// Resolves the configured env: `env` itself, or the default passthrough.
inline IoEnv* ResolveEnv(IoEnv* env) {
  return env != nullptr ? env : IoEnv::Default();
}

// --------------------------------------------------------- fault plans --

/// \brief One deterministic injected fault, derived from a seed.
///
/// A plan names a single fault: its kind and the 1-based global operation
/// index at which it fires (counted per kind across the whole env, in
/// execution order). Exactly one fault fires per plan; an op index past
/// the job's actual operation count simply never fires — the run then
/// must complete byte-identical to a fault-free run, which is the
/// degenerate arm of the chaos dichotomy.
struct FaultPlan {
  enum class Kind : uint8_t {
    kNone = 0,
    kReadError,    // The Nth read call fails with EIO.
    kWriteError,   // The Nth write call fails with ENOSPC, nothing written.
    kShortWrite,   // The Nth write persists a prefix, then fails (torn).
    kBitFlip,      // One bit of the Nth written buffer flips *silently*.
    kCommitError,  // The Nth sync fails: data written, commit never runs.
    kRenameError,  // The Nth rename fails: temp file exists, name doesn't.
  };

  Kind kind = Kind::kNone;
  /// 1-based index of the faulted operation, counted per kind.
  uint64_t op = 0;
  /// kBitFlip: bit position within the written buffer (taken modulo the
  /// buffer's bit width when the fault fires).
  uint64_t bit = 0;

  /// Derives a plan deterministically from `seed` (SplitMix64 over the
  /// seed words): kind, op index, and bit position all follow from the
  /// seed alone, so a chaos sweep is reproducible run-to-run.
  static FaultPlan FromSeed(uint64_t seed);

  /// Human-readable form for chaos-test failure messages.
  std::string ToString() const;

  static const char* KindName(Kind kind);
};

/// \brief IoEnv decorator executing one FaultPlan against a base env.
///
/// Thread-safe: operation counters are atomics, and the fault fires
/// exactly once even when multiple tasks race past the trigger index.
/// Unlink and FileSize always pass through unfaulted (see file comment).
class FaultEnv final : public IoEnv {
 public:
  /// `base` must outlive this env (pass IoEnv::Default() in tests).
  FaultEnv(IoEnv* base, FaultPlan plan) : base_(base), plan_(plan) {}
  NGRAM_DISALLOW_COPY_AND_ASSIGN(FaultEnv);

  Status NewReadableFile(const std::string& path, size_t buffer_hint,
                         std::unique_ptr<ReadableFile>* file) override;
  Status NewWritableFile(const std::string& path,
                         std::unique_ptr<WritableFile>* file) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Status Unlink(const std::string& path) override;
  Status FileSize(const std::string& path, uint64_t* size) override;

  const FaultPlan& plan() const { return plan_; }
  /// True once the planned fault has executed (error returned or bit
  /// flipped). Tests assert this to prove a scenario really exercised
  /// the injection point.
  bool fault_fired() const { return fired_.load(std::memory_order_acquire); }

  /// Operations seen so far, for calibrating op-index ranges in sweeps.
  uint64_t reads_seen() const { return reads_.load(); }
  uint64_t writes_seen() const { return writes_.load(); }
  uint64_t syncs_seen() const { return syncs_.load(); }
  uint64_t renames_seen() const { return renames_.load(); }

 private:
  friend class FaultReadableFile;
  friend class FaultWritableFile;

  /// Returns true exactly once: when `count` (post-increment value of the
  /// op counter) hits the plan's trigger for `kind`.
  bool ShouldFire(FaultPlan::Kind kind, uint64_t count);

  IoEnv* base_;
  const FaultPlan plan_;
  std::atomic<uint64_t> reads_{0};
  std::atomic<uint64_t> writes_{0};
  std::atomic<uint64_t> syncs_{0};
  std::atomic<uint64_t> renames_{0};
  std::atomic<bool> fired_{false};
};

}  // namespace ngram::mr
