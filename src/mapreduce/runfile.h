// Block-structured run files: the prefix-compressed at-rest format for
// every persisted record stream — spill runs, map-side final merges,
// reduce-side intermediate passes, and serialized job-boundary tables.
//
// The record *stream* is unchanged (the same (key, value) sequence in the
// same order); only the at-rest representation differs from the raw
// `[klen][vlen][key][value]` framing of record.h. Runs are sorted, so
// adjacent keys share long byte prefixes (under the rev-lex comparator a
// shared suffix becomes a shared prefix), and front-coding stores each key
// as a delta against its predecessor:
//
//   run file := block*
//   block    := [payload_len varint][payload][crc32 fixed32]
//   payload  := entry* restart* [num_restarts fixed32]
//   entry    := [tag byte][shared varint?][non_shared varint?]
//               [vlen varint][key suffix: non_shared bytes][value]
//   restart  := fixed32 payload offset of an entry with shared == 0
//
// The tag byte packs `shared` in its high nibble and `non_shared` (the
// key suffix length) in its low nibble; a nibble of 15 means the real
// count follows as a varint. This departs from LevelDB's three-varint
// entry header deliberately: shuffle keys here are short (varbyte n-gram
// sequences average ~7 bytes), so a third header byte would eat most of
// the front-coding win — with the tag, the entry header costs exactly
// what the raw framing's [klen][vlen] costs in the common case and every
// shared byte is pure savings. An exact duplicate key (frequent in
// n-gram streams) collapses to tag + vlen + value.
//
// Every `restart_interval`-th entry is a restart point (shared == 0, the
// key stored whole), bounding how far a decoder must chain deltas and
// keeping the format seekable-in-principle (LevelDB's block layout). The
// trailing CRC-32 covers the payload and is verified whenever a block is
// read back — integrity checking rides along with decoding instead of
// costing the separate whole-file pass raw runs need (`checksum_spills`).
//
// Blocks are closed at ~`block_bytes` of payload and at every segment
// (partition) boundary, so a RunSegment extent always covers whole blocks
// and partitions stay independently readable. A record larger than
// `block_bytes` simply becomes one oversized block — records never span
// blocks.
//
// Readers: FileRecordReader (record.h) decodes this format with
// `RunFormat::kBlocks`, re-framing each block into one of two alternating
// scratch buffers so the one-record lookback contract holds across block
// boundaries.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "mapreduce/record.h"
#include "util/slice.h"
#include "util/status.h"

namespace ngram::mr {

/// Soft payload target at which a block is closed.
inline constexpr size_t kDefaultBlockBytes = 16 * 1024;
/// Entries between restart points (full keys).
inline constexpr uint32_t kDefaultRestartInterval = 16;

/// \brief Streaming writer for one run file, raw or block-compressed.
///
/// The common surface of SpillWriter (raw framing) and the block writer:
/// Open(), Append() records, FinishSegment() at partition boundaries,
/// Close(). bytes_written() is the logical file offset (buffered bytes
/// included) — callers record per-partition segment extents from it while
/// streaming, exactly as with SpillWriter. raw_bytes() is what the raw
/// framing *would* have occupied, so bytes_written()/raw_bytes() is the
/// observable compression ratio (RUN_BYTES_WRITTEN / RUN_BYTES_RAW).
class RunWriter {
 public:
  virtual ~RunWriter() = default;

  /// Creates/truncates the file. Must be called before Append().
  virtual Status Open() = 0;
  /// Appends one record.
  virtual Status Append(Slice key, Slice value) = 0;
  /// Ends the current block at a segment (partition) boundary so segment
  /// extents cover whole blocks. No-op for the raw format.
  virtual Status FinishSegment() = 0;
  /// Flushes and closes; on failure the partial file is unlinked.
  virtual Status Close() = 0;
  /// Closes (if open) and unlinks the file (task-attempt failure).
  virtual void Abandon() = 0;

  /// Logical bytes written so far (buffered bytes included).
  virtual uint64_t bytes_written() const = 0;
  /// Records appended so far.
  virtual uint64_t records_written() const = 0;
  /// Bytes the raw `[klen][vlen][key][value]` framing would have taken.
  virtual uint64_t raw_bytes() const = 0;
  /// Whole-file CRC-32 (raw format with checksumming only; block files
  /// carry per-block CRCs instead and return 0 here).
  virtual uint32_t crc32() const = 0;
  /// True when this writer produces the block format (readers must use
  /// RunFormat::kBlocks).
  virtual bool block_format() const = 0;
  virtual const std::string& path() const = 0;
};

/// Options for NewRunWriter.
struct RunWriterOptions {
  /// Block format (front-coded keys + per-block CRC) vs raw framing.
  bool compress = true;
  /// Size of the streaming write buffer.
  size_t buffer_bytes = 256 * 1024;
  /// Raw format only: maintain a whole-file CRC-32 (block files always
  /// carry per-block CRCs regardless of this flag).
  bool checksum = false;
  /// Optional caller-owned write buffer of at least `buffer_bytes` bytes
  /// (see SpillWriter::Options::external_buffer).
  char* external_buffer = nullptr;
  /// Bytes written verbatim at the start of the file before any record
  /// (self-describing headers of job-boundary tables). Counted in
  /// bytes_written(); record extents start at preamble.size().
  std::string preamble;
  /// Block format: soft payload size at which a block is closed.
  size_t block_bytes = kDefaultBlockBytes;
  /// Block format: entries between restart points.
  uint32_t restart_interval = kDefaultRestartInterval;
  /// I/O environment for the physical byte sink; nullptr means
  /// IoEnv::Default().
  IoEnv* env = nullptr;
};

/// Creates a writer for `path`: a SpillWriter (raw framing) when
/// `options.compress` is false, the block writer otherwise.
std::unique_ptr<RunWriter> NewRunWriter(std::string path,
                                        const RunWriterOptions& options);

/// Decodes one block payload (front-coded entries + restart array; CRC
/// already verified by the caller) into back-to-back raw
/// `[klen][vlen][key][value]` frames appended to `*framed` (cleared
/// first). `block_offset` and `path` only shape the Corruption messages.
/// Shared by FileRecordReader's streaming block loader and the serving
/// layer's mmap-backed random-access block reads, so both paths decode —
/// and reject corruption in — the format identically.
Status DecodeBlockPayload(Slice payload, uint64_t block_offset,
                          const std::string& path, std::string* framed);

/// Parses, CRC-verifies, and decodes the whole block starting at byte
/// `offset` of the in-memory file image `file` (an mmap-backed serving
/// segment). On success `*framed` holds the block's records as raw frames
/// (iterate with MemoryRecordReader) and `*next_offset` is the file
/// offset one past the block's trailer. A flipped bit anywhere in the
/// block yields Corruption naming `path` and the block offset.
Status DecodeBlockAt(Slice file, uint64_t offset, const std::string& path,
                     std::string* framed, uint64_t* next_offset);

/// As DecodeBlockAt, and additionally translates the block's restart array
/// into `*restart_offsets`: entry i is the byte offset within `*framed` of
/// the i-th restart entry's frame (a full-key entry — every
/// `restart_interval`-th record). Always non-empty on success (the first
/// entry of a block is a restart). Point lookups binary-search these
/// anchors and decode-scan at most one restart interval instead of walking
/// the whole block (serve/sharded_store.cc).
Status DecodeBlockAtIndexed(Slice file, uint64_t offset,
                            const std::string& path, std::string* framed,
                            std::vector<uint32_t>* restart_offsets,
                            uint64_t* next_offset);

/// RecordSink adapter over any RunWriter — the glue every writer-backed
/// emit path (spills, merge passes) uses to stream records.
class RunWriterSink final : public RecordSink {
 public:
  explicit RunWriterSink(RunWriter* writer) : writer_(writer) {}
  Status Append(Slice key, Slice value) override {
    return writer_->Append(key, value);
  }

 private:
  RunWriter* writer_;
};

}  // namespace ngram::mr
