// Reduce-side k-way merge over sorted run segments, preserving the map
// task emission order for equal keys (stable by source index) so reducer
// input is deterministic.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "mapreduce/comparator.h"
#include "mapreduce/record.h"
#include "mapreduce/sort_buffer.h"
#include "util/macros.h"
#include "util/status.h"

namespace ngram::mr {

/// \brief Merges N sorted record streams under a RawComparator.
///
/// Usage: while (merger.Next()) { use merger.key()/merger.value(); }.
/// The exposed slices remain valid until the next call to Next().
class KWayMerger {
 public:
  KWayMerger(std::vector<std::unique_ptr<RecordReader>> sources,
             const RawComparator* comparator);
  NGRAM_DISALLOW_COPY_AND_ASSIGN(KWayMerger);

  /// Advances to the next record in merged order.
  bool Next();

  Slice key() const { return current_key_; }
  Slice value() const { return current_value_; }
  const Status& status() const { return status_; }

 private:
  struct HeapEntry {
    size_t source;
  };

  bool Less(size_t a, size_t b) const;
  void SiftUp(size_t i);
  void SiftDown(size_t i);
  void PushSource(size_t source);

  std::vector<std::unique_ptr<RecordReader>> sources_;
  const RawComparator* comparator_;
  std::vector<size_t> heap_;  // Indices into sources_, min-heap by key.
  Slice current_key_;
  Slice current_value_;
  size_t current_source_ = SIZE_MAX;
  bool started_ = false;
  Status status_;
};

/// Builds a RecordReader for partition `partition` of `run` (memory or
/// file). Returns nullptr for empty segments.
std::unique_ptr<RecordReader> OpenRunPartition(const SpillRun& run,
                                               uint32_t partition);

}  // namespace ngram::mr
