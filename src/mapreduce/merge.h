// External merging over sorted run segments, preserving the map task
// emission order for equal keys (stable by source index) so reducer input
// is deterministic.
//
// Two layers live here:
//
//   - KWayMerger, the in-memory k-way merge: a loser tree (tournament
//     tree) where advancing the winner costs exactly ceil(log2 k)
//     comparisons — half of a binary heap's sift-down + sift-up — and
//     every comparison reads the cached encoded-key slice of a source
//     instead of a virtual key() call.
//   - The bounded-fan-in external merge (MergeMapRuns /
//     PrepareReduceMerge): no single KWayMerger is ever built over more
//     than `merge_factor` sources (Hadoop's `io.sort.factor`). Excess
//     runs are merged in *consecutive-index* groups through intermediate
//     on-disk passes, so open fds and read buffers stay O(merge_factor)
//     per task instead of O(total runs) — and the source-order tie-break
//     (hence byte-identical output) survives multi-pass merging.
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "mapreduce/comparator.h"
#include "mapreduce/counters.h"
#include "mapreduce/io_env.h"
#include "mapreduce/record.h"
#include "mapreduce/sort_buffer.h"
#include "util/macros.h"
#include "util/mutex.h"
#include "util/status.h"

namespace ngram::mr {

/// \brief Merges N sorted record streams under a RawComparator.
///
/// Usage: while (merger.Next()) { use merger.key()/merger.value(); }.
///
/// Slice validity inherits the RecordReader lookback contract: the
/// key()/value() bytes of the current record stay valid across ONE
/// subsequent Next() call (each Next() advances exactly one source, and
/// that source keeps its previous record alive across one advance). The
/// grouped reduce pipeline leans on this to compare adjacent records of
/// the merged stream without copying keys.
class KWayMerger {
 public:
  KWayMerger(std::vector<std::unique_ptr<RecordReader>> sources,
             const RawComparator* comparator);
  NGRAM_DISALLOW_COPY_AND_ASSIGN(KWayMerger);

  /// Advances to the next record in merged order.
  bool Next();

  Slice key() const { return current_key_; }
  Slice value() const { return current_value_; }
  /// Cached RawComparator::SortPrefix of key(): differing prefixes prove
  /// the keys differ under the *sort* comparator without a byte compare.
  uint64_t key_prefix() const { return current_prefix_; }
  const Status& status() const { return status_; }

 private:
  static constexpr size_t kNone = SIZE_MAX;

  /// Strict weak order over sources by cached key; exhausted sources rank
  /// last, ties break on source index for stability.
  bool Less(size_t a, size_t b) const;
  /// Pulls the next record of source `s`, refreshing its cached key.
  void AdvanceSource(size_t s);
  /// Builds the loser tree rooted at internal node `t`; returns the winner.
  size_t BuildTree(size_t t);
  /// Replays source `s` from its leaf to the root after it changed.
  void Replay(size_t s);

  std::vector<std::unique_ptr<RecordReader>> sources_;
  const RawComparator* comparator_;
  size_t num_sources_;                 // Tree leaf count.
  std::vector<Slice> keys_;            // Cached current key per source.
  std::vector<uint64_t> prefixes_;     // Cached sort-key prefix per source.
  std::vector<uint8_t> exhausted_;     // Per source.
  std::vector<size_t> losers_;         // Internal nodes 1..k-1.
  size_t winner_ = kNone;
  Slice current_key_;
  Slice current_value_;
  uint64_t current_prefix_ = 0;
  bool started_ = false;
  Status status_;
};

/// Builds a RecordReader for partition `partition` of `run` (memory or
/// file). Returns nullptr for empty segments. File-backed runs are read
/// through `env` (nullptr means IoEnv::Default()).
std::unique_ptr<RecordReader> OpenRunPartition(const SpillRun& run,
                                               uint32_t partition,
                                               IoEnv* env = nullptr);

/// \brief Verifies each checksummed file-backed run at most once per path.
///
/// Shared by all reduce tasks: the first task to open any partition of a
/// run pays the whole-file CRC re-read; later opens (other partitions,
/// other tasks, retried attempts) see the cached result. A mismatch is
/// sticky Corruption, so every task reading the damaged run fails and the
/// job surfaces the corruption through the retry/recovery machinery.
/// Keying by file path (not a job-wide run index) means a run regenerated
/// by producer re-execution — which lands under a fresh attempt-scoped
/// name — gets a fresh verification instead of the doomed original's
/// cached verdict.
class RunCrcVerifier {
 public:
  RunCrcVerifier() = default;
  NGRAM_DISALLOW_COPY_AND_ASSIGN(RunCrcVerifier);

  /// Verifies `run` if it carries a CRC and is file-backed; in-memory and
  /// unchecksummed runs pass trivially.
  Status Verify(const SpillRun& run, IoEnv* env) NGRAM_EXCLUDES(mu_);

 private:
  struct Entry {
    std::once_flag once;
    Status result;  // Written once under `once`; read after call_once.
  };
  Mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<Entry>> entries_
      NGRAM_GUARDED_BY(mu_);
};

/// Knobs shared by the map-side final merge and the reduce-side
/// multi-pass merge. Lifetimes: `combiner`, `verifier`, and `counters`
/// must outlive the call they are passed to.
struct ExternalMergeOptions {
  const RawComparator* comparator = BytewiseComparator::Instance();
  /// Maximum fan-in per merge pass; values < 2 are treated as 2 (the
  /// caller gates on JobConfig::merge_factor == 0 for "unbounded").
  uint32_t merge_factor = 16;
  /// Directory for intermediate merge outputs (same as the spill dir).
  std::string work_dir;
  /// Attempt-scoped file-name prefix, e.g. "map-3-a0" / "reduce-2-a1" —
  /// retried attempts never collide with a discarded attempt's files.
  std::string name_prefix;
  size_t spill_buffer_bytes = SpillWriter::kDefaultBufferBytes;
  /// Write merge outputs in the prefix-compressed block format
  /// (JobConfig::compress_runs). Inputs self-describe via
  /// SpillRun::block_format / PendingSource bookkeeping, so mixed-format
  /// source lists (e.g. raw map runs into compressed intermediates)
  /// merge fine.
  bool compress = true;
  /// Checksum raw-format intermediate outputs and verify checksummed
  /// raw inputs before reading them (JobConfig::checksum_spills).
  /// Block-format files verify per block as they are decoded instead.
  bool checksum = false;
  /// True for the map-side final merge: pass/byte counters are charged to
  /// the MAP_* phase breakouts instead of REDUCE_*.
  bool map_side = false;
  /// True for eager pre-barrier passes run by the early shuffle service:
  /// pass/byte counters are charged to the EARLY_* breakout instead of
  /// the MAP_*/REDUCE_* ones (totals are charged either way).
  bool early = false;
  /// Map-side only: re-run the combiner across runs while merging.
  RawCombineFn combiner;
  /// Reduce-side only: once-per-job CRC verification of the map runs.
  RunCrcVerifier* verifier = nullptr;
  /// Charged with kMergePasses / kIntermediateMergeBytes (and combine
  /// counters on the map side). Required.
  TaskCounters* counters = nullptr;
  /// I/O environment for every run read and intermediate write; nullptr
  /// means IoEnv::Default().
  IoEnv* env = nullptr;
};

/// \brief Map-side final merge (Hadoop's per-task spill merge).
///
/// Merges a finished map task's runs — all partitions — into ONE
/// partition-segmented run file, with at most `merge_factor` runs open in
/// any pass (excess runs go through intermediate whole-run passes first,
/// over consecutive run indices). The combiner, if configured, is re-run
/// across runs in every pass. Consumed input files are unlinked; on
/// success `*runs` holds exactly the merged run. On failure partially
/// written outputs are unlinked and `*runs` keeps the not-yet-consumed
/// inputs (the caller discards them with RemoveRunFiles).
Status MergeMapRuns(const ExternalMergeOptions& options,
                    uint32_t num_partitions, std::vector<SpillRun>* runs);

/// \brief Bounded-fan-in source preparation for one reduce task.
///
/// Result of PrepareReduceMerge: at most `merge_factor` open sources for
/// the final (reducer-feeding) merge, plus the intermediate files backing
/// them. The caller unlinks `intermediate_files` once the reduce attempt
/// is done with the sources (success or failure).
struct ReduceMergeResult {
  std::vector<std::unique_ptr<RecordReader>> sources;
  std::vector<std::string> intermediate_files;
};

/// Opens partition `partition` of `runs` for merging, running
/// intermediate single-partition merge passes until no more than
/// `merge_factor` *fd-costing* (file-backed) sources remain. Every pass
/// merges one consecutive window of sources — consecutive indices are
/// what preserve the source-order tie-break — and the plan is
/// Hadoop-style: the first window is remainder-sized so every later
/// window holds exactly `merge_factor` file-backed members (no pass
/// wastes fan-in), and among the candidate windows of the required size
/// the one covering the fewest bytes merges first (smallest runs first,
/// so early passes are cheap and bytes are re-spilled as few times as
/// possible; byte ties break on the lowest start index, keeping the plan
/// a pure function of the source list). In-memory runs cost no fd or
/// read buffer: they never count against the bound, ride along inside
/// whichever window spans their position, and a no-spill job is never
/// re-spilled here at all. With `merge_factor` == 0 every non-empty
/// segment is opened at once (unbounded). Checksummed map runs are
/// verified through `options.verifier` before their first open;
/// intermediate outputs carry their own CRC and are re-verified before
/// the next pass reads them.
Status PrepareReduceMerge(const ExternalMergeOptions& options,
                          const std::vector<const SpillRun*>& runs,
                          uint32_t partition, ReduceMergeResult* result);

/// \brief One eager (early-shuffle) merge pass: merges partition
/// `partition` of `runs` — in source order, so the source-index tie-break
/// is exactly the one the reduce-side plan would apply to the same window
/// — into a single run file at `out_path`.
///
/// On success `*out` is a synthetic partition-segmented SpillRun whose
/// only non-empty segment is `partition` (sized `num_partitions` so it
/// can stand in for map runs in a reduce-side source list). Checksummed
/// inputs are verified through `options.verifier`; on failure the partial
/// output is unlinked and `*out` is unspecified. At most |runs| sources
/// plus the output are open at once — callers bound |runs|'s fd cost by
/// `merge_factor` themselves.
Status MergePartitionToRun(const ExternalMergeOptions& options,
                           const std::vector<const SpillRun*>& runs,
                           uint32_t partition, uint32_t num_partitions,
                           const std::string& out_path, SpillRun* out);

/// Unlinks the files behind `paths` through `env` (nullptr means
/// IoEnv::Default()), ignoring missing ones.
void RemoveFiles(const std::vector<std::string>& paths, IoEnv* env = nullptr);

}  // namespace ngram::mr
