// Reduce-side k-way merge over sorted run segments, preserving the map
// task emission order for equal keys (stable by source index) so reducer
// input is deterministic.
//
// The merge is a loser tree (tournament tree): advancing the winner costs
// exactly ceil(log2 k) comparisons — half of a binary heap's sift-down +
// sift-up — and every comparison reads the cached encoded-key slice of a
// source instead of a virtual key() call.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "mapreduce/comparator.h"
#include "mapreduce/record.h"
#include "mapreduce/sort_buffer.h"
#include "util/macros.h"
#include "util/status.h"

namespace ngram::mr {

/// \brief Merges N sorted record streams under a RawComparator.
///
/// Usage: while (merger.Next()) { use merger.key()/merger.value(); }.
///
/// Slice validity inherits the RecordReader lookback contract: the
/// key()/value() bytes of the current record stay valid across ONE
/// subsequent Next() call (each Next() advances exactly one source, and
/// that source keeps its previous record alive across one advance). The
/// grouped reduce pipeline leans on this to compare adjacent records of
/// the merged stream without copying keys.
class KWayMerger {
 public:
  KWayMerger(std::vector<std::unique_ptr<RecordReader>> sources,
             const RawComparator* comparator);
  NGRAM_DISALLOW_COPY_AND_ASSIGN(KWayMerger);

  /// Advances to the next record in merged order.
  bool Next();

  Slice key() const { return current_key_; }
  Slice value() const { return current_value_; }
  /// Cached RawComparator::SortPrefix of key(): differing prefixes prove
  /// the keys differ under the *sort* comparator without a byte compare.
  uint64_t key_prefix() const { return current_prefix_; }
  const Status& status() const { return status_; }

 private:
  static constexpr size_t kNone = SIZE_MAX;

  /// Strict weak order over sources by cached key; exhausted sources rank
  /// last, ties break on source index for stability.
  bool Less(size_t a, size_t b) const;
  /// Pulls the next record of source `s`, refreshing its cached key.
  void AdvanceSource(size_t s);
  /// Builds the loser tree rooted at internal node `t`; returns the winner.
  size_t BuildTree(size_t t);
  /// Replays source `s` from its leaf to the root after it changed.
  void Replay(size_t s);

  std::vector<std::unique_ptr<RecordReader>> sources_;
  const RawComparator* comparator_;
  size_t num_sources_;                 // Tree leaf count.
  std::vector<Slice> keys_;            // Cached current key per source.
  std::vector<uint64_t> prefixes_;     // Cached sort-key prefix per source.
  std::vector<uint8_t> exhausted_;     // Per source.
  std::vector<size_t> losers_;         // Internal nodes 1..k-1.
  size_t winner_ = kNone;
  Slice current_key_;
  Slice current_value_;
  uint64_t current_prefix_ = 0;
  bool started_ = false;
  Status status_;
};

/// Builds a RecordReader for partition `partition` of `run` (memory or
/// file). Returns nullptr for empty segments.
std::unique_ptr<RecordReader> OpenRunPartition(const SpillRun& run,
                                               uint32_t partition);

}  // namespace ngram::mr
