#include "mapreduce/dataset.h"

#include <cassert>
#include <cstring>

#include "encoding/varint.h"
#include "mapreduce/runfile.h"

namespace ngram::mr {

namespace {

// Self-describing header of a serialized RecordTable: magic, version, the
// at-rest format of the record region, and the expected record/byte
// counts. The counts are what make a *cleanly truncated* file detectable:
// per-block CRCs catch flipped bits, but a file that lost whole trailing
// blocks (partial copy, disk-full crash) still reads as a valid shorter
// stream — Load() cross-checks what it decoded against the header.
constexpr char kTableMagic[4] = {'N', 'G', 'R', 'T'};
constexpr uint8_t kTableVersion = 1;
// magic[4] version format pad[2] num_records[8] byte_size[8].
constexpr size_t kTableHeaderBytes = 24;

void AppendFixed64(std::string* out, uint64_t v) {
  PutFixed32(out, static_cast<uint32_t>(v & 0xffffffffu));
  PutFixed32(out, static_cast<uint32_t>(v >> 32));
}

uint64_t DecodeFixed64At(const char* p) {
  return static_cast<uint64_t>(DecodeFixed32(p)) |
         (static_cast<uint64_t>(DecodeFixed32(p + 4)) << 32);
}

/// Zero-copy reader over a contiguous record range of a RecordTable.
/// Chunk bytes are stable while the table is being read, so key/value
/// slices stay valid for the reader's lifetime (lookback holds trivially).
class RecordTableReader final : public RecordReader {
 public:
  RecordTableReader(const std::vector<std::string>* chunks,
                    RecordTable::View view)
      : chunks_(chunks), view_(view), chunk_(view.begin_chunk) {
    if (!view_.empty() && chunk_ < chunks_->size()) {
      cur_ = ChunkRange(chunk_);
    }
  }

  bool Next() override {
    while (cur_.empty()) {
      if (chunk_ >= view_.end_chunk || view_.empty()) {
        return false;
      }
      ++chunk_;
      cur_ = ChunkRange(chunk_);
    }
    uint64_t klen = 0, vlen = 0;
    if (!GetVarint64(&cur_, &klen) || !GetVarint64(&cur_, &vlen) ||
        klen + vlen > cur_.size()) {
      status_ = Status::Corruption("malformed RecordTable record");
      cur_ = Slice();
      return false;
    }
    key_ = Slice(cur_.data(), klen);
    value_ = Slice(cur_.data() + klen, vlen);
    cur_.RemovePrefix(klen + vlen);
    return true;
  }

 private:
  Slice ChunkRange(size_t chunk) const {
    const std::string& data = (*chunks_)[chunk];
    const size_t begin = chunk == view_.begin_chunk ? view_.begin_offset : 0;
    const size_t end = chunk == view_.end_chunk ? view_.end_offset
                                                : data.size();
    return Slice(data.data() + begin, end - begin);
  }

  const std::vector<std::string>* chunks_;
  const RecordTable::View view_;
  size_t chunk_;
  Slice cur_;  // Unread bytes of the current chunk's range.
};

}  // namespace

void RecordTable::Append(Slice key, Slice value) {
  if (chunks_.empty() || chunks_.back().size() >= kChunkBytes) {
    chunks_.emplace_back();
  }
  byte_size_ += AppendRecord(&chunks_.back(), key, value);
  ++num_records_;
}

void RecordTable::AppendTable(RecordTable&& other) {
  for (std::string& chunk : other.chunks_) {
    if (!chunk.empty()) {
      chunks_.push_back(std::move(chunk));
    }
  }
  num_records_ += other.num_records_;
  byte_size_ += other.byte_size_;
  other.Clear();
}

void RecordTable::Clear() {
  chunks_.clear();
  num_records_ = 0;
  byte_size_ = 0;
}

RecordTable::View RecordTable::WholeView() const {
  View view;
  if (!chunks_.empty()) {
    view.end_chunk = chunks_.size() - 1;
    view.end_offset = chunks_.back().size();
  }
  view.bytes = byte_size_;
  return view;
}

std::vector<RecordTable::View> RecordTable::SplitByBytes(
    uint32_t num_shards) const {
  if (num_shards <= 1 || empty()) {
    // No boundaries to find: skip the frame walk entirely.
    std::vector<View> views(std::max(1u, num_shards));
    views[0] = WholeView();
    return views;
  }
  std::vector<View> views(num_shards);

  // Cursor over record boundaries: (chunk, offset, global framed offset).
  size_t chunk = 0;
  size_t offset = 0;
  uint64_t global = 0;

  // Parses the frame at the cursor and advances past it. The table only
  // ever holds frames it wrote itself, so malformed data is a programming
  // error, not an input condition.
  auto advance_one = [&] {
    Slice rest(chunks_[chunk].data() + offset,
               chunks_[chunk].size() - offset);
    const char* frame_start = rest.data();
    uint64_t klen = 0, vlen = 0;
    const bool ok = GetVarint64(&rest, &klen) && GetVarint64(&rest, &vlen);
    assert(ok && klen + vlen <= rest.size());
    (void)ok;
    const size_t framed =
        static_cast<size_t>(rest.data() - frame_start) + klen + vlen;
    offset += framed;
    global += framed;
    if (offset == chunks_[chunk].size() && chunk + 1 < chunks_.size()) {
      ++chunk;
      offset = 0;
    }
  };

  for (uint32_t i = 0; i < num_shards; ++i) {
    View& view = views[i];
    view.begin_chunk = chunk;
    view.begin_offset = offset;
    const uint64_t before = global;
    const uint64_t target = byte_size_ * (i + 1) / num_shards;
    while (global < target) {
      advance_one();
    }
    view.end_chunk = chunk;
    view.end_offset = offset;
    view.bytes = global - before;
  }
  // The last target equals byte_size_, so the loop above consumed every
  // record; the final view always ends at the table's end.
  return views;
}

std::unique_ptr<RecordReader> RecordTable::NewReader() const {
  return NewReader(WholeView());
}

std::unique_ptr<RecordReader> RecordTable::NewReader(const View& view) const {
  return std::make_unique<RecordTableReader>(&chunks_, view);
}

Status RecordTable::Save(const std::string& path, bool compress,
                         IoEnv* env) const {
  RunWriterOptions options;
  options.compress = compress;
  options.env = env;
  options.preamble.assign(kTableMagic, sizeof(kTableMagic));
  options.preamble.push_back(static_cast<char>(kTableVersion));
  options.preamble.push_back(compress ? 1 : 0);
  options.preamble.append(2, '\0');
  AppendFixed64(&options.preamble, num_records_);
  AppendFixed64(&options.preamble, byte_size_);
  std::unique_ptr<RunWriter> writer = NewRunWriter(path, options);
  NGRAM_RETURN_NOT_OK(writer->Open());
  auto reader = NewReader();
  while (reader->Next()) {
    NGRAM_RETURN_NOT_OK(writer->Append(reader->key(), reader->value()));
  }
  NGRAM_RETURN_NOT_OK(reader->status());
  return writer->Close();  // Failure unlinks the partial file.
}

Status RecordTable::Load(const std::string& path, RecordTable* table,
                         IoEnv* env) {
  env = ResolveEnv(env);
  uint64_t file_size = 0;
  NGRAM_RETURN_NOT_OK(
      env->FileSize(path, &file_size).WithContext("load table"));
  if (file_size < kTableHeaderBytes) {
    return Status::Corruption("table file " + path + " shorter than header");
  }
  char header[kTableHeaderBytes];
  {
    std::unique_ptr<ReadableFile> f;
    NGRAM_RETURN_NOT_OK(
        env->NewReadableFile(path, 0, &f).WithContext("load table"));
    size_t got = 0;
    NGRAM_RETURN_NOT_OK(f->Read(header, sizeof(header), &got)
                            .WithContext("read table header"));
    if (got != sizeof(header)) {
      return Status::Corruption("truncated table header reading " + path);
    }
  }
  if (memcmp(header, kTableMagic, sizeof(kTableMagic)) != 0) {
    return Status::Corruption("bad table magic in " + path);
  }
  if (static_cast<uint8_t>(header[4]) != kTableVersion) {
    return Status::Corruption("unsupported table version in " + path);
  }
  const RunFormat format =
      header[5] != 0 ? RunFormat::kBlocks : RunFormat::kRawRecords;
  const uint64_t expected_records = DecodeFixed64At(header + 8);
  const uint64_t expected_bytes = DecodeFixed64At(header + 16);

  table->Clear();
  FileRecordReader reader(path, kTableHeaderBytes,
                          file_size - kTableHeaderBytes,
                          FileRecordReader::kDefaultBufferBytes, format, env);
  while (reader.Next()) {
    table->Append(reader.key(), reader.value());
  }
  NGRAM_RETURN_NOT_OK(reader.status());
  if (table->num_records() != expected_records ||
      table->byte_size() != expected_bytes) {
    // Structurally valid but shorter (or longer) than what Save() wrote:
    // whole trailing blocks/records were dropped or appended.
    return Status::Corruption(
        "table " + path + " holds " + std::to_string(table->num_records()) +
        " records / " + std::to_string(table->byte_size()) +
        " bytes, header promises " + std::to_string(expected_records) +
        " / " + std::to_string(expected_bytes));
  }
  return Status::OK();
}

}  // namespace ngram::mr
