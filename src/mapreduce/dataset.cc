#include "mapreduce/dataset.h"

#include <cassert>

#include "encoding/varint.h"

namespace ngram::mr {

namespace {

/// Zero-copy reader over a contiguous record range of a RecordTable.
/// Chunk bytes are stable while the table is being read, so key/value
/// slices stay valid for the reader's lifetime (lookback holds trivially).
class RecordTableReader final : public RecordReader {
 public:
  RecordTableReader(const std::vector<std::string>* chunks,
                    RecordTable::View view)
      : chunks_(chunks), view_(view), chunk_(view.begin_chunk) {
    if (!view_.empty() && chunk_ < chunks_->size()) {
      cur_ = ChunkRange(chunk_);
    }
  }

  bool Next() override {
    while (cur_.empty()) {
      if (chunk_ >= view_.end_chunk || view_.empty()) {
        return false;
      }
      ++chunk_;
      cur_ = ChunkRange(chunk_);
    }
    uint64_t klen = 0, vlen = 0;
    if (!GetVarint64(&cur_, &klen) || !GetVarint64(&cur_, &vlen) ||
        klen + vlen > cur_.size()) {
      status_ = Status::Corruption("malformed RecordTable record");
      cur_ = Slice();
      return false;
    }
    key_ = Slice(cur_.data(), klen);
    value_ = Slice(cur_.data() + klen, vlen);
    cur_.RemovePrefix(klen + vlen);
    return true;
  }

 private:
  Slice ChunkRange(size_t chunk) const {
    const std::string& data = (*chunks_)[chunk];
    const size_t begin = chunk == view_.begin_chunk ? view_.begin_offset : 0;
    const size_t end = chunk == view_.end_chunk ? view_.end_offset
                                                : data.size();
    return Slice(data.data() + begin, end - begin);
  }

  const std::vector<std::string>* chunks_;
  const RecordTable::View view_;
  size_t chunk_;
  Slice cur_;  // Unread bytes of the current chunk's range.
};

}  // namespace

void RecordTable::Append(Slice key, Slice value) {
  if (chunks_.empty() || chunks_.back().size() >= kChunkBytes) {
    chunks_.emplace_back();
  }
  byte_size_ += AppendRecord(&chunks_.back(), key, value);
  ++num_records_;
}

void RecordTable::AppendTable(RecordTable&& other) {
  for (std::string& chunk : other.chunks_) {
    if (!chunk.empty()) {
      chunks_.push_back(std::move(chunk));
    }
  }
  num_records_ += other.num_records_;
  byte_size_ += other.byte_size_;
  other.Clear();
}

void RecordTable::Clear() {
  chunks_.clear();
  num_records_ = 0;
  byte_size_ = 0;
}

RecordTable::View RecordTable::WholeView() const {
  View view;
  if (!chunks_.empty()) {
    view.end_chunk = chunks_.size() - 1;
    view.end_offset = chunks_.back().size();
  }
  view.bytes = byte_size_;
  return view;
}

std::vector<RecordTable::View> RecordTable::SplitByBytes(
    uint32_t num_shards) const {
  if (num_shards <= 1 || empty()) {
    // No boundaries to find: skip the frame walk entirely.
    std::vector<View> views(std::max(1u, num_shards));
    views[0] = WholeView();
    return views;
  }
  std::vector<View> views(num_shards);

  // Cursor over record boundaries: (chunk, offset, global framed offset).
  size_t chunk = 0;
  size_t offset = 0;
  uint64_t global = 0;

  // Parses the frame at the cursor and advances past it. The table only
  // ever holds frames it wrote itself, so malformed data is a programming
  // error, not an input condition.
  auto advance_one = [&] {
    Slice rest(chunks_[chunk].data() + offset,
               chunks_[chunk].size() - offset);
    const char* frame_start = rest.data();
    uint64_t klen = 0, vlen = 0;
    const bool ok = GetVarint64(&rest, &klen) && GetVarint64(&rest, &vlen);
    assert(ok && klen + vlen <= rest.size());
    (void)ok;
    const size_t framed =
        static_cast<size_t>(rest.data() - frame_start) + klen + vlen;
    offset += framed;
    global += framed;
    if (offset == chunks_[chunk].size() && chunk + 1 < chunks_.size()) {
      ++chunk;
      offset = 0;
    }
  };

  for (uint32_t i = 0; i < num_shards; ++i) {
    View& view = views[i];
    view.begin_chunk = chunk;
    view.begin_offset = offset;
    const uint64_t before = global;
    const uint64_t target = byte_size_ * (i + 1) / num_shards;
    while (global < target) {
      advance_one();
    }
    view.end_chunk = chunk;
    view.end_offset = offset;
    view.bytes = global - before;
  }
  // The last target equals byte_size_, so the loop above consumed every
  // record; the final view always ends at the table's end.
  return views;
}

std::unique_ptr<RecordReader> RecordTable::NewReader() const {
  return NewReader(WholeView());
}

std::unique_ptr<RecordReader> RecordTable::NewReader(const View& view) const {
  return std::make_unique<RecordTableReader>(&chunks_, view);
}

}  // namespace ngram::mr
