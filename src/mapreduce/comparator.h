// Raw comparators: total orders over *serialized* keys. Sorting on raw
// bytes without deserialization is one of the paper's Hadoop-specific
// optimizations (Section V) and is how this runtime sorts the shuffle.
#pragma once

#include <cstring>

#include "encoding/varint.h"
#include "util/slice.h"

namespace ngram::mr {

/// Interface for key orders. Implementations must be stateless/thread-safe:
/// one instance is shared by all sort and merge workers.
class RawComparator {
 public:
  virtual ~RawComparator() = default;

  /// Classic three-way compare: negative if a orders before b, zero iff the
  /// keys are equal for grouping purposes, positive otherwise.
  virtual int Compare(Slice a, Slice b) const = 0;

  /// \brief 8-byte order-preserving sort-key prefix.
  ///
  /// Contract: SortPrefix(a) < SortPrefix(b) (unsigned) implies
  /// Compare(a, b) < 0; equal prefixes imply nothing and require a full
  /// Compare. The shuffle caches this per record so the overwhelming
  /// majority of sort and merge comparisons are a single integer compare
  /// that never touches the key bytes. The default (constant 0) makes
  /// every prefix comparison inconclusive, which is always correct.
  virtual uint64_t SortPrefix(Slice key) const { return 0; }

  /// Human-readable name for logs.
  virtual const char* Name() const = 0;
};

/// memcmp order; the default, equivalent to Hadoop's BytesWritable order.
class BytewiseComparator final : public RawComparator {
 public:
  int Compare(Slice a, Slice b) const override { return a.compare(b); }

  /// First 8 key bytes, big-endian packed (zero padded): unsigned integer
  /// order on the prefix equals memcmp order on those bytes, and a short
  /// key that is a prefix of a longer one yields a smaller-or-equal
  /// prefix, never a larger one.
  uint64_t SortPrefix(Slice key) const override {
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
    if (key.size() >= 8) {
      uint64_t word;
      memcpy(&word, key.data(), 8);
      return __builtin_bswap64(word);
    }
#endif
    uint64_t prefix = 0;
    const size_t n = key.size() < 8 ? key.size() : 8;
    for (size_t i = 0; i < n; ++i) {
      prefix |= static_cast<uint64_t>(key.udata()[i]) << (56 - 8 * i);
    }
    return prefix;
  }

  const char* Name() const override { return "bytewise"; }

  static const BytewiseComparator* Instance() {
    static const BytewiseComparator kInstance;
    return &kInstance;
  }
};

/// Numeric order over varint-encoded uint64 keys.
class Varint64Comparator final : public RawComparator {
 public:
  int Compare(Slice a, Slice b) const override {
    uint64_t va = 0, vb = 0;
    GetVarint64(&a, &va);
    GetVarint64(&b, &vb);
    if (va < vb) return -1;
    if (va > vb) return +1;
    return 0;
  }

  /// The decoded value itself is the order, so it is an exact prefix.
  uint64_t SortPrefix(Slice key) const override {
    uint64_t v = 0;
    GetVarint64(&key, &v);
    return v;
  }

  const char* Name() const override { return "varint64"; }

  static const Varint64Comparator* Instance() {
    static const Varint64Comparator kInstance;
    return &kInstance;
  }
};

}  // namespace ngram::mr
