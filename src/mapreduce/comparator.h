// Raw comparators: total orders over *serialized* keys. Sorting on raw
// bytes without deserialization is one of the paper's Hadoop-specific
// optimizations (Section V) and is how this runtime sorts the shuffle.
#pragma once

#include <cstring>

#include "encoding/varint.h"
#include "util/slice.h"

namespace ngram::mr {

/// Interface for key orders. Implementations must be stateless/thread-safe:
/// one instance is shared by all sort and merge workers.
class RawComparator {
 public:
  virtual ~RawComparator() = default;

  /// Classic three-way compare: negative if a orders before b, zero iff the
  /// keys are equal for grouping purposes, positive otherwise.
  virtual int Compare(Slice a, Slice b) const = 0;

  /// Human-readable name for logs.
  virtual const char* Name() const = 0;
};

/// memcmp order; the default, equivalent to Hadoop's BytesWritable order.
class BytewiseComparator final : public RawComparator {
 public:
  int Compare(Slice a, Slice b) const override { return a.compare(b); }
  const char* Name() const override { return "bytewise"; }

  static const BytewiseComparator* Instance() {
    static const BytewiseComparator kInstance;
    return &kInstance;
  }
};

/// Numeric order over varint-encoded uint64 keys.
class Varint64Comparator final : public RawComparator {
 public:
  int Compare(Slice a, Slice b) const override {
    uint64_t va = 0, vb = 0;
    GetVarint64(&a, &va);
    GetVarint64(&b, &vb);
    if (va < vb) return -1;
    if (va > vb) return +1;
    return 0;
  }
  const char* Name() const override { return "varint64"; }

  static const Varint64Comparator* Instance() {
    static const Varint64Comparator kInstance;
    return &kInstance;
  }
};

}  // namespace ngram::mr
