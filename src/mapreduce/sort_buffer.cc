#include "mapreduce/sort_buffer.h"

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "util/logging.h"

namespace ngram::mr {

SortBuffer::SortBuffer(Options options, TaskCounters* counters)
    : options_(std::move(options)), counters_(counters) {
  arena_.reserve(std::min<size_t>(options_.budget_bytes, 1 << 20));
}

Status SortBuffer::Add(uint32_t partition, Slice key, Slice value) {
  if (partition >= options_.num_partitions) {
    return Status::InvalidArgument("partition out of range");
  }
  RecordRef ref;
  ref.partition = partition;
  ref.key_offset = static_cast<uint32_t>(arena_.size());
  ref.key_len = static_cast<uint32_t>(key.size());
  arena_.append(key.data(), key.size());
  ref.value_offset = static_cast<uint32_t>(arena_.size());
  ref.value_len = static_cast<uint32_t>(value.size());
  arena_.append(value.data(), value.size());
  refs_.push_back(ref);

  const size_t footprint = arena_.size() + refs_.size() * sizeof(RecordRef);
  if (footprint >= options_.budget_bytes) {
    NGRAM_RETURN_NOT_OK(SpillSorted(/*final_flush=*/false));
  }
  return Status::OK();
}

void SortBuffer::SortRefs() {
  const RawComparator* cmp = options_.comparator;
  const char* arena = arena_.data();
  std::stable_sort(refs_.begin(), refs_.end(),
                   [cmp, arena](const RecordRef& a, const RecordRef& b) {
                     if (a.partition != b.partition) {
                       return a.partition < b.partition;
                     }
                     return cmp->Compare(
                                Slice(arena + a.key_offset, a.key_len),
                                Slice(arena + b.key_offset, b.key_len)) < 0;
                   });
}

namespace {

/// Sink that appends framed records to a string and tracks record count.
class StringRunSink final : public RecordSink {
 public:
  explicit StringRunSink(std::string* out) : out_(out) {}
  Status Append(Slice key, Slice value) override {
    AppendRecord(out_, key, value);
    ++num_records_;
    return Status::OK();
  }
  uint64_t num_records() const { return num_records_; }
  void ResetCount() { num_records_ = 0; }

 private:
  std::string* out_;
  uint64_t num_records_ = 0;
};

}  // namespace

Status SortBuffer::WriteRun(bool to_memory, SpillRun* run) {
  run->segments.assign(options_.num_partitions, RunSegment{});
  std::string& data = run->memory_data;
  StringRunSink sink(&data);

  const char* arena = arena_.data();
  size_t i = 0;
  for (uint32_t p = 0; p < options_.num_partitions; ++p) {
    RunSegment& seg = run->segments[p];
    seg.offset = data.size();
    sink.ResetCount();
    while (i < refs_.size() && refs_[i].partition == p) {
      if (options_.combiner) {
        // Collect the group of equal keys for this partition.
        const size_t group_start = i;
        const Slice group_key(arena + refs_[i].key_offset, refs_[i].key_len);
        std::vector<Slice> values;
        while (i < refs_.size() && refs_[i].partition == p &&
               options_.comparator->Compare(
                   Slice(arena + refs_[i].key_offset, refs_[i].key_len),
                   group_key) == 0) {
          values.emplace_back(arena + refs_[i].value_offset,
                              refs_[i].value_len);
          ++i;
        }
        counters_->Increment(kCombineInputRecords, i - group_start);
        const uint64_t before = sink.num_records();
        NGRAM_RETURN_NOT_OK(options_.combiner(group_key, values, &sink));
        counters_->Increment(kCombineOutputRecords,
                             sink.num_records() - before);
      } else {
        const RecordRef& r = refs_[i];
        NGRAM_RETURN_NOT_OK(
            sink.Append(Slice(arena + r.key_offset, r.key_len),
                        Slice(arena + r.value_offset, r.value_len)));
        ++i;
      }
    }
    seg.length = data.size() - seg.offset;
    seg.num_records = sink.num_records();
  }

  if (!to_memory) {
    // Persist to a spill file and drop the in-memory copy.
    char name[64];
    snprintf(name, sizeof(name), "/%s-%06llu.run",
             options_.spill_name_prefix.c_str(),
             static_cast<unsigned long long>(spill_file_seq_++));
    run->file_path = options_.work_dir + name;
    FILE* f = fopen(run->file_path.c_str(), "wb");
    if (f == nullptr) {
      return Status::IOError("create spill " + run->file_path + ": " +
                             strerror(errno));
    }
    const size_t written = fwrite(data.data(), 1, data.size(), f);
    const int close_rc = fclose(f);
    if (written != data.size() || close_rc != 0) {
      return Status::IOError("write spill " + run->file_path);
    }
    uint64_t total_records = 0;
    for (const auto& seg : run->segments) {
      total_records += seg.num_records;
    }
    counters_->Increment(kSpilledRecords, total_records);
    counters_->Increment(kSpillFiles, 1);
    run->memory_data.clear();
    run->memory_data.shrink_to_fit();
  }
  return Status::OK();
}

Status SortBuffer::SpillSorted(bool final_flush) {
  if (refs_.empty()) {
    return Status::OK();
  }
  SortRefs();
  // Keep the final flush in memory only if nothing was spilled before —
  // otherwise all runs go to disk so memory stays bounded.
  const bool to_memory = final_flush && runs_.empty();
  if (!to_memory && options_.work_dir.empty()) {
    return Status::InvalidArgument(
        "SortBuffer budget exceeded but no work_dir configured");
  }
  SpillRun run;
  NGRAM_RETURN_NOT_OK(WriteRun(to_memory, &run));
  runs_.push_back(std::move(run));
  if (!to_memory) {
    ++spill_count_;
  }
  arena_.clear();
  refs_.clear();
  return Status::OK();
}

Status SortBuffer::Finish(std::vector<SpillRun>* runs) {
  NGRAM_RETURN_NOT_OK(SpillSorted(/*final_flush=*/true));
  *runs = std::move(runs_);
  runs_.clear();
  return Status::OK();
}

}  // namespace ngram::mr
