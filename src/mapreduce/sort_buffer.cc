#include "mapreduce/sort_buffer.h"

#include <algorithm>
#include <cstdio>
#include <limits>

#include "mapreduce/runfile.h"
#include "util/logging.h"

namespace ngram::mr {

namespace {

/// Sink that appends framed records to a string and tracks record count.
class StringRunSink final : public RecordSink {
 public:
  explicit StringRunSink(std::string* out) : out_(out) {}
  Status Append(Slice key, Slice value) override {
    AppendRecord(out_, key, value);
    ++num_records_;
    return Status::OK();
  }
  uint64_t num_records() const { return num_records_; }

 private:
  std::string* out_;
  uint64_t num_records_ = 0;
};

}  // namespace

/// Zero-copy group iterator over one sorted bucket: advances while the
/// next ref's key compares equal to the last consumed one (cached sort
/// prefixes short-circuit the compare — the combiner groups under the sort
/// comparator, so a differing prefix proves a boundary). Arena memory is
/// stable for the whole bucket, so exposed slices never move.
class SortBuffer::GroupIterator final : public RawValueIterator {
 public:
  GroupIterator(const Bucket& bucket, size_t begin, const RawComparator* cmp)
      : arena_(bucket.arena.data()),
        refs_(bucket.refs),
        cmp_(cmp),
        current_(begin),
        next_(begin) {}

  bool NextValue() override {
    if (next_ >= refs_.size()) {
      return false;
    }
    if (consumed_ > 0) {
      const RecordRef& prev = refs_[next_ - 1];  // Last consumed.
      const RecordRef& cur = refs_[next_];
      if (cur.sort_prefix != prev.sort_prefix ||
          cmp_->Compare(KeyOf(cur), KeyOf(prev)) != 0) {
        return false;  // Boundary: `next_` starts the following group.
      }
    }
    current_ = next_++;
    ++consumed_;
    return true;
  }

  Slice key() const override { return KeyOf(refs_[current_]); }
  Slice value() const override {
    const RecordRef& r = refs_[current_];
    return Slice(arena_ + r.key_offset + r.key_len, r.value_len);
  }

  /// First ref index past this group (valid once fully consumed).
  size_t end_index() const { return next_; }

 private:
  Slice KeyOf(const RecordRef& r) const {
    return Slice(arena_ + r.key_offset, r.key_len);
  }

  const char* arena_;
  const std::vector<RecordRef>& refs_;
  const RawComparator* cmp_;
  size_t current_;  // Last consumed ref (== begin before the first call).
  size_t next_;     // Next ref to consume.
};

void RemoveRunFiles(const std::vector<SpillRun>& runs, IoEnv* env) {
  IoEnv* const e = ResolveEnv(env);
  for (const SpillRun& run : runs) {
    if (!run.file_path.empty()) {
      e->Unlink(run.file_path).IgnoreError();
    }
  }
}

SortBuffer::SortBuffer(Options options, TaskCounters* counters)
    : options_(std::move(options)), counters_(counters) {
  buckets_.resize(options_.num_partitions);
}

SortBuffer::~SortBuffer() {
  // A successful Finish() moved the runs out; anything left here belongs
  // to an abandoned attempt.
  RemoveRunFiles(runs_, options_.env);
}

Status SortBuffer::Add(uint32_t partition, Slice key, Slice value) {
  if (partition >= options_.num_partitions) {
    return Status::InvalidArgument("partition out of range");
  }
  const size_t record_bytes = key.size() + value.size();
  const size_t arena_cap =
      std::min<size_t>(options_.arena_limit_bytes,
                       std::numeric_limits<uint32_t>::max());
  if (record_bytes > arena_cap - buckets_[partition].arena.size()) {
    // RecordRef offsets are 32-bit; never let an arena outgrow them.
    // Spilling frees the arena; only a record that can never fit is an
    // error.
    if (record_bytes > arena_cap) {
      return Status::InvalidArgument(
          "record of " + std::to_string(record_bytes) +
          " bytes cannot fit the sort buffer arena offset space (" +
          std::to_string(arena_cap) + " bytes)");
    }
    NGRAM_RETURN_NOT_OK(SpillSorted(/*final_flush=*/false));
  }
  Bucket& bucket = buckets_[partition];
  RecordRef ref;
  ref.sort_prefix = options_.comparator->SortPrefix(key);
  ref.key_offset = static_cast<uint32_t>(bucket.arena.size());
  ref.key_len = static_cast<uint32_t>(key.size());
  ref.value_len = static_cast<uint32_t>(value.size());
  ref.seq = static_cast<uint32_t>(bucket.refs.size());
  bucket.arena.append(key.data(), key.size());
  bucket.arena.append(value.data(), value.size());
  bucket.refs.push_back(ref);
  bytes_used_ += record_bytes + kRecordOverhead;

  if (bytes_used_ >= options_.budget_bytes) {
    NGRAM_RETURN_NOT_OK(SpillSorted(/*final_flush=*/false));
  }
  return Status::OK();
}

void SortBuffer::SortBuckets() {
  const RawComparator* cmp = options_.comparator;
  for (Bucket& bucket : buckets_) {
    if (bucket.refs.size() < 2) {
      continue;
    }
    const char* arena = bucket.arena.data();
    // Plain sort + insertion-sequence tie-break == stable sort, without
    // stable_sort's merge passes and temp-buffer allocation.
    std::sort(bucket.refs.begin(), bucket.refs.end(),
              [cmp, arena](const RecordRef& a, const RecordRef& b) {
                if (a.sort_prefix != b.sort_prefix) {
                  return a.sort_prefix < b.sort_prefix;
                }
                const int c = cmp->Compare(
                    Slice(arena + a.key_offset, a.key_len),
                    Slice(arena + b.key_offset, b.key_len));
                if (c != 0) {
                  return c < 0;
                }
                return a.seq < b.seq;
              });
  }
}

Status SortBuffer::EmitBucket(const Bucket& bucket, RecordSink* sink) {
  const char* arena = bucket.arena.data();
  const std::vector<RecordRef>& refs = bucket.refs;
  if (!options_.combiner) {
    for (const RecordRef& r : refs) {
      NGRAM_RETURN_NOT_OK(sink->Append(
          Slice(arena + r.key_offset, r.key_len),
          Slice(arena + r.key_offset + r.key_len, r.value_len)));
    }
    return Status::OK();
  }
  // Stream each comparator-equal group through the combiner; values are
  // never materialized into a side vector.
  size_t i = 0;
  while (i < refs.size()) {
    GroupIterator group(bucket, i, options_.comparator);
    const Slice group_key(arena + refs[i].key_offset, refs[i].key_len);
    NGRAM_RETURN_NOT_OK(options_.combiner(group_key, &group, sink));
    group.Count();  // Skip whatever the combiner left unconsumed.
    counters_->Increment(kCombineInputRecords, group.consumed());
    i = group.end_index();
  }
  return Status::OK();
}

Status SortBuffer::WriteRunToMemory(SpillRun* run) {
  run->segments.assign(options_.num_partitions, RunSegment{});
  if (!options_.combiner) {
    // Zero-copy: hand the sorted bucket arenas to the run as-is. The
    // merge reads records in place through the refs — no framed copy of
    // the map output is ever materialized.
    run->buckets.resize(options_.num_partitions);
    for (uint32_t p = 0; p < options_.num_partitions; ++p) {
      run->segments[p].num_records = buckets_[p].refs.size();
      run->buckets[p].arena = std::move(buckets_[p].arena);
      run->buckets[p].refs = std::move(buckets_[p].refs);
    }
    return Status::OK();
  }
  std::string& data = run->memory_data;
  for (uint32_t p = 0; p < options_.num_partitions; ++p) {
    RunSegment& seg = run->segments[p];
    seg.offset = data.size();
    StringRunSink sink(&data);
    NGRAM_RETURN_NOT_OK(EmitBucket(buckets_[p], &sink));
    seg.length = data.size() - seg.offset;
    seg.num_records = sink.num_records();
    counters_->Increment(kCombineOutputRecords, sink.num_records());
  }
  return Status::OK();
}

Status SortBuffer::WriteRunToFile(SpillRun* run) {
  run->segments.assign(options_.num_partitions, RunSegment{});
  char name[64];
  snprintf(name, sizeof(name), "/%s-%06llu.run",
           options_.spill_name_prefix.c_str(),
           static_cast<unsigned long long>(spill_file_seq_++));
  run->file_path = options_.work_dir + name;

  RunWriterOptions writer_options;
  writer_options.compress = options_.compress_runs;
  // Framed output never exceeds bytes_used_ (record headers are smaller
  // than the per-record ref overhead), so small spills get a small buffer.
  // The buffer itself is task-owned and reused across this task's spills,
  // growing (never past spill_buffer_bytes) if a later spill wants more.
  const size_t want_bytes =
      std::max<size_t>(1, std::min(options_.spill_buffer_bytes, bytes_used_));
  if (want_bytes > spill_write_buffer_bytes_) {
    spill_write_buffer_ = std::make_unique<char[]>(want_bytes);
    spill_write_buffer_bytes_ = want_bytes;
  }
  writer_options.buffer_bytes = spill_write_buffer_bytes_;
  writer_options.external_buffer = spill_write_buffer_.get();
  writer_options.checksum = options_.checksum_spills;
  writer_options.env = options_.env;
  std::unique_ptr<RunWriter> writer =
      NewRunWriter(run->file_path, writer_options);
  NGRAM_RETURN_NOT_OK(writer->Open());

  uint64_t total_records = 0;
  for (uint32_t p = 0; p < options_.num_partitions; ++p) {
    RunSegment& seg = run->segments[p];
    seg.offset = writer->bytes_written();
    const uint64_t records_before = writer->records_written();
    RunWriterSink sink(writer.get());
    Status st = EmitBucket(buckets_[p], &sink);
    if (st.ok()) {
      // Segment extents must cover whole blocks (no-op for raw runs).
      st = writer->FinishSegment();
    }
    if (!st.ok()) {
      writer->Abandon();  // Unlinks the partially written spill file.
      return st;
    }
    seg.length = writer->bytes_written() - seg.offset;
    seg.num_records = writer->records_written() - records_before;
    total_records += seg.num_records;
    if (options_.combiner) {
      counters_->Increment(kCombineOutputRecords, seg.num_records);
    }
  }
  NGRAM_RETURN_NOT_OK(writer->Close());  // Close() unlinks on failure.
  run->block_format = writer->block_format();
  if (options_.checksum_spills && !run->block_format) {
    run->crc32 = writer->crc32();
    run->has_crc = true;
  }
  counters_->Increment(kSpilledRecords, total_records);
  counters_->Increment(kSpillFiles, 1);
  counters_->Increment(kRunBytesRaw, writer->raw_bytes());
  counters_->Increment(kRunBytesWritten, writer->bytes_written());
  return Status::OK();
}

Status SortBuffer::SpillSorted(bool final_flush) {
  if (bytes_used_ == 0) {
    return Status::OK();
  }
  SortBuckets();
  // Keep the final flush in memory only if nothing was spilled before —
  // otherwise all runs go to disk so memory stays bounded. The fetch
  // shuffle opts out: served runs must be file-backed.
  const bool to_memory =
      final_flush && runs_.empty() && !options_.persist_final_flush;
  if (!to_memory && options_.work_dir.empty()) {
    return Status::InvalidArgument(
        "SortBuffer budget exceeded but no work_dir configured");
  }
  SpillRun run;
  NGRAM_RETURN_NOT_OK(to_memory ? WriteRunToMemory(&run)
                                : WriteRunToFile(&run));
  runs_.push_back(std::move(run));
  if (!to_memory) {
    ++spill_count_;
  }
  for (Bucket& bucket : buckets_) {
    bucket.arena.clear();
    bucket.refs.clear();
  }
  bytes_used_ = 0;
  return Status::OK();
}

Status SortBuffer::Finish(std::vector<SpillRun>* runs) {
  NGRAM_RETURN_NOT_OK(SpillSorted(/*final_flush=*/true));
  *runs = std::move(runs_);
  runs_.clear();
  return Status::OK();
}

}  // namespace ngram::mr
