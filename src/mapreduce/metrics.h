// Per-job and per-run measurements: wallclock plus Hadoop-style counters.
// These back the paper's three reported measures (Section VII-A): wallclock
// time, bytes transferred (MAP_OUTPUT_BYTES), and number of records
// (MAP_OUTPUT_RECORDS), aggregated over all jobs of a method run.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "mapreduce/counters.h"

namespace ngram::mr {

/// Measurements for one MapReduce job.
struct JobMetrics {
  std::string job_name;
  double wallclock_ms = 0;
  double map_phase_ms = 0;
  double reduce_phase_ms = 0;
  std::map<std::string, uint64_t> counters;

  uint64_t Counter(const std::string& name) const {
    auto it = counters.find(name);
    return it == counters.end() ? 0 : it->second;
  }
};

/// Aggregate over every job a method launched (the paper's measures sum
/// over all Hadoop jobs of APRIORI methods).
struct RunMetrics {
  std::vector<JobMetrics> jobs;

  void Add(JobMetrics m) { jobs.push_back(std::move(m)); }

  int num_jobs() const { return static_cast<int>(jobs.size()); }

  double total_wallclock_ms() const {
    double total = 0;
    for (const auto& j : jobs) {
      total += j.wallclock_ms;
    }
    return total;
  }

  double total_map_phase_ms() const {
    double total = 0;
    for (const auto& j : jobs) {
      total += j.map_phase_ms;
    }
    return total;
  }

  double total_reduce_phase_ms() const {
    double total = 0;
    for (const auto& j : jobs) {
      total += j.reduce_phase_ms;
    }
    return total;
  }

  uint64_t TotalCounter(const std::string& name) const {
    uint64_t total = 0;
    for (const auto& j : jobs) {
      total += j.Counter(name);
    }
    return total;
  }

  uint64_t map_output_records() const {
    return TotalCounter(kMapOutputRecords);
  }
  uint64_t map_output_bytes() const { return TotalCounter(kMapOutputBytes); }
};

}  // namespace ngram::mr
