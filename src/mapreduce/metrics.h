// Per-job and per-run measurements: wallclock plus Hadoop-style counters.
// These back the paper's three reported measures (Section VII-A): wallclock
// time, bytes transferred (MAP_OUTPUT_BYTES), and number of records
// (MAP_OUTPUT_RECORDS), aggregated over all jobs of a method run.
#pragma once

#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "mapreduce/counters.h"

namespace ngram::mr {

/// Measurements for one MapReduce job.
struct JobMetrics {
  std::string job_name;
  double wallclock_ms = 0;
  double map_phase_ms = 0;
  double reduce_phase_ms = 0;
  std::map<std::string, uint64_t> counters;

  uint64_t Counter(const std::string& name) const {
    auto it = counters.find(name);
    return it == counters.end() ? 0 : it->second;
  }
};

/// Per-round accounting for a chained (multi-job) pipeline: every round's
/// wallclock split plus its boundary traffic — the serialized bytes its
/// mappers read (for round k+1 this is exactly round k's output, i.e. the
/// job-boundary cost) and the bytes it shuffled. Built from RunMetrics so
/// multi-job drivers report every round, not just the last job's counters.
struct PipelineMetrics {
  struct Round {
    std::string job_name;
    double wallclock_ms = 0;
    double map_phase_ms = 0;
    double reduce_phase_ms = 0;
    uint64_t map_input_records = 0;
    uint64_t map_input_bytes = 0;   // Job-boundary bytes read by mappers.
    uint64_t map_output_records = 0;
    uint64_t map_output_bytes = 0;  // Shuffle bytes.
    uint64_t reduce_output_records = 0;
    // Spill/merge I/O, broken out per phase: what this round's map tasks
    // spilled, what the map-side final merges re-spilled, and what the
    // reduce-side intermediate passes re-spilled (the job-level
    // MERGE_PASSES / INTERMEDIATE_MERGE_BYTES split by phase).
    uint64_t spill_files = 0;
    uint64_t spilled_records = 0;
    uint64_t map_merge_passes = 0;
    uint64_t map_merge_bytes = 0;
    uint64_t reduce_merge_passes = 0;
    uint64_t reduce_merge_bytes = 0;
    // Early shuffle (shuffle_slots > 0): intermediate passes run before
    // the map barrier, and the post-barrier source-prep latency that
    // remained (summed over successful reduce attempts).
    uint64_t early_merge_passes = 0;
    uint64_t early_merge_bytes = 0;
    uint64_t barrier_wait_ms = 0;
    // Fetch shuffle (fetch_shuffle on): transport payload bytes pulled,
    // requests retried over fresh connections, and time map attempts
    // spent mirroring their output through the shuffle server.
    uint64_t shuffle_fetch_bytes = 0;
    uint64_t fetch_retries = 0;
    uint64_t fetch_wait_ms = 0;
    // At-rest run bytes: raw-framing equivalent vs actually written
    // (the compress_runs ratio for this round; equal with the knob off).
    uint64_t run_bytes_raw = 0;
    uint64_t run_bytes_written = 0;
  };

  std::vector<Round> rounds;

  int num_rounds() const { return static_cast<int>(rounds.size()); }

  uint64_t total_boundary_bytes() const {
    uint64_t total = 0;
    for (const auto& r : rounds) {
      total += r.map_input_bytes;
    }
    return total;
  }

  uint64_t total_shuffle_bytes() const {
    uint64_t total = 0;
    for (const auto& r : rounds) {
      total += r.map_output_bytes;
    }
    return total;
  }

  double total_wallclock_ms() const {
    double total = 0;
    for (const auto& r : rounds) {
      total += r.wallclock_ms;
    }
    return total;
  }

  /// One line per round, e.g. for the end-of-run driver log.
  std::string ToString() const {
    std::ostringstream out;
    for (size_t i = 0; i < rounds.size(); ++i) {
      const Round& r = rounds[i];
      out << "round " << i + 1 << "/" << rounds.size() << " '" << r.job_name
          << "': " << r.wallclock_ms << " ms (map " << r.map_phase_ms
          << " / reduce " << r.reduce_phase_ms << "), boundary-in "
          << r.map_input_bytes << " B, shuffle " << r.map_output_bytes
          << " B, out " << r.reduce_output_records << " records";
      if (r.spill_files > 0) {
        out << ", spilled " << r.spill_files << " runs / "
            << r.spilled_records << " records";
        if (r.run_bytes_raw > 0) {
          out << " (" << r.run_bytes_written << " B at rest / "
              << r.run_bytes_raw << " B raw)";
        }
      }
      if (r.map_merge_passes > 0 || r.reduce_merge_passes > 0) {
        out << ", re-spill map " << r.map_merge_bytes << " B in "
            << r.map_merge_passes << " pass(es) + reduce "
            << r.reduce_merge_bytes << " B in " << r.reduce_merge_passes
            << " pass(es)";
      }
      if (r.early_merge_passes > 0) {
        out << ", early-merged " << r.early_merge_bytes << " B in "
            << r.early_merge_passes << " eager pass(es), barrier wait "
            << r.barrier_wait_ms << " ms";
      }
      if (r.shuffle_fetch_bytes > 0 || r.fetch_retries > 0) {
        out << ", fetched " << r.shuffle_fetch_bytes
            << " B over transport (" << r.fetch_retries
            << " retried request(s), " << r.fetch_wait_ms
            << " ms fetch wait)";
      }
      if (i + 1 < rounds.size()) {
        out << "\n";
      }
    }
    return out.str();
  }
};

/// Aggregate over every job a method launched (the paper's measures sum
/// over all Hadoop jobs of APRIORI methods).
struct RunMetrics {
  std::vector<JobMetrics> jobs;

  void Add(JobMetrics m) { jobs.push_back(std::move(m)); }

  /// Per-round pipeline view of this run's jobs.
  PipelineMetrics pipeline() const {
    PipelineMetrics p;
    p.rounds.reserve(jobs.size());
    for (const auto& j : jobs) {
      PipelineMetrics::Round r;
      r.job_name = j.job_name;
      r.wallclock_ms = j.wallclock_ms;
      r.map_phase_ms = j.map_phase_ms;
      r.reduce_phase_ms = j.reduce_phase_ms;
      r.map_input_records = j.Counter(kMapInputRecords);
      r.map_input_bytes = j.Counter(kMapInputBytes);
      r.map_output_records = j.Counter(kMapOutputRecords);
      r.map_output_bytes = j.Counter(kMapOutputBytes);
      r.reduce_output_records = j.Counter(kReduceOutputRecords);
      r.spill_files = j.Counter(kSpillFiles);
      r.spilled_records = j.Counter(kSpilledRecords);
      r.map_merge_passes = j.Counter(kMapMergePasses);
      r.map_merge_bytes = j.Counter(kMapIntermediateMergeBytes);
      r.reduce_merge_passes = j.Counter(kReduceMergePasses);
      r.reduce_merge_bytes = j.Counter(kReduceIntermediateMergeBytes);
      r.early_merge_passes = j.Counter(kEarlyMergePasses);
      r.early_merge_bytes = j.Counter(kEarlyMergeBytes);
      r.barrier_wait_ms = j.Counter(kBarrierWaitMs);
      r.shuffle_fetch_bytes = j.Counter(kShuffleFetchBytes);
      r.fetch_retries = j.Counter(kFetchRetries);
      r.fetch_wait_ms = j.Counter(kFetchWaitMs);
      r.run_bytes_raw = j.Counter(kRunBytesRaw);
      r.run_bytes_written = j.Counter(kRunBytesWritten);
      p.rounds.push_back(std::move(r));
    }
    return p;
  }

  int num_jobs() const { return static_cast<int>(jobs.size()); }

  double total_wallclock_ms() const {
    double total = 0;
    for (const auto& j : jobs) {
      total += j.wallclock_ms;
    }
    return total;
  }

  double total_map_phase_ms() const {
    double total = 0;
    for (const auto& j : jobs) {
      total += j.map_phase_ms;
    }
    return total;
  }

  double total_reduce_phase_ms() const {
    double total = 0;
    for (const auto& j : jobs) {
      total += j.reduce_phase_ms;
    }
    return total;
  }

  uint64_t TotalCounter(const std::string& name) const {
    uint64_t total = 0;
    for (const auto& j : jobs) {
      total += j.Counter(name);
    }
    return total;
  }

  uint64_t map_output_records() const {
    return TotalCounter(kMapOutputRecords);
  }
  uint64_t map_output_bytes() const { return TotalCounter(kMapOutputBytes); }
};

}  // namespace ngram::mr
