// Map-side sort buffer: accumulates emitted records, sorts them by
// (partition, key) under the job's raw comparator, optionally runs the
// combiner, and spills sorted runs to disk when a byte budget is exceeded —
// the same mechanics as Hadoop's MapOutputBuffer.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "mapreduce/comparator.h"
#include "mapreduce/counters.h"
#include "mapreduce/record.h"
#include "util/macros.h"
#include "util/status.h"

namespace ngram::mr {

/// Byte extent of one partition inside a run.
struct RunSegment {
  uint64_t offset = 0;
  uint64_t length = 0;
  uint64_t num_records = 0;
};

/// One sorted run: per-partition contiguous record groups, either in memory
/// (small map outputs) or in a spill file.
struct SpillRun {
  std::string file_path;        // Empty when in-memory.
  std::string memory_data;      // Used when file_path is empty.
  std::vector<RunSegment> segments;  // Indexed by partition.

  bool in_memory() const { return file_path.empty(); }
};

/// Raw (serialized) view of a combiner: receives one key group and appends
/// combined records to the sink. Implemented by the typed glue in job.h.
using RawCombineFn = std::function<Status(
    Slice key, const std::vector<Slice>& values, RecordSink* sink)>;

/// \brief Collects map output for one task and produces sorted runs.
///
/// Add() appends records tagged with their partition; when the accumulated
/// bytes exceed `budget_bytes` the buffer sorts and spills to a file in
/// `work_dir`. Finish() flushes the remainder (kept in memory if nothing
/// was ever spilled) and returns all runs.
class SortBuffer {
 public:
  struct Options {
    uint32_t num_partitions = 1;
    size_t budget_bytes = 64 * 1024 * 1024;
    const RawComparator* comparator = BytewiseComparator::Instance();
    RawCombineFn combiner;        // Optional.
    std::string work_dir;         // Required if spills can happen.
    std::string spill_name_prefix = "spill";
  };

  SortBuffer(Options options, TaskCounters* counters);
  NGRAM_DISALLOW_COPY_AND_ASSIGN(SortBuffer);

  /// Appends one record destined for `partition`.
  Status Add(uint32_t partition, Slice key, Slice value);

  /// Sorts/flushes the tail and moves all runs to `*runs`.
  Status Finish(std::vector<SpillRun>* runs);

  uint64_t spill_count() const { return spill_count_; }

 private:
  struct RecordRef {
    uint32_t partition;
    uint32_t key_offset;   // Into arena_.
    uint32_t key_len;
    uint32_t value_offset;
    uint32_t value_len;
  };

  Status SpillSorted(bool final_flush);
  void SortRefs();
  Status WriteRun(bool to_memory, SpillRun* run);

  const Options options_;
  TaskCounters* counters_;
  std::string arena_;
  std::vector<RecordRef> refs_;
  std::vector<SpillRun> runs_;
  uint64_t spill_count_ = 0;
  uint64_t spill_file_seq_ = 0;
};

}  // namespace ngram::mr
