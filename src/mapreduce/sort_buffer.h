// Map-side sort buffer: accumulates emitted records, sorts them by key
// under the job's raw comparator, optionally runs the combiner, and spills
// sorted runs to disk when a byte budget is exceeded — the same mechanics
// as Hadoop's MapOutputBuffer.
//
// Layout: records land directly in their destination partition's bucket
// (arena + ref vector), so sorting is per-bucket and comparisons never
// branch on the partition, and a run's partition-major order falls out of
// bucket iteration instead of a sort key. Spills stream through a
// fixed-size SpillWriter buffer; a run is never materialized in memory.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "mapreduce/comparator.h"
#include "mapreduce/counters.h"
#include "mapreduce/record.h"
#include "mapreduce/spill_writer.h"
#include "util/macros.h"
#include "util/status.h"

namespace ngram::mr {

/// Byte extent of one partition inside a run.
struct RunSegment {
  uint64_t offset = 0;
  uint64_t length = 0;
  uint64_t num_records = 0;
};

/// Reference to one record inside its bucket's arena. Value bytes
/// immediately follow the key bytes, so one offset locates both. The
/// cached sort-key prefix resolves most comparisons without touching
/// the arena. `seq` (the insertion index, free inside the struct's
/// padding) breaks ties so a plain std::sort is stable — no
/// stable_sort merge passes or temp buffer.
struct SortedRecordRef {
  uint64_t sort_prefix;  // RawComparator::SortPrefix of the key.
  uint32_t key_offset;   // Into the bucket's arena.
  uint32_t key_len;
  uint32_t value_len;
  uint32_t seq;          // Insertion order within the bucket.
};

/// One sorted run: per-partition contiguous record groups — in a spill
/// file, in framed memory (combined final flushes), or zero-copy as the
/// sorted bucket arenas themselves (uncombined final flushes: the merge
/// reads records in place through the refs; no framed copy is ever made).
struct SpillRun {
  /// Zero-copy form: one entry per partition.
  struct MemoryBucket {
    std::string arena;
    std::vector<SortedRecordRef> refs;  // Sorted record order.
  };

  std::string file_path;        // Empty when in-memory.
  std::string memory_data;      // Framed in-memory form.
  std::vector<MemoryBucket> buckets;  // Zero-copy in-memory form.
  std::vector<RunSegment> segments;  // Indexed by partition.
  uint32_t crc32 = 0;           // Whole-file CRC when checksummed (raw).
  bool has_crc = false;
  /// File-backed form is the prefix-compressed block format (runfile.h):
  /// segment extents cover whole blocks, readers must decode with
  /// RunFormat::kBlocks, and integrity is per-block (has_crc stays
  /// false — there is no whole-file CRC to verify separately).
  bool block_format = false;

  bool in_memory() const { return file_path.empty(); }
  bool zero_copy() const { return !buckets.empty(); }
};

/// Unlinks the spill files (if any) behind `runs`; in-memory runs are
/// untouched and the vector itself is left alone. Shuffle runs are
/// job-private, so the driver removes them for discarded task attempts
/// and when the job finishes — a user-provided work_dir is never left
/// with orphaned run files.
/// Unlinks the files behind `runs` through `env` (nullptr means
/// IoEnv::Default()), ignoring missing ones.
void RemoveRunFiles(const std::vector<SpillRun>& runs, IoEnv* env = nullptr);

/// Raw (serialized) view of a combiner: receives one key group — the
/// leading key plus a lazily-advancing zero-copy value iterator — and
/// appends combined records to the sink. `key` points into the bucket
/// arena and stays valid for the whole call; values the combiner does not
/// consume are skipped. Implemented by the typed glue in job.h.
using RawCombineFn = std::function<Status(
    Slice key, RawValueIterator* values, RecordSink* sink)>;

/// \brief Collects map output for one task and produces sorted runs.
///
/// Add() appends records into their partition's bucket; when the
/// accumulated bytes exceed `budget_bytes` the buckets are sorted and
/// streamed to a spill file in `work_dir`. Finish() flushes the remainder
/// (kept in memory if nothing was ever spilled) and returns all runs.
class SortBuffer {
 public:
  struct Options {
    uint32_t num_partitions = 1;
    size_t budget_bytes = 64 * 1024 * 1024;
    const RawComparator* comparator = BytewiseComparator::Instance();
    RawCombineFn combiner;        // Optional.
    std::string work_dir;         // Required if spills can happen.
    std::string spill_name_prefix = "spill";
    /// Size of the streaming spill write buffer.
    size_t spill_buffer_bytes = SpillWriter::kDefaultBufferBytes;
    /// Spill runs in the prefix-compressed block format (runfile.h;
    /// JobConfig::compress_runs). Off = raw framed records.
    bool compress_runs = true;
    /// Maintain a per-run CRC-32 on raw-format spill files (off on the
    /// hot path; block-format runs carry per-block CRCs regardless).
    bool checksum_spills = false;
    /// Force the final flush to disk even when nothing ever spilled
    /// (normally it stays in memory, zero-copy). The fetch shuffle needs
    /// every run file-backed so the MapOutputServer can serve its
    /// extents; the record *stream* is unchanged, so job output is
    /// identical — only spill-accounting counters move.
    bool persist_final_flush = false;
    /// Hard cap on one partition's arena: RecordRef offsets are 32-bit,
    /// so this can never exceed 4 GiB (values above are clamped). Only
    /// tests lower it.
    size_t arena_limit_bytes = 0xffffffffu;
    /// I/O environment for spill files; nullptr means IoEnv::Default().
    IoEnv* env = nullptr;
  };

  SortBuffer(Options options, TaskCounters* counters);
  /// Unlinks any spill files still held (i.e. Finish() was never reached:
  /// the task attempt failed mid-map and is being discarded).
  ~SortBuffer();
  NGRAM_DISALLOW_COPY_AND_ASSIGN(SortBuffer);

  /// Appends one record destined for `partition`. Records larger than the
  /// budget are admitted and spill immediately; a record that cannot fit
  /// the 32-bit arena offset space at all is rejected with
  /// InvalidArgument instead of silently wrapping offsets.
  Status Add(uint32_t partition, Slice key, Slice value);

  /// Sorts/flushes the tail and moves all runs to `*runs`.
  Status Finish(std::vector<SpillRun>* runs);

  uint64_t spill_count() const { return spill_count_; }

 private:
  using RecordRef = SortedRecordRef;

  /// Bytes a record occupies in the buffer beyond its key/value payload.
  static constexpr size_t kRecordOverhead = sizeof(RecordRef);

  /// Per-partition record storage; sorted independently of other buckets.
  /// (Same shape as SpillRun::MemoryBucket — an uncombined final flush
  /// moves these wholesale into the run.)
  struct Bucket {
    std::string arena;
    std::vector<RecordRef> refs;
  };

  /// Zero-copy group iterator over a sorted bucket (the combiner's view).
  class GroupIterator;

  Status SpillSorted(bool final_flush);
  void SortBuckets();
  /// Emits one sorted bucket (optionally through the combiner) into `sink`,
  /// which is either the in-memory run sink or the spill-writer sink.
  Status EmitBucket(const Bucket& bucket, RecordSink* sink);
  Status WriteRunToMemory(SpillRun* run);
  Status WriteRunToFile(SpillRun* run);

  const Options options_;
  TaskCounters* counters_;
  std::vector<Bucket> buckets_;
  size_t bytes_used_ = 0;  // Arenas + refs, across all buckets.
  std::vector<SpillRun> runs_;
  uint64_t spill_count_ = 0;
  uint64_t spill_file_seq_ = 0;
  /// One write buffer per task, lent to every SpillWriter this buffer
  /// creates — spill-heavy tasks no longer allocate per spill. Grows (up
  /// to `spill_buffer_bytes`) if a later spill wants a larger buffer.
  std::unique_ptr<char[]> spill_write_buffer_;
  size_t spill_write_buffer_bytes_ = 0;
};

}  // namespace ngram::mr
