#include "mapreduce/merge.h"

namespace ngram::mr {

std::unique_ptr<RecordReader> OpenRunPartition(const SpillRun& run,
                                               uint32_t partition) {
  const RunSegment& seg = run.segments[partition];
  if (seg.num_records == 0) {
    return nullptr;
  }
  if (run.in_memory()) {
    return std::make_unique<MemoryRecordReader>(
        Slice(run.memory_data.data() + seg.offset, seg.length));
  }
  return std::make_unique<FileRecordReader>(run.file_path, seg.offset,
                                            seg.length);
}

KWayMerger::KWayMerger(std::vector<std::unique_ptr<RecordReader>> sources,
                       const RawComparator* comparator)
    : sources_(std::move(sources)), comparator_(comparator) {}

bool KWayMerger::Less(size_t a, size_t b) const {
  const int c = comparator_->Compare(sources_[a]->key(), sources_[b]->key());
  if (c != 0) {
    return c < 0;
  }
  return a < b;  // Stable tie-break by source index.
}

void KWayMerger::SiftUp(size_t i) {
  while (i > 0) {
    const size_t parent = (i - 1) / 2;
    if (!Less(heap_[i], heap_[parent])) {
      break;
    }
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
}

void KWayMerger::SiftDown(size_t i) {
  const size_t n = heap_.size();
  for (;;) {
    const size_t left = 2 * i + 1;
    const size_t right = 2 * i + 2;
    size_t smallest = i;
    if (left < n && Less(heap_[left], heap_[smallest])) {
      smallest = left;
    }
    if (right < n && Less(heap_[right], heap_[smallest])) {
      smallest = right;
    }
    if (smallest == i) {
      return;
    }
    std::swap(heap_[i], heap_[smallest]);
    i = smallest;
  }
}

void KWayMerger::PushSource(size_t source) {
  heap_.push_back(source);
  SiftUp(heap_.size() - 1);
}

bool KWayMerger::Next() {
  if (!status_.ok()) {
    return false;
  }
  if (!started_) {
    started_ = true;
    for (size_t i = 0; i < sources_.size(); ++i) {
      if (sources_[i] == nullptr) {
        continue;
      }
      if (sources_[i]->Next()) {
        PushSource(i);
      } else if (!sources_[i]->status().ok()) {
        status_ = sources_[i]->status();
        return false;
      }
    }
  } else if (current_source_ != SIZE_MAX) {
    // Advance the source we last surfaced, then restore heap order.
    RecordReader* src = sources_[current_source_].get();
    if (src->Next()) {
      SiftDown(0);
      SiftUp(0);  // Key changed; re-establish both directions.
    } else {
      if (!src->status().ok()) {
        status_ = src->status();
        return false;
      }
      std::swap(heap_.front(), heap_.back());
      heap_.pop_back();
      if (!heap_.empty()) {
        SiftDown(0);
      }
    }
  }
  if (heap_.empty()) {
    current_source_ = SIZE_MAX;
    return false;
  }
  current_source_ = heap_.front();
  current_key_ = sources_[current_source_]->key();
  current_value_ = sources_[current_source_]->value();
  return true;
}

}  // namespace ngram::mr
