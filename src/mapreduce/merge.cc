#include "mapreduce/merge.h"

namespace ngram::mr {

namespace {

/// Reader over a zero-copy in-memory run partition: records surface
/// straight out of the sorted bucket arena through its refs — no frame
/// parsing, no copy. The arena is stable for the run's lifetime, so the
/// lookback contract holds trivially.
class BucketRunReader final : public RecordReader {
 public:
  explicit BucketRunReader(const SpillRun::MemoryBucket* bucket)
      : bucket_(bucket) {}

  bool Next() override {
    if (i_ >= bucket_->refs.size()) {
      return false;
    }
    const SortedRecordRef& r = bucket_->refs[i_++];
    const char* base = bucket_->arena.data() + r.key_offset;
    key_ = Slice(base, r.key_len);
    value_ = Slice(base + r.key_len, r.value_len);
    has_sort_prefix_ = true;
    sort_prefix_ = r.sort_prefix;
    return true;
  }

 private:
  const SpillRun::MemoryBucket* bucket_;
  size_t i_ = 0;
};

}  // namespace

std::unique_ptr<RecordReader> OpenRunPartition(const SpillRun& run,
                                               uint32_t partition) {
  const RunSegment& seg = run.segments[partition];
  if (seg.num_records == 0) {
    return nullptr;
  }
  if (run.zero_copy()) {
    return std::make_unique<BucketRunReader>(&run.buckets[partition]);
  }
  if (run.in_memory()) {
    return std::make_unique<MemoryRecordReader>(
        Slice(run.memory_data.data() + seg.offset, seg.length));
  }
  return std::make_unique<FileRecordReader>(run.file_path, seg.offset,
                                            seg.length);
}

KWayMerger::KWayMerger(std::vector<std::unique_ptr<RecordReader>> sources,
                       const RawComparator* comparator)
    : sources_(std::move(sources)),
      comparator_(comparator),
      num_sources_(sources_.size()),
      keys_(sources_.size()),
      prefixes_(sources_.size(), 0),
      exhausted_(sources_.size(), 0),
      losers_(sources_.size(), kNone) {}

bool KWayMerger::Less(size_t a, size_t b) const {
  if (a == kNone || exhausted_[a]) {
    return false;
  }
  if (b == kNone || exhausted_[b]) {
    return true;
  }
  if (prefixes_[a] != prefixes_[b]) {
    return prefixes_[a] < prefixes_[b];
  }
  const int c = comparator_->Compare(keys_[a], keys_[b]);
  if (c != 0) {
    return c < 0;
  }
  return a < b;  // Stable tie-break by source index.
}

void KWayMerger::AdvanceSource(size_t s) {
  RecordReader* src = sources_[s].get();
  if (src == nullptr) {
    exhausted_[s] = 1;
    return;
  }
  if (src->Next()) {
    keys_[s] = src->key();
    prefixes_[s] = src->has_sort_prefix() ? src->sort_prefix()
                                          : comparator_->SortPrefix(keys_[s]);
  } else {
    if (!src->status().ok() && status_.ok()) {
      status_ = src->status();
    }
    exhausted_[s] = 1;
    keys_[s] = Slice();
  }
}

size_t KWayMerger::BuildTree(size_t t) {
  if (t >= num_sources_) {
    return t - num_sources_;  // Leaf: node k+s holds source s.
  }
  const size_t left = BuildTree(2 * t);
  const size_t right = BuildTree(2 * t + 1);
  if (Less(right, left)) {
    losers_[t] = left;
    return right;
  }
  losers_[t] = right;
  return left;
}

void KWayMerger::Replay(size_t s) {
  size_t winner = s;
  for (size_t t = (s + num_sources_) / 2; t > 0; t /= 2) {
    if (Less(losers_[t], winner)) {
      std::swap(losers_[t], winner);
    }
  }
  winner_ = winner;
}

bool KWayMerger::Next() {
  if (!status_.ok()) {
    return false;
  }
  if (!started_) {
    started_ = true;
    for (size_t s = 0; s < num_sources_; ++s) {
      AdvanceSource(s);
    }
    if (!status_.ok()) {
      return false;
    }
    if (num_sources_ == 0) {
      return false;
    }
    winner_ = num_sources_ == 1 ? 0 : BuildTree(1);
  } else if (winner_ != kNone) {
    // Pull the next record of the source we last surfaced, then replay its
    // path to the root; every other node of the tree is unaffected.
    AdvanceSource(winner_);
    if (!status_.ok()) {
      return false;
    }
    if (num_sources_ > 1) {
      Replay(winner_);
    }
  }
  if (winner_ == kNone || exhausted_[winner_]) {
    winner_ = kNone;
    return false;
  }
  current_key_ = keys_[winner_];
  current_value_ = sources_[winner_]->value();
  current_prefix_ = prefixes_[winner_];
  return true;
}

}  // namespace ngram::mr
