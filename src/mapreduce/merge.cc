#include "mapreduce/merge.h"

#include <algorithm>
#include <cstdio>

#include "mapreduce/context.h"
#include "mapreduce/runfile.h"
#include "mapreduce/spill_writer.h"

namespace ngram::mr {

namespace {

/// Reader over a zero-copy in-memory run partition: records surface
/// straight out of the sorted bucket arena through its refs — no frame
/// parsing, no copy. The arena is stable for the run's lifetime, so the
/// lookback contract holds trivially.
class BucketRunReader final : public RecordReader {
 public:
  explicit BucketRunReader(const SpillRun::MemoryBucket* bucket)
      : bucket_(bucket) {}

  bool Next() override {
    if (i_ >= bucket_->refs.size()) {
      return false;
    }
    const SortedRecordRef& r = bucket_->refs[i_++];
    const char* base = bucket_->arena.data() + r.key_offset;
    key_ = Slice(base, r.key_len);
    value_ = Slice(base + r.key_len, r.value_len);
    has_sort_prefix_ = true;
    sort_prefix_ = r.sort_prefix;
    return true;
  }

 private:
  const SpillRun::MemoryBucket* bucket_;
  size_t i_ = 0;
};

/// Drains `merger` into `sink`. Without a combiner, records are copied
/// verbatim (order already merged-stable). With one, each sort-equal key
/// group streams through it — the merge-pass equivalent of the spill-time
/// combiner, now aggregating *across* runs. The leading key is copied
/// once per group: unlike the bucket-arena combiner path, merge sources
/// only keep a key alive across one advance (the lookback contract),
/// which is shorter than a whole group.
Status DrainMerger(KWayMerger* merger, const RawCombineFn& combiner,
                   const RawComparator* comparator, RecordSink* sink,
                   TaskCounters* counters) {
  Status st;
  if (!combiner) {
    while (merger->Next()) {
      NGRAM_RETURN_NOT_OK(sink->Append(merger->key(), merger->value()));
    }
    return merger->status();
  }
  std::string key_scratch;  // Reused across this stream's groups.
  bool have_record = merger->Next();
  while (st.ok() && have_record) {
    GroupValueIterator group(merger, comparator,
                             /*grouping_is_sort_order=*/true);
    key_scratch.assign(merger->key().data(), merger->key().size());
    st = combiner(Slice(key_scratch), &group, sink);
    if (st.ok()) {
      group.SkipRemaining();
    }
    counters->Increment(kCombineInputRecords, group.consumed());
    have_record = group.next_group_ready();
  }
  if (st.ok()) {
    st = merger->status();
  }
  return st;
}

RunWriterOptions MergeWriterOptions(const ExternalMergeOptions& options) {
  RunWriterOptions writer_options;
  writer_options.compress = options.compress;
  writer_options.buffer_bytes =
      std::max<size_t>(1, options.spill_buffer_bytes);
  writer_options.checksum = options.checksum;
  writer_options.env = options.env;
  return writer_options;
}

/// Books one completed merge pass: the operation itself, the re-spilled
/// bytes it wrote (both also under the per-phase breakout), and the
/// at-rest vs raw-framing byte split of its output.
void ChargeMergePass(const ExternalMergeOptions& options,
                     const RunWriter& writer) {
  options.counters->Increment(kMergePasses, 1);
  options.counters->Increment(kIntermediateMergeBytes,
                              writer.bytes_written());
  if (options.early) {
    options.counters->Increment(kEarlyMergePasses, 1);
    options.counters->Increment(kEarlyMergeBytes, writer.bytes_written());
  } else {
    options.counters->Increment(
        options.map_side ? kMapMergePasses : kReduceMergePasses, 1);
    options.counters->Increment(
        options.map_side ? kMapIntermediateMergeBytes
                         : kReduceIntermediateMergeBytes,
        writer.bytes_written());
  }
  options.counters->Increment(kRunBytesRaw, writer.raw_bytes());
  options.counters->Increment(kRunBytesWritten, writer.bytes_written());
}

std::string MergeOutputPath(const ExternalMergeOptions& options,
                            uint64_t seq) {
  char name[64];
  snprintf(name, sizeof(name), "/%s-merge-%06llu.run",
           options.name_prefix.c_str(),
           static_cast<unsigned long long>(seq));
  return options.work_dir + name;
}

/// Merges whole runs (every partition) of `group` into one
/// partition-segmented run file — the unit of work of the map-side final
/// merge. At most |group| <= merge_factor sources are open at a time (one
/// partition's readers, reopened per partition), plus the output file.
Status MergeRunGroup(const ExternalMergeOptions& options,
                     uint32_t num_partitions,
                     const std::vector<const SpillRun*>& group,
                     uint64_t seq, SpillRun* out) {
  if (options.checksum) {
    // Map-side merge inputs are task-local; each is read (and therefore
    // verified) exactly once, no shared registry needed.
    for (const SpillRun* run : group) {
      if (run->has_crc && !run->in_memory()) {
        NGRAM_RETURN_NOT_OK(
            VerifySpillFileCrc32(run->file_path, run->crc32, options.env));
      }
    }
  }
  out->segments.assign(num_partitions, RunSegment{});
  out->file_path = MergeOutputPath(options, seq);

  std::unique_ptr<RunWriter> writer =
      NewRunWriter(out->file_path, MergeWriterOptions(options));
  NGRAM_RETURN_NOT_OK(writer->Open());

  for (uint32_t p = 0; p < num_partitions; ++p) {
    std::vector<std::unique_ptr<RecordReader>> sources;
    sources.reserve(group.size());
    for (const SpillRun* run : group) {
      auto reader = OpenRunPartition(*run, p, options.env);
      if (reader != nullptr) {
        sources.push_back(std::move(reader));
      }
    }
    KWayMerger merger(std::move(sources), options.comparator);
    RunSegment& seg = out->segments[p];
    seg.offset = writer->bytes_written();
    const uint64_t records_before = writer->records_written();
    RunWriterSink sink(writer.get());
    Status st = DrainMerger(&merger, options.combiner, options.comparator,
                            &sink, options.counters);
    if (st.ok()) {
      st = writer->FinishSegment();  // Segments cover whole blocks.
    }
    if (!st.ok()) {
      writer->Abandon();  // Unlinks the partial merge output.
      return st;
    }
    seg.length = writer->bytes_written() - seg.offset;
    seg.num_records = writer->records_written() - records_before;
    if (options.combiner) {
      options.counters->Increment(kCombineOutputRecords, seg.num_records);
    }
  }
  NGRAM_RETURN_NOT_OK(writer->Close());  // Close() unlinks on failure.
  out->block_format = writer->block_format();
  if (options.checksum && !out->block_format) {
    out->crc32 = writer->crc32();
    out->has_crc = true;
  }
  ChargeMergePass(options, *writer);
  return Status::OK();
}

/// One reduce-merge input that has not been opened yet: either partition
/// `partition` of a map run (opened through OpenRunPartition, costing an
/// fd only for file-backed runs) or a whole intermediate single-partition
/// run file from an earlier pass. Deferred opening is what bounds a
/// reduce task's fds to one merge group at a time.
struct PendingSource {
  const SpillRun* run = nullptr;  // Null for intermediates.
  std::string path;               // Intermediate file.
  uint64_t length = 0;
  uint32_t crc32 = 0;
  bool has_crc = false;
  bool block_format = false;      // Intermediate file's at-rest format.
};

/// True when opening this source costs an fd and a read buffer — the two
/// resources merge_factor exists to bound. In-memory runs (zero-copy
/// bucket arenas, framed memory) cost neither and ride along free.
bool CostsFd(const PendingSource& source) {
  return source.run == nullptr || !source.run->in_memory();
}

size_t CountFdSources(const std::vector<PendingSource>& pending) {
  size_t n = 0;
  for (const PendingSource& source : pending) {
    n += CostsFd(source) ? 1 : 0;
  }
  return n;
}

/// At-rest bytes a merge window member contributes — the cost driver of
/// the smallest-runs-first window choice.
uint64_t SourceBytes(const PendingSource& source, uint32_t partition) {
  return source.run != nullptr ? source.run->segments[partition].length
                               : source.length;
}

/// Merges already-open `sources` into one single-partition intermediate
/// run file at `merged->path`, filling in its extent and CRC.
Status MergeToIntermediate(const ExternalMergeOptions& options,
                           std::vector<std::unique_ptr<RecordReader>> sources,
                           PendingSource* merged) {
  std::unique_ptr<RunWriter> writer =
      NewRunWriter(merged->path, MergeWriterOptions(options));
  NGRAM_RETURN_NOT_OK(writer->Open());
  KWayMerger merger(std::move(sources), options.comparator);
  RunWriterSink sink(writer.get());
  Status st = DrainMerger(&merger, /*combiner=*/nullptr, options.comparator,
                          &sink, options.counters);
  if (!st.ok()) {
    writer->Abandon();
    return st;
  }
  NGRAM_RETURN_NOT_OK(writer->Close());
  merged->length = writer->bytes_written();
  merged->block_format = writer->block_format();
  if (options.checksum && !merged->block_format) {
    merged->crc32 = writer->crc32();
    merged->has_crc = true;
  }
  ChargeMergePass(options, *writer);
  return Status::OK();
}

Status OpenPendingSource(const ExternalMergeOptions& options,
                         const PendingSource& source, uint32_t partition,
                         std::unique_ptr<RecordReader>* reader) {
  if (source.run != nullptr) {
    if (options.verifier != nullptr) {
      NGRAM_RETURN_NOT_OK(
          options.verifier->Verify(*source.run, options.env));
    }
    *reader = OpenRunPartition(*source.run, partition, options.env);
    return Status::OK();
  }
  if (source.has_crc) {
    // Raw intermediate outputs are consumed exactly once, right here;
    // block-format intermediates verify per block while being read.
    NGRAM_RETURN_NOT_OK(
        VerifySpillFileCrc32(source.path, source.crc32, options.env));
  }
  *reader = std::make_unique<FileRecordReader>(
      source.path, 0, source.length, FileRecordReader::kDefaultBufferBytes,
      source.block_format ? RunFormat::kBlocks : RunFormat::kRawRecords,
      options.env);
  return Status::OK();
}

}  // namespace

std::unique_ptr<RecordReader> OpenRunPartition(const SpillRun& run,
                                               uint32_t partition,
                                               IoEnv* env) {
  const RunSegment& seg = run.segments[partition];
  if (seg.num_records == 0) {
    return nullptr;
  }
  if (run.zero_copy()) {
    return std::make_unique<BucketRunReader>(&run.buckets[partition]);
  }
  if (run.in_memory()) {
    return std::make_unique<MemoryRecordReader>(
        Slice(run.memory_data.data() + seg.offset, seg.length));
  }
  return std::make_unique<FileRecordReader>(
      run.file_path, seg.offset, seg.length,
      FileRecordReader::kDefaultBufferBytes,
      run.block_format ? RunFormat::kBlocks : RunFormat::kRawRecords, env);
}

KWayMerger::KWayMerger(std::vector<std::unique_ptr<RecordReader>> sources,
                       const RawComparator* comparator)
    : sources_(std::move(sources)),
      comparator_(comparator),
      num_sources_(sources_.size()),
      keys_(sources_.size()),
      prefixes_(sources_.size(), 0),
      exhausted_(sources_.size(), 0),
      losers_(sources_.size(), kNone) {}

bool KWayMerger::Less(size_t a, size_t b) const {
  if (a == kNone || exhausted_[a]) {
    return false;
  }
  if (b == kNone || exhausted_[b]) {
    return true;
  }
  if (prefixes_[a] != prefixes_[b]) {
    return prefixes_[a] < prefixes_[b];
  }
  const int c = comparator_->Compare(keys_[a], keys_[b]);
  if (c != 0) {
    return c < 0;
  }
  return a < b;  // Stable tie-break by source index.
}

void KWayMerger::AdvanceSource(size_t s) {
  RecordReader* src = sources_[s].get();
  if (src == nullptr) {
    exhausted_[s] = 1;
    return;
  }
  if (src->Next()) {
    keys_[s] = src->key();
    prefixes_[s] = src->has_sort_prefix() ? src->sort_prefix()
                                          : comparator_->SortPrefix(keys_[s]);
  } else {
    if (!src->status().ok() && status_.ok()) {
      status_ = src->status();
    }
    exhausted_[s] = 1;
    keys_[s] = Slice();
  }
}

size_t KWayMerger::BuildTree(size_t t) {
  if (t >= num_sources_) {
    return t - num_sources_;  // Leaf: node k+s holds source s.
  }
  const size_t left = BuildTree(2 * t);
  const size_t right = BuildTree(2 * t + 1);
  if (Less(right, left)) {
    losers_[t] = left;
    return right;
  }
  losers_[t] = right;
  return left;
}

void KWayMerger::Replay(size_t s) {
  size_t winner = s;
  for (size_t t = (s + num_sources_) / 2; t > 0; t /= 2) {
    if (Less(losers_[t], winner)) {
      std::swap(losers_[t], winner);
    }
  }
  winner_ = winner;
}

bool KWayMerger::Next() {
  if (!status_.ok()) {
    return false;
  }
  if (!started_) {
    started_ = true;
    for (size_t s = 0; s < num_sources_; ++s) {
      AdvanceSource(s);
    }
    if (!status_.ok()) {
      return false;
    }
    if (num_sources_ == 0) {
      return false;
    }
    winner_ = num_sources_ == 1 ? 0 : BuildTree(1);
  } else if (winner_ != kNone) {
    // Pull the next record of the source we last surfaced, then replay its
    // path to the root; every other node of the tree is unaffected.
    AdvanceSource(winner_);
    if (!status_.ok()) {
      return false;
    }
    if (num_sources_ > 1) {
      Replay(winner_);
    }
  }
  if (winner_ == kNone || exhausted_[winner_]) {
    winner_ = kNone;
    return false;
  }
  current_key_ = keys_[winner_];
  current_value_ = sources_[winner_]->value();
  current_prefix_ = prefixes_[winner_];
  return true;
}

Status RunCrcVerifier::Verify(const SpillRun& run, IoEnv* env) {
  if (!run.has_crc || run.in_memory()) {
    return Status::OK();
  }
  std::shared_ptr<Entry> entry;
  {
    MutexLock lock(&mu_);
    std::shared_ptr<Entry>& slot = entries_[run.file_path];
    if (slot == nullptr) {
      slot = std::make_shared<Entry>();
    }
    entry = slot;
  }
  // The whole-file re-read happens outside the map lock, so distinct runs
  // still verify in parallel; call_once serializes only same-path racers.
  std::call_once(entry->once, [&] {
    entry->result = VerifySpillFileCrc32(run.file_path, run.crc32, env);
  });
  return entry->result;
}

Status MergeMapRuns(const ExternalMergeOptions& options,
                    uint32_t num_partitions, std::vector<SpillRun>* runs) {
  const size_t factor = std::max<uint32_t>(2, options.merge_factor);
  uint64_t seq = 0;
  std::vector<SpillRun> current = std::move(*runs);
  runs->clear();
  // Merge consecutive groups of at most `factor` runs per pass until one
  // run remains. Consecutive grouping keeps the run-order tie-break — and
  // with it byte-identical output — intact across passes.
  while (current.size() > 1) {
    std::vector<SpillRun> next;
    next.reserve((current.size() + factor - 1) / factor);
    for (size_t i = 0; i < current.size(); i += factor) {
      const size_t group_end = std::min(current.size(), i + factor);
      if (group_end - i == 1) {
        next.push_back(std::move(current[i]));
        continue;
      }
      std::vector<const SpillRun*> group;
      group.reserve(group_end - i);
      for (size_t g = i; g < group_end; ++g) {
        group.push_back(&current[g]);
      }
      SpillRun merged;
      Status st = MergeRunGroup(options, num_partitions, group, seq++,
                                &merged);
      if (!st.ok()) {
        // Hand every file still on disk back to the caller for cleanup:
        // outputs produced so far plus the unconsumed inputs (the failed
        // group's output was already unlinked by MergeRunGroup).
        *runs = std::move(next);
        for (size_t g = i; g < current.size(); ++g) {
          runs->push_back(std::move(current[g]));
        }
        return st;
      }
      for (size_t g = i; g < group_end; ++g) {
        if (!current[g].file_path.empty()) {
          ResolveEnv(options.env)
              ->Unlink(current[g].file_path)
              .IgnoreError();
        }
      }
      next.push_back(std::move(merged));
    }
    current = std::move(next);
  }
  *runs = std::move(current);
  return Status::OK();
}

Status PrepareReduceMerge(const ExternalMergeOptions& options,
                          const std::vector<const SpillRun*>& runs,
                          uint32_t partition, ReduceMergeResult* result) {
  std::vector<PendingSource> pending;
  pending.reserve(runs.size());
  for (size_t i = 0; i < runs.size(); ++i) {
    if (runs[i]->segments[partition].num_records == 0) {
      continue;  // Keeps relative order of the non-empty sources.
    }
    PendingSource source;
    source.run = runs[i];
    pending.push_back(std::move(source));
  }

  const size_t factor = options.merge_factor == 0
                            ? 0
                            : std::max<uint32_t>(2, options.merge_factor);
  uint64_t seq = 0;
  // Merge one consecutive window at a time until no more than `factor`
  // fd-costing sources remain. Window endpoints are fd-costing sources;
  // in-memory members ride along inside whichever window spans their
  // position (keeping windows consecutive is what preserves the
  // source-order tie-break), and a no-spill job — zero fd-costing
  // sources — never re-spills here at all. Two Hadoop-style planning
  // rules pick the window:
  //   - Remainder-first sizing: with n fd sources left, the next window
  //     holds ((n - factor - 1) mod (factor - 1)) + 2 of them. The first
  //     merge absorbs the remainder, leaving n' with n' - factor
  //     divisible by factor - 1, so every later window is exactly full
  //     and no pass wastes fan-in (the formula then yields `factor`).
  //   - Smallest runs first: among the consecutive windows of that size,
  //     merge the one covering the fewest at-rest bytes — early passes
  //     stay cheap and big runs are re-spilled as few times as possible.
  //     Byte ties break on the lowest start index, so the plan is a pure
  //     function of the source list (determinism).
  if (factor != 0) {
    size_t fd_count = CountFdSources(pending);
    while (fd_count > factor) {
      const size_t want = (fd_count - factor - 1) % (factor - 1) + 2;
      // Positions of the fd-costing sources and prefix byte sums over
      // the full pending list (windows pay for their in-memory riders
      // too — those bytes get written out with the merge).
      std::vector<size_t> fd_pos;
      fd_pos.reserve(fd_count);
      std::vector<uint64_t> prefix(pending.size() + 1, 0);
      for (size_t i = 0; i < pending.size(); ++i) {
        if (CostsFd(pending[i])) {
          fd_pos.push_back(i);
        }
        prefix[i + 1] = prefix[i] + SourceBytes(pending[i], partition);
      }
      size_t best = 0;
      uint64_t best_bytes = UINT64_MAX;
      for (size_t k = 0; k + want <= fd_pos.size(); ++k) {
        const uint64_t bytes =
            prefix[fd_pos[k + want - 1] + 1] - prefix[fd_pos[k]];
        if (bytes < best_bytes) {
          best_bytes = bytes;
          best = k;
        }
      }
      const size_t lo = fd_pos[best];
      const size_t hi = fd_pos[best + want - 1];
      std::vector<std::unique_ptr<RecordReader>> sources;
      sources.reserve(hi - lo + 1);
      for (size_t g = lo; g <= hi; ++g) {
        std::unique_ptr<RecordReader> reader;
        NGRAM_RETURN_NOT_OK(
            OpenPendingSource(options, pending[g], partition, &reader));
        if (reader != nullptr) {
          sources.push_back(std::move(reader));
        }
      }
      PendingSource merged;
      merged.path = MergeOutputPath(options, seq++);
      // Every created intermediate is registered for caller cleanup
      // before it is written, so no failure path can leak it.
      result->intermediate_files.push_back(merged.path);
      NGRAM_RETURN_NOT_OK(
          MergeToIntermediate(options, std::move(sources), &merged));
      // Intermediates consumed by this window are done for good; unlink
      // now so disk usage stays one pass deep (their paths remain in the
      // cleanup list — a second unlink is a harmless no-op).
      for (size_t g = lo; g <= hi; ++g) {
        if (pending[g].run == nullptr) {
          ResolveEnv(options.env)->Unlink(pending[g].path).IgnoreError();
        }
      }
      // The intermediate takes the window's position, so relative source
      // order — and with it the tie-break — is untouched.
      pending.erase(pending.begin() + static_cast<ptrdiff_t>(lo),
                    pending.begin() + static_cast<ptrdiff_t>(hi + 1));
      pending.insert(pending.begin() + static_cast<ptrdiff_t>(lo),
                     std::move(merged));
      fd_count -= want - 1;
    }
  }

  result->sources.reserve(pending.size());
  for (const PendingSource& source : pending) {
    std::unique_ptr<RecordReader> reader;
    NGRAM_RETURN_NOT_OK(
        OpenPendingSource(options, source, partition, &reader));
    if (reader != nullptr) {
      result->sources.push_back(std::move(reader));
    }
  }
  return Status::OK();
}

Status MergePartitionToRun(const ExternalMergeOptions& options,
                           const std::vector<const SpillRun*>& runs,
                           uint32_t partition, uint32_t num_partitions,
                           const std::string& out_path, SpillRun* out) {
  std::vector<std::unique_ptr<RecordReader>> sources;
  sources.reserve(runs.size());
  for (const SpillRun* run : runs) {
    if (run->segments[partition].num_records == 0) {
      continue;
    }
    if (options.verifier != nullptr) {
      NGRAM_RETURN_NOT_OK(options.verifier->Verify(*run, options.env));
    }
    auto reader = OpenRunPartition(*run, partition, options.env);
    if (reader != nullptr) {
      sources.push_back(std::move(reader));
    }
  }
  std::unique_ptr<RunWriter> writer =
      NewRunWriter(out_path, MergeWriterOptions(options));
  NGRAM_RETURN_NOT_OK(writer->Open());
  KWayMerger merger(std::move(sources), options.comparator);
  RunWriterSink sink(writer.get());
  Status st = DrainMerger(&merger, /*combiner=*/nullptr, options.comparator,
                          &sink, options.counters);
  if (!st.ok()) {
    writer->Abandon();  // Unlinks the partial eager output.
    return st;
  }
  NGRAM_RETURN_NOT_OK(writer->Close());  // Close() unlinks on failure.
  out->file_path = out_path;
  out->memory_data.clear();
  out->buckets.clear();
  out->segments.assign(num_partitions, RunSegment{});
  RunSegment& seg = out->segments[partition];
  seg.offset = 0;
  seg.length = writer->bytes_written();
  seg.num_records = writer->records_written();
  out->block_format = writer->block_format();
  out->has_crc = false;
  if (options.checksum && !out->block_format) {
    out->crc32 = writer->crc32();
    out->has_crc = true;
  }
  ChargeMergePass(options, *writer);
  return Status::OK();
}

void RemoveFiles(const std::vector<std::string>& paths, IoEnv* env) {
  IoEnv* const e = ResolveEnv(env);
  for (const std::string& path : paths) {
    if (!path.empty()) {
      e->Unlink(path).IgnoreError();
    }
  }
}

}  // namespace ngram::mr
