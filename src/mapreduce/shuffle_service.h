// The early shuffle service: overlap reduce-side merging with map
// execution (Hadoop's copy/merge shuffle phase, YTsaurus's pipelined
// sorted merge — see docs/architecture.md section 4c).
//
// The job driver commits each finished map task's runs into the
// MapOutputRegistry; with JobConfig::shuffle_slots > 0 a pool of
// background merger workers watches those commits and eagerly runs
// reduce-side intermediate merge passes over them while other map tasks
// are still executing. When the map barrier falls, each reduce task's
// source list substitutes the pre-merged intermediates for the task
// ranges they cover, so the post-barrier PrepareReduceMerge has little or
// nothing left to do and the final pass opens at most merge_factor
// pre-merged sources instead of O(maps x spills) runs.
//
// Determinism: the final reduce merge is a stable k-way merge whose ties
// break on source index, with sources ordered by (map task id, run
// index). Such a merge is associative over *consecutive* windows: merging
// any window of adjacent-in-task-id sources into one intermediate that
// then occupies the window's position yields the exact byte stream of the
// all-at-once merge — the intermediate's records are already in the order
// the tie-break would have produced, and records outside the window
// compare against it exactly as they would against its members. Eager
// workers therefore only ever merge windows that are consecutive in map
// task id (never commit order), which makes job output byte-identical
// with the service on or off, for every merge factor and slot count. What
// the service does NOT preserve is merge *accounting*: how many passes
// run eagerly depends on commit timing, so MERGE_PASSES and friends
// become scheduling-dependent once shuffle_slots > 0.
//
// Fault interplay (PR 6's corruption recovery): eager merging is
// best-effort. A failed eager pass (I/O fault, corrupt source) unlinks
// its partial output, marks the window failed, and the reduce phase falls
// back to the committed runs — an eager failure never fails the job, and
// a corrupt run still surfaces through the reducer's own read, triggering
// producer re-execution as before. A re-execution retires the producing
// task's generation; every eager output built over it is invalidated
// (reduce attempts validate outputs against their generation snapshot, so
// a stale output is never substituted) and its file is retired until job
// end — like retired run generations, it is not unlinked immediately
// because a stale reduce attempt may still be reading it.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "mapreduce/comparator.h"
#include "mapreduce/counters.h"
#include "mapreduce/io_env.h"
#include "mapreduce/merge.h"
#include "mapreduce/sort_buffer.h"
#include "mapreduce/spill_writer.h"
#include "util/macros.h"
#include "util/mutex.h"

namespace ngram::mr {

/// \brief Committed map output, with the bookkeeping corruption recovery
/// and the early shuffle service need.
///
/// Each task's run vector is a shared_ptr *generation*. A reduce attempt
/// (or eager merge worker) snapshots the shared_ptrs it plans over, so
/// re-executing a map task — which installs a fresh generation — never
/// frees run objects a stale reader is still using; replaced generations
/// are retired: their objects stay alive and their files on disk until
/// job end, when the driver's cleanup guard removes everything.
struct MapOutputRegistry {
  Mutex mu;
  /// Signaled whenever a generation settles (regeneration finished,
  /// successful or not): reduce attempts wait for a settled registry
  /// before planning, and recoveries wait out a racing regeneration.
  CondVar cv{&mu};
  std::vector<std::shared_ptr<std::vector<SpillRun>>> runs
      NGRAM_GUARDED_BY(mu);
  /// Bumped per re-execution.
  std::vector<uint32_t> generation NGRAM_GUARDED_BY(mu);
  /// Completed executions of the task.
  std::vector<uint32_t> executions NGRAM_GUARDED_BY(mu);
  /// A recovery is in flight.
  std::vector<uint8_t> regenerating NGRAM_GUARDED_BY(mu);
  std::vector<std::shared_ptr<std::vector<SpillRun>>> retired
      NGRAM_GUARDED_BY(mu);

  void Resize(uint32_t num_tasks) NGRAM_EXCLUDES(mu) {
    MutexLock lock(&mu);
    runs.resize(num_tasks);
    generation.assign(num_tasks, 0);
    executions.assign(num_tasks, 0);
    regenerating.assign(num_tasks, 0);
  }
};

/// \brief One eagerly pre-merged intermediate: partition `partition` of
/// every run of map tasks [first_task, last_task], merged in (task, run)
/// order into a single-segment run file.
///
/// Usable by a reduce attempt only while every covered task still carries
/// the generation recorded here — `generations[t - first_task]` is what
/// task t's generation was when the merge read its runs.
struct EarlyMergeOutput {
  uint32_t partition = 0;
  uint32_t first_task = 0;
  uint32_t last_task = 0;
  std::vector<uint32_t> generations;
  /// Synthetic run: only segments[partition] is non-empty.
  SpillRun run;
  /// Set when a covered task's generation was retired (producer
  /// re-execution): no new attempt may substitute this output. The file
  /// stays on disk until the service is destroyed — a stale attempt that
  /// planned over it may still be reading.
  bool invalidated = false;
};

/// \brief Background eager-merge workers for one job (see file comment).
///
/// Driver protocol:
///   1. Construct with the job's registry and counters; workers start
///      immediately (none when `shuffle_slots` == 0 or merge_factor == 0).
///   2. NotifyMapTaskCommitted(t) after each successful map-task commit.
///   3. Finish() at the map barrier: stops scheduling new eager merges,
///      drains in-flight ones, joins the workers. After Finish() the
///      output set only shrinks (invalidation).
///   4. OutputsFor(partition, generations) per reduce attempt;
///      InvalidateTask(t) after a producer re-execution.
/// The destructor runs Finish() if the driver did not, then unlinks every
/// eager output file — the work_dir-clean guarantee. It must run before
/// the driver's run-file cleanup (declare the service after the cleanup
/// guard) so no worker can be reading a run file while it is unlinked.
class EarlyShuffleService {
 public:
  struct Options {
    uint32_t shuffle_slots = 0;
    uint32_t num_map_tasks = 0;
    uint32_t num_partitions = 1;
    /// 0 (unbounded final fan-in) disables the service.
    uint32_t merge_factor = 16;
    const RawComparator* comparator = BytewiseComparator::Instance();
    std::string work_dir;
    size_t spill_buffer_bytes = SpillWriter::kDefaultBufferBytes;
    bool compress = true;
    bool checksum = false;
    /// Shared once-per-path CRC registry (reduce tasks reuse verdicts).
    RunCrcVerifier* verifier = nullptr;
    IoEnv* env = nullptr;
  };

  EarlyShuffleService(const Options& options, MapOutputRegistry* registry,
                      Counters* counters);
  ~EarlyShuffleService();
  NGRAM_DISALLOW_COPY_AND_ASSIGN(EarlyShuffleService);

  /// True when workers were actually started.
  bool enabled() const { return enabled_; }

  /// Map task `task` committed its (generation-0) runs; wakes workers.
  void NotifyMapTaskCommitted(uint32_t task) NGRAM_EXCLUDES(mu_);

  /// The map barrier: stop scheduling, drain in-flight merges, join the
  /// workers. Idempotent.
  void Finish() NGRAM_EXCLUDES(mu_);

  /// Task `task`'s generation was retired by a producer re-execution:
  /// invalidates every output built over it (files stay on disk until
  /// destruction — see EarlyMergeOutput::invalidated).
  void InvalidateTask(uint32_t task) NGRAM_EXCLUDES(mu_);

  /// A reduce attempt failed with `message` (an error-context string that
  /// names the offending file). If it names an eager output, invalidates
  /// that output — the intermediate went bad on disk after its merge — so
  /// re-planning falls back to the committed runs instead of re-reading
  /// the doomed file. Returns true when an output matched. Invalidation
  /// only ever shrinks the output set, so recovery retries triggered by
  /// this are bounded by the number of outputs.
  bool InvalidateOutputNamedIn(const std::string& message)
      NGRAM_EXCLUDES(mu_);

  /// The outputs a reduce attempt with generation snapshot `generations`
  /// may substitute for partition `partition`: valid (not invalidated,
  /// all covered generations matching), ordered by first_task,
  /// non-overlapping. Call after Finish().
  std::vector<std::shared_ptr<const EarlyMergeOutput>> OutputsFor(
      uint32_t partition, const std::vector<uint32_t>& generations) const
      NGRAM_EXCLUDES(mu_);

  /// Eager merge passes completed successfully (tests/benchmarks).
  uint64_t completed_merges() const NGRAM_EXCLUDES(mu_);

 private:
  /// Per-(partition, task) scheduling state. kPending: task not committed
  /// yet. kReady: committed, not covered by any window. kMerging: a
  /// worker owns a window spanning it. kCovered: merged into an output.
  /// kFailed: its window's eager merge failed — never retried eagerly,
  /// the reduce phase uses the committed runs.
  enum class TaskState : uint8_t {
    kPending,
    kReady,
    kMerging,
    kCovered,
    kFailed,
  };

  struct Window {
    uint32_t partition = 0;
    uint32_t first_task = 0;
    uint32_t last_task = 0;
    std::string out_path;
  };

  struct PartitionState {
    std::vector<TaskState> state;
    /// fd-costing sources task t contributes to this partition (file-
    /// backed runs with records in it); 0 for memory-only/empty tasks.
    std::vector<uint32_t> fd_sources;
    std::vector<std::shared_ptr<EarlyMergeOutput>> outputs;
  };

  void WorkerLoop() NGRAM_EXCLUDES(mu_);
  /// Picks and claims the next eager-merge window, or returns false.
  bool FindWindow(Window* window) NGRAM_REQUIRES(mu_);
  /// Runs one claimed window's merge and records the result.
  void MergeWindow(const Window& window, TaskCounters* tc)
      NGRAM_EXCLUDES(mu_);

  const Options options_;
  const size_t factor_;  // Normalized merge factor (>= 2).
  MapOutputRegistry* const registry_;
  Counters* const counters_;
  bool enabled_ = false;  // Written only in the constructor.

  mutable Mutex mu_;
  CondVar work_cv_{&mu_};
  bool stopping_ NGRAM_GUARDED_BY(mu_) = false;
  /// Output file name sequence.
  uint64_t seq_ NGRAM_GUARDED_BY(mu_) = 0;
  uint64_t completed_merges_ NGRAM_GUARDED_BY(mu_) = 0;
  /// Round-robin scan start.
  uint32_t next_partition_ NGRAM_GUARDED_BY(mu_) = 0;
  std::vector<PartitionState> parts_ NGRAM_GUARDED_BY(mu_);
  /// Every output path ever claimed, unlinked at destruction (failed
  /// merges already unlinked theirs — a second unlink is a no-op).
  std::vector<std::string> output_files_ NGRAM_GUARDED_BY(mu_);

  /// Started in the constructor, joined by Finish(); only the
  /// constructor, Finish(), and the destructor (via Finish()) touch it.
  std::vector<std::thread> workers_;
};

}  // namespace ngram::mr
