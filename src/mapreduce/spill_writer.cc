#include "mapreduce/spill_writer.h"

#include <cstring>

#include "encoding/varint.h"

namespace ngram::mr {

SpillWriter::SpillWriter(std::string path, Options options)
    : path_(std::move(path)),
      tmp_path_(path_ + ".tmp"),
      options_(std::move(options)),
      env_(ResolveEnv(options_.env)) {}

SpillWriter::~SpillWriter() {
  if (!closed_) {
    Abandon();
  }
}

Status SpillWriter::Open() {
  Status st = env_->NewWritableFile(tmp_path_, &file_);
  if (!st.ok()) {
    closed_ = true;  // Nothing to unlink; fail all later calls.
    close_status_ = st.WithContext("create spill " + path_);
    return close_status_;
  }
  opened_ = true;
  if (options_.external_buffer != nullptr) {
    buffer_ = options_.external_buffer;
  } else {
    owned_buffer_ = std::make_unique<char[]>(options_.buffer_bytes);
    buffer_ = owned_buffer_.get();
  }
  if (!options_.preamble.empty()) {
    Status pst = AppendRawBytes(options_.preamble.data(),
                                options_.preamble.size());
    if (!pst.ok()) {
      return pst;
    }
  }
  return Status::OK();
}

Status SpillWriter::WriteDirect(const char* data, size_t n) {
  Status st = file_->Write(data, n);
  if (!st.ok()) {
    return st.WithContext("write spill " + path_);
  }
  if (options_.checksum) {
    crc_ = Crc32(crc_, data, n);
  }
  return Status::OK();
}

Status SpillWriter::FlushBuffer() {
  if (buffered_ == 0) {
    return Status::OK();
  }
  Status st = WriteDirect(buffer_, buffered_);
  buffered_ = 0;
  return st;
}

/// Stages `data` through the write buffer (flushing as needed); bytes
/// larger than the whole buffer bypass it. Shared by framed and raw
/// appends. Abandons (unlinking the partial file) on write failure.
Status SpillWriter::BufferBytes(const char* data, size_t n) {
  if (buffered_ + n > options_.buffer_bytes) {
    Status st = FlushBuffer();
    if (!st.ok()) {
      Abandon();
      return st;
    }
  }
  if (n > options_.buffer_bytes) {
    // Oversized append: bypass the (now empty) buffer entirely.
    Status st = WriteDirect(data, n);
    if (!st.ok()) {
      Abandon();
      return st;
    }
  } else {
    memcpy(buffer_ + buffered_, data, n);
    buffered_ += n;
  }
  bytes_written_ += n;
  return Status::OK();
}

Status SpillWriter::Append(Slice key, Slice value) {
  if (closed_) {
    return close_status_.ok() ? Status::Internal("spill writer closed")
                              : close_status_;
  }
  char header[2 * kMaxVarint64Bytes];
  char* header_end = EncodeVarint64To(header, key.size());
  header_end = EncodeVarint64To(header_end, value.size());
  const size_t header_len = static_cast<size_t>(header_end - header);

  const size_t framed = header_len + key.size() + value.size();
  if (buffered_ + framed > options_.buffer_bytes) {
    Status st = FlushBuffer();
    if (!st.ok()) {
      Abandon();
      return st;
    }
  }
  if (framed > options_.buffer_bytes) {
    // Oversized record: bypass the buffer (now empty) entirely.
    Status st = WriteDirect(header, header_len);
    if (st.ok() && !key.empty()) st = WriteDirect(key.data(), key.size());
    if (st.ok() && !value.empty()) {
      st = WriteDirect(value.data(), value.size());
    }
    if (!st.ok()) {
      Abandon();
      return st;
    }
  } else {
    char* dst = buffer_ + buffered_;
    memcpy(dst, header, header_len);
    dst += header_len;
    memcpy(dst, key.data(), key.size());
    dst += key.size();
    memcpy(dst, value.data(), value.size());
    buffered_ += framed;
  }
  bytes_written_ += framed;
  ++records_written_;
  return Status::OK();
}

Status SpillWriter::AppendRawBytes(const char* data, size_t n) {
  if (closed_) {
    return close_status_.ok() ? Status::Internal("spill writer closed")
                              : close_status_;
  }
  return BufferBytes(data, n);
}

Status SpillWriter::Close() {
  if (closed_) {
    return close_status_;
  }
  if (file_ == nullptr) {
    closed_ = true;
    close_status_ = Status::Internal("spill writer never opened");
    return close_status_;
  }
  // Commit sequence: flush our buffer, sync the file, close it, then
  // rename the temp name onto the committed path. Any failure leaves
  // nothing at path().
  Status st = FlushBuffer();
  if (st.ok()) {
    st = file_->Sync();
    if (!st.ok()) {
      st = st.WithContext("sync spill " + path_);
    }
  }
  Status close_st = file_->Close();
  file_ = nullptr;
  closed_ = true;
  if (st.ok() && !close_st.ok()) {
    st = close_st.WithContext("close spill " + path_);
  }
  if (st.ok()) {
    st = env_->Rename(tmp_path_, path_);
    if (!st.ok()) {
      st = st.WithContext("commit spill " + path_);
    }
  }
  if (!st.ok()) {
    (void)env_->Unlink(tmp_path_);
  }
  close_status_ = st;
  return st;
}

void SpillWriter::Abandon() {
  if (file_ != nullptr) {
    (void)file_->Close();
    file_ = nullptr;
  }
  if (opened_) {
    // The committed name never appeared (only Close() renames), so the
    // staged temp file is all there is to remove.
    (void)env_->Unlink(tmp_path_);
  }
  closed_ = true;
  if (close_status_.ok()) {
    close_status_ = Status::Internal("spill writer abandoned");
  }
}

Status VerifySpillFileCrc32(const std::string& path, uint32_t expected,
                            IoEnv* env) {
  std::unique_ptr<ReadableFile> file;
  Status st = ResolveEnv(env)->NewReadableFile(path, 0, &file);
  if (!st.ok()) {
    return st.WithContext("verify spill CRC");
  }
  char buf[64 * 1024];
  uint32_t crc = 0;
  size_t n = 0;
  do {
    st = file->Read(buf, sizeof(buf), &n);
    if (!st.ok()) {
      return st.WithContext("verify spill CRC");
    }
    crc = Crc32(crc, buf, n);
  } while (n > 0);
  if (crc != expected) {
    return Status::Corruption("spill CRC mismatch reading " + path);
  }
  return Status::OK();
}

}  // namespace ngram::mr
