#include "mapreduce/spill_writer.h"

#include <cerrno>
#include <cstring>

#include <unistd.h>

#include "encoding/varint.h"

namespace ngram::mr {

SpillWriter::SpillWriter(std::string path, Options options)
    : path_(std::move(path)), options_(std::move(options)) {}

SpillWriter::~SpillWriter() {
  if (!closed_) {
    Abandon();
  }
}

Status SpillWriter::Open() {
  file_ = fopen(path_.c_str(), "wb");
  if (file_ == nullptr) {
    closed_ = true;  // Nothing to unlink; fail all later calls.
    close_status_ =
        Status::IOError("create spill " + path_ + ": " + strerror(errno));
    return close_status_;
  }
  opened_ = true;
  if (options_.external_buffer != nullptr) {
    buffer_ = options_.external_buffer;
  } else {
    owned_buffer_ = std::make_unique<char[]>(options_.buffer_bytes);
    buffer_ = owned_buffer_.get();
  }
  if (!options_.preamble.empty()) {
    Status st = AppendRawBytes(options_.preamble.data(),
                               options_.preamble.size());
    if (!st.ok()) {
      return st;
    }
  }
  return Status::OK();
}

Status SpillWriter::WriteDirect(const char* data, size_t n) {
  if (fwrite(data, 1, n, file_) != n) {
    return Status::IOError("write spill " + path_ + ": " + strerror(errno));
  }
  if (options_.checksum) {
    crc_ = Crc32(crc_, data, n);
  }
  return Status::OK();
}

Status SpillWriter::FlushBuffer() {
  if (buffered_ == 0) {
    return Status::OK();
  }
  Status st = WriteDirect(buffer_, buffered_);
  buffered_ = 0;
  return st;
}

/// Stages `data` through the write buffer (flushing as needed); bytes
/// larger than the whole buffer bypass it. Shared by framed and raw
/// appends. Abandons (unlinking the partial file) on write failure.
Status SpillWriter::BufferBytes(const char* data, size_t n) {
  if (buffered_ + n > options_.buffer_bytes) {
    Status st = FlushBuffer();
    if (!st.ok()) {
      Abandon();
      return st;
    }
  }
  if (n > options_.buffer_bytes) {
    // Oversized append: bypass the (now empty) buffer entirely.
    Status st = WriteDirect(data, n);
    if (!st.ok()) {
      Abandon();
      return st;
    }
  } else {
    memcpy(buffer_ + buffered_, data, n);
    buffered_ += n;
  }
  bytes_written_ += n;
  return Status::OK();
}

Status SpillWriter::Append(Slice key, Slice value) {
  if (closed_) {
    return close_status_.ok() ? Status::Internal("spill writer closed")
                              : close_status_;
  }
  char header[2 * kMaxVarint64Bytes];
  char* header_end = EncodeVarint64To(header, key.size());
  header_end = EncodeVarint64To(header_end, value.size());
  const size_t header_len = static_cast<size_t>(header_end - header);

  const size_t framed = header_len + key.size() + value.size();
  if (buffered_ + framed > options_.buffer_bytes) {
    Status st = FlushBuffer();
    if (!st.ok()) {
      Abandon();
      return st;
    }
  }
  if (framed > options_.buffer_bytes) {
    // Oversized record: bypass the buffer (now empty) entirely.
    Status st = WriteDirect(header, header_len);
    if (st.ok() && !key.empty()) st = WriteDirect(key.data(), key.size());
    if (st.ok() && !value.empty()) {
      st = WriteDirect(value.data(), value.size());
    }
    if (!st.ok()) {
      Abandon();
      return st;
    }
  } else {
    char* dst = buffer_ + buffered_;
    memcpy(dst, header, header_len);
    dst += header_len;
    memcpy(dst, key.data(), key.size());
    dst += key.size();
    memcpy(dst, value.data(), value.size());
    buffered_ += framed;
  }
  bytes_written_ += framed;
  ++records_written_;
  return Status::OK();
}

Status SpillWriter::AppendRawBytes(const char* data, size_t n) {
  if (closed_) {
    return close_status_.ok() ? Status::Internal("spill writer closed")
                              : close_status_;
  }
  return BufferBytes(data, n);
}

Status SpillWriter::Close() {
  if (closed_) {
    return close_status_;
  }
  if (file_ == nullptr) {
    closed_ = true;
    close_status_ = Status::Internal("spill writer never opened");
    return close_status_;
  }
  Status st = FlushBuffer();
  const int close_rc = fclose(file_);
  file_ = nullptr;
  closed_ = true;
  if (st.ok() && close_rc != 0) {
    st = Status::IOError("close spill " + path_ + ": " + strerror(errno));
  }
  if (!st.ok()) {
    unlink(path_.c_str());
  }
  close_status_ = st;
  return st;
}

void SpillWriter::Abandon() {
  if (file_ != nullptr) {
    fclose(file_);
    file_ = nullptr;
  }
  if (opened_) {
    unlink(path_.c_str());
  }
  closed_ = true;
  if (close_status_.ok()) {
    close_status_ = Status::Internal("spill writer abandoned");
  }
}

Status VerifySpillFileCrc32(const std::string& path, uint32_t expected) {
  FILE* f = fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IOError("open spill " + path + ": " + strerror(errno));
  }
  char buf[64 * 1024];
  uint32_t crc = 0;
  size_t n;
  while ((n = fread(buf, 1, sizeof(buf), f)) > 0) {
    crc = Crc32(crc, buf, n);
  }
  const bool read_error = ferror(f) != 0;
  fclose(f);
  if (read_error) {
    return Status::IOError("read spill " + path);
  }
  if (crc != expected) {
    return Status::Corruption("spill CRC mismatch for " + path);
  }
  return Status::OK();
}

}  // namespace ngram::mr
