#include "mapreduce/spill_writer.h"

#include <cerrno>
#include <cstring>

#include <unistd.h>

#include "encoding/varint.h"

namespace ngram::mr {

namespace {

/// Lazily built table for the zlib CRC-32 polynomial (reflected).
const uint32_t* Crc32Table() {
  static const uint32_t* table = [] {
    static uint32_t t[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace

uint32_t Crc32(uint32_t crc, const char* data, size_t n) {
  const uint32_t* table = Crc32Table();
  uint32_t c = crc ^ 0xffffffffu;
  const uint8_t* p = reinterpret_cast<const uint8_t*>(data);
  for (size_t i = 0; i < n; ++i) {
    c = table[(c ^ p[i]) & 0xffu] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

SpillWriter::SpillWriter(std::string path, Options options)
    : path_(std::move(path)), options_(options) {}

SpillWriter::~SpillWriter() {
  if (!closed_) {
    Abandon();
  }
}

Status SpillWriter::Open() {
  file_ = fopen(path_.c_str(), "wb");
  if (file_ == nullptr) {
    closed_ = true;  // Nothing to unlink; fail all later calls.
    close_status_ =
        Status::IOError("create spill " + path_ + ": " + strerror(errno));
    return close_status_;
  }
  opened_ = true;
  if (options_.external_buffer != nullptr) {
    buffer_ = options_.external_buffer;
  } else {
    owned_buffer_ = std::make_unique<char[]>(options_.buffer_bytes);
    buffer_ = owned_buffer_.get();
  }
  return Status::OK();
}

Status SpillWriter::WriteDirect(const char* data, size_t n) {
  if (fwrite(data, 1, n, file_) != n) {
    return Status::IOError("write spill " + path_ + ": " + strerror(errno));
  }
  if (options_.checksum) {
    crc_ = Crc32(crc_, data, n);
  }
  return Status::OK();
}

Status SpillWriter::FlushBuffer() {
  if (buffered_ == 0) {
    return Status::OK();
  }
  Status st = WriteDirect(buffer_, buffered_);
  buffered_ = 0;
  return st;
}

Status SpillWriter::Append(Slice key, Slice value) {
  if (closed_) {
    return close_status_.ok() ? Status::Internal("spill writer closed")
                              : close_status_;
  }
  char header[2 * kMaxVarint64Bytes];
  char* header_end = EncodeVarint64To(header, key.size());
  header_end = EncodeVarint64To(header_end, value.size());
  const size_t header_len = static_cast<size_t>(header_end - header);

  const size_t framed = header_len + key.size() + value.size();
  if (buffered_ + framed > options_.buffer_bytes) {
    Status st = FlushBuffer();
    if (!st.ok()) {
      Abandon();
      return st;
    }
  }
  if (framed > options_.buffer_bytes) {
    // Oversized record: bypass the buffer (now empty) entirely.
    Status st = WriteDirect(header, header_len);
    if (st.ok() && !key.empty()) st = WriteDirect(key.data(), key.size());
    if (st.ok() && !value.empty()) {
      st = WriteDirect(value.data(), value.size());
    }
    if (!st.ok()) {
      Abandon();
      return st;
    }
  } else {
    char* dst = buffer_ + buffered_;
    memcpy(dst, header, header_len);
    dst += header_len;
    memcpy(dst, key.data(), key.size());
    dst += key.size();
    memcpy(dst, value.data(), value.size());
    buffered_ += framed;
  }
  bytes_written_ += framed;
  ++records_written_;
  return Status::OK();
}

Status SpillWriter::Close() {
  if (closed_) {
    return close_status_;
  }
  if (file_ == nullptr) {
    closed_ = true;
    close_status_ = Status::Internal("spill writer never opened");
    return close_status_;
  }
  Status st = FlushBuffer();
  const int close_rc = fclose(file_);
  file_ = nullptr;
  closed_ = true;
  if (st.ok() && close_rc != 0) {
    st = Status::IOError("close spill " + path_ + ": " + strerror(errno));
  }
  if (!st.ok()) {
    unlink(path_.c_str());
  }
  close_status_ = st;
  return st;
}

void SpillWriter::Abandon() {
  if (file_ != nullptr) {
    fclose(file_);
    file_ = nullptr;
  }
  if (opened_) {
    unlink(path_.c_str());
  }
  closed_ = true;
  if (close_status_.ok()) {
    close_status_ = Status::Internal("spill writer abandoned");
  }
}

Status VerifySpillFileCrc32(const std::string& path, uint32_t expected) {
  FILE* f = fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IOError("open spill " + path + ": " + strerror(errno));
  }
  char buf[64 * 1024];
  uint32_t crc = 0;
  size_t n;
  while ((n = fread(buf, 1, sizeof(buf), f)) > 0) {
    crc = Crc32(crc, buf, n);
  }
  const bool read_error = ferror(f) != 0;
  fclose(f);
  if (read_error) {
    return Status::IOError("read spill " + path);
  }
  if (crc != expected) {
    return Status::Corruption("spill CRC mismatch for " + path);
  }
  return Status::OK();
}

}  // namespace ngram::mr
