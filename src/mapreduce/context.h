// Map/Reduce contexts and the streaming value iterator handed to reducers.
#pragma once

#include <cstdint>
#include <string>

#include "encoding/serde.h"
#include "mapreduce/comparator.h"
#include "mapreduce/counters.h"
#include "mapreduce/dataset.h"
#include "mapreduce/merge.h"
#include "mapreduce/partitioner.h"
#include "mapreduce/sort_buffer.h"
#include "util/status.h"

namespace ngram::mr {

/// \brief Emission context passed to mappers.
///
/// Emit() serializes the pair, charges MAP_OUTPUT_RECORDS/BYTES exactly as
/// Hadoop does (key bytes + value bytes at emission time), partitions on the
/// serialized key, and hands the record to the task's sort buffer.
///
/// Both emit paths encode into a single reusable per-task scratch buffer,
/// so the hot loop performs no per-record allocation. EmitEncodedKey() is
/// the zero-copy fast path for mappers that already hold the serialized
/// key bytes (e.g. as a slice of a once-encoded document).
template <typename K, typename V>
class MapContext {
 public:
  MapContext(const Partitioner* partitioner, uint32_t num_partitions,
             SortBuffer* buffer, TaskCounters* counters, uint32_t task_id)
      : partitioner_(partitioner),
        num_partitions_(num_partitions),
        buffer_(buffer),
        counters_(counters),
        task_id_(task_id) {}

  Status Emit(const K& key, const V& value) {
    scratch_.clear();
    Serde<K>::Encode(key, &scratch_);
    const size_t key_len = scratch_.size();
    Serde<V>::Encode(value, &scratch_);
    return EmitFramed(Slice(scratch_.data(), key_len),
                      Slice(scratch_.data() + key_len,
                            scratch_.size() - key_len));
  }

  /// Emits a record whose key is already serialized. `key_bytes` must be
  /// the exact Serde<K> wire form; it is consumed before this returns.
  Status EmitEncodedKey(Slice key_bytes, const V& value) {
    scratch_.clear();
    Serde<V>::Encode(value, &scratch_);
    return EmitFramed(key_bytes, Slice(scratch_));
  }

  /// Fully raw emit: both sides already in Serde wire form (chained-input
  /// mappers forwarding or re-slicing serialized records). Bytes are
  /// consumed before this returns.
  Status EmitRaw(Slice key_bytes, Slice value_bytes) {
    return EmitFramed(key_bytes, value_bytes);
  }

  TaskCounters* counters() { return counters_; }
  uint32_t task_id() const { return task_id_; }

  /// Publishes the emit counters accumulated by this context. Called by
  /// the driver once per task attempt, after Cleanup() — per-emit counter
  /// bookkeeping stays two plain member additions on the hot path.
  void FlushCounters() {
    counters_->Increment(kMapOutputRecords, emitted_records_);
    counters_->Increment(kMapOutputBytes, emitted_bytes_);
    emitted_records_ = 0;
    emitted_bytes_ = 0;
  }

 private:
  Status EmitFramed(Slice key_bytes, Slice value_bytes) {
    ++emitted_records_;
    emitted_bytes_ += key_bytes.size() + value_bytes.size();
    const uint32_t p = partitioner_->Partition(key_bytes, num_partitions_);
    return buffer_->Add(p, key_bytes, value_bytes);
  }

  const Partitioner* partitioner_;
  uint32_t num_partitions_;
  SortBuffer* buffer_;
  TaskCounters* counters_;
  uint32_t task_id_;
  uint64_t emitted_records_ = 0;
  uint64_t emitted_bytes_ = 0;
  std::string scratch_;
};

/// \brief Output context passed to reducers; appends serialized records to
/// the job's output RecordTable.
///
/// Emit() serializes the typed pair through one reusable scratch buffer.
/// EmitRaw() is the zero-copy path for raw reducers that already hold the
/// serialized bytes — counting/aggregation reducers re-emit the group's
/// key slice verbatim and never decode it. Either way the output stays
/// serialized across the job boundary; typed consumers decode once at the
/// end of the pipeline (or through RunJob's MemoryTable shim).
template <typename K, typename V>
class ReduceContext {
 public:
  ReduceContext(RecordTable* output, TaskCounters* counters,
                uint32_t reducer_id)
      : output_(output), counters_(counters), reducer_id_(reducer_id) {}

  Status Emit(const K& key, const V& value) {
    scratch_.clear();
    Serde<K>::Encode(key, &scratch_);
    const size_t key_len = scratch_.size();
    Serde<V>::Encode(value, &scratch_);
    return EmitRaw(Slice(scratch_.data(), key_len),
                   Slice(scratch_.data() + key_len,
                         scratch_.size() - key_len));
  }

  /// Emits a record already in Serde<K>/Serde<V> wire form. Bytes are
  /// copied into the output table before this returns.
  Status EmitRaw(Slice key_bytes, Slice value_bytes) {
    output_->Append(key_bytes, value_bytes);
    counters_->Increment(kReduceOutputRecords);
    return Status::OK();
  }

  TaskCounters* counters() { return counters_; }
  uint32_t reducer_id() const { return reducer_id_; }

 private:
  RecordTable* output_;
  TaskCounters* counters_;
  uint32_t reducer_id_;
  std::string scratch_;
};

/// \brief Zero-copy iterator over one key group of the merge stream.
///
/// The driver positions the merger on the first record of a group and
/// hands the group to the reducer as this iterator. Advancing detects the
/// group boundary by comparing *adjacent* records under the grouping
/// comparator, on the merger's cached key slices — the group's leading key
/// is never copied and no value is materialized or decoded. The adjacent
/// compare is sound because the merge stream is sorted (grouping-equal
/// records are contiguous) and the previous record's key bytes survive one
/// merger advance (the RecordReader lookback contract).
///
/// When the grouping order *is* the sort order, the merger's cached 8-byte
/// sort prefixes short-circuit the boundary check: differing prefixes
/// prove a boundary without touching key bytes.
///
/// After the group is exhausted, key() still returns the key of the last
/// record consumed — valid until the merger advances again, which lets
/// aggregate-then-emit reducers (counting) serialize or decode the group
/// key after draining the values, paying the decode only for groups they
/// actually emit.
class GroupValueIterator final : public RawValueIterator {
 public:
  GroupValueIterator(KWayMerger* merger, const RawComparator* grouping,
                     bool grouping_is_sort_order)
      : merger_(merger),
        grouping_(grouping),
        prefix_conclusive_(grouping_is_sort_order),
        key_(merger->key()),
        prefix_(merger->key_prefix()) {}

  bool NextValue() override {
    if (group_done_) {
      return false;
    }
    if (pending_) {
      pending_ = false;  // Consume the record the merger is already on.
      ++consumed_;
      return true;
    }
    // key_/prefix_ describe the record consumed last; its bytes stay valid
    // across this single merger advance (lookback contract).
    if (!merger_->Next()) {
      group_done_ = true;
      return false;
    }
    const bool boundary =
        (prefix_conclusive_ && merger_->key_prefix() != prefix_) ||
        grouping_->Compare(merger_->key(), key_) != 0;
    if (boundary) {
      group_done_ = true;
      next_group_ready_ = true;  // Record belongs to the following group.
      return false;
    }
    key_ = merger_->key();
    prefix_ = merger_->key_prefix();
    ++consumed_;
    return true;
  }

  Slice key() const override { return key_; }
  Slice value() const override { return merger_->value(); }

  /// Consumes any unread values so the driver can move to the next group.
  void SkipRemaining() { Count(); }

  /// True when the merger already sits on the first record of the next
  /// group (i.e. the group ended at a key change, not at end of stream).
  bool next_group_ready() const { return next_group_ready_; }

 private:
  KWayMerger* merger_;
  const RawComparator* grouping_;
  const bool prefix_conclusive_;
  Slice key_;        // Key of the last consumed record (leading key first).
  uint64_t prefix_;  // Its cached sort prefix.
  bool pending_ = true;  // Merger is on an unconsumed record of this group.
  bool group_done_ = false;
  bool next_group_ready_ = false;
};

/// \brief Lazily deserializing typed view over a group's values.
///
/// The typed-reducer adapter wraps the raw group iterator in this stream;
/// values are decoded on demand, so a reducer that only needs |l| (like
/// SUFFIX-sigma's) can use Count() and never pay a decode.
template <typename V>
class ValueStream {
 public:
  explicit ValueStream(RawValueIterator* it) : it_(it) {}

  /// Decodes the next value of the group into `*out`.
  bool Next(V* out) {
    if (decode_error_ || !it_->NextValue()) {
      return false;
    }
    if (!Serde<V>::Decode(it_->value(), out)) {
      decode_error_ = true;
      return false;
    }
    return true;
  }

  /// Skips and counts every remaining value (no deserialization).
  uint64_t Count() {
    return decode_error_ ? it_->consumed() : it_->Count();
  }

  /// Consumes any unread values so the driver can move to the next group.
  void SkipRemaining() { Count(); }

  uint64_t consumed() const { return it_->consumed(); }
  bool decode_error() const { return decode_error_; }

 private:
  RawValueIterator* it_;
  bool decode_error_ = false;
};

}  // namespace ngram::mr
