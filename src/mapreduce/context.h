// Map/Reduce contexts and the streaming value iterator handed to reducers.
#pragma once

#include <cstdint>
#include <string>

#include "encoding/serde.h"
#include "mapreduce/comparator.h"
#include "mapreduce/counters.h"
#include "mapreduce/dataset.h"
#include "mapreduce/merge.h"
#include "mapreduce/partitioner.h"
#include "mapreduce/sort_buffer.h"
#include "util/status.h"

namespace ngram::mr {

/// \brief Emission context passed to mappers.
///
/// Emit() serializes the pair, charges MAP_OUTPUT_RECORDS/BYTES exactly as
/// Hadoop does (key bytes + value bytes at emission time), partitions on the
/// serialized key, and hands the record to the task's sort buffer.
///
/// Both emit paths encode into a single reusable per-task scratch buffer,
/// so the hot loop performs no per-record allocation. EmitEncodedKey() is
/// the zero-copy fast path for mappers that already hold the serialized
/// key bytes (e.g. as a slice of a once-encoded document).
template <typename K, typename V>
class MapContext {
 public:
  MapContext(const Partitioner* partitioner, uint32_t num_partitions,
             SortBuffer* buffer, TaskCounters* counters, uint32_t task_id)
      : partitioner_(partitioner),
        num_partitions_(num_partitions),
        buffer_(buffer),
        counters_(counters),
        task_id_(task_id) {}

  Status Emit(const K& key, const V& value) {
    scratch_.clear();
    Serde<K>::Encode(key, &scratch_);
    const size_t key_len = scratch_.size();
    Serde<V>::Encode(value, &scratch_);
    return EmitFramed(Slice(scratch_.data(), key_len),
                      Slice(scratch_.data() + key_len,
                            scratch_.size() - key_len));
  }

  /// Emits a record whose key is already serialized. `key_bytes` must be
  /// the exact Serde<K> wire form; it is consumed before this returns.
  Status EmitEncodedKey(Slice key_bytes, const V& value) {
    scratch_.clear();
    Serde<V>::Encode(value, &scratch_);
    return EmitFramed(key_bytes, Slice(scratch_));
  }

  TaskCounters* counters() { return counters_; }
  uint32_t task_id() const { return task_id_; }

 private:
  Status EmitFramed(Slice key_bytes, Slice value_bytes) {
    counters_->Increment(kMapOutputRecords);
    counters_->Increment(kMapOutputBytes,
                         key_bytes.size() + value_bytes.size());
    const uint32_t p = partitioner_->Partition(key_bytes, num_partitions_);
    return buffer_->Add(p, key_bytes, value_bytes);
  }

  const Partitioner* partitioner_;
  uint32_t num_partitions_;
  SortBuffer* buffer_;
  TaskCounters* counters_;
  uint32_t task_id_;
  std::string scratch_;
};

/// \brief Output context passed to reducers; collects typed rows.
template <typename K, typename V>
class ReduceContext {
 public:
  ReduceContext(MemoryTable<K, V>* output, TaskCounters* counters,
                uint32_t reducer_id)
      : output_(output), counters_(counters), reducer_id_(reducer_id) {}

  Status Emit(K key, V value) {
    output_->Add(std::move(key), std::move(value));
    counters_->Increment(kReduceOutputRecords);
    return Status::OK();
  }

  TaskCounters* counters() { return counters_; }
  uint32_t reducer_id() const { return reducer_id_; }

 private:
  MemoryTable<K, V>* output_;
  TaskCounters* counters_;
  uint32_t reducer_id_;
};

/// \brief Lazily deserializing iterator over the values of one key group.
///
/// The driver positions the merger at the first record of a group;
/// Next() streams values until the key changes (under the job's grouping
/// comparator) or the merge is exhausted. Values are decoded on demand, so
/// a reducer that only needs |l| (like SUFFIX-sigma's) can use Count().
template <typename V>
class ValueStream {
 public:
  ValueStream(KWayMerger* merger, const RawComparator* grouping,
              Slice group_key)
      : merger_(merger),
        grouping_(grouping),
        group_key_(group_key),
        pending_(true) {}

  /// Decodes the next value of the group into `*out`.
  bool Next(V* out) {
    if (!Advance()) {
      return false;
    }
    pending_ = false;
    ++consumed_;
    if (!Serde<V>::Decode(merger_->value(), out)) {
      decode_error_ = true;
      return false;
    }
    return true;
  }

  /// Skips and counts every remaining value (no deserialization).
  uint64_t Count() {
    while (Advance()) {
      pending_ = false;
      ++consumed_;
    }
    return consumed_;
  }

  /// Consumes any unread values so the driver can move to the next group.
  void SkipRemaining() { Count(); }

  uint64_t consumed() const { return consumed_; }
  bool group_exhausted() const { return group_done_; }
  bool next_group_ready() const { return next_group_ready_; }
  bool decode_error() const { return decode_error_; }

 private:
  // Moves the merger onto the next record of this group. Returns false when
  // the group (or the whole merge) is finished.
  bool Advance() {
    if (group_done_ || decode_error_) {
      return false;
    }
    if (pending_) {
      return true;  // Current merger record not yet consumed.
    }
    if (!merger_->Next()) {
      group_done_ = true;
      return false;
    }
    if (grouping_->Compare(merger_->key(), group_key_) != 0) {
      group_done_ = true;
      next_group_ready_ = true;  // Record belongs to the following group.
      return false;
    }
    pending_ = true;
    return true;
  }

  KWayMerger* merger_;
  const RawComparator* grouping_;
  Slice group_key_;
  bool pending_;
  bool group_done_ = false;
  bool next_group_ready_ = false;
  bool decode_error_ = false;
  uint64_t consumed_ = 0;
};

}  // namespace ngram::mr
