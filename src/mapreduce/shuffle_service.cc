#include "mapreduce/shuffle_service.h"

#include <algorithm>
#include <cstdio>

#include "util/logging.h"

namespace ngram::mr {

EarlyShuffleService::EarlyShuffleService(const Options& options,
                                         MapOutputRegistry* registry,
                                         Counters* counters)
    : options_(options),
      factor_(std::max<uint32_t>(2, options.merge_factor)),
      registry_(registry),
      counters_(counters) {
  if (options_.shuffle_slots == 0 || options_.merge_factor == 0 ||
      options_.num_map_tasks == 0 || options_.num_partitions == 0) {
    return;
  }
  enabled_ = true;
  {
    // Workers start below; initialize the guarded state under the lock so
    // the analysis (and the memory model) see a clean handoff.
    MutexLock lock(&mu_);
    parts_.resize(options_.num_partitions);
    for (PartitionState& part : parts_) {
      part.state.assign(options_.num_map_tasks, TaskState::kPending);
      part.fd_sources.assign(options_.num_map_tasks, 0);
    }
  }
  workers_.reserve(options_.shuffle_slots);
  for (uint32_t i = 0; i < options_.shuffle_slots; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

EarlyShuffleService::~EarlyShuffleService() {
  Finish();
  std::vector<std::string> doomed;
  {
    MutexLock lock(&mu_);
    doomed.swap(output_files_);
  }
  RemoveFiles(doomed, options_.env);
}

void EarlyShuffleService::NotifyMapTaskCommitted(uint32_t task) {
  if (!enabled_) {
    return;
  }
  // Snapshot the committed task's per-partition fd footprint once, so
  // window scanning never has to touch the registry.
  std::vector<uint32_t> fds(options_.num_partitions, 0);
  {
    MutexLock reg_lock(&registry_->mu);
    const std::vector<SpillRun>& runs = *registry_->runs[task];
    for (const SpillRun& run : runs) {
      if (run.in_memory()) {
        continue;
      }
      for (uint32_t p = 0; p < options_.num_partitions; ++p) {
        if (run.segments[p].num_records > 0) {
          ++fds[p];
        }
      }
    }
  }
  {
    MutexLock lock(&mu_);
    for (uint32_t p = 0; p < options_.num_partitions; ++p) {
      parts_[p].fd_sources[task] = fds[p];
      parts_[p].state[task] = TaskState::kReady;
    }
  }
  work_cv_.SignalAll();
}

void EarlyShuffleService::Finish() {
  {
    MutexLock lock(&mu_);
    if (stopping_) {
      return;
    }
    stopping_ = true;
  }
  work_cv_.SignalAll();
  for (std::thread& worker : workers_) {
    worker.join();
  }
  workers_.clear();
}

void EarlyShuffleService::InvalidateTask(uint32_t task) {
  if (!enabled_) {
    return;
  }
  MutexLock lock(&mu_);
  for (PartitionState& part : parts_) {
    for (const std::shared_ptr<EarlyMergeOutput>& out : part.outputs) {
      if (out->first_task <= task && task <= out->last_task) {
        out->invalidated = true;
      }
    }
  }
}

bool EarlyShuffleService::InvalidateOutputNamedIn(
    const std::string& message) {
  if (!enabled_) {
    return false;
  }
  MutexLock lock(&mu_);
  bool matched = false;
  for (PartitionState& part : parts_) {
    for (const std::shared_ptr<EarlyMergeOutput>& out : part.outputs) {
      if (!out->invalidated && !out->run.file_path.empty() &&
          message.find(out->run.file_path) != std::string::npos) {
        out->invalidated = true;
        matched = true;
      }
    }
  }
  return matched;
}

std::vector<std::shared_ptr<const EarlyMergeOutput>>
EarlyShuffleService::OutputsFor(
    uint32_t partition, const std::vector<uint32_t>& generations) const {
  std::vector<std::shared_ptr<const EarlyMergeOutput>> result;
  if (!enabled_) {
    return result;
  }
  MutexLock lock(&mu_);
  for (const std::shared_ptr<EarlyMergeOutput>& out :
       parts_[partition].outputs) {
    if (out->invalidated) {
      continue;
    }
    bool valid = true;
    for (uint32_t t = out->first_task; t <= out->last_task; ++t) {
      if (generations[t] != out->generations[t - out->first_task]) {
        valid = false;
        break;
      }
    }
    if (valid) {
      result.push_back(out);
    }
  }
  // Windows never overlap within a partition, so first_task orders them.
  std::sort(result.begin(), result.end(),
            [](const std::shared_ptr<const EarlyMergeOutput>& a,
               const std::shared_ptr<const EarlyMergeOutput>& b) {
              return a->first_task < b->first_task;
            });
  return result;
}

uint64_t EarlyShuffleService::completed_merges() const {
  MutexLock lock(&mu_);
  return completed_merges_;
}

void EarlyShuffleService::WorkerLoop() {
  TaskCounters tc(counters_);  // Flushed by the destructor at exit.
  mu_.Lock();
  while (true) {
    Window window;
    if (!stopping_ && FindWindow(&window)) {
      mu_.Unlock();
      MergeWindow(window, &tc);
      mu_.Lock();
      // A finished window can wedge a neighboring sub-full window into
      // eligibility, so wake the others.
      work_cv_.SignalAll();
      continue;
    }
    if (stopping_) {
      mu_.Unlock();
      return;
    }
    work_cv_.Wait();
  }
}

bool EarlyShuffleService::FindWindow(Window* window) {
  const uint32_t num_tasks = options_.num_map_tasks;
  for (uint32_t i = 0; i < parts_.size(); ++i) {
    const uint32_t p =
        (next_partition_ + i) % static_cast<uint32_t>(parts_.size());
    PartitionState& part = parts_[p];
    uint32_t t = 0;
    while (t < num_tasks) {
      // A window starts at a ready task that contributes at least one fd.
      if (part.state[t] != TaskState::kReady || part.fd_sources[t] == 0) {
        ++t;
        continue;
      }
      // Extend right over ready tasks until the window is full, the next
      // ready task would overflow it, or a non-ready task blocks it.
      size_t fds = 0;
      uint32_t end = t;
      uint32_t u = t;
      bool overflow = false;
      while (u < num_tasks && part.state[u] == TaskState::kReady) {
        if (fds + part.fd_sources[u] > factor_) {
          overflow = true;
          break;
        }
        fds += part.fd_sources[u];
        if (part.fd_sources[u] > 0) {
          end = u;  // Trailing memory-only tasks stay out of the window.
        }
        ++u;
        if (fds == factor_) {
          break;
        }
      }
      // Full windows always merge. A sub-full window merges only when it
      // can never grow: the next ready task would overflow it, or both
      // neighbors are settled (array edge / covered / merging / failed —
      // a kPending neighbor may still commit and extend the window, so
      // the scan waits for it instead of fragmenting the plan).
      bool eligible = fds == factor_ || (fds >= 2 && overflow);
      if (!eligible && fds >= 2) {
        const bool right_settled =
            u >= num_tasks || part.state[u] != TaskState::kPending;
        const bool left_settled =
            t == 0 || part.state[t - 1] != TaskState::kPending;
        eligible = right_settled && left_settled;
      }
      if (!eligible) {
        t = u > t ? u : t + 1;  // Skip the scanned ready segment.
        continue;
      }
      for (uint32_t v = t; v <= end; ++v) {
        part.state[v] = TaskState::kMerging;
      }
      window->partition = p;
      window->first_task = t;
      window->last_task = end;
      char name[64];
      snprintf(name, sizeof(name), "/early-%u-%06llu.run", p,
               static_cast<unsigned long long>(seq_++));
      window->out_path = options_.work_dir + name;
      // Registered before anything is written: no failure path leaks it.
      output_files_.push_back(window->out_path);
      next_partition_ = (p + 1) % static_cast<uint32_t>(parts_.size());
      return true;
    }
  }
  return false;
}

void EarlyShuffleService::MergeWindow(const Window& window,
                                      TaskCounters* tc) {
  // Snapshot the window's run generations; the shared_ptrs keep every
  // run object alive for the duration of the merge even if the task were
  // retired mid-flight (it cannot be during the map phase, but the
  // snapshot discipline matches the reduce side's).
  std::vector<std::shared_ptr<std::vector<SpillRun>>> snapshot;
  auto output = std::make_shared<EarlyMergeOutput>();
  output->partition = window.partition;
  output->first_task = window.first_task;
  output->last_task = window.last_task;
  {
    MutexLock reg_lock(&registry_->mu);
    for (uint32_t t = window.first_task; t <= window.last_task; ++t) {
      snapshot.push_back(registry_->runs[t]);
      output->generations.push_back(registry_->generation[t]);
    }
  }
  std::vector<const SpillRun*> run_ptrs;
  for (const auto& task_runs : snapshot) {
    for (const SpillRun& run : *task_runs) {
      run_ptrs.push_back(&run);
    }
  }

  ExternalMergeOptions merge_options;
  merge_options.comparator = options_.comparator;
  merge_options.merge_factor = static_cast<uint32_t>(factor_);
  merge_options.work_dir = options_.work_dir;
  merge_options.spill_buffer_bytes = options_.spill_buffer_bytes;
  merge_options.compress = options_.compress;
  merge_options.checksum = options_.checksum;
  merge_options.early = true;
  merge_options.verifier = options_.verifier;
  merge_options.counters = tc;
  merge_options.env = options_.env;
  Status st =
      MergePartitionToRun(merge_options, run_ptrs, window.partition,
                          options_.num_partitions, window.out_path,
                          &output->run);

  MutexLock lock(&mu_);
  PartitionState& part = parts_[window.partition];
  const TaskState verdict =
      st.ok() ? TaskState::kCovered : TaskState::kFailed;
  for (uint32_t t = window.first_task; t <= window.last_task; ++t) {
    part.state[t] = verdict;
  }
  if (st.ok()) {
    ++completed_merges_;
    part.outputs.push_back(std::move(output));
  } else {
    // Best-effort: the window is never retried eagerly; the reduce phase
    // merges the committed runs itself (and surfaces real corruption
    // through its own read, where the recovery protocol handles it).
    NGRAM_LOG_WARN << "early shuffle: eager merge of map tasks ["
                   << window.first_task << ", " << window.last_task
                   << "] partition " << window.partition
                   << " failed: " << st.ToString()
                   << "; falling back to the committed runs";
  }
}

}  // namespace ngram::mr
