// Framed shuffle records and readers over them.
//
// Wire format of one record: [klen varint][vlen varint][key][value].
// Spill runs and in-memory runs share this framing, so merge sources are
// uniform over both.
#pragma once

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>

#include "encoding/varint.h"
#include "util/macros.h"
#include "util/result.h"
#include "util/slice.h"
#include "util/status.h"

namespace ngram::mr {

/// Appends one framed record to `out`. Returns the framed size in bytes.
inline size_t AppendRecord(std::string* out, Slice key, Slice value) {
  const size_t before = out->size();
  PutVarint64(out, key.size());
  PutVarint64(out, value.size());
  out->append(key.data(), key.size());
  out->append(value.data(), value.size());
  return out->size() - before;
}

/// Abstract sequential reader over framed records.
class RecordReader {
 public:
  virtual ~RecordReader() = default;

  /// Advances to the next record. Returns true and sets key()/value() on
  /// success, false at end. Corrupt input aborts via status().
  virtual bool Next() = 0;

  Slice key() const { return key_; }
  Slice value() const { return value_; }
  const Status& status() const { return status_; }

 protected:
  Slice key_;
  Slice value_;
  Status status_;
};

/// Zero-copy reader over records resident in memory.
class MemoryRecordReader final : public RecordReader {
 public:
  explicit MemoryRecordReader(Slice data) : data_(data) {}

  bool Next() override {
    if (data_.empty()) {
      return false;
    }
    uint64_t klen = 0, vlen = 0;
    if (!GetVarint64(&data_, &klen) || !GetVarint64(&data_, &vlen) ||
        klen + vlen > data_.size()) {
      status_ = Status::Corruption("malformed in-memory record");
      return false;
    }
    key_ = Slice(data_.data(), klen);
    value_ = Slice(data_.data() + klen, vlen);
    data_.RemovePrefix(klen + vlen);
    return true;
  }

 private:
  Slice data_;
};

/// Buffered reader over a byte extent of a spill file.
///
/// Records are surfaced zero-copy: key()/value() point straight into the
/// read buffer, and stay valid until the following Next() call (which may
/// compact or refill the buffer).
class FileRecordReader final : public RecordReader {
 public:
  /// Reads `length` bytes starting at `offset` of `path`.
  FileRecordReader(const std::string& path, uint64_t offset, uint64_t length,
                   size_t buffer_size = 256 * 1024);
  ~FileRecordReader() override;

  NGRAM_DISALLOW_COPY_AND_ASSIGN(FileRecordReader);

  bool Next() override;

 private:
  bool FillAtLeast(size_t n);  // Ensures n readable bytes at pos_ or EOF.

  FILE* file_ = nullptr;
  uint64_t remaining_file_bytes_;
  std::string buffer_;
  size_t pos_ = 0;
  size_t limit_ = 0;
  size_t buffer_capacity_;
};

/// Destination for framed records (used by combiners and run writers).
class RecordSink {
 public:
  virtual ~RecordSink() = default;
  virtual Status Append(Slice key, Slice value) = 0;
};

}  // namespace ngram::mr
