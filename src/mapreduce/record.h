// Framed shuffle records and readers over them.
//
// Wire format of one record: [klen varint][vlen varint][key][value].
// Spill runs and in-memory runs share this framing, so merge sources are
// uniform over both.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "encoding/varint.h"
#include "mapreduce/io_env.h"
#include "util/macros.h"
#include "util/result.h"
#include "util/slice.h"
#include "util/status.h"

namespace ngram::mr {

/// Appends one framed record to `out`. Returns the framed size in bytes.
inline size_t AppendRecord(std::string* out, Slice key, Slice value) {
  const size_t before = out->size();
  PutVarint64(out, key.size());
  PutVarint64(out, value.size());
  out->append(key.data(), key.size());
  out->append(value.data(), value.size());
  return out->size() - before;
}

/// Abstract sequential reader over framed records.
///
/// Lookback contract: the key()/value() slices of the current record stay
/// valid across ONE subsequent Next() call (they may only be invalidated by
/// the second call). The k-way merge relies on this to compare adjacent
/// records of the merged stream — and hence detect reduce-group boundaries
/// — without ever copying a key.
class RecordReader {
 public:
  virtual ~RecordReader() = default;

  /// Advances to the next record. Returns true and sets key()/value() on
  /// success, false at end. Corrupt input aborts via status().
  virtual bool Next() = 0;

  Slice key() const { return key_; }
  Slice value() const { return value_; }
  const Status& status() const { return status_; }

  /// True when sort_prefix() holds RawComparator::SortPrefix of key()
  /// under the job's sort comparator — sources that already computed it
  /// (zero-copy bucket runs cache it per record) hand it to the merge,
  /// which otherwise recomputes it per record.
  bool has_sort_prefix() const { return has_sort_prefix_; }
  uint64_t sort_prefix() const { return sort_prefix_; }

 protected:
  Slice key_;
  Slice value_;
  Status status_;
  bool has_sort_prefix_ = false;
  uint64_t sort_prefix_ = 0;
};

/// Zero-copy reader over records resident in memory. Slices point into the
/// backing buffer and stay valid for the reader's whole lifetime, which
/// trivially satisfies the lookback contract.
class MemoryRecordReader final : public RecordReader {
 public:
  explicit MemoryRecordReader(Slice data) : data_(data) {}

  bool Next() override {
    if (data_.empty()) {
      return false;
    }
    uint64_t klen = 0, vlen = 0;
    if (!GetVarint64(&data_, &klen) || !GetVarint64(&data_, &vlen) ||
        klen + vlen > data_.size()) {
      status_ = Status::Corruption("malformed in-memory record");
      return false;
    }
    key_ = Slice(data_.data(), klen);
    value_ = Slice(data_.data() + klen, vlen);
    data_.RemovePrefix(klen + vlen);
    return true;
  }

 private:
  Slice data_;
};

/// At-rest layout of a persisted run extent (see runfile.h for the block
/// format specification).
enum class RunFormat : uint8_t {
  kRawRecords,  // Back-to-back [klen][vlen][key][value] frames.
  kBlocks,      // Front-coded blocks with per-block CRC-32 trailers.
};

/// Buffered reader over a byte extent of a spill file.
///
/// Raw format: records are surfaced zero-copy — key()/value() point
/// straight into the read buffer. The lookback contract is honored by
/// refilling into an alternate buffer instead of compacting in place: a
/// refill never moves the bytes of the record surfaced by the previous
/// Next() call, so its slices survive exactly one advance. The alternate
/// buffer is allocated lazily — a segment that fits one buffer never pays
/// for the second.
///
/// Block format (RunFormat::kBlocks): each block is read, its CRC-32
/// trailer verified (integrity checking is inherent to reading — a
/// flipped bit anywhere surfaces as Corruption naming the block's file
/// offset), and its front-coded entries decoded into one of two
/// alternating scratch buffers. Records are then surfaced zero-copy out
/// of the decoded buffer; because the *previous* block's buffer is only
/// recycled when the block after next is decoded, the one-record lookback
/// contract holds across block boundaries too.
class FileRecordReader final : public RecordReader {
 public:
  static constexpr size_t kDefaultBufferBytes = 256 * 1024;

  /// Reads `length` bytes starting at `offset` of `path`. I/O goes
  /// through `env` (nullptr means IoEnv::Default()).
  FileRecordReader(const std::string& path, uint64_t offset, uint64_t length,
                   size_t buffer_size = kDefaultBufferBytes,
                   RunFormat format = RunFormat::kRawRecords,
                   IoEnv* env = nullptr);
  ~FileRecordReader() override;

  NGRAM_DISALLOW_COPY_AND_ASSIGN(FileRecordReader);

  bool Next() override;

 private:
  bool FillAtLeast(size_t n);  // Ensures n readable bytes at pos_ or EOF.
  bool NextRaw();
  bool NextBlock();
  /// Reads exactly `n` bytes of the extent into `dst`, distinguishing
  /// EOF-truncation (Corruption) from read failure (IOError).
  bool ReadExact(char* dst, size_t n);
  /// Reads, CRC-checks, and decodes the next block into the scratch
  /// buffer the previous block did NOT use. False at extent end or error.
  bool LoadNextBlock();

  const std::string path_;  // For block-offset error messages.
  const RunFormat format_;
  std::unique_ptr<ReadableFile> file_;
  uint64_t remaining_file_bytes_;
  std::string buffer_;
  std::string alt_buffer_;  // Refill target; preserves the previous record.
  size_t pos_ = 0;
  size_t limit_ = 0;
  size_t buffer_capacity_;
  bool swapped_this_call_ = false;  // At most one buffer swap per Next().

  // Block-format state.
  uint64_t next_block_offset_;   // Absolute file offset of the next block.
  std::string block_scratch_;    // One on-disk block payload.
  std::string decoded_[2];       // Re-framed records; alternate per block.
  int active_decoded_ = 0;
  Slice decoded_cur_;            // Unread framed bytes of the active buffer.
};

/// Destination for framed records (used by combiners and run writers).
class RecordSink {
 public:
  virtual ~RecordSink() = default;
  virtual Status Append(Slice key, Slice value) = 0;
};

/// \brief Zero-copy streaming view of one key group's records.
///
/// The group is consumed lazily: NextValue() advances to the next record of
/// the group (the first call lands on the group's leading record) and
/// returns false once the group ends. key()/value() surface the current
/// record's serialized bytes without copying or decoding; value() is valid
/// until the next NextValue() call. Consumers that only need the group
/// cardinality use Count(), which never touches the value bytes.
///
/// Implementations exist over the reduce-side merge stream
/// (GroupValueIterator) and over a sorted map-side bucket (the combiner
/// path in SortBuffer).
class RawValueIterator {
 public:
  virtual ~RawValueIterator() = default;

  /// Advances to the next record of the group. Returns false when the
  /// group is exhausted (further calls keep returning false).
  virtual bool NextValue() = 0;

  /// Serialized key of the current record: the group's leading key before
  /// the first NextValue(), afterwards the key of the record most recently
  /// consumed. Keys of one group compare equal under the grouping
  /// comparator but are byte-identical only when that comparator implies
  /// byte equality (true for every canonical key encoding in this repo;
  /// not for secondary-sort setups, where the typed adapter captures the
  /// leading key instead).
  virtual Slice key() const = 0;

  /// Serialized value of the current record. Meaningful only after a
  /// NextValue() call that returned true.
  virtual Slice value() const = 0;

  /// Consumes and counts every remaining value without reading the bytes
  /// (SUFFIX-sigma's |l|). Returns the total consumed so far.
  uint64_t Count() {
    while (NextValue()) {
    }
    return consumed_;
  }

  /// Records of this group consumed so far.
  uint64_t consumed() const { return consumed_; }

 protected:
  uint64_t consumed_ = 0;
};

}  // namespace ngram::mr
