// Streaming spill-file writer used by the map-side shuffle.
//
// Records stream through a fixed-size write buffer straight to disk, so
// spilling a run never materializes it in memory (the pre-refactor path
// doubled peak memory by building the whole run in a std::string first).
// Framing is the shared shuffle record format ([klen][vlen][key][value],
// see record.h); every record is appended atomically with respect to the
// buffer, so each flushed block starts and ends on record boundaries and a
// per-run CRC can be maintained incrementally as bytes leave the buffer.
//
// SpillWriter is the *raw-format* RunWriter (runfile.h); the
// block-compressed writer reuses it as its physical byte sink through
// AppendRawBytes(). Call sites that honor JobConfig::compress_runs create
// writers through NewRunWriter() instead of instantiating this directly.
//
// Commit protocol: Open() stages all bytes in "<path>.tmp"; Close()
// flushes, syncs, and renames the temp file onto the committed path. A
// failure anywhere before the rename (and Abandon()) unlinks the temp
// file, so a partially written run is never visible under its committed
// name and failed task attempts never leak spill files.
//
// All physical I/O goes through an IoEnv (io_env.h), so tests can inject
// read/write/sync/rename faults without touching this class.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "mapreduce/io_env.h"
#include "mapreduce/record.h"
#include "mapreduce/runfile.h"
#include "util/crc32.h"
#include "util/macros.h"
#include "util/slice.h"
#include "util/status.h"

namespace ngram::mr {

/// \brief Buffered, streaming writer for one raw-format spill run.
///
/// Usage: Open(), Append() records, then Close(). bytes_written() is the
/// logical file offset (buffered bytes included), which callers use to
/// record per-partition segment extents while streaming.
class SpillWriter : public RunWriter {
 public:
  static constexpr size_t kDefaultBufferBytes = 256 * 1024;

  struct Options {
    size_t buffer_bytes = kDefaultBufferBytes;
    /// Maintain a CRC-32 of every byte written (costs one table lookup per
    /// byte on flush; off by default on the hot path).
    bool checksum = false;
    /// Optional caller-owned write buffer of at least `buffer_bytes`
    /// bytes. When set, Open() performs no allocation; the caller keeps
    /// the memory alive for the writer's lifetime and may hand the same
    /// buffer to successive writers (SortBuffer reuses one per-task buffer
    /// across all of a task's spills).
    char* external_buffer = nullptr;
    /// Bytes written verbatim right after Open() (file headers). Counted
    /// in bytes_written() and, when checksumming, in the CRC.
    std::string preamble;
    /// I/O environment; nullptr means IoEnv::Default().
    IoEnv* env = nullptr;
  };

  explicit SpillWriter(std::string path) : SpillWriter(std::move(path), {}) {}
  SpillWriter(std::string path, Options options);
  ~SpillWriter() override;
  NGRAM_DISALLOW_COPY_AND_ASSIGN(SpillWriter);

  /// Creates/truncates the file. Must be called before Append().
  Status Open() override;

  /// Appends one framed record.
  Status Append(Slice key, Slice value) override;

  /// Appends unframed bytes through the buffer (no record accounting) —
  /// the physical byte path of the block-format writer. On failure the
  /// partial file is unlinked, as with Append().
  Status AppendRawBytes(const char* data, size_t n);

  /// Raw framing has no block structure; segment boundaries are free.
  Status FinishSegment() override { return Status::OK(); }

  /// Flushes the buffer, syncs, closes, and commits the temp file to
  /// path() via rename. On failure the temp file is unlinked and nothing
  /// appears at path(). Idempotent: later calls return the first result.
  Status Close() override;

  /// Closes (if open) and unlinks the staged temp file — but only one
  /// this writer actually created; a never-opened writer leaves the path
  /// untouched. Used on task-attempt failure.
  void Abandon() override;

  /// Logical bytes appended so far (including still-buffered bytes).
  uint64_t bytes_written() const override { return bytes_written_; }
  /// Records appended so far.
  uint64_t records_written() const override { return records_written_; }
  /// Raw format: at-rest bytes == framed bytes.
  uint64_t raw_bytes() const override { return bytes_written_; }
  /// Running CRC-32 of all appended bytes; 0 unless options.checksum.
  uint32_t crc32() const override { return crc_; }
  bool block_format() const override { return false; }
  const std::string& path() const override { return path_; }

 private:
  Status FlushBuffer();
  Status WriteDirect(const char* data, size_t n);
  Status BufferBytes(const char* data, size_t n);

  const std::string path_;
  const std::string tmp_path_;  // path_ + ".tmp": staging name until commit.
  const Options options_;
  IoEnv* const env_;
  std::unique_ptr<WritableFile> file_;
  std::unique_ptr<char[]> owned_buffer_;  // Unused with external_buffer.
  char* buffer_ = nullptr;
  size_t buffered_ = 0;
  uint64_t bytes_written_ = 0;
  uint64_t records_written_ = 0;
  uint32_t crc_ = 0;
  bool opened_ = false;  // This writer created the file at path_.
  bool closed_ = false;
  Status close_status_;
};

/// RecordSink adapter over a SpillWriter — kept for call sites that are
/// explicitly raw-format; generic paths use RunWriterSink (runfile.h).
class SpillWriterSink final : public RecordSink {
 public:
  explicit SpillWriterSink(SpillWriter* writer) : writer_(writer) {}
  Status Append(Slice key, Slice value) override {
    return writer_->Append(key, value);
  }

 private:
  SpillWriter* writer_;
};

/// Recomputes the CRC-32 of `path` and checks it against `expected`.
/// Returns Corruption on mismatch (used by tests and recovery tooling).
Status VerifySpillFileCrc32(const std::string& path, uint32_t expected,
                            IoEnv* env = nullptr);

}  // namespace ngram::mr
