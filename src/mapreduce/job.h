// The MapReduce job driver.
//
// Execution model (mirroring Hadoop's local semantics):
//   1. The input is a RecordTable of serialized records, split into
//      contiguous byte-balanced ranges at record boundaries, one per map
//      task (byte-size splitting cuts skew when record sizes vary). Map
//      tasks run on up to `map_slots` threads; raw mappers consume
//      key/value slices directly, typed Mappers run through
//      TypedMapAdapter (one key+value decode per record). Each task owns a
//      SortBuffer whose per-partition buckets collect serialized records.
//      Past the byte budget the buckets are sorted independently under the
//      job's sort comparator and streamed through a fixed-size SpillWriter
//      buffer to a run file (partition-major); the final flush stays in
//      memory only if nothing was ever spilled. A task that ends with more
//      than JobConfig::merge_factor runs merges them (bounded fan-in,
//      combiner re-run across runs) into one run file before committing.
//   2. Reduce task r merges partition r of every map run with a loser-tree
//      k-way merge under the sort comparator — never opening more than
//      merge_factor sources at once: excess sources first go through
//      intermediate on-disk merge passes over consecutive source groups
//      (see merge.h) — and streams each key group to
//      the reducer as a zero-copy GroupValueIterator: group boundaries are
//      detected by comparing adjacent records under the grouping
//      comparator on the merger's cached key slices (no per-group key copy
//      or decode). Raw reducers consume serialized slices directly; typed
//      reducers run through TypedReduceAdapter, which decodes the leading
//      key once per group. File-backed segments are read through buffered
//      zero-copy readers honoring a one-record lookback contract.
//   3. Reducers append serialized records to a per-reducer RecordTable;
//      the output table is assembled by moving whole reducer partitions in
//      reducer order (no per-row copy); counters and phase wallclocks land
//      in JobMetrics.
//
// Job boundaries are serialized: chained pipelines (the APRIORI methods,
// the maximality post-filter) hand round k's output RecordTable straight
// to round k+1 as map input, with no typed decode/re-encode in between.
// MemoryTable overloads below adapt typed tables on and off this native
// path for user-facing code and tests.
//
// Map and reduce phases are barrier-separated, and equal keys preserve map
// emission order (stable per-bucket sort + merge ties broken by source
// index, sources ordered by map task id), so job output is fully
// deterministic for a fixed input — regardless of slot count.
// See ROADMAP.md "Shuffle architecture" for the pipeline invariants.
#pragma once

#include <chrono>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include "encoding/serde.h"
#include "mapreduce/config.h"
#include "mapreduce/context.h"
#include "mapreduce/counters.h"
#include "mapreduce/dataset.h"
#include "mapreduce/merge.h"
#include "mapreduce/metrics.h"
#include "mapreduce/shuffle_service.h"
#include "mapreduce/sort_buffer.h"
#include "net/inproc_transport.h"
#include "net/map_output_server.h"
#include "net/shuffle_fetcher.h"
#include "net/socket_transport.h"
#include "util/logging.h"
#include "util/result.h"
#include "util/stopwatch.h"
#include "util/temp_dir.h"
#include "util/thread_pool.h"

namespace ngram::mr {

/// \brief Base class for mappers: map(k1, v1) -> list<(k2, v2)>.
template <typename KIn, typename VIn, typename KOut, typename VOut>
class Mapper {
 public:
  using KeyIn = KIn;
  using ValueIn = VIn;
  using KeyOut = KOut;
  using ValueOut = VOut;
  using Context = MapContext<KOut, VOut>;

  virtual ~Mapper() = default;
  virtual Status Setup(Context* ctx) { return Status::OK(); }
  virtual Status Map(const KIn& key, const VIn& value, Context* ctx) = 0;
  virtual Status Cleanup(Context* ctx) { return Status::OK(); }
};

/// \brief Tag base marking mappers that consume serialized records
/// directly (used for compile-time dispatch in RunJob).
class RawMapperBase {};

/// \brief Base class for raw mappers: map input arrives as serialized
/// key/value slices off the input RecordTable, valid for the duration of
/// the Map() call (plus one further record, per the reader lookback
/// contract).
///
/// This is the native map path for chained jobs: a mapper that re-keys or
/// re-slices serialized records (the n-gram window/suffix mappers, the
/// posting-join re-keyer, the maximality reverser) emits sub-slices of its
/// input through MapContext::EmitRaw / EmitEncodedKey without a typed
/// decode or re-encode. Typed Mappers run through TypedMapAdapter.
template <typename KOut, typename VOut>
class RawMapper : public RawMapperBase {
 public:
  using KeyOut = KOut;
  using ValueOut = VOut;
  using Context = MapContext<KOut, VOut>;

  virtual ~RawMapper() = default;
  virtual Status Setup(Context* ctx) { return Status::OK(); }
  virtual Status Map(Slice key, Slice value, Context* ctx) = 0;
  virtual Status Cleanup(Context* ctx) { return Status::OK(); }
};

template <typename M>
inline constexpr bool kIsRawMapper = std::is_base_of_v<RawMapperBase, M>;

/// \brief Adapts a typed Mapper onto the raw record pipeline: decodes each
/// input record's key and value into reused typed fields (no per-record
/// allocation once warm) and forwards to the typed Map().
template <typename M>
class TypedMapAdapter final
    : public RawMapper<typename M::KeyOut, typename M::ValueOut> {
 public:
  using Context = typename M::Context;

  explicit TypedMapAdapter(std::unique_ptr<M> inner)
      : inner_(std::move(inner)) {}

  Status Setup(Context* ctx) override { return inner_->Setup(ctx); }

  Status Map(Slice key, Slice value, Context* ctx) override {
    if (!Serde<typename M::KeyIn>::Decode(key, &key_)) {
      return Status::Corruption("undecodable map input key");
    }
    if (!Serde<typename M::ValueIn>::Decode(value, &value_)) {
      return Status::Corruption("undecodable map input value");
    }
    return inner_->Map(key_, value_, ctx);
  }

  Status Cleanup(Context* ctx) override { return inner_->Cleanup(ctx); }

 private:
  std::unique_ptr<M> inner_;
  typename M::KeyIn key_{};      // Reused across records.
  typename M::ValueIn value_{};  // Reused across records.
};

/// \brief Tag base marking reducers that consume serialized groups
/// directly (used for compile-time dispatch in RunJob).
class RawReducerBase {};

/// \brief Base class for raw reducers: one call per key group, streaming
/// the group's records zero-copy off the k-way merge.
///
/// `group->key()` is the group's leading serialized key until the first
/// NextValue() call and the last consumed record's key afterwards (see
/// RawValueIterator); values surface as serialized slices that the reducer
/// decodes only if it needs them. Unconsumed values are skipped by the
/// driver. This is the native reduce path: counting/aggregation reducers
/// that re-emit their key verbatim (or drop the group) never decode keys,
/// and SUFFIX-sigma counts group cardinality without touching value bytes.
///
/// The typed Reducer below is adapted onto this API by TypedReduceAdapter;
/// only that adapter pays a per-group key decode.
template <typename KOut, typename VOut>
class RawReducer : public RawReducerBase {
 public:
  using KeyOut = KOut;
  using ValueOut = VOut;
  using Context = ReduceContext<KOut, VOut>;

  virtual ~RawReducer() = default;
  virtual Status Setup(Context* ctx) { return Status::OK(); }
  virtual Status Reduce(GroupValueIterator* group, Context* ctx) = 0;
  /// Invoked once after the last group — SUFFIX-sigma flushes its stacks
  /// here, like the paper's cleanup() hook.
  virtual Status Cleanup(Context* ctx) { return Status::OK(); }
};

/// \brief Base class for typed reducers: reduce(k2, list<v2>) ->
/// list<(k3, v3)>. Runs on the raw pipeline through TypedReduceAdapter.
template <typename KIn, typename VIn, typename KOut, typename VOut>
class Reducer {
 public:
  using KeyIn = KIn;
  using ValueIn = VIn;
  using KeyOut = KOut;
  using ValueOut = VOut;
  using Context = ReduceContext<KOut, VOut>;
  using Values = ValueStream<VIn>;

  virtual ~Reducer() = default;
  virtual Status Setup(Context* ctx) { return Status::OK(); }
  virtual Status Reduce(const KIn& key, Values* values, Context* ctx) = 0;
  /// Invoked once after the last group — SUFFIX-sigma flushes its stacks
  /// here, like the paper's cleanup() hook.
  virtual Status Cleanup(Context* ctx) { return Status::OK(); }
};

template <typename R>
inline constexpr bool kIsRawReducer = std::is_base_of_v<RawReducerBase, R>;

/// \brief Adapts a typed Reducer onto the raw grouped pipeline.
///
/// Decodes the group's leading key once into a reused typed key (Hadoop
/// semantics: under a coarse grouping comparator the reducer sees the
/// group's *first* key in sort order) and wraps the raw iterator in a
/// lazily-decoding ValueStream.
template <typename R>
class TypedReduceAdapter final
    : public RawReducer<typename R::KeyOut, typename R::ValueOut> {
 public:
  using Context = typename R::Context;

  explicit TypedReduceAdapter(std::unique_ptr<R> inner)
      : inner_(std::move(inner)) {}

  Status Setup(Context* ctx) override { return inner_->Setup(ctx); }

  Status Reduce(GroupValueIterator* group, Context* ctx) override {
    if (!Serde<typename R::KeyIn>::Decode(group->key(), &key_)) {
      return Status::Corruption("undecodable reduce key");
    }
    typename R::Values values(group);
    Status st = inner_->Reduce(key_, &values, ctx);
    if (st.ok() && values.decode_error()) {
      st = Status::Corruption("undecodable reduce value");
    }
    return st;
  }

  Status Cleanup(Context* ctx) override { return inner_->Cleanup(ctx); }

 private:
  std::unique_ptr<R> inner_;
  typename R::KeyIn key_{};  // Reused across groups.
};

/// Combiner that sums varint-encoded uint64 values per key (the classic
/// word-count local aggregation from Section V).
inline RawCombineFn SumCombiner() {
  return [](Slice key, RawValueIterator* values,
            RecordSink* sink) -> Status {
    uint64_t total = 0;
    while (values->NextValue()) {
      uint64_t x = 0;
      if (!Serde<uint64_t>::Decode(values->value(), &x)) {
        return Status::Corruption("SumCombiner: bad value");
      }
      total += x;
    }
    // Serde<uint64_t> wire form is a varint; encode into a stack buffer.
    char buf[kMaxVarint64Bytes];
    char* end = EncodeVarint64To(buf, total);
    return sink->Append(key, Slice(buf, static_cast<size_t>(end - buf)));
  };
}

namespace internal {

inline uint32_t DeriveNumMapTasks(const JobConfig& config,
                                  uint64_t input_rows) {
  uint32_t n = config.num_map_tasks != 0 ? config.num_map_tasks
                                         : config.map_slots * 2;
  if (input_rows == 0) {
    return 1;
  }
  if (n > input_rows) {
    n = static_cast<uint32_t>(input_rows);
  }
  return n == 0 ? 1 : n;
}

}  // namespace internal

/// Runs one MapReduce job over serialized datasets (the native overload).
///
/// \param config    runtime knobs (slots, reducers, comparator, ...).
/// \param input     serialized input records; map task i sees a contiguous
///        byte-balanced range (split at record boundaries).
/// \param make_mapper / make_reducer  factories, invoked once per task, so
///        user code can capture parameters (tau, sigma, dictionaries).
///        Mappers may be RawMapper or typed Mapper subclasses; reducers
///        RawReducer or typed Reducer — typed ones run through adapters.
/// \param output    filled with serialized reducer emissions, reducer
///        order (whole reducer partitions are moved, not copied).
/// \param combiner  optional local aggregation run during every spill.
template <typename M, typename R>
Result<JobMetrics> RunJob(
    const JobConfig& config, const RecordTable& input,
    const std::function<std::unique_ptr<M>()>& make_mapper,
    const std::function<std::unique_ptr<R>()>& make_reducer,
    RecordTable* output, RawCombineFn combiner = nullptr) {
  if constexpr (!kIsRawReducer<R>) {
    // Raw mappers declare KeyOut/ValueOut too, so the cross-check holds
    // whenever the reducer is typed.
    static_assert(std::is_same_v<typename M::KeyOut, typename R::KeyIn>,
                  "mapper key-out must equal reducer key-in");
    static_assert(std::is_same_v<typename M::ValueOut, typename R::ValueIn>,
                  "mapper value-out must equal reducer value-in");
  }
  using MKOut = typename M::KeyOut;
  using MVOut = typename M::ValueOut;

  Stopwatch job_clock;
  Counters counters;
  JobMetrics metrics;
  metrics.job_name = config.name;

  // Resolve the spill directory.
  std::string work_dir = config.work_dir;
  std::unique_ptr<TempDir> auto_dir;
  if (work_dir.empty()) {
    auto created = TempDir::Create("ngram-mr");
    if (!created.ok()) {
      return created.status();
    }
    auto_dir = std::make_unique<TempDir>(std::move(created).ValueOrDie());
    work_dir = auto_dir->path().string();
  }

  const uint32_t num_map_tasks =
      internal::DeriveNumMapTasks(config, input.num_records());
  const uint32_t num_reducers = config.num_reducers == 0 ? 1
                                                         : config.num_reducers;

  // ---------------------------------------------------------------- map --
  // Tasks are byte-balanced over the serialized input: with variable-size
  // records (posting lists, chained reducer output) equal row counts can
  // be wildly unequal work, and the byte share tracks work much closer.
  Stopwatch map_clock;
  const std::vector<RecordTable::View> splits =
      input.SplitByBytes(num_map_tasks);
  IoEnv* const io_env = ResolveEnv(config.io_env);

  // Committed map output — generation-tracked so corruption recovery and
  // the early shuffle service can both plan over stable snapshots (see
  // MapOutputRegistry in shuffle_service.h).
  MapOutputRegistry map_outputs;
  map_outputs.Resize(num_map_tasks);

  // Each checksummed run file is CRC-verified once, by whichever reduce
  // task or eager merge worker opens it first (a no-op registry unless
  // checksum_spills). Keyed by path, so a regenerated run — fresh
  // attempt-scoped name — gets a fresh verification instead of
  // inheriting the corrupt file's verdict.
  RunCrcVerifier crc_verifier;

  // Shuffle runs are job-private: whatever run files are still on disk
  // when the driver leaves — success or any early error return — are
  // removed, so a user-provided work_dir comes back clean.
  struct RunFileCleanup {
    MapOutputRegistry* outputs;
    IoEnv* env;
    ~RunFileCleanup() {
      // Every worker has joined by the time the guard runs, but the
      // guarded members still require the (uncontended) lock.
      MutexLock lock(&outputs->mu);
      for (const auto& task : outputs->runs) {
        if (task != nullptr) {
          RemoveRunFiles(*task, env);
        }
      }
      for (const auto& old : outputs->retired) {
        if (old != nullptr) {
          RemoveRunFiles(*old, env);
        }
      }
    }
  } run_file_cleanup{&map_outputs, io_env};

  // Fetch shuffle (JobConfig::fetch_shuffle; docs/architecture.md
  // section 10): committed map output is published to a MapOutputServer
  // and pulled back over a byte-stream transport into local clone run
  // files; the whole reduce side then plans only over the clones, exactly
  // as a remote reducer would. Clones live in their own registry with
  // their own cleanup guard; origin files are kept until job end (they
  // back re-fetches after a producer re-execution), so fetch mode holds
  // roughly 2x the shuffle bytes on disk — the price a real cluster pays
  // in network transfer, paid here in work_dir space.
  const bool fetch_shuffle = config.fetch_shuffle;
  MapOutputRegistry fetched_outputs;
  fetched_outputs.Resize(fetch_shuffle ? num_map_tasks : 0);
  RunFileCleanup fetched_file_cleanup{&fetched_outputs, io_env};

  // Transport, loopback server, and fetcher — declared after the cleanup
  // guards so the server stops (connection threads joined, no extent read
  // in flight) before any run file is unlinked.
  std::unique_ptr<net::InProcTransport> owned_inproc_transport;
  std::unique_ptr<net::SocketTransport> owned_socket_transport;
  std::unique_ptr<net::MapOutputServer> fetch_server;
  std::unique_ptr<net::ShuffleFetcher> fetcher;
  if (fetch_shuffle) {
    net::Transport* transport = nullptr;
    std::string server_address = config.shuffle_server_address;
    const bool external_server = !server_address.empty();
    if (config.shuffle_transport_override != nullptr) {
      transport = config.shuffle_transport_override;
    } else if (external_server ||
               config.shuffle_transport == ShuffleTransport::kUnixSocket) {
      // An external server address always names a Unix socket (the
      // `ngram_tool serve-shuffle` fabric).
      owned_socket_transport = std::make_unique<net::SocketTransport>();
      transport = owned_socket_transport.get();
    } else {
      owned_inproc_transport = std::make_unique<net::InProcTransport>();
      transport = owned_inproc_transport.get();
    }
    if (!external_server) {
      // Loopback: the job serves its own committed runs. Every shuffled
      // byte still crosses the transport — the fetch path under test is
      // the two-process path minus process isolation.
      server_address = owned_socket_transport != nullptr
                           ? work_dir + "/shuffle.sock"
                           : "loopback";
      net::MapOutputServer::Options server_options;
      server_options.transport = transport;
      server_options.address = server_address;
      server_options.env = io_env;
      fetch_server = std::make_unique<net::MapOutputServer>(server_options);
      Status server_st = fetch_server->Start();
      if (!server_st.ok()) {
        return server_st.WithContext(config.name +
                                     " starting loopback shuffle server");
      }
    }
    net::ShuffleFetcher::Options fetcher_options;
    fetcher_options.transport = transport;
    fetcher_options.server_address = server_address;
    fetcher_options.work_dir = work_dir;
    fetcher_options.buffer_bytes = config.spill_buffer_bytes;
    fetcher_options.env = io_env;
    fetcher = std::make_unique<net::ShuffleFetcher>(fetcher_options);
  }

  // The registry the entire reduce side — settle-wait, planning
  // snapshots, eager merging, corruption recovery — works against:
  // fetched clones in fetch mode, the origin registry otherwise. Clone
  // files are byte-identical to their origins with identical segment
  // extents at identical (task, run) positions, so merge planning, the
  // source-order tie-break, and eager-window substitution behave exactly
  // as they do fetch-off: job output is byte-identical on or off.
  MapOutputRegistry& plan_outputs =
      fetch_shuffle ? fetched_outputs : map_outputs;

  // Early shuffle (JobConfig::shuffle_slots): background workers eagerly
  // merge committed map tasks' runs while other map tasks still execute,
  // so reduce tasks find most of their intermediate passes already done
  // when the barrier falls. Declared after the cleanup guard: the service
  // destructor (which joins the workers and unlinks every eager output)
  // must run before the guard unlinks run files a worker may be reading.
  std::unique_ptr<EarlyShuffleService> shuffle;
  if (config.shuffle_slots > 0 && config.merge_factor != 0) {
    EarlyShuffleService::Options shuffle_options;
    shuffle_options.shuffle_slots = config.shuffle_slots;
    shuffle_options.num_map_tasks = num_map_tasks;
    shuffle_options.num_partitions = num_reducers;
    shuffle_options.merge_factor = config.merge_factor;
    shuffle_options.comparator = config.sort_comparator;
    shuffle_options.work_dir = work_dir;
    shuffle_options.spill_buffer_bytes = config.spill_buffer_bytes;
    shuffle_options.compress = config.compress_runs;
    shuffle_options.checksum = config.checksum_spills;
    shuffle_options.verifier = &crc_verifier;
    shuffle_options.env = io_env;
    // In fetch mode the eager mergers read the fetched clones, like
    // every other reduce-side consumer.
    shuffle = std::make_unique<EarlyShuffleService>(shuffle_options,
                                                    &plan_outputs, &counters);
  }

  const uint32_t max_attempts = std::max(1u, config.max_task_attempts);
  auto retry_backoff = [&config](uint32_t failed_attempts) {
    if (config.task_retry_backoff_ms > 0) {
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          config.task_retry_backoff_ms * failed_attempts));
    }
  };

  // Runs one map task to completion — its own attempt-retry loop included
  // — leaving the committed runs in `*out`. Attempt ids start at
  // `attempt_base`, so a re-execution (which passes a higher base) can
  // never collide with the run names of any earlier execution. Task
  // counters flush into `sink`: the job counters for the first execution,
  // a throwaway for corruption-recovery re-executions (whose data the
  // original successful execution already counted). In fetch mode the
  // attempt additionally mirrors its committed runs through the shuffle
  // server into `*fetched_out` — a persistent fetch failure fails the
  // *map* attempt (retried with fresh output here), consuming no reduce
  // attempt, which is exactly Hadoop's fetch-failure blame assignment.
  auto run_map_task = [&](uint32_t t, uint32_t attempt_base, Counters* sink,
                          std::vector<SpillRun>* out,
                          std::vector<SpillRun>* fetched_out) -> Status {
    Status st;
    for (uint32_t attempt = 0; attempt < max_attempts; ++attempt) {
      const uint32_t attempt_id = attempt_base + attempt;
      // Each attempt starts from scratch: fresh mapper, fresh buffer,
      // fresh counters; previous partial output is discarded.
      out->clear();
      if (fetched_out != nullptr) {
        fetched_out->clear();
      }
      TaskCounters tc(sink);
      SortBuffer::Options opts;
      opts.num_partitions = num_reducers;
      opts.budget_bytes = config.sort_buffer_bytes;
      opts.comparator = config.sort_comparator;
      opts.combiner = combiner;
      opts.work_dir = work_dir;
      opts.spill_buffer_bytes = config.spill_buffer_bytes;
      opts.compress_runs = config.compress_runs;
      opts.checksum_spills = config.checksum_spills;
      // Served runs must be file-backed: force the final flush to disk in
      // fetch mode (the record stream — and so job output — is unchanged).
      opts.persist_final_flush = fetch_shuffle;
      opts.env = io_env;
      // Attempt-scoped run names: a retried attempt can never collide
      // with (and silently reuse or orphan) a discarded attempt's files.
      opts.spill_name_prefix =
          "map-" + std::to_string(t) + "-a" + std::to_string(attempt_id);
      SortBuffer buffer(opts, &tc);
      MapContext<MKOut, MVOut> ctx(config.partitioner, num_reducers,
                                   &buffer, &tc, t);
      // The record loop runs against the concrete mapper type (raw
      // mappers directly, typed ones through a stack-local adapter)
      // so every Map() call devirtualizes and inlines.
      auto run_task = [&](auto& mapper) -> Status {
        Status s = mapper.Setup(&ctx);
        std::unique_ptr<RecordReader> reader = input.NewReader(splits[t]);
        uint64_t records = 0;
        while (s.ok() && reader->Next()) {
          ++records;
          s = mapper.Map(reader->key(), reader->value(), &ctx);
        }
        tc.Increment(kMapInputRecords, records);
        // A successful attempt consumed its whole view, so the framed
        // bytes read equal the view's share of the boundary table
        // (failed attempts discard their counters either way).
        tc.Increment(kMapInputBytes, splits[t].bytes);
        if (s.ok()) {
          s = reader->status();
        }
        if (s.ok()) {
          s = mapper.Cleanup(&ctx);
        }
        ctx.FlushCounters();
        return s;
      };
      if constexpr (kIsRawMapper<M>) {
        std::unique_ptr<M> mapper = make_mapper();
        st = run_task(*mapper);
      } else {
        TypedMapAdapter<M> adapter(make_mapper());
        st = run_task(adapter);
      }
      if (st.ok()) {
        st = buffer.Finish(out);
      }
      // Map-side final merge (Hadoop's per-task spill merge): a task
      // that finished with more runs than the merge bound collapses
      // them into one partition-segmented run file, re-running the
      // combiner across runs. Reduce tasks then see at most one
      // file-backed source per map task.
      if (st.ok() && config.merge_factor != 0 &&
          out->size() > config.merge_factor) {
        ExternalMergeOptions merge_options;
        merge_options.comparator = config.sort_comparator;
        merge_options.merge_factor = config.merge_factor;
        merge_options.work_dir = work_dir;
        merge_options.name_prefix =
            "map-" + std::to_string(t) + "-a" + std::to_string(attempt_id);
        merge_options.spill_buffer_bytes = config.spill_buffer_bytes;
        merge_options.compress = config.compress_runs;
        merge_options.checksum = config.checksum_spills;
        merge_options.map_side = true;
        merge_options.combiner = combiner;
        merge_options.counters = &tc;
        merge_options.env = io_env;
        st = MergeMapRuns(merge_options, num_reducers, out);
      }
      // Fetch mode: publish the committed runs and pull them back through
      // the transport into clone files. Mirror cleans its own clones on
      // failure; the origin runs fall to the shared discard path below.
      // attempt_base / max_attempts is the execution count, which is
      // exactly the registry generation this execution will commit as.
      if (st.ok() && fetcher != nullptr) {
        st = fetcher->Mirror(t, /*generation=*/attempt_base / max_attempts,
                             attempt_id, *out, fetched_out, &tc);
      }
      if (st.ok()) {
        break;
      }
      tc.DiscardPending();
      RemoveRunFiles(*out, io_env);  // Discarded attempts leave no files.
      out->clear();
      if (attempt + 1 < max_attempts) {
        counters.Increment(kTaskRetries);
        NGRAM_LOG_WARN << config.name << " map task " << t << " attempt "
                       << attempt_id << " failed: " << st.ToString()
                       << "; retrying";
        retry_backoff(attempt + 1);
      }
    }
    return st;
  };

  std::vector<Status> map_status(num_map_tasks);
  {
    ThreadPool pool(config.map_slots);
    for (uint32_t t = 0; t < num_map_tasks; ++t) {
      pool.Submit([&, t] {
        auto runs = std::make_shared<std::vector<SpillRun>>();
        auto fetched = std::make_shared<std::vector<SpillRun>>();
        Status st = run_map_task(t, /*attempt_base=*/0, &counters,
                                 runs.get(),
                                 fetch_shuffle ? fetched.get() : nullptr);
        {
          MutexLock lock(&map_outputs.mu);
          map_outputs.runs[t] = std::move(runs);
          map_outputs.executions[t] = 1;
        }
        if (fetch_shuffle) {
          // Sequential locks, never nested: origin registry first, then
          // the clone registry the reduce side plans over.
          MutexLock lock(&fetched_outputs.mu);
          fetched_outputs.runs[t] = std::move(fetched);
          fetched_outputs.executions[t] = 1;
        }
        const bool committed = st.ok();
        map_status[t] = std::move(st);
        if (committed && shuffle != nullptr) {
          shuffle->NotifyMapTaskCommitted(t);
        }
      });
    }
    pool.Wait();
  }
  if (shuffle != nullptr) {
    // The barrier: no new eager merges; in-flight ones drain and the
    // workers join, so the eager output set is settled before any reduce
    // attempt (or early error return) looks at it.
    shuffle->Finish();
  }
  for (uint32_t t = 0; t < num_map_tasks; ++t) {
    if (!map_status[t].ok()) {
      return map_status[t].WithContext(config.name + " map task " +
                                       std::to_string(t));
    }
  }
  metrics.map_phase_ms = map_clock.ElapsedMillis();

  // ------------------------------------------------------------- reduce --
  Stopwatch reduce_clock;
  using KOut = typename R::KeyOut;
  using VOut = typename R::ValueOut;

  // Fetch-failure recovery (Hadoop's protocol for a reducer that cannot
  // fetch a map output): re-execute the producing map task and have the
  // discovering reducer re-plan over the regenerated run. Returns true
  // when task `t`'s runs were replaced — or already had been by another
  // reducer that hit the same corruption — so the caller should re-plan;
  // false when the task's re-execution budget is exhausted or the
  // re-execution itself failed (the corruption is then fatal).
  auto recover_producer = [&](uint32_t t, uint32_t seen_generation) -> bool {
    // All recovery bookkeeping lives on the registry the reduce side
    // plans over (`plan_outputs`): the clone registry in fetch mode, the
    // origin registry otherwise — the generations reducers snapshot are
    // the ones recovery must check and bump.
    plan_outputs.mu.Lock();
    // Another reducer may already be regenerating this task; wait it out
    // rather than re-executing the same task twice.
    while (plan_outputs.regenerating[t] != 0) {
      plan_outputs.cv.Wait();
    }
    if (plan_outputs.generation[t] != seen_generation) {
      plan_outputs.mu.Unlock();
      return true;  // Already replaced since this attempt's snapshot.
    }
    if (plan_outputs.executions[t] >= max_attempts) {
      plan_outputs.mu.Unlock();
      return false;  // Re-execution budget exhausted.
    }
    plan_outputs.regenerating[t] = 1;
    const uint32_t attempt_base = plan_outputs.executions[t] * max_attempts;
    plan_outputs.mu.Unlock();

    // Re-executions count into a throwaway sink: the original execution
    // already published this task's data counters, and the regenerated
    // output exists only once. In fetch mode the re-execution republishes
    // and re-fetches inside run_map_task, so a successful recovery yields
    // both fresh origin runs and fresh clones.
    Counters scratch;
    auto regenerated = std::make_shared<std::vector<SpillRun>>();
    auto refetched = std::make_shared<std::vector<SpillRun>>();
    Status rst = run_map_task(t, attempt_base, &scratch, regenerated.get(),
                              fetch_shuffle ? refetched.get() : nullptr);

    const bool replaced = rst.ok();
    if (fetch_shuffle) {
      // Origin registry first — sequential locks, never nested. The
      // regenerated origin runs back any future re-fetch of this task.
      MutexLock lock(&map_outputs.mu);
      ++map_outputs.executions[t];
      if (replaced) {
        map_outputs.retired.push_back(std::move(map_outputs.runs[t]));
        map_outputs.runs[t] = std::move(regenerated);
        ++map_outputs.generation[t];
      }
    }
    plan_outputs.mu.Lock();
    plan_outputs.regenerating[t] = 0;
    ++plan_outputs.executions[t];
    if (replaced) {
      // Retire the corrupt generation instead of destroying it: stale
      // reduce attempts may still hold pointers into it. Its files are
      // removed with everything else at job end.
      plan_outputs.retired.push_back(std::move(plan_outputs.runs[t]));
      plan_outputs.runs[t] =
          fetch_shuffle ? std::move(refetched) : std::move(regenerated);
      ++plan_outputs.generation[t];
      counters.Increment(kMapReexecutions);
      counters.Increment(kCorruptRunsRecovered);
    } else {
      // Fetch mode: a failed re-execution's clones were already cleaned
      // by Mirror / the attempt loop, so only origin files remain here.
      RemoveRunFiles(*regenerated, io_env);
      NGRAM_LOG_WARN << config.name << " map task " << t
                     << " re-execution failed: " << rst.ToString();
    }
    plan_outputs.mu.Unlock();
    plan_outputs.cv.SignalAll();
    if (replaced && shuffle != nullptr) {
      // The retired generation may back eager intermediates; invalidate
      // them so no later attempt substitutes stale-generation data. (The
      // files stay on disk until the service is destroyed — a stale
      // attempt may still be reading them, same rule as retired runs.)
      shuffle->InvalidateTask(t);
    }
    return replaced;
  };

  // Attributes a Corruption status to the map task whose committed run
  // file the message names (readers always name the file — the
  // error-context contract). -1 when no producer matches, e.g. corruption
  // in an attempt-private intermediate, which a plain retry rewrites.
  auto find_producer =
      [](const std::string& message,
         const std::vector<std::shared_ptr<std::vector<SpillRun>>>& snapshot)
      -> int {
    for (size_t t = 0; t < snapshot.size(); ++t) {
      for (const SpillRun& run : *snapshot[t]) {
        if (!run.file_path.empty() &&
            message.find(run.file_path) != std::string::npos) {
          return static_cast<int>(t);
        }
      }
    }
    return -1;
  };

  std::vector<RecordTable> reducer_outputs(num_reducers);
  std::vector<Status> reduce_status(num_reducers);
  {
    ThreadPool pool(config.reduce_slots);
    for (uint32_t r = 0; r < num_reducers; ++r) {
      pool.Submit([&, r] {
        Status st;
        uint32_t failures = 0;     // Failed attempts (recoveries excluded).
        uint32_t recoveries = 0;   // Producer re-plans this task triggered.
        uint32_t attempt_seq = 0;  // Unique attempt id, re-plans included.
        while (true) {
          // Snapshot the current run generations (shared_ptrs + flat
          // pointer list in task-id order, the determinism contract).
          // The snapshot keeps every planned-over run object alive even
          // if a producer is re-executed under this attempt — the
          // attempt then fails on the corrupt bytes and re-plans; it
          // never reads freed memory.
          std::vector<std::shared_ptr<std::vector<SpillRun>>> snapshot;
          std::vector<uint32_t> generations;
          {
            MutexLock lock(&plan_outputs.mu);
            // Plan only over settled generations: a merge planned while
            // a regeneration is mid-flight would mix the snapshot it
            // wants with files about to be retired.
            for (;;) {
              bool settled = true;
              for (const uint8_t regen : plan_outputs.regenerating) {
                if (regen != 0) {
                  settled = false;
                  break;
                }
              }
              if (settled) {
                break;
              }
              plan_outputs.cv.Wait();
            }
            snapshot = plan_outputs.runs;
            generations = plan_outputs.generation;
          }
          // Assemble the attempt's sources in map-task-id order,
          // substituting each still-valid eager intermediate for the
          // consecutive task range it covers (substitution at the
          // window's position preserves the source-order tie-break —
          // see shuffle_service.h). The shared_ptrs in `eager` keep the
          // outputs alive for the attempt even if they are invalidated
          // mid-attempt.
          std::vector<std::shared_ptr<const EarlyMergeOutput>> eager;
          if (shuffle != nullptr) {
            eager = shuffle->OutputsFor(r, generations);
          }
          std::vector<const SpillRun*> attempt_runs;
          size_t next_eager = 0;
          for (uint32_t t = 0; t < num_map_tasks; ++t) {
            if (next_eager < eager.size() &&
                eager[next_eager]->first_task == t) {
              attempt_runs.push_back(&eager[next_eager]->run);
              t = eager[next_eager]->last_task;
              ++next_eager;
              continue;
            }
            for (const SpillRun& run : *snapshot[t]) {
              attempt_runs.push_back(&run);
            }
          }

          reducer_outputs[r].Clear();
          TaskCounters tc(&counters);
          // Bounded fan-in: intermediate passes merge consecutive groups
          // of at most merge_factor sources to disk until one final pass
          // of <= merge_factor sources can feed the reducer — fds and
          // read buffers stay O(merge_factor), not O(runs).
          ExternalMergeOptions merge_options;
          merge_options.comparator = config.sort_comparator;
          merge_options.merge_factor = config.merge_factor;
          merge_options.work_dir = work_dir;
          merge_options.name_prefix = "reduce-" + std::to_string(r) + "-a" +
                                      std::to_string(attempt_seq);
          merge_options.spill_buffer_bytes = config.spill_buffer_bytes;
          merge_options.compress = config.compress_runs;
          merge_options.checksum = config.checksum_spills;
          merge_options.verifier = &crc_verifier;
          merge_options.counters = &tc;
          merge_options.env = io_env;
          ReduceMergeResult merge_inputs;
          Stopwatch barrier_clock;
          st = PrepareReduceMerge(merge_options, attempt_runs, r,
                                  &merge_inputs);
          // Post-barrier source-prep latency: the intermediate passes
          // this task still owed after the map barrier — what
          // shuffle_slots exists to shrink. Failed attempts discard it
          // with the rest of their counters.
          tc.Increment(kBarrierWaitMs,
                       static_cast<uint64_t>(barrier_clock.ElapsedMillis()));
          KWayMerger merger(std::move(merge_inputs.sources),
                            config.sort_comparator);
          const RawComparator* grouping = config.EffectiveGrouping();
          // When grouping order == sort order, cached sort prefixes are
          // conclusive for group-boundary detection.
          const bool grouping_is_sort = grouping == config.sort_comparator;

          ReduceContext<KOut, VOut> rctx(&reducer_outputs[r], &tc, r);
          std::unique_ptr<RawReducer<KOut, VOut>> reducer;
          if constexpr (kIsRawReducer<R>) {
            reducer = make_reducer();
          } else {
            reducer =
                std::make_unique<TypedReduceAdapter<R>>(make_reducer());
          }
          if (st.ok()) {
            st = reducer->Setup(&rctx);
          }

          uint64_t task_input_records = 0;
          bool have_record = st.ok() && merger.Next();
          while (st.ok() && have_record) {
            // The merger sits on the group's first record; the iterator
            // streams the group zero-copy and detects the boundary on
            // cached key slices — no per-group key copy or decode here.
            GroupValueIterator group(&merger, grouping, grouping_is_sort);
            tc.Increment(kReduceInputGroups);
            st = reducer->Reduce(&group, &rctx);
            if (st.ok()) {
              group.SkipRemaining();
            }
            tc.Increment(kReduceInputRecords, group.consumed());
            task_input_records += group.consumed();
            have_record = group.next_group_ready();
          }
          if (st.ok() && !merger.status().ok()) {
            st = merger.status();
          }
          if (st.ok()) {
            st = reducer->Cleanup(&rctx);
          }
          // Intermediate merge outputs are attempt-private scratch: gone
          // as soon as the attempt is over, successful or not.
          RemoveFiles(merge_inputs.intermediate_files, io_env);
          ++attempt_seq;
          if (st.ok()) {
            // Partition-skew visibility: the heaviest reduce task.
            tc.UpdateSharedMax(kReduceInputRecordsMax, task_input_records);
            break;
          }
          tc.DiscardPending();
          reducer_outputs[r].Clear();
          // Corruption naming a producer's committed run: replace that
          // run and re-plan. A successful recovery does not consume one
          // of this task's attempts — it is the producer's failure — but
          // is bounded on its own (per-producer execution budget plus at
          // most max_attempts recoveries per reduce task), so corrupt
          // regenerations cannot loop forever.
          if (st.IsCorruption() && recoveries < max_attempts) {
            // Corruption inside an eager intermediate itself (it went bad
            // on disk after its merge): drop the output and re-plan from
            // the committed runs — re-reading the doomed file could never
            // succeed. Bounded without an attempt budget: invalidation
            // only shrinks the (post-Finish) output set.
            if (shuffle != nullptr &&
                shuffle->InvalidateOutputNamedIn(st.message())) {
              NGRAM_LOG_WARN << config.name << " reduce task " << r
                             << ": dropped corrupt eager intermediate ("
                             << st.ToString()
                             << "); re-planning from the committed runs";
              continue;
            }
            const int victim = find_producer(st.message(), snapshot);
            if (victim >= 0 &&
                recover_producer(static_cast<uint32_t>(victim),
                                 generations[static_cast<size_t>(victim)])) {
              ++recoveries;
              NGRAM_LOG_WARN << config.name << " reduce task " << r
                             << ": replaced corrupt run of map task "
                             << victim << " (" << st.ToString()
                             << "); re-planning";
              continue;
            }
          }
          if (++failures >= max_attempts) {
            break;
          }
          counters.Increment(kTaskRetries);
          NGRAM_LOG_WARN << config.name << " reduce task " << r
                         << " attempt " << attempt_seq - 1
                         << " failed: " << st.ToString() << "; retrying";
          retry_backoff(failures);
        }
        reduce_status[r] = std::move(st);
      });
    }
    pool.Wait();
  }
  for (uint32_t r = 0; r < num_reducers; ++r) {
    if (!reduce_status[r].ok()) {
      return reduce_status[r].WithContext(config.name + " reduce task " +
                                          std::to_string(r));
    }
  }
  metrics.reduce_phase_ms = reduce_clock.ElapsedMillis();

  // Assemble the output by moving whole reducer partitions, in reducer
  // order — no per-row copy and no counting pre-pass (tables track their
  // own sizes).
  output->Clear();
  for (auto& part : reducer_outputs) {
    output->AppendTable(std::move(part));
  }

  metrics.counters = counters.Snapshot();
  metrics.wallclock_ms = job_clock.ElapsedMillis() + config.job_overhead_ms;
  NGRAM_LOG_INFO << "job '" << config.name << "' done in "
                 << metrics.wallclock_ms << " ms: "
                 << metrics.Counter(kMapOutputRecords) << " map records, "
                 << metrics.Counter(kMapOutputBytes) << " map bytes, "
                 << output->num_records() << " output rows";
  return metrics;
}

/// Serialized input, typed output: runs the native job and decodes the
/// output table once (the end-of-pipeline drain).
template <typename M, typename R>
Result<JobMetrics> RunJob(
    const JobConfig& config, const RecordTable& input,
    const std::function<std::unique_ptr<M>()>& make_mapper,
    const std::function<std::unique_ptr<R>()>& make_reducer,
    MemoryTable<typename R::KeyOut, typename R::ValueOut>* output,
    RawCombineFn combiner = nullptr) {
  RecordTable raw_output;
  auto metrics = RunJob<M, R>(config, input, make_mapper, make_reducer,
                              &raw_output, combiner);
  if (!metrics.ok()) {
    return metrics;
  }
  NGRAM_RETURN_NOT_OK(DecodeTable(raw_output, output)
                          .WithContext(config.name + " output decode"));
  return metrics;
}

/// Typed input, serialized output: encodes the input once, then runs the
/// native job (chained pipelines keep the output serialized).
template <typename M, typename R>
Result<JobMetrics> RunJob(
    const JobConfig& config,
    const MemoryTable<typename M::KeyIn, typename M::ValueIn>& input,
    const std::function<std::unique_ptr<M>()>& make_mapper,
    const std::function<std::unique_ptr<R>()>& make_reducer,
    RecordTable* output, RawCombineFn combiner = nullptr) {
  const RecordTable raw_input = EncodeTable(input);
  return RunJob<M, R>(config, raw_input, make_mapper, make_reducer, output,
                      combiner);
}

/// Typed input and output: the convenience shim for user code and tests.
template <typename M, typename R>
Result<JobMetrics> RunJob(
    const JobConfig& config,
    const MemoryTable<typename M::KeyIn, typename M::ValueIn>& input,
    const std::function<std::unique_ptr<M>()>& make_mapper,
    const std::function<std::unique_ptr<R>()>& make_reducer,
    MemoryTable<typename R::KeyOut, typename R::ValueOut>* output,
    RawCombineFn combiner = nullptr) {
  const RecordTable raw_input = EncodeTable(input);
  return RunJob<M, R>(config, raw_input, make_mapper, make_reducer, output,
                      combiner);
}

}  // namespace ngram::mr
