#include "mapreduce/io_env.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#include <vector>

namespace ngram::mr {

namespace {

std::string Errno(const char* op, const std::string& path) {
  return std::string(op) + " " + path + ": " + std::strerror(errno);
}

// ------------------------------------------------- stdio passthrough ----

class StdioReadableFile final : public ReadableFile {
 public:
  StdioReadableFile(FILE* file, std::string path)
      : file_(file), path_(std::move(path)) {}
  ~StdioReadableFile() override { std::fclose(file_); }

  Status Read(char* dst, size_t n, size_t* read) override {
    *read = std::fread(dst, 1, n, file_);
    if (*read < n && std::ferror(file_)) {
      return Status::IOError(Errno("read", path_));
    }
    return Status::OK();
  }

  Status Seek(uint64_t offset) override {
    if (fseeko(file_, static_cast<off_t>(offset), SEEK_SET) != 0) {
      return Status::IOError(Errno("seek", path_));
    }
    return Status::OK();
  }

 private:
  FILE* file_;
  const std::string path_;
};

class StdioWritableFile final : public WritableFile {
 public:
  StdioWritableFile(FILE* file, std::string path)
      : file_(file), path_(std::move(path)) {}
  ~StdioWritableFile() override {
    if (file_ != nullptr) {
      std::fclose(file_);
    }
  }

  Status Write(const char* data, size_t n) override {
    if (std::fwrite(data, 1, n, file_) != n) {
      return Status::IOError(Errno("write", path_));
    }
    return Status::OK();
  }

  Status Sync() override {
    // Flushes user-space buffers only. A physical fsync would guard
    // against OS crashes this single-process runtime cannot survive
    // anyway, and costs one disk barrier per run file at spill-heavy
    // scale — the commit protocol needs the ordering point, not the
    // durability.
    if (std::fflush(file_) != 0) {
      return Status::IOError(Errno("sync", path_));
    }
    return Status::OK();
  }

  Status Close() override {
    if (file_ == nullptr) {
      return Status::OK();
    }
    FILE* f = file_;
    file_ = nullptr;
    if (std::fclose(f) != 0) {
      return Status::IOError(Errno("close", path_));
    }
    return Status::OK();
  }

 private:
  FILE* file_;
  const std::string path_;
};

class StdioEnv final : public IoEnv {
 public:
  Status NewReadableFile(const std::string& path, size_t buffer_hint,
                         std::unique_ptr<ReadableFile>* file) override {
    FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) {
      return Status::IOError(Errno("open", path));
    }
    if (buffer_hint > 0) {
      // Best effort: a failed setvbuf only costs smaller physical reads.
      (void)std::setvbuf(f, nullptr, _IOFBF, buffer_hint);
    }
    *file = std::make_unique<StdioReadableFile>(f, path);
    return Status::OK();
  }

  Status NewWritableFile(const std::string& path,
                         std::unique_ptr<WritableFile>* file) override {
    FILE* f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) {
      return Status::IOError(Errno("create", path));
    }
    *file = std::make_unique<StdioWritableFile>(f, path);
    return Status::OK();
  }

  Status Rename(const std::string& from, const std::string& to) override {
    if (std::rename(from.c_str(), to.c_str()) != 0) {
      return Status::IOError(Errno("rename", from) + " -> " + to);
    }
    return Status::OK();
  }

  Status Unlink(const std::string& path) override {
    if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
      return Status::IOError(Errno("unlink", path));
    }
    return Status::OK();
  }

  Status FileSize(const std::string& path, uint64_t* size) override {
    struct stat st;
    if (::stat(path.c_str(), &st) != 0) {
      return Status::IOError(Errno("stat", path));
    }
    *size = static_cast<uint64_t>(st.st_size);
    return Status::OK();
  }
};

// ----------------------------------------------------------- mmap ------

/// mmap(2)-backed MmapFile. Unmapped on destruction.
class PosixMmapFile final : public MmapFile {
 public:
  PosixMmapFile(void* base, size_t size) : base_(base), size_(size) {}
  ~PosixMmapFile() override {
    if (base_ != nullptr) {
      ::munmap(base_, size_);
    }
  }

  Slice data() const override {
    return Slice(static_cast<const char*>(base_), size_);
  }

 private:
  void* base_;
  const size_t size_;
};

}  // namespace

Status IoEnv::NewMmapFile(const std::string& path,
                          std::unique_ptr<MmapFile>* file) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IOError(Errno("open", path));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const Status status = Status::IOError(Errno("stat", path));
    ::close(fd);
    return status;
  }
  const size_t size = static_cast<size_t>(st.st_size);
  void* base = nullptr;
  if (size > 0) {
    base = ::mmap(nullptr, size, PROT_READ, MAP_SHARED, fd, 0);
    if (base == MAP_FAILED) {
      const Status status = Status::IOError(Errno("mmap", path));
      ::close(fd);
      return status;
    }
  }
  ::close(fd);  // The mapping keeps the file alive.
  *file = std::make_unique<PosixMmapFile>(base, size);
  return Status::OK();
}

IoEnv* IoEnv::Default() {
  static StdioEnv* env = new StdioEnv();  // Never destroyed: needed in dtors.
  return env;
}

// ------------------------------------------------------- fault plans ----

namespace {

// SplitMix64: the standard seed-expansion mix (same generator random.h
// uses for xoshiro seeding) so nearby seeds produce unrelated plans.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

FaultPlan FaultPlan::FromSeed(uint64_t seed) {
  FaultPlan plan;
  const uint64_t r0 = Mix64(seed);
  const uint64_t r1 = Mix64(seed ^ 0xa5a5a5a5a5a5a5a5ULL);
  const uint64_t r2 = Mix64(seed ^ 0x0123456789abcdefULL);
  switch (r0 % 6) {
    case 0:
      plan.kind = Kind::kReadError;
      break;
    case 1:
      plan.kind = Kind::kWriteError;
      break;
    case 2:
      plan.kind = Kind::kShortWrite;
      break;
    case 3:
      plan.kind = Kind::kBitFlip;
      break;
    case 4:
      plan.kind = Kind::kCommitError;
      break;
    default:
      plan.kind = Kind::kRenameError;
      break;
  }
  // Op ranges are tuned to the chaos harness's spill-heavy config: reads
  // and writes number in the hundreds per job there, syncs/renames once
  // per run file. Indices past the job's op count never fire (degenerate
  // dichotomy arm), which keeps the sweep honest about clean completions.
  switch (plan.kind) {
    case Kind::kReadError:
      plan.op = 1 + r1 % 512;
      break;
    case Kind::kWriteError:
    case Kind::kShortWrite:
    case Kind::kBitFlip:
      plan.op = 1 + r1 % 256;
      break;
    case Kind::kCommitError:
    case Kind::kRenameError:
      plan.op = 1 + r1 % 24;
      break;
    case Kind::kNone:
      break;
  }
  plan.bit = r2;
  return plan;
}

const char* FaultPlan::KindName(Kind kind) {
  switch (kind) {
    case Kind::kNone:
      return "none";
    case Kind::kReadError:
      return "read-error";
    case Kind::kWriteError:
      return "write-error";
    case Kind::kShortWrite:
      return "short-write";
    case Kind::kBitFlip:
      return "bit-flip";
    case Kind::kCommitError:
      return "commit-error";
    case Kind::kRenameError:
      return "rename-error";
  }
  return "unknown";
}

std::string FaultPlan::ToString() const {
  return std::string(KindName(kind)) + " at op " + std::to_string(op) +
         (kind == Kind::kBitFlip ? " bit " + std::to_string(bit) : "");
}

// --------------------------------------------------------- fault env ----

// Named (not anonymous-namespace) classes: they are the header's friends.
class FaultReadableFile final : public ReadableFile {
 public:
  FaultReadableFile(std::unique_ptr<ReadableFile> base, std::string path,
                    FaultEnv* env)
      : base_(std::move(base)), path_(std::move(path)), env_(env) {}

  Status Read(char* dst, size_t n, size_t* read) override;
  Status Seek(uint64_t offset) override { return base_->Seek(offset); }

 private:
  std::unique_ptr<ReadableFile> base_;
  const std::string path_;
  FaultEnv* env_;
};

class FaultWritableFile final : public WritableFile {
 public:
  FaultWritableFile(std::unique_ptr<WritableFile> base, std::string path,
                    FaultEnv* env)
      : base_(std::move(base)), path_(std::move(path)), env_(env) {}

  Status Write(const char* data, size_t n) override;
  Status Sync() override;
  Status Close() override { return base_->Close(); }

 private:
  std::unique_ptr<WritableFile> base_;
  const std::string path_;
  FaultEnv* env_;
};

namespace {

std::string Injected(const char* what, const std::string& path,
                     uint64_t op) {
  return std::string("injected ") + what + " on " + path + " (op " +
         std::to_string(op) + ")";
}

}  // namespace

Status FaultReadableFile::Read(char* dst, size_t n, size_t* read) {
  const uint64_t op = env_->reads_.fetch_add(1) + 1;
  if (env_->ShouldFire(FaultPlan::Kind::kReadError, op)) {
    *read = 0;
    return Status::IOError(Injected("EIO reading", path_, op));
  }
  return base_->Read(dst, n, read);
}

Status FaultWritableFile::Write(const char* data, size_t n) {
  const uint64_t op = env_->writes_.fetch_add(1) + 1;
  const FaultPlan& plan = env_->plan_;
  if (plan.kind == FaultPlan::Kind::kBitFlip &&
      env_->ShouldFire(FaultPlan::Kind::kBitFlip, op) && n > 0) {
    // Silent corruption: one bit of this buffer lands inverted on disk
    // and the writer never learns. Only checksums can catch this.
    std::vector<char> flipped(data, data + n);
    const uint64_t bit = plan.bit % (static_cast<uint64_t>(n) * 8);
    flipped[bit / 8] ^= static_cast<char>(1u << (bit % 8));
    return base_->Write(flipped.data(), n);
  }
  if (plan.kind == FaultPlan::Kind::kShortWrite &&
      env_->ShouldFire(FaultPlan::Kind::kShortWrite, op)) {
    // Torn write: a prefix reaches the file, then the device fills up.
    Status ignored = base_->Write(data, n / 2);
    (void)ignored;
    return Status::IOError(Injected("ENOSPC (short write) writing", path_, op));
  }
  if (env_->ShouldFire(FaultPlan::Kind::kWriteError, op)) {
    return Status::IOError(Injected("ENOSPC writing", path_, op));
  }
  return base_->Write(data, n);
}

Status FaultWritableFile::Sync() {
  const uint64_t op = env_->syncs_.fetch_add(1) + 1;
  if (env_->ShouldFire(FaultPlan::Kind::kCommitError, op)) {
    // Data is already written; the commit barrier fails, so the rename
    // never runs and the temp file must be cleaned up by the writer.
    return Status::IOError(Injected("EIO syncing", path_, op));
  }
  return base_->Sync();
}

bool FaultEnv::ShouldFire(FaultPlan::Kind kind, uint64_t count) {
  if (plan_.kind != kind || count != plan_.op) {
    return false;
  }
  bool expected = false;
  return fired_.compare_exchange_strong(expected, true,
                                        std::memory_order_acq_rel);
}

Status FaultEnv::NewReadableFile(const std::string& path, size_t buffer_hint,
                                 std::unique_ptr<ReadableFile>* file) {
  std::unique_ptr<ReadableFile> base;
  Status status = base_->NewReadableFile(path, buffer_hint, &base);
  if (!status.ok()) {
    return status;
  }
  *file = std::make_unique<FaultReadableFile>(std::move(base), path, this);
  return Status::OK();
}

Status FaultEnv::NewWritableFile(const std::string& path,
                                 std::unique_ptr<WritableFile>* file) {
  std::unique_ptr<WritableFile> base;
  Status status = base_->NewWritableFile(path, &base);
  if (!status.ok()) {
    return status;
  }
  *file = std::make_unique<FaultWritableFile>(std::move(base), path, this);
  return Status::OK();
}

Status FaultEnv::Rename(const std::string& from, const std::string& to) {
  const uint64_t op = renames_.fetch_add(1) + 1;
  if (ShouldFire(FaultPlan::Kind::kRenameError, op)) {
    return Status::IOError(Injected("EIO renaming", from, op) + " -> " + to);
  }
  return base_->Rename(from, to);
}

Status FaultEnv::Unlink(const std::string& path) { return base_->Unlink(path); }

Status FaultEnv::FileSize(const std::string& path, uint64_t* size) {
  return base_->FileSize(path, size);
}

}  // namespace ngram::mr
