// MemoryTable: a typed in-memory dataset of (key, value) rows, used as job
// input and output. Multi-job pipelines (the APRIORI methods, the
// maximality post-filter) chain tables from one job into the next.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

namespace ngram::mr {

template <typename K, typename V>
struct MemoryTable {
  using Row = std::pair<K, V>;

  std::vector<Row> rows;

  void Add(K key, V value) {
    rows.emplace_back(std::move(key), std::move(value));
  }

  uint64_t size() const { return rows.size(); }
  bool empty() const { return rows.empty(); }
  void Clear() { rows.clear(); }
};

}  // namespace ngram::mr
