// Job-boundary datasets.
//
// RecordTable is the native boundary between chained MapReduce jobs: an
// arena-backed table of serialized (key, value) records in the same framed
// wire form the shuffle uses, so round k's reducer output feeds round k+1's
// mappers as slices — no typed decode/re-encode at the boundary. Reduce
// contexts append to it without materializing typed rows, map input reads
// it through the zero-copy RecordReader contract (one-record lookback
// included), and the driver splits map tasks over it by serialized byte
// size instead of row count.
//
// MemoryTable, the typed in-memory dataset of (key, value) rows, remains
// as the convenience boundary for user-facing code and tests; RunJob
// adapts it onto RecordTable with one encode/decode pass per job edge.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "encoding/serde.h"
#include "mapreduce/record.h"
#include "util/macros.h"
#include "util/status.h"

namespace ngram::mr {

template <typename K, typename V>
struct MemoryTable {
  using Row = std::pair<K, V>;

  std::vector<Row> rows;

  void Add(K key, V value) {
    rows.emplace_back(std::move(key), std::move(value));
  }

  uint64_t size() const { return rows.size(); }
  bool empty() const { return rows.empty(); }
  void Clear() { rows.clear(); }
};

/// \brief Serialized (key, value) dataset: the native job boundary.
///
/// Records are framed ([klen][vlen][key][value], see record.h) back-to-back
/// in chunked arenas. Appends go to the active chunk; a full chunk is
/// sealed and never reallocated again, so concatenating tables
/// (AppendTable) moves whole arenas instead of copying rows. Readers
/// surface key/value slices pointing straight into the arenas.
///
/// Write-then-read discipline: create readers and views only once the
/// table is no longer being appended to (the active chunk may reallocate
/// while it grows). The job driver observes this naturally — reducers
/// finish writing before the next job's map phase opens readers. Once
/// reading starts, chunk bytes are stable for the table's lifetime, so
/// reader slices remain valid across any number of Next() calls — the
/// one-record lookback contract holds trivially.
class RecordTable {
 public:
  /// Soft chunk size: a chunk past this many bytes is sealed and a new one
  /// started. One record larger than this still lands in a single chunk
  /// (records never span chunks).
  static constexpr size_t kChunkBytes = 1 << 20;

  RecordTable() = default;
  RecordTable(RecordTable&&) = default;
  RecordTable& operator=(RecordTable&&) = default;
  NGRAM_DISALLOW_COPY_AND_ASSIGN(RecordTable);

  /// Appends one serialized record.
  void Append(Slice key, Slice value);

  /// Splices every record of `other` onto the end of this table, in order,
  /// by moving its chunk arenas — O(chunks), no per-record work. `other`
  /// is left empty.
  void AppendTable(RecordTable&& other);

  uint64_t num_records() const { return num_records_; }
  /// Total framed bytes (the byte size map-task splitting balances).
  uint64_t byte_size() const { return byte_size_; }
  bool empty() const { return num_records_ == 0; }
  void Clear();

  /// A contiguous record range of the table (map task input split).
  /// Offsets always sit on record boundaries.
  struct View {
    size_t begin_chunk = 0;
    size_t begin_offset = 0;
    size_t end_chunk = 0;  // Inclusive chunk index; range ends at
    size_t end_offset = 0; // end_offset within it (exclusive byte bound).
    uint64_t bytes = 0;    // Framed bytes covered by the view.

    bool empty() const { return bytes == 0; }
  };

  /// The whole table as one view.
  View WholeView() const;

  /// Splits the table into exactly `num_shards` contiguous views,
  /// byte-balanced: shard i ends at the first record boundary at or past
  /// global byte offset `byte_size * (i+1) / num_shards`. Together the
  /// views cover every record exactly once; trailing views may be empty
  /// when single records exceed a shard's byte share.
  std::vector<View> SplitByBytes(uint32_t num_shards) const;

  /// Zero-copy readers. Slices stay valid for the table's lifetime.
  std::unique_ptr<RecordReader> NewReader() const;
  std::unique_ptr<RecordReader> NewReader(const View& view) const;

  /// Serializes the table to `path` behind a self-describing header
  /// carrying the record/byte counts. With `compress` (the default)
  /// records are stored in the prefix-compressed block run format
  /// (runfile.h) whose per-block CRC-32s make the boundary file
  /// tamper-evident: Load() surfaces any flipped byte as Corruption, and
  /// the header counts additionally catch clean truncation (whole
  /// trailing blocks lost to a partial copy). `compress = false` writes
  /// raw frames (count checks and structural checks only — no CRCs).
  /// I/O goes through `env` (nullptr means IoEnv::Default()).
  Status Save(const std::string& path, bool compress = true,
              IoEnv* env = nullptr) const;

  /// Loads a table serialized by Save(), replacing `*table`'s contents.
  /// The header names the at-rest format, so callers need not know how
  /// the file was written.
  static Status Load(const std::string& path, RecordTable* table,
                     IoEnv* env = nullptr);

 private:
  friend class RecordTableReader;

  std::vector<std::string> chunks_;
  uint64_t num_records_ = 0;
  uint64_t byte_size_ = 0;
};

/// Encodes one typed row onto a RecordTable through `scratch` (reused by
/// the caller across rows; no per-row allocation once warm).
template <typename K, typename V>
inline void AppendTypedRow(RecordTable* table, const K& key, const V& value,
                           std::string* scratch) {
  scratch->clear();
  Serde<K>::Encode(key, scratch);
  const size_t key_len = scratch->size();
  Serde<V>::Encode(value, scratch);
  table->Append(Slice(scratch->data(), key_len),
                Slice(scratch->data() + key_len, scratch->size() - key_len));
}

/// Serializes a typed table into a RecordTable (the typed-input shim of
/// RunJob; chained drivers keep their tables serialized instead).
template <typename K, typename V>
inline RecordTable EncodeTable(const MemoryTable<K, V>& typed) {
  RecordTable table;
  std::string scratch;
  for (const auto& [key, value] : typed.rows) {
    AppendTypedRow(&table, key, value, &scratch);
  }
  return table;
}

/// Decodes every record of `table` into typed rows (the typed-output shim
/// of RunJob and the final drain of chained pipelines).
template <typename K, typename V>
inline Status DecodeTable(const RecordTable& table, MemoryTable<K, V>* out) {
  out->Clear();
  out->rows.reserve(table.num_records());
  auto reader = table.NewReader();
  while (reader->Next()) {
    K key;
    V value;
    if (!Serde<K>::Decode(reader->key(), &key) ||
        !Serde<V>::Decode(reader->value(), &value)) {
      return Status::Corruption("undecodable serialized table row");
    }
    out->rows.emplace_back(std::move(key), std::move(value));
  }
  return reader->status();
}

}  // namespace ngram::mr
