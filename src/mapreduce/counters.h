// Job counters mirroring Hadoop's, including the two the paper reports:
// MAP_OUTPUT_BYTES and MAP_OUTPUT_RECORDS (Section VII-A, measures (b), (c)).
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "util/mutex.h"

namespace ngram::mr {

/// Well-known counter names (kept string-typed so user jobs can add theirs).
inline constexpr const char* kMapInputRecords = "MAP_INPUT_RECORDS";
/// Serialized bytes fed to mappers — for chained jobs this is the size of
/// the previous round's output, i.e. the job-boundary traffic.
inline constexpr const char* kMapInputBytes = "MAP_INPUT_BYTES";
inline constexpr const char* kMapOutputRecords = "MAP_OUTPUT_RECORDS";
inline constexpr const char* kMapOutputBytes = "MAP_OUTPUT_BYTES";
inline constexpr const char* kCombineInputRecords = "COMBINE_INPUT_RECORDS";
inline constexpr const char* kCombineOutputRecords = "COMBINE_OUTPUT_RECORDS";
inline constexpr const char* kReduceInputGroups = "REDUCE_INPUT_GROUPS";
inline constexpr const char* kReduceInputRecords = "REDUCE_INPUT_RECORDS";
inline constexpr const char* kReduceOutputRecords = "REDUCE_OUTPUT_RECORDS";
inline constexpr const char* kSpilledRecords = "SPILLED_RECORDS";
inline constexpr const char* kSpillFiles = "SPILL_FILES";
/// Bounded-fan-in merge operations that wrote an intermediate run to disk
/// (map-side final merges and reduce-side intermediate passes). Zero when
/// every task stayed within `merge_factor` sources.
inline constexpr const char* kMergePasses = "MERGE_PASSES";
/// Bytes written to intermediate merge outputs (re-spilled shuffle data;
/// the I/O price of bounding the fan-in).
inline constexpr const char* kIntermediateMergeBytes =
    "INTERMEDIATE_MERGE_BYTES";
/// Per-phase breakout of the two counters above: map-side final merges vs
/// reduce-side intermediate passes (kMergePasses/kIntermediateMergeBytes
/// stay the job-level totals).
inline constexpr const char* kMapMergePasses = "MAP_MERGE_PASSES";
inline constexpr const char* kMapIntermediateMergeBytes =
    "MAP_INTERMEDIATE_MERGE_BYTES";
inline constexpr const char* kReduceMergePasses = "REDUCE_MERGE_PASSES";
inline constexpr const char* kReduceIntermediateMergeBytes =
    "REDUCE_INTERMEDIATE_MERGE_BYTES";
/// Bytes every persisted run (spill, map-side final merge, reduce-side
/// intermediate pass) would occupy in raw [klen][vlen][key][value]
/// framing vs the bytes actually written at rest — the observable
/// compression ratio of JobConfig::compress_runs (equal when off).
inline constexpr const char* kRunBytesRaw = "RUN_BYTES_RAW";
inline constexpr const char* kRunBytesWritten = "RUN_BYTES_WRITTEN";
inline constexpr const char* kTaskRetries = "TASK_RETRIES";
/// Map tasks re-executed because a reduce attempt found one of their
/// persisted runs corrupt (the fetch-failure -> producer re-execution
/// protocol). Data counters of re-executed attempts are discarded, so
/// together with kCorruptRunsRecovered these are the only counters
/// allowed to differ from a failure-free run of the same job.
inline constexpr const char* kMapReexecutions = "MAP_REEXECUTIONS";
/// Corrupt persisted runs successfully replaced by a regenerated copy.
inline constexpr const char* kCorruptRunsRecovered = "CORRUPT_RUNS_RECOVERED";
/// Eager reduce-side merge passes the early shuffle service ran while map
/// tasks were still executing, and the bytes they wrote. Also counted in
/// the kMergePasses / kIntermediateMergeBytes totals (they are ordinary
/// intermediate passes, just pulled ahead of the map barrier). How many
/// passes run eagerly depends on map-task commit timing, so these — like
/// every merge-accounting counter once JobConfig::shuffle_slots > 0 — are
/// scheduling-dependent; the *data* counters stay deterministic.
inline constexpr const char* kEarlyMergePasses = "EARLY_MERGE_PASSES";
inline constexpr const char* kEarlyMergeBytes = "EARLY_MERGE_BYTES";
/// Milliseconds reduce tasks spent preparing their merge sources after
/// the map barrier fell (intermediate passes still owed post-barrier,
/// summed over successful reduce attempts) — the latency the early
/// shuffle service exists to shrink.
inline constexpr const char* kBarrierWaitMs = "BARRIER_WAIT_MS";
/// Fetch shuffle (JobConfig::fetch_shuffle): payload bytes pulled over
/// the transport — every shuffled byte crosses the wire in fetch mode,
/// so this tracks the job's shuffle traffic as a remote cluster would
/// bill it. Deterministic for a fault-free run (unlike the two below).
inline constexpr const char* kShuffleFetchBytes = "SHUFFLE_FETCH_BYTES";
/// Fetch/publish requests that were retried over a fresh connection
/// (transient transport faults absorbed without failing the attempt).
inline constexpr const char* kFetchRetries = "FETCH_RETRIES";
/// Milliseconds map attempts spent mirroring their output through the
/// shuffle server (publish + fetch + clone-file commit, summed over
/// successful attempts) — the latency price of placement independence.
inline constexpr const char* kFetchWaitMs = "FETCH_WAIT_MS";
/// Maximum records any single reduce task consumed (partition skew).
inline constexpr const char* kReduceInputRecordsMax =
    "REDUCE_INPUT_RECORDS_MAX";
/// Peak number of simultaneously tracked n-grams in a reducer's
/// bookkeeping structure (max over reduce tasks) — the paper's Section IV
/// memory-footprint argument.
inline constexpr const char* kBookkeepingPeakEntries =
    "BOOKKEEPING_PEAK_ENTRIES";

/// \brief Thread-safe named 64-bit counters.
///
/// Tasks running on different slots increment concurrently; Snapshot() is
/// taken after phase barriers for reporting.
class Counters {
 public:
  void Increment(const std::string& name, uint64_t delta = 1)
      NGRAM_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    values_[name] += delta;
  }

  uint64_t Get(const std::string& name) const NGRAM_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    auto it = values_.find(name);
    return it == values_.end() ? 0 : it->second;
  }

  /// Raises `name` to `value` if it is currently lower (used for
  /// max-semantics counters like per-reducer skew and peak memory).
  void UpdateMax(const std::string& name, uint64_t value)
      NGRAM_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    uint64_t& slot = values_[name];
    if (value > slot) {
      slot = value;
    }
  }

  std::map<std::string, uint64_t> Snapshot() const NGRAM_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return values_;
  }

  /// Adds every counter of `other` into this. Snapshots `other` before
  /// taking this->mu_, so two counters merging into each other
  /// concurrently cannot deadlock on lock order.
  void MergeFrom(const Counters& other) NGRAM_EXCLUDES(mu_) {
    const auto snap = other.Snapshot();
    MutexLock lock(&mu_);
    for (const auto& [name, value] : snap) {
      values_[name] += value;
    }
  }

 private:
  mutable Mutex mu_;
  std::map<std::string, uint64_t> values_ NGRAM_GUARDED_BY(mu_);
};

/// \brief A task-local, lock-free counter block flushed into the shared
/// Counters at task end — avoids contention on the hot Emit path.
class TaskCounters {
 public:
  explicit TaskCounters(Counters* shared) : shared_(shared) {}
  ~TaskCounters() { Flush(); }

  /// Hot path: counter names are almost always the interned constants
  /// above, so a linear scan with pointer-identity first (strcmp only on
  /// a pointer miss) over a handful of entries beats any map — and does
  /// no per-call allocation, unlike a std::string key.
  ///
  /// `name` must outlive this TaskCounters (it is stored, not copied,
  /// until Flush()): pass string literals or the interned constants, not
  /// a temporary's c_str().
  void Increment(const char* name, uint64_t delta = 1) {
    for (Entry& e : local_) {
      if (e.name == name || strcmp(e.name, name) == 0) {
        e.value += delta;
        return;
      }
    }
    local_.push_back(Entry{name, delta});
  }

  /// Forwards a max-semantics update straight to the shared counters.
  void UpdateSharedMax(const char* name, uint64_t value) {
    shared_->UpdateMax(name, value);
  }

  void Flush() {
    for (const Entry& e : local_) {
      if (e.value > 0) {
        shared_->Increment(e.name, e.value);
      }
    }
    local_.clear();
  }

  /// Drops pending increments without publishing them — used for failed
  /// task attempts, whose counters Hadoop likewise discards.
  void DiscardPending() { local_.clear(); }

 private:
  struct Entry {
    const char* name;
    uint64_t value;
  };

  Counters* shared_;
  std::vector<Entry> local_;
};

}  // namespace ngram::mr
