#include "mapreduce/record.h"

#include <algorithm>
#include <cstring>

#include "mapreduce/runfile.h"
#include "util/crc32.h"

namespace ngram::mr {

FileRecordReader::FileRecordReader(const std::string& path, uint64_t offset,
                                   uint64_t length, size_t buffer_size,
                                   RunFormat format, IoEnv* env)
    : path_(path),
      format_(format),
      remaining_file_bytes_(length),
      buffer_capacity_(buffer_size),
      next_block_offset_(offset) {
  // Block mode reads through the stream buffer (header varints byte by
  // byte, then one read per ~16 KiB payload); hand the reader's budget to
  // the env as the buffer hint so the merge keeps issuing few large
  // sequential reads, as the raw path's own buffer does.
  const size_t hint = format_ == RunFormat::kBlocks ? buffer_capacity_ : 0;
  Status st = ResolveEnv(env)->NewReadableFile(path, hint, &file_);
  if (!st.ok()) {
    status_ = st.WithContext("open run for reading");
    remaining_file_bytes_ = 0;
    return;
  }
  st = file_->Seek(offset);
  if (!st.ok()) {
    status_ = st.WithContext("seek to run extent");
    remaining_file_bytes_ = 0;
  }
  if (format_ == RunFormat::kRawRecords) {
    buffer_.reserve(buffer_capacity_);
  }
}

FileRecordReader::~FileRecordReader() = default;

bool FileRecordReader::FillAtLeast(size_t n) {
  const size_t available = limit_ - pos_;
  if (available >= n) {
    return true;
  }
  // Move the unread tail to the front of the *alternate* buffer and swap,
  // instead of compacting in place: the record surfaced by the previous
  // Next() call keeps its address in the retired buffer, which is what
  // upholds the one-record lookback contract. At most one swap may happen
  // per Next() call — a second would recycle the retired buffer and
  // clobber the protected record — so a later refill in the same call
  // (header fill followed by a body fill) extends the active buffer in
  // place instead.
  if (pos_ > 0 && !swapped_this_call_) {
    const size_t tail = limit_ - pos_;
    if (alt_buffer_.size() < buffer_capacity_) {
      alt_buffer_.resize(buffer_capacity_);
    }
    if (tail > 0) {
      memcpy(alt_buffer_.data(), buffer_.data() + pos_, tail);
    }
    buffer_.swap(alt_buffer_);
    swapped_this_call_ = true;
    limit_ = tail;
    pos_ = 0;
  }
  const size_t target = pos_ + n;
  if (target > buffer_capacity_) {
    buffer_capacity_ = target;  // Oversized record: grow permanently.
  }
  if (buffer_.size() < buffer_capacity_) {
    buffer_.resize(buffer_capacity_);
  }
  while (limit_ < target && remaining_file_bytes_ > 0) {
    const size_t want = static_cast<size_t>(
        std::min<uint64_t>(buffer_capacity_ - limit_, remaining_file_bytes_));
    size_t got = 0;
    // A short read is only "truncated file" corruption when the stream
    // really hit EOF; a failed read is an I/O error and must surface as
    // one (with the env's errno detail) instead of masquerading as
    // corruption.
    Status st = file_->Read(buffer_.data() + limit_, want, &got);
    if (!st.ok()) {
      status_ = st.WithContext("read run records");
      return false;
    }
    if (got == 0) {
      status_ = Status::Corruption("unexpected EOF reading run records in " +
                                   path_);
      return false;
    }
    limit_ += got;
    remaining_file_bytes_ -= got;
  }
  return limit_ - pos_ >= n;
}

bool FileRecordReader::NextRaw() {
  swapped_this_call_ = false;
  const uint64_t total_left = (limit_ - pos_) + remaining_file_bytes_;
  if (total_left == 0) {
    return false;  // Clean end of segment.
  }
  // Varints are at most 10 bytes; make both headers available (or as much
  // as the segment still holds, for the final record).
  const size_t header_want = static_cast<size_t>(
      std::min<uint64_t>(2 * kMaxVarint64Bytes, total_left));
  if (!FillAtLeast(header_want)) {
    if (status_.ok()) {
      status_ =
          Status::Corruption("truncated record header reading " + path_);
    }
    return false;
  }
  Slice header(buffer_.data() + pos_, limit_ - pos_);
  const char* header_start = header.data();
  uint64_t klen = 0, vlen = 0;
  if (!GetVarint64(&header, &klen) || !GetVarint64(&header, &vlen)) {
    status_ = Status::Corruption("malformed record header reading " + path_);
    return false;
  }
  const size_t header_bytes = static_cast<size_t>(header.data() - header_start);
  pos_ += header_bytes;
  const size_t body = static_cast<size_t>(klen + vlen);
  if (!FillAtLeast(body)) {
    if (status_.ok()) {
      status_ = Status::Corruption("truncated record body reading " + path_);
    }
    return false;
  }
  // Zero-copy: FillAtLeast guaranteed the whole record is contiguous in
  // the buffer, and nothing moves it until the *second* following Next()
  // call (the lookback contract).
  key_ = Slice(buffer_.data() + pos_, klen);
  value_ = Slice(buffer_.data() + pos_ + klen, vlen);
  pos_ += body;
  return true;
}

bool FileRecordReader::ReadExact(char* dst, size_t n) {
  if (remaining_file_bytes_ < n) {
    status_ = Status::Corruption(
        "truncated block at offset " + std::to_string(next_block_offset_) +
        " in " + path_ + " (run extent ends mid-block)");
    return false;
  }
  size_t got = 0;
  while (got < n) {
    size_t r = 0;
    Status st = file_->Read(dst + got, n - got, &r);
    if (!st.ok()) {
      status_ = st.WithContext("read run block");
      return false;
    }
    if (r == 0) {
      status_ = Status::Corruption(
          "truncated block at offset " + std::to_string(next_block_offset_) +
          " in " + path_ + " (unexpected EOF)");
      return false;
    }
    got += r;
    remaining_file_bytes_ -= r;
  }
  return true;
}

bool FileRecordReader::LoadNextBlock() {
  const uint64_t block_offset = next_block_offset_;
  auto corrupt = [&](const std::string& what) {
    status_ = Status::Corruption(what + " in block at offset " +
                                 std::to_string(block_offset) + " of " +
                                 path_);
    return false;
  };

  // Block length header: a varint, read byte by byte.
  uint64_t payload_len = 0;
  size_t header_bytes = 0;
  for (int shift = 0;; shift += 7) {
    char byte;
    if (shift > 63 || !ReadExact(&byte, 1)) {
      if (status_.ok()) {
        return corrupt("overlong block length varint");
      }
      return false;
    }
    ++header_bytes;
    payload_len |= static_cast<uint64_t>(static_cast<uint8_t>(byte) & 0x7f)
                   << shift;
    if ((static_cast<uint8_t>(byte) & 0x80) == 0) {
      break;
    }
  }
  // The smallest payload is one entry (tag + vlen for an empty key and
  // value) plus one restart plus the restart count: 2 + 8 bytes. Compare
  // against the extent without forming payload_len + 4, which a corrupt
  // near-2^64 varint would wrap past the check into a giant resize().
  if (payload_len < 10 || remaining_file_bytes_ < 4 ||
      payload_len > remaining_file_bytes_ - 4) {
    return corrupt("implausible block length " +
                   std::to_string(payload_len));
  }
  block_scratch_.resize(static_cast<size_t>(payload_len));
  char trailer[4];
  if (!ReadExact(block_scratch_.data(), block_scratch_.size()) ||
      !ReadExact(trailer, 4)) {
    return false;
  }
  const uint32_t expected = DecodeFixed32(trailer);
  const uint32_t actual =
      Crc32(0, block_scratch_.data(), block_scratch_.size());
  if (actual != expected) {
    return corrupt("block CRC mismatch");
  }

  // Decode the whole block into the scratch buffer the previous block did
  // not use: records of the previous block keep their addresses until the
  // block after this one is decoded, which upholds the lookback contract.
  // (The shared decoder also rejects entry-less blocks, which would make
  // this load loop decode twice in a row and recycle the scratch buffer
  // still backing the caller's previous record.)
  std::string& decoded = decoded_[1 - active_decoded_];
  Status st =
      DecodeBlockPayload(Slice(block_scratch_), block_offset, path_, &decoded);
  if (!st.ok()) {
    status_ = std::move(st);
    return false;
  }
  active_decoded_ = 1 - active_decoded_;
  decoded_cur_ = Slice(decoded);
  next_block_offset_ = block_offset + header_bytes + payload_len + 4;
  return true;
}

bool FileRecordReader::NextBlock() {
  while (decoded_cur_.empty()) {
    if (remaining_file_bytes_ == 0) {
      return false;  // Clean end of segment.
    }
    if (!LoadNextBlock()) {
      return false;
    }
  }
  uint64_t klen = 0, vlen = 0;
  if (!GetVarint64(&decoded_cur_, &klen) ||
      !GetVarint64(&decoded_cur_, &vlen) ||
      klen + vlen > decoded_cur_.size()) {
    // Unreachable unless the decoder itself is broken: decoded frames are
    // produced, not read, by this class.
    status_ = Status::Internal("malformed decoded block frame");
    return false;
  }
  key_ = Slice(decoded_cur_.data(), klen);
  value_ = Slice(decoded_cur_.data() + klen, vlen);
  decoded_cur_.RemovePrefix(static_cast<size_t>(klen + vlen));
  return true;
}

bool FileRecordReader::Next() {
  if (!status_.ok()) {
    return false;
  }
  return format_ == RunFormat::kBlocks ? NextBlock() : NextRaw();
}

}  // namespace ngram::mr
