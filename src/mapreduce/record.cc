#include "mapreduce/record.h"

#include <algorithm>
#include <cerrno>
#include <cstring>

namespace ngram::mr {

FileRecordReader::FileRecordReader(const std::string& path, uint64_t offset,
                                   uint64_t length, size_t buffer_size)
    : remaining_file_bytes_(length), buffer_capacity_(buffer_size) {
  file_ = fopen(path.c_str(), "rb");
  if (file_ == nullptr) {
    status_ = Status::IOError("open spill " + path + ": " + strerror(errno));
    remaining_file_bytes_ = 0;
    return;
  }
  if (fseeko(file_, static_cast<off_t>(offset), SEEK_SET) != 0) {
    status_ = Status::IOError("seek spill " + path + ": " + strerror(errno));
    remaining_file_bytes_ = 0;
  }
  buffer_.reserve(buffer_capacity_);
}

FileRecordReader::~FileRecordReader() {
  if (file_ != nullptr) {
    fclose(file_);
  }
}

bool FileRecordReader::FillAtLeast(size_t n) {
  const size_t available = limit_ - pos_;
  if (available >= n) {
    return true;
  }
  // Move the unread tail to the front of the *alternate* buffer and swap,
  // instead of compacting in place: the record surfaced by the previous
  // Next() call keeps its address in the retired buffer, which is what
  // upholds the one-record lookback contract. At most one swap may happen
  // per Next() call — a second would recycle the retired buffer and
  // clobber the protected record — so a later refill in the same call
  // (header fill followed by a body fill) extends the active buffer in
  // place instead.
  if (pos_ > 0 && !swapped_this_call_) {
    const size_t tail = limit_ - pos_;
    if (alt_buffer_.size() < buffer_capacity_) {
      alt_buffer_.resize(buffer_capacity_);
    }
    if (tail > 0) {
      memcpy(alt_buffer_.data(), buffer_.data() + pos_, tail);
    }
    buffer_.swap(alt_buffer_);
    swapped_this_call_ = true;
    limit_ = tail;
    pos_ = 0;
  }
  const size_t target = pos_ + n;
  if (target > buffer_capacity_) {
    buffer_capacity_ = target;  // Oversized record: grow permanently.
  }
  if (buffer_.size() < buffer_capacity_) {
    buffer_.resize(buffer_capacity_);
  }
  while (limit_ < target && remaining_file_bytes_ > 0) {
    const size_t want = static_cast<size_t>(
        std::min<uint64_t>(buffer_capacity_ - limit_, remaining_file_bytes_));
    const size_t got = fread(buffer_.data() + limit_, 1, want, file_);
    if (got == 0) {
      // A short read is only "truncated file" corruption when the stream
      // really hit EOF; a failed read is an I/O error and must surface as
      // one (with errno) instead of masquerading as corruption.
      if (ferror(file_) != 0) {
        status_ = Status::IOError(std::string("read spill file: ") +
                                  strerror(errno));
      } else {
        status_ = Status::Corruption("unexpected EOF in spill file");
      }
      return false;
    }
    limit_ += got;
    remaining_file_bytes_ -= got;
  }
  return limit_ - pos_ >= n;
}

bool FileRecordReader::Next() {
  if (!status_.ok()) {
    return false;
  }
  swapped_this_call_ = false;
  const uint64_t total_left = (limit_ - pos_) + remaining_file_bytes_;
  if (total_left == 0) {
    return false;  // Clean end of segment.
  }
  // Varints are at most 10 bytes; make both headers available (or as much
  // as the segment still holds, for the final record).
  const size_t header_want = static_cast<size_t>(
      std::min<uint64_t>(2 * kMaxVarint64Bytes, total_left));
  if (!FillAtLeast(header_want)) {
    if (status_.ok()) {
      status_ = Status::Corruption("truncated record header in spill file");
    }
    return false;
  }
  Slice header(buffer_.data() + pos_, limit_ - pos_);
  const char* header_start = header.data();
  uint64_t klen = 0, vlen = 0;
  if (!GetVarint64(&header, &klen) || !GetVarint64(&header, &vlen)) {
    status_ = Status::Corruption("malformed record header in spill file");
    return false;
  }
  const size_t header_bytes = static_cast<size_t>(header.data() - header_start);
  pos_ += header_bytes;
  const size_t body = static_cast<size_t>(klen + vlen);
  if (!FillAtLeast(body)) {
    if (status_.ok()) {
      status_ = Status::Corruption("truncated record body in spill file");
    }
    return false;
  }
  // Zero-copy: FillAtLeast guaranteed the whole record is contiguous in
  // the buffer, and nothing moves it until the *second* following Next()
  // call (the lookback contract).
  key_ = Slice(buffer_.data() + pos_, klen);
  value_ = Slice(buffer_.data() + pos_ + klen, vlen);
  pos_ += body;
  return true;
}

}  // namespace ngram::mr
