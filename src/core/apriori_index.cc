#include "core/apriori_index.h"

#include <algorithm>
#include <map>

#include "core/counting.h"
#include "kvstore/spillable.h"
#include "util/logging.h"

namespace ngram {

namespace {

/// A (k-1)-gram with its posting list, tagged by which end of the reducer
/// key it extends (Algorithm 3's l-seq / r-seq subtypes).
struct TaggedPostings {
  static constexpr uint8_t kLSeq = 0;  // Key is the sequence's suffix.
  static constexpr uint8_t kRSeq = 1;  // Key is the sequence's prefix.

  uint8_t side = kLSeq;
  TermSequence seq;
  PostingList list;
};

}  // namespace

template <>
struct Serde<TaggedPostings> {
  static void Encode(const TaggedPostings& t, std::string* out) {
    out->push_back(static_cast<char>(t.side));
    std::string seq_bytes;
    SequenceCodec::Encode(t.seq, &seq_bytes);
    PutVarint64(out, seq_bytes.size());
    out->append(seq_bytes);
    Serde<PostingList>::Encode(t.list, out);
  }
  static bool Decode(Slice in, TaggedPostings* t) {
    if (in.empty()) {
      return false;
    }
    t->side = static_cast<uint8_t>(in[0]);
    in.RemovePrefix(1);
    uint64_t seq_len = 0;
    if (!GetVarint64(&in, &seq_len) || seq_len > in.size()) {
      return false;
    }
    if (!SequenceCodec::Decode(Slice(in.data(), seq_len), &t->seq)) {
      return false;
    }
    in.RemovePrefix(seq_len);
    return Serde<PostingList>::Decode(in, &t->list);
  }
};

namespace {

uint64_t FrequencyOfList(const PostingList& list, FrequencyMode mode) {
  return mode == FrequencyMode::kCollection ? list.TotalOccurrences()
                                            : list.DocumentFrequency();
}

// ------------------------------------------------------------- phase 1 --

/// Mapper #1: per-document positional aggregation of k-grams.
class IndexScanMapper final
    : public mr::Mapper<uint64_t, Fragment, TermSequence, Posting> {
 public:
  IndexScanMapper(const NgramJobOptions& options, uint32_t k,
                  std::shared_ptr<const UnigramFrequencies> unigram_cf)
      : options_(options), k_(k), unigram_cf_(std::move(unigram_cf)) {}

  Status Map(const uint64_t& doc_id, const Fragment& fragment,
             Context* ctx) override {
    // Local aggregation (Algorithm 3 Mapper #1): collect positions per
    // k-gram within this fragment, then emit one posting each.
    positions_.clear();
    ForEachPiece(fragment, options_.document_splits, *unigram_cf_,
                 options_.tau, [&](const Fragment& piece) {
                   const auto& terms = piece.terms;
                   if (terms.size() < k_) {
                     return;
                   }
                   TermSequence kgram;
                   for (size_t b = 0; b + k_ <= terms.size(); ++b) {
                     kgram.assign(terms.begin() + b, terms.begin() + b + k_);
                     positions_[kgram].push_back(piece.base +
                                                 static_cast<uint32_t>(b));
                   }
                 });
    for (auto& [kgram, pos] : positions_) {
      Posting posting;
      posting.doc_id = doc_id;
      posting.positions = std::move(pos);
      NGRAM_RETURN_NOT_OK(ctx->Emit(kgram, posting));
    }
    return Status::OK();
  }

 private:
  const NgramJobOptions options_;
  const uint32_t k_;
  const std::shared_ptr<const UnigramFrequencies> unigram_cf_;
  std::map<TermSequence, std::vector<uint32_t>> positions_;
};

/// Reducer #1: assembles the posting list of a k-gram; emits it when
/// frequent. Multiple fragments of one document produce multiple postings
/// with the same doc id — they are merged.
class IndexBuildReducer final
    : public mr::Reducer<TermSequence, Posting, TermSequence, PostingList> {
 public:
  IndexBuildReducer(uint64_t tau, FrequencyMode mode)
      : tau_(tau), mode_(mode) {}

  Status Reduce(const TermSequence& key, Values* values,
                Context* ctx) override {
    std::vector<Posting> postings;
    Posting p;
    while (values->Next(&p)) {
      postings.push_back(std::move(p));
    }
    std::sort(postings.begin(), postings.end(),
              [](const Posting& a, const Posting& b) {
                if (a.doc_id != b.doc_id) {
                  return a.doc_id < b.doc_id;
                }
                return a.positions < b.positions;
              });
    PostingList list;
    for (auto& posting : postings) {
      if (!list.postings.empty() &&
          list.postings.back().doc_id == posting.doc_id) {
        auto& dst = list.postings.back().positions;
        dst.insert(dst.end(), posting.positions.begin(),
                   posting.positions.end());
        std::sort(dst.begin(), dst.end());
      } else {
        list.postings.push_back(std::move(posting));
      }
    }
    if (FrequencyOfList(list, mode_) >= tau_) {
      return ctx->Emit(key, std::move(list));
    }
    return Status::OK();
  }

 private:
  const uint64_t tau_;
  const FrequencyMode mode_;
};

// ------------------------------------------------------------- phase 2 --

/// Mapper #2: re-keys every frequent (k-1)-gram by its prefix and suffix.
///
/// Runs raw over the previous round's serialized output: the prefix and
/// suffix keys are sub-slices of the encoded sequence (one varint boundary
/// scan), and the TaggedPostings value is assembled byte-for-byte from the
/// key and value slices — the posting list is never decoded, copied into a
/// typed struct, or re-encoded (the old path did all three, twice).
class IndexJoinMapper final
    : public mr::RawMapper<TermSequence, TaggedPostings> {
 public:
  Status Map(Slice seq, Slice list, Context* ctx) override {
    if (!SequenceCodec::TermOffsets(seq, &offsets_) ||
        offsets_.size() < 2) {
      return Status::Internal("phase-2 input must be non-empty");
    }
    // Serde<TaggedPostings> wire form: [side][varint |seq|][seq][list].
    value_.clear();
    value_.push_back(static_cast<char>(TaggedPostings::kRSeq));
    PutVarint64(&value_, seq.size());
    value_.append(seq.data(), seq.size());
    value_.append(list.data(), list.size());

    // With K = 1 the shared prefix/suffix is the empty sequence: every pair
    // joins on one reducer (a degenerate but correct configuration).
    const size_t last_term = offsets_[offsets_.size() - 2];
    const Slice prefix(seq.data(), last_term);
    // Key is this sequence's prefix.
    NGRAM_RETURN_NOT_OK(ctx->EmitRaw(prefix, value_));

    const size_t first_len = offsets_[1];
    const Slice suffix(seq.data() + first_len, seq.size() - first_len);
    value_[0] = static_cast<char>(TaggedPostings::kLSeq);
    // Key is this sequence's suffix.
    return ctx->EmitRaw(suffix, value_);
  }

 private:
  std::vector<uint32_t> offsets_;  // Reused across records.
  std::string value_;              // Reused across records.
};

/// Reducer #2: joins every compatible l-seq/r-seq pair. Buffered values
/// spill to the KV store past the memory budget.
class IndexJoinReducer final
    : public mr::Reducer<TermSequence, TaggedPostings, TermSequence,
                         PostingList> {
 public:
  IndexJoinReducer(const NgramJobOptions& options, std::string spill_dir,
                   uint32_t k)
      : options_(options), spill_dir_(std::move(spill_dir)), k_(k) {}

  Status Reduce(const TermSequence& key, Values* values,
                Context* ctx) override {
    // Separate buffers for the two sides; each holds (k-1)-grams with
    // posting lists and may exceed memory.
    const std::string base = spill_dir_ + "/r" +
                             std::to_string(ctx->reducer_id()) + "-g" +
                             std::to_string(group_seq_++);
    kv::SpillableVector<TaggedPostings> left(
        base + "-l", options_.reducer_memory_budget_bytes / 2);
    kv::SpillableVector<TaggedPostings> right(
        base + "-r", options_.reducer_memory_budget_bytes / 2);

    TaggedPostings t;
    while (values->Next(&t)) {
      if (t.side == TaggedPostings::kLSeq) {
        NGRAM_RETURN_NOT_OK(left.Append(t));
      } else {
        NGRAM_RETURN_NOT_OK(right.Append(t));
      }
    }

    // Nested-loop join over compatible pairs (Algorithm 3 Reducer #2).
    Status status = left.ForEach([&](const TaggedPostings& m) -> Status {
      return right.ForEach([&](const TaggedPostings& n) -> Status {
        PostingList joined = JoinAdjacent(m.list, n.list);
        if (FrequencyOfList(joined, options_.frequency_mode) >=
            options_.tau) {
          TermSequence j = m.seq;
          j.push_back(n.seq.back());
          NGRAM_RETURN_NOT_OK(ctx->Emit(std::move(j), std::move(joined)));
        }
        return Status::OK();
      });
    });
    return status;
  }

 private:
  const NgramJobOptions options_;
  const std::string spill_dir_;
  const uint32_t k_;
  uint64_t group_seq_ = 0;
};

}  // namespace

Result<AprioriIndexResult> RunAprioriIndexWithIndex(
    const CorpusContext& ctx, const NgramJobOptions& options) {
  AprioriIndexResult result;
  const uint32_t sigma = options.sigma_or_max();
  const uint32_t cap_k = std::max<uint32_t>(1, options.apriori_index_k);

  // Spill root for reducer buffers (phase 2) and auto temp dir fallback.
  std::string spill_root = options.work_dir;
  std::unique_ptr<TempDir> auto_dir;
  if (spill_root.empty()) {
    auto created = TempDir::Create("ngram-apriori-index");
    if (!created.ok()) {
      return created.status();
    }
    auto_dir = std::make_unique<TempDir>(std::move(created).ValueOrDie());
    spill_root = auto_dir->path().string();
  }

  // Rounds chain serialized: round k's reducer output feeds round k+1's
  // mappers as slices. The typed decode below happens once per round,
  // only to fold frequent k-grams into the run's stats and the returned
  // index — never to re-encode for the next job.
  mr::RecordTable previous;

  // Decodes one round's serialized output into stats + index.
  auto drain_round = [&](const mr::RecordTable& output) -> Status {
    auto reader = output.NewReader();
    TermSequence seq;
    PostingList list;
    while (reader->Next()) {
      if (!Serde<TermSequence>::Decode(reader->key(), &seq) ||
          !Serde<PostingList>::Decode(reader->value(), &list)) {
        return Status::Corruption("apriori-index: bad (k-gram, postings)");
      }
      result.run.stats.Add(seq,
                           FrequencyOfList(list, options.frequency_mode));
      result.index.Add(seq, list);
    }
    return reader->status();
  };

  // ----- Phase 1: k = 1 .. min(K, sigma), scanning the input each time.
  const uint32_t phase1_end = std::min(cap_k, sigma);
  for (uint32_t k = 1; k <= phase1_end; ++k) {
    mr::JobConfig config =
        MakeBaseJobConfig(options, "apriori-index-scan-k" + std::to_string(k));
    mr::RecordTable output;
    auto metrics = mr::RunJob<IndexScanMapper, IndexBuildReducer>(
        config, ctx.records,
        [&options, &ctx, k] {
          return std::make_unique<IndexScanMapper>(options, k,
                                                   ctx.unigram_cf);
        },
        [&options] {
          return std::make_unique<IndexBuildReducer>(
              options.tau, options.frequency_mode);
        },
        &output);
    if (!metrics.ok()) {
      return metrics.status();
    }
    result.run.metrics.Add(std::move(metrics).ValueOrDie());
    if (output.empty()) {
      return result;  // Nothing frequent at this length: done.
    }
    NGRAM_RETURN_NOT_OK(drain_round(output));
    previous = std::move(output);
  }

  // ----- Phase 2: k = K+1 .. sigma, joining posting lists.
  for (uint32_t k = phase1_end + 1; k <= sigma; ++k) {
    const std::string spill_dir =
        spill_root + "/join-k" + std::to_string(k);
    mr::JobConfig config =
        MakeBaseJobConfig(options, "apriori-index-join-k" + std::to_string(k));
    mr::RecordTable output;
    auto metrics = mr::RunJob<IndexJoinMapper, IndexJoinReducer>(
        config, previous, [] { return std::make_unique<IndexJoinMapper>(); },
        [&options, &spill_dir, k] {
          return std::make_unique<IndexJoinReducer>(options, spill_dir, k);
        },
        &output);
    if (!metrics.ok()) {
      return metrics.status();
    }
    result.run.metrics.Add(std::move(metrics).ValueOrDie());
    if (output.empty()) {
      break;
    }
    NGRAM_RETURN_NOT_OK(drain_round(output));
    previous = std::move(output);
  }
  return result;
}

Result<NgramRun> RunAprioriIndex(const CorpusContext& ctx,
                                 const NgramJobOptions& options) {
  auto result = RunAprioriIndexWithIndex(ctx, options);
  if (!result.ok()) {
    return result.status();
  }
  return std::move(result.ValueOrDie().run);
}

}  // namespace ngram
