// APRIORI-SCAN (Algorithm 2): one MapReduce job per n-gram length k. The
// k-th job scans the whole input and emits only k-grams whose two
// constituent (k-1)-grams were frequent in the previous iteration; the
// dictionary of frequent (k-1)-grams is shipped to every mapper (the
// paper's distributed-cache replica), kept in a compact SequenceSet that
// migrates to the disk KV store past its memory budget.
//
// Terminates after sigma iterations or when an iteration yields nothing.
// Per-iteration administrative cost and the repeated full scans are the
// method's structural weaknesses (Section III-B).
#pragma once

#include "core/input.h"
#include "core/options.h"
#include "core/stats.h"
#include "util/result.h"

namespace ngram {

/// Custom counters recorded per iteration job.
inline constexpr const char* kDictionaryEntries = "DICTIONARY_ENTRIES";
inline constexpr const char* kDictionaryBytes = "DICTIONARY_BYTES";

Result<NgramRun> RunAprioriScan(const CorpusContext& ctx,
                                const NgramJobOptions& options);

}  // namespace ngram
