#include "core/maximality.h"

#include <algorithm>

#include "core/counting.h"
#include "core/rev_lex.h"
#include "core/suffix_sigma.h"
#include "core/suffix_stack.h"

namespace ngram {

namespace {

/// Post-filter mapper: reverses n-grams so suffix relations become prefix
/// relations. Runs raw over job 1's serialized output — the reversed key
/// is assembled by copying the key's term byte ranges in reverse order
/// (one varint boundary scan, no decode), and the frequency value passes
/// through as untouched bytes.
class ReverseMapper final : public mr::RawMapper<TermSequence, uint64_t> {
 public:
  Status Map(Slice key, Slice value, Context* ctx) override {
    if (!SequenceCodec::TermOffsets(key, &offsets_)) {
      return Status::Corruption("ReverseMapper: bad n-gram key");
    }
    reversed_.clear();
    for (size_t i = offsets_.size() - 1; i > 0; --i) {
      reversed_.append(key.data() + offsets_[i - 1],
                       offsets_[i] - offsets_[i - 1]);
    }
    return ctx->EmitRaw(reversed_, value);
  }

 private:
  std::vector<uint32_t> offsets_;  // Reused across records.
  std::string reversed_;           // Reused across records.
};

/// Post-filter reducer: PrefixFilterStack over reversed n-grams; emits
/// survivors restored to their original orientation. Raw pipeline: the
/// single value and the key decode straight off the merge slices.
class SuffixFilterReducer final
    : public mr::RawReducer<TermSequence, uint64_t> {
 public:
  explicit SuffixFilterReducer(EmitMode mode) : mode_(mode) {}

  Status Setup(Context* ctx) override {
    stack_ = std::make_unique<PrefixFilterStack>(
        mode_, [ctx](const TermSequence& reversed, uint64_t cf) {
          TermSequence original(reversed.rbegin(), reversed.rend());
          return ctx->Emit(std::move(original), cf);
        });
    return Status::OK();
  }

  Status Reduce(mr::GroupValueIterator* group, Context* ctx) override {
    // Keys are unique n-grams from job 1, so exactly one value arrives.
    uint64_t cf = 0;
    if (!group->NextValue() ||
        !Serde<uint64_t>::Decode(group->value(), &cf)) {
      return Status::Internal("post-filter group without value");
    }
    if (!Serde<TermSequence>::Decode(group->key(), &reversed_)) {
      return Status::Corruption("SuffixFilterReducer: bad key");
    }
    return stack_->Push(reversed_, cf);
  }

  Status Cleanup(Context* ctx) override { return stack_->Flush(); }

 private:
  const EmitMode mode_;
  std::unique_ptr<PrefixFilterStack> stack_;
  TermSequence reversed_;  // Reused across groups.
};

Result<NgramRun> RunWithMode(const CorpusContext& ctx,
                             const NgramJobOptions& options, EmitMode mode) {
  NgramRun run;

  // Job 1: SUFFIX-sigma with prefix filtering, output left serialized.
  auto first = RunSuffixSigmaJob(ctx, options, mode, &run.metrics);
  if (!first.ok()) {
    return first.status();
  }
  const mr::RecordTable stage = std::move(first).ValueOrDie();

  // Job 2: suffix filtering on reversed n-grams. Job 1's reducer output
  // feeds these mappers as serialized slices — no decode/re-encode at the
  // job boundary.
  mr::JobConfig config = MakeBaseJobConfig(
      options,
      mode == EmitMode::kPrefixMaximal ? "maximality-filter"
                                       : "closedness-filter");
  config.partitioner = FirstTermPartitioner::Instance();
  config.sort_comparator = ReverseLexSequenceComparator::Instance();

  mr::RecordTable output;
  auto metrics = mr::RunJob<ReverseMapper, SuffixFilterReducer>(
      config, stage, [] { return std::make_unique<ReverseMapper>(); },
      [mode] { return std::make_unique<SuffixFilterReducer>(mode); },
      &output);
  if (!metrics.ok()) {
    return metrics.status();
  }
  run.metrics.Add(std::move(metrics).ValueOrDie());
  NGRAM_RETURN_NOT_OK(DrainCounts(output, &run.stats));
  return run;
}

}  // namespace

Result<NgramRun> RunSuffixSigmaMaximal(const CorpusContext& ctx,
                                       const NgramJobOptions& options) {
  return RunWithMode(ctx, options, EmitMode::kPrefixMaximal);
}

Result<NgramRun> RunSuffixSigmaClosed(const CorpusContext& ctx,
                                      const NgramJobOptions& options) {
  return RunWithMode(ctx, options, EmitMode::kPrefixClosed);
}

}  // namespace ngram
