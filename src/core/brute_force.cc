#include "core/brute_force.h"

#include <set>
#include <unordered_set>

namespace ngram {

namespace {

/// Invokes fn(ngram) for every n-gram of every sentence (length <= sigma).
template <typename Fn>
void ForEachNgram(const Corpus& corpus, uint32_t sigma, Fn fn) {
  const uint64_t max_len = sigma == 0 ? UINT64_MAX : sigma;
  TermSequence ngram;
  for (const auto& doc : corpus.docs) {
    for (const auto& sentence : doc.sentences) {
      for (size_t b = 0; b < sentence.size(); ++b) {
        ngram.clear();
        for (size_t e = b; e < sentence.size() && (e - b) < max_len; ++e) {
          ngram.push_back(sentence[e]);
          fn(doc, ngram);
        }
      }
    }
  }
}

/// True iff `sub` occurs as a contiguous subsequence of `seq`.
bool ContainsSubsequence(const TermSequence& seq, const TermSequence& sub) {
  if (sub.size() > seq.size()) {
    return false;
  }
  for (size_t j = 0; j + sub.size() <= seq.size(); ++j) {
    bool match = true;
    for (size_t i = 0; i < sub.size(); ++i) {
      if (seq[j + i] != sub[i]) {
        match = false;
        break;
      }
    }
    if (match) {
      return true;
    }
  }
  return false;
}

}  // namespace

NgramStatistics BruteForceCounts(const Corpus& corpus, uint64_t tau,
                                 uint32_t sigma) {
  std::map<TermSequence, uint64_t> counts;
  ForEachNgram(corpus, sigma,
               [&](const Document&, const TermSequence& g) { ++counts[g]; });
  NgramStatistics stats;
  for (const auto& [seq, cf] : counts) {
    if (cf >= tau) {
      stats.Add(seq, cf);
    }
  }
  stats.SortCanonical();
  return stats;
}

NgramStatistics BruteForceDocumentFrequencies(const Corpus& corpus,
                                              uint64_t tau, uint32_t sigma) {
  std::map<TermSequence, std::set<uint64_t>> docs;
  ForEachNgram(corpus, sigma, [&](const Document& d, const TermSequence& g) {
    docs[g].insert(d.id);
  });
  NgramStatistics stats;
  for (const auto& [seq, dset] : docs) {
    if (dset.size() >= tau) {
      stats.Add(seq, dset.size());
    }
  }
  stats.SortCanonical();
  return stats;
}

NgramStatistics BruteForceMaximal(const Corpus& corpus, uint64_t tau,
                                  uint32_t sigma) {
  NgramStatistics frequent = BruteForceCounts(corpus, tau, sigma);
  NgramStatistics maximal;
  for (const auto& [r, cf] : frequent.entries) {
    bool has_frequent_super = false;
    for (const auto& [s, cf_s] : frequent.entries) {
      if (s.size() > r.size() && ContainsSubsequence(s, r)) {
        has_frequent_super = true;
        break;
      }
    }
    if (!has_frequent_super) {
      maximal.Add(r, cf);
    }
  }
  maximal.SortCanonical();
  return maximal;
}

NgramStatistics BruteForceClosed(const Corpus& corpus, uint64_t tau,
                                 uint32_t sigma) {
  NgramStatistics frequent = BruteForceCounts(corpus, tau, sigma);
  NgramStatistics closed;
  for (const auto& [r, cf] : frequent.entries) {
    bool has_equal_super = false;
    for (const auto& [s, cf_s] : frequent.entries) {
      if (s.size() > r.size() && cf_s == cf && ContainsSubsequence(s, r)) {
        has_equal_super = true;
        break;
      }
    }
    if (!has_equal_super) {
      closed.Add(r, cf);
    }
  }
  closed.SortCanonical();
  return closed;
}

std::map<TermSequence, TimeSeries> BruteForceTimeSeries(const Corpus& corpus,
                                                        uint64_t tau,
                                                        uint32_t sigma) {
  std::map<TermSequence, TimeSeries> series;
  ForEachNgram(corpus, sigma, [&](const Document& d, const TermSequence& g) {
    series[g].Add(d.year, 1);
  });
  for (auto it = series.begin(); it != series.end();) {
    if (it->second.Total() < tau) {
      it = series.erase(it);
    } else {
      ++it;
    }
  }
  return series;
}

}  // namespace ngram
