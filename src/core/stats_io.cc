#include "core/stats_io.h"

#include <cstring>
#include <memory>

#include "encoding/sequence.h"
#include "encoding/varint.h"
#include "util/macros.h"

namespace ngram {

namespace {

constexpr char kMagic[4] = {'N', 'G', 'S', '1'};

/// Reads all of `path` into `*content` through `env` (already resolved).
Status ReadWholeFile(mr::IoEnv* env, const std::string& path,
                     std::string* content) {
  std::unique_ptr<mr::ReadableFile> f;
  NGRAM_RETURN_NOT_OK(env->NewReadableFile(path, /*buffer_hint=*/0, &f));
  char chunk[64 * 1024];
  size_t got = 0;
  do {
    NGRAM_RETURN_NOT_OK(f->Read(chunk, sizeof(chunk), &got));
    content->append(chunk, got);
  } while (got > 0);
  return Status::OK();
}

}  // namespace

Status WriteStatsTsv(const NgramStatistics& stats, const Vocabulary* vocab,
                     const std::string& path, mr::IoEnv* env) {
  std::unique_ptr<mr::WritableFile> f;
  NGRAM_RETURN_NOT_OK(mr::ResolveEnv(env)->NewWritableFile(path, &f));
  std::string line;
  for (const auto& [seq, cf] : stats.entries) {
    line.clear();
    for (size_t i = 0; i < seq.size(); ++i) {
      if (i > 0) {
        line += ' ';
      }
      if (vocab != nullptr) {
        line += vocab->TermOf(seq[i]);
      } else {
        line += std::to_string(seq[i]);
      }
    }
    line += '\t';
    line += std::to_string(cf);
    line += '\n';
    NGRAM_RETURN_NOT_OK(f->Write(line.data(), line.size()));
  }
  NGRAM_RETURN_NOT_OK(f->Sync());
  return f->Close();
}

Status WriteStatsBinary(const NgramStatistics& stats, const std::string& path,
                        mr::IoEnv* env) {
  std::unique_ptr<mr::WritableFile> f;
  NGRAM_RETURN_NOT_OK(mr::ResolveEnv(env)->NewWritableFile(path, &f));
  std::string buf(kMagic, sizeof(kMagic));
  PutVarint64(&buf, stats.entries.size());
  std::string seq_bytes;
  for (const auto& [seq, cf] : stats.entries) {
    seq_bytes.clear();
    SequenceCodec::Encode(seq, &seq_bytes);
    PutVarint64(&buf, seq_bytes.size());
    buf += seq_bytes;
    PutVarint64(&buf, cf);
    if (buf.size() > (1 << 20)) {
      NGRAM_RETURN_NOT_OK(f->Write(buf.data(), buf.size()));
      buf.clear();
    }
  }
  NGRAM_RETURN_NOT_OK(f->Write(buf.data(), buf.size()));
  NGRAM_RETURN_NOT_OK(f->Sync());
  return f->Close();
}

Status ReadStatsBinary(const std::string& path, NgramStatistics* stats,
                       mr::IoEnv* env) {
  stats->entries.clear();
  std::string content;
  NGRAM_RETURN_NOT_OK(ReadWholeFile(mr::ResolveEnv(env), path, &content));
  Slice in(content);
  if (in.size() < sizeof(kMagic) ||
      memcmp(in.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption(path + ": not an NGS1 statistics file");
  }
  in.RemovePrefix(sizeof(kMagic));
  uint64_t count = 0;
  if (!GetVarint64(&in, &count)) {
    return Status::Corruption(path + ": bad entry count");
  }
  stats->entries.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t seq_len = 0;
    if (!GetVarint64(&in, &seq_len) || seq_len > in.size()) {
      return Status::Corruption(path + ": truncated entry");
    }
    TermSequence seq;
    if (!SequenceCodec::Decode(Slice(in.data(), seq_len), &seq)) {
      return Status::Corruption(path + ": undecodable sequence");
    }
    in.RemovePrefix(seq_len);
    uint64_t cf = 0;
    if (!GetVarint64(&in, &cf)) {
      return Status::Corruption(path + ": truncated frequency");
    }
    stats->entries.emplace_back(std::move(seq), cf);
  }
  if (!in.empty()) {
    return Status::Corruption(path + ": trailing bytes");
  }
  return Status::OK();
}

}  // namespace ngram
