#include "core/stats_io.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <memory>

#include "encoding/sequence.h"
#include "encoding/varint.h"
#include "util/macros.h"

namespace ngram {

namespace {

constexpr char kMagic[4] = {'N', 'G', 'S', '1'};

struct FileCloser {
  void operator()(FILE* f) const {
    if (f != nullptr) {
      fclose(f);
    }
  }
};
using FilePtr = std::unique_ptr<FILE, FileCloser>;

Status WriteAll(FILE* f, const std::string& data, const std::string& path) {
  if (fwrite(data.data(), 1, data.size(), f) != data.size()) {
    return Status::IOError("short write to " + path);
  }
  return Status::OK();
}

}  // namespace

Status WriteStatsTsv(const NgramStatistics& stats, const Vocabulary* vocab,
                     const std::string& path) {
  FilePtr f(fopen(path.c_str(), "w"));
  if (f == nullptr) {
    return Status::IOError("open " + path + ": " + strerror(errno));
  }
  std::string line;
  for (const auto& [seq, cf] : stats.entries) {
    line.clear();
    for (size_t i = 0; i < seq.size(); ++i) {
      if (i > 0) {
        line += ' ';
      }
      if (vocab != nullptr) {
        line += vocab->TermOf(seq[i]);
      } else {
        line += std::to_string(seq[i]);
      }
    }
    line += '\t';
    line += std::to_string(cf);
    line += '\n';
    NGRAM_RETURN_NOT_OK(WriteAll(f.get(), line, path));
  }
  if (fflush(f.get()) != 0) {
    return Status::IOError("flush " + path);
  }
  return Status::OK();
}

Status WriteStatsBinary(const NgramStatistics& stats,
                        const std::string& path) {
  FilePtr f(fopen(path.c_str(), "wb"));
  if (f == nullptr) {
    return Status::IOError("open " + path + ": " + strerror(errno));
  }
  std::string buf(kMagic, sizeof(kMagic));
  PutVarint64(&buf, stats.entries.size());
  std::string seq_bytes;
  for (const auto& [seq, cf] : stats.entries) {
    seq_bytes.clear();
    SequenceCodec::Encode(seq, &seq_bytes);
    PutVarint64(&buf, seq_bytes.size());
    buf += seq_bytes;
    PutVarint64(&buf, cf);
    if (buf.size() > (1 << 20)) {
      NGRAM_RETURN_NOT_OK(WriteAll(f.get(), buf, path));
      buf.clear();
    }
  }
  NGRAM_RETURN_NOT_OK(WriteAll(f.get(), buf, path));
  if (fflush(f.get()) != 0) {
    return Status::IOError("flush " + path);
  }
  return Status::OK();
}

Status ReadStatsBinary(const std::string& path, NgramStatistics* stats) {
  stats->entries.clear();
  FilePtr f(fopen(path.c_str(), "rb"));
  if (f == nullptr) {
    return Status::IOError("open " + path + ": " + strerror(errno));
  }
  std::string content;
  char chunk[64 * 1024];
  size_t got = 0;
  while ((got = fread(chunk, 1, sizeof(chunk), f.get())) > 0) {
    content.append(chunk, got);
  }
  if (ferror(f.get())) {
    return Status::IOError("read " + path);
  }
  Slice in(content);
  if (in.size() < sizeof(kMagic) ||
      memcmp(in.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption(path + ": not an NGS1 statistics file");
  }
  in.RemovePrefix(sizeof(kMagic));
  uint64_t count = 0;
  if (!GetVarint64(&in, &count)) {
    return Status::Corruption(path + ": bad entry count");
  }
  stats->entries.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t seq_len = 0;
    if (!GetVarint64(&in, &seq_len) || seq_len > in.size()) {
      return Status::Corruption(path + ": truncated entry");
    }
    TermSequence seq;
    if (!SequenceCodec::Decode(Slice(in.data(), seq_len), &seq)) {
      return Status::Corruption(path + ": undecodable sequence");
    }
    in.RemovePrefix(seq_len);
    uint64_t cf = 0;
    if (!GetVarint64(&in, &cf)) {
      return Status::Corruption(path + ": truncated frequency");
    }
    stats->entries.emplace_back(std::move(seq), cf);
  }
  if (!in.empty()) {
    return Status::Corruption(path + ": trailing bytes");
  }
  return Status::OK();
}

}  // namespace ngram
