#include "core/timeseries.h"

#include <algorithm>

namespace ngram {

void TimeSeries::Add(int32_t year, uint64_t count) {
  if (count == 0) {
    return;
  }
  auto it = std::lower_bound(
      points.begin(), points.end(), year,
      [](const std::pair<int32_t, uint64_t>& p, int32_t y) {
        return p.first < y;
      });
  if (it != points.end() && it->first == year) {
    it->second += count;
  } else {
    points.insert(it, {year, count});
  }
}

void TimeSeries::MergeFrom(const TimeSeries& other) {
  std::vector<std::pair<int32_t, uint64_t>> merged;
  merged.reserve(points.size() + other.points.size());
  size_t i = 0, j = 0;
  while (i < points.size() || j < other.points.size()) {
    if (j >= other.points.size() ||
        (i < points.size() && points[i].first < other.points[j].first)) {
      merged.push_back(points[i++]);
    } else if (i >= points.size() ||
               other.points[j].first < points[i].first) {
      merged.push_back(other.points[j++]);
    } else {
      merged.emplace_back(points[i].first,
                          points[i].second + other.points[j].second);
      ++i;
      ++j;
    }
  }
  points = std::move(merged);
}

uint64_t TimeSeries::Total() const {
  uint64_t total = 0;
  for (const auto& [year, count] : points) {
    total += count;
  }
  return total;
}

uint64_t TimeSeries::At(int32_t year) const {
  auto it = std::lower_bound(
      points.begin(), points.end(), year,
      [](const std::pair<int32_t, uint64_t>& p, int32_t y) {
        return p.first < y;
      });
  if (it != points.end() && it->first == year) {
    return it->second;
  }
  return 0;
}

std::string TimeSeries::ToString() const {
  std::string out = "{";
  for (size_t i = 0; i < points.size(); ++i) {
    if (i > 0) {
      out += ", ";
    }
    out += std::to_string(points[i].first) + ":" +
           std::to_string(points[i].second);
  }
  out += "}";
  return out;
}

}  // namespace ngram
