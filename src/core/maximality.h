// Maximal and closed n-grams (Section VI-A).
//
// An n-gram r is MAXIMAL if no super-n-gram s (r strict subsequence, within
// the sigma bound) has cf(s) >= tau; CLOSED if none has cf(s) = cf(r).
//
// Pipeline (two jobs, as in the paper):
//   1. SUFFIX-sigma with the emission filter: the reducer's pop stream
//      yields only prefix-maximal (prefix-closed) n-grams.
//   2. Post-filter job: reverse every surviving n-gram, partition by first
//      (reversed) term, sort reverse-lexicographically, and keep only
//      suffix-maximal (suffix-closed) ones via the PrefixFilterStack;
//      n-grams are un-reversed before the final emit.
#pragma once

#include "core/input.h"
#include "core/options.h"
#include "core/stats.h"
#include "util/result.h"

namespace ngram {

/// All maximal n-grams with their frequencies.
Result<NgramRun> RunSuffixSigmaMaximal(const CorpusContext& ctx,
                                       const NgramJobOptions& options);

/// All closed n-grams with their frequencies.
Result<NgramRun> RunSuffixSigmaClosed(const CorpusContext& ctx,
                                      const NgramJobOptions& options);

}  // namespace ngram
