// Single-threaded reference implementations ("oracles") used by the tests
// to validate every MapReduce method: plain counting, document frequency,
// maximality, closedness, and time series, all by direct enumeration.
#pragma once

#include <cstdint>
#include <map>

#include "core/stats.h"
#include "core/timeseries.h"
#include "text/corpus.h"

namespace ngram {

/// All n-grams with |s| <= sigma (0 = unbounded) and cf(s) >= tau, by
/// direct enumeration over every sentence. Canonically sorted.
NgramStatistics BruteForceCounts(const Corpus& corpus, uint64_t tau,
                                 uint32_t sigma);

/// Document-frequency variant: df(s) >= tau.
NgramStatistics BruteForceDocumentFrequencies(const Corpus& corpus,
                                              uint64_t tau, uint32_t sigma);

/// Maximal n-grams: r with cf(r) >= tau and no strict super-n-gram s
/// (within the sigma bound) with cf(s) >= tau.
NgramStatistics BruteForceMaximal(const Corpus& corpus, uint64_t tau,
                                  uint32_t sigma);

/// Closed n-grams: r with cf(r) >= tau and no strict super-n-gram s with
/// cf(s) = cf(r).
NgramStatistics BruteForceClosed(const Corpus& corpus, uint64_t tau,
                                 uint32_t sigma);

/// Per-n-gram occurrence time series over document years (Section VI-B),
/// for n-grams with total cf >= tau.
std::map<TermSequence, TimeSeries> BruteForceTimeSeries(const Corpus& corpus,
                                                        uint64_t tau,
                                                        uint32_t sigma);

}  // namespace ngram
