// Inverted-index aggregation via SUFFIX-sigma (Section VI-B, first bullet:
// "build an inverted index that records for every n-gram how often or where
// it occurs in individual documents").
//
// The mapper emits every sigma-truncated suffix with its (doc id, position)
// rather than just the doc id; the reducer's counts stack becomes a stack
// of positional posting lists, merged lazily as frames pop. The result is
// the same n-gram -> posting-list table APRIORI-INDEX produces, but in a
// single job — tests cross-check the two.
#pragma once

#include "core/apriori_index.h"
#include "core/input.h"
#include "core/options.h"
#include "index/posting.h"
#include "mapreduce/metrics.h"
#include "util/result.h"

namespace ngram {

struct SuffixIndexRun {
  PositionalIndex index;
  mr::RunMetrics metrics;
};

/// Builds the positional index of every n-gram with |s| <= sigma and
/// cf >= tau (collection-frequency mode) or df >= tau (document mode).
Result<SuffixIndexRun> RunSuffixSigmaIndex(const CorpusContext& ctx,
                                           const NgramJobOptions& options);

}  // namespace ngram
