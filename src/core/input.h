// The MapReduce input model shared by all methods.
//
// A corpus becomes a table of (doc_id, Fragment) rows, one row per sentence
// (sentences are n-gram barriers, Section VII-B). A Fragment carries its
// base term offset within the document so that APRIORI-INDEX's positional
// postings live in one document-wide coordinate space; consecutive
// fragments are separated by a position gap, which guarantees posting-list
// joins can never produce an n-gram that spans a barrier.
//
// Document splitting at infrequent terms (Section V) happens *inside* the
// mappers via ForEachPiece, because it depends on the run's tau.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "encoding/serde.h"
#include "mapreduce/dataset.h"
#include "text/corpus.h"

namespace ngram {

/// A sentence (or split piece) of a document with its base position.
struct Fragment {
  uint32_t base = 0;
  TermSequence terms;

  bool operator==(const Fragment& o) const {
    return base == o.base && terms == o.terms;
  }
};

template <>
struct Serde<Fragment> {
  static void Encode(const Fragment& f, std::string* out) {
    PutVarint32(out, f.base);
    SequenceCodec::Encode(f.terms, out);
  }
  static bool Decode(Slice in, Fragment* f) {
    if (!GetVarint32(&in, &f->base)) {
      return false;
    }
    return SequenceCodec::Decode(in, &f->terms);
  }
};

/// The input table type every method's first job consumes.
using InputTable = mr::MemoryTable<uint64_t, Fragment>;

/// Immutable per-run context shared by mapper instances (the moral
/// equivalent of Hadoop's distributed cache for side data).
struct CorpusContext {
  InputTable input;
  /// Unigram collection frequencies (for document splitting).
  std::shared_ptr<const UnigramFrequencies> unigram_cf;
  /// doc id -> publication year (time-series extension); empty if no
  /// timestamps.
  std::shared_ptr<const std::vector<int32_t>> doc_years;
  uint64_t total_term_occurrences = 0;
};

/// Builds the input table (one row per sentence, position gaps between
/// sentences) and the shared side data.
CorpusContext BuildCorpusContext(const Corpus& corpus);

/// Applies document splitting (when enabled) and invokes `fn` on every
/// resulting piece. With splitting disabled, `fn` sees the fragment as-is.
void ForEachPiece(const Fragment& fragment, bool document_splits,
                  const UnigramFrequencies& unigram_cf, uint64_t tau,
                  const std::function<void(const Fragment&)>& fn);

}  // namespace ngram
