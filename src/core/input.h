// The MapReduce input model shared by all methods.
//
// A corpus becomes a table of (doc_id, Fragment) rows, one row per sentence
// (sentences are n-gram barriers, Section VII-B). A Fragment carries its
// base term offset within the document so that APRIORI-INDEX's positional
// postings live in one document-wide coordinate space; consecutive
// fragments are separated by a position gap, which guarantees posting-list
// joins can never produce an n-gram that spans a barrier.
//
// Document splitting at infrequent terms (Section V) happens *inside* the
// mappers via ForEachPiece, because it depends on the run's tau.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "encoding/serde.h"
#include "mapreduce/dataset.h"
#include "text/corpus.h"

namespace ngram {

/// A sentence (or split piece) of a document with its base position.
struct Fragment {
  uint32_t base = 0;
  TermSequence terms;

  bool operator==(const Fragment& o) const {
    return base == o.base && terms == o.terms;
  }
};

template <>
struct Serde<Fragment> {
  static void Encode(const Fragment& f, std::string* out) {
    PutVarint32(out, f.base);
    SequenceCodec::Encode(f.terms, out);
  }
  static bool Decode(Slice in, Fragment* f) {
    if (!GetVarint32(&in, &f->base)) {
      return false;
    }
    return SequenceCodec::Decode(in, &f->terms);
  }
};

/// The typed input row shape ((doc_id, Fragment) pairs); the context
/// stores rows serialized, so this alias mostly serves tests that build
/// small typed tables by hand.
using InputTable = mr::MemoryTable<uint64_t, Fragment>;

/// Immutable per-run context shared by mapper instances (the moral
/// equivalent of Hadoop's distributed cache for side data).
struct CorpusContext {
  /// The input rows — one per sentence — in serialized form: the
  /// RecordTable every method's first job maps over. Encoded once per
  /// context, reused across every job and round (APRIORI-SCAN's repeated
  /// scans included); no typed copy of the corpus is retained.
  mr::RecordTable records;
  /// Unigram collection frequencies (for document splitting).
  std::shared_ptr<const UnigramFrequencies> unigram_cf;
  /// doc id -> publication year (time-series extension); empty if no
  /// timestamps.
  std::shared_ptr<const std::vector<int32_t>> doc_years;
  uint64_t total_term_occurrences = 0;
};

/// Builds the input table (one row per sentence, position gaps between
/// sentences) and the shared side data.
CorpusContext BuildCorpusContext(const Corpus& corpus);

/// Applies document splitting (when enabled) and invokes `fn` on every
/// resulting piece. With splitting disabled, `fn` sees the fragment as-is.
void ForEachPiece(const Fragment& fragment, bool document_splits,
                  const UnigramFrequencies& unigram_cf, uint64_t tau,
                  const std::function<void(const Fragment&)>& fn);

/// \brief Zero-copy cursor over one serialized input row (doc-id key +
/// Fragment value) for raw n-gram mappers.
///
/// One varint scan recovers the term ids (needed for document splitting
/// and dictionary probes) together with each term's byte offset inside the
/// encoded terms — which are a sub-slice of the input value, so any
/// contiguous piece (n-gram window, truncated suffix) can be emitted as a
/// slice of the *input* bytes: no Fragment decode into a typed row, no
/// re-encode before emitting. Buffers are reused across rows.
class FragmentCursor {
 public:
  /// Parses the key/value slices of one input record. Returns false on
  /// malformed input. Slices handed out below stay valid until the next
  /// Parse() call (they point into `value`).
  bool Parse(Slice key, Slice value) {
    terms_.clear();
    offsets_.clear();
    if (!GetVarint64(&key, &doc_id_) || !key.empty()) {
      return false;
    }
    if (!GetVarint32(&value, &base_)) {
      return false;
    }
    terms_bytes_ = value;
    const char* start = value.data();
    while (!value.empty()) {
      offsets_.push_back(static_cast<uint32_t>(value.data() - start));
      TermId t = 0;
      if (!GetVarint32(&value, &t)) {
        return false;
      }
      terms_.push_back(t);
    }
    offsets_.push_back(static_cast<uint32_t>(value.data() - start));
    return true;
  }

  uint64_t doc_id() const { return doc_id_; }
  uint32_t base() const { return base_; }
  const TermSequence& terms() const { return terms_; }

  /// Encoded bytes of terms [b, e) — a sub-slice of the parsed value.
  Slice Range(size_t b, size_t e) const {
    return Slice(terms_bytes_.data() + offsets_[b],
                 offsets_[e] - offsets_[b]);
  }

 private:
  uint64_t doc_id_ = 0;
  uint32_t base_ = 0;
  Slice terms_bytes_;
  TermSequence terms_;             // Reused across rows.
  std::vector<uint32_t> offsets_;  // terms_.size() + 1 entries.
};

/// Raw counterpart of ForEachPiece: invokes fn(begin, end) with the index
/// range of every piece of `terms` (the whole range when splitting is
/// disabled). Splitting semantics are identical to ForEachPiece — pieces
/// are the maximal runs of terms with unigram cf >= tau — so a raw mapper
/// emits byte-identical records to its typed predecessor.
template <typename Fn>
inline void ForEachPieceRange(const TermSequence& terms, bool document_splits,
                              const UnigramFrequencies& unigram_cf,
                              uint64_t tau, const Fn& fn) {
  if (!document_splits || tau <= 1) {
    fn(static_cast<size_t>(0), terms.size());
    return;
  }
  size_t begin = 0;
  bool open = false;
  for (size_t i = 0; i < terms.size(); ++i) {
    const TermId t = terms[i];
    const uint64_t cf = t < unigram_cf.size() ? unigram_cf[t] : 0;
    if (cf >= tau) {
      if (!open) {
        begin = i;
        open = true;
      }
    } else if (open) {
      fn(begin, i);
      open = false;
    }
  }
  if (open) {
    fn(begin, terms.size());
  }
}

}  // namespace ngram
