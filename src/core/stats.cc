#include "core/stats.h"

#include <algorithm>
#include <cstdio>

namespace ngram {

void NgramStatistics::SortCanonical() {
  std::sort(entries.begin(), entries.end());
}

bool NgramStatistics::SameAs(NgramStatistics& other) {
  SortCanonical();
  other.SortCanonical();
  return entries == other.entries;
}

uint64_t NgramStatistics::FrequencyOf(const TermSequence& seq) const {
  auto it = std::lower_bound(
      entries.begin(), entries.end(), seq,
      [](const Entry& e, const TermSequence& s) { return e.first < s; });
  if (it != entries.end() && it->first == seq) {
    return it->second;
  }
  return 0;
}

std::vector<std::string> NgramStatistics::DiffAgainst(
    const NgramStatistics& other, size_t max_items) const {
  std::vector<std::string> diffs;
  size_t i = 0, j = 0;
  while ((i < entries.size() || j < other.entries.size()) &&
         diffs.size() < max_items) {
    if (j >= other.entries.size() ||
        (i < entries.size() && entries[i].first < other.entries[j].first)) {
      diffs.push_back("only-left: " + SequenceToDebugString(entries[i].first) +
                      ":" + std::to_string(entries[i].second));
      ++i;
    } else if (i >= entries.size() ||
               other.entries[j].first < entries[i].first) {
      diffs.push_back("only-right: " +
                      SequenceToDebugString(other.entries[j].first) + ":" +
                      std::to_string(other.entries[j].second));
      ++j;
    } else {
      if (entries[i].second != other.entries[j].second) {
        diffs.push_back("freq-mismatch: " +
                        SequenceToDebugString(entries[i].first) + " left=" +
                        std::to_string(entries[i].second) + " right=" +
                        std::to_string(other.entries[j].second));
      }
      ++i;
      ++j;
    }
  }
  return diffs;
}

Log10Histogram2D NgramStatistics::OutputCharacteristics() const {
  Log10Histogram2D hist;
  for (const auto& [seq, cf] : entries) {
    hist.Add(seq.size(), cf);
  }
  return hist;
}

uint32_t NgramStatistics::MaxLength() const {
  uint32_t max_len = 0;
  for (const auto& [seq, cf] : entries) {
    max_len = std::max(max_len, static_cast<uint32_t>(seq.size()));
  }
  return max_len;
}

std::map<TermSequence, uint64_t> NgramStatistics::ToMap() const {
  std::map<TermSequence, uint64_t> out;
  for (const auto& [seq, cf] : entries) {
    out[seq] = cf;
  }
  return out;
}

std::string NgramStatistics::ToString(const Vocabulary& vocab,
                                      size_t limit) const {
  std::vector<const Entry*> by_freq;
  by_freq.reserve(entries.size());
  for (const auto& e : entries) {
    by_freq.push_back(&e);
  }
  // Ties break on entry position (the pointers index into `entries`), so
  // plain sort renders equal-frequency n-grams in table order — the same
  // output stable_sort gave, without its temp buffer.
  std::sort(by_freq.begin(), by_freq.end(),
            [](const Entry* a, const Entry* b) {
              return a->second != b->second ? a->second > b->second : a < b;
            });
  std::string out;
  char buf[64];
  for (size_t i = 0; i < by_freq.size() && i < limit; ++i) {
    snprintf(buf, sizeof(buf), "%12llu  ",
             static_cast<unsigned long long>(by_freq[i]->second));
    out += buf;
    out += vocab.Decode(by_freq[i]->first);
    out += '\n';
  }
  if (by_freq.size() > limit) {
    out += "... (" + std::to_string(by_freq.size() - limit) + " more)\n";
  }
  return out;
}

}  // namespace ngram
