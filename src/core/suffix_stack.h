// The two-stack suffix aggregator at the core of SUFFIX-sigma's reducer
// (Algorithm 4 and Figure 1), generalized over the aggregate type so the
// same automaton serves plain counting, document frequencies, and n-gram
// time series (Section VI-B).
//
// Suffix keys arrive in reverse lexicographic order. The stack holds the
// prefixes of the most recent suffix; each frame lazily accumulates the
// aggregate of its subtree. When the next suffix diverges, completed frames
// pop — at that moment the frame's aggregate is the n-gram's final value,
// because no yet-unseen suffix can have it as a prefix.
//
// Each frame also tracks the maximum Total() over its *completed children*,
// which is exactly max { cf(extension) } — enabling exact prefix-maximality
// (max child cf < tau) and prefix-closedness (max child cf != own cf)
// decisions at pop time (Section VI-A).
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "encoding/sequence.h"
#include "util/macros.h"
#include "util/status.h"

namespace ngram {

/// Which n-grams to emit at pop time.
enum class EmitMode {
  kAll,            // Every n-gram with Total() >= tau.
  kPrefixMaximal,  // ... and no prefix-extension with cf >= tau.
  kPrefixClosed,   // ... and no prefix-extension with equal cf.
};

/// Plain occurrence counting (collection frequency).
struct CountAggregate {
  uint64_t count = 0;

  void MergeFrom(const CountAggregate& other) { count += other.count; }
  uint64_t Total() const { return count; }
};

/// Distinct-document tracking (document frequency). Docs are kept sorted
/// and unique; merging is a sorted-set union.
struct DocSetAggregate {
  std::vector<uint64_t> docs;

  void MergeFrom(const DocSetAggregate& other) {
    std::vector<uint64_t> merged;
    merged.reserve(docs.size() + other.docs.size());
    size_t i = 0, j = 0;
    while (i < docs.size() || j < other.docs.size()) {
      uint64_t next;
      if (j >= other.docs.size() ||
          (i < docs.size() && docs[i] <= other.docs[j])) {
        next = docs[i];
        if (j < other.docs.size() && other.docs[j] == next) {
          ++j;
        }
        ++i;
      } else {
        next = other.docs[j];
        ++j;
      }
      merged.push_back(next);
    }
    docs = std::move(merged);
  }
  uint64_t Total() const { return docs.size(); }
};

/// \brief The SUFFIX-sigma reducer automaton.
///
/// \tparam Agg aggregate with MergeFrom(const Agg&) and uint64_t Total().
template <typename Agg>
class SuffixStack {
 public:
  /// Called for every emitted n-gram with its final aggregate.
  using EmitFn = std::function<Status(const TermSequence&, const Agg&)>;

  SuffixStack(uint64_t tau, EmitMode mode, EmitFn emit)
      : tau_(tau), mode_(mode), emit_(std::move(emit)) {}

  NGRAM_DISALLOW_COPY_AND_ASSIGN(SuffixStack);

  /// Feeds the next suffix (reverse-lex order) with the aggregate of its
  /// exact occurrences (|l| for counting). Returns InvalidArgument on
  /// out-of-order input.
  Status Push(const TermSequence& suffix, Agg value) {
    // Longest common prefix of the stack path and the new suffix.
    size_t lcp = 0;
    while (lcp < path_.size() && lcp < suffix.size() &&
           path_[lcp] == suffix[lcp]) {
      ++lcp;
    }
    // Order sanity: the new suffix may not strictly extend the path (an
    // extension sorts *before* its prefix in reverse-lex order), and at the
    // divergence point its term must be smaller (descending order).
    if (lcp == path_.size() && suffix.size() > path_.size() &&
        !path_.empty()) {
      return Status::InvalidArgument(
          "suffix stream not in reverse lexicographic order (extension "
          "after prefix)");
    }
    if (lcp < path_.size() && lcp < suffix.size() &&
        suffix[lcp] > path_[lcp]) {
      return Status::InvalidArgument(
          "suffix stream not in reverse lexicographic order");
    }
    while (path_.size() > lcp) {
      NGRAM_RETURN_NOT_OK(PopFrame());
    }
    if (path_.size() == suffix.size()) {
      // The suffix equals the current path (it was a prefix of an earlier,
      // longer suffix): merge directly, like Algorithm 4 line 7/8.
      if (!frames_.empty()) {
        const uint64_t t = value.Total();
        frames_.back().agg.MergeFrom(value);
        (void)t;
      } else if (!suffix.empty()) {
        return Status::Internal("empty stack with non-empty suffix");
      }
      return Status::OK();
    }
    for (size_t i = path_.size(); i < suffix.size(); ++i) {
      path_.push_back(suffix[i]);
      frames_.push_back(Frame{});
    }
    frames_.back().agg = std::move(value);
    return Status::OK();
  }

  /// Pops every remaining frame — the reducer's cleanup() hook
  /// (Algorithm 4 invokes reduce with an empty sequence).
  Status Flush() {
    while (!frames_.empty()) {
      NGRAM_RETURN_NOT_OK(PopFrame());
    }
    return Status::OK();
  }

  /// Current (term, subtree-total) frames bottom-to-top — lets tests replay
  /// the paper's Figure 1.
  std::vector<std::pair<TermId, uint64_t>> FrameSnapshot() const {
    std::vector<std::pair<TermId, uint64_t>> snapshot;
    snapshot.reserve(frames_.size());
    for (size_t i = 0; i < frames_.size(); ++i) {
      snapshot.emplace_back(path_[i], frames_[i].agg.Total());
    }
    return snapshot;
  }

  size_t depth() const { return frames_.size(); }

 private:
  struct Frame {
    Agg agg;
    uint64_t max_child_total = 0;
  };

  Status PopFrame() {
    Frame& top = frames_.back();
    const uint64_t total = top.agg.Total();
    bool emit = total >= tau_;
    if (mode_ == EmitMode::kPrefixMaximal) {
      emit = emit && top.max_child_total < tau_;
    } else if (mode_ == EmitMode::kPrefixClosed) {
      emit = emit && top.max_child_total != total;
    }
    if (emit) {
      NGRAM_RETURN_NOT_OK(emit_(path_, top.agg));
    }
    if (frames_.size() >= 2) {
      Frame& parent = frames_[frames_.size() - 2];
      parent.max_child_total = std::max(parent.max_child_total, total);
      parent.agg.MergeFrom(top.agg);
    }
    frames_.pop_back();
    path_.pop_back();
    return Status::OK();
  }

  const uint64_t tau_;
  const EmitMode mode_;
  const EmitFn emit_;
  std::vector<Frame> frames_;
  TermSequence path_;
};

/// \brief Stack filter for the maximality/closedness post-processing job
/// (Section VI-A).
///
/// Inputs are *reversed* n-grams with their exact frequencies, again in
/// reverse-lex order. Unlike SuffixStack, frames do not aggregate: an input
/// item keeps its own cf, and interior frames may not correspond to any
/// input at all. A frame tracks whether any descendant input exists
/// (maximality) and the max descendant cf (closedness).
class PrefixFilterStack {
 public:
  using EmitFn = std::function<Status(const TermSequence&, uint64_t)>;

  /// `mode` must be kPrefixMaximal or kPrefixClosed.
  PrefixFilterStack(EmitMode mode, EmitFn emit)
      : mode_(mode), emit_(std::move(emit)) {}

  NGRAM_DISALLOW_COPY_AND_ASSIGN(PrefixFilterStack);

  Status Push(const TermSequence& item, uint64_t frequency) {
    size_t lcp = 0;
    while (lcp < path_.size() && lcp < item.size() &&
           path_[lcp] == item[lcp]) {
      ++lcp;
    }
    if ((lcp == path_.size() && item.size() > path_.size() &&
         !path_.empty()) ||
        (lcp < path_.size() && lcp < item.size() && item[lcp] > path_[lcp])) {
      return Status::InvalidArgument(
          "filter input not in reverse lexicographic order");
    }
    while (path_.size() > lcp) {
      NGRAM_RETURN_NOT_OK(PopFrame());
    }
    if (path_.size() == item.size()) {
      if (frames_.empty()) {
        return Status::Internal("duplicate empty item");
      }
      frames_.back().is_item = true;
      frames_.back().cf = frequency;
      return Status::OK();
    }
    for (size_t i = path_.size(); i < item.size(); ++i) {
      path_.push_back(item[i]);
      frames_.push_back(Frame{});
    }
    frames_.back().is_item = true;
    frames_.back().cf = frequency;
    return Status::OK();
  }

  Status Flush() {
    while (!frames_.empty()) {
      NGRAM_RETURN_NOT_OK(PopFrame());
    }
    return Status::OK();
  }

 private:
  struct Frame {
    bool is_item = false;
    uint64_t cf = 0;
    bool has_descendant_item = false;
    uint64_t max_descendant_cf = 0;
  };

  Status PopFrame() {
    Frame& top = frames_.back();
    if (top.is_item) {
      bool emit = true;
      if (mode_ == EmitMode::kPrefixMaximal) {
        emit = !top.has_descendant_item;
      } else if (mode_ == EmitMode::kPrefixClosed) {
        emit = top.max_descendant_cf != top.cf;
      }
      if (emit) {
        NGRAM_RETURN_NOT_OK(emit_(path_, top.cf));
      }
    }
    if (frames_.size() >= 2) {
      Frame& parent = frames_[frames_.size() - 2];
      parent.has_descendant_item |= top.is_item || top.has_descendant_item;
      parent.max_descendant_cf =
          std::max({parent.max_descendant_cf, top.max_descendant_cf,
                    top.is_item ? top.cf : 0});
    }
    frames_.pop_back();
    path_.pop_back();
    return Status::OK();
  }

  const EmitMode mode_;
  const EmitFn emit_;
  std::vector<Frame> frames_;
  TermSequence path_;
};

}  // namespace ngram
