#include "core/runner.h"

#include "core/apriori_index.h"
#include "core/apriori_scan.h"
#include "core/naive.h"
#include "core/suffix_sigma.h"
#include "util/logging.h"

namespace ngram {

const char* MethodName(Method method) {
  switch (method) {
    case Method::kNaive:
      return "Naive";
    case Method::kAprioriScan:
      return "Apriori-Scan";
    case Method::kAprioriIndex:
      return "Apriori-Index";
    case Method::kSuffixSigma:
      return "Suffix-sigma";
  }
  return "unknown";
}

Status ValidateOptions(const NgramJobOptions& options) {
  if (options.tau == 0) {
    return Status::InvalidArgument("tau must be >= 1");
  }
  if (options.num_reducers == 0) {
    return Status::InvalidArgument("num_reducers must be >= 1");
  }
  if (options.map_slots == 0 || options.reduce_slots == 0) {
    return Status::InvalidArgument("slot counts must be >= 1");
  }
  if (options.method == Method::kAprioriIndex &&
      options.apriori_index_k == 0) {
    return Status::InvalidArgument("apriori_index_k must be >= 1");
  }
  if (options.sort_buffer_bytes < 1024) {
    return Status::InvalidArgument("sort_buffer_bytes must be >= 1 KiB");
  }
  return Status::OK();
}

namespace {

Result<NgramRun> Dispatch(const CorpusContext& ctx,
                          const NgramJobOptions& options) {
  switch (options.method) {
    case Method::kNaive:
      return RunNaive(ctx, options);
    case Method::kAprioriScan:
      return RunAprioriScan(ctx, options);
    case Method::kAprioriIndex:
      return RunAprioriIndex(ctx, options);
    case Method::kSuffixSigma:
      return RunSuffixSigma(ctx, options);
  }
  return Status::InvalidArgument("unknown method");
}

}  // namespace

Result<NgramRun> ComputeNgramStatistics(const CorpusContext& ctx,
                                        const NgramJobOptions& options) {
  NGRAM_RETURN_NOT_OK(ValidateOptions(options));
  auto run = Dispatch(ctx, options);
  if (run.ok() && run->metrics.num_jobs() > 1) {
    // Chained pipelines report every round's boundary/shuffle split, not
    // just the aggregate — the per-round view is what exposes job-boundary
    // cost on the APRIORI methods.
    NGRAM_LOG_INFO << MethodName(options.method) << " pipeline:\n"
                   << run->metrics.pipeline().ToString();
  }
  return run;
}

Result<NgramRun> ComputeNgramStatistics(const Corpus& corpus,
                                        const NgramJobOptions& options) {
  const CorpusContext ctx = BuildCorpusContext(corpus);
  return ComputeNgramStatistics(ctx, options);
}

}  // namespace ngram
