// The library's front door: compute n-gram statistics over a corpus with
// any of the paper's four methods.
//
//   ngram::NgramJobOptions options;
//   options.tau = 10;
//   options.sigma = 5;
//   options.method = ngram::Method::kSuffixSigma;
//   auto run = ngram::ComputeNgramStatistics(corpus, options);
//   // run->stats  : (n-gram, frequency) table
//   // run->metrics: wallclock / bytes / records per MapReduce job
#pragma once

#include "core/input.h"
#include "core/options.h"
#include "core/stats.h"
#include "text/corpus.h"
#include "util/result.h"

namespace ngram {

/// Validates option combinations (e.g. a positive tau, sane slot counts).
Status ValidateOptions(const NgramJobOptions& options);

/// Computes statistics with the method selected in `options`, reusing a
/// prebuilt corpus context (preferred in parameter sweeps).
Result<NgramRun> ComputeNgramStatistics(const CorpusContext& ctx,
                                        const NgramJobOptions& options);

/// Convenience overload that builds the context internally.
Result<NgramRun> ComputeNgramStatistics(const Corpus& corpus,
                                        const NgramJobOptions& options);

}  // namespace ngram
