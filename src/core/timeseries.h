// n-gram time series (Section VI-B): per-n-gram occurrence counts bucketed
// by document publication year, the aggregation popularized by the
// "culturomics" work of Michel et al. that the paper extends SUFFIX-sigma
// towards.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "encoding/serde.h"

namespace ngram {

/// Sparse yearly observation counts, sorted by year.
struct TimeSeries {
  std::vector<std::pair<int32_t, uint64_t>> points;

  /// Adds `count` observations in `year`.
  void Add(int32_t year, uint64_t count);

  /// Merges another series into this one (the stack's lazy aggregation:
  /// "instead of adding counts, we add time series observations").
  void MergeFrom(const TimeSeries& other);

  /// Total observations across all years — the n-gram's cf, used for the
  /// tau threshold.
  uint64_t Total() const;

  /// Count in `year` (0 when absent).
  uint64_t At(int32_t year) const;

  bool operator==(const TimeSeries& o) const { return points == o.points; }

  std::string ToString() const;
};

template <>
struct Serde<TimeSeries> {
  static void Encode(const TimeSeries& ts, std::string* out) {
    PutVarint64(out, ts.points.size());
    int32_t prev_year = 0;
    for (const auto& [year, count] : ts.points) {
      PutVarintSigned64(out, year - prev_year);
      prev_year = year;
      PutVarint64(out, count);
    }
  }
  static bool Decode(Slice in, TimeSeries* ts) {
    ts->points.clear();
    uint64_t n = 0;
    if (!GetVarint64(&in, &n)) {
      return false;
    }
    int64_t prev_year = 0;
    for (uint64_t i = 0; i < n; ++i) {
      int64_t delta = 0;
      uint64_t count = 0;
      if (!GetVarintSigned64(&in, &delta) || !GetVarint64(&in, &count)) {
        return false;
      }
      prev_year += delta;
      ts->points.emplace_back(static_cast<int32_t>(prev_year), count);
    }
    return in.empty();
  }
};

}  // namespace ngram
