#include "core/apriori_scan.h"

#include "core/counting.h"
#include "index/sequence_set.h"
#include "util/logging.h"

namespace ngram {

namespace {

/// The k-th scan's mapper: emits k-grams surviving the APRIORI check
/// against the dictionary of frequent (k-1)-grams.
///
/// Runs raw over the serialized input row: term ids and byte offsets come
/// from one varint scan, every k-gram window is a sub-slice of the input
/// bytes, and — because the dictionary stores *encoded* sequences — the
/// two APRIORI probes test sub-slices directly, with no per-window scratch
/// encode. The dictionary itself was built from the previous round's
/// serialized reducer output without re-encoding (see RunAprioriScan).
class AprioriScanMapper final : public mr::RawMapper<TermSequence, uint64_t> {
 public:
  AprioriScanMapper(const NgramJobOptions& options, uint32_t k,
                    std::shared_ptr<const UnigramFrequencies> unigram_cf,
                    std::shared_ptr<const SequenceSet> dict)
      : options_(options),
        k_(k),
        unigram_cf_(std::move(unigram_cf)),
        dict_(std::move(dict)) {}

  Status Map(Slice key, Slice value, Context* ctx) override {
    if (!cursor_.Parse(key, value)) {
      return Status::Corruption("AprioriScanMapper: bad input row");
    }
    value_scratch_.clear();
    Serde<uint64_t>::Encode(
        CountingValue(options_.frequency_mode, cursor_.doc_id()),
        &value_scratch_);
    Status status;
    ForEachPieceRange(cursor_.terms(), options_.document_splits,
                      *unigram_cf_, options_.tau,
                      [&](size_t pb, size_t pe) {
                        if (!status.ok()) {
                          return;
                        }
                        status = MapPiece(pb, pe, ctx);
                      });
    return status;
  }

 private:
  Status MapPiece(size_t pb, size_t pe, Context* ctx) {
    if (pe - pb < k_) {
      return Status::OK();
    }
    // Algorithm 2 lines 3-5: k = 1, or both constituent (k-1)-grams
    // frequent. The probes are sub-slices of the input bytes, and window
    // b's trailing (k-1)-gram is window b+1's leading one, so each window
    // costs one dictionary probe, not two — the previous result carries.
    bool lead_ok =
        k_ > 1 ? dict_->Contains(cursor_.Range(pb, pb + k_ - 1)) : true;
    for (size_t b = pb; b + k_ <= pe; ++b) {
      bool trail_ok = true;
      if (k_ > 1) {
        trail_ok = dict_->Contains(cursor_.Range(b + 1, b + k_));
      }
      if (lead_ok && trail_ok) {
        NGRAM_RETURN_NOT_OK(
            ctx->EmitRaw(cursor_.Range(b, b + k_), value_scratch_));
      }
      lead_ok = trail_ok;
    }
    return Status::OK();
  }

  const NgramJobOptions options_;
  const uint32_t k_;
  const std::shared_ptr<const UnigramFrequencies> unigram_cf_;
  const std::shared_ptr<const SequenceSet> dict_;
  FragmentCursor cursor_;
  std::string value_scratch_;
};

}  // namespace

Result<NgramRun> RunAprioriScan(const CorpusContext& ctx,
                                const NgramJobOptions& options) {
  NgramRun run;
  const uint32_t sigma = options.sigma_or_max();

  mr::RawCombineFn combiner;
  if (options.use_combiner &&
      options.frequency_mode == FrequencyMode::kCollection) {
    combiner = mr::SumCombiner();
  }

  std::shared_ptr<const SequenceSet> dict;  // Frequent (k-1)-grams.
  for (uint32_t k = 1; k <= sigma; ++k) {
    mr::JobConfig config =
        MakeBaseJobConfig(options, "apriori-scan-k" + std::to_string(k));

    mr::RecordTable output;
    auto metrics = mr::RunJob<AprioriScanMapper, CountReducer>(
        config, ctx.records,
        [&options, &ctx, k, dict] {
          return std::make_unique<AprioriScanMapper>(options, k,
                                                     ctx.unigram_cf, dict);
        },
        [&options] {
          return std::make_unique<CountReducer>(options.tau,
                                                options.frequency_mode);
        },
        &output, combiner);
    if (!metrics.ok()) {
      return metrics.status();
    }
    mr::JobMetrics job = std::move(metrics).ValueOrDie();
    if (dict != nullptr) {
      job.counters[kDictionaryEntries] = dict->size();
      job.counters[kDictionaryBytes] = dict->MemoryBytes();
    }
    run.metrics.Add(std::move(job));

    if (output.empty()) {
      break;  // No frequent k-grams: no longer n-gram can be frequent.
    }
    const bool last_iteration = (k + 1 > sigma);
    if (!last_iteration) {
      // Build the dictionary for iteration k+1 straight from this
      // iteration's serialized output: the record keys already ARE the
      // encoded k-grams, so inserts are slice copies, not re-encodes.
      SequenceSet::Options dict_options;
      dict_options.memory_budget_bytes = options.reducer_memory_budget_bytes;
      if (!options.work_dir.empty()) {
        dict_options.spill_dir =
            options.work_dir + "/apriori-scan-dict-k" + std::to_string(k);
      } else {
        dict_options.spill_dir = "";
        dict_options.memory_budget_bytes = SIZE_MAX;  // No spill target.
      }
      auto next_dict = std::make_shared<SequenceSet>(dict_options);
      auto reader = output.NewReader();
      while (reader->Next()) {
        NGRAM_RETURN_NOT_OK(next_dict->Insert(reader->key()));
      }
      NGRAM_RETURN_NOT_OK(reader->status());
      dict = std::move(next_dict);
    }
    NGRAM_RETURN_NOT_OK(DrainCounts(output, &run.stats));
    if (last_iteration) {
      break;
    }
  }
  return run;
}

}  // namespace ngram
