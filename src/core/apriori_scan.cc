#include "core/apriori_scan.h"

#include "core/counting.h"
#include "index/sequence_set.h"
#include "util/logging.h"

namespace ngram {

namespace {

/// The k-th scan's mapper: emits k-grams surviving the APRIORI check
/// against the dictionary of frequent (k-1)-grams.
class AprioriScanMapper final
    : public mr::Mapper<uint64_t, Fragment, TermSequence, uint64_t> {
 public:
  AprioriScanMapper(const NgramJobOptions& options, uint32_t k,
                    std::shared_ptr<const UnigramFrequencies> unigram_cf,
                    std::shared_ptr<const SequenceSet> dict)
      : options_(options),
        k_(k),
        unigram_cf_(std::move(unigram_cf)),
        dict_(std::move(dict)) {}

  Status Map(const uint64_t& doc_id, const Fragment& fragment,
             Context* ctx) override {
    const uint64_t value = CountingValue(options_.frequency_mode, doc_id);
    Status status;
    ForEachPiece(fragment, options_.document_splits, *unigram_cf_,
                 options_.tau, [&](const Fragment& piece) {
                   if (!status.ok()) {
                     return;
                   }
                   status = MapPiece(piece.terms, value, ctx);
                 });
    return status;
  }

 private:
  Status MapPiece(const TermSequence& terms, uint64_t value, Context* ctx) {
    if (terms.size() < k_) {
      return Status::OK();
    }
    // Every k-gram window is a contiguous byte range of the piece's
    // encoding: encode once, emit sub-slices.
    encoder_.Encode(terms);
    for (size_t b = 0; b + k_ <= terms.size(); ++b) {
      // Algorithm 2 lines 3-5: k = 1, or both constituent (k-1)-grams
      // frequent.
      if (k_ > 1) {
        if (!dict_->ContainsRange(terms, b, b + k_ - 1, &scratch_) ||
            !dict_->ContainsRange(terms, b + 1, b + k_, &scratch_)) {
          continue;
        }
      }
      NGRAM_RETURN_NOT_OK(
          ctx->EmitEncodedKey(encoder_.Range(b, b + k_), value));
    }
    return Status::OK();
  }

  const NgramJobOptions options_;
  const uint32_t k_;
  const std::shared_ptr<const UnigramFrequencies> unigram_cf_;
  const std::shared_ptr<const SequenceSet> dict_;
  std::string scratch_;
  SequenceRangeEncoder encoder_;
};

}  // namespace

Result<NgramRun> RunAprioriScan(const CorpusContext& ctx,
                                const NgramJobOptions& options) {
  NgramRun run;
  const uint32_t sigma = options.sigma_or_max();

  mr::RawCombineFn combiner;
  if (options.use_combiner &&
      options.frequency_mode == FrequencyMode::kCollection) {
    combiner = mr::SumCombiner();
  }

  std::shared_ptr<const SequenceSet> dict;  // Frequent (k-1)-grams.
  for (uint32_t k = 1; k <= sigma; ++k) {
    mr::JobConfig config =
        MakeBaseJobConfig(options, "apriori-scan-k" + std::to_string(k));

    mr::MemoryTable<TermSequence, uint64_t> output;
    auto metrics = mr::RunJob<AprioriScanMapper, CountReducer>(
        config, ctx.input,
        [&options, &ctx, k, dict] {
          return std::make_unique<AprioriScanMapper>(options, k,
                                                     ctx.unigram_cf, dict);
        },
        [&options] {
          return std::make_unique<CountReducer>(options.tau,
                                                options.frequency_mode);
        },
        &output, combiner);
    if (!metrics.ok()) {
      return metrics.status();
    }
    mr::JobMetrics job = std::move(metrics).ValueOrDie();
    if (dict != nullptr) {
      job.counters[kDictionaryEntries] = dict->size();
      job.counters[kDictionaryBytes] = dict->MemoryBytes();
    }
    run.metrics.Add(std::move(job));

    if (output.empty()) {
      break;  // No frequent k-grams: no longer n-gram can be frequent.
    }
    const bool last_iteration = (k + 1 > sigma);
    if (!last_iteration) {
      // Build the dictionary for iteration k+1 from this iteration's
      // output.
      SequenceSet::Options dict_options;
      dict_options.memory_budget_bytes = options.reducer_memory_budget_bytes;
      if (!options.work_dir.empty()) {
        dict_options.spill_dir =
            options.work_dir + "/apriori-scan-dict-k" + std::to_string(k);
      } else {
        dict_options.spill_dir = "";
        dict_options.memory_budget_bytes = SIZE_MAX;  // No spill target.
      }
      auto next_dict = std::make_shared<SequenceSet>(dict_options);
      std::string encoded;
      for (const auto& [seq, cf] : output.rows) {
        encoded.clear();
        SequenceCodec::Encode(seq, &encoded);
        NGRAM_RETURN_NOT_OK(next_dict->Insert(Slice(encoded)));
      }
      dict = std::move(next_dict);
    }
    for (auto& [seq, cf] : output.rows) {
      run.stats.Add(std::move(seq), cf);
    }
    if (last_iteration) {
      break;
    }
  }
  return run;
}

}  // namespace ngram
