// NgramStatistics: the output of every method — n-grams with their
// collection (or document) frequencies — plus the run's metrics.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "encoding/sequence.h"
#include "mapreduce/metrics.h"
#include "text/vocabulary.h"
#include "util/histogram.h"

namespace ngram {

/// The statistics table: each entry is an n-gram (term-id sequence) with
/// its frequency. Entry order is method-dependent until SortCanonical().
struct NgramStatistics {
  using Entry = std::pair<TermSequence, uint64_t>;
  std::vector<Entry> entries;

  uint64_t size() const { return entries.size(); }
  bool empty() const { return entries.empty(); }

  void Add(TermSequence seq, uint64_t frequency) {
    entries.emplace_back(std::move(seq), frequency);
  }

  /// Sorts entries lexicographically by term-id sequence (canonical order
  /// for equality checks across methods).
  void SortCanonical();

  /// True iff both tables contain the same (n-gram, frequency) multiset.
  /// Both operands are sorted canonically as a side effect.
  bool SameAs(NgramStatistics& other);

  /// Frequency of `seq`, or 0 when absent. Requires canonical order.
  uint64_t FrequencyOf(const TermSequence& seq) const;

  /// Entries whose (seq, frequency) differ between the two tables — for
  /// test diagnostics. Requires both canonically sorted.
  std::vector<std::string> DiffAgainst(const NgramStatistics& other,
                                       size_t max_items = 10) const;

  /// Buckets entries into the paper's Figure 2 histogram: the n-gram s goes
  /// into bucket (floor(log10 |s|), floor(log10 cf(s))).
  Log10Histogram2D OutputCharacteristics() const;

  /// Longest n-gram present.
  uint32_t MaxLength() const;

  /// As a sorted map (tests / small corpora only).
  std::map<TermSequence, uint64_t> ToMap() const;

  /// Renders entries via the vocabulary, sorted by descending frequency,
  /// at most `limit` rows.
  std::string ToString(const Vocabulary& vocab, size_t limit = 50) const;
};

/// A method run: its statistics table plus the metrics of every MapReduce
/// job it launched.
struct NgramRun {
  NgramStatistics stats;
  mr::RunMetrics metrics;
};

}  // namespace ngram
