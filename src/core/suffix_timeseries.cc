#include "core/suffix_timeseries.h"

#include <algorithm>

#include "core/counting.h"
#include "core/rev_lex.h"
#include "core/suffix_stack.h"

namespace ngram {

namespace {

/// (doc id, year) — the paper's "document identifier and its associated
/// timestamp" suffix value.
using DocYear = std::pair<uint64_t, int64_t>;

class TimeSeriesSuffixMapper final
    : public mr::Mapper<uint64_t, Fragment, TermSequence, DocYear> {
 public:
  TimeSeriesSuffixMapper(const NgramJobOptions& options,
                         std::shared_ptr<const UnigramFrequencies> unigram_cf,
                         std::shared_ptr<const std::vector<int32_t>> years)
      : options_(options),
        unigram_cf_(std::move(unigram_cf)),
        years_(std::move(years)) {}

  Status Map(const uint64_t& doc_id, const Fragment& fragment,
             Context* ctx) override {
    const uint64_t sigma = options_.sigma_or_max();
    const int64_t year =
        doc_id < years_->size() ? (*years_)[doc_id] : 0;
    const DocYear value{doc_id, year};
    Status status;
    ForEachPiece(fragment, options_.document_splits, *unigram_cf_,
                 options_.tau, [&](const Fragment& piece) {
                   if (!status.ok()) {
                     return;
                   }
                   const auto& terms = piece.terms;
                   TermSequence suffix;
                   for (size_t b = 0; b < terms.size(); ++b) {
                     const size_t end =
                         std::min<size_t>(terms.size(), b + sigma);
                     suffix.assign(terms.begin() + b, terms.begin() + end);
                     status = ctx->Emit(suffix, value);
                     if (!status.ok()) {
                       return;
                     }
                   }
                 });
    return status;
  }

 private:
  const NgramJobOptions options_;
  const std::shared_ptr<const UnigramFrequencies> unigram_cf_;
  const std::shared_ptr<const std::vector<int32_t>> years_;
};

/// Raw pipeline: (doc id, year) values decode straight off the merge
/// slices; the suffix key decodes once into a reused sequence after the
/// drain (reverse-lex-equal keys are byte-identical).
class TimeSeriesSuffixReducer final
    : public mr::RawReducer<TermSequence, TimeSeries> {
 public:
  explicit TimeSeriesSuffixReducer(const NgramJobOptions& options)
      : options_(options) {}

  Status Setup(Context* ctx) override {
    stack_ = std::make_unique<SuffixStack<TimeSeries>>(
        options_.tau, EmitMode::kAll,
        [ctx](const TermSequence& ngram, const TimeSeries& ts) {
          return ctx->Emit(ngram, ts);
        });
    return Status::OK();
  }

  Status Reduce(mr::GroupValueIterator* group, Context* ctx) override {
    TimeSeries ts;
    DocYear value;
    while (group->NextValue()) {
      if (!Serde<DocYear>::Decode(group->value(), &value)) {
        return Status::Corruption("TimeSeriesSuffixReducer: bad value");
      }
      ts.Add(static_cast<int32_t>(value.second), 1);
    }
    if (!Serde<TermSequence>::Decode(group->key(), &suffix_)) {
      return Status::Corruption("TimeSeriesSuffixReducer: bad suffix key");
    }
    return stack_->Push(suffix_, std::move(ts));
  }

  Status Cleanup(Context* ctx) override { return stack_->Flush(); }

 private:
  const NgramJobOptions options_;
  std::unique_ptr<SuffixStack<TimeSeries>> stack_;
  TermSequence suffix_;  // Reused across groups.
};

}  // namespace

Result<TimeSeriesRun> RunSuffixSigmaTimeSeries(
    const CorpusContext& ctx, const NgramJobOptions& options) {
  mr::JobConfig config = MakeBaseJobConfig(options, "suffix-sigma-ts");
  config.partitioner = FirstTermPartitioner::Instance();
  config.sort_comparator = ReverseLexSequenceComparator::Instance();

  TimeSeriesRun run;
  auto metrics = mr::RunJob<TimeSeriesSuffixMapper, TimeSeriesSuffixReducer>(
      config, ctx.input,
      [&options, &ctx] {
        return std::make_unique<TimeSeriesSuffixMapper>(
            options, ctx.unigram_cf, ctx.doc_years);
      },
      [&options] {
        return std::make_unique<TimeSeriesSuffixReducer>(options);
      },
      &run.series);
  if (!metrics.ok()) {
    return metrics.status();
  }
  run.metrics.Add(std::move(metrics).ValueOrDie());
  return run;
}

}  // namespace ngram
