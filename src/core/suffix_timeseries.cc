#include "core/suffix_timeseries.h"

#include <algorithm>

#include "core/counting.h"
#include "core/rev_lex.h"
#include "core/suffix_stack.h"

namespace ngram {

namespace {

/// (doc id, year) — the paper's "document identifier and its associated
/// timestamp" suffix value.
using DocYear = std::pair<uint64_t, int64_t>;

/// Raw over the serialized input row: suffixes are emitted as sub-slices
/// of the input bytes, and the (doc id, year) value is encoded once per
/// row instead of once per suffix.
class TimeSeriesSuffixMapper final
    : public mr::RawMapper<TermSequence, DocYear> {
 public:
  TimeSeriesSuffixMapper(const NgramJobOptions& options,
                         std::shared_ptr<const UnigramFrequencies> unigram_cf,
                         std::shared_ptr<const std::vector<int32_t>> years)
      : options_(options),
        unigram_cf_(std::move(unigram_cf)),
        years_(std::move(years)) {}

  Status Map(Slice key, Slice value, Context* ctx) override {
    if (!cursor_.Parse(key, value)) {
      return Status::Corruption("TimeSeriesSuffixMapper: bad input row");
    }
    const uint64_t sigma = options_.sigma_or_max();
    const uint64_t doc_id = cursor_.doc_id();
    const int64_t year = doc_id < years_->size() ? (*years_)[doc_id] : 0;
    value_scratch_.clear();
    Serde<DocYear>::Encode(DocYear{doc_id, year}, &value_scratch_);
    Status status;
    ForEachPieceRange(
        cursor_.terms(), options_.document_splits, *unigram_cf_,
        options_.tau, [&](size_t pb, size_t pe) {
          if (!status.ok()) {
            return;
          }
          for (size_t b = pb; b < pe; ++b) {
            const size_t end = std::min<size_t>(pe, b + sigma);
            status = ctx->EmitRaw(cursor_.Range(b, end), value_scratch_);
            if (!status.ok()) {
              return;
            }
          }
        });
    return status;
  }

 private:
  const NgramJobOptions options_;
  const std::shared_ptr<const UnigramFrequencies> unigram_cf_;
  const std::shared_ptr<const std::vector<int32_t>> years_;
  FragmentCursor cursor_;
  std::string value_scratch_;
};

/// Raw pipeline: (doc id, year) values decode straight off the merge
/// slices; the suffix key decodes once into a reused sequence after the
/// drain (reverse-lex-equal keys are byte-identical).
class TimeSeriesSuffixReducer final
    : public mr::RawReducer<TermSequence, TimeSeries> {
 public:
  explicit TimeSeriesSuffixReducer(const NgramJobOptions& options)
      : options_(options) {}

  Status Setup(Context* ctx) override {
    stack_ = std::make_unique<SuffixStack<TimeSeries>>(
        options_.tau, EmitMode::kAll,
        [ctx](const TermSequence& ngram, const TimeSeries& ts) {
          return ctx->Emit(ngram, ts);
        });
    return Status::OK();
  }

  Status Reduce(mr::GroupValueIterator* group, Context* ctx) override {
    TimeSeries ts;
    DocYear value;
    while (group->NextValue()) {
      if (!Serde<DocYear>::Decode(group->value(), &value)) {
        return Status::Corruption("TimeSeriesSuffixReducer: bad value");
      }
      ts.Add(static_cast<int32_t>(value.second), 1);
    }
    if (!Serde<TermSequence>::Decode(group->key(), &suffix_)) {
      return Status::Corruption("TimeSeriesSuffixReducer: bad suffix key");
    }
    return stack_->Push(suffix_, std::move(ts));
  }

  Status Cleanup(Context* ctx) override { return stack_->Flush(); }

 private:
  const NgramJobOptions options_;
  std::unique_ptr<SuffixStack<TimeSeries>> stack_;
  TermSequence suffix_;  // Reused across groups.
};

}  // namespace

Result<TimeSeriesRun> RunSuffixSigmaTimeSeries(
    const CorpusContext& ctx, const NgramJobOptions& options) {
  mr::JobConfig config = MakeBaseJobConfig(options, "suffix-sigma-ts");
  config.partitioner = FirstTermPartitioner::Instance();
  config.sort_comparator = ReverseLexSequenceComparator::Instance();

  TimeSeriesRun run;
  auto metrics = mr::RunJob<TimeSeriesSuffixMapper, TimeSeriesSuffixReducer>(
      config, ctx.records,
      [&options, &ctx] {
        return std::make_unique<TimeSeriesSuffixMapper>(
            options, ctx.unigram_cf, ctx.doc_years);
      },
      [&options] {
        return std::make_unique<TimeSeriesSuffixReducer>(options);
      },
      &run.series);
  if (!metrics.ok()) {
    return metrics.status();
  }
  run.metrics.Add(std::move(metrics).ValueOrDie());
  return run;
}

}  // namespace ngram
