#include "core/suffix_index.h"

#include <algorithm>

#include "core/counting.h"
#include "core/rev_lex.h"
#include "core/suffix_stack.h"

namespace ngram {

namespace {

/// (doc id, document-global position) of one suffix occurrence.
using DocPosition = std::pair<uint64_t, uint64_t>;

/// Posting-list aggregate for the suffix stack: postings sorted by doc id
/// with sorted positions; merging is a two-level sorted union. The tau
/// threshold applies to collection frequency or document frequency
/// depending on the policy parameter.
template <bool kDocFrequency>
struct PostingAggregate {
  PostingList list;
  uint64_t occurrences = 0;

  void MergeFrom(const PostingAggregate& other) {
    PostingList merged;
    merged.postings.reserve(list.postings.size() +
                            other.list.postings.size());
    size_t i = 0, j = 0;
    while (i < list.postings.size() || j < other.list.postings.size()) {
      if (j >= other.list.postings.size() ||
          (i < list.postings.size() &&
           list.postings[i].doc_id < other.list.postings[j].doc_id)) {
        merged.postings.push_back(std::move(list.postings[i++]));
      } else if (i >= list.postings.size() ||
                 other.list.postings[j].doc_id < list.postings[i].doc_id) {
        merged.postings.push_back(other.list.postings[j++]);
      } else {
        Posting combined;
        combined.doc_id = list.postings[i].doc_id;
        std::merge(list.postings[i].positions.begin(),
                   list.postings[i].positions.end(),
                   other.list.postings[j].positions.begin(),
                   other.list.postings[j].positions.end(),
                   std::back_inserter(combined.positions));
        merged.postings.push_back(std::move(combined));
        ++i;
        ++j;
      }
    }
    list = std::move(merged);
    occurrences += other.occurrences;
  }

  uint64_t Total() const {
    return kDocFrequency ? list.DocumentFrequency() : occurrences;
  }
};

class IndexSuffixMapper final
    : public mr::Mapper<uint64_t, Fragment, TermSequence, DocPosition> {
 public:
  IndexSuffixMapper(const NgramJobOptions& options,
                    std::shared_ptr<const UnigramFrequencies> unigram_cf)
      : options_(options), unigram_cf_(std::move(unigram_cf)) {}

  Status Map(const uint64_t& doc_id, const Fragment& fragment,
             Context* ctx) override {
    const uint64_t sigma = options_.sigma_or_max();
    Status status;
    ForEachPiece(fragment, options_.document_splits, *unigram_cf_,
                 options_.tau, [&](const Fragment& piece) {
                   if (!status.ok()) {
                     return;
                   }
                   const auto& terms = piece.terms;
                   TermSequence suffix;
                   for (size_t b = 0; b < terms.size(); ++b) {
                     const size_t end =
                         std::min<size_t>(terms.size(), b + sigma);
                     suffix.assign(terms.begin() + b, terms.begin() + end);
                     status = ctx->Emit(suffix, {doc_id, piece.base + b});
                     if (!status.ok()) {
                       return;
                     }
                   }
                 });
    return status;
  }

 private:
  const NgramJobOptions options_;
  const std::shared_ptr<const UnigramFrequencies> unigram_cf_;
};

class IndexSuffixReducer final
    : public mr::Reducer<TermSequence, DocPosition, TermSequence,
                         PostingList> {
 public:
  explicit IndexSuffixReducer(const NgramJobOptions& options)
      : options_(options) {}

  Status Setup(Context* ctx) override {
    if (options_.frequency_mode == FrequencyMode::kCollection) {
      cf_stack_ = MakeStack<false>(ctx);
    } else {
      df_stack_ = MakeStack<true>(ctx);
    }
    return Status::OK();
  }

  Status Reduce(const TermSequence& suffix, Values* values,
                Context* ctx) override {
    occurrences_.clear();
    DocPosition dp;
    while (values->Next(&dp)) {
      occurrences_.push_back(dp);
    }
    std::sort(occurrences_.begin(), occurrences_.end());
    if (cf_stack_ != nullptr) {
      return cf_stack_->Push(suffix, MakeAggregate<false>());
    }
    return df_stack_->Push(suffix, MakeAggregate<true>());
  }

  Status Cleanup(Context* ctx) override {
    if (cf_stack_ != nullptr) {
      return cf_stack_->Flush();
    }
    return df_stack_->Flush();
  }

 private:
  template <bool kDf>
  std::unique_ptr<SuffixStack<PostingAggregate<kDf>>> MakeStack(
      Context* ctx) {
    return std::make_unique<SuffixStack<PostingAggregate<kDf>>>(
        options_.tau, EmitMode::kAll,
        [ctx](const TermSequence& ngram, const PostingAggregate<kDf>& agg) {
          return ctx->Emit(ngram, agg.list);
        });
  }

  template <bool kDf>
  PostingAggregate<kDf> MakeAggregate() const {
    PostingAggregate<kDf> agg;
    agg.occurrences = occurrences_.size();
    for (const auto& [doc, pos] : occurrences_) {
      if (agg.list.postings.empty() ||
          agg.list.postings.back().doc_id != doc) {
        agg.list.postings.push_back({doc, {static_cast<uint32_t>(pos)}});
      } else {
        agg.list.postings.back().positions.push_back(
            static_cast<uint32_t>(pos));
      }
    }
    return agg;
  }

  const NgramJobOptions options_;
  std::unique_ptr<SuffixStack<PostingAggregate<false>>> cf_stack_;
  std::unique_ptr<SuffixStack<PostingAggregate<true>>> df_stack_;
  std::vector<DocPosition> occurrences_;
};

}  // namespace

Result<SuffixIndexRun> RunSuffixSigmaIndex(const CorpusContext& ctx,
                                           const NgramJobOptions& options) {
  mr::JobConfig config = MakeBaseJobConfig(options, "suffix-sigma-index");
  config.partitioner = FirstTermPartitioner::Instance();
  config.sort_comparator = ReverseLexSequenceComparator::Instance();

  SuffixIndexRun run;
  auto metrics = mr::RunJob<IndexSuffixMapper, IndexSuffixReducer>(
      config, ctx.records,
      [&options, &ctx] {
        return std::make_unique<IndexSuffixMapper>(options, ctx.unigram_cf);
      },
      [&options] { return std::make_unique<IndexSuffixReducer>(options); },
      &run.index);
  if (!metrics.ok()) {
    return metrics.status();
  }
  run.metrics.Add(std::move(metrics).ValueOrDie());
  return run;
}

}  // namespace ngram
