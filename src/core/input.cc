#include "core/input.h"

#include <algorithm>

namespace ngram {

CorpusContext BuildCorpusContext(const Corpus& corpus) {
  CorpusContext ctx;
  uint64_t max_doc_id = 0;
  for (const auto& doc : corpus.docs) {
    max_doc_id = std::max(max_doc_id, doc.id);
  }
  auto years = std::make_shared<std::vector<int32_t>>();
  years->assign(max_doc_id + 1, 0);

  // Rows are serialized straight into the context's RecordTable — every
  // job of every method (and every APRIORI round) maps over it, and no
  // typed copy of the corpus is kept alive.
  Fragment fragment;
  std::string scratch;
  for (const auto& doc : corpus.docs) {
    (*years)[doc.id] = doc.year;
    uint32_t base = 0;
    for (const auto& sentence : doc.sentences) {
      fragment.base = base;
      fragment.terms = sentence;
      ctx.total_term_occurrences += sentence.size();
      // +1 gap so fragments are never position-adjacent (barrier safety
      // for positional joins).
      base += static_cast<uint32_t>(sentence.size()) + 1;
      mr::AppendTypedRow(&ctx.records, doc.id, fragment, &scratch);
    }
  }

  ctx.unigram_cf = std::make_shared<const UnigramFrequencies>(
      ComputeUnigramFrequencies(corpus));
  ctx.doc_years = std::move(years);
  return ctx;
}

void ForEachPiece(const Fragment& fragment, bool document_splits,
                  const UnigramFrequencies& unigram_cf, uint64_t tau,
                  const std::function<void(const Fragment&)>& fn) {
  if (!document_splits || tau <= 1) {
    fn(fragment);  // Hand over the fragment itself: no copy.
    return;
  }
  // Delegate the splitting invariant to ForEachPieceRange so the typed
  // and raw mappers share one definition of what a piece is.
  Fragment piece;
  ForEachPieceRange(fragment.terms, document_splits, unigram_cf, tau,
                    [&](size_t b, size_t e) {
                      piece.base = fragment.base + static_cast<uint32_t>(b);
                      piece.terms.assign(fragment.terms.begin() + b,
                                         fragment.terms.begin() + e);
                      fn(piece);
                    });
}

}  // namespace ngram
