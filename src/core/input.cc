#include "core/input.h"

#include <algorithm>

namespace ngram {

CorpusContext BuildCorpusContext(const Corpus& corpus) {
  CorpusContext ctx;
  uint64_t max_doc_id = 0;
  for (const auto& doc : corpus.docs) {
    max_doc_id = std::max(max_doc_id, doc.id);
  }
  auto years = std::make_shared<std::vector<int32_t>>();
  years->assign(max_doc_id + 1, 0);

  uint64_t num_rows = 0;
  for (const auto& doc : corpus.docs) {
    num_rows += doc.sentences.size();
  }
  ctx.input.rows.reserve(num_rows);

  for (const auto& doc : corpus.docs) {
    (*years)[doc.id] = doc.year;
    uint32_t base = 0;
    for (const auto& sentence : doc.sentences) {
      Fragment fragment;
      fragment.base = base;
      fragment.terms = sentence;
      ctx.total_term_occurrences += sentence.size();
      // +1 gap so fragments are never position-adjacent (barrier safety
      // for positional joins).
      base += static_cast<uint32_t>(sentence.size()) + 1;
      ctx.input.Add(doc.id, std::move(fragment));
    }
  }

  ctx.unigram_cf = std::make_shared<const UnigramFrequencies>(
      ComputeUnigramFrequencies(corpus));
  ctx.doc_years = std::move(years);
  return ctx;
}

void ForEachPiece(const Fragment& fragment, bool document_splits,
                  const UnigramFrequencies& unigram_cf, uint64_t tau,
                  const std::function<void(const Fragment&)>& fn) {
  if (!document_splits || tau <= 1) {
    fn(fragment);
    return;
  }
  Fragment piece;
  bool open = false;
  for (size_t i = 0; i < fragment.terms.size(); ++i) {
    const TermId t = fragment.terms[i];
    const uint64_t cf = t < unigram_cf.size() ? unigram_cf[t] : 0;
    if (cf >= tau) {
      if (!open) {
        piece.base = fragment.base + static_cast<uint32_t>(i);
        piece.terms.clear();
        open = true;
      }
      piece.terms.push_back(t);
    } else if (open) {
      fn(piece);
      open = false;
    }
  }
  if (open) {
    fn(piece);
  }
}

}  // namespace ngram
