#include "core/naive.h"

#include "core/counting.h"

namespace ngram {

namespace {

/// Algorithm 1's mapper: all n-grams up to length sigma, per fragment
/// piece.
class NaiveMapper final
    : public mr::Mapper<uint64_t, Fragment, TermSequence, uint64_t> {
 public:
  NaiveMapper(const NgramJobOptions& options,
              std::shared_ptr<const UnigramFrequencies> unigram_cf)
      : options_(options), unigram_cf_(std::move(unigram_cf)) {}

  Status Map(const uint64_t& doc_id, const Fragment& fragment,
             Context* ctx) override {
    const uint64_t sigma = options_.sigma_or_max();
    const uint64_t value = CountingValue(options_.frequency_mode, doc_id);
    Status status;
    ForEachPiece(fragment, options_.document_splits, *unigram_cf_,
                 options_.tau, [&](const Fragment& piece) {
                   if (!status.ok()) {
                     return;
                   }
                   // Every n-gram window is a contiguous byte range of the
                   // piece's encoding: encode once, emit sub-slices.
                   const auto& terms = piece.terms;
                   encoder_.Encode(terms);
                   for (size_t b = 0; b < terms.size(); ++b) {
                     for (size_t e = b + 1;
                          e <= terms.size() && (e - b) <= sigma; ++e) {
                       status = ctx->EmitEncodedKey(encoder_.Range(b, e),
                                                    value);
                       if (!status.ok()) {
                         return;
                       }
                     }
                   }
                 });
    return status;
  }

 private:
  const NgramJobOptions options_;
  const std::shared_ptr<const UnigramFrequencies> unigram_cf_;
  SequenceRangeEncoder encoder_;
};

}  // namespace

Result<NgramRun> RunNaive(const CorpusContext& ctx,
                          const NgramJobOptions& options) {
  mr::JobConfig config = MakeBaseJobConfig(options, "naive");

  mr::RawCombineFn combiner;
  if (options.use_combiner &&
      options.frequency_mode == FrequencyMode::kCollection) {
    combiner = mr::SumCombiner();
  }

  mr::MemoryTable<TermSequence, uint64_t> output;
  auto metrics = mr::RunJob<NaiveMapper, CountReducer>(
      config, ctx.input,
      [&options, &ctx] {
        return std::make_unique<NaiveMapper>(options, ctx.unigram_cf);
      },
      [&options] {
        return std::make_unique<CountReducer>(options.tau,
                                              options.frequency_mode);
      },
      &output, combiner);
  if (!metrics.ok()) {
    return metrics.status();
  }

  NgramRun run;
  run.metrics.Add(std::move(metrics).ValueOrDie());
  run.stats.entries = std::move(output.rows);
  return run;
}

}  // namespace ngram
