#include "core/naive.h"

#include "core/counting.h"

namespace ngram {

namespace {

/// Algorithm 1's mapper: all n-grams up to length sigma, per fragment
/// piece. Runs raw over the serialized input row: one varint scan recovers
/// term ids and offsets, and every n-gram window is emitted as a sub-slice
/// of the *input* bytes — no Fragment decode, no re-encode.
class NaiveMapper final : public mr::RawMapper<TermSequence, uint64_t> {
 public:
  NaiveMapper(const NgramJobOptions& options,
              std::shared_ptr<const UnigramFrequencies> unigram_cf)
      : options_(options), unigram_cf_(std::move(unigram_cf)) {}

  Status Map(Slice key, Slice value, Context* ctx) override {
    if (!cursor_.Parse(key, value)) {
      return Status::Corruption("NaiveMapper: bad input row");
    }
    const uint64_t sigma = options_.sigma_or_max();
    // The value varint is constant for the whole row; encode it once.
    value_scratch_.clear();
    Serde<uint64_t>::Encode(
        CountingValue(options_.frequency_mode, cursor_.doc_id()),
        &value_scratch_);
    Status status;
    ForEachPieceRange(
        cursor_.terms(), options_.document_splits, *unigram_cf_,
        options_.tau, [&](size_t pb, size_t pe) {
          if (!status.ok()) {
            return;
          }
          for (size_t b = pb; b < pe; ++b) {
            for (size_t e = b + 1; e <= pe && (e - b) <= sigma; ++e) {
              status = ctx->EmitRaw(cursor_.Range(b, e), value_scratch_);
              if (!status.ok()) {
                return;
              }
            }
          }
        });
    return status;
  }

 private:
  const NgramJobOptions options_;
  const std::shared_ptr<const UnigramFrequencies> unigram_cf_;
  FragmentCursor cursor_;
  std::string value_scratch_;
};

}  // namespace

Result<NgramRun> RunNaive(const CorpusContext& ctx,
                          const NgramJobOptions& options) {
  mr::JobConfig config = MakeBaseJobConfig(options, "naive");

  mr::RawCombineFn combiner;
  if (options.use_combiner &&
      options.frequency_mode == FrequencyMode::kCollection) {
    combiner = mr::SumCombiner();
  }

  mr::RecordTable output;
  auto metrics = mr::RunJob<NaiveMapper, CountReducer>(
      config, ctx.records,
      [&options, &ctx] {
        return std::make_unique<NaiveMapper>(options, ctx.unigram_cf);
      },
      [&options] {
        return std::make_unique<CountReducer>(options.tau,
                                              options.frequency_mode);
      },
      &output, combiner);
  if (!metrics.ok()) {
    return metrics.status();
  }

  NgramRun run;
  run.metrics.Add(std::move(metrics).ValueOrDie());
  NGRAM_RETURN_NOT_OK(DrainCounts(output, &run.stats));
  return run;
}

}  // namespace ngram
