// SUFFIX-sigma (Algorithm 4) — the paper's contribution.
//
// One MapReduce job. The mapper emits, per term position, a single
// key-value pair: the suffix starting there, truncated to sigma terms, with
// the document id as value. Suffixes are partitioned by their FIRST term
// only and sorted in REVERSE LEXICOGRAPHIC order, so a reducer sees every
// suffix that can represent n-grams starting with its terms, ordered such
// that an n-gram can be finalized and emitted the moment no unseen suffix
// can still be prefixed by it. Bookkeeping is two stacks (SuffixStack):
// the terms of the current suffix and one lazily-aggregated count per
// prefix. cleanup() flushes the remainder.
//
// Map output: exactly one record per term occurrence — sum over unigrams of
// cf(s) records, each O(sigma) bytes — the method's headline advantage.
#pragma once

#include "core/input.h"
#include "core/options.h"
#include "core/stats.h"
#include "core/suffix_stack.h"
#include "util/result.h"

namespace ngram {

/// Runs SUFFIX-sigma, emitting every frequent n-gram (EmitMode::kAll), or
/// only prefix-maximal/prefix-closed ones when `emit_mode` says so (the
/// first job of the Section VI-A pipeline; use RunSuffixSigmaMaximal /
/// RunSuffixSigmaClosed for the complete pipeline).
Result<NgramRun> RunSuffixSigma(const CorpusContext& ctx,
                                const NgramJobOptions& options,
                                EmitMode emit_mode = EmitMode::kAll);

/// The single SUFFIX-sigma job with its output left serialized — the
/// chaining form: the maximality/closedness post-filter feeds this table
/// straight into its second job without a decode/re-encode round-trip.
/// Appends the job's metrics to `*metrics`.
Result<mr::RecordTable> RunSuffixSigmaJob(const CorpusContext& ctx,
                                          const NgramJobOptions& options,
                                          EmitMode emit_mode,
                                          mr::RunMetrics* metrics);

}  // namespace ngram
