#include "core/suffix_sigma.h"

#include <algorithm>
#include <map>

#include "core/counting.h"
#include "core/rev_lex.h"

namespace ngram {

namespace {

/// Algorithm 4's mapper: one truncated suffix per position. Runs raw over
/// the serialized input row — every truncated suffix is a contiguous byte
/// range of the *input* bytes, so one varint scan replaces the Fragment
/// decode and the per-piece re-encode entirely.
class SuffixMapper final : public mr::RawMapper<TermSequence, uint64_t> {
 public:
  SuffixMapper(const NgramJobOptions& options,
               std::shared_ptr<const UnigramFrequencies> unigram_cf)
      : options_(options), unigram_cf_(std::move(unigram_cf)) {}

  Status Map(Slice key, Slice value, Context* ctx) override {
    if (!cursor_.Parse(key, value)) {
      return Status::Corruption("SuffixMapper: bad input row");
    }
    const uint64_t sigma = options_.sigma_or_max();
    // The doc-id value varint is constant for the row; encode it once.
    value_scratch_.clear();
    Serde<uint64_t>::Encode(cursor_.doc_id(), &value_scratch_);
    Status status;
    ForEachPieceRange(
        cursor_.terms(), options_.document_splits, *unigram_cf_,
        options_.tau, [&](size_t pb, size_t pe) {
          if (!status.ok()) {
            return;
          }
          for (size_t b = pb; b < pe; ++b) {
            const size_t end = std::min<size_t>(pe, b + sigma);
            status = ctx->EmitRaw(cursor_.Range(b, end), value_scratch_);
            if (!status.ok()) {
              return;
            }
          }
        });
    return status;
  }

 private:
  const NgramJobOptions options_;
  const std::shared_ptr<const UnigramFrequencies> unigram_cf_;
  FragmentCursor cursor_;
  std::string value_scratch_;
};

/// Algorithm 4's reducer: feeds the two-stack automaton; Cleanup() is the
/// paper's cleanup() -> reduce(empty) flush. Tracks the peak number of
/// simultaneously tracked n-grams (= max stack depth <= sigma).
///
/// Raw pipeline: in collection mode the group cardinality |l| is taken
/// straight off the merge stream (Count() never touches value bytes), and
/// the suffix key is decoded once into a reused sequence — no per-group
/// key copy. Decoding after the drain is sound because reverse-lex-equal
/// keys are byte-identical.
class SuffixReducer final : public mr::RawReducer<TermSequence, uint64_t> {
 public:
  SuffixReducer(const NgramJobOptions& options, EmitMode emit_mode)
      : options_(options), emit_mode_(emit_mode) {}

  Status Setup(Context* ctx) override {
    if (options_.frequency_mode == FrequencyMode::kCollection) {
      count_stack_ = std::make_unique<SuffixStack<CountAggregate>>(
          options_.tau, emit_mode_,
          [ctx](const TermSequence& ngram, const CountAggregate& agg) {
            return ctx->Emit(ngram, agg.count);
          });
    } else {
      doc_stack_ = std::make_unique<SuffixStack<DocSetAggregate>>(
          options_.tau, emit_mode_,
          [ctx](const TermSequence& ngram, const DocSetAggregate& agg) {
            return ctx->Emit(ngram, agg.Total());
          });
    }
    return Status::OK();
  }

  Status Reduce(mr::GroupValueIterator* group, Context* ctx) override {
    Status st;
    if (count_stack_ != nullptr) {
      CountAggregate agg;
      agg.count = group->Count();  // |l| without deserializing values.
      if (!Serde<TermSequence>::Decode(group->key(), &suffix_)) {
        return Status::Corruption("SuffixReducer: bad suffix key");
      }
      st = count_stack_->Push(suffix_, std::move(agg));
      peak_entries_ = std::max(peak_entries_,
                               static_cast<uint64_t>(count_stack_->depth()));
    } else {
      DocSetAggregate agg;
      while (group->NextValue()) {
        uint64_t did = 0;
        if (!Serde<uint64_t>::Decode(group->value(), &did)) {
          return Status::Corruption("SuffixReducer: bad doc-id value");
        }
        agg.docs.push_back(did);
      }
      std::sort(agg.docs.begin(), agg.docs.end());
      agg.docs.erase(std::unique(agg.docs.begin(), agg.docs.end()),
                     agg.docs.end());
      if (!Serde<TermSequence>::Decode(group->key(), &suffix_)) {
        return Status::Corruption("SuffixReducer: bad suffix key");
      }
      st = doc_stack_->Push(suffix_, std::move(agg));
      peak_entries_ = std::max(peak_entries_,
                               static_cast<uint64_t>(doc_stack_->depth()));
    }
    return st;
  }

  Status Cleanup(Context* ctx) override {
    ctx->counters()->UpdateSharedMax(mr::kBookkeepingPeakEntries,
                                     peak_entries_);
    if (count_stack_ != nullptr) {
      return count_stack_->Flush();
    }
    return doc_stack_->Flush();
  }

 private:
  const NgramJobOptions options_;
  const EmitMode emit_mode_;
  std::unique_ptr<SuffixStack<CountAggregate>> count_stack_;
  std::unique_ptr<SuffixStack<DocSetAggregate>> doc_stack_;
  TermSequence suffix_;  // Reused across groups.
  uint64_t peak_entries_ = 0;
};

/// The Section IV strawman: aggregate every prefix of every suffix in one
/// big in-memory map; nothing can be emitted before cleanup(), and the
/// bookkeeping grows with the number of distinct n-grams on the reducer.
class HashAggregationSuffixReducer final
    : public mr::RawReducer<TermSequence, uint64_t> {
 public:
  explicit HashAggregationSuffixReducer(const NgramJobOptions& options)
      : options_(options) {}

  Status Reduce(mr::GroupValueIterator* group, Context* ctx) override {
    const uint64_t count = group->Count();
    if (!Serde<TermSequence>::Decode(group->key(), &suffix_)) {
      return Status::Corruption("HashAggregationSuffixReducer: bad key");
    }
    TermSequence prefix;
    prefix.reserve(suffix_.size());
    for (TermId t : suffix_) {
      prefix.push_back(t);
      counts_[prefix] += count;
    }
    return Status::OK();
  }

  Status Cleanup(Context* ctx) override {
    ctx->counters()->UpdateSharedMax(mr::kBookkeepingPeakEntries,
                                     counts_.size());
    for (const auto& [ngram, cf] : counts_) {
      if (cf >= options_.tau) {
        NGRAM_RETURN_NOT_OK(ctx->Emit(ngram, cf));
      }
    }
    return Status::OK();
  }

 private:
  const NgramJobOptions options_;
  std::map<TermSequence, uint64_t> counts_;
  TermSequence suffix_;  // Reused across groups.
};

}  // namespace

Result<mr::RecordTable> RunSuffixSigmaJob(const CorpusContext& ctx,
                                          const NgramJobOptions& options,
                                          EmitMode emit_mode,
                                          mr::RunMetrics* metrics) {
  mr::JobConfig config = MakeBaseJobConfig(options, "suffix-sigma");
  config.partitioner = FirstTermPartitioner::Instance();
  config.sort_comparator = ReverseLexSequenceComparator::Instance();

  mr::RecordTable output;
  auto run_job = [&]() -> Result<mr::JobMetrics> {
    if (options.suffix_aggregation == SuffixAggregation::kHashMap) {
      if (options.frequency_mode != FrequencyMode::kCollection) {
        return Status::InvalidArgument(
            "hashmap suffix aggregation supports collection frequencies "
            "only");
      }
      if (emit_mode != EmitMode::kAll) {
        return Status::InvalidArgument(
            "maximality/closedness require stack aggregation");
      }
      return mr::RunJob<SuffixMapper, HashAggregationSuffixReducer>(
          config, ctx.records,
          [&options, &ctx] {
            return std::make_unique<SuffixMapper>(options, ctx.unigram_cf);
          },
          [&options] {
            return std::make_unique<HashAggregationSuffixReducer>(options);
          },
          &output);
    }
    return mr::RunJob<SuffixMapper, SuffixReducer>(
        config, ctx.records,
        [&options, &ctx] {
          return std::make_unique<SuffixMapper>(options, ctx.unigram_cf);
        },
        [&options, emit_mode] {
          return std::make_unique<SuffixReducer>(options, emit_mode);
        },
        &output);
  };
  auto job_metrics = run_job();
  if (!job_metrics.ok()) {
    return job_metrics.status();
  }
  metrics->Add(std::move(job_metrics).ValueOrDie());
  return output;
}

Result<NgramRun> RunSuffixSigma(const CorpusContext& ctx,
                                const NgramJobOptions& options,
                                EmitMode emit_mode) {
  NgramRun run;
  auto output = RunSuffixSigmaJob(ctx, options, emit_mode, &run.metrics);
  if (!output.ok()) {
    return output.status();
  }
  NGRAM_RETURN_NOT_OK(DrainCounts(*output, &run.stats));
  return run;
}

}  // namespace ngram
