// Options controlling an n-gram statistics run: the paper's two problem
// parameters (tau, sigma), the method, and the runtime knobs.
#pragma once

#include <cstdint>
#include <string>

namespace ngram::mr {
class IoEnv;
}

namespace ngram {

/// The four methods evaluated in the paper (Sections III and IV).
enum class Method {
  kNaive,         // Algorithm 1: word-count over all n-grams.
  kAprioriScan,   // Algorithm 2: repeated scans + dictionary pruning.
  kAprioriIndex,  // Algorithm 3: positional index + posting-list joins.
  kSuffixSigma,   // Algorithm 4: suffix sorting & aggregation (this paper).
};

const char* MethodName(Method method);

/// How SUFFIX-sigma's reducer aggregates prefix frequencies.
///
/// kStacks is the paper's contribution: two stacks, lazy aggregation,
/// early emission, bookkeeping bounded by the suffix length. kHashMap is
/// the strawman Section IV argues against ("enumerate all prefixes of a
/// received suffix and aggregate their collection frequencies in main
/// memory (e.g., using a hashmap)"): nothing can be emitted early and the
/// bookkeeping grows with the number of distinct n-grams — kept here for
/// the ablation benchmark (see BOOKKEEPING_PEAK_ENTRIES).
enum class SuffixAggregation {
  kStacks,
  kHashMap,
};

/// What the frequencies count (Section II-A): collection frequency
/// (occurrences; the paper's default) or document frequency (documents
/// containing the n-gram; "all methods can easily be modified").
enum class FrequencyMode {
  kCollection,
  kDocument,
};

struct NgramJobOptions {
  /// Minimum collection frequency: only n-grams occurring >= tau times are
  /// reported.
  uint64_t tau = 1;

  /// Maximum n-gram length; 0 means unbounded (the paper's sigma = inf).
  uint32_t sigma = 5;

  Method method = Method::kSuffixSigma;
  FrequencyMode frequency_mode = FrequencyMode::kCollection;

  /// Section V "Document Splits": split fragments at terms with unigram
  /// cf < tau before enumerating n-grams. Benefits all methods.
  bool document_splits = true;

  /// Section V local aggregation: run a combiner in NAIVE / APRIORI-SCAN.
  /// (SUFFIX-sigma keeps doc-id values, as in the paper, and APRIORI-INDEX
  /// aggregates in its mapper already.)
  bool use_combiner = true;

  /// APRIORI-INDEX phase boundary K: lengths <= K are indexed by scanning,
  /// longer ones by posting joins. The paper calibrated K = 4.
  uint32_t apriori_index_k = 4;

  /// SUFFIX-sigma reducer bookkeeping (kStacks = the paper's design;
  /// kHashMap = the Section IV strawman, collection-frequency mode only).
  SuffixAggregation suffix_aggregation = SuffixAggregation::kStacks;

  /// Task fault tolerance: maximum attempts per map/reduce task. Also
  /// bounds how often a map task is re-executed when a reducer finds its
  /// persisted run corrupt (fetch-failure recovery).
  uint32_t max_task_attempts = 1;

  /// Milliseconds slept before retrying a failed task attempt (linear in
  /// the attempt number). 0 retries immediately.
  double task_retry_backoff_ms = 0.0;

  /// I/O environment for every run file and job boundary (not owned;
  /// nullptr = the stdio default). Chaos tooling passes a FaultEnv here
  /// (mapreduce/io_env.h) to exercise fault recovery end to end.
  mr::IoEnv* io_env = nullptr;

  // ------------------------------------------------- MapReduce runtime --
  uint32_t num_reducers = 8;
  uint32_t map_slots = 4;
  uint32_t reduce_slots = 4;
  uint32_t num_map_tasks = 0;  // 0 = auto.
  size_t sort_buffer_bytes = 64ULL << 20;

  /// Maximum merge fan-in anywhere in the shuffle (Hadoop's
  /// `io.sort.factor`): spill-heavy tasks merge runs in bounded passes
  /// instead of opening every run at once. 0 = unbounded.
  uint32_t merge_factor = 16;

  /// Background eager-merge workers that overlap reduce-side intermediate
  /// merge passes with map execution (the early shuffle,
  /// mapreduce/shuffle_service.h). 0 = off. Output is byte-identical on
  /// or off; ignored when merge_factor == 0.
  uint32_t shuffle_slots = 0;

  /// Persist shuffle runs (spills, merge outputs) in the prefix-compressed
  /// block format with per-block CRC-32s verified as runs are read back
  /// (see mapreduce/runfile.h). Sorted runs share long key prefixes, so
  /// spill-heavy methods write far fewer intermediate bytes. Off = raw
  /// framed records. Output is byte-identical either way.
  bool compress_runs = true;

  /// CRC-32 every *raw-format* spill run and verify it before it is read
  /// back (end-to-end shuffle integrity with compress_runs off; costs one
  /// table lookup per byte). Compressed runs are always CRC-protected.
  bool checksum_spills = false;

  /// Fixed per-job overhead (ms) modelling Hadoop job launch/teardown; the
  /// "administrative fix cost" that penalizes multi-job methods.
  double job_overhead_ms = 0.0;

  /// Fetch shuffle (mapreduce/config.h; docs/architecture.md section 10):
  /// pull every map output through a byte-stream transport into local
  /// clone run files and plan the reduce side only over the clones.
  /// Output is byte-identical on or off.
  bool fetch_shuffle = false;

  /// Loopback fetch fabric: false = deterministic in-process pipes (the
  /// default), true = Unix-domain sockets. Ignored when
  /// shuffle_server_address is set (always sockets).
  bool fetch_over_sockets = false;

  /// Non-empty: dial an external `ngram_tool serve-shuffle` server at
  /// this Unix-socket path instead of starting a loopback server.
  std::string shuffle_server_address;

  /// Memory budget for reducer-side buffered state (APRIORI-INDEX posting
  /// buffers, APRIORI-SCAN dictionary) before migrating to the disk KV
  /// store.
  size_t reducer_memory_budget_bytes = 256ULL << 20;

  /// Spill directory (shuffle runs, KV stores). Empty = private temp dir.
  std::string work_dir;

  uint32_t sigma_or_max() const {
    return sigma == 0 ? UINT32_MAX : sigma;
  }
};

}  // namespace ngram
