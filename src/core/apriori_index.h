// APRIORI-INDEX (Algorithm 3): incrementally builds a positional inverted
// index of frequent n-grams.
//
// Phase 1 (k <= K): one job per k scans the input; Mapper #1 aggregates
// per-document positions locally and emits one (k-gram, posting) pair per
// document, Reducer #1 assembles posting lists and keeps frequent k-grams.
//
// Phase 2 (k > K): one job per k over the previous iteration's output.
// Mapper #2 emits every frequent (k-1)-gram twice — keyed by its prefix
// (tagged r-seq) and by its suffix (tagged l-seq) — each carrying its
// posting list. Reducer #2 joins every compatible (l-seq m, r-seq n) pair
// positionally to form the k-gram m || last(n). Buffered posting lists
// migrate to the disk KV store past the reducer memory budget (Section V).
//
// Besides the statistics, the run yields the positional index itself.
#pragma once

#include "core/input.h"
#include "core/options.h"
#include "core/stats.h"
#include "index/posting.h"
#include "mapreduce/dataset.h"
#include "util/result.h"

namespace ngram {

/// The inverted index produced as a by-product: frequent n-gram ->
/// positional posting list ("can be used to quickly determine the locations
/// of a specific frequent n-gram", Section III-B).
using PositionalIndex = mr::MemoryTable<TermSequence, PostingList>;

struct AprioriIndexResult {
  NgramRun run;
  PositionalIndex index;
};

Result<AprioriIndexResult> RunAprioriIndexWithIndex(
    const CorpusContext& ctx, const NgramJobOptions& options);

/// Statistics-only entry point (symmetric with the other methods).
Result<NgramRun> RunAprioriIndex(const CorpusContext& ctx,
                                 const NgramJobOptions& options);

}  // namespace ngram
