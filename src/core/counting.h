// Shared mapper/reducer pieces for the counting-style methods (NAIVE and
// APRIORI-SCAN): values are either occurrence counts (collection-frequency
// mode; combinable) or document ids (document-frequency mode).
#pragma once

#include <memory>
#include <unordered_set>

#include "core/input.h"
#include "core/options.h"
#include "core/stats.h"
#include "mapreduce/job.h"

namespace ngram {

/// Raw reducer for (n-gram, value) pairs. In collection mode, values are
/// partial counts and are summed (Algorithm 1's |l| generalized to combined
/// counts); in document mode, values are doc ids and distinct ones are
/// counted. Emits (n-gram, frequency) when frequency >= tau.
///
/// Runs on the raw grouped pipeline end to end: values are decoded
/// straight off the merge stream's slices, and n-gram keys are never
/// decoded at all — groups that pass the threshold re-emit their key bytes
/// verbatim through EmitRaw (sound because both comparators used here,
/// bytewise and reverse-lex, make grouping-equal keys byte-identical, and
/// group->key() stays valid across the drain). Infrequent n-grams (the
/// vast majority under a selective tau) are counted and dropped without a
/// single key decode or copy.
class CountReducer final : public mr::RawReducer<TermSequence, uint64_t> {
 public:
  CountReducer(uint64_t tau, FrequencyMode mode) : tau_(tau), mode_(mode) {}

  Status Reduce(mr::GroupValueIterator* group, Context* ctx) override {
    uint64_t frequency = 0;
    if (mode_ == FrequencyMode::kCollection) {
      while (group->NextValue()) {
        uint64_t v = 0;
        if (!Serde<uint64_t>::Decode(group->value(), &v)) {
          return Status::Corruption("CountReducer: bad count value");
        }
        frequency += v;
      }
    } else {
      distinct_.clear();
      while (group->NextValue()) {
        uint64_t did = 0;
        if (!Serde<uint64_t>::Decode(group->value(), &did)) {
          return Status::Corruption("CountReducer: bad doc-id value");
        }
        distinct_.insert(did);
      }
      frequency = distinct_.size();
    }
    if (frequency >= tau_) {
      // Serde<uint64_t> wire form is a varint; encode into a stack buffer.
      char buf[kMaxVarint64Bytes];
      char* end = EncodeVarint64To(buf, frequency);
      return ctx->EmitRaw(group->key(),
                          Slice(buf, static_cast<size_t>(end - buf)));
    }
    return Status::OK();
  }

 private:
  const uint64_t tau_;
  const FrequencyMode mode_;
  std::unordered_set<uint64_t> distinct_;  // Reused across groups.
};

/// Decodes a serialized (n-gram, frequency) job output into the run's
/// statistics table — the single typed decode at the end of a chained
/// pipeline.
inline Status DrainCounts(const mr::RecordTable& table,
                          NgramStatistics* stats) {
  stats->entries.reserve(stats->entries.size() + table.num_records());
  auto reader = table.NewReader();
  while (reader->Next()) {
    TermSequence seq;
    uint64_t frequency = 0;
    if (!Serde<TermSequence>::Decode(reader->key(), &seq) ||
        !Serde<uint64_t>::Decode(reader->value(), &frequency)) {
      return Status::Corruption("DrainCounts: bad (n-gram, count) row");
    }
    stats->Add(std::move(seq), frequency);
  }
  return reader->status();
}

/// Value a counting mapper emits for one n-gram occurrence: a unit count in
/// collection mode (so the SumCombiner can pre-aggregate), the document id
/// in document mode.
inline uint64_t CountingValue(FrequencyMode mode, uint64_t doc_id) {
  return mode == FrequencyMode::kCollection ? 1 : doc_id;
}

/// Base MapReduce job settings derived from the run options.
inline mr::JobConfig MakeBaseJobConfig(const NgramJobOptions& options,
                                       const std::string& name) {
  mr::JobConfig config;
  config.name = name;
  config.num_reducers = options.num_reducers;
  config.map_slots = options.map_slots;
  config.reduce_slots = options.reduce_slots;
  config.num_map_tasks = options.num_map_tasks;
  config.sort_buffer_bytes = options.sort_buffer_bytes;
  config.merge_factor = options.merge_factor;
  config.shuffle_slots = options.shuffle_slots;
  config.compress_runs = options.compress_runs;
  config.checksum_spills = options.checksum_spills;
  config.job_overhead_ms = options.job_overhead_ms;
  config.work_dir = options.work_dir;
  config.max_task_attempts = options.max_task_attempts;
  config.task_retry_backoff_ms = options.task_retry_backoff_ms;
  config.io_env = options.io_env;
  config.fetch_shuffle = options.fetch_shuffle;
  config.shuffle_transport = options.fetch_over_sockets
                                 ? mr::ShuffleTransport::kUnixSocket
                                 : mr::ShuffleTransport::kInProc;
  config.shuffle_server_address = options.shuffle_server_address;
  return config;
}

}  // namespace ngram
