// n-gram time series via SUFFIX-sigma (Section VI-B): the mapper emits
// every suffix with (doc id, publication year); the reducer replaces the
// counts stack with a stack of lazily-merged time series. The result maps
// every frequent n-gram to its yearly occurrence counts — the culturomics
// aggregation — while still transferring document metadata only once per
// suffix rather than once per contained n-gram (the stated advantage over
// extending NAIVE).
#pragma once

#include "core/input.h"
#include "core/options.h"
#include "core/timeseries.h"
#include "mapreduce/dataset.h"
#include "mapreduce/metrics.h"
#include "util/result.h"

namespace ngram {

struct TimeSeriesRun {
  mr::MemoryTable<TermSequence, TimeSeries> series;
  mr::RunMetrics metrics;
};

/// Computes the time series of every n-gram with |s| <= sigma and total
/// cf >= tau. Documents without a year (year == 0) are bucketed at year 0.
Result<TimeSeriesRun> RunSuffixSigmaTimeSeries(const CorpusContext& ctx,
                                               const NgramJobOptions& options);

}  // namespace ngram
