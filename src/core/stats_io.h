// Persistence for n-gram statistics tables: a compact binary format for
// programmatic reuse, and the "Google n-gram corpus" style TSV
// (ngram<TAB>count) for interchange with NLP toolchains.
#pragma once

#include <string>

#include "core/stats.h"
#include "mapreduce/io_env.h"
#include "text/vocabulary.h"
#include "util/status.h"

namespace ngram {

/// Writes `stats` as "term term term<TAB>frequency" lines, decoding term
/// ids through `vocab` (pass nullptr to write raw term ids). All byte I/O
/// goes through `env` (nullptr means IoEnv::Default()), so statistics
/// persistence is fault-injectable like every other persisted byte path.
Status WriteStatsTsv(const NgramStatistics& stats, const Vocabulary* vocab,
                     const std::string& path, mr::IoEnv* env = nullptr);

/// Writes `stats` in the binary format (magic "NGS1", varbyte entries).
Status WriteStatsBinary(const NgramStatistics& stats, const std::string& path,
                        mr::IoEnv* env = nullptr);

/// Reads a binary statistics file written by WriteStatsBinary.
Status ReadStatsBinary(const std::string& path, NgramStatistics* stats,
                       mr::IoEnv* env = nullptr);

}  // namespace ngram
