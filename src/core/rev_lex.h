// SUFFIX-sigma's two Hadoop customizations (Algorithm 4):
//
//  - the reverse lexicographic order over term sequences,
//        r < s  <=>  (|r| > |s| and s is a prefix of r)  or
//                    exists i: r[i] > s[i] and r[j] = s[j] for j < i,
//    implemented as a raw comparator that walks the two varbyte encodings
//    in lockstep without allocating;
//
//  - the first-term partitioner, which routes every suffix to the reducer
//    responsible for its first term, so one reducer sees all suffixes that
//    can represent n-grams starting with that term.
#pragma once

#include <cstring>

#include "encoding/sequence.h"
#include "mapreduce/comparator.h"
#include "mapreduce/partitioner.h"

namespace ngram {

class ReverseLexSequenceComparator final : public mr::RawComparator {
 public:
  int Compare(Slice a, Slice b) const override {
    // Byte-level fast path: varbyte encodings of equal term prefixes are
    // byte-identical, so skip the shared byte prefix with word-wide
    // compares and only decode terms from the first divergence. A full
    // byte-prefix match means one sequence is a term-prefix of the other
    // (the shorter encoding ends on a varint boundary), which the
    // reverse-lexicographic order resolves on length alone.
    const size_t min_len = a.size() < b.size() ? a.size() : b.size();
    const size_t i = CommonPrefixLength(a.udata(), b.udata(), min_len);
    if (i == min_len) {
      if (a.size() == b.size()) {
        return 0;
      }
      // The longer sequence (of which the other is a prefix) orders first.
      return a.size() > b.size() ? -1 : +1;
    }
    // Back up to the start of the varint containing the divergence: in
    // LEB128 every byte of a term except the last has the high bit set,
    // and the bytes before `i` are identical in both encodings.
    size_t j = i;
    while (j > 0 && (a.udata()[j - 1] & 0x80) != 0) {
      --j;
    }
    return CompareDecoded(Slice(a.data() + j, a.size() - j),
                          Slice(b.data() + j, b.size() - j));
  }

  /// First two term ids packed big-endian and bit-complemented: the
  /// complement turns the descending term order into the contract's
  /// ascending unsigned prefix order. A missing second (or first) term
  /// packs as 0 — the reserved-invalid id — so a one-term sequence gets a
  /// larger pack-complement than any two-term extension of it, matching
  /// longer-orders-first on prefix ties.
  uint64_t SortPrefix(Slice key) const override {
    SequenceReader reader(key);
    TermId first = 0, second = 0;
    if (reader.Next(&first)) {
      reader.Next(&second);
    }
    return ~((static_cast<uint64_t>(first) << 32) |
             static_cast<uint64_t>(second));
  }

  const char* Name() const override { return "reverse-lex-sequence"; }

  static const ReverseLexSequenceComparator* Instance() {
    static const ReverseLexSequenceComparator kInstance;
    return &kInstance;
  }

 private:
  /// Length of the common prefix of `a` and `b`, scanning 8 bytes at a
  /// time (unaligned loads via memcpy, first difference via the XOR).
  static size_t CommonPrefixLength(const uint8_t* a, const uint8_t* b,
                                   size_t n) {
    size_t i = 0;
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
    // On little-endian the lowest differing byte of the XOR is the first
    // differing byte of the streams.
    while (i + 8 <= n) {
      uint64_t wa, wb;
      memcpy(&wa, a + i, 8);
      memcpy(&wb, b + i, 8);
      if (wa != wb) {
        return i + static_cast<size_t>(__builtin_ctzll(wa ^ wb)) / 8;
      }
      i += 8;
    }
#endif
    while (i < n && a[i] == b[i]) {
      ++i;
    }
    return i;
  }

  /// The original lockstep term walk, applied from the first divergence.
  static int CompareDecoded(Slice a, Slice b) {
    SequenceReader ra(a);
    SequenceReader rb(b);
    for (;;) {
      TermId ta = 0, tb = 0;
      const bool ha = ra.Next(&ta);
      const bool hb = rb.Next(&tb);
      if (ha && hb) {
        if (ta != tb) {
          // Larger term id first (descending), per the paper's comparator.
          return ta > tb ? -1 : +1;
        }
      } else if (ha) {
        return -1;  // a strictly longer, b a prefix of a: a orders first.
      } else if (hb) {
        return +1;
      } else {
        return 0;
      }
    }
  }
};

/// Partitions an encoded sequence by its first term only (Algorithm 4's
/// partition() = hashcode(s[0]) mod R).
class FirstTermPartitioner final : public mr::Partitioner {
 public:
  uint32_t Partition(Slice key, uint32_t num_partitions) const override {
    TermId first = 0;
    SequenceReader reader(key);
    reader.Next(&first);
    // SplitMix64 finalizer as the "hashcode".
    uint64_t z = first + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z ^= z >> 31;
    return static_cast<uint32_t>(z % num_partitions);
  }

  const char* Name() const override { return "first-term"; }

  static const FirstTermPartitioner* Instance() {
    static const FirstTermPartitioner kInstance;
    return &kInstance;
  }
};

}  // namespace ngram
