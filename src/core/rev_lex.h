// SUFFIX-sigma's two Hadoop customizations (Algorithm 4):
//
//  - the reverse lexicographic order over term sequences,
//        r < s  <=>  (|r| > |s| and s is a prefix of r)  or
//                    exists i: r[i] > s[i] and r[j] = s[j] for j < i,
//    implemented as a raw comparator that walks the two varbyte encodings
//    in lockstep without allocating;
//
//  - the first-term partitioner, which routes every suffix to the reducer
//    responsible for its first term, so one reducer sees all suffixes that
//    can represent n-grams starting with that term.
#pragma once

#include "encoding/sequence.h"
#include "mapreduce/comparator.h"
#include "mapreduce/partitioner.h"

namespace ngram {

class ReverseLexSequenceComparator final : public mr::RawComparator {
 public:
  int Compare(Slice a, Slice b) const override {
    SequenceReader ra(a);
    SequenceReader rb(b);
    for (;;) {
      TermId ta = 0, tb = 0;
      const bool ha = ra.Next(&ta);
      const bool hb = rb.Next(&tb);
      if (ha && hb) {
        if (ta != tb) {
          // Larger term id first (descending), per the paper's comparator.
          return ta > tb ? -1 : +1;
        }
      } else if (ha) {
        return -1;  // a strictly longer, b a prefix of a: a orders first.
      } else if (hb) {
        return +1;
      } else {
        return 0;
      }
    }
  }

  const char* Name() const override { return "reverse-lex-sequence"; }

  static const ReverseLexSequenceComparator* Instance() {
    static const ReverseLexSequenceComparator kInstance;
    return &kInstance;
  }
};

/// Partitions an encoded sequence by its first term only (Algorithm 4's
/// partition() = hashcode(s[0]) mod R).
class FirstTermPartitioner final : public mr::Partitioner {
 public:
  uint32_t Partition(Slice key, uint32_t num_partitions) const override {
    TermId first = 0;
    SequenceReader reader(key);
    reader.Next(&first);
    // SplitMix64 finalizer as the "hashcode".
    uint64_t z = first + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z ^= z >> 31;
    return static_cast<uint32_t>(z % num_partitions);
  }

  const char* Name() const override { return "first-term"; }

  static const FirstTermPartitioner* Instance() {
    static const FirstTermPartitioner kInstance;
    return &kInstance;
  }
};

}  // namespace ngram
