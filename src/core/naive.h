// NAIVE (Algorithm 1): word counting extended to variable-length n-grams.
// The mapper emits every n-gram of length <= sigma of every fragment; the
// reducer counts and thresholds. One job; the map output volume is
// sum over n-grams of cf(s) records — the method's known weakness.
#pragma once

#include "core/input.h"
#include "core/options.h"
#include "core/stats.h"
#include "util/result.h"

namespace ngram {

/// Runs NAIVE over the corpus context. Honors tau/sigma, frequency mode,
/// document splitting, and the combiner toggle from `options`.
Result<NgramRun> RunNaive(const CorpusContext& ctx,
                          const NgramJobOptions& options);

}  // namespace ngram
