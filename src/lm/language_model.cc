#include "lm/language_model.h"

#include <algorithm>
#include <cmath>

namespace ngram::lm {

uint64_t StatisticsSource::FrequencyOf(const TermSequence& seq,
                                       Status* status) const {
  (void)status;  // In-memory lookups cannot fail.
  return stats_->FrequencyOf(seq);
}

Status StatisticsSource::ForEachContinuation(
    const TermSequence& prefix,
    const std::function<void(TermId, uint64_t)>& fn) const {
  // Entries extending `prefix` are contiguous in canonical order; locate
  // the range by binary search and keep only one-term extensions.
  auto it = std::lower_bound(
      stats_->entries.begin(), stats_->entries.end(), prefix,
      [](const NgramStatistics::Entry& e, const TermSequence& p) {
        return e.first < p;
      });
  for (; it != stats_->entries.end(); ++it) {
    const TermSequence& seq = it->first;
    if (seq.size() < prefix.size() ||
        !std::equal(prefix.begin(), prefix.end(), seq.begin())) {
      break;
    }
    if (seq.size() == prefix.size() + 1) {
      fn(seq.back(), it->second);
    }
  }
  return Status::OK();
}

Result<StupidBackoffModel> StupidBackoffModel::Build(
    NgramStatistics stats, LanguageModelOptions options,
    uint64_t total_unigram_count) {
  if (options.order == 0) {
    return Status::InvalidArgument("order must be >= 1");
  }
  if (options.backoff_alpha <= 0.0 || options.backoff_alpha > 1.0) {
    return Status::InvalidArgument("backoff_alpha must be in (0, 1]");
  }
  stats.SortCanonical();
  uint64_t total = total_unigram_count;
  if (total == 0) {
    for (const auto& [seq, cf] : stats.entries) {
      if (seq.size() == 1) {
        total += cf;
      }
    }
  }
  if (total == 0) {
    return Status::InvalidArgument(
        "statistics contain no unigrams and no total was provided");
  }
  auto owned = std::make_shared<const NgramStatistics>(std::move(stats));
  return StupidBackoffModel(std::make_shared<StatisticsSource>(owned),
                            options, total);
}

Result<StupidBackoffModel> StupidBackoffModel::BuildFromSource(
    std::shared_ptr<const FrequencySource> source,
    LanguageModelOptions options, uint64_t total_unigram_count) {
  if (source == nullptr) {
    return Status::InvalidArgument("source must not be null");
  }
  if (options.order == 0) {
    return Status::InvalidArgument("order must be >= 1");
  }
  if (options.backoff_alpha <= 0.0 || options.backoff_alpha > 1.0) {
    return Status::InvalidArgument("backoff_alpha must be in (0, 1]");
  }
  if (total_unigram_count == 0) {
    return Status::InvalidArgument(
        "total_unigram_count is required for an external source");
  }
  return StupidBackoffModel(std::move(source), options, total_unigram_count);
}

double StupidBackoffModel::Score(const TermSequence& context, TermId word,
                                 Status* status) const {
  // Clip the context to order - 1 terms.
  const size_t max_context = options_.order - 1;
  const size_t begin =
      context.size() > max_context ? context.size() - max_context : 0;

  double discount = 1.0;
  TermSequence gram;
  for (size_t from = begin; from <= context.size(); ++from) {
    gram.assign(context.begin() + from, context.end());
    gram.push_back(word);
    const uint64_t numerator = source_->FrequencyOf(gram, status);
    if (status != nullptr && !status->ok()) {
      return discount * options_.unseen_score;
    }
    if (numerator > 0) {
      gram.pop_back();
      const uint64_t denominator =
          gram.empty() ? total_unigrams_ : source_->FrequencyOf(gram, status);
      if (status != nullptr && !status->ok()) {
        return discount * options_.unseen_score;
      }
      if (denominator >= numerator) {
        return discount * static_cast<double>(numerator) /
               static_cast<double>(denominator);
      }
    }
    discount *= options_.backoff_alpha;
  }
  return discount * options_.unseen_score;
}

double StupidBackoffModel::SentenceLogScore(const TermSequence& sentence,
                                            Status* status) const {
  double log_score = 0.0;
  TermSequence context;
  for (size_t i = 0; i < sentence.size(); ++i) {
    const size_t begin = i > options_.order - 1 ? i - (options_.order - 1)
                                                : 0;
    context.assign(sentence.begin() + begin, sentence.begin() + i);
    log_score += std::log10(Score(context, sentence[i], status));
    if (status != nullptr && !status->ok()) {
      return log_score;
    }
  }
  return log_score;
}

double StupidBackoffModel::Perplexity(const Corpus& corpus,
                                      Status* status) const {
  double log_sum = 0.0;
  uint64_t tokens = 0;
  for (const auto& doc : corpus.docs) {
    for (const auto& sentence : doc.sentences) {
      log_sum += SentenceLogScore(sentence, status);
      if (status != nullptr && !status->ok()) {
        return 0.0;
      }
      tokens += sentence.size();
    }
  }
  if (tokens == 0) {
    return 0.0;
  }
  return std::pow(10.0, -log_sum / static_cast<double>(tokens));
}

std::vector<std::pair<TermId, double>> StupidBackoffModel::TopContinuations(
    const TermSequence& context, size_t k, Status* status) const {
  // Collect candidate continuations at the highest backoff level that has
  // any; score every candidate with the full backoff chain.
  const size_t max_context = options_.order - 1;
  const size_t begin =
      context.size() > max_context ? context.size() - max_context : 0;

  std::vector<TermId> candidates;
  TermSequence prefix;
  for (size_t from = begin; from <= context.size(); ++from) {
    prefix.assign(context.begin() + from, context.end());
    Status st = source_->ForEachContinuation(
        prefix, [&](TermId term, uint64_t) { candidates.push_back(term); });
    if (!st.ok()) {
      if (status != nullptr) {
        *status = std::move(st);
      }
      return {};
    }
    if (!candidates.empty()) {
      break;  // Highest available order wins, as in Score().
    }
  }

  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  std::vector<std::pair<TermId, double>> scored;
  scored.reserve(candidates.size());
  for (TermId t : candidates) {
    scored.emplace_back(t, Score(context, t, status));
    if (status != nullptr && !status->ok()) {
      return {};
    }
  }
  std::sort(scored.begin(), scored.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) {
      return a.second > b.second;
    }
    return a.first < b.first;
  });
  if (scored.size() > k) {
    scored.resize(k);
  }
  return scored;
}

}  // namespace ngram::lm
