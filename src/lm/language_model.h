// Stupid-backoff n-gram language model over computed n-gram statistics —
// the paper's first motivating use case ("training a language model",
// Section VII-D), and the scheme of Brants et al. (EMNLP 2007), which the
// paper cites as the production user of NAIVE-style counting at Google.
//
// Score(context, w) returns the highest-order relative frequency
// available, discounted by alpha per backed-off order:
//
//   S(w | c_1..c_k) = f(c_1..c_k w) / f(c_1..c_k)        if f > 0
//                   = alpha * S(w | c_2..c_k)            otherwise
//   S(w)            = f(w) / N                            (unigram base)
//
// Scores are not normalized probabilities (that is the point of stupid
// backoff — no discounting mass bookkeeping), but they rank continuations
// and yield usable perplexity-style comparisons.
//
// Frequencies are consulted through the FrequencySource interface: the
// classic Build() wraps the statistics table in memory, while the serving
// layer (serve/stats_service.h) plugs in a source backed by mmap'd
// sharded segments, so interactive queries never materialize the table.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "core/stats.h"
#include "text/corpus.h"
#include "util/result.h"

namespace ngram::lm {

/// \brief Where the model's n-gram frequencies come from.
///
/// Implementations must be safe for concurrent const use (the serving
/// layer scores queries from many threads over one source).
class FrequencySource {
 public:
  virtual ~FrequencySource() = default;

  /// Frequency of `seq`; 0 when absent. A source that can fail mid-read
  /// (disk-backed shards) reports through `status` — when non-null and an
  /// error occurs, `*status` is set and 0 is returned; in-memory sources
  /// never touch it. Callers that must not mistake an error for "unseen"
  /// pass a status and check it.
  virtual uint64_t FrequencyOf(const TermSequence& seq,
                               Status* status) const = 0;

  /// Invokes `fn(term, frequency)` for every stored n-gram that equals
  /// `prefix` extended by exactly one term, in unspecified order.
  virtual Status ForEachContinuation(
      const TermSequence& prefix,
      const std::function<void(TermId, uint64_t)>& fn) const = 0;
};

/// FrequencySource over a canonically sorted in-memory statistics table.
class StatisticsSource final : public FrequencySource {
 public:
  /// `stats` must be canonically sorted; ownership is shared.
  explicit StatisticsSource(std::shared_ptr<const NgramStatistics> stats)
      : stats_(std::move(stats)) {}

  uint64_t FrequencyOf(const TermSequence& seq,
                       Status* status) const override;
  Status ForEachContinuation(
      const TermSequence& prefix,
      const std::function<void(TermId, uint64_t)>& fn) const override;

 private:
  std::shared_ptr<const NgramStatistics> stats_;
};

struct LanguageModelOptions {
  /// Maximum n-gram order consulted (the sigma the statistics were
  /// computed with, typically 5).
  uint32_t order = 5;
  /// Backoff discount per order skipped (Brants et al. use 0.4).
  double backoff_alpha = 0.4;
  /// Floor score for completely unseen unigrams.
  double unseen_score = 1e-9;
};

class StupidBackoffModel {
 public:
  /// Builds a model from an n-gram statistics table. The table is copied
  /// and canonically sorted; it should contain every frequent n-gram up to
  /// `options.order` (lower tau = better coverage). `total_unigram_count`
  /// is the corpus size N used for the unigram base case; pass 0 to derive
  /// it as the sum of unigram entries.
  static Result<StupidBackoffModel> Build(NgramStatistics stats,
                                          LanguageModelOptions options,
                                          uint64_t total_unigram_count = 0);

  /// Builds a model over an externally owned frequency source (a
  /// ShardedStatsStore in the serving layer). `total_unigram_count` must
  /// be the corpus size N — a source cannot enumerate its unigrams, so it
  /// cannot be derived here.
  static Result<StupidBackoffModel> BuildFromSource(
      std::shared_ptr<const FrequencySource> source,
      LanguageModelOptions options, uint64_t total_unigram_count);

  /// Backoff score of `word` following `context` (last `order - 1` terms
  /// are used). Always positive. A disk-backed source's read error is
  /// reported through `status` (when non-null); the returned score is
  /// then meaningless and must not be served as an answer.
  double Score(const TermSequence& context, TermId word,
               Status* status = nullptr) const;

  /// Sum of log10 Score over the sentence under a sliding window.
  double SentenceLogScore(const TermSequence& sentence,
                          Status* status = nullptr) const;

  /// exp10(-avg log10 score per token) over every sentence of the corpus —
  /// a perplexity-style figure (lower = better fit).
  double Perplexity(const Corpus& corpus, Status* status = nullptr) const;

  /// Most probable continuations of `context`, best first, at most `k`.
  /// Ties rank by ascending term id, so results are deterministic.
  std::vector<std::pair<TermId, double>> TopContinuations(
      const TermSequence& context, size_t k,
      Status* status = nullptr) const;

  uint64_t total_unigrams() const { return total_unigrams_; }
  const LanguageModelOptions& options() const { return options_; }

 private:
  StupidBackoffModel(std::shared_ptr<const FrequencySource> source,
                     LanguageModelOptions options, uint64_t total_unigrams)
      : source_(std::move(source)),
        options_(options),
        total_unigrams_(total_unigrams) {}

  std::shared_ptr<const FrequencySource> source_;
  LanguageModelOptions options_;
  uint64_t total_unigrams_;
};

}  // namespace ngram::lm
