// Stupid-backoff n-gram language model over computed n-gram statistics —
// the paper's first motivating use case ("training a language model",
// Section VII-D), and the scheme of Brants et al. (EMNLP 2007), which the
// paper cites as the production user of NAIVE-style counting at Google.
//
// Score(context, w) returns the highest-order relative frequency
// available, discounted by alpha per backed-off order:
//
//   S(w | c_1..c_k) = f(c_1..c_k w) / f(c_1..c_k)        if f > 0
//                   = alpha * S(w | c_2..c_k)            otherwise
//   S(w)            = f(w) / N                            (unigram base)
//
// Scores are not normalized probabilities (that is the point of stupid
// backoff — no discounting mass bookkeeping), but they rank continuations
// and yield usable perplexity-style comparisons.
#pragma once

#include <cstdint>

#include "core/stats.h"
#include "text/corpus.h"
#include "util/result.h"

namespace ngram::lm {

struct LanguageModelOptions {
  /// Maximum n-gram order consulted (the sigma the statistics were
  /// computed with, typically 5).
  uint32_t order = 5;
  /// Backoff discount per order skipped (Brants et al. use 0.4).
  double backoff_alpha = 0.4;
  /// Floor score for completely unseen unigrams.
  double unseen_score = 1e-9;
};

class StupidBackoffModel {
 public:
  /// Builds a model from an n-gram statistics table. The table is copied
  /// and canonically sorted; it should contain every frequent n-gram up to
  /// `options.order` (lower tau = better coverage). `total_unigram_count`
  /// is the corpus size N used for the unigram base case; pass 0 to derive
  /// it as the sum of unigram entries.
  static Result<StupidBackoffModel> Build(NgramStatistics stats,
                                          LanguageModelOptions options,
                                          uint64_t total_unigram_count = 0);

  /// Backoff score of `word` following `context` (last `order - 1` terms
  /// are used). Always positive.
  double Score(const TermSequence& context, TermId word) const;

  /// Sum of log10 Score over the sentence under a sliding window.
  double SentenceLogScore(const TermSequence& sentence) const;

  /// exp10(-avg log10 score per token) over every sentence of the corpus —
  /// a perplexity-style figure (lower = better fit).
  double Perplexity(const Corpus& corpus) const;

  /// Most probable continuations of `context`, best first, at most `k`.
  std::vector<std::pair<TermId, double>> TopContinuations(
      const TermSequence& context, size_t k) const;

  uint64_t total_unigrams() const { return total_unigrams_; }
  const LanguageModelOptions& options() const { return options_; }

 private:
  StupidBackoffModel(NgramStatistics stats, LanguageModelOptions options,
                     uint64_t total_unigrams)
      : stats_(std::move(stats)),
        options_(options),
        total_unigrams_(total_unigrams) {}

  NgramStatistics stats_;  // Canonically sorted.
  LanguageModelOptions options_;
  uint64_t total_unigrams_;
};

}  // namespace ngram::lm
