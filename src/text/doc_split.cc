#include "text/doc_split.h"

namespace ngram {

std::vector<TermSequence> SplitAtInfrequentTerms(
    const TermSequence& fragment, const UnigramFrequencies& unigram_cf,
    uint64_t tau) {
  std::vector<TermSequence> pieces;
  TermSequence current;
  for (TermId t : fragment) {
    const uint64_t cf = t < unigram_cf.size() ? unigram_cf[t] : 0;
    if (cf >= tau) {
      current.push_back(t);
    } else if (!current.empty()) {
      pieces.push_back(std::move(current));
      current.clear();
    }
  }
  if (!current.empty()) {
    pieces.push_back(std::move(current));
  }
  return pieces;
}

}  // namespace ngram
