#include "text/vocabulary.h"

#include <algorithm>

namespace ngram {

Vocabulary Vocabulary::Build(
    const std::unordered_map<std::string, uint64_t>& counts) {
  std::vector<std::pair<std::string, uint64_t>> sorted(counts.begin(),
                                                       counts.end());
  std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) {
      return a.second > b.second;  // Descending frequency.
    }
    return a.first < b.first;  // Lexicographic tie-break.
  });
  Vocabulary vocab;
  vocab.id_to_term_.reserve(sorted.size() + 1);
  vocab.frequencies_.reserve(sorted.size() + 1);
  for (const auto& [term, freq] : sorted) {
    const TermId id = static_cast<TermId>(vocab.id_to_term_.size());
    vocab.term_to_id_[term] = id;
    vocab.id_to_term_.push_back(term);
    vocab.frequencies_.push_back(freq);
  }
  return vocab;
}

TermId Vocabulary::Lookup(const std::string& term) const {
  auto it = term_to_id_.find(term);
  return it == term_to_id_.end() ? 0 : it->second;
}

const std::string& Vocabulary::TermOf(TermId id) const {
  static const std::string kUnknown = "<unk>";
  if (id == 0 || id >= id_to_term_.size()) {
    return kUnknown;
  }
  return id_to_term_[id];
}

TermSequence Vocabulary::Encode(const std::vector<std::string>& tokens) const {
  TermSequence seq;
  seq.reserve(tokens.size());
  for (const auto& token : tokens) {
    const TermId id = Lookup(token);
    if (id != 0) {
      seq.push_back(id);
    }
  }
  return seq;
}

std::string Vocabulary::Decode(const TermSequence& seq) const {
  std::string out;
  for (size_t i = 0; i < seq.size(); ++i) {
    if (i > 0) {
      out += ' ';
    }
    out += TermOf(seq[i]);
  }
  return out;
}

uint64_t Vocabulary::FrequencyOf(TermId id) const {
  if (id >= frequencies_.size()) {
    return 0;
  }
  return frequencies_[id];
}

}  // namespace ngram
