// Tokenization and sentence splitting for raw text input.
//
// The paper preprocesses with OpenNLP sentence detection; this rule-based
// splitter provides the same downstream semantics (sentences as n-gram
// barriers) for the text-facing examples and tests.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace ngram {

struct TokenizerOptions {
  /// Lowercase all tokens.
  bool lowercase = true;
  /// Keep intra-word apostrophes ("don't" stays one token).
  bool keep_apostrophes = true;
  /// Keep digit runs as tokens ("42" survives).
  bool keep_numbers = true;
};

/// Splits raw text into sentences of word tokens.
///
/// Sentence boundaries: '.', '!', '?', ';' and blank lines. Abbreviation
/// handling is intentionally simple (single-letter and common title
/// abbreviations do not split); good enough to act as n-gram barriers.
class Tokenizer {
 public:
  explicit Tokenizer(TokenizerOptions options = {}) : options_(options) {}

  /// Tokenizes `text` into sentences; empty sentences are dropped.
  std::vector<std::vector<std::string>> SplitSentences(
      std::string_view text) const;

  /// Tokenizes `text` into one flat token list (no sentence structure).
  std::vector<std::string> Tokenize(std::string_view text) const;

 private:
  bool IsSentenceTerminator(char c) const;
  bool LooksLikeAbbreviation(const std::string& token) const;

  TokenizerOptions options_;
};

}  // namespace ngram
