#include "text/tokenizer.h"

#include <cctype>

namespace ngram {

namespace {

bool IsWordChar(char c, bool keep_numbers) {
  const unsigned char u = static_cast<unsigned char>(c);
  if (std::isalpha(u)) {
    return true;
  }
  if (keep_numbers && std::isdigit(u)) {
    return true;
  }
  return false;
}

const char* const kAbbreviations[] = {"mr",  "mrs", "ms",  "dr", "prof",
                                      "st",  "jr",  "sr",  "vs", "etc",
                                      "inc", "co",  "corp"};

}  // namespace

bool Tokenizer::IsSentenceTerminator(char c) const {
  return c == '.' || c == '!' || c == '?' || c == ';';
}

bool Tokenizer::LooksLikeAbbreviation(const std::string& token) const {
  if (token.size() == 1) {
    return true;  // Initials: "J. Smith".
  }
  for (const char* abbr : kAbbreviations) {
    if (token == abbr) {
      return true;
    }
  }
  return false;
}

std::vector<std::vector<std::string>> Tokenizer::SplitSentences(
    std::string_view text) const {
  std::vector<std::vector<std::string>> sentences;
  std::vector<std::string> current;
  std::string token;

  auto flush_token = [&] {
    if (!token.empty()) {
      current.push_back(token);
      token.clear();
    }
  };
  auto flush_sentence = [&] {
    flush_token();
    if (!current.empty()) {
      sentences.push_back(std::move(current));
      current.clear();
    }
  };

  int consecutive_newlines = 0;
  for (size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '\n') {
      ++consecutive_newlines;
      if (consecutive_newlines >= 2) {
        flush_sentence();  // Blank line = paragraph boundary.
        consecutive_newlines = 0;
      }
    } else if (!std::isspace(static_cast<unsigned char>(c))) {
      consecutive_newlines = 0;
    }

    if (IsWordChar(c, options_.keep_numbers)) {
      token.push_back(options_.lowercase
                          ? static_cast<char>(
                                std::tolower(static_cast<unsigned char>(c)))
                          : c);
    } else if (options_.keep_apostrophes && c == '\'' && !token.empty() &&
               i + 1 < text.size() &&
               IsWordChar(text[i + 1], options_.keep_numbers)) {
      token.push_back('\'');
    } else if (c == '.' && LooksLikeAbbreviation(token)) {
      flush_token();  // Abbreviation period: token boundary, not sentence.
    } else if (IsSentenceTerminator(c)) {
      flush_sentence();
    } else {
      flush_token();
    }
  }
  flush_sentence();
  return sentences;
}

std::vector<std::string> Tokenizer::Tokenize(std::string_view text) const {
  std::vector<std::string> tokens;
  for (auto& sentence : SplitSentences(text)) {
    for (auto& t : sentence) {
      tokens.push_back(std::move(t));
    }
  }
  return tokens;
}

}  // namespace ngram
