// Document and Corpus: the integer-encoded collection every method consumes.
//
// Mirroring the paper's preprocessing (Section V "Sequence Encoding" and
// Section VII-B): documents are sentence-split, terms are mapped to integer
// ids assigned in descending collection-frequency order, and from there on
// everything operates on arrays of integers.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "encoding/sequence.h"

namespace ngram {

/// One document: an id, an optional publication year (used by the n-gram
/// time-series extension), and its sentences as term-id sequences.
/// Sentence boundaries act as n-gram barriers (Section VII-B).
struct Document {
  uint64_t id = 0;
  int32_t year = 0;  // 0 = no timestamp.
  std::vector<TermSequence> sentences;

  uint64_t TermOccurrences() const {
    uint64_t n = 0;
    for (const auto& s : sentences) {
      n += s.size();
    }
    return n;
  }
};

/// Aggregate collection statistics — the rows of the paper's Table I.
struct CorpusStats {
  uint64_t num_documents = 0;
  uint64_t term_occurrences = 0;
  uint64_t distinct_terms = 0;
  uint64_t num_sentences = 0;
  double sentence_length_mean = 0.0;
  double sentence_length_stddev = 0.0;

  /// Renders a Table-I-style block.
  std::string ToString(const std::string& name) const;
};

/// A document collection.
struct Corpus {
  std::vector<Document> docs;

  uint64_t num_documents() const { return docs.size(); }

  /// Scans the collection and computes Table-I statistics.
  CorpusStats ComputeStats() const;

  /// Largest term id present plus one (term-frequency vectors are indexed
  /// by id).
  TermId MaxTermId() const;

  /// Returns a new corpus containing the first `percent`% of documents of a
  /// deterministic pseudo-random permutation — the paper's Figure 6 subsets
  /// ("random 25%, 50%, or 75% subset of the documents").
  Corpus Sample(int percent, uint64_t seed) const;
};

/// Per-term collection frequencies indexed by term id, shared read-only by
/// mappers (document splitting, APRIORI-SCAN k=1 shortcut).
using UnigramFrequencies = std::vector<uint64_t>;

/// Counts every unigram in the corpus. (This equals what the paper's
/// one-time dictionary/encoding preprocessing already knows.)
UnigramFrequencies ComputeUnigramFrequencies(const Corpus& corpus);

}  // namespace ngram
