// TextCorpusBuilder: turns raw-text documents into an integer-encoded
// Corpus + Vocabulary, reproducing the paper's one-time preprocessing
// (tokenize, sentence-split, count, assign frequency-descending ids,
// re-encode).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "text/corpus.h"
#include "text/tokenizer.h"
#include "text/vocabulary.h"

namespace ngram {

class TextCorpusBuilder {
 public:
  explicit TextCorpusBuilder(TokenizerOptions options = {})
      : tokenizer_(options) {}

  /// Adds one raw document. `year` feeds the time-series extension (0 = no
  /// timestamp).
  void Add(uint64_t doc_id, std::string_view text, int32_t year = 0);

  /// Result of Finalize(): the encoded corpus plus its vocabulary.
  struct Built {
    Corpus corpus;
    std::shared_ptr<Vocabulary> vocabulary;
  };

  /// Builds the vocabulary from accumulated counts and encodes all added
  /// documents. The builder is left empty.
  Built Finalize();

 private:
  struct RawDocument {
    uint64_t id;
    int32_t year;
    std::vector<std::vector<std::string>> sentences;
  };

  Tokenizer tokenizer_;
  std::vector<RawDocument> raw_docs_;
  std::unordered_map<std::string, uint64_t> counts_;
};

}  // namespace ngram
