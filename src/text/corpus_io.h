// Binary persistence for encoded corpora, mirroring the paper's
// preprocessing output ("documents are spread as key-value pairs of
// document identifier and content integer array over binary files",
// Section VII-B): integer term-id sequences, varbyte-compressed.
#pragma once

#include <string>

#include "mapreduce/io_env.h"
#include "text/corpus.h"
#include "util/status.h"

namespace ngram {

/// Writes `corpus` to `path` in the NGC1 binary format. All byte I/O
/// goes through `env` (nullptr means IoEnv::Default()), so corpus
/// persistence is fault-injectable like every other persisted byte path.
Status WriteCorpusBinary(const Corpus& corpus, const std::string& path,
                         mr::IoEnv* env = nullptr);

/// Reads a corpus written by WriteCorpusBinary.
Status ReadCorpusBinary(const std::string& path, Corpus* corpus,
                        mr::IoEnv* env = nullptr);

/// Writes the corpus spread over `num_shards` part files
/// (`dir/part-00000` ...), documents assigned by doc id modulo shard —
/// the paper's layout ("spread ... over a total of 256 binary files").
Status WriteCorpusSharded(const Corpus& corpus, const std::string& dir,
                          uint32_t num_shards, mr::IoEnv* env = nullptr);

/// Reads every `part-*` file under `dir`; documents are returned sorted by
/// id, so the result is independent of the shard count.
Status ReadCorpusSharded(const std::string& dir, Corpus* corpus,
                         mr::IoEnv* env = nullptr);

}  // namespace ngram
