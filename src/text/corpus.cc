#include "text/corpus.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>

#include "util/random.h"

namespace ngram {

std::string CorpusStats::ToString(const std::string& name) const {
  char buf[512];
  snprintf(buf, sizeof(buf),
           "%-28s %18s\n"
           "# documents                  %18llu\n"
           "# term occurrences           %18llu\n"
           "# distinct terms             %18llu\n"
           "# sentences                  %18llu\n"
           "sentence length (mean)       %18.2f\n"
           "sentence length (stddev)     %18.2f\n",
           "", name.c_str(), static_cast<unsigned long long>(num_documents),
           static_cast<unsigned long long>(term_occurrences),
           static_cast<unsigned long long>(distinct_terms),
           static_cast<unsigned long long>(num_sentences),
           sentence_length_mean, sentence_length_stddev);
  return buf;
}

CorpusStats Corpus::ComputeStats() const {
  CorpusStats stats;
  stats.num_documents = docs.size();
  std::vector<uint8_t> seen;
  double sum = 0.0, sum_sq = 0.0;
  for (const auto& doc : docs) {
    for (const auto& sentence : doc.sentences) {
      ++stats.num_sentences;
      stats.term_occurrences += sentence.size();
      const double len = static_cast<double>(sentence.size());
      sum += len;
      sum_sq += len * len;
      for (TermId t : sentence) {
        if (t >= seen.size()) {
          seen.resize(static_cast<size_t>(t) + 1, 0);
        }
        seen[t] = 1;
      }
    }
  }
  stats.distinct_terms =
      static_cast<uint64_t>(std::count(seen.begin(), seen.end(), 1));
  if (stats.num_sentences > 0) {
    const double n = static_cast<double>(stats.num_sentences);
    stats.sentence_length_mean = sum / n;
    const double var =
        std::max(0.0, sum_sq / n - stats.sentence_length_mean *
                                       stats.sentence_length_mean);
    stats.sentence_length_stddev = std::sqrt(var);
  }
  return stats;
}

TermId Corpus::MaxTermId() const {
  TermId max_id = 0;
  for (const auto& doc : docs) {
    for (const auto& sentence : doc.sentences) {
      for (TermId t : sentence) {
        max_id = std::max(max_id, t);
      }
    }
  }
  return max_id + 1;
}

Corpus Corpus::Sample(int percent, uint64_t seed) const {
  Corpus out;
  if (percent >= 100) {
    out.docs = docs;
    return out;
  }
  // Fisher-Yates prefix of a deterministic permutation, then restore the
  // original document order for locality.
  std::vector<uint64_t> idx(docs.size());
  std::iota(idx.begin(), idx.end(), 0);
  Rng rng(seed);
  const size_t want =
      static_cast<size_t>(docs.size() * static_cast<uint64_t>(percent) / 100);
  for (size_t i = 0; i < want && i + 1 < idx.size(); ++i) {
    const size_t j = i + static_cast<size_t>(rng.Uniform(idx.size() - i));
    std::swap(idx[i], idx[j]);
  }
  idx.resize(want);
  std::sort(idx.begin(), idx.end());
  out.docs.reserve(want);
  for (uint64_t i : idx) {
    out.docs.push_back(docs[i]);
  }
  return out;
}

UnigramFrequencies ComputeUnigramFrequencies(const Corpus& corpus) {
  UnigramFrequencies freq(corpus.MaxTermId(), 0);
  for (const auto& doc : corpus.docs) {
    for (const auto& sentence : doc.sentences) {
      for (TermId t : sentence) {
        ++freq[t];
      }
    }
  }
  return freq;
}

}  // namespace ngram
