// Vocabulary: term <-> id mapping with ids assigned in descending
// collection-frequency order (Section V, "Sequence Encoding": "We assign
// identifiers to terms in descending order of their collection frequency to
// optimize compression").
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "encoding/sequence.h"
#include "util/result.h"

namespace ngram {

class Vocabulary {
 public:
  /// Builds a vocabulary from (term, collection frequency) counts. Ids start
  /// at 1 (0 is reserved); ties broken lexicographically for determinism.
  static Vocabulary Build(
      const std::unordered_map<std::string, uint64_t>& counts);

  /// Id for `term`, or 0 when unknown.
  TermId Lookup(const std::string& term) const;

  /// Term string for `id`; "<unk:id>" when out of range.
  const std::string& TermOf(TermId id) const;

  /// Encodes a token sequence (unknown tokens are dropped).
  TermSequence Encode(const std::vector<std::string>& tokens) const;

  /// Decodes a term-id sequence to a space-joined string.
  std::string Decode(const TermSequence& seq) const;

  /// Collection frequency recorded for `id` at build time.
  uint64_t FrequencyOf(TermId id) const;

  size_t size() const { return id_to_term_.size() - 1; }

 private:
  Vocabulary() { id_to_term_.push_back("<pad>"); frequencies_.push_back(0); }

  std::unordered_map<std::string, TermId> term_to_id_;
  std::vector<std::string> id_to_term_;   // Indexed by id; [0] reserved.
  std::vector<uint64_t> frequencies_;     // Indexed by id.
};

}  // namespace ngram
