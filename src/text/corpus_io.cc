#include "text/corpus_io.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <vector>

#include "encoding/sequence.h"
#include "encoding/varint.h"
#include "util/macros.h"

namespace ngram {

namespace {

constexpr char kMagic[4] = {'N', 'G', 'C', '1'};

/// Reads all of `path` into `*content` through `env` (already resolved).
Status ReadWholeFile(mr::IoEnv* env, const std::string& path,
                     std::string* content) {
  std::unique_ptr<mr::ReadableFile> f;
  NGRAM_RETURN_NOT_OK(env->NewReadableFile(path, /*buffer_hint=*/0, &f));
  char chunk[64 * 1024];
  size_t got = 0;
  do {
    NGRAM_RETURN_NOT_OK(f->Read(chunk, sizeof(chunk), &got));
    content->append(chunk, got);
  } while (got > 0);
  return Status::OK();
}

}  // namespace

Status WriteCorpusBinary(const Corpus& corpus, const std::string& path,
                         mr::IoEnv* env) {
  std::unique_ptr<mr::WritableFile> f;
  NGRAM_RETURN_NOT_OK(mr::ResolveEnv(env)->NewWritableFile(path, &f));
  std::string buf(kMagic, sizeof(kMagic));
  PutVarint64(&buf, corpus.docs.size());
  for (const auto& doc : corpus.docs) {
    PutVarint64(&buf, doc.id);
    PutVarintSigned64(&buf, doc.year);
    PutVarint64(&buf, doc.sentences.size());
    for (const auto& sentence : doc.sentences) {
      PutVarint64(&buf, sentence.size());
      for (TermId t : sentence) {
        PutVarint32(&buf, t);
      }
    }
    if (buf.size() > (1 << 20)) {
      NGRAM_RETURN_NOT_OK(f->Write(buf.data(), buf.size()));
      buf.clear();
    }
  }
  NGRAM_RETURN_NOT_OK(f->Write(buf.data(), buf.size()));
  NGRAM_RETURN_NOT_OK(f->Sync());
  return f->Close();
}

Status ReadCorpusBinary(const std::string& path, Corpus* corpus,
                        mr::IoEnv* env) {
  corpus->docs.clear();
  std::string content;
  NGRAM_RETURN_NOT_OK(ReadWholeFile(mr::ResolveEnv(env), path, &content));
  Slice in(content);
  if (in.size() < sizeof(kMagic) ||
      memcmp(in.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption(path + ": not an NGC1 corpus file");
  }
  in.RemovePrefix(sizeof(kMagic));
  uint64_t num_docs = 0;
  if (!GetVarint64(&in, &num_docs)) {
    return Status::Corruption(path + ": bad document count");
  }
  corpus->docs.reserve(num_docs);
  for (uint64_t d = 0; d < num_docs; ++d) {
    Document doc;
    int64_t year = 0;
    uint64_t num_sentences = 0;
    if (!GetVarint64(&in, &doc.id) || !GetVarintSigned64(&in, &year) ||
        !GetVarint64(&in, &num_sentences)) {
      return Status::Corruption(path + ": truncated document header");
    }
    doc.year = static_cast<int32_t>(year);
    doc.sentences.reserve(num_sentences);
    for (uint64_t s = 0; s < num_sentences; ++s) {
      uint64_t len = 0;
      if (!GetVarint64(&in, &len)) {
        return Status::Corruption(path + ": truncated sentence header");
      }
      TermSequence sentence;
      sentence.reserve(len);
      for (uint64_t i = 0; i < len; ++i) {
        TermId t = 0;
        if (!GetVarint32(&in, &t)) {
          return Status::Corruption(path + ": truncated sentence");
        }
        sentence.push_back(t);
      }
      doc.sentences.push_back(std::move(sentence));
    }
    corpus->docs.push_back(std::move(doc));
  }
  if (!in.empty()) {
    return Status::Corruption(path + ": trailing bytes");
  }
  return Status::OK();
}


Status WriteCorpusSharded(const Corpus& corpus, const std::string& dir,
                          uint32_t num_shards, mr::IoEnv* env) {
  if (num_shards == 0) {
    return Status::InvalidArgument("num_shards must be >= 1");
  }
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::IOError("cannot create " + dir + ": " + ec.message());
  }
  std::vector<Corpus> shards(num_shards);
  for (const auto& doc : corpus.docs) {
    shards[doc.id % num_shards].docs.push_back(doc);
  }
  for (uint32_t i = 0; i < num_shards; ++i) {
    char name[32];
    snprintf(name, sizeof(name), "/part-%05u", i);
    NGRAM_RETURN_NOT_OK(WriteCorpusBinary(shards[i], dir + name, env));
  }
  return Status::OK();
}

Status ReadCorpusSharded(const std::string& dir, Corpus* corpus,
                         mr::IoEnv* env) {
  corpus->docs.clear();
  std::error_code ec;
  std::vector<std::filesystem::path> parts;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (entry.is_regular_file() &&
        entry.path().filename().string().rfind("part-", 0) == 0) {
      parts.push_back(entry.path());
    }
  }
  if (ec) {
    return Status::IOError("cannot list " + dir + ": " + ec.message());
  }
  if (parts.empty()) {
    return Status::NotFound("no part-* files under " + dir);
  }
  std::sort(parts.begin(), parts.end());
  for (const auto& part : parts) {
    Corpus shard;
    NGRAM_RETURN_NOT_OK(ReadCorpusBinary(part.string(), &shard, env));
    corpus->docs.insert(corpus->docs.end(),
                        std::make_move_iterator(shard.docs.begin()),
                        std::make_move_iterator(shard.docs.end()));
  }
  std::sort(corpus->docs.begin(), corpus->docs.end(),
            [](const Document& a, const Document& b) { return a.id < b.id; });
  return Status::OK();
}
}  // namespace ngram
