// Document splitting at infrequent terms (Section V, "Document Splits"):
// given unigram collection frequencies and the run's tau, a fragment like
// <c b a z b a c> with cf(z) < tau splits into <c b a> and <b a c>. Safe by
// the APRIORI principle — no frequent n-gram can contain an infrequent term.
// All methods profit, for large sigma in particular.
#pragma once

#include <cstdint>
#include <vector>

#include "encoding/sequence.h"
#include "text/corpus.h"

namespace ngram {

/// Splits `fragment` at terms whose collection frequency is below `tau`.
/// Infrequent terms themselves are dropped (they cannot appear in any
/// frequent n-gram). Empty pieces are not produced.
std::vector<TermSequence> SplitAtInfrequentTerms(
    const TermSequence& fragment, const UnigramFrequencies& unigram_cf,
    uint64_t tau);

}  // namespace ngram
