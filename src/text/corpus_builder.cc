#include "text/corpus_builder.h"

namespace ngram {

void TextCorpusBuilder::Add(uint64_t doc_id, std::string_view text,
                            int32_t year) {
  RawDocument doc;
  doc.id = doc_id;
  doc.year = year;
  doc.sentences = tokenizer_.SplitSentences(text);
  for (const auto& sentence : doc.sentences) {
    for (const auto& token : sentence) {
      ++counts_[token];
    }
  }
  raw_docs_.push_back(std::move(doc));
}

TextCorpusBuilder::Built TextCorpusBuilder::Finalize() {
  Built built;
  built.vocabulary = std::make_shared<Vocabulary>(Vocabulary::Build(counts_));
  built.corpus.docs.reserve(raw_docs_.size());
  for (auto& raw : raw_docs_) {
    Document doc;
    doc.id = raw.id;
    doc.year = raw.year;
    doc.sentences.reserve(raw.sentences.size());
    for (const auto& sentence : raw.sentences) {
      TermSequence encoded = built.vocabulary->Encode(sentence);
      if (!encoded.empty()) {
        doc.sentences.push_back(std::move(encoded));
      }
    }
    built.corpus.docs.push_back(std::move(doc));
  }
  raw_docs_.clear();
  counts_.clear();
  return built;
}

}  // namespace ngram
