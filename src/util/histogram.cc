#include "util/histogram.h"

#include <algorithm>
#include <cstdio>

namespace ngram {

int Log10Histogram2D::Log10Bucket(uint64_t v) {
  int bucket = 0;
  while (v >= 10) {
    v /= 10;
    ++bucket;
  }
  return bucket;
}

void Log10Histogram2D::Add(uint64_t x, uint64_t y, uint64_t weight) {
  if (x == 0 || y == 0 || weight == 0) {
    return;
  }
  const int i = Log10Bucket(x);
  const int j = Log10Bucket(y);
  buckets_[{i, j}] += weight;
  max_x_ = std::max(max_x_, i);
  max_y_ = std::max(max_y_, j);
  total_ += weight;
}

uint64_t Log10Histogram2D::BucketCount(int i, int j) const {
  auto it = buckets_.find({i, j});
  return it == buckets_.end() ? 0 : it->second;
}

std::vector<std::pair<std::pair<int, int>, uint64_t>>
Log10Histogram2D::Buckets() const {
  return {buckets_.begin(), buckets_.end()};
}

std::string Log10Histogram2D::ToTable(const std::string& x_label,
                                      const std::string& y_label) const {
  std::string out;
  char buf[64];
  snprintf(buf, sizeof(buf), "%18s \\ %s\n", y_label.c_str(), x_label.c_str());
  out += buf;
  snprintf(buf, sizeof(buf), "%10s", "");
  out += buf;
  for (int i = 0; i <= max_x_; ++i) {
    snprintf(buf, sizeof(buf), " 10^%-9d", i);
    out += buf;
  }
  out += "\n";
  for (int j = max_y_; j >= 0; --j) {
    snprintf(buf, sizeof(buf), "10^%-7d", j);
    out += buf;
    for (int i = 0; i <= max_x_; ++i) {
      const uint64_t c = BucketCount(i, j);
      if (c == 0) {
        snprintf(buf, sizeof(buf), " %12s", ".");
      } else {
        snprintf(buf, sizeof(buf), " %12llu",
                 static_cast<unsigned long long>(c));
      }
      out += buf;
    }
    out += "\n";
  }
  return out;
}

}  // namespace ngram
