#include "util/status.h"

namespace ngram {

namespace {
const std::string kEmptyString;
}  // namespace

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
  }
  return "Unknown";
}

Status::Status(StatusCode code, std::string msg)
    : state_(new State{code, std::move(msg)}) {}

const std::string& Status::message() const {
  return state_ == nullptr ? kEmptyString : state_->msg;
}

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  std::string out = StatusCodeToString(state_->code);
  out += ": ";
  out += state_->msg;
  return out;
}

Status Status::WithContext(const std::string& context) const {
  if (ok()) {
    return *this;
  }
  return Status(state_->code, context + ": " + state_->msg);
}

}  // namespace ngram
