// Deterministic PRNG utilities. All generators in this repo are seeded so
// corpora, shuffles, and tests are reproducible run-to-run.
#pragma once

#include <cstdint>
#include <random>

namespace ngram {

/// \brief xoshiro256**-based PRNG: fast, decent quality, deterministic.
///
/// Thin wrapper satisfying UniformRandomBitGenerator so it plugs into
/// <random> distributions.
class Rng {
 public:
  using result_type = uint64_t;

  explicit Rng(uint64_t seed) {
    // SplitMix64 seeding as recommended by the xoshiro authors.
    uint64_t x = seed;
    for (int i = 0; i < 4; ++i) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s_[i] = z ^ (z >> 31);
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) { return (*this)() % n; }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p.
  bool OneIn(double p) { return NextDouble() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  uint64_t s_[4];
};

}  // namespace ngram
