#include "util/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "util/mutex.h"

namespace ngram {

namespace {
std::atomic<int> g_log_level{static_cast<int>(LogLevel::kWarning)};
Mutex g_log_mutex;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarning:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
    default:
      return "?????";
  }
}

const char* Basename(const char* path) {
  const char* base = path;
  for (const char* p = path; *p != '\0'; ++p) {
    if (*p == '/') {
      base = p + 1;
    }
  }
  return base;
}
}  // namespace

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level), file_(file), line_(line) {}

LogMessage::~LogMessage() {
  using Clock = std::chrono::system_clock;
  const auto now = Clock::now().time_since_epoch();
  const auto ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(now).count();
  MutexLock lock(&g_log_mutex);
  fprintf(stderr, "[%lld.%03lld %s %s:%d] %s\n",
          static_cast<long long>(ms / 1000), static_cast<long long>(ms % 1000),
          LevelName(level_), Basename(file_), line_, stream_.str().c_str());
}

FatalMessage::FatalMessage(const char* file, int line, const char* condition) {
  stream_ << "Check failed at " << Basename(file) << ":" << line << ": "
          << condition << " ";
}

FatalMessage::~FatalMessage() {
  {
    MutexLock lock(&g_log_mutex);
    fprintf(stderr, "[FATAL] %s\n", stream_.str().c_str());
    fflush(stderr);
  }
  std::abort();
}

}  // namespace internal
}  // namespace ngram
