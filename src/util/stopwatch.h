// Wallclock measurement helpers used by the runtime's job metrics.
#pragma once

#include <chrono>
#include <cstdint>

namespace ngram {

/// \brief Measures elapsed wallclock time with steady_clock.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Resets the start point to now.
  void Restart() { start_ = Clock::now(); }

  /// Elapsed time since construction or last Restart(), in microseconds.
  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

  double ElapsedMillis() const {
    return static_cast<double>(ElapsedMicros()) / 1000.0;
  }
  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedMicros()) / 1e6;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace ngram
