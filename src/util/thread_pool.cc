#include "util/thread_pool.h"

namespace ngram {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = 1;
  }
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mu_);
    shutting_down_ = true;
  }
  work_available_.SignalAll();
  for (auto& t : threads_) {
    t.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(&mu_);
    queue_.push_back(std::move(task));
  }
  work_available_.Signal();
}

void ThreadPool::Wait() {
  MutexLock lock(&mu_);
  while (!queue_.empty() || in_flight_ != 0) {
    all_done_.Wait();
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(&mu_);
      while (!shutting_down_ && queue_.empty()) {
        work_available_.Wait();
      }
      if (queue_.empty()) {
        return;  // Shutting down and drained.
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();
    {
      MutexLock lock(&mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) {
        all_done_.SignalAll();
      }
    }
  }
}

}  // namespace ngram
