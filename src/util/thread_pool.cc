#include "util/thread_pool.h"

namespace ngram {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = 1;
  }
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (auto& t : threads_) {
    t.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // Shutting down and drained.
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) {
        all_done_.notify_all();
      }
    }
  }
}

}  // namespace ngram
