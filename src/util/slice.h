// Slice: non-owning view over a byte range, RocksDB-style. Used pervasively
// by the shuffle layer so that serialized records can be compared and copied
// without deserialization or allocation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace ngram {

/// \brief A non-owning pointer+length view over bytes.
///
/// The referenced memory must outlive the Slice. Comparison is bytewise
/// (memcmp order), matching how raw shuffle keys compare by default.
class Slice {
 public:
  Slice() : data_(nullptr), size_(0) {}
  Slice(const char* data, size_t size) : data_(data), size_(size) {}
  Slice(const uint8_t* data, size_t size)
      : data_(reinterpret_cast<const char*>(data)), size_(size) {}
  Slice(const std::string& s) : data_(s.data()), size_(s.size()) {}  // NOLINT
  Slice(std::string_view s) : data_(s.data()), size_(s.size()) {}    // NOLINT
  Slice(const char* s) : data_(s), size_(s ? strlen(s) : 0) {}       // NOLINT

  const char* data() const { return data_; }
  const uint8_t* udata() const {
    return reinterpret_cast<const uint8_t*>(data_);
  }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  char operator[](size_t i) const { return data_[i]; }

  /// Drops the first `n` bytes from the view.
  void RemovePrefix(size_t n) {
    data_ += n;
    size_ -= n;
  }

  std::string ToString() const { return std::string(data_, size_); }
  std::string_view view() const { return std::string_view(data_, size_); }

  /// Three-way bytewise comparison (memcmp semantics).
  int compare(const Slice& other) const {
    const size_t min_len = size_ < other.size_ ? size_ : other.size_;
    int r = min_len == 0 ? 0 : memcmp(data_, other.data_, min_len);
    if (r == 0) {
      if (size_ < other.size_) return -1;
      if (size_ > other.size_) return +1;
    }
    return r;
  }

  bool starts_with(const Slice& prefix) const {
    // The zero-size guard keeps memcmp away from null data pointers
    // (empty slices may carry nullptr; passing that to memcmp is UB).
    return size_ >= prefix.size_ &&
           (prefix.size_ == 0 ||
            memcmp(data_, prefix.data_, prefix.size_) == 0);
  }

 private:
  const char* data_;
  size_t size_;
};

inline bool operator==(const Slice& a, const Slice& b) {
  return a.size() == b.size() &&
         (a.empty() || memcmp(a.data(), b.data(), a.size()) == 0);
}
inline bool operator!=(const Slice& a, const Slice& b) { return !(a == b); }
inline bool operator<(const Slice& a, const Slice& b) {
  return a.compare(b) < 0;
}

}  // namespace ngram
