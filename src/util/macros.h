// Common macros used across the library.
#pragma once

#define NGRAM_DISALLOW_COPY_AND_ASSIGN(TypeName) \
  TypeName(const TypeName&) = delete;            \
  TypeName& operator=(const TypeName&) = delete

#define NGRAM_PREDICT_FALSE(x) (__builtin_expect(!!(x), 0))
#define NGRAM_PREDICT_TRUE(x) (__builtin_expect(!!(x), 1))

/// Propagates a non-OK Status from an expression, RocksDB/Arrow style.
#define NGRAM_RETURN_NOT_OK(expr)              \
  do {                                         \
    ::ngram::Status _st = (expr);              \
    if (NGRAM_PREDICT_FALSE(!_st.ok())) {      \
      return _st;                              \
    }                                          \
  } while (false)

/// Assigns the value of a Result<T> expression to `lhs`, or propagates the
/// error Status.
#define NGRAM_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                \
  if (NGRAM_PREDICT_FALSE(!tmp.ok())) {              \
    return tmp.status();                             \
  }                                                  \
  lhs = std::move(tmp).ValueOrDie()

#define NGRAM_ASSIGN_OR_RETURN_CONCAT(x, y) x##y
#define NGRAM_ASSIGN_OR_RETURN_NAME(x, y) NGRAM_ASSIGN_OR_RETURN_CONCAT(x, y)

#define NGRAM_ASSIGN_OR_RETURN(lhs, rexpr) \
  NGRAM_ASSIGN_OR_RETURN_IMPL(             \
      NGRAM_ASSIGN_OR_RETURN_NAME(_result_tmp_, __LINE__), lhs, rexpr)
