// Common macros used across the library.
#pragma once

#define NGRAM_DISALLOW_COPY_AND_ASSIGN(TypeName) \
  TypeName(const TypeName&) = delete;            \
  TypeName& operator=(const TypeName&) = delete

#define NGRAM_PREDICT_FALSE(x) (__builtin_expect(!!(x), 0))
#define NGRAM_PREDICT_TRUE(x) (__builtin_expect(!!(x), 1))

/// Propagates a non-OK Status from an expression, RocksDB/Arrow style.
#define NGRAM_RETURN_NOT_OK(expr)              \
  do {                                         \
    ::ngram::Status _st = (expr);              \
    if (NGRAM_PREDICT_FALSE(!_st.ok())) {      \
      return _st;                              \
    }                                          \
  } while (false)

/// Assigns the value of a Result<T> expression to `lhs`, or propagates the
/// error Status.
#define NGRAM_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                \
  if (NGRAM_PREDICT_FALSE(!tmp.ok())) {              \
    return tmp.status();                             \
  }                                                  \
  lhs = std::move(tmp).ValueOrDie()

#define NGRAM_ASSIGN_OR_RETURN_CONCAT(x, y) x##y
#define NGRAM_ASSIGN_OR_RETURN_NAME(x, y) NGRAM_ASSIGN_OR_RETURN_CONCAT(x, y)

#define NGRAM_ASSIGN_OR_RETURN(lhs, rexpr) \
  NGRAM_ASSIGN_OR_RETURN_IMPL(             \
      NGRAM_ASSIGN_OR_RETURN_NAME(_result_tmp_, __LINE__), lhs, rexpr)

// ------------------------------------------------ thread-safety analysis --
// Annotations for clang's -Wthread-safety static analysis (no-ops on other
// compilers). Applied to every mutex-protected member and locking function
// in the library (util/mutex.h wraps std::mutex in an annotated capability);
// CI builds the full tree with clang -Wthread-safety -Werror, so a lock-
// discipline violation — touching a NGRAM_GUARDED_BY member without its
// mutex, calling a NGRAM_REQUIRES function unlocked — fails the build.
// See docs/architecture.md section 9 for conventions.

#if defined(__clang__)
#define NGRAM_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define NGRAM_THREAD_ANNOTATION(x)
#endif

/// Marks a class as a lockable capability (util/mutex.h's Mutex).
#define NGRAM_CAPABILITY(x) NGRAM_THREAD_ANNOTATION(capability(x))

/// Marks an RAII class whose constructor acquires and destructor releases
/// a capability (util/mutex.h's MutexLock).
#define NGRAM_SCOPED_CAPABILITY NGRAM_THREAD_ANNOTATION(scoped_lockable)

/// The member is protected by the given mutex: every read or write must
/// hold it.
#define NGRAM_GUARDED_BY(x) NGRAM_THREAD_ANNOTATION(guarded_by(x))

/// The pointee (not the pointer itself) is protected by the given mutex.
#define NGRAM_PT_GUARDED_BY(x) NGRAM_THREAD_ANNOTATION(pt_guarded_by(x))

/// The function may only be called with the listed mutexes held.
#define NGRAM_REQUIRES(...) \
  NGRAM_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// The function acquires the listed mutexes and does not release them.
#define NGRAM_ACQUIRE(...) \
  NGRAM_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// The function releases the listed mutexes (held on entry).
#define NGRAM_RELEASE(...) \
  NGRAM_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// The function must NOT be called with the listed mutexes held (it takes
/// them itself — the self-deadlock guard).
#define NGRAM_EXCLUDES(...) NGRAM_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Tells the analysis the capability is held at this point (a runtime
/// assertion hook for paths it cannot follow).
#define NGRAM_ASSERT_CAPABILITY(x) NGRAM_THREAD_ANNOTATION(assert_capability(x))

/// Escape hatch: disables the analysis for one function. Use only with a
/// comment explaining why the discipline holds anyway.
#define NGRAM_NO_THREAD_SAFETY_ANALYSIS \
  NGRAM_THREAD_ANNOTATION(no_thread_safety_analysis)
