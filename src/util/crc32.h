// Incremental CRC-32 (zlib polynomial, reflected) shared by every
// persisted byte path: run-file blocks, raw spill runs, and KV-store
// segment records all use this one routine, so a checksum written by any
// layer can be re-verified with the same call.
#pragma once

#include <cstddef>
#include <cstdint>

namespace ngram {

/// Extends the running CRC-32 `crc` (0 for a fresh stream) over
/// `data[0, n)` and returns the new value.
uint32_t Crc32(uint32_t crc, const char* data, size_t n);

}  // namespace ngram
