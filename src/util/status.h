// Status: error propagation without exceptions, in the style of
// RocksDB/Arrow. Library code returns Status (or Result<T>); it never throws.
#pragma once

#include <memory>
#include <string>
#include <utility>

namespace ngram {

/// Error categories used across the library.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kIOError = 2,
  kNotFound = 3,
  kCorruption = 4,
  kOutOfRange = 5,
  kAlreadyExists = 6,
  kResourceExhausted = 7,
  kInternal = 8,
  kCancelled = 9,
  kNotImplemented = 10,
};

/// Returns a short human-readable name for a StatusCode ("OK", "IOError"...).
const char* StatusCodeToString(StatusCode code);

/// \brief Result of a fallible operation: either OK or a code plus message.
///
/// The OK state carries no allocation; error states allocate a small state
/// object. Statuses are cheap to move and copy.
class [[nodiscard]] Status {
 public:
  Status() noexcept = default;  // OK.
  Status(StatusCode code, std::string msg);

  Status(const Status& other)
      : state_(other.state_ ? new State(*other.state_) : nullptr) {}
  Status& operator=(const Status& other) {
    if (this != &other) {
      state_.reset(other.state_ ? new State(*other.state_) : nullptr);
    }
    return *this;
  }
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsIOError() const { return code() == StatusCode::kIOError; }
  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsCorruption() const { return code() == StatusCode::kCorruption; }
  bool IsResourceExhausted() const {
    return code() == StatusCode::kResourceExhausted;
  }

  StatusCode code() const {
    return state_ == nullptr ? StatusCode::kOk : state_->code;
  }
  const std::string& message() const;

  /// Full "Code: message" rendering for logs and test failures.
  std::string ToString() const;

  /// Prefixes the message with additional context, keeping the code.
  Status WithContext(const std::string& context) const;

  /// Explicitly discards the status. The class is [[nodiscard]]; cleanup
  /// paths that genuinely do not care (e.g. best-effort unlinks of files
  /// that may already be gone) call this instead of silently dropping it.
  void IgnoreError() const {}

 private:
  struct State {
    StatusCode code;
    std::string msg;
  };
  std::unique_ptr<State> state_;  // nullptr means OK.
};

}  // namespace ngram
