// Log-bucketed 2-D histogram used to reproduce the paper's Figure 2
// ("number of n-grams per (log10 length, log10 cf) bucket").
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace ngram {

/// \brief Counts items in 2-D buckets of exponential width.
///
/// An item with coordinates (x, y) lands in bucket
/// (floor(log10 x), floor(log10 y)), exactly as in the paper: "the n-gram s
/// with collection frequency cf(s) goes into bucket (i, j) where
/// i = blog10 |s|c and j = blog10 cf(s)c".
class Log10Histogram2D {
 public:
  /// Adds `weight` items at coordinates (x, y); x and y must be >= 1.
  void Add(uint64_t x, uint64_t y, uint64_t weight = 1);

  /// Returns the count in bucket (i, j), 0 if absent.
  uint64_t BucketCount(int i, int j) const;

  /// Maximum bucket indices present (-1 when empty).
  int max_x_bucket() const { return max_x_; }
  int max_y_bucket() const { return max_y_; }

  uint64_t total() const { return total_; }

  /// Renders the histogram as an aligned text matrix (rows = y buckets
  /// descending, columns = x buckets ascending) for console output.
  std::string ToTable(const std::string& x_label,
                      const std::string& y_label) const;

  /// Flat (i, j, count) listing, sorted by (i, j).
  std::vector<std::pair<std::pair<int, int>, uint64_t>> Buckets() const;

 private:
  static int Log10Bucket(uint64_t v);

  std::map<std::pair<int, int>, uint64_t> buckets_;
  int max_x_ = -1;
  int max_y_ = -1;
  uint64_t total_ = 0;
};

}  // namespace ngram
