// RAII temporary directory for shuffle spill files and KV store segments.
#pragma once

#include <filesystem>
#include <string>

#include "util/macros.h"
#include "util/result.h"

namespace ngram {

/// \brief Creates a unique directory under the system temp path and removes
/// it (recursively) on destruction.
class TempDir {
 public:
  /// Creates a fresh directory whose name starts with `prefix`.
  static Result<TempDir> Create(const std::string& prefix);

  TempDir(TempDir&& other) noexcept : path_(std::move(other.path_)) {
    other.path_.clear();
  }
  TempDir& operator=(TempDir&& other) noexcept {
    if (this != &other) {
      Remove();
      path_ = std::move(other.path_);
      other.path_.clear();
    }
    return *this;
  }
  ~TempDir() { Remove(); }

  NGRAM_DISALLOW_COPY_AND_ASSIGN(TempDir);

  const std::filesystem::path& path() const { return path_; }

  /// Returns `path()/name` as a string.
  std::string File(const std::string& name) const {
    return (path_ / name).string();
  }

 private:
  explicit TempDir(std::filesystem::path path) : path_(std::move(path)) {}
  void Remove();

  std::filesystem::path path_;
};

}  // namespace ngram
