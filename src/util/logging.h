// Minimal leveled logger. Thread-safe; writes to stderr. Level is settable
// globally so benchmarks can silence job chatter.
#pragma once

#include <sstream>
#include <string>

#include "util/macros.h"

namespace ngram {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kOff = 4,
};

/// Sets the global minimum level that is actually emitted.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Accumulates one log line and flushes it (with timestamp, level, and
/// source location) on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

/// Discards everything streamed into it; used when a level is disabled.
class NullLogMessage {
 public:
  template <typename T>
  NullLogMessage& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal

#define NGRAM_LOG_ENABLED(level) (::ngram::GetLogLevel() <= (level))

#define NGRAM_LOG(level)                                      \
  if (!NGRAM_LOG_ENABLED(::ngram::LogLevel::level)) {         \
  } else                                                      \
    ::ngram::internal::LogMessage(::ngram::LogLevel::level, __FILE__, __LINE__)

#define NGRAM_LOG_DEBUG NGRAM_LOG(kDebug)
#define NGRAM_LOG_INFO NGRAM_LOG(kInfo)
#define NGRAM_LOG_WARN NGRAM_LOG(kWarning)
#define NGRAM_LOG_ERROR NGRAM_LOG(kError)

/// Fatal check: always on, aborts with a message on failure.
#define NGRAM_CHECK(cond)                                              \
  if (NGRAM_PREDICT_TRUE(cond)) {                                      \
  } else                                                               \
    ::ngram::internal::FatalMessage(__FILE__, __LINE__, #cond)

namespace internal {

class FatalMessage {
 public:
  FatalMessage(const char* file, int line, const char* condition);
  [[noreturn]] ~FatalMessage();

  template <typename T>
  FatalMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace ngram
