#include "util/crc32.h"

#include <cstring>

namespace ngram {

namespace {

/// Lazily built tables for the zlib CRC-32 polynomial (reflected),
/// slicing-by-8: table[0] is the classic byte-at-a-time table; table[k]
/// advances a byte through k additional zero bytes, letting the hot loop
/// fold 8 input bytes per iteration instead of one table lookup per byte
/// (~5x faster on the spill/merge read-and-write paths, where the CRC
/// runs over every persisted byte).
const uint32_t (*Crc32Tables())[256] {
  static const uint32_t(*tables)[256] = [] {
    static uint32_t t[8][256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      }
      t[0][i] = c;
    }
    for (int k = 1; k < 8; ++k) {
      for (uint32_t i = 0; i < 256; ++i) {
        t[k][i] = (t[k - 1][i] >> 8) ^ t[0][t[k - 1][i] & 0xffu];
      }
    }
    return t;
  }();
  return tables;
}

}  // namespace

uint32_t Crc32(uint32_t crc, const char* data, size_t n) {
  const uint32_t(*t)[256] = Crc32Tables();
  uint32_t c = crc ^ 0xffffffffu;
  const uint8_t* p = reinterpret_cast<const uint8_t*>(data);

#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
  while (n >= 8) {
    uint32_t lo;
    uint32_t hi;
    memcpy(&lo, p, 4);
    memcpy(&hi, p + 4, 4);
    c ^= lo;
    c = t[7][c & 0xffu] ^ t[6][(c >> 8) & 0xffu] ^ t[5][(c >> 16) & 0xffu] ^
        t[4][c >> 24] ^ t[3][hi & 0xffu] ^ t[2][(hi >> 8) & 0xffu] ^
        t[1][(hi >> 16) & 0xffu] ^ t[0][hi >> 24];
    p += 8;
    n -= 8;
  }
#endif
  for (size_t i = 0; i < n; ++i) {
    c = t[0][(c ^ p[i]) & 0xffu] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

}  // namespace ngram
