// Annotated mutex primitives: std::mutex / std::condition_variable wrapped
// in clang thread-safety capabilities (LevelDB port style), so the lock
// discipline of every concurrent subsystem — thread pool, block cache,
// shuffle registry, counters — is machine-checked by -Wthread-safety in CI
// instead of documented in prose.
//
// Conventions (docs/architecture.md section 9):
//   * Members a mutex protects carry NGRAM_GUARDED_BY(mu_).
//   * Functions that must be entered with the lock held carry
//     NGRAM_REQUIRES(mu_); public functions that take the lock themselves
//     carry NGRAM_EXCLUDES(mu_) where self-deadlock is plausible.
//   * Scoped locking goes through MutexLock. Condition waits use explicit
//     `while (!cond) cv.Wait();` loops rather than predicate lambdas: the
//     analysis cannot see that a lambda body runs under the caller's lock,
//     so guarded reads inside a predicate would false-positive.
//   * CondVar::Wait is deliberately unannotated (it releases and reacquires
//     the mutex internally; callers hold the lock across the call, which is
//     exactly what the analysis assumes).
#pragma once

#include <condition_variable>
#include <mutex>

#include "util/macros.h"

namespace ngram {

/// \brief A std::mutex annotated as a thread-safety capability.
class NGRAM_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  NGRAM_DISALLOW_COPY_AND_ASSIGN(Mutex);

  void Lock() NGRAM_ACQUIRE() { mu_.lock(); }
  void Unlock() NGRAM_RELEASE() { mu_.unlock(); }

  /// Declares (to the analysis) that the lock is held at this point —
  /// for paths the analysis cannot follow. No runtime effect.
  void AssertHeld() NGRAM_ASSERT_CAPABILITY(this) {}

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// \brief RAII lock over a Mutex, visible to the analysis as a scoped
/// capability (the annotated replacement for std::lock_guard).
class NGRAM_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) NGRAM_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() NGRAM_RELEASE() { mu_->Unlock(); }
  NGRAM_DISALLOW_COPY_AND_ASSIGN(MutexLock);

 private:
  Mutex* const mu_;
};

/// \brief Condition variable bound to one Mutex at construction.
///
/// Wait() must be called with the mutex held; it releases it while
/// blocked and reacquires before returning (std::condition_variable
/// semantics through the adopt/release dance).
class CondVar {
 public:
  explicit CondVar(Mutex* mu) : mu_(mu) {}
  NGRAM_DISALLOW_COPY_AND_ASSIGN(CondVar);

  void Wait() {
    std::unique_lock<std::mutex> lock(mu_->mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  void Signal() { cv_.notify_one(); }
  void SignalAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
  Mutex* const mu_;
};

}  // namespace ngram
