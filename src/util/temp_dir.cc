#include "util/temp_dir.h"

#include <atomic>
#include <cstdint>
#include <random>
#include <system_error>

namespace ngram {

namespace {
std::atomic<uint64_t> g_tempdir_counter{0};
}  // namespace

Result<TempDir> TempDir::Create(const std::string& prefix) {
  std::error_code ec;
  const std::filesystem::path base = std::filesystem::temp_directory_path(ec);
  if (ec) {
    return Status::IOError("cannot resolve temp directory: " + ec.message());
  }
  std::random_device rd;
  for (int attempt = 0; attempt < 16; ++attempt) {
    const uint64_t token =
        (static_cast<uint64_t>(rd()) << 20) ^
        g_tempdir_counter.fetch_add(1, std::memory_order_relaxed);
    const std::filesystem::path candidate =
        base / (prefix + "-" + std::to_string(token));
    if (std::filesystem::create_directory(candidate, ec)) {
      return TempDir(candidate);
    }
  }
  return Status::IOError("failed to create unique temp directory under " +
                         base.string());
}

void TempDir::Remove() {
  if (!path_.empty()) {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);  // Best effort.
    path_.clear();
  }
}

}  // namespace ngram
