// Result<T>: a value or an error Status (Arrow-style).
#pragma once

#include <cassert>
#include <optional>
#include <utility>

#include "util/status.h"

namespace ngram {

/// \brief Holds either a value of type T or an error Status.
///
/// Use with NGRAM_ASSIGN_OR_RETURN for terse propagation. Accessing the
/// value of an errored Result aborts in debug builds.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Constructs an OK result holding `value`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs an errored result. `status` must not be OK.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok());
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& ValueOrDie() const& {
    assert(ok());
    return *value_;
  }
  T& ValueOrDie() & {
    assert(ok());
    return *value_;
  }
  T ValueOrDie() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ holds.
};

}  // namespace ngram
