// Fixed-size thread pool with a bounded notion of "slots", used by the
// MapReduce runtime to emulate Hadoop's map/reduce slot scheduling.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/macros.h"

namespace ngram {

/// \brief Executes submitted tasks on up to `num_threads` worker threads.
///
/// Tasks are run FIFO. Wait() blocks until every submitted task has
/// completed, enabling barrier-style phase execution (all map tasks, then
/// all reduce tasks).
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  NGRAM_DISALLOW_COPY_AND_ASSIGN(ThreadPool);

  /// Enqueues a task for execution.
  void Submit(std::function<void()> task);

  /// Blocks until all previously submitted tasks have finished.
  void Wait();

  size_t num_threads() const { return threads_.size(); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> threads_;
  size_t in_flight_ = 0;
  bool shutting_down_ = false;
};

}  // namespace ngram
