// Fixed-size thread pool with a bounded notion of "slots", used by the
// MapReduce runtime to emulate Hadoop's map/reduce slot scheduling.
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "util/macros.h"
#include "util/mutex.h"

namespace ngram {

/// \brief Executes submitted tasks on up to `num_threads` worker threads.
///
/// Tasks are run FIFO. Wait() blocks until every submitted task has
/// completed, enabling barrier-style phase execution (all map tasks, then
/// all reduce tasks).
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  NGRAM_DISALLOW_COPY_AND_ASSIGN(ThreadPool);

  /// Enqueues a task for execution.
  void Submit(std::function<void()> task) NGRAM_EXCLUDES(mu_);

  /// Blocks until all previously submitted tasks have finished.
  void Wait() NGRAM_EXCLUDES(mu_);

  size_t num_threads() const { return threads_.size(); }

 private:
  void WorkerLoop() NGRAM_EXCLUDES(mu_);

  Mutex mu_;
  CondVar work_available_{&mu_};
  CondVar all_done_{&mu_};
  std::deque<std::function<void()>> queue_ NGRAM_GUARDED_BY(mu_);
  /// Immutable after construction (safe to read unlocked).
  std::vector<std::thread> threads_;
  size_t in_flight_ NGRAM_GUARDED_BY(mu_) = 0;
  bool shutting_down_ NGRAM_GUARDED_BY(mu_) = false;
};

}  // namespace ngram
