// Section VI-B extension: n-gram time series. Measures SUFFIX-sigma's
// time-series aggregation on the timestamped NYT-like corpus and contrasts
// its shuffle volume with the NAIVE-style alternative the paper argues
// against (metadata per contained n-gram instead of per suffix).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.h"
#include "core/suffix_timeseries.h"

namespace ngram::bench {
namespace {

void BM_SuffixSigmaTimeSeries(::benchmark::State& state, uint64_t tau,
                              uint32_t sigma) {
  const CorpusContext& ctx = NytContext();
  NgramJobOptions options = BenchOptions(Method::kSuffixSigma, tau, sigma);
  for (auto _ : state) {
    auto run = RunSuffixSigmaTimeSeries(ctx, options);
    if (!run.ok()) {
      state.SkipWithError(run.status().ToString().c_str());
      return;
    }
    state.SetIterationTime(run->metrics.total_wallclock_ms() / 1000.0);
    state.counters["series"] = static_cast<double>(run->series.size());
    state.counters["records"] =
        static_cast<double>(run->metrics.map_output_records());
    state.counters["bytes"] =
        static_cast<double>(run->metrics.map_output_bytes());
  }
}

/// The plain-counting run, as the baseline for the metadata overhead: the
/// time-series run ships (doc id, year) per *suffix*; a NAIVE extension
/// would ship it once per contained n-gram — records = sum cf(s), i.e. the
/// NAIVE record counter, reported for contrast.
void BM_PlainCountsBaseline(::benchmark::State& state, uint64_t tau,
                            uint32_t sigma) {
  RunAndReport(state, NytContext(),
               BenchOptions(Method::kSuffixSigma, tau, sigma));
}

void BM_NaiveRecordVolume(::benchmark::State& state, uint64_t tau,
                          uint32_t sigma) {
  NgramJobOptions options = BenchOptions(Method::kNaive, tau, sigma);
  options.use_combiner = false;  // Metadata cannot be pre-aggregated.
  RunAndReport(state, NytContext(), options);
}

}  // namespace
}  // namespace ngram::bench

int main(int argc, char** argv) {
  using namespace ngram::bench;
  ::benchmark::Initialize(&argc, argv);

  for (uint32_t sigma : {3u, 5u}) {
    const std::string suffix = "/tau=25/sigma=" + std::to_string(sigma);
    ::benchmark::RegisterBenchmark(
        ("ExtTimeSeries/SuffixSigma" + suffix).c_str(),
        [sigma](::benchmark::State& s) {
          BM_SuffixSigmaTimeSeries(s, 25, sigma);
        })
        ->UseManualTime()->Iterations(1)->Unit(::benchmark::kMillisecond);
    ::benchmark::RegisterBenchmark(
        ("ExtTimeSeries/PlainCounts" + suffix).c_str(),
        [sigma](::benchmark::State& s) {
          BM_PlainCountsBaseline(s, 25, sigma);
        })
        ->UseManualTime()->Iterations(1)->Unit(::benchmark::kMillisecond);
    ::benchmark::RegisterBenchmark(
        ("ExtTimeSeries/NaivePerNgramMetadata" + suffix).c_str(),
        [sigma](::benchmark::State& s) {
          BM_NaiveRecordVolume(s, 25, sigma);
        })
        ->UseManualTime()->Iterations(1)->Unit(::benchmark::kMillisecond);
  }

  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
