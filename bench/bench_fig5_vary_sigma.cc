// Figure 5 reproduction: varying the maximum length sigma in {5, 10, 50,
// 100} at fixed tau (paper: NYT 100 / CW 1000, scaled here).
//
// Expected shape (paper): the APRIORI methods launch one job per length,
// so wallclock keeps growing with sigma; NAIVE and SUFFIX-sigma saturate
// because only input fragments longer than sigma add work. SUFFIX-sigma's
// *record* count is exactly constant across sigma (one record per term
// occurrence); only its bytes saturate.
#include <benchmark/benchmark.h>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace ngram::bench;
  ::benchmark::Initialize(&argc, argv);

  for (uint32_t sigma : {5, 10, 50, 100}) {
    RegisterMethodSweep(
        "Fig5/NYT/tau=10/sigma=" + std::to_string(sigma), Nyt(),
        Nyt().default_tau, sigma);
  }
  for (uint32_t sigma : {5, 10, 50, 100}) {
    RegisterMethodSweep("Fig5/CW/tau=20/sigma=" + std::to_string(sigma),
                        Cw(), Cw().default_tau, sigma);
  }

  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
