// Figure 2 reproduction: output characteristics — the number of n-grams
// per (log10 length, log10 collection frequency) bucket with tau = 5 and
// sigma = infinity, for both datasets. Computed with SUFFIX-sigma (the
// paper's closing remark: it handled exactly this setting on the full
// datasets). The benchmark times the unbounded-sigma run.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.h"

namespace ngram::bench {
namespace {

void PrintFig2(const char* name, const CorpusContext& ctx) {
  NgramJobOptions options =
      BenchOptions(Method::kSuffixSigma, /*tau=*/5, /*sigma=*/0);
  auto run = ComputeNgramStatistics(ctx, options);
  if (!run.ok()) {
    fprintf(stderr, "fig2 run failed: %s\n",
            run.status().ToString().c_str());
    return;
  }
  const Log10Histogram2D hist = run->stats.OutputCharacteristics();
  printf("\n====== FIGURE 2 (%s): # n-grams with cf >= 5 per bucket ======\n",
         name);
  printf("bucket (i, j): n-gram length in [10^i, 10^(i+1)), cf in "
         "[10^j, 10^(j+1))\n\n");
  printf("%s\n", hist.ToTable("length", "cf").c_str());
  printf("total n-grams: %llu; longest: %u terms\n",
         static_cast<unsigned long long>(hist.total()),
         run->stats.MaxLength());
  printf("(paper: distribution biased toward short, less frequent n-grams;\n"
         " long n-grams of 100+ terms with cf >= 10 exist in both "
         "datasets)\n");
}

void BM_SuffixSigmaUnboundedSigma(::benchmark::State& state,
                                  const CorpusContext& ctx) {
  RunAndReport(state, ctx, BenchOptions(Method::kSuffixSigma, 5, 0));
}

}  // namespace
}  // namespace ngram::bench

int main(int argc, char** argv) {
  using namespace ngram::bench;
  ::benchmark::Initialize(&argc, argv);
  PrintFig2("NYT-like", NytContext());
  PrintFig2("CW-like", CwContext());
  ::benchmark::RegisterBenchmark(
      "Fig2/NYT/SuffixSigma/tau=5/sigma=inf",
      [](::benchmark::State& state) {
        BM_SuffixSigmaUnboundedSigma(state, NytContext());
      })
      ->UseManualTime()
      ->Iterations(1)
      ->Unit(::benchmark::kMillisecond);
  ::benchmark::RegisterBenchmark(
      "Fig2/CW/SuffixSigma/tau=5/sigma=inf",
      [](::benchmark::State& state) {
        BM_SuffixSigmaUnboundedSigma(state, CwContext());
      })
      ->UseManualTime()
      ->Iterations(1)
      ->Unit(::benchmark::kMillisecond);
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
