// Job-boundary cost of chained pipelines (the serialized dataset layer).
//
// Measures the two multi-job paths end-to-end with the paper's problem
// parameters — APRIORI-SCAN (one job per n-gram length up to sigma) and
// the maximality post-filter (SUFFIX-sigma + reversed suffix filter) —
// and reports the per-round boundary traffic (MAP_INPUT_BYTES: the
// serialized bytes each round's mappers read, which for round k+1 is
// exactly round k's output) alongside shuffle bytes and wallclock. These
// are the numbers BENCH_pipeline.json tracks across refactors of the job
// boundary.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.h"
#include "core/apriori_scan.h"
#include "core/maximality.h"
#include "util/stopwatch.h"

namespace ngram::bench {
namespace {

/// `elapsed_ms` is the method call's true wallclock; the jobs' own
/// wallclocks sum to `jobs_ms`, so `boundary_ms` — everything that
/// happens *between* jobs (dictionary builds, dataset hand-off, the
/// final stats drain) — is their difference. The benchmark time is the
/// true end-to-end, not the job sum.
void ReportPipeline(::benchmark::State& state, double elapsed_ms,
                    const mr::RunMetrics& metrics, uint64_t ngrams) {
  const mr::PipelineMetrics pipeline = metrics.pipeline();
  const double jobs_ms = metrics.total_wallclock_ms();
  state.SetIterationTime(elapsed_ms / 1000.0);
  state.counters["jobs_ms"] = jobs_ms;
  state.counters["boundary_ms"] = elapsed_ms - jobs_ms;
  state.counters["rounds"] = pipeline.num_rounds();
  state.counters["boundary_bytes"] =
      static_cast<double>(pipeline.total_boundary_bytes());
  state.counters["shuffle_bytes"] =
      static_cast<double>(pipeline.total_shuffle_bytes());
  state.counters["map_ms"] = metrics.total_map_phase_ms();
  state.counters["reduce_ms"] = metrics.total_reduce_phase_ms();
  state.counters["ngrams"] = static_cast<double>(ngrams);
}

void BM_AprioriScanPipeline(::benchmark::State& state,
                            const CorpusContext& ctx, uint64_t tau,
                            uint32_t sigma) {
  NgramJobOptions options = BenchOptions(Method::kAprioriScan, tau, sigma);
  for (auto _ : state) {
    Stopwatch clock;
    auto run = RunAprioriScan(ctx, options);
    const double elapsed_ms = clock.ElapsedMillis();
    if (!run.ok()) {
      state.SkipWithError(run.status().ToString().c_str());
      return;
    }
    ReportPipeline(state, elapsed_ms, run->metrics, run->stats.size());
  }
}

void BM_MaximalityPipeline(::benchmark::State& state,
                           const CorpusContext& ctx, uint64_t tau,
                           uint32_t sigma) {
  NgramJobOptions options = BenchOptions(Method::kSuffixSigma, tau, sigma);
  for (auto _ : state) {
    Stopwatch clock;
    auto run = RunSuffixSigmaMaximal(ctx, options);
    const double elapsed_ms = clock.ElapsedMillis();
    if (!run.ok()) {
      state.SkipWithError(run.status().ToString().c_str());
      return;
    }
    ReportPipeline(state, elapsed_ms, run->metrics, run->stats.size());
  }
}

}  // namespace
}  // namespace ngram::bench

int main(int argc, char** argv) {
  using namespace ngram::bench;
  ::benchmark::Initialize(&argc, argv);

  for (const auto* d : {&Nyt(), &Cw()}) {
    ::benchmark::RegisterBenchmark(
        (std::string("Pipeline/") + d->name + "/AprioriScan/sigma=5").c_str(),
        [d](::benchmark::State& s) {
          BM_AprioriScanPipeline(s, d->context(), d->default_tau, 5);
        })
        ->UseManualTime()
        ->Iterations(1)
        ->Unit(::benchmark::kMillisecond);
    ::benchmark::RegisterBenchmark(
        (std::string("Pipeline/") + d->name + "/SuffixMaximal/sigma=5")
            .c_str(),
        [d](::benchmark::State& s) {
          BM_MaximalityPipeline(s, d->context(), d->default_tau, 5);
        })
        ->UseManualTime()
        ->Iterations(1)
        ->Unit(::benchmark::kMillisecond);
  }

  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
