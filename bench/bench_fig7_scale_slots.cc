// Figure 7 reproduction: scaling computational resources — the paper
// varies map/reduce slots (16/32/48/64) on 50% samples with the machine
// count fixed; here slots are worker threads (1/2/4/8) on one machine,
// which reproduces the same effect: all methods speed up with diminishing
// returns as parallel workers contend for shared resources (disks, memory
// bandwidth).
#include <benchmark/benchmark.h>

#include <map>
#include <memory>

#include "bench_common.h"

namespace ngram::bench {
namespace {

const CorpusContext& HalfContext(const Dataset& dataset) {
  static std::map<std::string, std::unique_ptr<CorpusContext>> cache;
  auto it = cache.find(dataset.name);
  if (it == cache.end()) {
    auto ctx = std::make_unique<CorpusContext>(
        BuildCorpusContext(dataset.corpus().Sample(50, /*seed=*/4711)));
    it = cache.emplace(dataset.name, std::move(ctx)).first;
  }
  return *it->second;
}

void RegisterSlotSweep(const Dataset& dataset) {
  const Method methods[] = {Method::kNaive, Method::kAprioriScan,
                            Method::kAprioriIndex, Method::kSuffixSigma};
  for (uint32_t slots : {1, 2, 4, 8}) {
    for (Method method : methods) {
      const std::string name = std::string("Fig7/") + dataset.name +
                               "/slots=" + std::to_string(slots) + "/" +
                               MethodName(method);
      ::benchmark::RegisterBenchmark(
          name.c_str(),
          [&dataset, slots, method](::benchmark::State& state) {
            NgramJobOptions options =
                BenchOptions(method, dataset.default_tau, 5);
            options.map_slots = slots;
            options.reduce_slots = slots;
            RunAndReport(state, HalfContext(dataset), options);
          })
          ->UseManualTime()
          ->Iterations(1)
          ->Unit(::benchmark::kMillisecond);
    }
  }
}

}  // namespace
}  // namespace ngram::bench

int main(int argc, char** argv) {
  using namespace ngram::bench;
  ::benchmark::Initialize(&argc, argv);
  RegisterSlotSweep(Nyt());
  RegisterSlotSweep(Cw());
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
