// Figure 3 reproduction: wallclock times for the two typical use cases.
//  (a) Training a language model: sigma = 5 with a low minimum collection
//      frequency (paper: NYT tau=10 / CW tau=100).
//  (b) Text analytics: sigma = 100 with a higher minimum collection
//      frequency (paper: NYT tau=100 / CW tau=1000).
// The paper reports SUFFIX-sigma winning by ~3x on (a) and up to 12x on
// (b); the expectation here is the same ordering at mini-corpus scale.
// tau values are scaled to the mini corpora (~1/700th of NYT).
#include <benchmark/benchmark.h>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace ngram::bench;
  ::benchmark::Initialize(&argc, argv);

  // (a) Language model: sigma = 5, low tau.
  RegisterMethodSweep("Fig3a/LanguageModel/NYT/sigma=5/tau=5", Nyt(),
                      /*tau=*/5, /*sigma=*/5);
  RegisterMethodSweep("Fig3a/LanguageModel/CW/sigma=5/tau=10", Cw(),
                      /*tau=*/10, /*sigma=*/5);

  // (b) Text analytics: sigma = 100, higher tau.
  RegisterMethodSweep("Fig3b/Analytics/NYT/sigma=100/tau=10", Nyt(),
                      /*tau=*/10, /*sigma=*/100);
  RegisterMethodSweep("Fig3b/Analytics/CW/sigma=100/tau=20", Cw(),
                      /*tau=*/20, /*sigma=*/100);

  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
