// Ablations of the Section V implementation techniques, each an explicit
// design choice called out in DESIGN.md:
//   - document splitting at infrequent terms (on/off, all methods),
//   - combiner local aggregation (on/off, NAIVE and APRIORI-SCAN),
//   - APRIORI-INDEX's K boundary (the paper calibrated K = 4).
#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace ngram::bench {
namespace {

void RegisterOption(const std::string& name, const CorpusContext& ctx,
                    const NgramJobOptions& options) {
  ::benchmark::RegisterBenchmark(
      name.c_str(),
      [&ctx, options](::benchmark::State& state) {
        RunAndReport(state, ctx, options);
      })
      ->UseManualTime()
      ->Iterations(1)
      ->Unit(::benchmark::kMillisecond);
}

}  // namespace
}  // namespace ngram::bench

int main(int argc, char** argv) {
  using namespace ngram::bench;
  using ngram::Method;
  using ngram::MethodName;
  using ngram::NgramJobOptions;
  ::benchmark::Initialize(&argc, argv);

  // --- Document splits on/off (sigma high so splitting matters most). ---
  const ngram::Method all_methods[] = {
      Method::kNaive, Method::kAprioriScan, Method::kAprioriIndex,
      Method::kSuffixSigma};
  for (Method method : all_methods) {
    for (bool splits : {true, false}) {
      NgramJobOptions options =
          BenchOptions(method, Nyt().default_tau, /*sigma=*/20);
      options.document_splits = splits;
      RegisterOption(std::string("Ablation/DocSplits/NYT/sigma=20/") +
                         MethodName(method) + "/" +
                         (splits ? "on" : "off"),
                     NytContext(), options);
    }
  }

  // --- Combiner on/off. ---
  for (Method method : {Method::kNaive, Method::kAprioriScan}) {
    for (bool combiner : {true, false}) {
      NgramJobOptions options =
          BenchOptions(method, Nyt().default_tau, /*sigma=*/5);
      options.use_combiner = combiner;
      RegisterOption(std::string("Ablation/Combiner/NYT/sigma=5/") +
                         MethodName(method) + "/" +
                         (combiner ? "on" : "off"),
                     NytContext(), options);
    }
  }

  // --- APRIORI-INDEX K calibration (paper: K = 4 best). K = 1 is
  // excluded here: it joins every pair on a single empty-key reducer and
  // takes minutes even at mini scale (covered by tests instead). ---
  for (uint32_t k : {2, 3, 4, 5, 6}) {
    NgramJobOptions options =
        BenchOptions(Method::kAprioriIndex, Nyt().default_tau, /*sigma=*/8);
    options.apriori_index_k = k;
    RegisterOption("Ablation/AprioriIndexK/NYT/sigma=8/K=" +
                       std::to_string(k),
                   NytContext(), options);
  }

  // --- SUFFIX-sigma aggregation: two stacks vs the Section IV hashmap
  // strawman (watch wallclock and BOOKKEEPING_PEAK_ENTRIES). ---
  for (ngram::SuffixAggregation agg :
       {ngram::SuffixAggregation::kStacks,
        ngram::SuffixAggregation::kHashMap}) {
    NgramJobOptions options =
        BenchOptions(Method::kSuffixSigma, /*tau=*/5, /*sigma=*/10);
    options.suffix_aggregation = agg;
    const bool stacks = agg == ngram::SuffixAggregation::kStacks;
    ::benchmark::RegisterBenchmark(
        (std::string("Ablation/SuffixAggregation/NYT/sigma=10/") +
         (stacks ? "stacks" : "hashmap"))
            .c_str(),
        [options](::benchmark::State& state) {
          const ngram::CorpusContext& ctx = NytContext();
          for (auto _ : state) {
            auto run = ComputeNgramStatistics(ctx, options);
            if (!run.ok()) {
              state.SkipWithError(run.status().ToString().c_str());
              return;
            }
            state.SetIterationTime(run->metrics.total_wallclock_ms() /
                                   1000.0);
            state.counters["peak_entries"] = static_cast<double>(
                run->metrics.TotalCounter(
                    ngram::mr::kBookkeepingPeakEntries));
            state.counters["ngrams"] =
                static_cast<double>(run->stats.size());
          }
        })
        ->UseManualTime()
        ->Iterations(1)
        ->Unit(::benchmark::kMillisecond);
  }

  // --- Sort-buffer size (spill pressure). ---
  for (size_t mb : {1, 8, 64}) {
    NgramJobOptions options =
        BenchOptions(Method::kSuffixSigma, Nyt().default_tau, /*sigma=*/5);
    options.sort_buffer_bytes = mb << 20;
    RegisterOption("Ablation/SortBuffer/NYT/SuffixSigma/mb=" +
                       std::to_string(mb),
                   NytContext(), options);
  }

  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
