// Shared infrastructure for the figure/table reproduction benchmarks.
//
// Corpora are scaled-down versions of the paper's datasets (see DESIGN.md
// section 2); sizes and runtime knobs are overridable via environment
// variables so the suite runs in minutes on a laptop yet can be scaled up:
//
//   NGRAM_BENCH_NYT_DOCS         documents in the NYT-like corpus (default 1500)
//   NGRAM_BENCH_CW_DOCS          documents in the CW-like corpus  (default 2000)
//   NGRAM_BENCH_SLOTS            map/reduce slots                (default 4)
//   NGRAM_BENCH_REDUCERS         reduce tasks                    (default 8)
//   NGRAM_BENCH_JOB_OVERHEAD_MS  modelled per-job Hadoop admin
//                                cost added to wallclock         (default 250)
//
// Every method run reports the paper's three measures as benchmark
// counters: wallclock (the benchmark time itself), bytes (MAP_OUTPUT_BYTES)
// and records (MAP_OUTPUT_RECORDS), plus jobs and output size.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdlib>
#include <string>

#include "core/runner.h"
#include "corpus/synthetic.h"

namespace ngram::bench {

struct BenchEnv {
  uint64_t nyt_docs = 1500;
  uint64_t cw_docs = 2000;
  uint32_t slots = 4;
  uint32_t reducers = 8;
  double job_overhead_ms = 250.0;

  static const BenchEnv& Get();
};

/// Lazily generated, cached corpora and contexts.
const Corpus& NytCorpus();
const Corpus& CwCorpus();
const CorpusContext& NytContext();
const CorpusContext& CwContext();

/// Dataset handle used by the sweep benchmarks.
struct Dataset {
  const char* name;
  const CorpusContext& (*context)();
  const Corpus& (*corpus)();
  /// tau used by the paper for this dataset in sigma sweeps, scaled down.
  uint64_t default_tau;
};

const Dataset& Nyt();
const Dataset& Cw();

/// Baseline options for benchmark runs.
NgramJobOptions BenchOptions(Method method, uint64_t tau, uint32_t sigma);

/// Executes one method run, feeds the modelled wallclock to the benchmark
/// via manual time, and attaches the paper's counters. Benchmarks using
/// this must set ->UseManualTime()->Iterations(1).
void RunAndReport(::benchmark::State& state, const CorpusContext& ctx,
                  const NgramJobOptions& options);

/// Registers "name/method" for every method with RunAndReport semantics.
void RegisterMethodSweep(const std::string& prefix, const Dataset& dataset,
                         uint64_t tau, uint32_t sigma);

}  // namespace ngram::bench
