// Section VI-A extension: maximal and closed n-grams. Measures the 2-job
// pipeline (SUFFIX-sigma with prefix filtering + the reversed post-filter)
// and reports the output-size reduction versus the full result — the
// extension's purpose ("can drastically reduce the amount of n-gram
// statistics computed").
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.h"
#include "core/maximality.h"

namespace ngram::bench {
namespace {

void PrintReductionReport(const char* name, const CorpusContext& ctx,
                          uint64_t tau, uint32_t sigma) {
  NgramJobOptions options = BenchOptions(Method::kSuffixSigma, tau, sigma);
  auto all = ComputeNgramStatistics(ctx, options);
  auto closed = RunSuffixSigmaClosed(ctx, options);
  auto maximal = RunSuffixSigmaMaximal(ctx, options);
  if (!all.ok() || !closed.ok() || !maximal.ok()) {
    fprintf(stderr, "maximality report failed\n");
    return;
  }
  printf("\n--- Output-size reduction (%s, tau=%llu, sigma=%u) ---\n", name,
         static_cast<unsigned long long>(tau), sigma);
  printf("  all frequent n-grams : %10llu\n",
         static_cast<unsigned long long>(all->stats.size()));
  printf("  closed               : %10llu  (%.1f%% of all)\n",
         static_cast<unsigned long long>(closed->stats.size()),
         100.0 * closed->stats.size() / all->stats.size());
  printf("  maximal              : %10llu  (%.1f%% of all)\n",
         static_cast<unsigned long long>(maximal->stats.size()),
         100.0 * maximal->stats.size() / all->stats.size());
}

template <typename Fn>
void RegisterPipeline(const std::string& name, const CorpusContext& ctx,
                      uint64_t tau, uint32_t sigma, Fn runner) {
  ::benchmark::RegisterBenchmark(
      name.c_str(),
      [&ctx, tau, sigma, runner](::benchmark::State& state) {
        NgramJobOptions options =
            BenchOptions(Method::kSuffixSigma, tau, sigma);
        for (auto _ : state) {
          auto run = runner(ctx, options);
          if (!run.ok()) {
            state.SkipWithError(run.status().ToString().c_str());
            return;
          }
          state.SetIterationTime(run->metrics.total_wallclock_ms() / 1000.0);
          state.counters["ngrams"] =
              static_cast<double>(run->stats.size());
          state.counters["jobs"] = run->metrics.num_jobs();
          state.counters["records"] =
              static_cast<double>(run->metrics.map_output_records());
        }
      })
      ->UseManualTime()
      ->Iterations(1)
      ->Unit(::benchmark::kMillisecond);
}

}  // namespace
}  // namespace ngram::bench

int main(int argc, char** argv) {
  using namespace ngram::bench;
  using ngram::ComputeNgramStatistics;
  ::benchmark::Initialize(&argc, argv);

  PrintReductionReport("NYT-like", NytContext(), 25, 20);
  PrintReductionReport("CW-like", CwContext(), 50, 20);

  for (const auto* d : {&Nyt(), &Cw()}) {
    const std::string base = std::string("ExtMaximality/") + d->name;
    RegisterPipeline(base + "/all", d->context(), d->default_tau, 20,
                     [](const ngram::CorpusContext& ctx,
                        const ngram::NgramJobOptions& o) {
                       return ComputeNgramStatistics(ctx, o);
                     });
    RegisterPipeline(base + "/closed", d->context(), d->default_tau, 20,
                     [](const ngram::CorpusContext& ctx,
                        const ngram::NgramJobOptions& o) {
                       return ngram::RunSuffixSigmaClosed(ctx, o);
                     });
    RegisterPipeline(base + "/maximal", d->context(), d->default_tau, 20,
                     [](const ngram::CorpusContext& ctx,
                        const ngram::NgramJobOptions& o) {
                       return ngram::RunSuffixSigmaMaximal(ctx, o);
                     });
  }

  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
