// Serving-layer latency/throughput harness: N client threads drive a
// Zipf-distributed query mix (lookups, top-k completions, perplexity)
// against a StatsService over freshly built shards, and the result —
// p50/p99/p99.9 latency, QPS, cache counters — is written as
// BENCH_serving.json.
//
// This is a custom driver, not a google-benchmark fixture: the quantity
// under test is the latency *distribution* under concurrency, which the
// per-iteration timing model cannot express.
//
//   $ ./bench_serving [out.json]        (default BENCH_serving.json)
//
// Knobs (environment):
//   NGRAM_BENCH_SERVING_THREADS    client threads          (default 8)
//   NGRAM_BENCH_SERVING_SECONDS    measured wall time      (default 3)
//   NGRAM_BENCH_SERVING_DOCS       corpus documents        (default 1000)
//   NGRAM_BENCH_SERVING_SHARDS     serving shards          (default 4)
//   NGRAM_BENCH_SERVING_CACHE_KB   block cache capacity    (default 4096)
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "core/runner.h"
#include "corpus/synthetic.h"
#include "corpus/zipf.h"
#include "serve/serving_builder.h"
#include "serve/stats_service.h"
#include "util/random.h"

namespace {

using namespace ngram;

uint64_t EnvOr(const char* name, uint64_t fallback) {
  const char* v = getenv(name);
  return v != nullptr ? static_cast<uint64_t>(atoll(v)) : fallback;
}

struct ThreadResult {
  std::vector<uint64_t> latencies_ns;
  uint64_t count_ops = 0;
  uint64_t topk_ops = 0;
  uint64_t ppl_ops = 0;
  uint64_t errors = 0;
};

uint64_t Percentile(const std::vector<uint64_t>& sorted, double p) {
  if (sorted.empty()) {
    return 0;
  }
  const size_t index = std::min(
      sorted.size() - 1,
      static_cast<size_t>(p * static_cast<double>(sorted.size())));
  return sorted[index];
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_serving.json";
  const uint64_t num_threads = EnvOr("NGRAM_BENCH_SERVING_THREADS", 8);
  const uint64_t seconds = EnvOr("NGRAM_BENCH_SERVING_SECONDS", 3);
  const uint64_t docs = EnvOr("NGRAM_BENCH_SERVING_DOCS", 1000);
  const uint64_t shards = EnvOr("NGRAM_BENCH_SERVING_SHARDS", 4);
  const uint64_t cache_kb = EnvOr("NGRAM_BENCH_SERVING_CACHE_KB", 4096);

  // Corpus -> statistics -> serving shards, all in a scratch directory.
  const Corpus corpus = GenerateSyntheticCorpus(NytLikeOptions(docs, 42));
  const CorpusContext ctx = BuildCorpusContext(corpus);
  NgramJobOptions job_options;
  job_options.method = Method::kSuffixSigma;
  job_options.tau = 2;
  job_options.sigma = 5;
  auto run = ComputeNgramStatistics(ctx, job_options);
  if (!run.ok()) {
    fprintf(stderr, "stats: %s\n", run.status().ToString().c_str());
    return 1;
  }

  char dir_template[] = "/tmp/bench_serving.XXXXXX";
  if (mkdtemp(dir_template) == nullptr) {
    perror("mkdtemp");
    return 1;
  }
  const std::string dir = dir_template;
  serve::BuildServingOptions build_options;
  build_options.num_shards = static_cast<uint32_t>(shards);
  Status st = serve::BuildServingShards(run->stats, dir, build_options);
  if (!st.ok()) {
    fprintf(stderr, "build-serving: %s\n", st.ToString().c_str());
    return 1;
  }

  serve::ServingOptions serving_options;
  serving_options.cache_bytes = static_cast<size_t>(cache_kb) * 1024;
  auto service = serve::StatsService::Open(dir, serving_options);
  if (!service.ok()) {
    fprintf(stderr, "open: %s\n", service.status().ToString().c_str());
    return 1;
  }

  // Query workload: stored n-grams ranked by frequency, drawn Zipf(1.0) —
  // hot heads and a long cold tail, like autocomplete traffic.
  NgramStatistics ranked = run->stats;
  std::sort(ranked.entries.begin(), ranked.entries.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  if (ranked.entries.empty()) {
    fprintf(stderr, "no n-grams to query\n");
    return 1;
  }
  const ZipfSampler query_sampler(ranked.entries.size(), 1.0);
  std::vector<TermSequence> sentences;
  for (const auto& doc : corpus.docs) {
    for (const auto& sentence : doc.sentences) {
      if (!sentence.empty()) {
        sentences.push_back(sentence);
        if (sentences.size() >= 64) {
          break;
        }
      }
    }
    if (sentences.size() >= 64) {
      break;
    }
  }

  printf("bench_serving: %llu n-grams, %zu shard(s), %llu thread(s), "
         "%llus, cache %llu KiB\n",
         static_cast<unsigned long long>(ranked.size()),
         (*service)->store()->num_shards(),
         static_cast<unsigned long long>(num_threads),
         static_cast<unsigned long long>(seconds),
         static_cast<unsigned long long>(cache_kb));

  std::atomic<bool> go{false};
  std::atomic<bool> stop{false};
  std::vector<ThreadResult> results(num_threads);
  std::vector<std::thread> threads;
  threads.reserve(num_threads);
  for (uint64_t t = 0; t < num_threads; ++t) {
    threads.emplace_back([&, t] {
      ThreadResult& result = results[t];
      result.latencies_ns.reserve(1 << 18);
      Rng rng(1000 + t);
      const serve::StatsService& svc = **service;
      while (!go.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      while (!stop.load(std::memory_order_relaxed)) {
        const auto& entry =
            ranked.entries[query_sampler.Sample(&rng) - 1];
        const double mix = rng.NextDouble();
        const auto begin = std::chrono::steady_clock::now();
        bool ok = true;
        if (mix < 0.80) {
          ++result.count_ops;
          ok = svc.Count(entry.first).ok();
        } else if (mix < 0.95 || sentences.empty()) {
          ++result.topk_ops;
          TermSequence prefix = entry.first;
          prefix.pop_back();  // Empty prefix = unigram completions: fine.
          ok = svc.TopKCompletions(prefix, 10).ok();
        } else {
          ++result.ppl_ops;
          const TermSequence& sentence =
              sentences[rng.Uniform(sentences.size())];
          ok = svc.SentencePerplexity(sentence).ok();
        }
        const auto end = std::chrono::steady_clock::now();
        if (!ok) {
          ++result.errors;
        }
        result.latencies_ns.push_back(static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(end - begin)
                .count()));
      }
    });
  }

  const auto bench_begin = std::chrono::steady_clock::now();
  go.store(true, std::memory_order_release);
  std::this_thread::sleep_for(std::chrono::seconds(seconds));
  stop.store(true, std::memory_order_relaxed);
  for (auto& thread : threads) {
    thread.join();
  }
  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    bench_begin)
          .count();

  std::vector<uint64_t> all;
  uint64_t count_ops = 0, topk_ops = 0, ppl_ops = 0, errors = 0;
  for (const ThreadResult& result : results) {
    all.insert(all.end(), result.latencies_ns.begin(),
               result.latencies_ns.end());
    count_ops += result.count_ops;
    topk_ops += result.topk_ops;
    ppl_ops += result.ppl_ops;
    errors += result.errors;
  }
  std::sort(all.begin(), all.end());
  const uint64_t total_ops = all.size();
  const double qps = elapsed_s > 0 ? total_ops / elapsed_s : 0.0;
  const double p50_us = Percentile(all, 0.50) / 1e3;
  const double p99_us = Percentile(all, 0.99) / 1e3;
  const double p999_us = Percentile(all, 0.999) / 1e3;
  const kv::BlockCacheStats cache = (*service)->CacheStats();

  printf("  %llu ops in %.2fs = %.0f QPS  p50 %.1fus  p99 %.1fus  "
         "p99.9 %.1fus  (%llu count / %llu topk / %llu ppl, %llu errors)\n",
         static_cast<unsigned long long>(total_ops), elapsed_s, qps, p50_us,
         p99_us, p999_us, static_cast<unsigned long long>(count_ops),
         static_cast<unsigned long long>(topk_ops),
         static_cast<unsigned long long>(ppl_ops),
         static_cast<unsigned long long>(errors));
  printf("  cache: %llu hits / %llu misses / %llu evictions "
         "(hit ratio %.3f)\n",
         static_cast<unsigned long long>(cache.hits),
         static_cast<unsigned long long>(cache.misses),
         static_cast<unsigned long long>(cache.evictions),
         cache.hit_ratio());

  FILE* out = fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    perror("fopen");
    return 1;
  }
  fprintf(out,
          "{\n"
          "  \"threads\": %llu,\n"
          "  \"seconds\": %.2f,\n"
          "  \"docs\": %llu,\n"
          "  \"shards\": %zu,\n"
          "  \"cache_kb\": %llu,\n"
          "  \"ngrams\": %llu,\n"
          "  \"total_ops\": %llu,\n"
          "  \"qps\": %.1f,\n"
          "  \"p50_us\": %.1f,\n"
          "  \"p99_us\": %.1f,\n"
          "  \"p999_us\": %.1f,\n"
          "  \"count_ops\": %llu,\n"
          "  \"topk_ops\": %llu,\n"
          "  \"ppl_ops\": %llu,\n"
          "  \"errors\": %llu,\n"
          "  \"cache_hits\": %llu,\n"
          "  \"cache_misses\": %llu,\n"
          "  \"cache_evictions\": %llu,\n"
          "  \"cache_hit_ratio\": %.4f\n"
          "}\n",
          static_cast<unsigned long long>(num_threads), elapsed_s,
          static_cast<unsigned long long>(docs),
          (*service)->store()->num_shards(),
          static_cast<unsigned long long>(cache_kb),
          static_cast<unsigned long long>(ranked.size()),
          static_cast<unsigned long long>(total_ops), qps, p50_us, p99_us,
          p999_us, static_cast<unsigned long long>(count_ops),
          static_cast<unsigned long long>(topk_ops),
          static_cast<unsigned long long>(ppl_ops),
          static_cast<unsigned long long>(errors),
          static_cast<unsigned long long>(cache.hits),
          static_cast<unsigned long long>(cache.misses),
          static_cast<unsigned long long>(cache.evictions),
          cache.hit_ratio());
  fclose(out);
  printf("  wrote %s\n", out_path.c_str());

  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  return errors == 0 ? 0 : 1;
}
