// Spill-heavy shuffle scenario: the fig6 corpora pushed through a sort
// buffer orders of magnitude smaller than the map output, so every map
// task spills dozens of runs. Sweeps JobConfig::merge_factor — mf=0 is
// the unbounded pre-bounded-merge baseline (every run opened at once),
// bounded values exercise the map-side final merge + reduce-side
// multi-pass merge. Reported counters show the trade: spills stay equal,
// intermediate_mb is the extra sequential I/O the bound costs, open
// sources per reduce task drop from `spills` to `merge_factor`.
//
// The RunFormat sweep compares compress_runs on/off in the same
// spill-heavy regime: run_ratio is RUN_BYTES_RAW / RUN_BYTES_WRITTEN
// (the at-rest shrink of every spill, map-side final merge, and
// reduce-side intermediate pass). Scale it up with NGRAM_BENCH_NYT_DOCS /
// NGRAM_BENCH_CW_DOCS (BENCH_runfile.json records 4x fig6) — fewer
// intermediate bytes is exactly what shifts the page-cache crossover the
// bounded merge pays for.
#include <benchmark/benchmark.h>

#include <string>

#include "bench_common.h"

namespace ngram::bench {
namespace {

void RegisterSpillSweep(const Dataset& dataset) {
  const Method methods[] = {Method::kNaive, Method::kSuffixSigma};
  // (merge_factor, shuffle_slots): the unbounded baseline, the bounded
  // merge, and the bounded merge with the early shuffle overlapping its
  // reduce-side passes with map execution (ov=1). The overlap row's
  // barrier_ms is the post-barrier merge latency left over — the eager
  // passes (early_passes) are what shrank it vs the ov=0 row.
  const std::pair<uint32_t, uint32_t> configs[] = {{0, 0}, {16, 0}, {16, 2}};
  for (Method method : methods) {
    for (const auto& [merge_factor, shuffle_slots] : configs) {
      const std::string name =
          std::string("SpillMerge/") + dataset.name + "/" +
          MethodName(method) + "/mf=" + std::to_string(merge_factor) +
          "/ov=" + std::to_string(shuffle_slots > 0 ? 1 : 0);
      ::benchmark::RegisterBenchmark(
          name.c_str(),
          [&dataset, method, merge_factor = merge_factor,
           shuffle_slots = shuffle_slots](::benchmark::State& state) {
            NgramJobOptions options =
                BenchOptions(method, dataset.default_tau, 5);
            // ~128 KiB of sort buffer against multi-MiB map output:
            // every task spills heavily (the fig6 corpora shuffle a few
            // hundred runs at this setting).
            options.sort_buffer_bytes = 128 << 10;
            options.merge_factor = merge_factor;
            options.shuffle_slots = shuffle_slots;
            const CorpusContext& ctx = dataset.context();
            for (auto _ : state) {
              auto run = ComputeNgramStatistics(ctx, options);
              if (!run.ok()) {
                state.SkipWithError(run.status().ToString().c_str());
                return;
              }
              state.SetIterationTime(run->metrics.total_wallclock_ms() /
                                     1000.0);
              state.counters["spills"] = static_cast<double>(
                  run->metrics.TotalCounter(mr::kSpillFiles));
              state.counters["merge_passes"] = static_cast<double>(
                  run->metrics.TotalCounter(mr::kMergePasses));
              state.counters["intermediate_mb"] =
                  static_cast<double>(run->metrics.TotalCounter(
                      mr::kIntermediateMergeBytes)) /
                  (1024.0 * 1024.0);
              state.counters["early_passes"] = static_cast<double>(
                  run->metrics.TotalCounter(mr::kEarlyMergePasses));
              state.counters["barrier_ms"] = static_cast<double>(
                  run->metrics.TotalCounter(mr::kBarrierWaitMs));
              state.counters["reduce_ms"] =
                  run->metrics.total_reduce_phase_ms();
              state.counters["map_ms"] = run->metrics.total_map_phase_ms();
            }
          })
          ->UseManualTime()
          ->Iterations(1)
          ->Unit(::benchmark::kMillisecond);
    }
  }
}

void RegisterFormatSweep(const Dataset& dataset) {
  const Method methods[] = {Method::kNaive, Method::kSuffixSigma};
  for (Method method : methods) {
    for (bool compress : {false, true}) {
      const std::string name =
          std::string("RunFormat/") + dataset.name + "/" +
          MethodName(method) + (compress ? "/block" : "/raw");
      ::benchmark::RegisterBenchmark(
          name.c_str(),
          [&dataset, method, compress](::benchmark::State& state) {
            NgramJobOptions options =
                BenchOptions(method, dataset.default_tau, 5);
            options.sort_buffer_bytes = 128 << 10;  // Spill-heavy.
            options.merge_factor = 16;
            options.compress_runs = compress;
            const CorpusContext& ctx = dataset.context();
            for (auto _ : state) {
              auto run = ComputeNgramStatistics(ctx, options);
              if (!run.ok()) {
                state.SkipWithError(run.status().ToString().c_str());
                return;
              }
              state.SetIterationTime(run->metrics.total_wallclock_ms() /
                                     1000.0);
              const double raw = static_cast<double>(
                  run->metrics.TotalCounter(mr::kRunBytesRaw));
              const double written = static_cast<double>(
                  run->metrics.TotalCounter(mr::kRunBytesWritten));
              state.counters["run_mb_raw"] = raw / (1024.0 * 1024.0);
              state.counters["run_mb_written"] =
                  written / (1024.0 * 1024.0);
              state.counters["run_ratio"] =
                  written > 0 ? raw / written : 0.0;
              state.counters["reduce_ms"] =
                  run->metrics.total_reduce_phase_ms();
              state.counters["map_ms"] = run->metrics.total_map_phase_ms();
            }
          })
          ->UseManualTime()
          ->Iterations(1)
          ->Unit(::benchmark::kMillisecond);
    }
  }
}

// Fetch-shuffle column (docs/architecture.md section 10): the same
// spill-heavy regime with every shuffled byte pulled through the
// in-proc transport into clone run files (fetch=1) vs the direct
// shared-filesystem shuffle (fetch=0). fetch_mb is the wire volume;
// the wallclock delta is the serve+mirror cost the placement
// independence buys. Output is byte-identical across the column.
void RegisterFetchSweep(const Dataset& dataset) {
  const Method methods[] = {Method::kNaive, Method::kSuffixSigma};
  for (Method method : methods) {
    for (bool fetch : {false, true}) {
      const std::string name =
          std::string("FetchShuffle/") + dataset.name + "/" +
          MethodName(method) + "/fetch=" + (fetch ? "1" : "0");
      ::benchmark::RegisterBenchmark(
          name.c_str(),
          [&dataset, method, fetch](::benchmark::State& state) {
            NgramJobOptions options =
                BenchOptions(method, dataset.default_tau, 5);
            options.sort_buffer_bytes = 128 << 10;  // Spill-heavy.
            options.merge_factor = 16;
            options.fetch_shuffle = fetch;
            const CorpusContext& ctx = dataset.context();
            for (auto _ : state) {
              auto run = ComputeNgramStatistics(ctx, options);
              if (!run.ok()) {
                state.SkipWithError(run.status().ToString().c_str());
                return;
              }
              state.SetIterationTime(run->metrics.total_wallclock_ms() /
                                     1000.0);
              state.counters["fetch_mb"] =
                  static_cast<double>(run->metrics.TotalCounter(
                      mr::kShuffleFetchBytes)) /
                  (1024.0 * 1024.0);
              state.counters["fetch_retries"] = static_cast<double>(
                  run->metrics.TotalCounter(mr::kFetchRetries));
              state.counters["fetch_wait_ms"] = static_cast<double>(
                  run->metrics.TotalCounter(mr::kFetchWaitMs));
              state.counters["reduce_ms"] =
                  run->metrics.total_reduce_phase_ms();
              state.counters["map_ms"] = run->metrics.total_map_phase_ms();
            }
          })
          ->UseManualTime()
          ->Iterations(1)
          ->Unit(::benchmark::kMillisecond);
    }
  }
}

}  // namespace
}  // namespace ngram::bench

int main(int argc, char** argv) {
  using namespace ngram::bench;
  ::benchmark::Initialize(&argc, argv);
  RegisterSpillSweep(Nyt());
  RegisterSpillSweep(Cw());
  RegisterFormatSweep(Nyt());
  RegisterFormatSweep(Cw());
  RegisterFetchSweep(Nyt());
  RegisterFetchSweep(Cw());
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
