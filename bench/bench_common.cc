#include "bench_common.h"

namespace ngram::bench {

namespace {

uint64_t EnvU64(const char* name, uint64_t fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? static_cast<uint64_t>(atoll(value)) : fallback;
}

double EnvDouble(const char* name, double fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? atof(value) : fallback;
}

}  // namespace

const BenchEnv& BenchEnv::Get() {
  static const BenchEnv env = [] {
    BenchEnv e;
    e.nyt_docs = EnvU64("NGRAM_BENCH_NYT_DOCS", e.nyt_docs);
    e.cw_docs = EnvU64("NGRAM_BENCH_CW_DOCS", e.cw_docs);
    e.slots = static_cast<uint32_t>(EnvU64("NGRAM_BENCH_SLOTS", e.slots));
    e.reducers =
        static_cast<uint32_t>(EnvU64("NGRAM_BENCH_REDUCERS", e.reducers));
    e.job_overhead_ms =
        EnvDouble("NGRAM_BENCH_JOB_OVERHEAD_MS", e.job_overhead_ms);
    return e;
  }();
  return env;
}

const Corpus& NytCorpus() {
  static const Corpus corpus = GenerateSyntheticCorpus(
      NytLikeOptions(BenchEnv::Get().nyt_docs, /*seed=*/20130318));
  return corpus;
}

const Corpus& CwCorpus() {
  static const Corpus corpus = GenerateSyntheticCorpus(
      ClueWebLikeOptions(BenchEnv::Get().cw_docs, /*seed=*/20090101));
  return corpus;
}

const CorpusContext& NytContext() {
  static const CorpusContext ctx = BuildCorpusContext(NytCorpus());
  return ctx;
}

const CorpusContext& CwContext() {
  static const CorpusContext ctx = BuildCorpusContext(CwCorpus());
  return ctx;
}

const Dataset& Nyt() {
  static const Dataset dataset{"NYT", &NytContext, &NytCorpus,
                               /*default_tau=*/10};
  return dataset;
}

const Dataset& Cw() {
  static const Dataset dataset{"CW", &CwContext, &CwCorpus,
                               /*default_tau=*/20};
  return dataset;
}

NgramJobOptions BenchOptions(Method method, uint64_t tau, uint32_t sigma) {
  const BenchEnv& env = BenchEnv::Get();
  NgramJobOptions options;
  options.method = method;
  options.tau = tau;
  options.sigma = sigma;
  options.num_reducers = env.reducers;
  options.map_slots = env.slots;
  options.reduce_slots = env.slots;
  options.job_overhead_ms = env.job_overhead_ms;
  return options;
}

void RunAndReport(::benchmark::State& state, const CorpusContext& ctx,
                  const NgramJobOptions& options) {
  for (auto _ : state) {
    auto run = ComputeNgramStatistics(ctx, options);
    if (!run.ok()) {
      state.SkipWithError(run.status().ToString().c_str());
      return;
    }
    state.SetIterationTime(run->metrics.total_wallclock_ms() / 1000.0);
    state.counters["bytes"] = static_cast<double>(
        run->metrics.map_output_bytes());
    state.counters["records"] =
        static_cast<double>(run->metrics.map_output_records());
    state.counters["jobs"] = run->metrics.num_jobs();
    state.counters["ngrams"] = static_cast<double>(run->stats.size());
    state.counters["map_ms"] = run->metrics.total_map_phase_ms();
    state.counters["reduce_ms"] = run->metrics.total_reduce_phase_ms();
  }
}

void RegisterMethodSweep(const std::string& prefix, const Dataset& dataset,
                         uint64_t tau, uint32_t sigma) {
  const Method methods[] = {Method::kNaive, Method::kAprioriScan,
                            Method::kAprioriIndex, Method::kSuffixSigma};
  for (Method method : methods) {
    const std::string name = prefix + "/" + MethodName(method);
    const CorpusContext& ctx = dataset.context();
    ::benchmark::RegisterBenchmark(
        name.c_str(),
        [&ctx, method, tau, sigma](::benchmark::State& state) {
          RunAndReport(state, ctx, BenchOptions(method, tau, sigma));
        })
        ->UseManualTime()
        ->Iterations(1)
        ->Unit(::benchmark::kMillisecond);
  }
}

}  // namespace ngram::bench
