// Figure 6 reproduction: scaling the datasets — each method on random 25%,
// 50%, 75% and 100% document subsets (fixed seed), sigma = 5, the paper's
// per-dataset tau. Expected shape: near-linear growth for every method;
// on the NYT-like corpus the pruning-based methods cope slightly better
// with additional data than NAIVE.
#include <benchmark/benchmark.h>

#include <map>
#include <memory>

#include "bench_common.h"

namespace ngram::bench {
namespace {

/// Cache of sampled corpus contexts, keyed by (dataset name, percent).
const CorpusContext& SampledContext(const Dataset& dataset, int percent) {
  static std::map<std::string, std::unique_ptr<CorpusContext>> cache;
  const std::string key =
      std::string(dataset.name) + "/" + std::to_string(percent);
  auto it = cache.find(key);
  if (it == cache.end()) {
    auto ctx = std::make_unique<CorpusContext>(
        BuildCorpusContext(dataset.corpus().Sample(percent, /*seed=*/4711)));
    it = cache.emplace(key, std::move(ctx)).first;
  }
  return *it->second;
}

void RegisterScaleSweep(const Dataset& dataset) {
  const Method methods[] = {Method::kNaive, Method::kAprioriScan,
                            Method::kAprioriIndex, Method::kSuffixSigma};
  for (int percent : {25, 50, 75, 100}) {
    for (Method method : methods) {
      const std::string name = std::string("Fig6/") + dataset.name +
                               "/pct=" + std::to_string(percent) + "/" +
                               MethodName(method);
      ::benchmark::RegisterBenchmark(
          name.c_str(),
          [&dataset, percent, method](::benchmark::State& state) {
            const CorpusContext& ctx = SampledContext(dataset, percent);
            RunAndReport(state, ctx,
                         BenchOptions(method, dataset.default_tau, 5));
          })
          ->UseManualTime()
          ->Iterations(1)
          ->Unit(::benchmark::kMillisecond);
    }
  }
}

}  // namespace
}  // namespace ngram::bench

int main(int argc, char** argv) {
  using namespace ngram::bench;
  ::benchmark::Initialize(&argc, argv);
  RegisterScaleSweep(Nyt());
  RegisterScaleSweep(Cw());
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
