// Micro-benchmarks of the performance-critical building blocks: varbyte
// codec, the reverse-lexicographic raw comparator, the suffix stack, the
// sort buffer, posting joins, and the Zipf sampler.
#include <benchmark/benchmark.h>

#include <vector>

#include "core/rev_lex.h"
#include "core/suffix_stack.h"
#include "corpus/zipf.h"
#include "encoding/serde.h"
#include "index/posting.h"
#include "mapreduce/sort_buffer.h"
#include "util/random.h"
#include "util/temp_dir.h"

namespace ngram {
namespace {

std::vector<TermSequence> MakeSequences(size_t n, size_t len,
                                        uint32_t vocab, uint64_t seed) {
  Rng rng(seed);
  std::vector<TermSequence> seqs(n);
  for (auto& seq : seqs) {
    seq.reserve(len);
    for (size_t i = 0; i < len; ++i) {
      seq.push_back(1 + static_cast<TermId>(rng.Uniform(vocab)));
    }
  }
  return seqs;
}

void BM_VarbyteEncode(::benchmark::State& state) {
  const auto seqs = MakeSequences(1024, state.range(0), 50000, 1);
  std::string buf;
  size_t i = 0;
  for (auto _ : state) {
    buf.clear();
    SequenceCodec::Encode(seqs[i++ & 1023], &buf);
    ::benchmark::DoNotOptimize(buf.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_VarbyteEncode)->Arg(5)->Arg(20)->Arg(100);

void BM_VarbyteDecode(::benchmark::State& state) {
  const auto seqs = MakeSequences(1024, state.range(0), 50000, 2);
  std::vector<std::string> encoded;
  for (const auto& seq : seqs) {
    encoded.push_back(SerializeToString(seq));
  }
  TermSequence out;
  size_t i = 0;
  for (auto _ : state) {
    SequenceCodec::Decode(Slice(encoded[i++ & 1023]), &out);
    ::benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_VarbyteDecode)->Arg(5)->Arg(20)->Arg(100);

void BM_ReverseLexCompare(::benchmark::State& state) {
  const auto seqs = MakeSequences(1024, state.range(0), 16, 3);
  std::vector<std::string> encoded;
  for (const auto& seq : seqs) {
    encoded.push_back(SerializeToString(seq));
  }
  const auto* cmp = ReverseLexSequenceComparator::Instance();
  size_t i = 0;
  int sink = 0;
  for (auto _ : state) {
    sink += cmp->Compare(Slice(encoded[i & 1023]),
                         Slice(encoded[(i + 1) & 1023]));
    ++i;
  }
  ::benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_ReverseLexCompare)->Arg(5)->Arg(20)->Arg(100);

void BM_BytewiseCompare(::benchmark::State& state) {
  const auto seqs = MakeSequences(1024, state.range(0), 16, 3);
  std::vector<std::string> encoded;
  for (const auto& seq : seqs) {
    encoded.push_back(SerializeToString(seq));
  }
  const auto* cmp = mr::BytewiseComparator::Instance();
  size_t i = 0;
  int sink = 0;
  for (auto _ : state) {
    sink += cmp->Compare(Slice(encoded[i & 1023]),
                         Slice(encoded[(i + 1) & 1023]));
    ++i;
  }
  ::benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_BytewiseCompare)->Arg(5)->Arg(20)->Arg(100);

void BM_SuffixStackPush(::benchmark::State& state) {
  // Pre-sorted suffix stream (reverse-lex) built from random sequences.
  auto seqs = MakeSequences(4096, 8, 8, 4);
  std::sort(seqs.begin(), seqs.end(),
            [](const TermSequence& a, const TermSequence& b) {
              const std::string ea = SerializeToString(a);
              const std::string eb = SerializeToString(b);
              return ReverseLexSequenceComparator::Instance()->Compare(
                         Slice(ea), Slice(eb)) < 0;
            });
  seqs.erase(std::unique(seqs.begin(), seqs.end()), seqs.end());
  uint64_t emitted = 0;
  for (auto _ : state) {
    SuffixStack<CountAggregate> stack(
        2, EmitMode::kAll,
        [&emitted](const TermSequence&, const CountAggregate&) {
          ++emitted;
          return Status::OK();
        });
    for (const auto& seq : seqs) {
      Status st = stack.Push(seq, CountAggregate{1});
      if (!st.ok()) {
        state.SkipWithError(st.ToString().c_str());
        return;
      }
    }
    ::benchmark::DoNotOptimize(stack.Flush());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(seqs.size()));
  ::benchmark::DoNotOptimize(emitted);
}
BENCHMARK(BM_SuffixStackPush);

void BM_SortBufferAddAndFinish(::benchmark::State& state) {
  auto dir = TempDir::Create("bench-sortbuf");
  if (!dir.ok()) {
    state.SkipWithError("tempdir failed");
    return;
  }
  const auto seqs = MakeSequences(4096, 6, 1000, 5);
  std::vector<std::string> keys;
  for (const auto& seq : seqs) {
    keys.push_back(SerializeToString(seq));
  }
  const std::string value = SerializeToString<uint64_t>(1);
  mr::Counters counters;
  for (auto _ : state) {
    mr::TaskCounters tc(&counters);
    mr::SortBuffer::Options options;
    options.num_partitions = 8;
    options.budget_bytes = static_cast<size_t>(state.range(0));
    options.work_dir = dir->path().string();
    mr::SortBuffer buffer(options, &tc);
    for (size_t i = 0; i < keys.size(); ++i) {
      Status st = buffer.Add(static_cast<uint32_t>(i % 8),
                             Slice(keys[i]), Slice(value));
      if (!st.ok()) {
        state.SkipWithError(st.ToString().c_str());
        return;
      }
    }
    std::vector<mr::SpillRun> runs;
    Status st = buffer.Finish(&runs);
    if (!st.ok()) {
      state.SkipWithError(st.ToString().c_str());
      return;
    }
    ::benchmark::DoNotOptimize(runs.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(keys.size()));
}
BENCHMARK(BM_SortBufferAddAndFinish)
    ->Arg(16 << 10)    // Heavy spilling.
    ->Arg(64 << 20);   // All in memory.

void BM_PostingJoin(::benchmark::State& state) {
  Rng rng(6);
  PostingList left, right;
  for (uint64_t d = 1; d <= static_cast<uint64_t>(state.range(0)); ++d) {
    Posting l, r;
    l.doc_id = r.doc_id = d;
    uint32_t pos = 0;
    for (int i = 0; i < 20; ++i) {
      pos += 1 + static_cast<uint32_t>(rng.Uniform(5));
      l.positions.push_back(pos);
      if (rng.OneIn(0.5)) {
        r.positions.push_back(pos + 1);
      }
    }
    left.postings.push_back(std::move(l));
    right.postings.push_back(std::move(r));
  }
  for (auto _ : state) {
    PostingList joined = JoinAdjacent(left, right);
    ::benchmark::DoNotOptimize(joined.postings.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 20);
}
BENCHMARK(BM_PostingJoin)->Arg(100)->Arg(1000);

void BM_ZipfSample(::benchmark::State& state) {
  ZipfSampler sampler(static_cast<uint64_t>(state.range(0)), 1.05);
  Rng rng(7);
  uint64_t sink = 0;
  for (auto _ : state) {
    sink += sampler.Sample(&rng);
  }
  ::benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_ZipfSample)->Arg(10000)->Arg(1000000);

}  // namespace
}  // namespace ngram

BENCHMARK_MAIN();
