// Figure 4 reproduction: varying the minimum collection frequency tau at
// sigma = 5. Reports the paper's three measures per run: wallclock time
// (benchmark time), bytes transferred, and number of records (counters).
//
// Expected shape (paper): APRIORI methods blow up as tau shrinks (their
// per-iteration work follows the exploding number of frequent (k-1)-grams)
// while SUFFIX-sigma's record count is *constant in tau* — it depends only
// on the number of term occurrences — and it wins clearly at low tau.
// tau grids are scaled from the paper's (NYT 10..1e5, CW 100..1e6) to the
// mini corpora.
#include <benchmark/benchmark.h>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace ngram::bench;
  ::benchmark::Initialize(&argc, argv);

  for (uint64_t tau : {5, 25, 100, 500}) {
    RegisterMethodSweep(
        "Fig4/NYT/sigma=5/tau=" + std::to_string(tau), Nyt(), tau,
        /*sigma=*/5);
  }
  for (uint64_t tau : {10, 50, 250, 1000}) {
    RegisterMethodSweep("Fig4/CW/sigma=5/tau=" + std::to_string(tau), Cw(),
                        tau, /*sigma=*/5);
  }

  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
