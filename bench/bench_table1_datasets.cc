// Table I reproduction: dataset characteristics of the two (synthetic)
// collections — document count, term occurrences, distinct terms, sentence
// count, sentence-length mean/stddev — printed in the paper's format.
// The registered benchmarks time corpus generation and the statistics scan.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.h"

namespace ngram::bench {
namespace {

void PrintTable1() {
  const CorpusStats nyt = NytCorpus().ComputeStats();
  const CorpusStats cw = CwCorpus().ComputeStats();
  printf("\n================ TABLE I: DATASET CHARACTERISTICS "
         "================\n");
  printf("(synthetic stand-ins calibrated to the paper's Table I; see "
         "DESIGN.md)\n\n");
  printf("%-28s %16s %16s\n", "", "NYT-like", "CW-like");
  printf("%-28s %16llu %16llu\n", "# documents",
         (unsigned long long)nyt.num_documents,
         (unsigned long long)cw.num_documents);
  printf("%-28s %16llu %16llu\n", "# term occurrences",
         (unsigned long long)nyt.term_occurrences,
         (unsigned long long)cw.term_occurrences);
  printf("%-28s %16llu %16llu\n", "# distinct terms",
         (unsigned long long)nyt.distinct_terms,
         (unsigned long long)cw.distinct_terms);
  printf("%-28s %16llu %16llu\n", "# sentences",
         (unsigned long long)nyt.num_sentences,
         (unsigned long long)cw.num_sentences);
  printf("%-28s %16.2f %16.2f\n", "sentence length (mean)",
         nyt.sentence_length_mean, cw.sentence_length_mean);
  printf("%-28s %16.2f %16.2f\n", "sentence length (stddev)",
         nyt.sentence_length_stddev, cw.sentence_length_stddev);
  printf("\npaper's full-scale reference:   NYT          CW\n");
  printf("  # documents             1,830,592   50,221,915\n");
  printf("  sentence length (mean)      18.96        17.02\n");
  printf("  sentence length (stddev)    14.05        17.56\n");
  printf("==================================================================="
         "\n\n");
}

void BM_GenerateNytLike(::benchmark::State& state) {
  for (auto _ : state) {
    Corpus corpus = GenerateSyntheticCorpus(
        NytLikeOptions(static_cast<uint64_t>(state.range(0)), 1));
    ::benchmark::DoNotOptimize(corpus.docs.data());
    state.counters["docs"] = static_cast<double>(corpus.docs.size());
  }
}
BENCHMARK(BM_GenerateNytLike)->Arg(500)->Arg(2000)
    ->Unit(::benchmark::kMillisecond);

void BM_GenerateCwLike(::benchmark::State& state) {
  for (auto _ : state) {
    Corpus corpus = GenerateSyntheticCorpus(
        ClueWebLikeOptions(static_cast<uint64_t>(state.range(0)), 1));
    ::benchmark::DoNotOptimize(corpus.docs.data());
  }
}
BENCHMARK(BM_GenerateCwLike)->Arg(500)->Arg(2000)
    ->Unit(::benchmark::kMillisecond);

void BM_ComputeStats(::benchmark::State& state) {
  const Corpus& corpus = NytCorpus();
  for (auto _ : state) {
    CorpusStats stats = corpus.ComputeStats();
    ::benchmark::DoNotOptimize(stats.term_occurrences);
  }
}
BENCHMARK(BM_ComputeStats)->Unit(::benchmark::kMillisecond);

}  // namespace
}  // namespace ngram::bench

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  ngram::bench::PrintTable1();
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
