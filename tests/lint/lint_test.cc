// Drives the ngram_lint binary (tools/lint) over its fixture tree and
// over the real repository, pinning the exit-code contract, the
// diagnostic format, the token-boundary matcher, and the allowlist.
//
// The binary path and source root arrive as compile definitions from
// CMake (NGRAM_LINT_BINARY, NGRAM_SOURCE_DIR), so the test works from
// any build directory.

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <string>

namespace ngram {
namespace {

struct LintResult {
  int exit_code = -1;
  std::string output;
};

/// Runs `command` (stderr folded into stdout), capturing output and the
/// process exit code.
LintResult RunCommand(const std::string& command) {
  LintResult result;
  FILE* pipe = popen((command + " 2>&1").c_str(), "r");
  if (pipe == nullptr) {
    return result;
  }
  std::array<char, 4096> chunk;
  size_t got = 0;
  while ((got = fread(chunk.data(), 1, chunk.size(), pipe)) > 0) {
    result.output.append(chunk.data(), got);
  }
  const int status = pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

const std::string kBinary = NGRAM_LINT_BINARY;
const std::string kSourceDir = NGRAM_SOURCE_DIR;
const std::string kFixtures = kSourceDir + "/tests/lint/fixtures";

TEST(NgramLintTest, FixturesWithoutAllowlistReportEveryRule) {
  const LintResult result =
      RunCommand(kBinary + " --root " + kFixtures);
  EXPECT_EQ(result.exit_code, 1) << result.output;
  // One finding per bad fixture, each tagged with its rule.
  EXPECT_NE(result.output.find("src/bad_raw_io.cc:5: [raw-io]"),
            std::string::npos)
      << result.output;
  EXPECT_NE(result.output.find("src/bad_stable_sort.cc:6: [stable-sort]"),
            std::string::npos)
      << result.output;
  EXPECT_NE(result.output.find("src/bad_random.cc:5: [random]"),
            std::string::npos)
      << result.output;
  EXPECT_NE(result.output.find("src/bad_printf.cc:5: [printf]"),
            std::string::npos)
      << result.output;
  EXPECT_NE(result.output.find("src/bad_socket.cc:5: [socket]"),
            std::string::npos)
      << result.output;
  // Without an allowlist the second raw-io file is a finding too.
  EXPECT_NE(result.output.find("src/allowlisted_io.cc:5: [raw-io]"),
            std::string::npos)
      << result.output;
  // Tokens in comments/strings and near-miss identifiers never match.
  EXPECT_EQ(result.output.find("clean.cc"), std::string::npos)
      << result.output;
  EXPECT_NE(result.output.find("6 finding(s)"), std::string::npos)
      << result.output;
}

TEST(NgramLintTest, AllowlistSuppressesExactlyItsEntry) {
  const LintResult result =
      RunCommand(kBinary + " --root " + kFixtures + " --allowlist " +
                 kFixtures + "/allowlist.txt");
  EXPECT_EQ(result.exit_code, 1) << result.output;
  EXPECT_EQ(result.output.find("allowlisted_io.cc"), std::string::npos)
      << result.output;
  EXPECT_NE(result.output.find("src/bad_raw_io.cc:5: [raw-io]"),
            std::string::npos)
      << result.output;
  EXPECT_NE(result.output.find("5 finding(s)"), std::string::npos)
      << result.output;
}

TEST(NgramLintTest, RepositoryTreeIsClean) {
  // The CI gate, run as a test: the real tree plus the real allowlist
  // must produce zero findings.
  const LintResult result =
      RunCommand(kBinary + " --root " + kSourceDir + " --allowlist " +
                 kSourceDir + "/tools/lint/lint_allowlist.txt");
  EXPECT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("ngram_lint: clean"), std::string::npos)
      << result.output;
}

TEST(NgramLintTest, MissingRootIsUsageError) {
  const LintResult result = RunCommand(kBinary);
  EXPECT_EQ(result.exit_code, 2) << result.output;
  EXPECT_NE(result.output.find("usage:"), std::string::npos)
      << result.output;
}

}  // namespace
}  // namespace ngram
