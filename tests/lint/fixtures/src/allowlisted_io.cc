// Lint fixture: raw I/O suppressed by fixtures/allowlist.txt.
#include <cstdio>

long SizeOf(const char* path) {
  FILE* f = fopen(path, "rb");
  if (f == nullptr) {
    return -1;
  }
  fseek(f, 0, SEEK_END);
  const long size = ftell(f);
  fclose(f);
  return size;
}
