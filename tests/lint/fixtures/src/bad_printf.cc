// Lint fixture: printf-family logging outside util/logging (rule: printf).
#include <cstdio>

void ReportProgress(int done, int total) {
  fprintf(stderr, "progress: %d/%d\n", done, total);
}
