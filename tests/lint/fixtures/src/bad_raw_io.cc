// Lint fixture: raw file I/O in runtime code (rule: raw-io).
#include <cstdio>

bool TouchFile(const char* path) {
  FILE* f = fopen(path, "wb");
  if (f == nullptr) {
    return false;
  }
  fclose(f);
  return true;
}
