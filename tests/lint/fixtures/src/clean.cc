// Lint fixture: must produce NO findings. Banned tokens appear only in
// comments and string literals — e.g. fopen(, std::stable_sort, and
// fprintf( right here — and near-miss identifiers exercise the token
// boundary (snprintf is not printf; reducer_outputs( is not puts().
#include <cstdio>
#include <string>
#include <vector>

std::string DescribeBannedCalls() {
  // rand( inside srand-like identifiers must not match either.
  int operand(3);
  char buf[64];
  snprintf(buf, sizeof(buf), "do not call fopen( or ::unlink( %d", operand);
  return std::string(buf) + " std::stable_sort is banned";
}

std::vector<int> reducer_outputs(int n) { return std::vector<int>(n, 0); }
