// Lint fixture: raw socket syscall outside src/net/ (rule: socket).
#include <sys/socket.h>

int OpenRawSocket() {
  return ::socket(AF_UNIX, SOCK_STREAM, 0);
}
