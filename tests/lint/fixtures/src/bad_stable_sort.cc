// Lint fixture: banned std::stable_sort (rule: stable-sort).
#include <algorithm>
#include <vector>

void SortValues(std::vector<int>* v) {
  std::stable_sort(v->begin(), v->end());
}
