// Lint fixture: nondeterminism in runtime code (rule: random).
#include <random>

unsigned PickShard(unsigned num_shards) {
  std::random_device rd;
  return rd() % num_shards;
}
