// Shared helpers for the test suite: tiny random corpora, terse option
// factories, sequence literals.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <vector>

#include "core/options.h"
#include "text/corpus.h"
#include "util/random.h"

namespace ngram::testing {

/// Shorthand for term-id sequences in expectations: Seq({1, 2, 3}).
inline TermSequence Seq(std::initializer_list<TermId> terms) {
  return TermSequence(terms);
}

/// Small random corpus over a tiny vocabulary — collision-rich, so
/// frequency thresholds bite and methods are exercised meaningfully.
inline Corpus RandomCorpus(uint64_t seed, uint64_t num_docs = 20,
                           uint32_t vocab = 6, uint32_t max_sentences = 4,
                           uint32_t max_sentence_len = 12,
                           int32_t year_min = 0, int32_t year_max = 0) {
  Rng rng(seed);
  Corpus corpus;
  for (uint64_t d = 0; d < num_docs; ++d) {
    Document doc;
    doc.id = d + 1;
    if (year_max > year_min) {
      doc.year = year_min + static_cast<int32_t>(rng.Uniform(
                                static_cast<uint64_t>(year_max - year_min)));
    }
    const uint64_t sentences = 1 + rng.Uniform(max_sentences);
    for (uint64_t s = 0; s < sentences; ++s) {
      TermSequence sentence;
      const uint64_t len = 1 + rng.Uniform(max_sentence_len);
      for (uint64_t i = 0; i < len; ++i) {
        sentence.push_back(1 + static_cast<TermId>(rng.Uniform(vocab)));
      }
      doc.sentences.push_back(std::move(sentence));
    }
    corpus.docs.push_back(std::move(doc));
  }
  return corpus;
}

/// Options tuned for tests: small buffers (to exercise the spill path in
/// some configurations), few slots, deterministic.
inline NgramJobOptions TestOptions(Method method, uint64_t tau,
                                   uint32_t sigma) {
  NgramJobOptions options;
  options.method = method;
  options.tau = tau;
  options.sigma = sigma;
  options.num_reducers = 3;
  options.map_slots = 2;
  options.reduce_slots = 2;
  options.sort_buffer_bytes = 1 << 20;
  options.reducer_memory_budget_bytes = 1 << 20;
  return options;
}

}  // namespace ngram::testing
