// RecordTable and the serialized job boundary: round-trip serialization,
// byte-balanced splitting, partition splicing, raw-vs-typed mapper
// equivalence, and a chained two-job pipeline spanning spills.
#include "mapreduce/dataset.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <numeric>
#include <string>
#include <vector>

#include "mapreduce/job.h"
#include "util/temp_dir.h"

namespace ngram::mr {
namespace {

// ------------------------------------------------------------ RecordTable --

std::vector<std::pair<std::string, std::string>> ReadAll(
    const RecordTable& table) {
  std::vector<std::pair<std::string, std::string>> rows;
  auto reader = table.NewReader();
  while (reader->Next()) {
    rows.emplace_back(reader->key().ToString(), reader->value().ToString());
  }
  EXPECT_TRUE(reader->status().ok()) << reader->status().ToString();
  return rows;
}

TEST(RecordTableTest, AppendAndReadBackRoundTrip) {
  RecordTable table;
  EXPECT_TRUE(table.empty());
  table.Append("alpha", "1");
  table.Append("", "empty-key");
  table.Append("empty-value", "");
  table.Append("beta", std::string(100, 'x'));

  EXPECT_EQ(table.num_records(), 4u);
  EXPECT_GT(table.byte_size(), 0u);
  const auto rows = ReadAll(table);
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[0], (std::pair<std::string, std::string>("alpha", "1")));
  EXPECT_EQ(rows[1].second, "empty-key");
  EXPECT_EQ(rows[2].first, "empty-value");
  EXPECT_EQ(rows[3].second, std::string(100, 'x'));
}

TEST(RecordTableTest, TypedEncodeDecodeRoundTrip) {
  MemoryTable<std::string, uint64_t> typed;
  for (uint64_t i = 0; i < 1000; ++i) {
    typed.Add("key-" + std::to_string(i), i * i);
  }
  const RecordTable table = EncodeTable(typed);
  EXPECT_EQ(table.num_records(), typed.size());

  MemoryTable<std::string, uint64_t> decoded;
  ASSERT_TRUE(DecodeTable(table, &decoded).ok());
  EXPECT_EQ(decoded.rows, typed.rows);
}

TEST(RecordTableTest, SpansChunksAndPreservesOrder) {
  // Values large enough that the table must roll over several chunks.
  RecordTable table;
  const std::string big(200 * 1024, 'v');
  for (int i = 0; i < 20; ++i) {
    table.Append("k" + std::to_string(i), big);
  }
  EXPECT_GT(table.byte_size(), RecordTable::kChunkBytes);
  const auto rows = ReadAll(table);
  ASSERT_EQ(rows.size(), 20u);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(rows[i].first, "k" + std::to_string(i));
  }
}

TEST(RecordTableTest, AppendTableSplicesWholePartitions) {
  RecordTable a, b;
  a.Append("a1", "1");
  a.Append("a2", "2");
  b.Append("b1", "3");
  const uint64_t a_bytes = a.byte_size();
  const uint64_t b_bytes = b.byte_size();

  a.AppendTable(std::move(b));
  EXPECT_EQ(a.num_records(), 3u);
  EXPECT_EQ(a.byte_size(), a_bytes + b_bytes);
  EXPECT_TRUE(b.empty());  // NOLINT(bugprone-use-after-move): documented.

  const auto rows = ReadAll(a);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].first, "a1");
  EXPECT_EQ(rows[2].first, "b1");
}

TEST(RecordTableTest, SplitByBytesCoversEveryRecordExactlyOnce) {
  RecordTable table;
  // Mixed record sizes so byte balancing differs from row balancing.
  for (int i = 0; i < 500; ++i) {
    table.Append("key-" + std::to_string(i),
                 std::string(1 + (i % 97) * 7, 'p'));
  }
  for (uint32_t shards : {1u, 2u, 3u, 7u, 16u}) {
    const auto views = table.SplitByBytes(shards);
    ASSERT_EQ(views.size(), shards);
    std::vector<std::pair<std::string, std::string>> rows;
    uint64_t covered_bytes = 0;
    for (const auto& view : views) {
      covered_bytes += view.bytes;
      auto reader = table.NewReader(view);
      while (reader->Next()) {
        rows.emplace_back(reader->key().ToString(),
                          reader->value().ToString());
      }
      ASSERT_TRUE(reader->status().ok());
    }
    EXPECT_EQ(covered_bytes, table.byte_size()) << shards;
    EXPECT_EQ(rows, ReadAll(table)) << shards;
  }
}

TEST(RecordTableTest, SplitByBytesIsByteBalanced) {
  RecordTable table;
  const std::string payload(1000, 'q');
  for (int i = 0; i < 64; ++i) {
    table.Append("k", payload);
  }
  const auto views = table.SplitByBytes(4);
  ASSERT_EQ(views.size(), 4u);
  const uint64_t ideal = table.byte_size() / 4;
  for (const auto& view : views) {
    // Each shard within one record of the ideal byte share.
    EXPECT_NEAR(static_cast<double>(view.bytes),
                static_cast<double>(ideal), 1100.0);
  }
}

TEST(RecordTableTest, SplitEmptyTable) {
  RecordTable table;
  const auto views = table.SplitByBytes(4);
  ASSERT_EQ(views.size(), 4u);
  for (const auto& view : views) {
    EXPECT_TRUE(view.empty());
    auto reader = table.NewReader(view);
    EXPECT_FALSE(reader->Next());
  }
}

// ------------------------------------- serialized job-boundary files --

RecordTable BoundaryTable(int rows) {
  RecordTable table;
  for (int i = 0; i < rows; ++i) {
    table.Append("boundary-key-" + std::to_string(i),
                 "value-" + std::to_string(i * 7));
  }
  return table;
}

TEST(RecordTableFileTest, SaveLoadRoundTripsBothFormats) {
  auto dir = TempDir::Create("table-file");
  ASSERT_TRUE(dir.ok());
  const RecordTable table = BoundaryTable(3000);
  for (bool compress : {true, false}) {
    const std::string path =
        dir->File(compress ? "compressed.tbl" : "raw.tbl");
    ASSERT_TRUE(table.Save(path, compress).ok());
    RecordTable loaded;
    ASSERT_TRUE(RecordTable::Load(path, &loaded).ok());
    EXPECT_EQ(loaded.num_records(), table.num_records());
    EXPECT_EQ(loaded.byte_size(), table.byte_size());
    EXPECT_EQ(ReadAll(loaded), ReadAll(table));
  }
  // The compressed boundary file is smaller than the raw one (keys share
  // prefixes), header included.
  EXPECT_LT(std::filesystem::file_size(dir->File("compressed.tbl")),
            std::filesystem::file_size(dir->File("raw.tbl")));
}

TEST(RecordTableFileTest, EmptyTableRoundTrips) {
  auto dir = TempDir::Create("table-file-empty");
  ASSERT_TRUE(dir.ok());
  const RecordTable table;
  const std::string path = dir->File("empty.tbl");
  ASSERT_TRUE(table.Save(path).ok());
  RecordTable loaded;
  loaded.Append("stale", "row");  // Load must replace, not append.
  ASSERT_TRUE(RecordTable::Load(path, &loaded).ok());
  EXPECT_TRUE(loaded.empty());
}

TEST(RecordTableFileTest, FlippedByteInBoundaryFileIsCorruption) {
  auto dir = TempDir::Create("table-file-flip");
  ASSERT_TRUE(dir.ok());
  const RecordTable table = BoundaryTable(2000);
  const std::string path = dir->File("boundary.tbl");
  ASSERT_TRUE(table.Save(path).ok());
  const auto size = std::filesystem::file_size(path);
  {
    std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
    file.seekg(static_cast<std::streamoff>(size / 2));
    char byte = 0;
    file.get(byte);
    file.seekp(static_cast<std::streamoff>(size / 2));
    file.put(static_cast<char>(byte ^ 0x10));
  }
  RecordTable loaded;
  Status st = RecordTable::Load(path, &loaded);
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsCorruption()) << st.ToString();
}

TEST(RecordTableFileTest, CleanBlockBoundaryTruncationIsCorruption) {
  // Dropping whole trailing blocks leaves a structurally valid, CRC-clean
  // shorter stream; the header's record/byte counts must catch it.
  auto dir = TempDir::Create("table-file-trunc");
  ASSERT_TRUE(dir.ok());
  const RecordTable table = BoundaryTable(5000);  // Several blocks.
  const std::string path = dir->File("boundary.tbl");
  ASSERT_TRUE(table.Save(path).ok());

  // Walk the block chain ([varint len][payload][crc32]) past the 24-byte
  // header and cut the file after the first block.
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  Slice rest(bytes.data() + 24, bytes.size() - 24);
  uint64_t block_len = 0;
  ASSERT_TRUE(GetVarint64(&rest, &block_len));
  const size_t first_block_end =
      bytes.size() - rest.size() + static_cast<size_t>(block_len) + 4;
  ASSERT_LT(first_block_end, bytes.size());  // More than one block.
  std::error_code ec;
  std::filesystem::resize_file(path, first_block_end, ec);
  ASSERT_FALSE(ec);

  RecordTable loaded;
  Status st = RecordTable::Load(path, &loaded);
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsCorruption()) << st.ToString();
  EXPECT_NE(st.ToString().find("promises"), std::string::npos)
      << st.ToString();
}

TEST(RecordTableFileTest, RejectsForeignFiles) {
  auto dir = TempDir::Create("table-file-magic");
  ASSERT_TRUE(dir.ok());
  const std::string path = dir->File("not-a-table");
  {
    std::ofstream out(path, std::ios::binary);
    out << "something else entirely";
  }
  RecordTable loaded;
  Status st = RecordTable::Load(path, &loaded);
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsCorruption()) << st.ToString();
}

// --------------------------------------------- raw/typed map equivalence --

/// Typed word-count mapper.
class TypedWordMapper final
    : public Mapper<uint64_t, std::string, std::string, uint64_t> {
 public:
  Status Map(const uint64_t& id, const std::string& line,
             Context* ctx) override {
    size_t start = 0;
    while (start < line.size()) {
      size_t end = line.find(' ', start);
      if (end == std::string::npos) {
        end = line.size();
      }
      if (end > start) {
        NGRAM_RETURN_NOT_OK(ctx->Emit(line.substr(start, end - start), 1));
      }
      start = end + 1;
    }
    return Status::OK();
  }
};

/// The same mapper against the raw API: tokens are emitted as sub-slices
/// of the serialized input value (Serde<std::string> is the identity).
class RawWordMapper final : public RawMapper<std::string, uint64_t> {
 public:
  Status Map(Slice key, Slice value, Context* ctx) override {
    size_t start = 0;
    while (start < value.size()) {
      size_t end = start;
      while (end < value.size() && value[end] != ' ') {
        ++end;
      }
      if (end > start) {
        NGRAM_RETURN_NOT_OK(ctx->EmitEncodedKey(
            Slice(value.data() + start, end - start), 1));
      }
      start = end + 1;
    }
    return Status::OK();
  }
};

class RawCountReducer final : public RawReducer<std::string, uint64_t> {
 public:
  Status Reduce(GroupValueIterator* group, Context* ctx) override {
    uint64_t total = 0;
    while (group->NextValue()) {
      uint64_t v = 0;
      if (!Serde<uint64_t>::Decode(group->value(), &v)) {
        return Status::Corruption("bad value");
      }
      total += v;
    }
    // Serde<uint64_t> wire form is a varint.
    char buf[kMaxVarint64Bytes];
    char* end = EncodeVarint64To(buf, total);
    return ctx->EmitRaw(group->key(),
                        Slice(buf, static_cast<size_t>(end - buf)));
  }
};

RecordTable WordInput() {
  MemoryTable<uint64_t, std::string> typed;
  typed.Add(1, "the quick brown fox");
  typed.Add(2, "the lazy dog");
  typed.Add(3, "fox and dog and fox");
  return EncodeTable(typed);
}

/// Serializes a table's framed contents for byte-identity comparison.
std::string Flatten(const RecordTable& table) {
  std::string out;
  auto reader = table.NewReader();
  while (reader->Next()) {
    AppendRecord(&out, reader->key(), reader->value());
  }
  return out;
}

TEST(RawMapperTest, RawAndTypedMappersProduceByteIdenticalOutput) {
  JobConfig config;
  config.num_reducers = 3;
  config.num_map_tasks = 2;
  const RecordTable input = WordInput();

  RecordTable typed_out;
  auto typed_metrics = RunJob<TypedWordMapper, RawCountReducer>(
      config, input, [] { return std::make_unique<TypedWordMapper>(); },
      [] { return std::make_unique<RawCountReducer>(); }, &typed_out);
  ASSERT_TRUE(typed_metrics.ok()) << typed_metrics.status().ToString();

  RecordTable raw_out;
  auto raw_metrics = RunJob<RawWordMapper, RawCountReducer>(
      config, input, [] { return std::make_unique<RawWordMapper>(); },
      [] { return std::make_unique<RawCountReducer>(); }, &raw_out);
  ASSERT_TRUE(raw_metrics.ok()) << raw_metrics.status().ToString();

  EXPECT_GT(raw_out.num_records(), 0u);
  EXPECT_EQ(Flatten(raw_out), Flatten(typed_out));
  // Both consumed the same serialized boundary bytes.
  EXPECT_EQ(raw_metrics->Counter(kMapInputBytes),
            typed_metrics->Counter(kMapInputBytes));
  EXPECT_EQ(raw_metrics->Counter(kMapInputBytes), input.byte_size());
}

// ------------------------------------------------- chained job pipeline --

/// Pass-through mapper over a serialized boundary (the chained-input
/// shape: no decode, no re-encode).
class IdentityRawMapper final : public RawMapper<std::string, uint64_t> {
 public:
  Status Map(Slice key, Slice value, Context* ctx) override {
    return ctx->EmitRaw(key, value);
  }
};

TEST(ChainedPipelineTest, TwoJobChainSpanningSpillsMatchesSingleJob) {
  // Job 1: word count with a tiny sort buffer (every record spills).
  JobConfig config1;
  config1.name = "chain-job1";
  config1.num_reducers = 3;
  config1.sort_buffer_bytes = 64;
  const RecordTable input = WordInput();
  RecordTable stage;
  auto m1 = RunJob<TypedWordMapper, RawCountReducer>(
      config1, input, [] { return std::make_unique<TypedWordMapper>(); },
      [] { return std::make_unique<RawCountReducer>(); }, &stage);
  ASSERT_TRUE(m1.ok()) << m1.status().ToString();
  ASSERT_GT(m1->Counter(kSpillFiles), 0u);

  // Job 2: identity re-shuffle of the serialized stage, also spilling.
  JobConfig config2;
  config2.name = "chain-job2";
  config2.num_reducers = 2;
  config2.sort_buffer_bytes = 64;
  MemoryTable<std::string, uint64_t> final_out;
  auto m2 = RunJob<IdentityRawMapper, RawCountReducer>(
      config2, stage, [] { return std::make_unique<IdentityRawMapper>(); },
      [] { return std::make_unique<RawCountReducer>(); }, &final_out);
  ASSERT_TRUE(m2.ok()) << m2.status().ToString();

  // The boundary fed job 2 exactly job 1's output bytes.
  EXPECT_EQ(m2->Counter(kMapInputBytes), stage.byte_size());
  EXPECT_EQ(m2->Counter(kMapInputRecords), stage.num_records());

  std::map<std::string, uint64_t> counts;
  for (const auto& [word, count] : final_out.rows) {
    counts[word] = count;
  }
  const std::map<std::string, uint64_t> expected = {
      {"the", 2}, {"quick", 1}, {"brown", 1}, {"fox", 3},
      {"lazy", 1}, {"dog", 2},  {"and", 2}};
  EXPECT_EQ(counts, expected);
}

TEST(ChainedPipelineTest, ChainedOutputInvariantToMapTaskSplit) {
  // Byte-size map splitting must not change the chained result.
  const RecordTable input = WordInput();
  std::string reference;
  for (uint32_t tasks : {1u, 2u, 3u, 8u}) {
    JobConfig config;
    config.num_map_tasks = tasks;
    config.num_reducers = 2;
    RecordTable out;
    auto metrics = RunJob<TypedWordMapper, RawCountReducer>(
        config, input, [] { return std::make_unique<TypedWordMapper>(); },
        [] { return std::make_unique<RawCountReducer>(); }, &out);
    ASSERT_TRUE(metrics.ok());
    const std::string flat = Flatten(out);
    if (reference.empty()) {
      reference = flat;
    } else {
      EXPECT_EQ(flat, reference) << tasks << " map tasks";
    }
  }
}

}  // namespace
}  // namespace ngram::mr
