// Grouping-comparator tests: Hadoop's "secondary sort" pattern — sort by a
// composite key but group by a prefix of it, so each reducer group sees its
// values in a controlled order. SUFFIX-sigma itself does not need this, but
// the runtime supports it (JobConfig::grouping_comparator) and the paper's
// shuffle semantics depend on sort/group separation being correct.
#include <gtest/gtest.h>

#include "mapreduce/job.h"

namespace ngram::mr {
namespace {

/// Key = "<group>|<value>"; sort order is full-key bytewise.
class GroupPrefixComparator final : public RawComparator {
 public:
  int Compare(Slice a, Slice b) const override {
    return Prefix(a).compare(Prefix(b));
  }
  const char* Name() const override { return "group-prefix"; }

  static Slice Prefix(Slice key) {
    for (size_t i = 0; i < key.size(); ++i) {
      if (key[i] == '|') {
        return Slice(key.data(), i);
      }
    }
    return key;
  }
};

class CompositeKeyMapper final
    : public Mapper<uint64_t, std::string, std::string, uint64_t> {
 public:
  Status Map(const uint64_t& id, const std::string& line,
             Context* ctx) override {
    return ctx->Emit(line, id);
  }
};

/// Emits one row per group: the group prefix and the number of keys seen.
class GroupCollectReducer final
    : public Reducer<std::string, uint64_t, std::string, std::string> {
 public:
  Status Reduce(const std::string& key, Values* values,
                Context* ctx) override {
    values->Count();
    // Record the first (= smallest, by the sort order) composite key of
    // the group along with the group prefix.
    const Slice prefix = GroupPrefixComparator::Prefix(Slice(key));
    return ctx->Emit(prefix.ToString(), key);
  }
};

TEST(GroupingTest, SecondarySortGroupsByPrefix) {
  static const GroupPrefixComparator kGrouping;
  MemoryTable<uint64_t, std::string> input;
  input.Add(1, "fruit|banana");
  input.Add(2, "fruit|apple");
  input.Add(3, "veg|carrot");
  input.Add(4, "fruit|cherry");
  input.Add(5, "veg|beet");

  JobConfig config;
  config.num_reducers = 1;
  // Sort: full composite key (bytewise). Group: prefix before '|'.
  config.grouping_comparator = &kGrouping;

  MemoryTable<std::string, std::string> output;
  auto metrics = RunJob<CompositeKeyMapper, GroupCollectReducer>(
      config, input, [] { return std::make_unique<CompositeKeyMapper>(); },
      [] { return std::make_unique<GroupCollectReducer>(); }, &output);
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();

  // Two groups; each reducer invocation saw the smallest composite key of
  // its group first (the secondary-sort guarantee).
  ASSERT_EQ(output.rows.size(), 2u);
  EXPECT_EQ(output.rows[0].first, "fruit");
  EXPECT_EQ(output.rows[0].second, "fruit|apple");
  EXPECT_EQ(output.rows[1].first, "veg");
  EXPECT_EQ(output.rows[1].second, "veg|beet");
  EXPECT_EQ(metrics->Counter(kReduceInputGroups), 2u);
  EXPECT_EQ(metrics->Counter(kReduceInputRecords), 5u);
}

TEST(GroupingTest, DefaultGroupingEqualsSortComparator) {
  MemoryTable<uint64_t, std::string> input;
  input.Add(1, "fruit|banana");
  input.Add(2, "fruit|apple");

  JobConfig config;
  config.num_reducers = 1;  // No grouping comparator: two distinct groups.
  MemoryTable<std::string, std::string> output;
  auto metrics = RunJob<CompositeKeyMapper, GroupCollectReducer>(
      config, input, [] { return std::make_unique<CompositeKeyMapper>(); },
      [] { return std::make_unique<GroupCollectReducer>(); }, &output);
  ASSERT_TRUE(metrics.ok());
  EXPECT_EQ(metrics->Counter(kReduceInputGroups), 2u);
}

// --------------------------------------------------------- job chaining --

class IdentityMapper final
    : public Mapper<std::string, std::string, std::string, std::string> {
 public:
  Status Map(const std::string& key, const std::string& value,
             Context* ctx) override {
    return ctx->Emit(key, value);
  }
};

class ConcatReducer final
    : public Reducer<std::string, std::string, std::string, std::string> {
 public:
  Status Reduce(const std::string& key, Values* values,
                Context* ctx) override {
    std::string all;
    std::string v;
    while (values->Next(&v)) {
      all += v;
    }
    return ctx->Emit(key, all);
  }
};

TEST(GroupingTest, OutputFeedsNextJobAsInput) {
  MemoryTable<std::string, std::string> stage0;
  stage0.Add("k1", "a");
  stage0.Add("k1", "b");
  stage0.Add("k2", "c");

  JobConfig config;
  config.num_reducers = 2;
  MemoryTable<std::string, std::string> stage1;
  auto m1 = RunJob<IdentityMapper, ConcatReducer>(
      config, stage0, [] { return std::make_unique<IdentityMapper>(); },
      [] { return std::make_unique<ConcatReducer>(); }, &stage1);
  ASSERT_TRUE(m1.ok());

  MemoryTable<std::string, std::string> stage2;
  auto m2 = RunJob<IdentityMapper, ConcatReducer>(
      config, stage1, [] { return std::make_unique<IdentityMapper>(); },
      [] { return std::make_unique<ConcatReducer>(); }, &stage2);
  ASSERT_TRUE(m2.ok());

  std::map<std::string, std::string> result;
  for (const auto& [k, v] : stage2.rows) {
    result[k] = v;
  }
  EXPECT_EQ(result.at("k1"), "ab");
  EXPECT_EQ(result.at("k2"), "c");
}

}  // namespace
}  // namespace ngram::mr
