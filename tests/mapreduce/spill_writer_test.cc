#include "mapreduce/spill_writer.h"

#include <gtest/gtest.h>

#include <sys/stat.h>

#include <string>

#include "mapreduce/record.h"
#include "util/temp_dir.h"

namespace ngram::mr {
namespace {

bool FileExists(const std::string& path) {
  struct stat st;
  return stat(path.c_str(), &st) == 0;
}

class SpillWriterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dir = TempDir::Create("spillwriter-test");
    ASSERT_TRUE(dir.ok());
    dir_ = std::make_unique<TempDir>(std::move(dir).ValueOrDie());
  }

  std::string Path(const std::string& name) {
    return dir_->path().string() + "/" + name;
  }

  std::unique_ptr<TempDir> dir_;
};

TEST_F(SpillWriterTest, RoundTripsThroughFileRecordReader) {
  const std::string path = Path("run");
  SpillWriter writer(path);
  ASSERT_TRUE(writer.Open().ok());
  ASSERT_TRUE(writer.Append("apple", "1").ok());
  ASSERT_TRUE(writer.Append("banana", "22").ok());
  ASSERT_TRUE(writer.Append("", "empty-key").ok());
  EXPECT_EQ(writer.records_written(), 3u);
  const uint64_t total = writer.bytes_written();
  ASSERT_TRUE(writer.Close().ok());

  FileRecordReader reader(path, 0, total);
  ASSERT_TRUE(reader.Next());
  EXPECT_EQ(reader.key().ToString(), "apple");
  EXPECT_EQ(reader.value().ToString(), "1");
  ASSERT_TRUE(reader.Next());
  EXPECT_EQ(reader.key().ToString(), "banana");
  ASSERT_TRUE(reader.Next());
  EXPECT_EQ(reader.key().ToString(), "");
  EXPECT_EQ(reader.value().ToString(), "empty-key");
  EXPECT_FALSE(reader.Next());
  EXPECT_TRUE(reader.status().ok());
}

TEST_F(SpillWriterTest, OversizedRecordsBypassTheBuffer) {
  const std::string path = Path("big");
  SpillWriter::Options options;
  options.buffer_bytes = 64;  // Force both flushes and direct writes.
  SpillWriter writer(path, options);
  ASSERT_TRUE(writer.Open().ok());
  const std::string big_value(1000, 'x');
  ASSERT_TRUE(writer.Append("small", "v").ok());
  ASSERT_TRUE(writer.Append("big", big_value).ok());
  ASSERT_TRUE(writer.Append("after", "w").ok());
  const uint64_t total = writer.bytes_written();
  ASSERT_TRUE(writer.Close().ok());

  FileRecordReader reader(path, 0, total);
  ASSERT_TRUE(reader.Next());
  ASSERT_TRUE(reader.Next());
  EXPECT_EQ(reader.value().ToString(), big_value);
  ASSERT_TRUE(reader.Next());
  EXPECT_EQ(reader.key().ToString(), "after");
  EXPECT_FALSE(reader.Next());
}

TEST_F(SpillWriterTest, BytesWrittenTracksBufferedBytes) {
  SpillWriter writer(Path("offsets"));
  ASSERT_TRUE(writer.Open().ok());
  std::string expected;
  AppendRecord(&expected, "key", "value");
  ASSERT_TRUE(writer.Append("key", "value").ok());
  // Nothing has been flushed yet, but the logical offset must advance so
  // segment extents recorded mid-stream are correct.
  EXPECT_EQ(writer.bytes_written(), expected.size());
  ASSERT_TRUE(writer.Close().ok());
}

TEST_F(SpillWriterTest, AbandonUnlinksTheFile) {
  const std::string path = Path("abandoned");
  SpillWriter writer(path);
  ASSERT_TRUE(writer.Open().ok());
  ASSERT_TRUE(writer.Append("k", "v").ok());
  // Mid-write bytes are staged at "<path>.tmp"; the committed name does
  // not exist until Close() renames it into place.
  EXPECT_TRUE(FileExists(path + ".tmp"));
  EXPECT_FALSE(FileExists(path));
  writer.Abandon();
  EXPECT_FALSE(FileExists(path + ".tmp"));
  EXPECT_FALSE(FileExists(path));
  // Later appends fail instead of writing to a dangling handle.
  EXPECT_FALSE(writer.Append("k2", "v2").ok());
}

TEST_F(SpillWriterTest, DestructorWithoutCloseUnlinks) {
  const std::string path = Path("leaked");
  {
    SpillWriter writer(path);
    ASSERT_TRUE(writer.Open().ok());
    ASSERT_TRUE(writer.Append("k", "v").ok());
    EXPECT_TRUE(FileExists(path + ".tmp"));
  }
  EXPECT_FALSE(FileExists(path + ".tmp"));
  EXPECT_FALSE(FileExists(path));
}

TEST_F(SpillWriterTest, NeverOpenedWriterLeavesExistingFileAlone) {
  const std::string path = Path("precious");
  {
    SpillWriter writer(path);
    ASSERT_TRUE(writer.Open().ok());
    ASSERT_TRUE(writer.Append("k", "v").ok());
    ASSERT_TRUE(writer.Close().ok());
  }
  ASSERT_TRUE(FileExists(path));
  {
    SpillWriter never_opened(path);  // Constructed, then bails pre-Open.
  }
  EXPECT_TRUE(FileExists(path));
  SpillWriter unclosed(path);
  EXPECT_FALSE(unclosed.Close().ok());
  EXPECT_TRUE(FileExists(path));
}

TEST_F(SpillWriterTest, ChecksumRoundTrips) {
  const std::string path = Path("crc");
  SpillWriter::Options options;
  options.buffer_bytes = 32;  // Multiple flush blocks.
  options.checksum = true;
  SpillWriter writer(path, options);
  ASSERT_TRUE(writer.Open().ok());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(writer.Append("key" + std::to_string(i), "value").ok());
  }
  ASSERT_TRUE(writer.Close().ok());
  EXPECT_TRUE(VerifySpillFileCrc32(path, writer.crc32()).ok());
  EXPECT_TRUE(
      VerifySpillFileCrc32(path, writer.crc32() ^ 1).IsCorruption());
}

TEST(Crc32Test, MatchesKnownVector) {
  // CRC-32 of "123456789" under the zlib polynomial.
  EXPECT_EQ(Crc32(0, "123456789", 9), 0xcbf43926u);
}

}  // namespace
}  // namespace ngram::mr
