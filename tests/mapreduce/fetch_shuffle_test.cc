// Fetch-shuffle identity tests (docs/architecture.md section 10): with
// JobConfig::fetch_shuffle on, every shuffled byte crosses a transport
// into clone run files and the reduce side plans only over the clones —
// and the job's output and data counters must be byte-identical to the
// direct-registry run for every merge factor, slot count, and transport.
// Plus: clean failure when the transport is persistently unreachable, and
// a concurrency stress shape for the TSan job.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/runner.h"
#include "mapreduce/dataset.h"
#include "mapreduce/job.h"
#include "net/inproc_transport.h"
#include "testing/test_util.h"
#include "util/temp_dir.h"

namespace ngram::mr {
namespace {

/// Fan-out over a small shared key space: spill-heavy under a tiny sort
/// buffer and sensitive to any reordering anywhere in the merge.
class FanOutMapper final
    : public Mapper<uint64_t, std::string, std::string, std::string> {
 public:
  Status Map(const uint64_t& id, const std::string& row,
             Context* ctx) override {
    for (uint32_t j = 0; j < 4; ++j) {
      NGRAM_RETURN_NOT_OK(
          ctx->Emit("key" + std::to_string((id * 31 + j) % 23),
                    row + ":" + std::to_string(j)));
    }
    return Status::OK();
  }
};

/// Re-emits every record verbatim: the output is the exact merged record
/// stream, so any fetch-path reordering or corruption shows as a diff.
class IdentityReducer final : public RawReducer<std::string, std::string> {
 public:
  Status Reduce(GroupValueIterator* group, Context* ctx) override {
    while (group->NextValue()) {
      NGRAM_RETURN_NOT_OK(ctx->EmitRaw(group->key(), group->value()));
    }
    return Status::OK();
  }
};

RecordTable FetchInput() {
  MemoryTable<uint64_t, std::string> input;
  for (uint64_t i = 0; i < 100; ++i) {
    input.Add(i, "row-" + std::to_string(i) + "-payloadpayload");
  }
  return EncodeTable(input);
}

std::string TableBytes(const RecordTable& table) {
  std::string bytes;
  auto reader = table.NewReader();
  while (reader->Next()) {
    AppendRecord(&bytes, reader->key(), reader->value());
  }
  EXPECT_TRUE(reader->status().ok());
  return bytes;
}

/// The counters whose values are pure functions of input + config — what
/// "data counters byte-identical" means. Spill/merge accounting moves
/// with fetch mode (the final flush is forced to disk so it can be
/// served) and the fetch counters only exist fetch-on, so neither side
/// of the comparison includes them.
std::map<std::string, uint64_t> DataCounters(
    const std::map<std::string, uint64_t>& counters) {
  static const char* const kDataCounters[] = {
      kMapInputRecords,     kMapInputBytes,     kMapOutputRecords,
      kMapOutputBytes,      kCombineInputRecords,
      kCombineOutputRecords, kReduceInputGroups, kReduceInputRecords,
      kReduceOutputRecords, kReduceInputRecordsMax,
  };
  std::map<std::string, uint64_t> data;
  for (const char* name : kDataCounters) {
    auto it = counters.find(name);
    data[name] = it == counters.end() ? 0 : it->second;
  }
  return data;
}

struct JobResult {
  Status status = Status::OK();
  std::string output_bytes;
  std::map<std::string, uint64_t> counters;
};

JobResult RunFetchJob(JobConfig config, const std::string& work_dir) {
  config.work_dir = work_dir;
  JobResult result;
  RecordTable output;
  auto metrics = RunJob<FanOutMapper, IdentityReducer>(
      config, FetchInput(), [] { return std::make_unique<FanOutMapper>(); },
      [] { return std::make_unique<IdentityReducer>(); }, &output);
  if (!metrics.ok()) {
    result.status = metrics.status();
    return result;
  }
  result.output_bytes = TableBytes(output);
  result.counters = metrics->counters;
  return result;
}

JobConfig FetchConfig(uint32_t merge_factor, uint32_t shuffle_slots) {
  JobConfig config;
  config.name = "fetch-test";
  config.sort_buffer_bytes = 512;  // Spill-heavy.
  config.num_map_tasks = 3;
  config.num_reducers = 2;
  config.map_slots = 2;
  config.reduce_slots = 2;
  config.merge_factor = merge_factor;
  config.shuffle_slots = shuffle_slots;
  return config;
}

size_t FilesIn(const std::string& dir) {
  size_t n = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    (void)entry;
    ++n;
  }
  return n;
}

/// The identity sweep: fetch on (both transports) vs fetch off across
/// merge factor x shuffle slots. Output bytes and data counters must
/// match exactly; fetch mode must actually move bytes over the wire.
TEST(FetchShuffleTest, OutputAndDataCountersIdenticalAcrossConfigs) {
  for (uint32_t merge_factor : {2u, 16u, 0u}) {
    for (uint32_t shuffle_slots : {0u, 2u}) {
      const JobConfig base = FetchConfig(merge_factor, shuffle_slots);
      auto off_dir = TempDir::Create("fetch-off");
      ASSERT_TRUE(off_dir.ok());
      const JobResult off = RunFetchJob(base, off_dir->path().string());
      ASSERT_TRUE(off.status.ok()) << off.status.ToString();
      EXPECT_EQ(off.counters.count(kShuffleFetchBytes), 0u);

      for (const ShuffleTransport transport :
           {ShuffleTransport::kInProc, ShuffleTransport::kUnixSocket}) {
        JobConfig fetch = base;
        fetch.fetch_shuffle = true;
        fetch.shuffle_transport = transport;
        auto on_dir = TempDir::Create("fetch-on");
        ASSERT_TRUE(on_dir.ok());
        const std::string work_dir = on_dir->path().string();
        const JobResult on = RunFetchJob(fetch, work_dir);
        const std::string label =
            "merge_factor=" + std::to_string(merge_factor) +
            " shuffle_slots=" + std::to_string(shuffle_slots) +
            " transport=" +
            (transport == ShuffleTransport::kInProc ? "inproc" : "socket");
        ASSERT_TRUE(on.status.ok()) << label << ": "
                                    << on.status.ToString();
        EXPECT_EQ(on.output_bytes, off.output_bytes) << label;
        EXPECT_EQ(DataCounters(on.counters), DataCounters(off.counters))
            << label;
        // Every shuffled byte crossed the transport.
        EXPECT_GT(on.counters.at(kShuffleFetchBytes), 0u) << label;
        // Both cleanup guards ran: no clone, origin, or socket leftovers.
        EXPECT_EQ(FilesIn(work_dir), 0u) << label;
      }
    }
  }
}

/// Fetch bytes are themselves deterministic (fault-free): two identical
/// fetch-on runs move exactly the same bytes over the wire.
TEST(FetchShuffleTest, FetchByteCountIsDeterministic) {
  JobConfig config = FetchConfig(/*merge_factor=*/2, /*shuffle_slots=*/0);
  config.fetch_shuffle = true;
  auto dir_a = TempDir::Create("fetch-det-a");
  auto dir_b = TempDir::Create("fetch-det-b");
  ASSERT_TRUE(dir_a.ok());
  ASSERT_TRUE(dir_b.ok());
  const JobResult a = RunFetchJob(config, dir_a->path().string());
  const JobResult b = RunFetchJob(config, dir_b->path().string());
  ASSERT_TRUE(a.status.ok());
  ASSERT_TRUE(b.status.ok());
  EXPECT_EQ(a.counters.at(kShuffleFetchBytes),
            b.counters.at(kShuffleFetchBytes));
  // Fault-free: no retry ever happened, so the counter was never created.
  EXPECT_EQ(a.counters.count(kFetchRetries), 0u);
}

/// A persistently unreachable shuffle server must fail the job cleanly —
/// map attempts exhausted, clean Status, clean work_dir — never hang or
/// emit partial output.
TEST(FetchShuffleTest, UnreachableServerFailsCleanly) {
  JobConfig config = FetchConfig(/*merge_factor=*/16, /*shuffle_slots=*/0);
  config.fetch_shuffle = true;
  // External server address: the job dials instead of serving loopback —
  // and nothing is listening there.
  auto sock_dir = TempDir::Create("fetch-nosrv-sock");
  ASSERT_TRUE(sock_dir.ok());
  config.shuffle_server_address =
      (sock_dir->path() / "nobody.sock").string();
  config.max_task_attempts = 2;

  auto dir = TempDir::Create("fetch-nosrv");
  ASSERT_TRUE(dir.ok());
  const std::string work_dir = dir->path().string();
  const JobResult result = RunFetchJob(config, work_dir);
  EXPECT_FALSE(result.status.ok());
  EXPECT_EQ(FilesIn(work_dir), 0u) << result.status.ToString();
}

/// The test seam: a caller-owned transport replaces the job-constructed
/// one (chaos tests decorate it with FaultTransport).
TEST(FetchShuffleTest, TransportOverrideSeamCarriesTheShuffle) {
  net::InProcTransport transport;
  JobConfig config = FetchConfig(/*merge_factor=*/2, /*shuffle_slots=*/0);
  config.fetch_shuffle = true;
  config.shuffle_transport_override = &transport;
  auto dir = TempDir::Create("fetch-seam");
  ASSERT_TRUE(dir.ok());
  const JobResult on = RunFetchJob(config, dir->path().string());
  ASSERT_TRUE(on.status.ok()) << on.status.ToString();
  EXPECT_GT(on.counters.at(kShuffleFetchBytes), 0u);

  JobConfig off_config = FetchConfig(2, 0);
  auto off_dir = TempDir::Create("fetch-seam-off");
  ASSERT_TRUE(off_dir.ok());
  const JobResult off = RunFetchJob(off_config, off_dir->path().string());
  ASSERT_TRUE(off.status.ok());
  EXPECT_EQ(on.output_bytes, off.output_bytes);
}

/// All four paper methods agree fetch-on vs fetch-off, statistics and
/// data counters both — the end-to-end placement-independence claim.
TEST(FetchShuffleTest, AllMethodsAgreeFetchOnAndOff) {
  const Corpus corpus = testing::RandomCorpus(61, 40, 6, 3, 12);
  const CorpusContext ctx = BuildCorpusContext(corpus);
  for (Method method :
       {Method::kNaive, Method::kAprioriScan, Method::kAprioriIndex,
        Method::kSuffixSigma}) {
    NgramJobOptions off = testing::TestOptions(method, 2, 4);
    off.sort_buffer_bytes = 2048;  // Spill-heavy.
    off.merge_factor = 4;
    NgramJobOptions on = off;
    on.fetch_shuffle = true;
    auto a = ComputeNgramStatistics(ctx, off);
    auto b = ComputeNgramStatistics(ctx, on);
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    ASSERT_TRUE(b.ok()) << b.status().ToString();
    a->stats.SortCanonical();
    b->stats.SortCanonical();
    EXPECT_TRUE(a->stats.SameAs(b->stats)) << MethodName(method);
    for (const char* counter :
         {kMapOutputRecords, kMapOutputBytes, kReduceInputRecords,
          kReduceOutputRecords}) {
      EXPECT_EQ(a->metrics.TotalCounter(counter),
                b->metrics.TotalCounter(counter))
          << MethodName(method) << " " << counter;
    }
    EXPECT_GT(b->metrics.TotalCounter(kShuffleFetchBytes), 0u)
        << MethodName(method);
  }
}

/// Concurrency shape for the TSan job (ci.yml runs FetchShuffleStressTest.*
/// under ThreadSanitizer): wide slots, overlap on, fetch on — map
/// attempts mirroring through one server while eager mergers read the
/// clone registry.
TEST(FetchShuffleStressTest, ConcurrentMirrorsAndEagerMergesStayIdentical) {
  JobConfig config = FetchConfig(/*merge_factor=*/2, /*shuffle_slots=*/2);
  config.fetch_shuffle = true;
  config.num_map_tasks = 6;
  config.map_slots = 4;
  config.reduce_slots = 4;
  config.num_reducers = 4;

  JobConfig off_config = config;
  off_config.fetch_shuffle = false;
  auto off_dir = TempDir::Create("fetch-stress-off");
  ASSERT_TRUE(off_dir.ok());
  const JobResult off = RunFetchJob(off_config, off_dir->path().string());
  ASSERT_TRUE(off.status.ok());

  for (int round = 0; round < 3; ++round) {
    auto dir = TempDir::Create("fetch-stress");
    ASSERT_TRUE(dir.ok());
    const JobResult on = RunFetchJob(config, dir->path().string());
    ASSERT_TRUE(on.status.ok()) << on.status.ToString();
    EXPECT_EQ(on.output_bytes, off.output_bytes) << "round " << round;
    EXPECT_EQ(DataCounters(on.counters), DataCounters(off.counters))
        << "round " << round;
  }
}

}  // namespace
}  // namespace ngram::mr
