// Tests of the raw grouped reduce pipeline: RawReducer + GroupValueIterator
// streaming serialized key groups zero-copy off the k-way merge, and the
// edge cases of group-boundary detection — a grouping comparator coarser
// than the sort order, a single group spanning many spill runs, empty
// values, and reducers that never touch their iterator.
#include <gtest/gtest.h>

#include <map>

#include "mapreduce/job.h"

namespace ngram::mr {
namespace {

// --------------------------------------------------------- raw word count --

class WordMapper final
    : public Mapper<uint64_t, std::string, std::string, uint64_t> {
 public:
  Status Map(const uint64_t& id, const std::string& line,
             Context* ctx) override {
    size_t start = 0;
    while (start < line.size()) {
      size_t end = line.find(' ', start);
      if (end == std::string::npos) {
        end = line.size();
      }
      if (end > start) {
        NGRAM_RETURN_NOT_OK(ctx->Emit(line.substr(start, end - start), 1));
      }
      start = end + 1;
    }
    return Status::OK();
  }
};

/// Sums varint values straight off the merge slices; the key is emitted
/// from group->key() *after* the drain — exercising the guarantee that the
/// last consumed record's key bytes outlive the group.
class RawSumReducer final : public RawReducer<std::string, uint64_t> {
 public:
  Status Reduce(GroupValueIterator* group, Context* ctx) override {
    uint64_t total = 0;
    while (group->NextValue()) {
      uint64_t v = 0;
      if (!Serde<uint64_t>::Decode(group->value(), &v)) {
        return Status::Corruption("bad value");
      }
      total += v;
    }
    return ctx->Emit(group->key().ToString(), total);
  }
};

MemoryTable<uint64_t, std::string> WordInput() {
  MemoryTable<uint64_t, std::string> input;
  input.Add(1, "the quick brown fox");
  input.Add(2, "the lazy dog");
  input.Add(3, "the quick dog jumps");
  input.Add(4, "fox and dog and fox");
  return input;
}

std::map<std::string, uint64_t> Collected(
    const MemoryTable<std::string, uint64_t>& output) {
  std::map<std::string, uint64_t> result;
  for (const auto& [k, v] : output.rows) {
    result[k] = v;
  }
  return result;
}

TEST(RawReduceTest, RawReducerMatchesTypedResult) {
  const std::map<std::string, uint64_t> expected = {
      {"the", 3}, {"quick", 2}, {"brown", 1}, {"fox", 3},
      {"lazy", 1}, {"dog", 3},  {"jumps", 1}, {"and", 2}};
  JobConfig config;
  config.num_reducers = 3;
  MemoryTable<std::string, uint64_t> output;
  auto metrics = RunJob<WordMapper, RawSumReducer>(
      config, WordInput(), [] { return std::make_unique<WordMapper>(); },
      [] { return std::make_unique<RawSumReducer>(); }, &output);
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  EXPECT_EQ(Collected(output), expected);
  EXPECT_EQ(metrics->Counter(kReduceInputGroups), 8u);
  EXPECT_EQ(metrics->Counter(kReduceInputRecords), 16u);
}

TEST(RawReduceTest, RawReducerSurvivesSpillsAndManyRuns) {
  // A tiny sort buffer makes nearly every record its own spill run, so
  // every group spans many file-backed merge sources and every boundary
  // decision crosses a refill-prone reader.
  const std::map<std::string, uint64_t> expected = {
      {"the", 3}, {"quick", 2}, {"brown", 1}, {"fox", 3},
      {"lazy", 1}, {"dog", 3},  {"jumps", 1}, {"and", 2}};
  JobConfig config;
  config.sort_buffer_bytes = 64;
  config.num_reducers = 2;
  MemoryTable<std::string, uint64_t> output;
  auto metrics = RunJob<WordMapper, RawSumReducer>(
      config, WordInput(), [] { return std::make_unique<WordMapper>(); },
      [] { return std::make_unique<RawSumReducer>(); }, &output);
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  EXPECT_EQ(Collected(output), expected);
  EXPECT_GT(metrics->Counter(kSpillFiles), 0u);
}

// ------------------------------------------- one group, many spill runs --

class SharedKeyMapper final
    : public Mapper<uint64_t, std::string, std::string, uint64_t> {
 public:
  Status Map(const uint64_t& id, const std::string& line,
             Context* ctx) override {
    return ctx->Emit("shared", id);
  }
};

TEST(RawReduceTest, SingleGroupSpansMultipleSpillRuns) {
  JobConfig config;
  config.sort_buffer_bytes = 48;  // Every few records spill a run.
  config.num_reducers = 1;
  config.num_map_tasks = 2;
  MemoryTable<uint64_t, std::string> input;
  uint64_t expected_sum = 0;
  for (uint64_t i = 0; i < 64; ++i) {
    input.Add(i, "x");
    expected_sum += i;
  }
  MemoryTable<std::string, uint64_t> output;
  auto metrics = RunJob<SharedKeyMapper, RawSumReducer>(
      config, input, [] { return std::make_unique<SharedKeyMapper>(); },
      [] { return std::make_unique<RawSumReducer>(); }, &output);
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  ASSERT_EQ(output.rows.size(), 1u);
  EXPECT_EQ(output.rows[0].first, "shared");
  EXPECT_EQ(output.rows[0].second, expected_sum);
  EXPECT_EQ(metrics->Counter(kReduceInputGroups), 1u);
  EXPECT_EQ(metrics->Counter(kReduceInputRecords), 64u);
  EXPECT_GT(metrics->Counter(kSpillFiles), 2u);
}

// -------------------------------- grouping coarser than the sort order --

/// Key = "<group>|<value>"; groups on the prefix before '|'.
class PrefixGroupingComparator final : public RawComparator {
 public:
  int Compare(Slice a, Slice b) const override {
    return Prefix(a).compare(Prefix(b));
  }
  const char* Name() const override { return "prefix-grouping"; }

  static Slice Prefix(Slice key) {
    for (size_t i = 0; i < key.size(); ++i) {
      if (key[i] == '|') {
        return Slice(key.data(), i);
      }
    }
    return key;
  }
};

class CompositeMapper final
    : public Mapper<uint64_t, std::string, std::string, uint64_t> {
 public:
  Status Map(const uint64_t& id, const std::string& line,
             Context* ctx) override {
    return ctx->Emit(line, 1);
  }
};

/// Raw reducer recording, per group: the leading composite key (captured
/// *before* advancing, as coarse-grouping consumers must) and the count.
class GroupRecordingReducer final : public RawReducer<std::string, uint64_t> {
 public:
  Status Reduce(GroupValueIterator* group, Context* ctx) override {
    const std::string leading = group->key().ToString();
    const uint64_t n = group->Count();
    return ctx->Emit(leading, n);
  }
};

TEST(RawReduceTest, CoarseGroupingComparatorSpanningSpills) {
  // Sort order is the full composite key; grouping collapses everything
  // before '|'. With a tiny sort buffer each group's records spread over
  // many runs, so boundary detection must compare adjacent records from
  // different sources under the *grouping* comparator (the cached sort
  // prefixes differ within a group and must not split it).
  static const PrefixGroupingComparator kGrouping;
  MemoryTable<uint64_t, std::string> input;
  input.Add(1, "fruit|banana");
  input.Add(2, "fruit|apple");
  input.Add(3, "veg|carrot");
  input.Add(4, "fruit|cherry");
  input.Add(5, "veg|beet");
  input.Add(6, "fruit|date");
  input.Add(7, "veg|asparagus");

  for (size_t sort_buffer : {size_t{64}, size_t{1} << 20}) {
    JobConfig config;
    config.sort_buffer_bytes = sort_buffer;
    config.num_reducers = 1;
    config.grouping_comparator = &kGrouping;
    MemoryTable<std::string, uint64_t> output;
    auto metrics = RunJob<CompositeMapper, GroupRecordingReducer>(
        config, input, [] { return std::make_unique<CompositeMapper>(); },
        [] { return std::make_unique<GroupRecordingReducer>(); }, &output);
    ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
    ASSERT_EQ(output.rows.size(), 2u) << "sort_buffer=" << sort_buffer;
    // Secondary-sort guarantee: each group leads with its smallest
    // composite key, and spans all its records.
    EXPECT_EQ(output.rows[0].first, "fruit|apple");
    EXPECT_EQ(output.rows[0].second, 4u);
    EXPECT_EQ(output.rows[1].first, "veg|asparagus");
    EXPECT_EQ(output.rows[1].second, 3u);
    EXPECT_EQ(metrics->Counter(kReduceInputGroups), 2u);
    EXPECT_EQ(metrics->Counter(kReduceInputRecords), 7u);
  }
}

// ------------------------------------------------- empty-value records --

class EmptyValueMapper final
    : public Mapper<uint64_t, std::string, std::string, std::string> {
 public:
  Status Map(const uint64_t& id, const std::string& line,
             Context* ctx) override {
    return ctx->Emit(line, "");  // Zero-byte value.
  }
};

class EmptyValueCheckingReducer final
    : public RawReducer<std::string, uint64_t> {
 public:
  Status Reduce(GroupValueIterator* group, Context* ctx) override {
    uint64_t n = 0;
    while (group->NextValue()) {
      if (!group->value().empty()) {
        return Status::Corruption("expected empty value");
      }
      ++n;
    }
    return ctx->Emit(group->key().ToString(), n);
  }
};

TEST(RawReduceTest, EmptyValueRecordsStreamCorrectly) {
  JobConfig config;
  config.num_reducers = 2;
  config.sort_buffer_bytes = 32;  // Exercise the spill framing too.
  MemoryTable<uint64_t, std::string> input;
  for (uint64_t i = 0; i < 10; ++i) {
    input.Add(i, i % 2 == 0 ? "even" : "odd");
  }
  MemoryTable<std::string, uint64_t> output;
  auto metrics = RunJob<EmptyValueMapper, EmptyValueCheckingReducer>(
      config, input, [] { return std::make_unique<EmptyValueMapper>(); },
      [] { return std::make_unique<EmptyValueCheckingReducer>(); }, &output);
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  EXPECT_EQ(Collected(output),
            (std::map<std::string, uint64_t>{{"even", 5}, {"odd", 5}}));
}

// ------------------------------------- unconsumed group value iterator --

/// Never touches its iterator: the driver must skip the whole group and
/// still deliver every following group intact.
class IgnoringReducer final : public RawReducer<std::string, uint64_t> {
 public:
  Status Reduce(GroupValueIterator* group, Context* ctx) override {
    ++groups_;
    if (groups_ % 2 == 1) {
      return Status::OK();  // Leave every odd group fully unconsumed.
    }
    return ctx->Emit(group->key().ToString(), group->Count());
  }

 private:
  uint64_t groups_ = 0;
};

TEST(RawReduceTest, UnconsumedGroupIteratorIsSkipped) {
  JobConfig config;
  config.num_reducers = 1;  // One task: groups alternate consumed/skipped.
  config.sort_buffer_bytes = 64;
  MemoryTable<uint64_t, std::string> input;
  input.Add(1, "a a a b c c d d d d");
  MemoryTable<std::string, uint64_t> output;
  auto metrics = RunJob<WordMapper, IgnoringReducer>(
      config, input, [] { return std::make_unique<WordMapper>(); },
      [] { return std::make_unique<IgnoringReducer>(); }, &output);
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  // Groups arrive sorted: a(3) b(1) c(2) d(4); odd-indexed ones (a, c)
  // are skipped unconsumed, b and d are emitted with exact counts.
  EXPECT_EQ(Collected(output),
            (std::map<std::string, uint64_t>{{"b", 1}, {"d", 4}}));
  // Skipped groups still count every record.
  EXPECT_EQ(metrics->Counter(kReduceInputGroups), 4u);
  EXPECT_EQ(metrics->Counter(kReduceInputRecords), 10u);
}

}  // namespace
}  // namespace ngram::mr
