// Early shuffle (JobConfig::shuffle_slots): eager pre-barrier merging
// must be byte-invisible — identical job output and data counters with
// overlap on or off, for every merge factor and slot count — and the
// reduce-side merge planner must size its first intermediate pass
// remainder-first over the smallest consecutive window (Hadoop-style, so
// later passes are full and cheap bytes are re-spilled first).
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "mapreduce/job.h"
#include "mapreduce/merge.h"
#include "mapreduce/runfile.h"
#include "util/temp_dir.h"

namespace ngram::mr {
namespace {

/// Emits `fan_out` records per row with keys shared across rows and tasks
/// (key space of 23) and values unique per (row, j): any reordering of
/// equal keys anywhere in the merge shows up in the output bytes.
class FanOutMapper final
    : public Mapper<uint64_t, std::string, std::string, std::string> {
 public:
  explicit FanOutMapper(uint32_t fan_out) : fan_out_(fan_out) {}

  Status Map(const uint64_t& id, const std::string& row,
             Context* ctx) override {
    for (uint32_t j = 0; j < fan_out_; ++j) {
      NGRAM_RETURN_NOT_OK(
          ctx->Emit("key" + std::to_string((id * 31 + j) % 23),
                    row + ":" + std::to_string(j)));
    }
    return Status::OK();
  }

 private:
  const uint32_t fan_out_;
};

/// FanOutMapper whose Cleanup dawdles: map-task commits spread out over
/// wall time, giving the eager merge workers room to drain ready windows
/// before the barrier (the "map is the bottleneck" regime the early
/// shuffle targets).
class SlowCommitFanOutMapper final
    : public Mapper<uint64_t, std::string, std::string, std::string> {
 public:
  Status Map(const uint64_t& id, const std::string& row,
             Context* ctx) override {
    return inner_.Map(id, row, ctx);
  }

  Status Cleanup(Context*) override {
    // Commits spread over >= 40 ms of wall time (16 tasks on 2 slots)
    // while each eager window merges a few KiB — ample room for the
    // workers to complete passes before Finish() stops them.
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    return Status::OK();
  }

 private:
  FanOutMapper inner_{6};
};

/// Re-emits every record verbatim: the job output is the exact merged
/// record stream.
class IdentityReducer final : public RawReducer<std::string, std::string> {
 public:
  Status Reduce(GroupValueIterator* group, Context* ctx) override {
    while (group->NextValue()) {
      NGRAM_RETURN_NOT_OK(ctx->EmitRaw(group->key(), group->value()));
    }
    return Status::OK();
  }
};

class FailingReducer final : public RawReducer<std::string, std::string> {
 public:
  Status Reduce(GroupValueIterator* group, Context* ctx) override {
    return Status::InvalidArgument("reducer refuses to reduce");
  }
};

MemoryTable<uint64_t, std::string> StressInput(uint64_t rows) {
  MemoryTable<uint64_t, std::string> input;
  for (uint64_t i = 0; i < rows; ++i) {
    input.Add(i, "row-" + std::to_string(i) + "-payloadpayloadpayload");
  }
  return input;
}

std::string TableBytes(const RecordTable& table) {
  std::string bytes;
  auto reader = table.NewReader();
  while (reader->Next()) {
    AppendRecord(&bytes, reader->key(), reader->value());
  }
  EXPECT_TRUE(reader->status().ok());
  return bytes;
}

Result<JobMetrics> RunStressJob(const JobConfig& config, uint64_t rows,
                                uint32_t fan_out, RecordTable* output) {
  return RunJob<FanOutMapper, IdentityReducer>(
      config, StressInput(rows),
      [fan_out] { return std::make_unique<FanOutMapper>(fan_out); },
      [] { return std::make_unique<IdentityReducer>(); }, output);
}

/// Counters that describe the *data* a job moved — independent of how the
/// merge passes were scheduled, so they must match exactly with the early
/// shuffle on or off. (Merge accounting and kBarrierWaitMs are
/// scheduling/timing-dependent by design once shuffle_slots > 0.)
const char* const kDataCounters[] = {
    kMapInputRecords,  kMapInputBytes,     kMapOutputRecords,
    kMapOutputBytes,   kReduceInputGroups, kReduceInputRecords,
    kReduceOutputRecords, kSpillFiles,     kSpilledRecords,
    kReduceInputRecordsMax,
};

TEST(EarlyShuffleTest, ByteIdenticalAcrossSlotCountsAndMergeFactors) {
  // Reference: overlap off, unbounded fan-in — the simplest plan. Every
  // (merge_factor, shuffle_slots) combination must reproduce its output
  // and data counters exactly; merge_factor 0 additionally proves the
  // knob is inert when the service is gated off.
  JobConfig reference_config;
  reference_config.sort_buffer_bytes = 1024;
  reference_config.num_map_tasks = 12;
  reference_config.map_slots = 3;
  reference_config.num_reducers = 3;
  reference_config.merge_factor = 0;
  RecordTable reference_output;
  auto reference = RunStressJob(reference_config, 240, 4, &reference_output);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  const std::string reference_bytes = TableBytes(reference_output);
  ASSERT_GT(reference->Counter(kSpillFiles), 0u);

  for (uint32_t merge_factor : {2u, 16u, 0u}) {
    for (uint32_t shuffle_slots : {0u, 1u, 2u, 4u}) {
      JobConfig config = reference_config;
      config.merge_factor = merge_factor;
      config.shuffle_slots = shuffle_slots;
      RecordTable output;
      auto metrics = RunStressJob(config, 240, 4, &output);
      const std::string label =
          "merge_factor=" + std::to_string(merge_factor) +
          " shuffle_slots=" + std::to_string(shuffle_slots);
      ASSERT_TRUE(metrics.ok()) << label << ": "
                                << metrics.status().ToString();
      EXPECT_EQ(TableBytes(output), reference_bytes) << label;
      for (const char* counter : kDataCounters) {
        EXPECT_EQ(metrics->Counter(counter), reference->Counter(counter))
            << label << " counter=" << counter;
      }
    }
  }
}

TEST(EarlyShuffleTest, EagerPassesRunBeforeBarrierAndSplitTheTotals) {
  // Slow commits + fast eager merges: the workers should complete at
  // least one window before the barrier. EARLY_* is a breakout of the
  // job-level totals, alongside the map/reduce ones.
  JobConfig config;
  config.sort_buffer_bytes = 1024;
  config.num_map_tasks = 16;
  config.map_slots = 2;
  config.num_reducers = 2;
  config.merge_factor = 4;
  config.shuffle_slots = 2;
  RecordTable output;
  auto metrics = RunJob<SlowCommitFanOutMapper, IdentityReducer>(
      config, StressInput(320),
      [] { return std::make_unique<SlowCommitFanOutMapper>(); },
      [] { return std::make_unique<IdentityReducer>(); }, &output);
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  EXPECT_GE(metrics->Counter(kEarlyMergePasses), 1u);
  EXPECT_GE(metrics->Counter(kEarlyMergeBytes), 1u);
  EXPECT_EQ(metrics->Counter(kMapMergePasses) +
                metrics->Counter(kReduceMergePasses) +
                metrics->Counter(kEarlyMergePasses),
            metrics->Counter(kMergePasses));
  EXPECT_EQ(metrics->Counter(kMapIntermediateMergeBytes) +
                metrics->Counter(kReduceIntermediateMergeBytes) +
                metrics->Counter(kEarlyMergeBytes),
            metrics->Counter(kIntermediateMergeBytes));

  // The pipeline view carries the early-shuffle fields and reports them.
  RunMetrics run_metrics;
  run_metrics.Add(*metrics);
  const PipelineMetrics pipeline = run_metrics.pipeline();
  ASSERT_EQ(pipeline.num_rounds(), 1);
  EXPECT_EQ(pipeline.rounds[0].early_merge_passes,
            metrics->Counter(kEarlyMergePasses));
  EXPECT_EQ(pipeline.rounds[0].early_merge_bytes,
            metrics->Counter(kEarlyMergeBytes));
  EXPECT_NE(pipeline.ToString().find("early-merged"), std::string::npos)
      << pipeline.ToString();

  // And the output still matches the overlap-off run.
  JobConfig plain = config;
  plain.shuffle_slots = 0;
  RecordTable plain_output;
  auto plain_metrics = RunJob<SlowCommitFanOutMapper, IdentityReducer>(
      plain, StressInput(320),
      [] { return std::make_unique<SlowCommitFanOutMapper>(); },
      [] { return std::make_unique<IdentityReducer>(); }, &plain_output);
  ASSERT_TRUE(plain_metrics.ok()) << plain_metrics.status().ToString();
  EXPECT_EQ(TableBytes(output), TableBytes(plain_output));
}

TEST(EarlyShuffleTest, WorkDirCleanAfterOverlapJobs) {
  // Successful overlap job: eager intermediates are service-owned scratch
  // and must be gone with the rest of the run files.
  {
    auto dir = TempDir::Create("early-clean");
    ASSERT_TRUE(dir.ok());
    JobConfig config;
    config.work_dir = dir->path().string();
    config.sort_buffer_bytes = 1024;
    config.num_map_tasks = 12;
    config.map_slots = 2;
    config.num_reducers = 2;
    config.merge_factor = 4;
    config.shuffle_slots = 2;
    RecordTable output;
    auto metrics = RunStressJob(config, 240, 6, &output);
    ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
    EXPECT_TRUE(std::filesystem::is_empty(dir->path()));
  }
  // Failed overlap job (reducer error, no retries): the eager outputs the
  // workers did complete must still be unlinked on the way out.
  {
    auto dir = TempDir::Create("early-clean-fail");
    ASSERT_TRUE(dir.ok());
    JobConfig config;
    config.work_dir = dir->path().string();
    config.sort_buffer_bytes = 1024;
    config.num_map_tasks = 12;
    config.map_slots = 2;
    config.num_reducers = 2;
    config.merge_factor = 4;
    config.shuffle_slots = 2;
    RecordTable output;
    auto metrics = RunJob<FanOutMapper, FailingReducer>(
        config, StressInput(240),
        [] { return std::make_unique<FanOutMapper>(6); },
        [] { return std::make_unique<FailingReducer>(); }, &output);
    ASSERT_FALSE(metrics.ok());
    EXPECT_TRUE(metrics.status().IsInvalidArgument())
        << metrics.status().ToString();
    EXPECT_TRUE(std::filesystem::is_empty(dir->path()));
  }
}

// ------------------------------------------------ merge-plan unit tests

/// Writes one single-partition block-format run of `records` to `path`.
SpillRun WriteRun(
    const std::string& path,
    const std::vector<std::pair<std::string, std::string>>& records) {
  RunWriterOptions options;
  auto writer = NewRunWriter(path, options);
  EXPECT_TRUE(writer->Open().ok());
  for (const auto& [k, v] : records) {
    EXPECT_TRUE(writer->Append(k, v).ok());
  }
  EXPECT_TRUE(writer->FinishSegment().ok());
  EXPECT_TRUE(writer->Close().ok());
  SpillRun run;
  run.file_path = path;
  run.segments = {{0, writer->bytes_written(),
                   static_cast<uint64_t>(records.size())}};
  run.block_format = writer->block_format();
  return run;
}

/// Drains `result`'s final-pass sources through the reducer-feeding
/// merger into raw frames (the exact record stream a reducer would see).
std::string DrainPlan(ReduceMergeResult* result) {
  KWayMerger merger(std::move(result->sources),
                    BytewiseComparator::Instance());
  std::string bytes;
  while (merger.Next()) {
    AppendRecord(&bytes, merger.key(), merger.value());
  }
  EXPECT_TRUE(merger.status().ok());
  return bytes;
}

struct PlanFixture {
  std::vector<SpillRun> runs;
  std::vector<const SpillRun*> pointers;
  Counters counters;
  TaskCounters tc{&counters};
  RunCrcVerifier verifier;

  ExternalMergeOptions Options(const std::string& work_dir,
                               uint32_t merge_factor) {
    ExternalMergeOptions options;
    options.merge_factor = merge_factor;
    options.work_dir = work_dir;
    options.name_prefix = "plan-test";
    options.verifier = &verifier;
    options.counters = &tc;
    return options;
  }

  void Finish() { tc.Flush(); }
};

/// `num_runs` runs with overlapping keys and (run, index)-tagged values;
/// runs in `tiny` get a single short record, the rest `bulk_records`
/// long ones.
void BuildRuns(PlanFixture* fix, const std::string& dir, size_t num_runs,
               const std::vector<size_t>& tiny, size_t bulk_records) {
  for (size_t r = 0; r < num_runs; ++r) {
    std::vector<std::pair<std::string, std::string>> records;
    const bool is_tiny =
        std::find(tiny.begin(), tiny.end(), r) != tiny.end();
    const size_t n = is_tiny ? 1 : bulk_records;
    for (size_t i = 0; i < n; ++i) {
      records.emplace_back(
          "key" + std::to_string((r * 7 + i) % 11),
          "run" + std::to_string(r) + ":" + std::to_string(i) +
              (is_tiny ? "" : std::string(40, 'x')));
    }
    std::sort(records.begin(), records.end());
    fix->runs.push_back(
        WriteRun(dir + "/run-" + std::to_string(r) + ".run", records));
  }
  for (const SpillRun& run : fix->runs) {
    fix->pointers.push_back(&run);
  }
}

TEST(ReduceMergePlanTest, FirstPassMergesTheSmallestRemainderWindow) {
  // 18 fd sources at factor 16: one pass of (18 - 16 - 1) % 15 + 2 = 3
  // consecutive sources brings the count to 16. Among the sixteen
  // candidate windows of size 3, the one covering the three tiny runs
  // (indices 7..9) has by far the fewest at-rest bytes — the plan must
  // pick it, so the intermediate output is tiny too.
  auto dir = TempDir::Create("plan-smallest");
  ASSERT_TRUE(dir.ok());
  PlanFixture fix;
  BuildRuns(&fix, dir->path().string(), 18, {7, 8, 9}, 60);

  ReduceMergeResult result;
  ASSERT_TRUE(PrepareReduceMerge(fix.Options(dir->path().string(), 16),
                                 fix.pointers, 0, &result)
                  .ok());
  EXPECT_EQ(result.sources.size(), 16u);
  ASSERT_EQ(result.intermediate_files.size(), 1u);
  const std::string merged = DrainPlan(&result);
  RemoveFiles(result.intermediate_files);
  fix.Finish();
  EXPECT_EQ(fix.counters.Get(kReduceMergePasses), 1u);
  // A window containing even one bulk run would re-spill > 2 KiB; the
  // tiny window re-spills three short records.
  const uint64_t bytes = fix.counters.Get(kReduceIntermediateMergeBytes);
  EXPECT_GT(bytes, 0u);
  EXPECT_LT(bytes, 500u);

  // And the bounded plan's record stream is byte-identical to the
  // unbounded single-pass merge of the same sources.
  ReduceMergeResult unbounded;
  ASSERT_TRUE(PrepareReduceMerge(fix.Options(dir->path().string(), 0),
                                 fix.pointers, 0, &unbounded)
                  .ok());
  EXPECT_TRUE(unbounded.intermediate_files.empty());
  EXPECT_EQ(DrainPlan(&unbounded), merged);
}

TEST(ReduceMergePlanTest, RemainderFirstSizingKeepsLaterPassesFull) {
  // 20 equal fd sources at factor 16: remainder-first means ONE pass of
  // (20 - 16 - 1) % 15 + 2 = 5 sources (a naive full-width sweep would
  // merge 16 of the 20 — re-spilling three times the bytes). All runs are
  // the same size, so the byte charge bounds the window the plan chose.
  auto dir = TempDir::Create("plan-remainder");
  ASSERT_TRUE(dir.ok());
  PlanFixture fix;
  BuildRuns(&fix, dir->path().string(), 20, {}, 40);
  const uint64_t run_bytes = fix.runs[0].segments[0].length;

  ReduceMergeResult result;
  ASSERT_TRUE(PrepareReduceMerge(fix.Options(dir->path().string(), 16),
                                 fix.pointers, 0, &result)
                  .ok());
  EXPECT_EQ(result.sources.size(), 16u);
  EXPECT_EQ(result.intermediate_files.size(), 1u);
  const std::string merged = DrainPlan(&result);
  RemoveFiles(result.intermediate_files);
  fix.Finish();
  EXPECT_EQ(fix.counters.Get(kReduceMergePasses), 1u);
  const uint64_t bytes = fix.counters.Get(kReduceIntermediateMergeBytes);
  // ~5 runs' worth re-encoded (front-coding makes the output a bit
  // smaller or larger than the inputs; bound it well clear of 16 runs).
  EXPECT_GT(bytes, 2 * run_bytes);
  EXPECT_LT(bytes, 8 * run_bytes);

  ReduceMergeResult unbounded;
  ASSERT_TRUE(PrepareReduceMerge(fix.Options(dir->path().string(), 0),
                                 fix.pointers, 0, &unbounded)
                  .ok());
  EXPECT_EQ(DrainPlan(&unbounded), merged);
}

TEST(ReduceMergePlanTest, MultiPassPlansStayByteIdentical) {
  // Deep recursion: 20 sources at factor 2 forces a long chain of
  // two-way intermediate passes; the final stream must still match the
  // unbounded merge exactly (tie-break preserved through every level).
  auto dir = TempDir::Create("plan-deep");
  ASSERT_TRUE(dir.ok());
  PlanFixture fix;
  BuildRuns(&fix, dir->path().string(), 20, {3, 11}, 15);

  ReduceMergeResult bounded;
  ASSERT_TRUE(PrepareReduceMerge(fix.Options(dir->path().string(), 2),
                                 fix.pointers, 0, &bounded)
                  .ok());
  EXPECT_LE(bounded.sources.size(), 2u);
  const std::string merged = DrainPlan(&bounded);
  RemoveFiles(bounded.intermediate_files);
  fix.Finish();
  EXPECT_EQ(fix.counters.Get(kReduceMergePasses), 18u);  // 20 -> 2, -1 each.

  ReduceMergeResult unbounded;
  ASSERT_TRUE(PrepareReduceMerge(fix.Options(dir->path().string(), 0),
                                 fix.pointers, 0, &unbounded)
                  .ok());
  EXPECT_EQ(DrainPlan(&unbounded), merged);
}

}  // namespace
}  // namespace ngram::mr
