// Edge cases of reducer value streaming and mapper lifecycle: partially
// consumed groups, zero-consumption reducers, in-mapper combining via
// Cleanup(), and counter accounting for skipped values.
#include <gtest/gtest.h>

#include <map>

#include "mapreduce/job.h"

namespace ngram::mr {
namespace {

class FanOutMapper final
    : public Mapper<uint64_t, uint64_t, std::string, uint64_t> {
 public:
  Status Map(const uint64_t& key, const uint64_t& count,
             Context* ctx) override {
    for (uint64_t i = 0; i < count; ++i) {
      NGRAM_RETURN_NOT_OK(ctx->Emit("g" + std::to_string(key), i));
    }
    return Status::OK();
  }
};

/// Consumes only the first value of each group.
class FirstValueReducer final
    : public Reducer<std::string, uint64_t, std::string, uint64_t> {
 public:
  Status Reduce(const std::string& key, Values* values,
                Context* ctx) override {
    uint64_t first = 0;
    if (!values->Next(&first)) {
      return Status::Internal("empty group");
    }
    return ctx->Emit(key, first);
  }
};

TEST(StreamingTest, PartiallyConsumedGroupsDoNotLeakIntoNextGroup) {
  MemoryTable<uint64_t, uint64_t> input;
  input.Add(1, 5);   // Group g1 with 5 values.
  input.Add(2, 1);   // Group g2 with 1 value.
  input.Add(3, 17);  // Group g3 with 17 values.

  JobConfig config;
  config.num_reducers = 1;
  MemoryTable<std::string, uint64_t> output;
  auto metrics = RunJob<FanOutMapper, FirstValueReducer>(
      config, input, [] { return std::make_unique<FanOutMapper>(); },
      [] { return std::make_unique<FirstValueReducer>(); }, &output);
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();

  // Every group must be seen exactly once despite partial consumption.
  std::map<std::string, uint64_t> result;
  for (const auto& [k, v] : output.rows) {
    result[k] = v;
  }
  EXPECT_EQ(result.size(), 3u);
  EXPECT_EQ(result.at("g1"), 0u);
  EXPECT_EQ(result.at("g2"), 0u);
  EXPECT_EQ(result.at("g3"), 0u);
  // Skipped values still count as reduce input records.
  EXPECT_EQ(metrics->Counter(kReduceInputRecords), 23u);
  EXPECT_EQ(metrics->Counter(kReduceInputGroups), 3u);
}

/// Never touches the value stream at all.
class IgnoreValuesReducer final
    : public Reducer<std::string, uint64_t, std::string, uint64_t> {
 public:
  Status Reduce(const std::string& key, Values* values,
                Context* ctx) override {
    return ctx->Emit(key, 1);
  }
};

TEST(StreamingTest, ZeroConsumptionReducerStillSeesEveryGroup) {
  MemoryTable<uint64_t, uint64_t> input;
  input.Add(1, 3);
  input.Add(2, 4);
  JobConfig config;
  config.num_reducers = 2;
  MemoryTable<std::string, uint64_t> output;
  auto metrics = RunJob<FanOutMapper, IgnoreValuesReducer>(
      config, input, [] { return std::make_unique<FanOutMapper>(); },
      [] { return std::make_unique<IgnoreValuesReducer>(); }, &output);
  ASSERT_TRUE(metrics.ok());
  EXPECT_EQ(output.rows.size(), 2u);
  EXPECT_EQ(metrics->Counter(kReduceInputRecords), 7u);
}

/// In-mapper combining: buffers counts in a hash map and emits them from
/// Cleanup() — the "local aggregation" pattern from Section V that
/// APRIORI-INDEX's Mapper #1 uses.
class InMapperCombiningMapper final
    : public Mapper<uint64_t, std::string, std::string, uint64_t> {
 public:
  Status Map(const uint64_t& id, const std::string& word,
             Context* ctx) override {
    ++buffer_[word];
    return Status::OK();
  }

  Status Cleanup(Context* ctx) override {
    for (const auto& [word, count] : buffer_) {
      NGRAM_RETURN_NOT_OK(ctx->Emit(word, count));
    }
    return Status::OK();
  }

 private:
  std::map<std::string, uint64_t> buffer_;
};

class SumReducer2 final
    : public Reducer<std::string, uint64_t, std::string, uint64_t> {
 public:
  Status Reduce(const std::string& key, Values* values,
                Context* ctx) override {
    uint64_t total = 0, v = 0;
    while (values->Next(&v)) {
      total += v;
    }
    return ctx->Emit(key, total);
  }
};

TEST(StreamingTest, InMapperCombiningViaCleanup) {
  MemoryTable<uint64_t, std::string> input;
  for (uint64_t i = 0; i < 30; ++i) {
    input.Add(i, i % 3 == 0 ? "fizz" : "other");
  }
  JobConfig config;
  config.num_map_tasks = 3;
  MemoryTable<std::string, uint64_t> output;
  auto metrics = RunJob<InMapperCombiningMapper, SumReducer2>(
      config, input,
      [] { return std::make_unique<InMapperCombiningMapper>(); },
      [] { return std::make_unique<SumReducer2>(); }, &output);
  ASSERT_TRUE(metrics.ok());
  std::map<std::string, uint64_t> result;
  for (const auto& [k, v] : output.rows) {
    result[k] = v;
  }
  EXPECT_EQ(result.at("fizz"), 10u);
  EXPECT_EQ(result.at("other"), 20u);
  // At most (tasks x distinct words) records were shuffled, not 30.
  EXPECT_LE(metrics->Counter(kMapOutputRecords), 6u);
}

/// Mapper that emits nothing; reducers must be invoked zero times but the
/// job still succeeds.
class SilentMapper final
    : public Mapper<uint64_t, std::string, std::string, uint64_t> {
 public:
  Status Map(const uint64_t&, const std::string&, Context*) override {
    return Status::OK();
  }
};

TEST(StreamingTest, NoMapOutputMeansNoReduceGroups) {
  MemoryTable<uint64_t, std::string> input;
  input.Add(1, "ignored");
  JobConfig config;
  MemoryTable<std::string, uint64_t> output;
  auto metrics = RunJob<SilentMapper, SumReducer2>(
      config, input, [] { return std::make_unique<SilentMapper>(); },
      [] { return std::make_unique<SumReducer2>(); }, &output);
  ASSERT_TRUE(metrics.ok());
  EXPECT_TRUE(output.empty());
  EXPECT_EQ(metrics->Counter(kReduceInputGroups), 0u);
}

}  // namespace
}  // namespace ngram::mr
