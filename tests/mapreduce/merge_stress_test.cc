// Bounded-fan-in external merge at scale: many-spill stress, byte-identical
// determinism across merge factors, fd-pressure under a lowered RLIMIT_NOFILE,
// and CRC verification of checksummed runs on the reduce-side read path.
#include <gtest/gtest.h>

#include <sys/resource.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "mapreduce/job.h"
#include "util/temp_dir.h"

namespace ngram::mr {
namespace {

/// Emits `fan_out` records per input row with keys shared across rows and
/// tasks (key space of 23) and values unique per (row, j) — so any
/// reordering of equal keys anywhere in the merge shows up in the output
/// bytes.
class FanOutMapper final
    : public Mapper<uint64_t, std::string, std::string, std::string> {
 public:
  explicit FanOutMapper(uint32_t fan_out) : fan_out_(fan_out) {}

  Status Map(const uint64_t& id, const std::string& row,
             Context* ctx) override {
    for (uint32_t j = 0; j < fan_out_; ++j) {
      NGRAM_RETURN_NOT_OK(
          ctx->Emit("key" + std::to_string((id * 31 + j) % 23),
                    row + ":" + std::to_string(j)));
    }
    return Status::OK();
  }

 private:
  const uint32_t fan_out_;
};

/// Re-emits every record of every group verbatim: the job output is the
/// exact merged record stream, which makes byte comparison sensitive to
/// any ordering or content deviation.
class IdentityReducer final : public RawReducer<std::string, std::string> {
 public:
  Status Reduce(GroupValueIterator* group, Context* ctx) override {
    while (group->NextValue()) {
      NGRAM_RETURN_NOT_OK(ctx->EmitRaw(group->key(), group->value()));
    }
    return Status::OK();
  }
};

class CountingMapper final
    : public Mapper<uint64_t, std::string, std::string, uint64_t> {
 public:
  Status Map(const uint64_t& id, const std::string& word,
             Context* ctx) override {
    return ctx->Emit(word, 1);
  }
};

class SumReducer final
    : public Reducer<std::string, uint64_t, std::string, uint64_t> {
 public:
  Status Reduce(const std::string& key, Values* values,
                Context* ctx) override {
    uint64_t total = 0, v = 0;
    while (values->Next(&v)) {
      total += v;
    }
    return ctx->Emit(key, total);
  }
};

MemoryTable<uint64_t, std::string> StressInput(uint64_t rows) {
  MemoryTable<uint64_t, std::string> input;
  for (uint64_t i = 0; i < rows; ++i) {
    input.Add(i, "row-" + std::to_string(i) + "-payloadpayloadpayload");
  }
  return input;
}

/// Serializes a RecordTable's framed records (the byte-identity probe).
std::string TableBytes(const RecordTable& table) {
  std::string bytes;
  auto reader = table.NewReader();
  while (reader->Next()) {
    AppendRecord(&bytes, reader->key(), reader->value());
  }
  EXPECT_TRUE(reader->status().ok());
  return bytes;
}

Result<JobMetrics> RunStressJob(const JobConfig& config, uint64_t rows,
                                uint32_t fan_out, RecordTable* output) {
  return RunJob<FanOutMapper, IdentityReducer>(
      config, StressInput(rows),
      [fan_out] { return std::make_unique<FanOutMapper>(fan_out); },
      [] { return std::make_unique<IdentityReducer>(); }, output);
}

TEST(MergeStressTest, ManySpillRunsMergeCorrectly) {
  JobConfig config;
  config.sort_buffer_bytes = 1024;  // ~10 records per run.
  config.num_map_tasks = 4;
  config.num_reducers = 3;
  config.merge_factor = 8;
  RecordTable output;
  auto metrics = RunStressJob(config, 300, 8, &output);
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  EXPECT_GE(metrics->Counter(kSpillFiles), 100u);
  EXPECT_GT(metrics->Counter(kMergePasses), 0u);
  EXPECT_GT(metrics->Counter(kIntermediateMergeBytes), 0u);
  EXPECT_EQ(output.num_records(), 300u * 8u);

  // Same job without any spilling at all must produce the same bytes.
  JobConfig roomy = config;
  roomy.sort_buffer_bytes = 64ULL << 20;
  RecordTable roomy_output;
  ASSERT_TRUE(RunStressJob(roomy, 300, 8, &roomy_output).ok());
  EXPECT_EQ(TableBytes(output), TableBytes(roomy_output));
}

TEST(MergeStressTest, ByteIdenticalAcrossMergeFactors) {
  // merge_factor 0 (unbounded) is the pre-bounded-merge baseline; every
  // bounded configuration must reproduce its output byte for byte, both
  // with map-side final merges (few tasks, many runs each) and with
  // reduce-side multi-pass merges (many tasks).
  for (uint32_t num_map_tasks : {3u, 24u}) {
    std::string reference;
    for (uint32_t merge_factor : {0u, 2u, 3u, 16u}) {
      JobConfig config;
      config.sort_buffer_bytes = 1024;
      config.num_map_tasks = num_map_tasks;
      config.num_reducers = 3;
      config.merge_factor = merge_factor;
      RecordTable output;
      auto metrics = RunStressJob(config, 120, 6, &output);
      ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
      const std::string bytes = TableBytes(output);
      if (reference.empty()) {
        reference = bytes;
      } else {
        EXPECT_EQ(bytes, reference)
            << "merge_factor=" << merge_factor
            << " num_map_tasks=" << num_map_tasks;
      }
    }
    ASSERT_FALSE(reference.empty());
  }
}

TEST(MergeStressTest, NoSpillJobNeverReSpills) {
  // merge_factor bounds fds and read buffers; in-memory zero-copy runs
  // cost neither. A job whose map tasks all stay within the sort buffer
  // must keep its fully in-memory reduce path even when the task count
  // exceeds merge_factor — no intermediate passes, no disk I/O.
  JobConfig config;
  config.num_map_tasks = 24;
  config.num_reducers = 2;
  config.merge_factor = 4;  // Far below the 24 in-memory sources.
  RecordTable output;
  auto metrics = RunStressJob(config, 120, 6, &output);
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  EXPECT_EQ(metrics->Counter(kSpillFiles), 0u);
  EXPECT_EQ(metrics->Counter(kMergePasses), 0u);
  EXPECT_EQ(metrics->Counter(kIntermediateMergeBytes), 0u);
  EXPECT_EQ(output.num_records(), 120u * 6u);
}

TEST(MergeStressTest, MixedMemoryAndFileSourcesStayByteIdentical) {
  // Some tasks spill (oversized payloads), others finish in memory, so
  // the reduce-side source list interleaves file-backed and in-memory
  // runs. Grouping only the fd-costing sources must still reproduce the
  // unbounded output byte for byte.
  MemoryTable<uint64_t, std::string> input;
  for (uint64_t i = 0; i < 120; ++i) {
    // Every few rows, a payload larger than the sort buffer: the task
    // that gets it spills; tasks with only small rows stay in memory.
    const bool big = i % 5 == 0;
    input.Add(i, (big ? std::string(3000, 'x') : "small") + ":" +
                     std::to_string(i));
  }
  std::string reference;
  for (uint32_t merge_factor : {0u, 2u, 3u}) {
    JobConfig config;
    config.sort_buffer_bytes = 2048;
    config.num_map_tasks = 30;
    config.num_reducers = 2;
    config.merge_factor = merge_factor;
    RecordTable output;
    auto metrics = RunJob<FanOutMapper, IdentityReducer>(
        config, input, [] { return std::make_unique<FanOutMapper>(3); },
        [] { return std::make_unique<IdentityReducer>(); }, &output);
    ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
    if (merge_factor == 0) {
      // Spills happened; and since only 24 rows are big, at least 6 of
      // the 30 tasks saw none and finished with an in-memory run — the
      // source list is genuinely mixed.
      EXPECT_GT(metrics->Counter(kSpillFiles), 0u);
    }
    const std::string bytes = TableBytes(output);
    if (reference.empty()) {
      reference = bytes;
    } else {
      EXPECT_EQ(bytes, reference) << "merge_factor=" << merge_factor;
    }
  }
}

TEST(MergeStressTest, CombinerRunsAcrossRunsInMapSideFinalMerge) {
  MemoryTable<uint64_t, std::string> input;
  for (uint64_t i = 0; i < 400; ++i) {
    input.Add(i, "word" + std::to_string(i % 5));
  }
  JobConfig config;
  config.sort_buffer_bytes = 512;  // Many runs per task.
  config.num_map_tasks = 2;
  config.num_reducers = 2;
  config.merge_factor = 4;
  MemoryTable<std::string, uint64_t> output;
  auto metrics = RunJob<CountingMapper, SumReducer>(
      config, input, [] { return std::make_unique<CountingMapper>(); },
      [] { return std::make_unique<SumReducer>(); }, &output, SumCombiner());
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  std::map<std::string, uint64_t> counts(output.rows.begin(),
                                         output.rows.end());
  std::map<std::string, uint64_t> expected;
  for (uint64_t i = 0; i < 400; ++i) {
    ++expected["word" + std::to_string(i % 5)];
  }
  EXPECT_EQ(counts, expected);
  EXPECT_GT(metrics->Counter(kMergePasses), 0u);
  // The map-side final merge re-combined across runs: each map task hands
  // the reduce phase at most (distinct keys) records — far fewer than the
  // per-run combined records the spills held.
  EXPECT_LE(metrics->Counter(kReduceInputRecords),
            5u * config.num_map_tasks);
}

TEST(MergeStressTest, CompletesUnderLowFdLimit) {
  // >= 256 spill runs must not translate into >= 256 simultaneously open
  // fds: with the bound, open files per reduce task stay O(merge_factor).
  // Runs with compress_runs at its default (on), so the fd-pressure path
  // is exercised over block-format runs; the raw-format variant below
  // keeps the original coverage. CI runs both under `ulimit -n 64`.
  struct rlimit saved;
  ASSERT_EQ(getrlimit(RLIMIT_NOFILE, &saved), 0);
  struct rlimit lowered = saved;
  lowered.rlim_cur = 64;
  ASSERT_EQ(setrlimit(RLIMIT_NOFILE, &lowered), 0);

  JobConfig config;
  config.sort_buffer_bytes = 1024;
  config.num_map_tasks = 32;
  config.map_slots = 2;
  config.reduce_slots = 2;
  config.num_reducers = 2;
  config.merge_factor = 4;
  RecordTable output;
  auto metrics = RunStressJob(config, 640, 10, &output);

  ASSERT_EQ(setrlimit(RLIMIT_NOFILE, &saved), 0);
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  EXPECT_GE(metrics->Counter(kSpillFiles), 256u);
  EXPECT_EQ(output.num_records(), 640u * 10u);

  // And the output still matches the unbounded baseline, run with the
  // saved fd limit restored. When the ambient limit is itself low (CI
  // runs this binary under `ulimit -n 64`), the unbounded run dies on
  // fd exhaustion — the exact blow-up the bound fixes — and the byte
  // identity is already covered by ByteIdenticalAcrossMergeFactors.
  JobConfig unbounded = config;
  unbounded.merge_factor = 0;
  RecordTable baseline;
  auto baseline_metrics = RunStressJob(unbounded, 640, 10, &baseline);
  if (baseline_metrics.ok()) {
    EXPECT_EQ(TableBytes(output), TableBytes(baseline));
  } else {
    EXPECT_TRUE(baseline_metrics.status().IsIOError())
        << baseline_metrics.status().ToString();
  }
}

TEST(MergeStressTest, CompletesUnderLowFdLimitWithEarlyShuffle) {
  // Same fd-pressure scenario with the early shuffle overlapping eager
  // merges with map execution: the service's own merge passes open at
  // most merge_factor sources plus one output per worker, so the fd
  // ceiling holds with the pipeline enabled too — and the output still
  // matches the overlap-off run byte for byte.
  struct rlimit saved;
  ASSERT_EQ(getrlimit(RLIMIT_NOFILE, &saved), 0);
  struct rlimit lowered = saved;
  lowered.rlim_cur = 64;
  ASSERT_EQ(setrlimit(RLIMIT_NOFILE, &lowered), 0);

  JobConfig config;
  config.sort_buffer_bytes = 1024;
  config.num_map_tasks = 32;
  config.map_slots = 2;
  config.reduce_slots = 2;
  config.num_reducers = 2;
  config.merge_factor = 4;
  config.shuffle_slots = 2;
  RecordTable output;
  auto metrics = RunStressJob(config, 640, 10, &output);

  JobConfig plain = config;
  plain.shuffle_slots = 0;
  RecordTable plain_output;
  auto plain_metrics = RunStressJob(plain, 640, 10, &plain_output);

  ASSERT_EQ(setrlimit(RLIMIT_NOFILE, &saved), 0);
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  ASSERT_TRUE(plain_metrics.ok()) << plain_metrics.status().ToString();
  EXPECT_GE(metrics->Counter(kSpillFiles), 256u);
  EXPECT_EQ(output.num_records(), 640u * 10u);
  EXPECT_EQ(TableBytes(output), TableBytes(plain_output));
}

TEST(MergeStressTest, CompletesUnderLowFdLimitRawRuns) {
  // Same fd-pressure scenario over raw-format runs (compress_runs off).
  struct rlimit saved;
  ASSERT_EQ(getrlimit(RLIMIT_NOFILE, &saved), 0);
  struct rlimit lowered = saved;
  lowered.rlim_cur = 64;
  ASSERT_EQ(setrlimit(RLIMIT_NOFILE, &lowered), 0);

  JobConfig config;
  config.sort_buffer_bytes = 1024;
  config.num_map_tasks = 32;
  config.map_slots = 2;
  config.reduce_slots = 2;
  config.num_reducers = 2;
  config.merge_factor = 4;
  config.compress_runs = false;
  RecordTable output;
  auto metrics = RunStressJob(config, 640, 10, &output);

  ASSERT_EQ(setrlimit(RLIMIT_NOFILE, &saved), 0);
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  EXPECT_GE(metrics->Counter(kSpillFiles), 256u);
  EXPECT_EQ(output.num_records(), 640u * 10u);
}

// --------------------------------------------------- CRC verification --

/// CountingMapper that, during the last map task's Cleanup, flips the
/// last byte of the lexicographically first run file in `work_dir`
/// (map_slots=1 serializes tasks, so task 0's runs are committed by
/// then — the victim is always one of its files).
class FlipOnCleanupMapper final
    : public Mapper<uint64_t, std::string, std::string, uint64_t> {
 public:
  explicit FlipOnCleanupMapper(std::string work_dir)
      : work_dir_(std::move(work_dir)) {}

  Status Map(const uint64_t& id, const std::string& word,
             Context* ctx) override {
    return ctx->Emit(word, 1);
  }

  Status Cleanup(Context* ctx) override {
    if (ctx->task_id() != 1) {
      return Status::OK();
    }
    std::string victim;
    for (const auto& entry :
         std::filesystem::directory_iterator(work_dir_)) {
      const std::string path = entry.path().string();
      if (victim.empty() || path < victim) {
        victim = path;
      }
    }
    EXPECT_FALSE(victim.empty());
    std::fstream file(victim,
                      std::ios::in | std::ios::out | std::ios::binary);
    file.seekg(0, std::ios::end);
    const auto size = file.tellg();
    file.seekp(size - std::streamoff(1));
    file.put('\0');  // varint 1 -> varint 0.
    return Status::OK();  // Corrupt silently; the attempt itself succeeds.
  }

 private:
  const std::string work_dir_;
};

/// Runs a spill-heavy word count in `work_dir` with one committed run
/// file silently damaged mid-job (see FlipOnCleanupMapper). With raw runs
/// the flipped byte is the final record's varint value 1 -> 0: framing
/// stays valid, the count silently changes. With compressed runs the
/// same flip lands in the last block's CRC trailer (or payload), which
/// per-block verification catches unconditionally.
Result<JobMetrics> RunWithBitFlip(bool compress, bool checksum,
                                  const std::string& work_dir,
                                  std::map<std::string, uint64_t>* counts) {
  MemoryTable<uint64_t, std::string> input;
  for (uint64_t i = 0; i < 200; ++i) {
    input.Add(i, "word" + std::to_string(i % 3));
  }
  JobConfig config;
  config.work_dir = work_dir;
  config.sort_buffer_bytes = 512;
  config.num_map_tasks = 2;
  config.map_slots = 1;
  config.num_reducers = 1;
  config.merge_factor = 0;  // Keep original spill files around for the flip.
  config.compress_runs = compress;
  config.checksum_spills = checksum;
  MemoryTable<std::string, uint64_t> output;
  auto metrics = RunJob<FlipOnCleanupMapper, SumReducer>(
      config, input,
      [&work_dir] { return std::make_unique<FlipOnCleanupMapper>(work_dir); },
      [] { return std::make_unique<SumReducer>(); }, &output);
  counts->clear();
  for (const auto& [k, v] : output.rows) {
    (*counts)[k] = v;
  }
  return metrics;
}

TEST(MergeStressTest, ChecksumCatchesBitFlipOtherwiseSilent) {
  // Control: raw runs without checksum_spills — the flipped value byte
  // passes every structural check and the job "succeeds" with a wrong
  // count, exactly the silent corruption the knob exists to catch.
  {
    auto dir = TempDir::Create("crc-off");
    ASSERT_TRUE(dir.ok());
    std::map<std::string, uint64_t> counts;
    auto metrics = RunWithBitFlip(/*compress=*/false, /*checksum=*/false,
                                  dir->path().string(), &counts);
    ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
    uint64_t total = 0;
    for (const auto& [k, v] : counts) {
      total += v;
    }
    EXPECT_EQ(total, 199u);  // One unit count was zeroed out.
  }
  // With checksums, the reduce-side verification refuses the damaged run
  // and the job fails with Corruption through the retry machinery.
  {
    auto dir = TempDir::Create("crc-on");
    ASSERT_TRUE(dir.ok());
    std::map<std::string, uint64_t> counts;
    auto metrics = RunWithBitFlip(/*compress=*/false, /*checksum=*/true,
                                  dir->path().string(), &counts);
    ASSERT_FALSE(metrics.ok());
    EXPECT_TRUE(metrics.status().IsCorruption())
        << metrics.status().ToString();
  }
}

TEST(MergeStressTest, CompressedRunsCatchBitFlipWithoutChecksumKnob) {
  // Block-format runs carry per-block CRCs verified as blocks are
  // decoded: the same flip the raw control above swallows fails with
  // Corruption even with checksum_spills off — integrity is inherent to
  // the format, not a separate pass.
  auto dir = TempDir::Create("block-crc");
  ASSERT_TRUE(dir.ok());
  std::map<std::string, uint64_t> counts;
  auto metrics = RunWithBitFlip(/*compress=*/true, /*checksum=*/false,
                                dir->path().string(), &counts);
  ASSERT_FALSE(metrics.ok());
  EXPECT_TRUE(metrics.status().IsCorruption()) << metrics.status().ToString();
}

TEST(MergeStressTest, ByteIdenticalWithAndWithoutCompression) {
  // compress_runs changes only the at-rest representation: the record
  // stream a reducer sees — and therefore the job output — must be
  // byte-identical for every merge factor, including multi-pass merges
  // whose intermediates are themselves compressed.
  for (uint32_t merge_factor : {0u, 2u, 16u}) {
    std::string reference;
    for (bool compress : {false, true}) {
      JobConfig config;
      config.sort_buffer_bytes = 1024;
      config.num_map_tasks = 8;
      config.num_reducers = 3;
      config.merge_factor = merge_factor;
      config.compress_runs = compress;
      RecordTable output;
      auto metrics = RunStressJob(config, 200, 6, &output);
      ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
      EXPECT_GT(metrics->Counter(kSpillFiles), 0u);
      if (compress) {
        // This workload's 4-byte keys share almost no prefix and its 1 KiB
        // runs pay block framing per handful of records, so at-rest bytes
        // may exceed raw slightly — bound the overhead; the compression
        // *win* on realistic sorted keys is asserted in
        // SortBufferTest.CompressedSpillsShrinkAndCountRunBytes and
        // EquivalenceTest.CompressedRunsShrinkSuffixSigmaSpills.
        EXPECT_GT(metrics->Counter(kRunBytesWritten), 0u);
        EXPECT_LT(metrics->Counter(kRunBytesWritten),
                  metrics->Counter(kRunBytesRaw) * 115 / 100);
      } else {
        EXPECT_EQ(metrics->Counter(kRunBytesWritten),
                  metrics->Counter(kRunBytesRaw));
      }
      const std::string bytes = TableBytes(output);
      if (reference.empty()) {
        reference = bytes;
      } else {
        EXPECT_EQ(bytes, reference)
            << "compress=" << compress << " merge_factor=" << merge_factor;
      }
    }
    ASSERT_FALSE(reference.empty());
  }
}

TEST(MergeStressTest, PerPhaseMergeCountersSplitTheTotals) {
  // Few tasks spilling many runs each → map-side final merges; many
  // tasks → reduce-side passes. The phase breakouts must sum to the
  // job-level totals in both regimes.
  for (uint32_t num_map_tasks : {2u, 24u}) {
    JobConfig config;
    config.sort_buffer_bytes = 1024;
    config.num_map_tasks = num_map_tasks;
    config.num_reducers = 2;
    config.merge_factor = 4;
    RecordTable output;
    auto metrics = RunStressJob(config, 240, 6, &output);
    ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
    EXPECT_GT(metrics->Counter(kMergePasses), 0u);
    EXPECT_EQ(metrics->Counter(kMapMergePasses) +
                  metrics->Counter(kReduceMergePasses),
              metrics->Counter(kMergePasses));
    EXPECT_EQ(metrics->Counter(kMapIntermediateMergeBytes) +
                  metrics->Counter(kReduceIntermediateMergeBytes),
              metrics->Counter(kIntermediateMergeBytes));
    if (num_map_tasks == 2) {
      // 2 tasks x ~40 runs with merge_factor 4: the map side must merge.
      EXPECT_GT(metrics->Counter(kMapMergePasses), 0u);
    } else {
      // 24 file-backed sources into one reduce partition: reduce passes.
      EXPECT_GT(metrics->Counter(kReduceMergePasses), 0u);
    }

    // The per-round pipeline view (what the multi-job runner logs)
    // carries the breakdown and the at-rest byte split.
    RunMetrics run_metrics;
    run_metrics.Add(*metrics);
    const PipelineMetrics pipeline = run_metrics.pipeline();
    ASSERT_EQ(pipeline.num_rounds(), 1);
    const PipelineMetrics::Round& round = pipeline.rounds[0];
    EXPECT_EQ(round.spill_files, metrics->Counter(kSpillFiles));
    EXPECT_EQ(round.map_merge_passes, metrics->Counter(kMapMergePasses));
    EXPECT_EQ(round.reduce_merge_bytes,
              metrics->Counter(kReduceIntermediateMergeBytes));
    EXPECT_EQ(round.run_bytes_raw, metrics->Counter(kRunBytesRaw));
    EXPECT_EQ(round.run_bytes_written, metrics->Counter(kRunBytesWritten));
    const std::string log_line = pipeline.ToString();
    EXPECT_NE(log_line.find("spilled"), std::string::npos) << log_line;
    EXPECT_NE(log_line.find("re-spill map"), std::string::npos) << log_line;
  }
}

TEST(MergeStressTest, ChecksummedMultiPassMergeVerifiesEveryStage) {
  // Checksums on + bounded fan-in: map runs, map-side merged runs, and
  // reduce-side intermediate outputs all go through CRC verification.
  // Raw format explicitly — whole-run CRCs are inert for block-format
  // runs (which verify per block instead), and this test exists to keep
  // the raw path (RunCrcVerifier, input/intermediate verifies) covered.
  JobConfig config;
  config.sort_buffer_bytes = 1024;
  config.num_map_tasks = 24;
  config.num_reducers = 2;
  config.merge_factor = 3;
  config.compress_runs = false;
  config.checksum_spills = true;
  RecordTable output;
  auto metrics = RunStressJob(config, 240, 6, &output);
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  EXPECT_GT(metrics->Counter(kMergePasses), 0u);

  JobConfig plain = config;
  plain.checksum_spills = false;
  RecordTable plain_output;
  ASSERT_TRUE(RunStressJob(plain, 240, 6, &plain_output).ok());
  EXPECT_EQ(TableBytes(output), TableBytes(plain_output));
}

}  // namespace
}  // namespace ngram::mr
