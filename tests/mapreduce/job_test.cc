// End-to-end tests of the job driver: word count, combiners, custom
// partitioners/comparators, the spill path, cleanup hooks, counters, and
// determinism across slot configurations.
#include "mapreduce/job.h"

#include <gtest/gtest.h>

#include <map>
#include <numeric>

#include "util/random.h"

namespace ngram::mr {
namespace {

// ----------------------------------------------------------- word count --

class WordCountMapper final
    : public Mapper<uint64_t, std::string, std::string, uint64_t> {
 public:
  Status Map(const uint64_t& id, const std::string& line,
             Context* ctx) override {
    size_t start = 0;
    while (start < line.size()) {
      size_t end = line.find(' ', start);
      if (end == std::string::npos) {
        end = line.size();
      }
      if (end > start) {
        NGRAM_RETURN_NOT_OK(ctx->Emit(line.substr(start, end - start), 1));
      }
      start = end + 1;
    }
    return Status::OK();
  }
};

class SumReducer final
    : public Reducer<std::string, uint64_t, std::string, uint64_t> {
 public:
  Status Reduce(const std::string& key, Values* values,
                Context* ctx) override {
    uint64_t total = 0;
    uint64_t v = 0;
    while (values->Next(&v)) {
      total += v;
    }
    return ctx->Emit(key, total);
  }
};

MemoryTable<uint64_t, std::string> WordCountInput() {
  MemoryTable<uint64_t, std::string> input;
  input.Add(1, "the quick brown fox");
  input.Add(2, "the lazy dog");
  input.Add(3, "the quick dog jumps");
  input.Add(4, "fox and dog and fox");
  return input;
}

std::map<std::string, uint64_t> ExpectedWordCounts() {
  return {{"the", 3}, {"quick", 2}, {"brown", 1}, {"fox", 3},
          {"lazy", 1}, {"dog", 3},  {"jumps", 1}, {"and", 2}};
}

Result<JobMetrics> RunWordCount(const JobConfig& config,
                                std::map<std::string, uint64_t>* counts,
                                RawCombineFn combiner = nullptr) {
  MemoryTable<std::string, uint64_t> output;
  auto metrics = RunJob<WordCountMapper, SumReducer>(
      config, WordCountInput(),
      [] { return std::make_unique<WordCountMapper>(); },
      [] { return std::make_unique<SumReducer>(); }, &output, combiner);
  counts->clear();
  for (const auto& [k, v] : output.rows) {
    (*counts)[k] = v;
  }
  return metrics;
}

TEST(JobTest, WordCountEndToEnd) {
  JobConfig config;
  config.name = "wordcount";
  config.num_reducers = 3;
  std::map<std::string, uint64_t> counts;
  auto metrics = RunWordCount(config, &counts);
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  EXPECT_EQ(counts, ExpectedWordCounts());
  EXPECT_EQ(metrics->Counter(kMapInputRecords), 4u);
  EXPECT_EQ(metrics->Counter(kMapOutputRecords), 16u);
  EXPECT_GT(metrics->Counter(kMapOutputBytes), 0u);
  EXPECT_EQ(metrics->Counter(kReduceInputRecords), 16u);
  EXPECT_EQ(metrics->Counter(kReduceInputGroups), 8u);
  EXPECT_EQ(metrics->Counter(kReduceOutputRecords), 8u);
}

TEST(JobTest, SingleReducerAndSingleSlot) {
  JobConfig config;
  config.num_reducers = 1;
  config.map_slots = 1;
  config.reduce_slots = 1;
  std::map<std::string, uint64_t> counts;
  ASSERT_TRUE(RunWordCount(config, &counts).ok());
  EXPECT_EQ(counts, ExpectedWordCounts());
}

TEST(JobTest, CombinerReducesShuffledRecordsButNotResult) {
  JobConfig config;
  config.num_reducers = 2;
  config.num_map_tasks = 2;
  std::map<std::string, uint64_t> counts;
  auto metrics = RunWordCount(config, &counts, SumCombiner());
  ASSERT_TRUE(metrics.ok());
  EXPECT_EQ(counts, ExpectedWordCounts());
  // 16 raw emissions combine down per (map task, key).
  EXPECT_EQ(metrics->Counter(kCombineInputRecords), 16u);
  EXPECT_LT(metrics->Counter(kReduceInputRecords), 16u);
}

TEST(JobTest, TinySortBufferSpillsAndStillCorrect) {
  JobConfig config;
  config.sort_buffer_bytes = 64;  // Force spills on nearly every record.
  config.num_reducers = 2;
  std::map<std::string, uint64_t> counts;
  auto metrics = RunWordCount(config, &counts);
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  EXPECT_EQ(counts, ExpectedWordCounts());
  EXPECT_GT(metrics->Counter(kSpillFiles), 0u);
  EXPECT_GT(metrics->Counter(kSpilledRecords), 0u);
}

TEST(JobTest, DeterministicAcrossSlotAndTaskConfigurations) {
  std::vector<std::pair<std::string, uint64_t>> reference;
  for (uint32_t map_slots : {1u, 2u, 4u}) {
    for (uint32_t reducers : {1u, 3u, 7u}) {
      JobConfig config;
      config.map_slots = map_slots;
      config.reduce_slots = map_slots;
      config.num_reducers = reducers;
      config.num_map_tasks = map_slots * 2;
      MemoryTable<std::string, uint64_t> output;
      auto metrics = RunJob<WordCountMapper, SumReducer>(
          config, WordCountInput(),
          [] { return std::make_unique<WordCountMapper>(); },
          [] { return std::make_unique<SumReducer>(); }, &output);
      ASSERT_TRUE(metrics.ok());
      auto rows = output.rows;
      std::sort(rows.begin(), rows.end());
      if (reference.empty()) {
        reference = rows;
      } else {
        EXPECT_EQ(rows, reference)
            << "slots=" << map_slots << " reducers=" << reducers;
      }
    }
  }
}

// ------------------------------------------------- ordering & grouping --

/// Reducer that records the order in which keys arrive.
class KeyOrderReducer final
    : public Reducer<std::string, uint64_t, std::string, uint64_t> {
 public:
  Status Reduce(const std::string& key, Values* values,
                Context* ctx) override {
    values->Count();
    return ctx->Emit(key, seq_++);
  }

 private:
  uint64_t seq_ = 0;
};

TEST(JobTest, CustomComparatorOrdersReducerInput) {
  class ReverseComparator final : public RawComparator {
   public:
    int Compare(Slice a, Slice b) const override { return b.compare(a); }
    const char* Name() const override { return "reverse"; }
  };
  static const ReverseComparator kReverse;

  MemoryTable<uint64_t, std::string> input;
  input.Add(1, "alpha beta gamma delta");
  JobConfig config;
  config.num_reducers = 1;
  config.sort_comparator = &kReverse;
  MemoryTable<std::string, uint64_t> output;
  auto metrics = RunJob<WordCountMapper, KeyOrderReducer>(
      config, input, [] { return std::make_unique<WordCountMapper>(); },
      [] { return std::make_unique<KeyOrderReducer>(); }, &output);
  ASSERT_TRUE(metrics.ok());
  ASSERT_EQ(output.rows.size(), 4u);
  EXPECT_EQ(output.rows[0].first, "gamma");   // Reverse lexicographic.
  EXPECT_EQ(output.rows[1].first, "delta");
  EXPECT_EQ(output.rows[2].first, "beta");
  EXPECT_EQ(output.rows[3].first, "alpha");
}

TEST(JobTest, CustomPartitionerRoutesKeys) {
  // Route by first byte parity; verify each key lands where expected via
  // the reducer id recorded in the output value.
  class ParityPartitioner final : public Partitioner {
   public:
    uint32_t Partition(Slice key, uint32_t num_partitions) const override {
      return static_cast<uint8_t>(key[0]) % num_partitions;
    }
    const char* Name() const override { return "parity"; }
  };
  static const ParityPartitioner kParity;

  class ReducerIdReducer final
      : public Reducer<std::string, uint64_t, std::string, uint64_t> {
   public:
    Status Reduce(const std::string& key, Values* values,
                  Context* ctx) override {
      values->Count();
      return ctx->Emit(key, ctx->reducer_id());
    }
  };

  MemoryTable<uint64_t, std::string> input;
  input.Add(1, "bb cc dd ee");
  JobConfig config;
  config.num_reducers = 2;
  config.partitioner = &kParity;
  MemoryTable<std::string, uint64_t> output;
  auto metrics = RunJob<WordCountMapper, ReducerIdReducer>(
      config, input, [] { return std::make_unique<WordCountMapper>(); },
      [] { return std::make_unique<ReducerIdReducer>(); }, &output);
  ASSERT_TRUE(metrics.ok());
  for (const auto& [key, reducer] : output.rows) {
    EXPECT_EQ(reducer, static_cast<uint8_t>(key[0]) % 2u) << key;
  }
}

// ----------------------------------------------------- lifecycle hooks --

class LifecycleReducer final
    : public Reducer<std::string, uint64_t, std::string, uint64_t> {
 public:
  Status Setup(Context* ctx) override {
    return ctx->Emit("__setup__", ctx->reducer_id());
  }
  Status Reduce(const std::string& key, Values* values,
                Context* ctx) override {
    groups_ += 1;
    values->Count();
    return Status::OK();
  }
  Status Cleanup(Context* ctx) override {
    return ctx->Emit("__cleanup_groups__", groups_);
  }

 private:
  uint64_t groups_ = 0;
};

TEST(JobTest, SetupAndCleanupRunPerReducer) {
  JobConfig config;
  config.num_reducers = 2;
  MemoryTable<std::string, uint64_t> output;
  auto metrics = RunJob<WordCountMapper, LifecycleReducer>(
      config, WordCountInput(),
      [] { return std::make_unique<WordCountMapper>(); },
      [] { return std::make_unique<LifecycleReducer>(); }, &output);
  ASSERT_TRUE(metrics.ok());
  uint64_t setups = 0, cleanups = 0, groups = 0;
  for (const auto& [k, v] : output.rows) {
    if (k == "__setup__") {
      ++setups;
    } else if (k == "__cleanup_groups__") {
      ++cleanups;
      groups += v;
    }
  }
  EXPECT_EQ(setups, 2u);
  EXPECT_EQ(cleanups, 2u);
  EXPECT_EQ(groups, 8u);  // Total distinct words.
}

// ------------------------------------------------------ error handling --

class FailingMapper final
    : public Mapper<uint64_t, std::string, std::string, uint64_t> {
 public:
  Status Map(const uint64_t& id, const std::string& line,
             Context* ctx) override {
    if (id == 3) {
      return Status::Internal("mapper exploded");
    }
    return ctx->Emit(line, 1);
  }
};

TEST(JobTest, MapperErrorPropagates) {
  JobConfig config;
  MemoryTable<std::string, uint64_t> output;
  auto metrics = RunJob<FailingMapper, SumReducer>(
      config, WordCountInput(),
      [] { return std::make_unique<FailingMapper>(); },
      [] { return std::make_unique<SumReducer>(); }, &output);
  ASSERT_FALSE(metrics.ok());
  EXPECT_EQ(metrics.status().code(), StatusCode::kInternal);
}

class FailingReducer final
    : public Reducer<std::string, uint64_t, std::string, uint64_t> {
 public:
  Status Reduce(const std::string& key, Values* values,
                Context* ctx) override {
    return Status::ResourceExhausted("reducer out of memory");
  }
};

TEST(JobTest, ReducerErrorPropagates) {
  JobConfig config;
  MemoryTable<std::string, uint64_t> output;
  auto metrics = RunJob<WordCountMapper, FailingReducer>(
      config, WordCountInput(),
      [] { return std::make_unique<WordCountMapper>(); },
      [] { return std::make_unique<FailingReducer>(); }, &output);
  ASSERT_FALSE(metrics.ok());
  EXPECT_TRUE(metrics.status().IsResourceExhausted());
}

TEST(JobTest, EmptyInputProducesEmptyOutput) {
  JobConfig config;
  MemoryTable<uint64_t, std::string> input;
  MemoryTable<std::string, uint64_t> output;
  auto metrics = RunJob<WordCountMapper, SumReducer>(
      config, input, [] { return std::make_unique<WordCountMapper>(); },
      [] { return std::make_unique<SumReducer>(); }, &output);
  ASSERT_TRUE(metrics.ok());
  EXPECT_TRUE(output.empty());
  EXPECT_EQ(metrics->Counter(kMapOutputRecords), 0u);
}

TEST(JobTest, JobOverheadAddsToWallclock) {
  JobConfig config;
  config.job_overhead_ms = 5000.0;
  std::map<std::string, uint64_t> counts;
  auto metrics = RunWordCount(config, &counts);
  ASSERT_TRUE(metrics.ok());
  EXPECT_GE(metrics->wallclock_ms, 5000.0);
}

// ------------------------------------------------------ value streaming --

class LargeValueMapper final
    : public Mapper<uint64_t, std::string, std::string, std::string> {
 public:
  Status Map(const uint64_t& id, const std::string& line,
             Context* ctx) override {
    // One large value per input row under the same key.
    return ctx->Emit("shared", std::string(10000, 'x') + line);
  }
};

class ConcatLenReducer final
    : public Reducer<std::string, std::string, std::string, uint64_t> {
 public:
  Status Reduce(const std::string& key, Values* values,
                Context* ctx) override {
    uint64_t total_len = 0;
    std::string v;
    while (values->Next(&v)) {
      total_len += v.size();
    }
    return ctx->Emit(key, total_len);
  }
};

TEST(JobTest, LargeValuesStreamThroughSpills) {
  JobConfig config;
  config.sort_buffer_bytes = 4096;  // Each value exceeds the budget.
  MemoryTable<uint64_t, std::string> input;
  uint64_t expected = 0;
  for (uint64_t i = 0; i < 8; ++i) {
    const std::string line = "line" + std::to_string(i);
    expected += 10000 + line.size();
    input.Add(i, line);
  }
  MemoryTable<std::string, uint64_t> output;
  auto metrics = RunJob<LargeValueMapper, ConcatLenReducer>(
      config, input, [] { return std::make_unique<LargeValueMapper>(); },
      [] { return std::make_unique<ConcatLenReducer>(); }, &output);
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  ASSERT_EQ(output.rows.size(), 1u);
  EXPECT_EQ(output.rows[0].second, expected);
}

}  // namespace
}  // namespace ngram::mr
