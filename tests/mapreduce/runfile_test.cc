// Block-structured run format (runfile.h): round-trips over adversarial
// key/value mixes, front-coding compression wins on sorted runs, segment
// boundaries, the one-record lookback contract across blocks, and the
// corruption-handling contract — a flipped bit fails with Corruption
// naming the block offset, truncation is Corruption, a failing read is
// IOError.
#include "mapreduce/runfile.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "mapreduce/record.h"
#include "mapreduce/spill_writer.h"
#include "util/temp_dir.h"

namespace ngram::mr {
namespace {

using KvList = std::vector<std::pair<std::string, std::string>>;

class RunFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dir = TempDir::Create("runfile-test");
    ASSERT_TRUE(dir.ok());
    dir_ = std::make_unique<TempDir>(std::move(dir).ValueOrDie());
  }

  std::string Path(const std::string& name) {
    return dir_->path().string() + "/" + name;
  }

  /// Writes `records` as one block-format run; returns its byte length.
  uint64_t WriteBlockRun(const std::string& path, const KvList& records,
                         RunWriterOptions options = {}) {
    options.compress = true;
    auto writer = NewRunWriter(path, options);
    EXPECT_TRUE(writer->Open().ok());
    for (const auto& [k, v] : records) {
      EXPECT_TRUE(writer->Append(k, v).ok());
    }
    EXPECT_TRUE(writer->Close().ok());
    EXPECT_EQ(writer->records_written(), records.size());
    return writer->bytes_written();
  }

  /// Reads a block-format extent back into a vector.
  KvList ReadBlockRun(const std::string& path, uint64_t offset,
                      uint64_t length, Status* status = nullptr) {
    KvList out;
    FileRecordReader reader(path, offset, length,
                            FileRecordReader::kDefaultBufferBytes,
                            RunFormat::kBlocks);
    while (reader.Next()) {
      out.emplace_back(reader.key().ToString(), reader.value().ToString());
    }
    if (status != nullptr) {
      *status = reader.status();
    } else {
      EXPECT_TRUE(reader.status().ok()) << reader.status().ToString();
    }
    return out;
  }

  std::unique_ptr<TempDir> dir_;
};

TEST_F(RunFileTest, RoundTripsIncludingEmptyKeysAndValues) {
  const KvList records = {
      {"apple", "1"}, {"apple", ""},     {"applet", "22"},
      {"", "empty"},  {"banana", "333"}, {"", ""},
  };
  const std::string path = Path("basic");
  const uint64_t length = WriteBlockRun(path, records);
  EXPECT_EQ(ReadBlockRun(path, 0, length), records);
}

TEST_F(RunFileTest, FrontCodingShrinksSortedRuns) {
  // Sorted keys with long shared prefixes — the shape every spill run has
  // — must compress; the raw-equivalent byte count is tracked alongside.
  KvList records;
  for (int i = 0; i < 2000; ++i) {
    char key[64];
    snprintf(key, sizeof(key), "user/profile/%08d/field", i);
    records.emplace_back(key, "v");
  }
  const std::string path = Path("sorted");
  RunWriterOptions options;
  options.compress = true;
  auto writer = NewRunWriter(path, options);
  ASSERT_TRUE(writer->Open().ok());
  for (const auto& [k, v] : records) {
    ASSERT_TRUE(writer->Append(k, v).ok());
  }
  ASSERT_TRUE(writer->Close().ok());
  EXPECT_LT(writer->bytes_written(), writer->raw_bytes());
  EXPECT_EQ(ReadBlockRun(path, 0, writer->bytes_written()), records);
}

TEST_F(RunFileTest, SegmentExtentsAreIndependentlyReadable) {
  // FinishSegment() closes the current block, so each segment's byte
  // extent starts and ends on block boundaries and reads back alone —
  // the invariant partition-segmented run files rely on.
  const std::string path = Path("segments");
  RunWriterOptions options;
  auto writer = NewRunWriter(path, options);
  ASSERT_TRUE(writer->Open().ok());
  struct Extent {
    uint64_t offset;
    uint64_t length;
    KvList records;
  };
  std::vector<Extent> extents;
  for (int seg = 0; seg < 3; ++seg) {
    Extent extent;
    extent.offset = writer->bytes_written();
    for (int i = 0; i < 50; ++i) {
      const std::string key =
          "seg" + std::to_string(seg) + "-key" + std::to_string(i);
      const std::string value = "v" + std::to_string(i);
      extent.records.emplace_back(key, value);
      ASSERT_TRUE(writer->Append(key, value).ok());
    }
    ASSERT_TRUE(writer->FinishSegment().ok());
    extent.length = writer->bytes_written() - extent.offset;
    extents.push_back(std::move(extent));
  }
  ASSERT_TRUE(writer->Close().ok());
  for (const Extent& extent : extents) {
    EXPECT_EQ(ReadBlockRun(path, extent.offset, extent.length),
              extent.records);
  }
}

TEST_F(RunFileTest, FuzzRoundTripAcrossLengthMixesAndBlockSizes) {
  // Random key/value length mixes — empty through records several times
  // the block size — across small blocks and degenerate restart
  // intervals. Deterministic seed per configuration.
  for (const size_t block_bytes : {64ul, 512ul, 16384ul}) {
    for (const uint32_t restart_interval : {1u, 3u, 16u}) {
      std::mt19937 rng(block_bytes * 131 + restart_interval);
      std::uniform_int_distribution<int> key_len(0, 120);
      std::uniform_int_distribution<int> value_len(0, 64);
      std::uniform_int_distribution<int> chars('a', 'z');
      KvList records;
      for (int i = 0; i < 400; ++i) {
        std::string key(key_len(rng), '\0');
        for (char& c : key) c = static_cast<char>(chars(rng));
        std::string value(value_len(rng), '\0');
        for (char& c : value) c = static_cast<char>(chars(rng));
        if (i % 37 == 0) {
          value.assign(block_bytes * 3, 'X');  // Larger than one block.
        }
        records.emplace_back(std::move(key), std::move(value));
      }
      const std::string path = Path(
          "fuzz-" + std::to_string(block_bytes) + "-" +
          std::to_string(restart_interval));
      RunWriterOptions options;
      options.block_bytes = block_bytes;
      options.restart_interval = restart_interval;
      const uint64_t length = WriteBlockRun(path, records, options);
      EXPECT_EQ(ReadBlockRun(path, 0, length), records)
          << "block_bytes=" << block_bytes
          << " restart_interval=" << restart_interval;
    }
  }
}

TEST_F(RunFileTest, LookbackContractHoldsAcrossBlockBoundaries) {
  // The record surfaced by the previous Next() must stay valid across one
  // further Next() — including when that advance crosses into a new block
  // (tiny blocks force a boundary at nearly every record).
  KvList records;
  for (int i = 0; i < 300; ++i) {
    records.emplace_back("key-" + std::to_string(1000 + i),
                         "value-" + std::to_string(i));
  }
  const std::string path = Path("lookback");
  RunWriterOptions options;
  options.block_bytes = 32;  // ~1 record per block.
  const uint64_t length = WriteBlockRun(path, records, options);

  FileRecordReader reader(path, 0, length,
                          FileRecordReader::kDefaultBufferBytes,
                          RunFormat::kBlocks);
  ASSERT_TRUE(reader.Next());
  Slice prev_key = reader.key();
  Slice prev_value = reader.value();
  std::string expect_key = records[0].first;
  std::string expect_value = records[0].second;
  size_t i = 1;
  while (reader.Next()) {
    // One advance later, the previous slices must still hold their bytes.
    EXPECT_EQ(prev_key.ToString(), expect_key);
    EXPECT_EQ(prev_value.ToString(), expect_value);
    prev_key = reader.key();
    prev_value = reader.value();
    ASSERT_LT(i, records.size());
    expect_key = records[i].first;
    expect_value = records[i].second;
    ++i;
  }
  EXPECT_TRUE(reader.status().ok());
  EXPECT_EQ(i, records.size());
  EXPECT_EQ(prev_key.ToString(), expect_key);
}

TEST_F(RunFileTest, BitFlipFailsWithCorruptionNamingTheBlockOffset) {
  KvList records;
  for (int i = 0; i < 500; ++i) {
    records.emplace_back("key-" + std::to_string(i), "value");
  }
  const std::string path = Path("flip");
  RunWriterOptions options;
  options.block_bytes = 256;  // Several blocks.
  const uint64_t length = WriteBlockRun(path, records, options);
  ASSERT_GT(length, 1000u);

  // Flip one byte somewhere in the middle of the file.
  {
    std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
    file.seekg(static_cast<std::streamoff>(length / 2));
    char byte = 0;
    file.get(byte);
    file.seekp(static_cast<std::streamoff>(length / 2));
    file.put(static_cast<char>(byte ^ 0x40));
  }
  Status status;
  ReadBlockRun(path, 0, length, &status);
  ASSERT_TRUE(status.IsCorruption()) << status.ToString();
  EXPECT_NE(status.ToString().find("offset"), std::string::npos)
      << status.ToString();
  EXPECT_NE(status.ToString().find(path), std::string::npos)
      << status.ToString();
}

TEST_F(RunFileTest, TruncatedFinalBlockIsCorruptionNotIOError) {
  KvList records;
  for (int i = 0; i < 200; ++i) {
    records.emplace_back("key-" + std::to_string(i), "value");
  }
  const std::string path = Path("trunc");
  const uint64_t length = WriteBlockRun(path, records);
  // A reader whose extent claims more bytes than the file holds hits a
  // genuine EOF mid-block: that is truncation (Corruption), not a read
  // failure (IOError).
  Status status;
  ReadBlockRun(path, 0, length + 100, &status);
  EXPECT_TRUE(status.IsCorruption()) << status.ToString();

  // Same when the file itself was cut short under an honest extent.
  std::error_code ec;
  std::filesystem::resize_file(path, length - 3, ec);
  ASSERT_FALSE(ec);
  ReadBlockRun(path, 0, length, &status);
  EXPECT_TRUE(status.IsCorruption()) << status.ToString();
}

TEST_F(RunFileTest, HugeBlockLengthVarintIsCorruptionNotCrash) {
  // A block-length varint decoding to ~2^64 (possible from corruption or
  // a crafted file — it is read before any CRC check) must fail with
  // Corruption; a naive `payload_len + 4 > remaining` bound would wrap
  // and feed the length to a giant allocation instead.
  const std::string path = Path("huge-len");
  {
    std::ofstream out(path, std::ios::binary);
    for (int i = 0; i < 9; ++i) {
      out.put(static_cast<char>(0xff));
    }
    out.put(0x01);  // Varint terminator: value ~2^63.
    out << "trailing-bytes-so-the-extent-is-nonempty";
  }
  Status status;
  ReadBlockRun(path, 0, std::filesystem::file_size(path), &status);
  EXPECT_TRUE(status.IsCorruption()) << status.ToString();
}

TEST_F(RunFileTest, CrcValidEntrylessBlockIsCorruption) {
  // The writer never emits an entry-less block; a crafted CRC-valid
  // payload holding only a restart array must be rejected — accepting it
  // would let the reader decode two blocks in one Next() and recycle the
  // scratch buffer still backing the previous record (lookback breach).
  std::string payload;
  PutFixed32(&payload, 0);  // restart[0]
  PutFixed32(&payload, 0);  // restart[1]
  PutFixed32(&payload, 2);  // num_restarts
  std::string file;
  PutVarint64(&file, payload.size());
  file += payload;
  PutFixed32(&file, Crc32(0, payload.data(), payload.size()));
  const std::string path = Path("entryless");
  {
    std::ofstream out(path, std::ios::binary);
    out << file;
  }
  Status status;
  ReadBlockRun(path, 0, file.size(), &status);
  EXPECT_TRUE(status.IsCorruption()) << status.ToString();
  EXPECT_NE(status.ToString().find("no entries"), std::string::npos)
      << status.ToString();
}

TEST_F(RunFileTest, FailingReadIsIOErrorNotCorruption) {
  // fopen() on a directory succeeds on Linux but every fread() fails with
  // EISDIR — a genuine I/O error, which must not be mislabeled as
  // truncation/corruption in block mode either.
  Status status;
  FileRecordReader reader(dir_->path().string(), 0, 4096,
                          FileRecordReader::kDefaultBufferBytes,
                          RunFormat::kBlocks);
  EXPECT_FALSE(reader.Next());
  EXPECT_TRUE(reader.status().IsIOError()) << reader.status().ToString();
}

TEST_F(RunFileTest, RawFactoryWritesSpillWriterCompatibleFiles) {
  // compress = false must produce the exact raw framing FileRecordReader
  // reads in its default mode.
  const std::string path = Path("raw");
  RunWriterOptions options;
  options.compress = false;
  auto writer = NewRunWriter(path, options);
  ASSERT_TRUE(writer->Open().ok());
  ASSERT_TRUE(writer->Append("alpha", "1").ok());
  ASSERT_TRUE(writer->Append("beta", "2").ok());
  ASSERT_TRUE(writer->FinishSegment().ok());  // No-op for raw.
  ASSERT_TRUE(writer->Close().ok());
  EXPECT_FALSE(writer->block_format());
  EXPECT_EQ(writer->raw_bytes(), writer->bytes_written());

  FileRecordReader reader(path, 0, writer->bytes_written());
  ASSERT_TRUE(reader.Next());
  EXPECT_EQ(reader.key().ToString(), "alpha");
  ASSERT_TRUE(reader.Next());
  EXPECT_EQ(reader.value().ToString(), "2");
  EXPECT_FALSE(reader.Next());
  EXPECT_TRUE(reader.status().ok());
}

}  // namespace
}  // namespace ngram::mr
