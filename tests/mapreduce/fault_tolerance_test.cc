// Task-retry tests: the runtime re-executes failed task attempts with
// fresh state (Hadoop's core fault-tolerance feature, which the paper
// names as a main reason to target MapReduce at all). Results and counters
// must be byte-identical to a failure-free run.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <map>

#include "mapreduce/job.h"
#include "util/temp_dir.h"

namespace ngram::mr {
namespace {

class WordMapper final
    : public Mapper<uint64_t, std::string, std::string, uint64_t> {
 public:
  Status Map(const uint64_t& id, const std::string& word,
             Context* ctx) override {
    return ctx->Emit(word, 1);
  }
};

class SumReducer final
    : public Reducer<std::string, uint64_t, std::string, uint64_t> {
 public:
  Status Reduce(const std::string& key, Values* values,
                Context* ctx) override {
    uint64_t total = 0, v = 0;
    while (values->Next(&v)) {
      total += v;
    }
    return ctx->Emit(key, total);
  }
};

MemoryTable<uint64_t, std::string> Input() {
  MemoryTable<uint64_t, std::string> input;
  for (uint64_t i = 0; i < 40; ++i) {
    input.Add(i, "word" + std::to_string(i % 7));
  }
  return input;
}

Result<JobMetrics> RunCountJob(const JobConfig& config,
                       std::map<std::string, uint64_t>* counts) {
  MemoryTable<std::string, uint64_t> output;
  auto metrics = RunJob<WordMapper, SumReducer>(
      config, Input(), [] { return std::make_unique<WordMapper>(); },
      [] { return std::make_unique<SumReducer>(); }, &output);
  counts->clear();
  for (const auto& [k, v] : output.rows) {
    (*counts)[k] = v;
  }
  return metrics;
}

TEST(FaultToleranceTest, FirstAttemptFailuresAreRetriedTransparently) {
  JobConfig baseline_config;
  baseline_config.num_map_tasks = 4;
  std::map<std::string, uint64_t> baseline;
  auto baseline_metrics = RunCountJob(baseline_config, &baseline);
  ASSERT_TRUE(baseline_metrics.ok());

  JobConfig config = baseline_config;
  config.max_task_attempts = 3;
  config.failure_injector = [](const char*, uint32_t, uint32_t attempt) {
    return attempt == 0;  // Every task fails exactly once.
  };
  std::map<std::string, uint64_t> counts;
  auto metrics = RunCountJob(config, &counts);
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  EXPECT_EQ(counts, baseline);
  // 4 map tasks + default reducers each retried once.
  EXPECT_GT(metrics->Counter(kTaskRetries), 0u);
  // Counters from failed attempts are discarded: map-side numbers match
  // the clean run exactly.
  EXPECT_EQ(metrics->Counter(kMapOutputRecords),
            baseline_metrics->Counter(kMapOutputRecords));
  EXPECT_EQ(metrics->Counter(kMapInputRecords),
            baseline_metrics->Counter(kMapInputRecords));
  EXPECT_EQ(metrics->Counter(kReduceInputRecords),
            baseline_metrics->Counter(kReduceInputRecords));
}

TEST(FaultToleranceTest, ExhaustedAttemptsFailTheJob) {
  JobConfig config;
  config.max_task_attempts = 2;
  config.failure_injector = [](const char* phase, uint32_t task,
                               uint32_t) {
    return std::string(phase) == "map" && task == 0;  // Always fails.
  };
  std::map<std::string, uint64_t> counts;
  auto metrics = RunCountJob(config, &counts);
  ASSERT_FALSE(metrics.ok());
  EXPECT_EQ(metrics.status().code(), StatusCode::kInternal);
}

TEST(FaultToleranceTest, ReduceRetriesRebuildOutput) {
  JobConfig baseline_config;
  std::map<std::string, uint64_t> baseline;
  ASSERT_TRUE(RunCountJob(baseline_config, &baseline).ok());

  JobConfig config = baseline_config;
  config.max_task_attempts = 4;
  std::atomic<int> reduce_failures{0};
  config.failure_injector = [&reduce_failures](const char* phase, uint32_t,
                                               uint32_t attempt) {
    if (std::string(phase) == "reduce" && attempt < 2) {
      reduce_failures.fetch_add(1);
      return true;  // Each reduce task fails twice.
    }
    return false;
  };
  std::map<std::string, uint64_t> counts;
  auto metrics = RunCountJob(config, &counts);
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  EXPECT_EQ(counts, baseline);
  EXPECT_GT(reduce_failures.load(), 0);
}

TEST(FaultToleranceTest, RealTaskErrorsAreAlsoRetried) {
  // A mapper that fails its first invocation per task (flaky I/O, say).
  class FlakyMapper final
      : public Mapper<uint64_t, std::string, std::string, uint64_t> {
   public:
    explicit FlakyMapper(std::atomic<int>* attempts) : attempts_(attempts) {}
    Status Setup(Context* ctx) override {
      if (attempts_->fetch_add(1) == 0) {
        return Status::IOError("flaky setup");
      }
      return Status::OK();
    }
    Status Map(const uint64_t& id, const std::string& word,
               Context* ctx) override {
      return ctx->Emit(word, 1);
    }

   private:
    std::atomic<int>* attempts_;
  };

  JobConfig config;
  config.num_map_tasks = 1;
  config.max_task_attempts = 2;
  auto attempts = std::make_shared<std::atomic<int>>(0);
  MemoryTable<std::string, uint64_t> output;
  auto metrics = RunJob<FlakyMapper, SumReducer>(
      config, Input(),
      [attempts] { return std::make_unique<FlakyMapper>(attempts.get()); },
      [] { return std::make_unique<SumReducer>(); }, &output);
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  EXPECT_EQ(metrics->Counter(kTaskRetries), 1u);
  EXPECT_EQ(output.rows.size(), 7u);
}

size_t FilesIn(const std::string& dir) {
  size_t n = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    (void)entry;
    ++n;
  }
  return n;
}

TEST(FaultToleranceTest, RetriedSpillingTasksLeaveWorkDirClean) {
  // Every task fails its first attempt *after* spilling run files into a
  // user-provided work_dir. Attempt-scoped run names keep retries from
  // colliding with the discarded attempt's files, and discarded runs are
  // unlinked — the job must succeed and leave the directory empty.
  auto dir = TempDir::Create("retry-clean");
  ASSERT_TRUE(dir.ok());
  JobConfig config;
  config.work_dir = dir->path().string();
  config.sort_buffer_bytes = 128;  // Spill on nearly every record.
  config.num_map_tasks = 4;
  config.max_task_attempts = 3;
  config.failure_injector = [](const char*, uint32_t, uint32_t attempt) {
    return attempt == 0;
  };
  std::map<std::string, uint64_t> baseline, counts;
  JobConfig clean_config = config;
  clean_config.failure_injector = nullptr;
  clean_config.max_task_attempts = 1;
  ASSERT_TRUE(RunCountJob(clean_config, &baseline).ok());
  auto metrics = RunCountJob(config, &counts);
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  EXPECT_EQ(counts, baseline);
  EXPECT_GT(metrics->Counter(kSpillFiles), 0u);
  EXPECT_EQ(FilesIn(config.work_dir), 0u);
}

TEST(FaultToleranceTest, MidMapFailureLeavesWorkDirClean) {
  // The mapper dies after emitting (and spilling) but before the task
  // commits its runs — the SortBuffer still holds them, and discarding
  // the attempt must unlink them.
  class CleanupFailingMapper final
      : public Mapper<uint64_t, std::string, std::string, uint64_t> {
   public:
    explicit CleanupFailingMapper(std::atomic<int>* attempts)
        : attempts_(attempts) {}
    Status Map(const uint64_t& id, const std::string& word,
               Context* ctx) override {
      return ctx->Emit(word, 1);
    }
    Status Cleanup(Context* ctx) override {
      if (attempts_->fetch_add(1) == 0) {
        return Status::IOError("flaky cleanup");
      }
      return Status::OK();
    }

   private:
    std::atomic<int>* attempts_;
  };

  auto dir = TempDir::Create("midmap-clean");
  ASSERT_TRUE(dir.ok());
  JobConfig config;
  config.work_dir = dir->path().string();
  config.sort_buffer_bytes = 128;
  config.num_map_tasks = 1;
  config.max_task_attempts = 2;
  auto attempts = std::make_shared<std::atomic<int>>(0);
  MemoryTable<std::string, uint64_t> output;
  auto metrics = RunJob<CleanupFailingMapper, SumReducer>(
      config, Input(),
      [attempts] {
        return std::make_unique<CleanupFailingMapper>(attempts.get());
      },
      [] { return std::make_unique<SumReducer>(); }, &output);
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  EXPECT_EQ(metrics->Counter(kTaskRetries), 1u);
  EXPECT_EQ(FilesIn(config.work_dir), 0u);
}

TEST(FaultToleranceTest, FailedJobLeavesWorkDirClean) {
  // Exhausted attempts fail the whole job; runs of the tasks that did
  // succeed must not be orphaned in a user-provided work_dir either.
  auto dir = TempDir::Create("failed-clean");
  ASSERT_TRUE(dir.ok());
  JobConfig config;
  config.work_dir = dir->path().string();
  config.sort_buffer_bytes = 128;
  config.num_map_tasks = 4;
  config.map_slots = 1;  // Task 0..2 commit their runs before 3 fails.
  config.max_task_attempts = 2;
  config.failure_injector = [](const char* phase, uint32_t task, uint32_t) {
    return std::string(phase) == "map" && task == 3;
  };
  std::map<std::string, uint64_t> counts;
  auto metrics = RunCountJob(config, &counts);
  ASSERT_FALSE(metrics.ok());
  EXPECT_EQ(FilesIn(config.work_dir), 0u);
}

TEST(FaultToleranceTest, SkewCounterReportsHeaviestReducer) {
  // All records share one key -> one reducer takes everything.
  MemoryTable<uint64_t, std::string> input;
  for (uint64_t i = 0; i < 25; ++i) {
    input.Add(i, "same");
  }
  JobConfig config;
  config.num_reducers = 4;
  MemoryTable<std::string, uint64_t> output;
  auto metrics = RunJob<WordMapper, SumReducer>(
      config, input, [] { return std::make_unique<WordMapper>(); },
      [] { return std::make_unique<SumReducer>(); }, &output);
  ASSERT_TRUE(metrics.ok());
  EXPECT_EQ(metrics->Counter(kReduceInputRecordsMax), 25u);
}

}  // namespace
}  // namespace ngram::mr
