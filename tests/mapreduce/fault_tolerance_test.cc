// Task-retry tests: the runtime re-executes failed task attempts with
// fresh state (Hadoop's core fault-tolerance feature, which the paper
// names as a main reason to target MapReduce at all). Results and counters
// must be byte-identical to a failure-free run.
//
// Faults are raised by the user code itself (flaky Setup/Cleanup keyed on
// the context's task id) — the I/O-level fault path has its own coverage
// in chaos_test.cc.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <map>
#include <mutex>
#include <set>

#include "mapreduce/job.h"
#include "util/temp_dir.h"

namespace ngram::mr {
namespace {

class WordMapper final
    : public Mapper<uint64_t, std::string, std::string, uint64_t> {
 public:
  Status Map(const uint64_t& id, const std::string& word,
             Context* ctx) override {
    return ctx->Emit(word, 1);
  }
};

class SumReducer final
    : public Reducer<std::string, uint64_t, std::string, uint64_t> {
 public:
  Status Reduce(const std::string& key, Values* values,
                Context* ctx) override {
    uint64_t total = 0, v = 0;
    while (values->Next(&v)) {
      total += v;
    }
    return ctx->Emit(key, total);
  }
};

/// Shared failure schedule: how many times each task id has asked to fail
/// so far. FailNow(id, n) is true for the first n queries of that id —
/// i.e. the task's first n attempts fail, later ones succeed.
struct FailSchedule {
  std::mutex mu;
  std::map<uint32_t, int> asked;
  std::atomic<int> failures{0};

  bool FailNow(uint32_t id, int first_n) {
    std::lock_guard<std::mutex> lock(mu);
    if (asked[id]++ < first_n) {
      failures.fetch_add(1);
      return true;
    }
    return false;
  }
};

/// WordMapper whose Setup fails the task's first `fail_first` attempts
/// (`always_fail_task` fails every attempt of that one task instead).
class FlakyWordMapper final
    : public Mapper<uint64_t, std::string, std::string, uint64_t> {
 public:
  FlakyWordMapper(FailSchedule* schedule, int fail_first,
                  int always_fail_task = -1)
      : schedule_(schedule),
        fail_first_(fail_first),
        always_fail_task_(always_fail_task) {}

  Status Setup(Context* ctx) override {
    if (static_cast<int>(ctx->task_id()) == always_fail_task_) {
      return Status::Internal("injected map task failure");
    }
    if (schedule_ != nullptr && schedule_->FailNow(ctx->task_id(),
                                                   fail_first_)) {
      return Status::Internal("injected map task failure");
    }
    return Status::OK();
  }

  Status Map(const uint64_t& id, const std::string& word,
             Context* ctx) override {
    return ctx->Emit(word, 1);
  }

 private:
  FailSchedule* schedule_;
  int fail_first_;
  int always_fail_task_;
};

/// SumReducer whose Cleanup fails the task's first `fail_first` attempts
/// — after the reduce work ran, the strongest point to lose an attempt.
class FlakySumReducer final
    : public Reducer<std::string, uint64_t, std::string, uint64_t> {
 public:
  FlakySumReducer(FailSchedule* schedule, int fail_first)
      : schedule_(schedule), fail_first_(fail_first) {}

  Status Reduce(const std::string& key, Values* values,
                Context* ctx) override {
    uint64_t total = 0, v = 0;
    while (values->Next(&v)) {
      total += v;
    }
    return ctx->Emit(key, total);
  }

  Status Cleanup(Context* ctx) override {
    if (schedule_ != nullptr &&
        schedule_->FailNow(ctx->reducer_id(), fail_first_)) {
      return Status::Internal("injected reduce task failure");
    }
    return Status::OK();
  }

 private:
  FailSchedule* schedule_;
  int fail_first_;
};

MemoryTable<uint64_t, std::string> Input() {
  MemoryTable<uint64_t, std::string> input;
  for (uint64_t i = 0; i < 40; ++i) {
    input.Add(i, "word" + std::to_string(i % 7));
  }
  return input;
}

Result<JobMetrics> RunCountJob(const JobConfig& config,
                       std::map<std::string, uint64_t>* counts) {
  MemoryTable<std::string, uint64_t> output;
  auto metrics = RunJob<WordMapper, SumReducer>(
      config, Input(), [] { return std::make_unique<WordMapper>(); },
      [] { return std::make_unique<SumReducer>(); }, &output);
  counts->clear();
  for (const auto& [k, v] : output.rows) {
    (*counts)[k] = v;
  }
  return metrics;
}

/// The flaky variant: every map task fails its first `map_fails`
/// attempts, every reduce task its first `reduce_fails`.
Result<JobMetrics> RunFlakyCountJob(const JobConfig& config,
                                    std::map<std::string, uint64_t>* counts,
                                    int map_fails, int reduce_fails,
                                    int always_fail_map_task = -1) {
  auto map_schedule = std::make_shared<FailSchedule>();
  auto reduce_schedule = std::make_shared<FailSchedule>();
  MemoryTable<std::string, uint64_t> output;
  auto metrics = RunJob<FlakyWordMapper, FlakySumReducer>(
      config, Input(),
      [=] {
        return std::make_unique<FlakyWordMapper>(
            map_schedule.get(), map_fails, always_fail_map_task);
      },
      [=] {
        return std::make_unique<FlakySumReducer>(reduce_schedule.get(),
                                                 reduce_fails);
      },
      &output);
  counts->clear();
  for (const auto& [k, v] : output.rows) {
    (*counts)[k] = v;
  }
  return metrics;
}

TEST(FaultToleranceTest, FirstAttemptFailuresAreRetriedTransparently) {
  JobConfig baseline_config;
  baseline_config.num_map_tasks = 4;
  std::map<std::string, uint64_t> baseline;
  auto baseline_metrics = RunCountJob(baseline_config, &baseline);
  ASSERT_TRUE(baseline_metrics.ok());

  JobConfig config = baseline_config;
  config.max_task_attempts = 3;
  std::map<std::string, uint64_t> counts;
  // Every map and reduce task fails exactly once.
  auto metrics = RunFlakyCountJob(config, &counts, /*map_fails=*/1,
                                  /*reduce_fails=*/1);
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  EXPECT_EQ(counts, baseline);
  // 4 map tasks + default reducers each retried once.
  EXPECT_GT(metrics->Counter(kTaskRetries), 0u);
  // Counters from failed attempts are discarded: map-side numbers match
  // the clean run exactly.
  EXPECT_EQ(metrics->Counter(kMapOutputRecords),
            baseline_metrics->Counter(kMapOutputRecords));
  EXPECT_EQ(metrics->Counter(kMapInputRecords),
            baseline_metrics->Counter(kMapInputRecords));
  EXPECT_EQ(metrics->Counter(kReduceInputRecords),
            baseline_metrics->Counter(kReduceInputRecords));
}

TEST(FaultToleranceTest, ExhaustedAttemptsFailTheJob) {
  JobConfig config;
  config.max_task_attempts = 2;
  std::map<std::string, uint64_t> counts;
  // Map task 0 fails every attempt.
  auto metrics = RunFlakyCountJob(config, &counts, /*map_fails=*/0,
                                  /*reduce_fails=*/0,
                                  /*always_fail_map_task=*/0);
  ASSERT_FALSE(metrics.ok());
  EXPECT_EQ(metrics.status().code(), StatusCode::kInternal);
}

TEST(FaultToleranceTest, ReduceRetriesRebuildOutput) {
  JobConfig baseline_config;
  std::map<std::string, uint64_t> baseline;
  ASSERT_TRUE(RunCountJob(baseline_config, &baseline).ok());

  JobConfig config = baseline_config;
  config.max_task_attempts = 4;
  std::map<std::string, uint64_t> counts;
  // Each reduce task fails twice before succeeding.
  auto metrics = RunFlakyCountJob(config, &counts, /*map_fails=*/0,
                                  /*reduce_fails=*/2);
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  EXPECT_EQ(counts, baseline);
  EXPECT_GT(metrics->Counter(kTaskRetries), 0u);
}

TEST(FaultToleranceTest, RealTaskErrorsAreAlsoRetried) {
  // A mapper that fails its first invocation per task (flaky I/O, say).
  class FlakyMapper final
      : public Mapper<uint64_t, std::string, std::string, uint64_t> {
   public:
    explicit FlakyMapper(std::atomic<int>* attempts) : attempts_(attempts) {}
    Status Setup(Context* ctx) override {
      if (attempts_->fetch_add(1) == 0) {
        return Status::IOError("flaky setup");
      }
      return Status::OK();
    }
    Status Map(const uint64_t& id, const std::string& word,
               Context* ctx) override {
      return ctx->Emit(word, 1);
    }

   private:
    std::atomic<int>* attempts_;
  };

  JobConfig config;
  config.num_map_tasks = 1;
  config.max_task_attempts = 2;
  auto attempts = std::make_shared<std::atomic<int>>(0);
  MemoryTable<std::string, uint64_t> output;
  auto metrics = RunJob<FlakyMapper, SumReducer>(
      config, Input(),
      [attempts] { return std::make_unique<FlakyMapper>(attempts.get()); },
      [] { return std::make_unique<SumReducer>(); }, &output);
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  EXPECT_EQ(metrics->Counter(kTaskRetries), 1u);
  EXPECT_EQ(output.rows.size(), 7u);
}

size_t FilesIn(const std::string& dir) {
  size_t n = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    (void)entry;
    ++n;
  }
  return n;
}

TEST(FaultToleranceTest, RetriedSpillingTasksLeaveWorkDirClean) {
  // Every map task fails its first attempt *after* spilling run files
  // into a user-provided work_dir (flaky Cleanup: the spills already
  // happened). Attempt-scoped run names keep retries from colliding with
  // the discarded attempt's files, and discarded runs are unlinked — the
  // job must succeed and leave the directory empty.
  class SpillThenFailMapper final
      : public Mapper<uint64_t, std::string, std::string, uint64_t> {
   public:
    explicit SpillThenFailMapper(FailSchedule* schedule)
        : schedule_(schedule) {}
    Status Map(const uint64_t& id, const std::string& word,
               Context* ctx) override {
      return ctx->Emit(word, 1);
    }
    Status Cleanup(Context* ctx) override {
      if (schedule_->FailNow(ctx->task_id(), 1)) {
        return Status::Internal("injected post-spill failure");
      }
      return Status::OK();
    }

   private:
    FailSchedule* schedule_;
  };

  auto dir = TempDir::Create("retry-clean");
  ASSERT_TRUE(dir.ok());
  JobConfig config;
  config.work_dir = dir->path().string();
  config.sort_buffer_bytes = 128;  // Spill on nearly every record.
  config.num_map_tasks = 4;
  config.max_task_attempts = 3;

  std::map<std::string, uint64_t> baseline;
  JobConfig clean_config = config;
  clean_config.max_task_attempts = 1;
  ASSERT_TRUE(RunCountJob(clean_config, &baseline).ok());

  auto schedule = std::make_shared<FailSchedule>();
  MemoryTable<std::string, uint64_t> output;
  auto metrics = RunJob<SpillThenFailMapper, SumReducer>(
      config, Input(),
      [schedule] {
        return std::make_unique<SpillThenFailMapper>(schedule.get());
      },
      [] { return std::make_unique<SumReducer>(); }, &output);
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  std::map<std::string, uint64_t> counts;
  for (const auto& [k, v] : output.rows) {
    counts[k] = v;
  }
  EXPECT_EQ(counts, baseline);
  EXPECT_GT(metrics->Counter(kSpillFiles), 0u);
  EXPECT_EQ(FilesIn(config.work_dir), 0u);
}

TEST(FaultToleranceTest, MidMapFailureLeavesWorkDirClean) {
  // The mapper dies after emitting (and spilling) but before the task
  // commits its runs — the SortBuffer still holds them, and discarding
  // the attempt must unlink them.
  class CleanupFailingMapper final
      : public Mapper<uint64_t, std::string, std::string, uint64_t> {
   public:
    explicit CleanupFailingMapper(std::atomic<int>* attempts)
        : attempts_(attempts) {}
    Status Map(const uint64_t& id, const std::string& word,
               Context* ctx) override {
      return ctx->Emit(word, 1);
    }
    Status Cleanup(Context* ctx) override {
      if (attempts_->fetch_add(1) == 0) {
        return Status::IOError("flaky cleanup");
      }
      return Status::OK();
    }

   private:
    std::atomic<int>* attempts_;
  };

  auto dir = TempDir::Create("midmap-clean");
  ASSERT_TRUE(dir.ok());
  JobConfig config;
  config.work_dir = dir->path().string();
  config.sort_buffer_bytes = 128;
  config.num_map_tasks = 1;
  config.max_task_attempts = 2;
  auto attempts = std::make_shared<std::atomic<int>>(0);
  MemoryTable<std::string, uint64_t> output;
  auto metrics = RunJob<CleanupFailingMapper, SumReducer>(
      config, Input(),
      [attempts] {
        return std::make_unique<CleanupFailingMapper>(attempts.get());
      },
      [] { return std::make_unique<SumReducer>(); }, &output);
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  EXPECT_EQ(metrics->Counter(kTaskRetries), 1u);
  EXPECT_EQ(FilesIn(config.work_dir), 0u);
}

TEST(FaultToleranceTest, FailedJobLeavesWorkDirClean) {
  // Exhausted attempts fail the whole job; runs of the tasks that did
  // succeed must not be orphaned in a user-provided work_dir either.
  auto dir = TempDir::Create("failed-clean");
  ASSERT_TRUE(dir.ok());
  JobConfig config;
  config.work_dir = dir->path().string();
  config.sort_buffer_bytes = 128;
  config.num_map_tasks = 4;
  config.map_slots = 1;  // Task 0..2 commit their runs before 3 fails.
  config.max_task_attempts = 2;
  std::map<std::string, uint64_t> counts;
  auto metrics = RunFlakyCountJob(config, &counts, /*map_fails=*/0,
                                  /*reduce_fails=*/0,
                                  /*always_fail_map_task=*/3);
  ASSERT_FALSE(metrics.ok());
  EXPECT_EQ(FilesIn(config.work_dir), 0u);
}

TEST(FaultToleranceTest, RetryBackoffDelaysFailedAttempts) {
  // With a backoff configured, a job that retries sleeps between
  // attempts: total wallclock must cover at least the configured delay.
  JobConfig config;
  config.num_map_tasks = 1;
  config.num_reducers = 1;
  config.max_task_attempts = 2;
  config.task_retry_backoff_ms = 30.0;
  std::map<std::string, uint64_t> counts;
  auto metrics = RunFlakyCountJob(config, &counts, /*map_fails=*/1,
                                  /*reduce_fails=*/0);
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  EXPECT_EQ(metrics->Counter(kTaskRetries), 1u);
  EXPECT_GE(metrics->wallclock_ms, 30.0);
}

TEST(FaultToleranceTest, SkewCounterReportsHeaviestReducer) {
  // All records share one key -> one reducer takes everything.
  MemoryTable<uint64_t, std::string> input;
  for (uint64_t i = 0; i < 25; ++i) {
    input.Add(i, "same");
  }
  JobConfig config;
  config.num_reducers = 4;
  MemoryTable<std::string, uint64_t> output;
  auto metrics = RunJob<WordMapper, SumReducer>(
      config, input, [] { return std::make_unique<WordMapper>(); },
      [] { return std::make_unique<SumReducer>(); }, &output);
  ASSERT_TRUE(metrics.ok());
  EXPECT_EQ(metrics->Counter(kReduceInputRecordsMax), 25u);
}

}  // namespace
}  // namespace ngram::mr
