#include "mapreduce/merge.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "mapreduce/record.h"
#include "util/random.h"

namespace ngram::mr {
namespace {

std::unique_ptr<RecordReader> MemorySource(
    const std::vector<std::pair<std::string, std::string>>& records,
    std::vector<std::string>* storage) {
  storage->push_back("");
  std::string& buf = storage->back();
  for (const auto& [k, v] : records) {
    AppendRecord(&buf, k, v);
  }
  return std::make_unique<MemoryRecordReader>(Slice(buf));
}

TEST(KWayMergerTest, MergesTwoSortedStreams) {
  std::vector<std::string> storage;
  storage.reserve(4);
  std::vector<std::unique_ptr<RecordReader>> sources;
  sources.push_back(MemorySource({{"a", "1"}, {"c", "3"}}, &storage));
  sources.push_back(MemorySource({{"b", "2"}, {"d", "4"}}, &storage));
  KWayMerger merger(std::move(sources), BytewiseComparator::Instance());
  std::string out;
  while (merger.Next()) {
    out += merger.key().ToString();
  }
  EXPECT_EQ(out, "abcd");
  EXPECT_TRUE(merger.status().ok());
}

TEST(KWayMergerTest, EmptyAndNullSourcesSkipped) {
  std::vector<std::string> storage;
  storage.reserve(4);
  std::vector<std::unique_ptr<RecordReader>> sources;
  sources.push_back(nullptr);
  sources.push_back(MemorySource({}, &storage));
  sources.push_back(MemorySource({{"x", "1"}}, &storage));
  KWayMerger merger(std::move(sources), BytewiseComparator::Instance());
  ASSERT_TRUE(merger.Next());
  EXPECT_EQ(merger.key().ToString(), "x");
  EXPECT_FALSE(merger.Next());
}

TEST(KWayMergerTest, NoSourcesAtAll) {
  KWayMerger merger({}, BytewiseComparator::Instance());
  EXPECT_FALSE(merger.Next());
  EXPECT_TRUE(merger.status().ok());
}

TEST(KWayMergerTest, StableAcrossSourcesForEqualKeys) {
  std::vector<std::string> storage;
  storage.reserve(6);
  std::vector<std::unique_ptr<RecordReader>> sources;
  sources.push_back(MemorySource({{"k", "from0"}}, &storage));
  sources.push_back(MemorySource({{"k", "from1"}}, &storage));
  sources.push_back(MemorySource({{"k", "from2"}}, &storage));
  KWayMerger merger(std::move(sources), BytewiseComparator::Instance());
  std::vector<std::string> values;
  while (merger.Next()) {
    values.push_back(merger.value().ToString());
  }
  EXPECT_EQ(values,
            (std::vector<std::string>{"from0", "from1", "from2"}));
}

TEST(KWayMergerTest, StableForEqualKeysInterleavedWithOtherKeys) {
  // Loser-tree stability under replay: equal keys must surface in source
  // order even when sources advance at different rates between ties.
  std::vector<std::string> storage;
  storage.reserve(8);
  std::vector<std::unique_ptr<RecordReader>> sources;
  sources.push_back(
      MemorySource({{"a", "a0"}, {"k", "k0"}, {"z", "z0"}}, &storage));
  sources.push_back(MemorySource({{"k", "k1"}, {"k", "k1b"}}, &storage));
  sources.push_back(
      MemorySource({{"b", "b2"}, {"k", "k2"}, {"q", "q2"}}, &storage));
  KWayMerger merger(std::move(sources), BytewiseComparator::Instance());
  std::vector<std::string> values;
  while (merger.Next()) {
    values.push_back(merger.value().ToString());
  }
  EXPECT_EQ(values, (std::vector<std::string>{"a0", "b2", "k0", "k1", "k1b",
                                              "k2", "q2", "z0"}));
}

TEST(KWayMergerTest, RandomizedStabilityWithDuplicateKeys) {
  // Values encode (source, position); for every key the merged order must
  // be source-major, position-minor — map-emission order.
  Rng rng(77);
  std::vector<std::string> storage;
  storage.reserve(16);
  std::vector<std::unique_ptr<RecordReader>> sources;
  for (int s = 0; s < 9; ++s) {
    std::vector<std::pair<std::string, std::string>> records;
    const uint64_t n = 20 + rng.Uniform(30);
    for (uint64_t i = 0; i < n; ++i) {
      records.emplace_back("key" + std::to_string(rng.Uniform(5)), "");
    }
    std::sort(records.begin(), records.end());
    for (uint64_t i = 0; i < records.size(); ++i) {
      records[i].second = std::to_string(s) + ":" + std::to_string(i);
    }
    sources.push_back(MemorySource(records, &storage));
  }
  KWayMerger merger(std::move(sources), BytewiseComparator::Instance());
  std::string prev_key;
  std::pair<int, int> prev_value{-1, -1};
  while (merger.Next()) {
    const std::string k = merger.key().ToString();
    const std::string v = merger.value().ToString();
    const auto colon = v.find(':');
    const std::pair<int, int> sv{std::stoi(v.substr(0, colon)),
                                 std::stoi(v.substr(colon + 1))};
    if (k == prev_key) {
      EXPECT_LT(prev_value, sv) << "key " << k;
    } else {
      EXPECT_LT(prev_key, k);
    }
    prev_key = k;
    prev_value = sv;
  }
  EXPECT_TRUE(merger.status().ok());
}

TEST(KWayMergerTest, RandomizedManySources) {
  Rng rng(31);
  std::vector<std::string> all_keys;
  std::vector<std::string> storage;
  storage.reserve(16);
  std::vector<std::unique_ptr<RecordReader>> sources;
  for (int s = 0; s < 16; ++s) {
    std::vector<std::pair<std::string, std::string>> records;
    const uint64_t n = rng.Uniform(50);
    for (uint64_t i = 0; i < n; ++i) {
      records.emplace_back("key" + std::to_string(rng.Uniform(1000)), "v");
    }
    std::sort(records.begin(), records.end());
    for (const auto& [k, v] : records) {
      all_keys.push_back(k);
    }
    sources.push_back(MemorySource(records, &storage));
  }
  std::sort(all_keys.begin(), all_keys.end());

  KWayMerger merger(std::move(sources), BytewiseComparator::Instance());
  std::vector<std::string> merged;
  std::string prev;
  while (merger.Next()) {
    const std::string k = merger.key().ToString();
    EXPECT_LE(prev, k);  // Non-decreasing.
    merged.push_back(k);
    prev = k;
  }
  EXPECT_EQ(merged, all_keys);
}

}  // namespace
}  // namespace ngram::mr
