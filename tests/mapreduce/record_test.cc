#include "mapreduce/record.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "util/random.h"
#include "util/temp_dir.h"

namespace ngram::mr {
namespace {

TEST(RecordTest, AppendAndMemoryRead) {
  std::string buf;
  AppendRecord(&buf, "key1", "value1");
  AppendRecord(&buf, "k", "");
  AppendRecord(&buf, "", "v");

  MemoryRecordReader reader((Slice(buf)));
  ASSERT_TRUE(reader.Next());
  EXPECT_EQ(reader.key().ToString(), "key1");
  EXPECT_EQ(reader.value().ToString(), "value1");
  ASSERT_TRUE(reader.Next());
  EXPECT_EQ(reader.key().ToString(), "k");
  EXPECT_TRUE(reader.value().empty());
  ASSERT_TRUE(reader.Next());
  EXPECT_TRUE(reader.key().empty());
  EXPECT_EQ(reader.value().ToString(), "v");
  EXPECT_FALSE(reader.Next());
  EXPECT_TRUE(reader.status().ok());
}

TEST(RecordTest, MemoryReaderRejectsCorruption) {
  std::string buf;
  AppendRecord(&buf, "abc", "def");
  buf.resize(buf.size() - 2);  // Truncate the value.
  MemoryRecordReader reader((Slice(buf)));
  EXPECT_FALSE(reader.Next());
  EXPECT_TRUE(reader.status().IsCorruption());
}

class FileRecordTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dir = TempDir::Create("record-test");
    ASSERT_TRUE(dir.ok());
    dir_ = std::make_unique<TempDir>(std::move(dir).ValueOrDie());
  }

  std::string WriteFile(const std::string& content) {
    const std::string path = dir_->File("records.bin");
    std::ofstream out(path, std::ios::binary);
    out.write(content.data(), static_cast<std::streamsize>(content.size()));
    return path;
  }

  std::unique_ptr<TempDir> dir_;
};

TEST_F(FileRecordTest, ReadsWholeFile) {
  std::string buf;
  for (int i = 0; i < 100; ++i) {
    AppendRecord(&buf, "key" + std::to_string(i), "val" + std::to_string(i));
  }
  const std::string path = WriteFile(buf);
  FileRecordReader reader(path, 0, buf.size());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(reader.Next()) << reader.status().ToString();
    EXPECT_EQ(reader.key().ToString(), "key" + std::to_string(i));
    EXPECT_EQ(reader.value().ToString(), "val" + std::to_string(i));
  }
  EXPECT_FALSE(reader.Next());
  EXPECT_TRUE(reader.status().ok());
}

TEST_F(FileRecordTest, ReadsSegmentAtOffset) {
  std::string first, second;
  AppendRecord(&first, "aaa", "111");
  AppendRecord(&second, "bbb", "222");
  AppendRecord(&second, "ccc", "333");
  const std::string path = WriteFile(first + second);

  FileRecordReader reader(path, first.size(), second.size());
  ASSERT_TRUE(reader.Next());
  EXPECT_EQ(reader.key().ToString(), "bbb");
  ASSERT_TRUE(reader.Next());
  EXPECT_EQ(reader.key().ToString(), "ccc");
  EXPECT_FALSE(reader.Next());
}

TEST_F(FileRecordTest, TinyBufferForcesRefills) {
  std::string buf;
  Rng rng(5);
  std::vector<std::pair<std::string, std::string>> expected;
  for (int i = 0; i < 200; ++i) {
    std::string key(1 + rng.Uniform(40), 'k');
    std::string value(rng.Uniform(60), 'v');
    key += std::to_string(i);
    AppendRecord(&buf, key, value);
    expected.emplace_back(key, value);
  }
  const std::string path = WriteFile(buf);
  FileRecordReader reader(path, 0, buf.size(), /*buffer_size=*/64);
  for (const auto& [k, v] : expected) {
    ASSERT_TRUE(reader.Next()) << reader.status().ToString();
    EXPECT_EQ(reader.key().ToString(), k);
    EXPECT_EQ(reader.value().ToString(), v);
  }
  EXPECT_FALSE(reader.Next());
  EXPECT_TRUE(reader.status().ok());
}

TEST_F(FileRecordTest, LookbackContractAcrossRefills) {
  // The grouped reduce pipeline compares adjacent merge records on cached
  // key slices, which requires the previous record's bytes to stay valid
  // across exactly one Next() call — including calls that refill the read
  // buffer. Tiny buffers make nearly every Next() a refill; varying record
  // sizes make some of them swap mid-record.
  for (size_t buffer_size : {size_t{24}, size_t{32}, size_t{64}}) {
    std::string buf;
    std::vector<std::pair<std::string, std::string>> expected;
    for (int i = 0; i < 200; ++i) {
      const std::string k = "key" + std::to_string(i);
      const std::string v(static_cast<size_t>(i % 37), 'v');
      AppendRecord(&buf, k, v);
      expected.emplace_back(k, v);
    }
    const std::string path = WriteFile(buf);
    FileRecordReader reader(path, 0, buf.size(), buffer_size);
    ASSERT_TRUE(reader.Next()) << reader.status().ToString();
    Slice prev_key = reader.key();
    Slice prev_value = reader.value();
    for (size_t i = 1; i < expected.size(); ++i) {
      ASSERT_TRUE(reader.Next()) << reader.status().ToString();
      // The previous record, read through slices captured before this
      // Next(), must still hold its original bytes.
      EXPECT_EQ(prev_key.ToString(), expected[i - 1].first)
          << "buffer_size=" << buffer_size << " i=" << i;
      EXPECT_EQ(prev_value.ToString(), expected[i - 1].second)
          << "buffer_size=" << buffer_size << " i=" << i;
      prev_key = reader.key();
      prev_value = reader.value();
    }
    EXPECT_FALSE(reader.Next());
    // End of stream counts as the one permitted advance: the final
    // record's slices survive it.
    EXPECT_EQ(prev_key.ToString(), expected.back().first);
    EXPECT_TRUE(reader.status().ok());
  }
}

TEST_F(FileRecordTest, RecordLargerThanBufferGrows) {
  std::string buf;
  const std::string big(10000, 'x');
  AppendRecord(&buf, "big", big);
  const std::string path = WriteFile(buf);
  FileRecordReader reader(path, 0, buf.size(), /*buffer_size=*/128);
  ASSERT_TRUE(reader.Next()) << reader.status().ToString();
  EXPECT_EQ(reader.value().size(), big.size());
  EXPECT_FALSE(reader.Next());
}

TEST_F(FileRecordTest, MissingFileReportsError) {
  FileRecordReader reader(dir_->File("nope.bin"), 0, 10);
  EXPECT_FALSE(reader.Next());
  EXPECT_TRUE(reader.status().IsIOError());
}

TEST_F(FileRecordTest, TruncatedSegmentReportsCorruption) {
  std::string buf;
  AppendRecord(&buf, "abc", "defghi");
  const std::string path = WriteFile(buf);
  // The extent claims more bytes than the file holds; the eager prefetch
  // surfaces the corruption on the first read.
  FileRecordReader reader(path, 0, buf.size() + 20);
  EXPECT_FALSE(reader.Next());
  EXPECT_TRUE(reader.status().IsCorruption());
}

TEST_F(FileRecordTest, ReadFailureReportsIOErrorNotCorruption) {
  // fopen() on a directory succeeds on Linux but every fread() fails with
  // EISDIR — a genuine I/O error, which must not be mislabeled as a
  // truncated ("corrupt") spill file.
  FileRecordReader reader(dir_->path().string(), 0, 10);
  EXPECT_FALSE(reader.Next());
  EXPECT_TRUE(reader.status().IsIOError()) << reader.status().ToString();
  EXPECT_FALSE(reader.status().IsCorruption());
}

}  // namespace
}  // namespace ngram::mr
