#include "mapreduce/sort_buffer.h"

#include <gtest/gtest.h>

#include <map>

#include "encoding/serde.h"
#include "mapreduce/job.h"
#include "mapreduce/merge.h"
#include "util/temp_dir.h"

namespace ngram::mr {
namespace {

class SortBufferTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dir = TempDir::Create("sortbuf-test");
    ASSERT_TRUE(dir.ok());
    dir_ = std::make_unique<TempDir>(std::move(dir).ValueOrDie());
  }

  SortBuffer::Options Opts(uint32_t partitions, size_t budget) {
    SortBuffer::Options o;
    o.num_partitions = partitions;
    o.budget_bytes = budget;
    o.work_dir = dir_->path().string();
    return o;
  }

  /// Reads all records of one partition of a run back.
  std::vector<std::pair<std::string, std::string>> ReadPartition(
      const SpillRun& run, uint32_t partition) {
    std::vector<std::pair<std::string, std::string>> out;
    auto reader = OpenRunPartition(run, partition);
    if (reader == nullptr) {
      return out;
    }
    while (reader->Next()) {
      out.emplace_back(reader->key().ToString(), reader->value().ToString());
    }
    EXPECT_TRUE(reader->status().ok());
    return out;
  }

  std::unique_ptr<TempDir> dir_;
};

TEST_F(SortBufferTest, SortsWithinPartition) {
  Counters counters;
  TaskCounters tc(&counters);
  SortBuffer buffer(Opts(1, 1 << 20), &tc);
  ASSERT_TRUE(buffer.Add(0, "cherry", "3").ok());
  ASSERT_TRUE(buffer.Add(0, "apple", "1").ok());
  ASSERT_TRUE(buffer.Add(0, "banana", "2").ok());
  std::vector<SpillRun> runs;
  ASSERT_TRUE(buffer.Finish(&runs).ok());
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_TRUE(runs[0].in_memory());
  auto records = ReadPartition(runs[0], 0);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].first, "apple");
  EXPECT_EQ(records[1].first, "banana");
  EXPECT_EQ(records[2].first, "cherry");
}

TEST_F(SortBufferTest, PartitionsAreSeparated) {
  Counters counters;
  TaskCounters tc(&counters);
  SortBuffer buffer(Opts(3, 1 << 20), &tc);
  ASSERT_TRUE(buffer.Add(2, "z", "").ok());
  ASSERT_TRUE(buffer.Add(0, "a", "").ok());
  ASSERT_TRUE(buffer.Add(1, "m", "").ok());
  ASSERT_TRUE(buffer.Add(0, "b", "").ok());
  std::vector<SpillRun> runs;
  ASSERT_TRUE(buffer.Finish(&runs).ok());
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(ReadPartition(runs[0], 0).size(), 2u);
  EXPECT_EQ(ReadPartition(runs[0], 1).size(), 1u);
  EXPECT_EQ(ReadPartition(runs[0], 2).size(), 1u);
  EXPECT_EQ(runs[0].segments[0].num_records, 2u);
}

TEST_F(SortBufferTest, StableForEqualKeys) {
  Counters counters;
  TaskCounters tc(&counters);
  SortBuffer buffer(Opts(1, 1 << 20), &tc);
  ASSERT_TRUE(buffer.Add(0, "same", "first").ok());
  ASSERT_TRUE(buffer.Add(0, "same", "second").ok());
  ASSERT_TRUE(buffer.Add(0, "same", "third").ok());
  std::vector<SpillRun> runs;
  ASSERT_TRUE(buffer.Finish(&runs).ok());
  auto records = ReadPartition(runs[0], 0);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].second, "first");
  EXPECT_EQ(records[1].second, "second");
  EXPECT_EQ(records[2].second, "third");
}

TEST_F(SortBufferTest, TinyBudgetSpillsToFiles) {
  Counters counters;
  uint64_t total_records = 500;
  {
    TaskCounters tc(&counters);
    SortBuffer buffer(Opts(2, 256), &tc);
    for (uint64_t i = 0; i < total_records; ++i) {
      const std::string key = "key" + std::to_string(i % 50);
      ASSERT_TRUE(
          buffer.Add(static_cast<uint32_t>(i % 2), key, "v").ok());
    }
    std::vector<SpillRun> runs;
    ASSERT_TRUE(buffer.Finish(&runs).ok());
    EXPECT_GT(buffer.spill_count(), 1u);
    uint64_t read_back = 0;
    for (const auto& run : runs) {
      EXPECT_FALSE(run.in_memory());
      read_back += ReadPartition(run, 0).size();
      read_back += ReadPartition(run, 1).size();
    }
    EXPECT_EQ(read_back, total_records);
  }
  EXPECT_EQ(counters.Get(kSpilledRecords), total_records);
  EXPECT_GT(counters.Get(kSpillFiles), 1u);
}

TEST_F(SortBufferTest, CombinerAggregatesWithinSpill) {
  Counters counters;
  TaskCounters tc(&counters);
  SortBuffer::Options opts = Opts(1, 1 << 20);
  opts.combiner = SumCombiner();
  SortBuffer buffer(opts, &tc);
  const std::string one = SerializeToString<uint64_t>(1);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(buffer.Add(0, "word", one).ok());
  }
  ASSERT_TRUE(buffer.Add(0, "other", one).ok());
  std::vector<SpillRun> runs;
  ASSERT_TRUE(buffer.Finish(&runs).ok());
  auto records = ReadPartition(runs[0], 0);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].first, "other");
  uint64_t count = 0;
  ASSERT_TRUE(Serde<uint64_t>::Decode(Slice(records[1].second), &count));
  EXPECT_EQ(count, 10u);
  tc.Flush();
  EXPECT_EQ(counters.Get(kCombineInputRecords), 11u);
  EXPECT_EQ(counters.Get(kCombineOutputRecords), 2u);
}

TEST_F(SortBufferTest, CustomComparatorControlsOrder) {
  // Reverse bytewise order.
  class ReverseComparator final : public RawComparator {
   public:
    int Compare(Slice a, Slice b) const override { return b.compare(a); }
    const char* Name() const override { return "reverse"; }
  };
  static const ReverseComparator kReverse;

  Counters counters;
  TaskCounters tc(&counters);
  SortBuffer::Options opts = Opts(1, 1 << 20);
  opts.comparator = &kReverse;
  SortBuffer buffer(opts, &tc);
  ASSERT_TRUE(buffer.Add(0, "a", "").ok());
  ASSERT_TRUE(buffer.Add(0, "c", "").ok());
  ASSERT_TRUE(buffer.Add(0, "b", "").ok());
  std::vector<SpillRun> runs;
  ASSERT_TRUE(buffer.Finish(&runs).ok());
  auto records = ReadPartition(runs[0], 0);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].first, "c");
  EXPECT_EQ(records[1].first, "b");
  EXPECT_EQ(records[2].first, "a");
}

TEST_F(SortBufferTest, EmptyBufferYieldsNoRuns) {
  Counters counters;
  TaskCounters tc(&counters);
  SortBuffer buffer(Opts(4, 1 << 20), &tc);
  std::vector<SpillRun> runs;
  ASSERT_TRUE(buffer.Finish(&runs).ok());
  EXPECT_TRUE(runs.empty());
}

TEST_F(SortBufferTest, PartitionOutOfRangeRejected) {
  Counters counters;
  TaskCounters tc(&counters);
  SortBuffer buffer(Opts(2, 1 << 20), &tc);
  EXPECT_TRUE(buffer.Add(2, "k", "v").IsInvalidArgument());
}

}  // namespace
}  // namespace ngram::mr
