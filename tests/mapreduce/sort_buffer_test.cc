#include "mapreduce/sort_buffer.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <map>

#include "encoding/serde.h"
#include "mapreduce/job.h"
#include "mapreduce/merge.h"
#include "mapreduce/spill_writer.h"
#include "util/temp_dir.h"

namespace ngram::mr {
namespace {

class SortBufferTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dir = TempDir::Create("sortbuf-test");
    ASSERT_TRUE(dir.ok());
    dir_ = std::make_unique<TempDir>(std::move(dir).ValueOrDie());
  }

  SortBuffer::Options Opts(uint32_t partitions, size_t budget) {
    SortBuffer::Options o;
    o.num_partitions = partitions;
    o.budget_bytes = budget;
    o.work_dir = dir_->path().string();
    return o;
  }

  /// Reads all records of one partition of a run back.
  std::vector<std::pair<std::string, std::string>> ReadPartition(
      const SpillRun& run, uint32_t partition) {
    std::vector<std::pair<std::string, std::string>> out;
    auto reader = OpenRunPartition(run, partition);
    if (reader == nullptr) {
      return out;
    }
    while (reader->Next()) {
      out.emplace_back(reader->key().ToString(), reader->value().ToString());
    }
    EXPECT_TRUE(reader->status().ok());
    return out;
  }

  std::unique_ptr<TempDir> dir_;
};

TEST_F(SortBufferTest, SortsWithinPartition) {
  Counters counters;
  TaskCounters tc(&counters);
  SortBuffer buffer(Opts(1, 1 << 20), &tc);
  ASSERT_TRUE(buffer.Add(0, "cherry", "3").ok());
  ASSERT_TRUE(buffer.Add(0, "apple", "1").ok());
  ASSERT_TRUE(buffer.Add(0, "banana", "2").ok());
  std::vector<SpillRun> runs;
  ASSERT_TRUE(buffer.Finish(&runs).ok());
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_TRUE(runs[0].in_memory());
  auto records = ReadPartition(runs[0], 0);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].first, "apple");
  EXPECT_EQ(records[1].first, "banana");
  EXPECT_EQ(records[2].first, "cherry");
}

TEST_F(SortBufferTest, PartitionsAreSeparated) {
  Counters counters;
  TaskCounters tc(&counters);
  SortBuffer buffer(Opts(3, 1 << 20), &tc);
  ASSERT_TRUE(buffer.Add(2, "z", "").ok());
  ASSERT_TRUE(buffer.Add(0, "a", "").ok());
  ASSERT_TRUE(buffer.Add(1, "m", "").ok());
  ASSERT_TRUE(buffer.Add(0, "b", "").ok());
  std::vector<SpillRun> runs;
  ASSERT_TRUE(buffer.Finish(&runs).ok());
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(ReadPartition(runs[0], 0).size(), 2u);
  EXPECT_EQ(ReadPartition(runs[0], 1).size(), 1u);
  EXPECT_EQ(ReadPartition(runs[0], 2).size(), 1u);
  EXPECT_EQ(runs[0].segments[0].num_records, 2u);
}

TEST_F(SortBufferTest, StableForEqualKeys) {
  Counters counters;
  TaskCounters tc(&counters);
  SortBuffer buffer(Opts(1, 1 << 20), &tc);
  ASSERT_TRUE(buffer.Add(0, "same", "first").ok());
  ASSERT_TRUE(buffer.Add(0, "same", "second").ok());
  ASSERT_TRUE(buffer.Add(0, "same", "third").ok());
  std::vector<SpillRun> runs;
  ASSERT_TRUE(buffer.Finish(&runs).ok());
  auto records = ReadPartition(runs[0], 0);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].second, "first");
  EXPECT_EQ(records[1].second, "second");
  EXPECT_EQ(records[2].second, "third");
}

TEST_F(SortBufferTest, TinyBudgetSpillsToFiles) {
  Counters counters;
  uint64_t total_records = 500;
  {
    TaskCounters tc(&counters);
    SortBuffer buffer(Opts(2, 256), &tc);
    for (uint64_t i = 0; i < total_records; ++i) {
      const std::string key = "key" + std::to_string(i % 50);
      ASSERT_TRUE(
          buffer.Add(static_cast<uint32_t>(i % 2), key, "v").ok());
    }
    std::vector<SpillRun> runs;
    ASSERT_TRUE(buffer.Finish(&runs).ok());
    EXPECT_GT(buffer.spill_count(), 1u);
    uint64_t read_back = 0;
    for (const auto& run : runs) {
      EXPECT_FALSE(run.in_memory());
      read_back += ReadPartition(run, 0).size();
      read_back += ReadPartition(run, 1).size();
    }
    EXPECT_EQ(read_back, total_records);
  }
  EXPECT_EQ(counters.Get(kSpilledRecords), total_records);
  EXPECT_GT(counters.Get(kSpillFiles), 1u);
}

TEST_F(SortBufferTest, CombinerAggregatesWithinSpill) {
  Counters counters;
  TaskCounters tc(&counters);
  SortBuffer::Options opts = Opts(1, 1 << 20);
  opts.combiner = SumCombiner();
  SortBuffer buffer(opts, &tc);
  const std::string one = SerializeToString<uint64_t>(1);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(buffer.Add(0, "word", one).ok());
  }
  ASSERT_TRUE(buffer.Add(0, "other", one).ok());
  std::vector<SpillRun> runs;
  ASSERT_TRUE(buffer.Finish(&runs).ok());
  auto records = ReadPartition(runs[0], 0);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].first, "other");
  uint64_t count = 0;
  ASSERT_TRUE(Serde<uint64_t>::Decode(Slice(records[1].second), &count));
  EXPECT_EQ(count, 10u);
  tc.Flush();
  EXPECT_EQ(counters.Get(kCombineInputRecords), 11u);
  EXPECT_EQ(counters.Get(kCombineOutputRecords), 2u);
}

TEST_F(SortBufferTest, CustomComparatorControlsOrder) {
  // Reverse bytewise order.
  class ReverseComparator final : public RawComparator {
   public:
    int Compare(Slice a, Slice b) const override { return b.compare(a); }
    const char* Name() const override { return "reverse"; }
  };
  static const ReverseComparator kReverse;

  Counters counters;
  TaskCounters tc(&counters);
  SortBuffer::Options opts = Opts(1, 1 << 20);
  opts.comparator = &kReverse;
  SortBuffer buffer(opts, &tc);
  ASSERT_TRUE(buffer.Add(0, "a", "").ok());
  ASSERT_TRUE(buffer.Add(0, "c", "").ok());
  ASSERT_TRUE(buffer.Add(0, "b", "").ok());
  std::vector<SpillRun> runs;
  ASSERT_TRUE(buffer.Finish(&runs).ok());
  auto records = ReadPartition(runs[0], 0);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].first, "c");
  EXPECT_EQ(records[1].first, "b");
  EXPECT_EQ(records[2].first, "a");
}

TEST_F(SortBufferTest, EmptyBufferYieldsNoRuns) {
  Counters counters;
  TaskCounters tc(&counters);
  SortBuffer buffer(Opts(4, 1 << 20), &tc);
  std::vector<SpillRun> runs;
  ASSERT_TRUE(buffer.Finish(&runs).ok());
  EXPECT_TRUE(runs.empty());
}

TEST_F(SortBufferTest, PartitionOutOfRangeRejected) {
  Counters counters;
  TaskCounters tc(&counters);
  SortBuffer buffer(Opts(2, 1 << 20), &tc);
  EXPECT_TRUE(buffer.Add(2, "k", "v").IsInvalidArgument());
}

TEST_F(SortBufferTest, RecordExactlyAtBudgetSpillsAndSurvives) {
  Counters counters;
  TaskCounters tc(&counters);
  const size_t budget = 256;
  SortBuffer buffer(Opts(1, budget), &tc);
  // Key + value + the 24-byte RecordRef land exactly on the budget.
  const std::string key(100, 'k');
  const std::string value(budget - key.size() - 24, 'v');
  ASSERT_TRUE(buffer.Add(0, key, value).ok());
  ASSERT_TRUE(buffer.Add(0, "tail", "t").ok());
  std::vector<SpillRun> runs;
  ASSERT_TRUE(buffer.Finish(&runs).ok());
  EXPECT_EQ(buffer.spill_count(), 2u);  // Boundary spill + final flush.
  size_t total = 0;
  for (const auto& run : runs) {
    total += ReadPartition(run, 0).size();
  }
  EXPECT_EQ(total, 2u);
}

TEST_F(SortBufferTest, RecordLargerThanBudgetStreamsThroughSpill) {
  Counters counters;
  TaskCounters tc(&counters);
  SortBuffer buffer(Opts(1, 128), &tc);
  const std::string huge(4096, 'h');
  ASSERT_TRUE(buffer.Add(0, "big", huge).ok());
  std::vector<SpillRun> runs;
  ASSERT_TRUE(buffer.Finish(&runs).ok());
  ASSERT_EQ(runs.size(), 1u);
  auto records = ReadPartition(runs[0], 0);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].second, huge);
}

TEST_F(SortBufferTest, ArenaOffsetOverflowRejected) {
  Counters counters;
  TaskCounters tc(&counters);
  SortBuffer::Options opts = Opts(1, 1 << 20);
  opts.arena_limit_bytes = 512;  // Stand-in for the 4 GiB offset space.
  SortBuffer buffer(opts, &tc);
  // A record that can never fit the offset space is rejected outright...
  EXPECT_TRUE(buffer.Add(0, "k", std::string(600, 'v')).IsInvalidArgument());
  // ...while records that fit after a spill keep working.
  ASSERT_TRUE(buffer.Add(0, "a", std::string(400, 'v')).ok());
  ASSERT_TRUE(buffer.Add(0, "b", std::string(400, 'v')).ok());
  std::vector<SpillRun> runs;
  ASSERT_TRUE(buffer.Finish(&runs).ok());
  size_t total = 0;
  for (const auto& run : runs) {
    total += ReadPartition(run, 0).size();
  }
  EXPECT_EQ(total, 2u);
}

TEST_F(SortBufferTest, CombinerRunsPerSpillAndMergeRecombines) {
  // Force several spills of the same key: each spill combines its own
  // slice, the merge then surfaces one partial per run, in run order.
  Counters counters;
  TaskCounters tc(&counters);
  SortBuffer::Options opts = Opts(1, 512);
  opts.combiner = SumCombiner();
  SortBuffer buffer(opts, &tc);
  const std::string one = SerializeToString<uint64_t>(1);
  const int kRecords = 100;
  for (int i = 0; i < kRecords; ++i) {
    ASSERT_TRUE(buffer.Add(0, "word", one).ok());
  }
  std::vector<SpillRun> runs;
  ASSERT_TRUE(buffer.Finish(&runs).ok());
  ASSERT_GT(runs.size(), 1u);

  std::vector<std::unique_ptr<RecordReader>> sources;
  for (const auto& run : runs) {
    auto reader = OpenRunPartition(run, 0);
    ASSERT_NE(reader, nullptr);
    sources.push_back(std::move(reader));
  }
  KWayMerger merger(std::move(sources), BytewiseComparator::Instance());
  uint64_t total = 0, partials = 0;
  while (merger.Next()) {
    EXPECT_EQ(merger.key().ToString(), "word");
    uint64_t v = 0;
    ASSERT_TRUE(Serde<uint64_t>::Decode(merger.value(), &v));
    total += v;
    ++partials;
  }
  EXPECT_EQ(total, static_cast<uint64_t>(kRecords));
  EXPECT_EQ(partials, runs.size());
  tc.Flush();
  EXPECT_EQ(counters.Get(kCombineInputRecords),
            static_cast<uint64_t>(kRecords));
  EXPECT_EQ(counters.Get(kCombineOutputRecords), runs.size());
}

TEST_F(SortBufferTest, MultiRunMergeMatchesSingleRunOrder) {
  // The same records through a spilling buffer and a non-spilling buffer
  // must merge to the identical sequence (multi-run determinism).
  auto collect = [&](size_t budget) {
    Counters counters;
    TaskCounters tc(&counters);
    SortBuffer buffer(Opts(2, budget), &tc);
    for (int i = 0; i < 300; ++i) {
      const std::string key = "key" + std::to_string((i * 7) % 40);
      const std::string value = "v" + std::to_string(i);
      EXPECT_TRUE(
          buffer.Add(static_cast<uint32_t>(i % 2), key, value).ok());
    }
    std::vector<SpillRun> runs;
    EXPECT_TRUE(buffer.Finish(&runs).ok());
    std::vector<std::pair<std::string, std::string>> merged;
    for (uint32_t p = 0; p < 2; ++p) {
      std::vector<std::unique_ptr<RecordReader>> sources;
      for (const auto& run : runs) {
        auto reader = OpenRunPartition(run, p);
        if (reader != nullptr) {
          sources.push_back(std::move(reader));
        }
      }
      KWayMerger merger(std::move(sources), BytewiseComparator::Instance());
      while (merger.Next()) {
        merged.emplace_back(merger.key().ToString(),
                            merger.value().ToString());
      }
    }
    return merged;
  };
  const auto spilled = collect(512);      // Many runs.
  const auto in_memory = collect(1 << 20);  // Single in-memory run.
  EXPECT_EQ(spilled, in_memory);
}

TEST_F(SortBufferTest, FailedSpillUnlinksPartialFile) {
  Counters counters;
  TaskCounters tc(&counters);
  SortBuffer::Options opts = Opts(1, 256);
  opts.combiner = [](Slice key, RawValueIterator* values,
                     RecordSink* sink) -> Status {
    if (key == Slice("boom")) {
      return Status::Internal("combiner exploded");
    }
    values->NextValue();
    return sink->Append(key, values->value());
  };
  SortBuffer buffer(opts, &tc);
  // Benign records exceed the budget, producing successful spill files.
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(buffer.Add(0, "key" + std::to_string(i), "v").ok());
  }
  ASSERT_GT(buffer.spill_count(), 0u);
  // The poisoned key makes the final to-disk flush fail mid-write.
  ASSERT_TRUE(buffer.Add(0, "boom", "v").ok());
  std::vector<SpillRun> runs;
  EXPECT_FALSE(buffer.Finish(&runs).ok());
  // Only the successful spill files remain; the partial one is unlinked.
  size_t files = 0;
  for ([[maybe_unused]] const auto& entry :
       std::filesystem::directory_iterator(dir_->path())) {
    ++files;
  }
  EXPECT_EQ(files, buffer.spill_count());
}

TEST_F(SortBufferTest, ChecksummedSpillsVerify) {
  Counters counters;
  TaskCounters tc(&counters);
  SortBuffer::Options opts = Opts(2, 256);
  opts.compress_runs = false;  // Whole-run CRC is a raw-format feature.
  opts.checksum_spills = true;
  SortBuffer buffer(opts, &tc);
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(buffer.Add(static_cast<uint32_t>(i % 2),
                           "key" + std::to_string(i), "value")
                    .ok());
  }
  std::vector<SpillRun> runs;
  ASSERT_TRUE(buffer.Finish(&runs).ok());
  ASSERT_GT(runs.size(), 1u);
  for (const auto& run : runs) {
    ASSERT_FALSE(run.in_memory());
    ASSERT_FALSE(run.block_format);
    ASSERT_TRUE(run.has_crc);
    EXPECT_TRUE(VerifySpillFileCrc32(run.file_path, run.crc32).ok());
  }
}

TEST_F(SortBufferTest, CompressedSpillsShrinkAndCountRunBytes) {
  // Spilled runs are sorted, so adjacent keys share prefixes; the block
  // format must write fewer at-rest bytes than the raw framing and expose
  // the split through RUN_BYTES_RAW / RUN_BYTES_WRITTEN. Default options
  // compress; has_crc stays false (integrity is per block, not per file).
  Counters counters;
  TaskCounters tc(&counters);
  SortBuffer::Options opts = Opts(2, 4096);
  SortBuffer buffer(opts, &tc);
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(buffer.Add(static_cast<uint32_t>(i % 2),
                           "shared-prefix-key-" + std::to_string(i),
                           "value-" + std::to_string(i))
                    .ok());
  }
  std::vector<SpillRun> runs;
  ASSERT_TRUE(buffer.Finish(&runs).ok());
  ASSERT_GT(runs.size(), 1u);
  uint64_t records = 0;
  for (const auto& run : runs) {
    ASSERT_FALSE(run.in_memory());
    EXPECT_TRUE(run.block_format);
    EXPECT_FALSE(run.has_crc);
    for (uint32_t p = 0; p < 2; ++p) {
      records += ReadPartition(run, p).size();
    }
  }
  EXPECT_EQ(records, 500u);
  tc.Flush();
  const uint64_t raw = counters.Get(kRunBytesRaw);
  const uint64_t written = counters.Get(kRunBytesWritten);
  ASSERT_GT(raw, 0u);
  EXPECT_LT(written, raw);
}

}  // namespace
}  // namespace ngram::mr
