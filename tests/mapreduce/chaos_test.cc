// Seeded chaos harness: deterministic fault injection over a spill-heavy
// two-round pipeline, asserting the crash-consistency dichotomy — every
// chaos run either completes with output and counters byte-identical to
// the fault-free run, or fails with a clean Status and a clean work_dir.
// No third outcome: no silent corruption, no orphaned files, no crash.
//
// Determinism: single-slot sweeps place every I/O operation at the same
// global index run-to-run, so a (seed, config) pair replays exactly; a
// smaller multi-slot section checks the dichotomy itself is
// interleaving-independent.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "mapreduce/dataset.h"
#include "mapreduce/io_env.h"
#include "mapreduce/job.h"
#include "net/fault_transport.h"
#include "net/inproc_transport.h"
#include "util/temp_dir.h"

namespace ngram::mr {
namespace {

// ------------------------------------------------------- pipeline under test

/// Emits `fan_out` records per row with keys shared across rows and tasks
/// (key space of 23): spill-heavy under a tiny sort buffer, and sensitive
/// to any reordering anywhere in the merge.
class FanOutMapper final
    : public Mapper<uint64_t, std::string, std::string, std::string> {
 public:
  Status Map(const uint64_t& id, const std::string& row,
             Context* ctx) override {
    for (uint32_t j = 0; j < 4; ++j) {
      NGRAM_RETURN_NOT_OK(
          ctx->Emit("key" + std::to_string((id * 31 + j) % 23),
                    row + ":" + std::to_string(j)));
    }
    return Status::OK();
  }
};

/// Re-emits every record verbatim: round 1's output is the exact merged
/// record stream.
class IdentityReducer final : public RawReducer<std::string, std::string> {
 public:
  Status Reduce(GroupValueIterator* group, Context* ctx) override {
    while (group->NextValue()) {
      NGRAM_RETURN_NOT_OK(ctx->EmitRaw(group->key(), group->value()));
    }
    return Status::OK();
  }
};

/// Round 2: count round 1's records per key.
class CountMapper final
    : public Mapper<std::string, std::string, std::string, uint64_t> {
 public:
  Status Map(const std::string& key, const std::string& value,
             Context* ctx) override {
    return ctx->Emit(key, 1);
  }
};

class SumReducer final
    : public Reducer<std::string, uint64_t, std::string, uint64_t> {
 public:
  Status Reduce(const std::string& key, Values* values,
                Context* ctx) override {
    uint64_t total = 0, v = 0;
    while (values->Next(&v)) {
      total += v;
    }
    return ctx->Emit(key, total);
  }
};

RecordTable ChaosInput() {
  MemoryTable<uint64_t, std::string> input;
  for (uint64_t i = 0; i < 120; ++i) {
    input.Add(i, "row-" + std::to_string(i) + "-payloadpayload");
  }
  return EncodeTable(input);
}

std::string TableBytes(const RecordTable& table) {
  std::string bytes;
  auto reader = table.NewReader();
  while (reader->Next()) {
    AppendRecord(&bytes, reader->key(), reader->value());
  }
  EXPECT_TRUE(reader->status().ok());
  return bytes;
}

/// Counters whose values legitimately differ from a fault-free run: they
/// record the recovery work itself, or wall time (kBarrierWaitMs measures
/// milliseconds, not data). Everything else must match exactly.
std::map<std::string, uint64_t> StripRecoveryCounters(
    std::map<std::string, uint64_t> counters) {
  counters.erase(kTaskRetries);
  counters.erase(kMapReexecutions);
  counters.erase(kCorruptRunsRecovered);
  counters.erase(kBarrierWaitMs);
  return counters;
}

/// With shuffle_slots > 0 the merge *accounting* becomes
/// scheduling-dependent — how many intermediate passes run eagerly (and
/// what they write) depends on map-task commit timing — so overlap
/// configs additionally strip it. The data counters (records in/out,
/// spills, groups) stay in the comparison: eager merging must never
/// change what the reducers consume or produce.
std::map<std::string, uint64_t> StripSchedulingCounters(
    std::map<std::string, uint64_t> counters) {
  counters = StripRecoveryCounters(std::move(counters));
  counters.erase(kMergePasses);
  counters.erase(kIntermediateMergeBytes);
  counters.erase(kMapMergePasses);
  counters.erase(kMapIntermediateMergeBytes);
  counters.erase(kReduceMergePasses);
  counters.erase(kReduceIntermediateMergeBytes);
  counters.erase(kEarlyMergePasses);
  counters.erase(kEarlyMergeBytes);
  counters.erase(kRunBytesRaw);
  counters.erase(kRunBytesWritten);
  return counters;
}

struct PipelineResult {
  Status status = Status::OK();
  std::string output_bytes;
  std::map<std::string, uint64_t> counters;  // Summed over both rounds.
};

/// Runs the two-round pipeline (fan-out/identity, then count/sum) with
/// every byte of run-file I/O routed through `env`.
PipelineResult RunPipeline(const JobConfig& base, IoEnv* env,
                           const std::string& work_dir) {
  PipelineResult result;
  JobConfig config = base;
  config.io_env = env;
  config.work_dir = work_dir;

  config.name = "chaos-r1";
  RecordTable middle;
  auto round1 = RunJob<FanOutMapper, IdentityReducer>(
      config, ChaosInput(), [] { return std::make_unique<FanOutMapper>(); },
      [] { return std::make_unique<IdentityReducer>(); }, &middle);
  if (!round1.ok()) {
    result.status = round1.status();
    return result;
  }

  config.name = "chaos-r2";
  RecordTable output;
  auto round2 = RunJob<CountMapper, SumReducer>(
      config, middle, [] { return std::make_unique<CountMapper>(); },
      [] { return std::make_unique<SumReducer>(); }, &output);
  if (!round2.ok()) {
    result.status = round2.status();
    return result;
  }

  result.output_bytes = TableBytes(output);
  for (const auto& metrics : {*round1, *round2}) {
    for (const auto& [name, value] : metrics.counters) {
      result.counters[name] += value;
    }
  }
  return result;
}

size_t FilesIn(const std::string& dir) {
  size_t n = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    (void)entry;
    ++n;
  }
  return n;
}

/// Spill-heavy base config. checksum_spills is forced on whenever
/// compress_runs is off: raw runs carry no inherent CRC, so an
/// unchecksummed raw run would let a bit flip through *silently* — the
/// exact outcome the dichotomy forbids. (Block-format runs verify per
/// block unconditionally.)
JobConfig ChaosConfig(bool compress, uint32_t merge_factor,
                      uint32_t shuffle_slots = 0) {
  JobConfig config;
  config.sort_buffer_bytes = 512;
  config.num_map_tasks = 3;
  config.num_reducers = 2;
  config.map_slots = 1;
  config.reduce_slots = 1;
  config.merge_factor = merge_factor;
  config.shuffle_slots = shuffle_slots;
  config.compress_runs = compress;
  config.checksum_spills = !compress;
  config.max_task_attempts = 3;
  return config;
}

// ------------------------------------------------------------ seed sweep

struct SweepConfig {
  bool compress;
  uint32_t merge_factor;
  uint32_t shuffle_slots;
};

constexpr SweepConfig kSweepConfigs[] = {
    {true, 2, 0},  {true, 16, 0},  {true, 0, 0},
    {false, 2, 0}, {false, 16, 0}, {false, 0, 0},
    // Early shuffle on: eager merge workers race the injected faults, so
    // op placement is not replayable seed-to-seed — the dichotomy itself
    // must still hold, with the scheduling-dependent merge accounting
    // stripped from the counter comparison.
    {true, 2, 2},  {true, 16, 2},  {false, 2, 2},
};
constexpr uint64_t kSeedsPerConfig = 60;  // 540 seeds total.

TEST(ChaosTest, SweptSeedsUpholdTheDichotomy) {
  for (size_t c = 0; c < std::size(kSweepConfigs); ++c) {
    const SweepConfig& sweep = kSweepConfigs[c];
    const JobConfig config = ChaosConfig(sweep.compress, sweep.merge_factor,
                                         sweep.shuffle_slots);
    const bool overlap = sweep.shuffle_slots > 0;
    const auto strip = [overlap](const std::map<std::string, uint64_t>& c) {
      return overlap ? StripSchedulingCounters(c) : StripRecoveryCounters(c);
    };

    auto baseline_dir = TempDir::Create("chaos-baseline");
    ASSERT_TRUE(baseline_dir.ok());
    const PipelineResult baseline =
        RunPipeline(config, nullptr, baseline_dir->path().string());
    ASSERT_TRUE(baseline.status.ok()) << baseline.status.ToString();
    const auto baseline_counters = strip(baseline.counters);

    for (uint64_t i = 0; i < kSeedsPerConfig; ++i) {
      const uint64_t seed = c * 100003 + i;
      const FaultPlan plan = FaultPlan::FromSeed(seed);
      FaultEnv env(IoEnv::Default(), plan);
      auto dir = TempDir::Create("chaos");
      ASSERT_TRUE(dir.ok());
      const std::string work_dir = dir->path().string();
      const PipelineResult result = RunPipeline(config, &env, work_dir);

      const std::string label =
          "seed=" + std::to_string(seed) + " plan=" + plan.ToString() +
          " compress=" + std::to_string(sweep.compress) +
          " merge_factor=" + std::to_string(sweep.merge_factor) +
          " shuffle_slots=" + std::to_string(sweep.shuffle_slots);
      if (result.status.ok()) {
        // Completion arm: byte-identical output and counters.
        EXPECT_EQ(result.output_bytes, baseline.output_bytes) << label;
        EXPECT_EQ(strip(result.counters), baseline_counters) << label;
      } else {
        // Failure arm: a clean Status (by construction) ...
        EXPECT_TRUE(env.fault_fired())
            << label << ": failed without the fault firing: "
            << result.status.ToString();
      }
      // ... and, either way, a clean work_dir: no orphaned runs, temp
      // files, or intermediates.
      EXPECT_EQ(FilesIn(work_dir), 0u) << label << " status="
                                       << result.status.ToString();
      // A plan whose op index the run never reached must be a clean
      // completion (the degenerate dichotomy arm).
      if (!env.fault_fired()) {
        EXPECT_TRUE(result.status.ok()) << label;
      }
    }
  }
}

TEST(ChaosTest, DichotomyHoldsUnderConcurrency) {
  // Multi-slot: op placement is racy, so runs are not comparable
  // seed-to-seed — but the dichotomy itself must hold under any
  // interleaving.
  JobConfig config = ChaosConfig(/*compress=*/true, /*merge_factor=*/2);
  config.map_slots = 2;
  config.reduce_slots = 2;

  auto baseline_dir = TempDir::Create("chaos-mt-baseline");
  ASSERT_TRUE(baseline_dir.ok());
  const PipelineResult baseline =
      RunPipeline(config, nullptr, baseline_dir->path().string());
  ASSERT_TRUE(baseline.status.ok());
  const auto baseline_counters = StripRecoveryCounters(baseline.counters);

  for (uint64_t seed = 9000; seed < 9040; ++seed) {
    FaultEnv env(IoEnv::Default(), FaultPlan::FromSeed(seed));
    auto dir = TempDir::Create("chaos-mt");
    ASSERT_TRUE(dir.ok());
    const std::string work_dir = dir->path().string();
    const PipelineResult result = RunPipeline(config, &env, work_dir);
    const std::string label = "seed=" + std::to_string(seed) + " plan=" +
                              env.plan().ToString();
    if (result.status.ok()) {
      EXPECT_EQ(result.output_bytes, baseline.output_bytes) << label;
      EXPECT_EQ(StripRecoveryCounters(result.counters), baseline_counters)
          << label;
    }
    EXPECT_EQ(FilesIn(work_dir), 0u) << label;
  }
}

// --------------------------------------------- per-injection-point faults

/// With op=1 every fault kind fires at its first opportunity, and with
/// max_task_attempts=3 each one is recoverable: write/short-write/commit/
/// rename faults fail the writing attempt (retried from scratch), read
/// faults fail the reading attempt, and the silent bit flip is caught by
/// run integrity checks and repaired by producer re-execution. The
/// pipeline must finish byte-identical to the fault-free run — data
/// counters included — at every injection point.
TEST(ChaosTest, EveryInjectionPointRecoversToIdenticalOutput) {
  const JobConfig config = ChaosConfig(/*compress=*/true,
                                       /*merge_factor=*/0);
  auto baseline_dir = TempDir::Create("chaos-points-baseline");
  ASSERT_TRUE(baseline_dir.ok());
  const PipelineResult baseline =
      RunPipeline(config, nullptr, baseline_dir->path().string());
  ASSERT_TRUE(baseline.status.ok());
  const auto baseline_counters = StripRecoveryCounters(baseline.counters);

  const FaultPlan::Kind kinds[] = {
      FaultPlan::Kind::kReadError,   FaultPlan::Kind::kWriteError,
      FaultPlan::Kind::kShortWrite,  FaultPlan::Kind::kBitFlip,
      FaultPlan::Kind::kCommitError, FaultPlan::Kind::kRenameError,
  };
  for (const FaultPlan::Kind kind : kinds) {
    FaultPlan plan;
    plan.kind = kind;
    plan.op = 1;
    plan.bit = 5;
    FaultEnv env(IoEnv::Default(), plan);
    auto dir = TempDir::Create("chaos-points");
    ASSERT_TRUE(dir.ok());
    const std::string work_dir = dir->path().string();
    const PipelineResult result = RunPipeline(config, &env, work_dir);
    const std::string label = std::string("kind=") +
                              FaultPlan::KindName(kind);
    ASSERT_TRUE(result.status.ok())
        << label << ": " << result.status.ToString();
    EXPECT_TRUE(env.fault_fired()) << label;
    EXPECT_EQ(result.output_bytes, baseline.output_bytes) << label;
    EXPECT_EQ(StripRecoveryCounters(result.counters), baseline_counters)
        << label;
    EXPECT_EQ(FilesIn(work_dir), 0u) << label;
    EXPECT_GT(result.counters.count(kTaskRetries) +
                  result.counters.count(kMapReexecutions),
              0u)
        << label << ": fault fired but no recovery was recorded";
  }
}

/// The acceptance scenario: a bit-flipped committed map run, discovered
/// by a reducer (merge_factor=0 keeps the map side from reading its own
/// runs first), triggers re-execution of the producing map task and the
/// job still completes correctly.
TEST(ChaosTest, BitFlippedMapRunTriggersProducerReexecution) {
  JobConfig config = ChaosConfig(/*compress=*/true, /*merge_factor=*/0);
  config.max_task_attempts = 2;

  auto baseline_dir = TempDir::Create("flip-baseline");
  ASSERT_TRUE(baseline_dir.ok());
  const PipelineResult baseline =
      RunPipeline(config, nullptr, baseline_dir->path().string());
  ASSERT_TRUE(baseline.status.ok());

  FaultPlan plan;
  plan.kind = FaultPlan::Kind::kBitFlip;
  plan.op = 1;  // First written buffer: map task 0's first committed run.
  plan.bit = 17;
  FaultEnv env(IoEnv::Default(), plan);
  auto dir = TempDir::Create("flip");
  ASSERT_TRUE(dir.ok());
  const std::string work_dir = dir->path().string();
  const PipelineResult result = RunPipeline(config, &env, work_dir);

  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_TRUE(env.fault_fired());
  EXPECT_GE(result.counters.at(kMapReexecutions), 1u);
  EXPECT_GE(result.counters.at(kCorruptRunsRecovered), 1u);
  EXPECT_EQ(result.output_bytes, baseline.output_bytes);
  EXPECT_EQ(StripRecoveryCounters(result.counters),
            StripRecoveryCounters(baseline.counters));
  EXPECT_EQ(FilesIn(work_dir), 0u);
}

/// Producer re-execution composing with the early shuffle: the flipped
/// run may have been pulled into an eager intermediate (whose merge then
/// failed on the block CRC and fell back) before a reducer discovers the
/// corruption; re-execution retires the generation and invalidates every
/// eager output built over it, and the job must still complete
/// byte-identical to its fault-free overlap baseline.
TEST(ChaosTest, BitFlippedMapRunRecoversWithEarlyShuffle) {
  JobConfig config = ChaosConfig(/*compress=*/true, /*merge_factor=*/16,
                                 /*shuffle_slots=*/2);
  config.max_task_attempts = 2;

  auto baseline_dir = TempDir::Create("flip-early-baseline");
  ASSERT_TRUE(baseline_dir.ok());
  const PipelineResult baseline =
      RunPipeline(config, nullptr, baseline_dir->path().string());
  ASSERT_TRUE(baseline.status.ok());

  FaultPlan plan;
  plan.kind = FaultPlan::Kind::kBitFlip;
  plan.op = 1;  // First written buffer: map task 0's first committed run.
  plan.bit = 17;
  FaultEnv env(IoEnv::Default(), plan);
  auto dir = TempDir::Create("flip-early");
  ASSERT_TRUE(dir.ok());
  const std::string work_dir = dir->path().string();
  const PipelineResult result = RunPipeline(config, &env, work_dir);

  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_TRUE(env.fault_fired());
  EXPECT_GE(result.counters.at(kMapReexecutions), 1u);
  EXPECT_EQ(result.output_bytes, baseline.output_bytes);
  EXPECT_EQ(StripSchedulingCounters(result.counters),
            StripSchedulingCounters(baseline.counters));
  EXPECT_EQ(FilesIn(work_dir), 0u);
}

/// Same scenario with the re-execution budget exhausted (attempts=1): the
/// corruption is unrecoverable and must surface as a clean Corruption
/// failure with a clean work_dir — not a wrong answer.
TEST(ChaosTest, ExhaustedReexecutionBudgetFailsCleanly) {
  JobConfig config = ChaosConfig(/*compress=*/true, /*merge_factor=*/0);
  config.max_task_attempts = 1;

  FaultPlan plan;
  plan.kind = FaultPlan::Kind::kBitFlip;
  plan.op = 1;
  plan.bit = 17;
  FaultEnv env(IoEnv::Default(), plan);
  auto dir = TempDir::Create("flip-budget");
  ASSERT_TRUE(dir.ok());
  const std::string work_dir = dir->path().string();
  const PipelineResult result = RunPipeline(config, &env, work_dir);

  ASSERT_FALSE(result.status.ok());
  EXPECT_TRUE(result.status.IsCorruption()) << result.status.ToString();
  EXPECT_EQ(FilesIn(work_dir), 0u);
}

// ------------------------------------------------- fetch-shuffle chaos

/// Counters that record the fetch work itself rather than the data:
/// retries and wait time move with injected transport faults, and the
/// wire byte count moves with how much a failed attempt re-fetched.
std::map<std::string, uint64_t> StripFetchCounters(
    std::map<std::string, uint64_t> counters) {
  counters.erase(kShuffleFetchBytes);
  counters.erase(kFetchRetries);
  counters.erase(kFetchWaitMs);
  return counters;
}

/// The transport-fault sweep: fetch-shuffle on, with every wire byte
/// flowing through a seeded FaultTransport (via the override seam). Each
/// seeded drop/truncate/bit-flip must either be absorbed (request retry
/// or map-attempt retry) with output and data counters identical to the
/// fault-free fetch run, or fail the job cleanly — never corrupt output,
/// never orphan clone files. Transit CRCs turn silent bit flips into
/// clean request failures, so the bit-flip arm exercises the frame CRC.
TEST(ChaosTest, FetchTransportFaultsUpholdTheDichotomy) {
  struct FetchSweepConfig {
    bool compress;
    uint32_t merge_factor;
  };
  constexpr FetchSweepConfig kFetchConfigs[] = {
      {true, 2},
      {false, 0},
  };
  constexpr uint64_t kFetchSeedsPerConfig = 60;  // 120 seeds total.

  for (size_t c = 0; c < std::size(kFetchConfigs); ++c) {
    JobConfig config = ChaosConfig(kFetchConfigs[c].compress,
                                   kFetchConfigs[c].merge_factor);
    config.fetch_shuffle = true;

    auto baseline_dir = TempDir::Create("fetch-chaos-baseline");
    ASSERT_TRUE(baseline_dir.ok());
    const PipelineResult baseline =
        RunPipeline(config, nullptr, baseline_dir->path().string());
    ASSERT_TRUE(baseline.status.ok()) << baseline.status.ToString();
    const auto baseline_counters =
        StripFetchCounters(StripRecoveryCounters(baseline.counters));

    for (uint64_t i = 0; i < kFetchSeedsPerConfig; ++i) {
      const uint64_t seed = c * 100003 + i;
      const net::TransportFaultPlan plan =
          net::TransportFaultPlan::FromSeed(seed);
      net::InProcTransport base_transport;
      net::FaultTransport transport(&base_transport, plan);
      JobConfig faulty = config;
      faulty.shuffle_transport_override = &transport;

      auto dir = TempDir::Create("fetch-chaos");
      ASSERT_TRUE(dir.ok());
      const std::string work_dir = dir->path().string();
      const PipelineResult result = RunPipeline(faulty, nullptr, work_dir);

      const std::string label =
          "seed=" + std::to_string(seed) + " plan=" + plan.ToString() +
          " compress=" + std::to_string(kFetchConfigs[c].compress) +
          " merge_factor=" +
          std::to_string(kFetchConfigs[c].merge_factor);
      if (result.status.ok()) {
        EXPECT_EQ(result.output_bytes, baseline.output_bytes) << label;
        EXPECT_EQ(StripFetchCounters(StripRecoveryCounters(result.counters)),
                  baseline_counters)
            << label;
      } else {
        EXPECT_TRUE(transport.fault_fired())
            << label << ": failed without the fault firing: "
            << result.status.ToString();
      }
      EXPECT_EQ(FilesIn(work_dir), 0u)
          << label << " status=" << result.status.ToString();
      if (!transport.fault_fired()) {
        EXPECT_TRUE(result.status.ok()) << label;
      }
    }
  }
}

/// The fetch-mode acceptance scenario: the *origin* run is bit-flipped at
/// write time (FaultEnv, not the transport), so the server serves the
/// corrupt bytes under valid transit CRCs and the clone lands corrupt.
/// The reducer's integrity check then names the clone, blame must map
/// back through the clone registry to the producing map task, and
/// re-execution (re-publish + re-fetch) must repair it — the chain that
/// makes fetch failures equivalent to local corruption.
TEST(ChaosTest, CorruptFetchedRunTriggersProducerReexecution) {
  JobConfig config = ChaosConfig(/*compress=*/true, /*merge_factor=*/0);
  config.fetch_shuffle = true;
  config.max_task_attempts = 2;

  auto baseline_dir = TempDir::Create("fetch-flip-baseline");
  ASSERT_TRUE(baseline_dir.ok());
  const PipelineResult baseline =
      RunPipeline(config, nullptr, baseline_dir->path().string());
  ASSERT_TRUE(baseline.status.ok());

  FaultPlan plan;
  plan.kind = FaultPlan::Kind::kBitFlip;
  plan.op = 1;  // First written buffer: map task 0's first committed run.
  plan.bit = 17;
  FaultEnv env(IoEnv::Default(), plan);
  auto dir = TempDir::Create("fetch-flip");
  ASSERT_TRUE(dir.ok());
  const std::string work_dir = dir->path().string();
  const PipelineResult result = RunPipeline(config, &env, work_dir);

  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_TRUE(env.fault_fired());
  EXPECT_GE(result.counters.at(kMapReexecutions), 1u);
  EXPECT_GE(result.counters.at(kCorruptRunsRecovered), 1u);
  EXPECT_EQ(result.output_bytes, baseline.output_bytes);
  EXPECT_EQ(StripFetchCounters(StripRecoveryCounters(result.counters)),
            StripFetchCounters(StripRecoveryCounters(baseline.counters)));
  EXPECT_EQ(FilesIn(work_dir), 0u);
}

// ----------------------------------------------------- FaultEnv mechanics

TEST(ChaosTest, FaultPlansAreDeterministicAndSingleShot) {
  for (uint64_t seed = 0; seed < 64; ++seed) {
    const FaultPlan a = FaultPlan::FromSeed(seed);
    const FaultPlan b = FaultPlan::FromSeed(seed);
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_EQ(a.op, b.op);
    EXPECT_EQ(a.bit, b.bit);
    EXPECT_NE(a.kind, FaultPlan::Kind::kNone);
    EXPECT_GE(a.op, 1u);
  }
  // A plan fires at most once even when the trigger index is crossed by
  // many operations.
  FaultPlan plan;
  plan.kind = FaultPlan::Kind::kWriteError;
  plan.op = 1;
  FaultEnv env(IoEnv::Default(), plan);
  auto dir = TempDir::Create("single-shot");
  ASSERT_TRUE(dir.ok());
  const std::string path = (dir->path() / "run").string();
  {
    SpillWriter::Options options;
    options.env = &env;
    SpillWriter writer(path, options);
    ASSERT_TRUE(writer.Open().ok());
    ASSERT_TRUE(writer.Append("k", "v").ok());  // Buffered; no I/O yet.
    EXPECT_FALSE(writer.Close().ok());          // Flush hits the fault.
  }
  EXPECT_TRUE(env.fault_fired());
  // Second writer against the same env: the plan is spent, I/O passes.
  {
    SpillWriter::Options options;
    options.env = &env;
    SpillWriter writer(path, options);
    ASSERT_TRUE(writer.Open().ok());
    ASSERT_TRUE(writer.Append("k", "v").ok());
    EXPECT_TRUE(writer.Close().ok()) << "plan must fire exactly once";
  }
}

TEST(ChaosTest, WriteFaultsLeaveNothingAtTheCommittedPath) {
  const FaultPlan::Kind kinds[] = {
      FaultPlan::Kind::kWriteError,
      FaultPlan::Kind::kShortWrite,
      FaultPlan::Kind::kCommitError,
      FaultPlan::Kind::kRenameError,
  };
  for (const FaultPlan::Kind kind : kinds) {
    FaultPlan plan;
    plan.kind = kind;
    plan.op = 1;
    FaultEnv env(IoEnv::Default(), plan);
    auto dir = TempDir::Create("write-fault");
    ASSERT_TRUE(dir.ok());
    const std::string path = (dir->path() / "run").string();
    SpillWriter::Options options;
    options.env = &env;
    SpillWriter writer(path, options);
    ASSERT_TRUE(writer.Open().ok());
    ASSERT_TRUE(writer.Append("key", "value").ok());
    const Status st = writer.Close();
    const std::string label = std::string("kind=") +
                              FaultPlan::KindName(kind);
    EXPECT_FALSE(st.ok()) << label;
    EXPECT_TRUE(env.fault_fired()) << label;
    // The error names the staged file and the injected operation.
    EXPECT_NE(st.message().find("injected"), std::string::npos)
        << label << ": " << st.ToString();
    // Commit protocol: no committed file, no leftover temp file.
    EXPECT_FALSE(std::filesystem::exists(path)) << label;
    EXPECT_FALSE(std::filesystem::exists(path + ".tmp")) << label;
  }
}

TEST(ChaosTest, ReadFaultSurfacesAsIoErrorNamingTheFile) {
  auto dir = TempDir::Create("read-fault");
  ASSERT_TRUE(dir.ok());
  const std::string path = (dir->path() / "run").string();
  uint64_t length = 0;
  {
    SpillWriter writer(path);
    ASSERT_TRUE(writer.Open().ok());
    ASSERT_TRUE(writer.Append("key", "value").ok());
    length = writer.bytes_written();
    ASSERT_TRUE(writer.Close().ok());
  }
  FaultPlan plan;
  plan.kind = FaultPlan::Kind::kReadError;
  plan.op = 1;
  FaultEnv env(IoEnv::Default(), plan);
  FileRecordReader reader(path, 0, length,
                          FileRecordReader::kDefaultBufferBytes,
                          RunFormat::kRawRecords, &env);
  EXPECT_FALSE(reader.Next());
  const Status st = reader.status();
  EXPECT_TRUE(st.IsIOError()) << st.ToString();
  EXPECT_NE(st.message().find(path), std::string::npos) << st.ToString();
  EXPECT_TRUE(env.fault_fired());
}

TEST(ChaosTest, BitFlipIsSilentOnWriteAndCaughtByChecksum) {
  auto dir = TempDir::Create("bit-flip");
  ASSERT_TRUE(dir.ok());
  const std::string path = (dir->path() / "run").string();
  FaultPlan plan;
  plan.kind = FaultPlan::Kind::kBitFlip;
  plan.op = 1;
  plan.bit = 3;
  FaultEnv env(IoEnv::Default(), plan);
  SpillWriter::Options options;
  options.checksum = true;
  options.env = &env;
  SpillWriter writer(path, options);
  ASSERT_TRUE(writer.Open().ok());
  ASSERT_TRUE(writer.Append("key", "value").ok());
  // The flip is *silent*: the write succeeds and the run commits.
  ASSERT_TRUE(writer.Close().ok());
  EXPECT_TRUE(env.fault_fired());
  ASSERT_TRUE(std::filesystem::exists(path));
  // The writer's running CRC covers the logical bytes, the file holds the
  // flipped ones: verification must refuse the run and name it.
  const Status st = VerifySpillFileCrc32(path, writer.crc32());
  EXPECT_TRUE(st.IsCorruption()) << st.ToString();
  EXPECT_NE(st.message().find(path), std::string::npos) << st.ToString();
}

TEST(ChaosTest, TableSaveLoadUpholdsTheDichotomy) {
  MemoryTable<std::string, uint64_t> typed;
  for (uint64_t i = 0; i < 50; ++i) {
    typed.Add("key" + std::to_string(i), i);
  }
  const RecordTable table = EncodeTable(typed);

  // Write fault: Save fails cleanly, nothing at the path.
  {
    auto dir = TempDir::Create("table-write-fault");
    ASSERT_TRUE(dir.ok());
    const std::string path = (dir->path() / "table").string();
    FaultPlan plan;
    plan.kind = FaultPlan::Kind::kWriteError;
    plan.op = 1;
    FaultEnv env(IoEnv::Default(), plan);
    EXPECT_FALSE(table.Save(path, /*compress=*/true, &env).ok());
    EXPECT_EQ(FilesIn(dir->path().string()), 0u);
  }
  // Silent bit flip during Save: the compressed boundary file's block
  // CRCs surface it as Corruption at Load — never as wrong records.
  {
    auto dir = TempDir::Create("table-flip");
    ASSERT_TRUE(dir.ok());
    const std::string path = (dir->path() / "table").string();
    FaultPlan plan;
    plan.kind = FaultPlan::Kind::kBitFlip;
    plan.op = 1;
    plan.bit = 100;
    FaultEnv env(IoEnv::Default(), plan);
    ASSERT_TRUE(table.Save(path, /*compress=*/true, &env).ok());
    EXPECT_TRUE(env.fault_fired());
    RecordTable loaded;
    const Status st = RecordTable::Load(path, &loaded);
    EXPECT_TRUE(st.IsCorruption()) << st.ToString();
  }
  // Read fault at Load: clean IOError, and a fault-free retry succeeds
  // against the intact file.
  {
    auto dir = TempDir::Create("table-read-fault");
    ASSERT_TRUE(dir.ok());
    const std::string path = (dir->path() / "table").string();
    ASSERT_TRUE(table.Save(path).ok());
    FaultPlan plan;
    plan.kind = FaultPlan::Kind::kReadError;
    plan.op = 1;
    FaultEnv env(IoEnv::Default(), plan);
    RecordTable loaded;
    EXPECT_FALSE(RecordTable::Load(path, &loaded, &env).ok());
    ASSERT_TRUE(RecordTable::Load(path, &loaded).ok());
    EXPECT_EQ(loaded.num_records(), table.num_records());
  }
}

}  // namespace
}  // namespace ngram::mr
